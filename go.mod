module containerdrone

go 1.24
