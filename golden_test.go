package containerdrone_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"containerdrone"
)

// The golden-trace regression suite pins every registered scenario's
// outcome bit-for-bit at a fixed seed: detection latency, crash time,
// tracking metrics, and a digest of the complete serialized Result
// (every telemetry sample, violation, stream counter, and task
// report). A future perf PR that claims "figures unchanged" proves it
// by leaving this suite green instead of asserting it in prose.
//
// Regenerate after an intentional behavior change with:
//
//	go test -run TestGoldenTraces -update .
//
// and review the golden diffs like any other code change.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from current behavior")

// goldenSeed fixes the RNG for every golden run. It deliberately
// differs from the scenario presets' seed 1 so goldens also exercise
// the seed-override path.
const goldenSeed = 7

// goldenTrace is the committed fingerprint of one scenario run.
type goldenTrace struct {
	Scenario  string  `json:"scenario"`
	Seed      uint64  `json:"seed"`
	DurationS float64 `json:"duration_s"`

	// DetectMS is the Simplex switch latency in milliseconds of
	// simulated time from flight start; -1 when no rule fired.
	DetectMS   float64 `json:"detect_ms"`
	SwitchRule string  `json:"switch_rule,omitempty"`

	Crashed bool    `json:"crashed"`
	CrashMS float64 `json:"crash_ms,omitempty"`

	MaxDeviationM   float64 `json:"max_deviation_m"`
	RMSErrorM       float64 `json:"rms_error_m"`
	Violations      int     `json:"violations"`
	GarbagePkts     int64   `json:"garbage_pkts"`
	Samples         int     `json:"samples"`
	MissionComplete bool    `json:"mission_complete"`

	// ResultDigest is the FNV-64a hash of the complete serialized
	// Result — the bit-for-bit pin on everything above plus the full
	// trajectory, trace, streams, and task reports.
	ResultDigest string `json:"result_digest"`
}

// goldenPath returns the committed location for a scenario's trace.
func goldenPath(scenario string) string {
	return filepath.Join("testdata", "golden", scenario+".json")
}

// runGolden executes one scenario at the golden seed and fingerprints
// the result.
func runGolden(t *testing.T, scenario string) goldenTrace {
	t.Helper()
	res := runSeeded(t, scenario, goldenSeed)
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	h := fnv.New64a()
	h.Write(raw)
	g := goldenTrace{
		Scenario:        scenario,
		Seed:            goldenSeed,
		DurationS:       res.DurationS,
		DetectMS:        -1,
		Crashed:         res.Crashed,
		MaxDeviationM:   res.Metrics.MaxDeviationM,
		RMSErrorM:       res.Metrics.RMSErrorM,
		Violations:      len(res.Violations),
		GarbagePkts:     res.GarbagePkts,
		Samples:         len(res.Samples),
		MissionComplete: res.MissionComplete,
		ResultDigest:    fmt.Sprintf("%016x", h.Sum64()),
	}
	if res.Switched {
		g.DetectMS = res.SwitchS * 1e3
		g.SwitchRule = res.SwitchRule
	}
	if res.Crashed {
		g.CrashMS = res.CrashS * 1e3
	}
	return g
}

func TestGoldenTraces(t *testing.T) {
	scenarios := containerdrone.Scenarios()
	if len(scenarios) < 20 {
		t.Fatalf("registry holds %d scenarios; expected the full set", len(scenarios))
	}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			got := runGolden(t, sc.Name)
			path := goldenPath(sc.Name)
			if *updateGolden {
				raw, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenTraces -update .`): %v", err)
			}
			var want goldenTrace
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			// Compare the summary fields individually for a readable
			// failure before falling back to the digest, which pins
			// everything else.
			if got.DetectMS != want.DetectMS || got.SwitchRule != want.SwitchRule {
				t.Errorf("detection drifted: got %.1fms (%s), want %.1fms (%s)",
					got.DetectMS, got.SwitchRule, want.DetectMS, want.SwitchRule)
			}
			if got.Crashed != want.Crashed || got.CrashMS != want.CrashMS {
				t.Errorf("crash outcome drifted: got %v@%.1fms, want %v@%.1fms",
					got.Crashed, got.CrashMS, want.Crashed, want.CrashMS)
			}
			if got.MaxDeviationM != want.MaxDeviationM || got.RMSErrorM != want.RMSErrorM {
				t.Errorf("tracking metrics drifted: got (%v, %v), want (%v, %v)",
					got.MaxDeviationM, got.RMSErrorM, want.MaxDeviationM, want.RMSErrorM)
			}
			if got != want {
				t.Errorf("golden trace mismatch for %s:\n got %+v\nwant %+v", sc.Name, got, want)
			}
		})
	}
}

// TestGoldenFilesMatchRegistry fails when a scenario is added without
// a golden file, or a golden file outlives its scenario.
func TestGoldenFilesMatchRegistry(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	want := make(map[string]bool)
	for _, sc := range containerdrone.Scenarios() {
		want[sc.Name+".json"] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("golden file %s has no registered scenario", e.Name())
		}
		delete(want, e.Name())
	}
	for name := range want {
		t.Errorf("scenario %s has no golden file (run -update)", name)
	}
}
