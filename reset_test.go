package containerdrone

// White-box reset-equivalence suite: the warm-pool campaign engine
// reuses one core.System across runs via Reset(seed), so the whole
// optimization is sound only if a reset-reused engine is
// indistinguishable from a cold build. This test pins that for every
// registered scenario — including all fault scenarios — at the byte
// level of the full serialized public Result (every telemetry sample,
// violation, stream counter, and task report). It runs under the race
// detector in CI alongside the campaign determinism suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// resetEquivDuration must reach past every registered scenario's
// attack launch and fault window (starts at 8–12 s, window ends by
// 18 s): the states Reset exists to undo — armed flood tasks, open
// jitter stacks, killed receivers, captured replay frames, decayed
// rotors — only come into being once those events fire, so a shorter
// flight would certify a Reset that never rewound anything. Seconds
// of simulated flight cost ≈2 ms of wall clock each.
const resetEquivDuration = 20 * time.Second

// runSimJSON builds and runs one Sim and returns its fully serialized
// Result.
func runSimJSON(t *testing.T, scenario string, seed uint64) []byte {
	t.Helper()
	sim, err := New(scenario, WithSeed(seed), WithDuration(resetEquivDuration))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestResetEquivalence(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) < 20 {
		t.Fatalf("registry holds %d scenarios; expected the full set", len(scenarios))
	}
	const (
		seed = 7
		// decoySeed drives the warm engine's first flight: a different
		// stochastic history whose every trace the Reset must erase.
		decoySeed = 0xDECAF
	)
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			want := runSimJSON(t, sc.Name, seed)

			warm, err := New(sc.Name, WithSeed(decoySeed), WithDuration(resetEquivDuration))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			// White-box rewind: reset the underlying System to the
			// target seed and run the same Sim again, exactly as a
			// campaign worker does between runs.
			warm.sys.Reset(seed)
			warm.cfg.Seed = seed
			warm.ran = false
			res, err := warm.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				i := 0
				for i < len(want) && i < len(got) && want[i] == got[i] {
					i++
				}
				lo, hi := max(0, i-80), i+80
				t.Errorf("reset-reused run differs from cold build at byte %d:\n cold: …%s…\n warm: …%s…",
					i, clipBytes(want, lo, hi), clipBytes(got, lo, hi))
			}
		})
	}
}

func clipBytes(b []byte, lo, hi int) []byte {
	if lo > len(b) {
		lo = len(b)
	}
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}

// TestResetEquivalenceRepeated drives several reset cycles through one
// engine, alternating seeds, to catch state that survives exactly one
// reset (a cleared-on-first-use cache, a once-armed one-shot).
func TestResetEquivalenceRepeated(t *testing.T) {
	t.Parallel()
	const scenario = "udpflood" // attack + violation + task-kill path
	wantA := runSimJSON(t, scenario, 3)
	wantB := runSimJSON(t, scenario, 4)

	warm, err := New(scenario, WithSeed(9), WithDuration(resetEquivDuration))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for cycle, step := range []struct {
		seed uint64
		want []byte
	}{{3, wantA}, {4, wantB}, {3, wantA}, {4, wantB}} {
		warm.sys.Reset(step.seed)
		warm.cfg.Seed = step.seed
		warm.ran = false
		res, err := warm.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(step.want, got) {
			t.Fatalf("cycle %d (seed %d): reused run diverged from cold build", cycle, step.seed)
		}
	}
}
