package containerdrone_test

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"containerdrone"
)

// Build a scenario from the registry with the options builder and fly
// it. The udpflood preset launches a packet flood against the motor
// port; moving the attack to t=2 s keeps the example fast.
func ExampleNew() {
	sim, err := containerdrone.New("udpflood",
		containerdrone.WithSeed(7),
		containerdrone.WithDuration(5*time.Second),
		containerdrone.WithParam("attack.start", 2))
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("crashed=%v switched=%v rule=%s\n", res.Crashed, res.Switched, res.SwitchRule)
	// Output: crashed=false switched=true rule=attitude-error
}

// Observe a run live: the observer's callbacks fire from inside the
// simulation loop, in simulated-time order — the integration point
// for dashboards and ground-control links (see examples/gcslive).
func ExampleSim_Run() {
	obs := containerdrone.ObserverFuncs{
		Violation: func(v containerdrone.Violation) {
			fmt.Printf("violation: %s\n", v.Rule)
		},
		Switch: func(now time.Duration, rule string) {
			fmt.Printf("failover to the safety controller (%s)\n", rule)
		},
	}
	sim, err := containerdrone.New("udpflood",
		containerdrone.WithDuration(5*time.Second),
		containerdrone.WithParam("attack.start", 2),
		containerdrone.WithObserver(obs))
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(context.Background()); err != nil {
		panic(err)
	}
	// Output:
	// violation: attitude-error
	// failover to the safety controller (attitude-error)
}

// Dispatch a run to a remote worker: the Config is plain JSON, and
// NewFromConfig reconstructs an identical deterministic run from it.
func ExampleNewFromConfig() {
	request := []byte(`{"schema_version":1,"scenario":"baseline","seed":7,"duration_s":2}`)
	var cfg containerdrone.Config
	if err := json.Unmarshal(request, &cfg); err != nil {
		panic(err)
	}
	sim, err := containerdrone.NewFromConfig(cfg)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("crashed=%v samples=%d\n", res.Crashed, len(res.Samples))
	// Output: crashed=false samples=100
}

// Run a Monte-Carlo campaign: seeds × sweep points on a worker pool,
// reduced to per-point aggregates.
func ExampleNewCampaign() {
	c := containerdrone.NewCampaign("baseline",
		containerdrone.WithRuns(2),
		containerdrone.WithSweep("wind", 0, 1),
		containerdrone.WithRunDuration(2*time.Second))
	res, err := c.Run(context.Background())
	if err != nil {
		panic(err)
	}
	crashes := 0
	for _, a := range res.Aggregates {
		crashes += a.Crashes
	}
	fmt.Printf("points=%d records=%d crashes=%d\n", res.Points, len(res.Records), crashes)
	// Output: points=2 records=4 crashes=0
}
