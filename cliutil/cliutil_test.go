package cliutil

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextCancelsOnSIGTERM delivers a real SIGTERM to the
// test process and requires the context to cancel — the graceful
// first-signal path every CLI relies on to flush partial output.
func TestSignalContextCancelsOnSIGTERM(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	defer stop()

	if err := ctx.Err(); err != nil {
		t.Fatalf("context canceled before any signal: %v", err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled within 5s of SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
	}
}

// TestSignalContextPropagatesParent checks the context derives from
// the given parent (a canceled parent cancels it) and that stop()
// itself cancels — the deferred-stop idiom must not leak a live
// signal registration or an uncancelable context.
func TestSignalContextPropagatesParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := SignalContext(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation not propagated")
	}

	ctx2, stop2 := SignalContext(context.Background())
	stop2()
	select {
	case <-ctx2.Done():
	case <-time.After(time.Second):
		t.Fatal("stop() did not cancel the context")
	}
}
