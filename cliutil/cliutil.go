// Package cliutil carries the small pieces shared by the repo's
// command-line binaries. It sits outside internal/ because cmd/ is
// held to the public-SDK import boundary (see the CI check); nothing
// here is part of the simulation SDK proper.
package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on the first SIGINT or
// SIGTERM — the graceful-shutdown root every CLI hangs its work off.
// One signal cancels the context so in-flight runs return partial
// results and summaries, output files, and drains flush instead of
// being lost; a second signal falls through to Go's default handler
// and kills the process immediately. The returned stop func cancels
// the context and releases the signal registration (restoring default
// delivery) and should be deferred by the caller.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
