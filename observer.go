package containerdrone

import "time"

// Observer streams a run live. Callbacks fire synchronously from the
// simulation loop on the goroutine that called Sim.Run, in simulated-
// time order:
//
//   - OnTick fires at the telemetry rate with each recorded sample;
//   - OnViolation fires for every security-rule firing, before the
//     switch it causes;
//   - OnSwitch fires once if the Simplex monitor fails over to the
//     safety controller;
//   - OnCrash fires once if the vehicle crashes.
//
// A long-running callback slows the simulation down but cannot
// corrupt it; to cancel a run from inside an observer, cancel the
// context passed to Run.
type Observer interface {
	OnTick(now time.Duration, s Sample)
	OnViolation(v Violation)
	OnSwitch(now time.Duration, rule string)
	OnCrash(at time.Duration)
}

// ObserverFuncs adapts plain functions to the Observer interface; nil
// members are skipped. The zero value observes nothing.
type ObserverFuncs struct {
	Tick      func(now time.Duration, s Sample)
	Violation func(v Violation)
	Switch    func(now time.Duration, rule string)
	Crash     func(at time.Duration)
}

// OnTick calls Tick when set.
func (o ObserverFuncs) OnTick(now time.Duration, s Sample) {
	if o.Tick != nil {
		o.Tick(now, s)
	}
}

// OnViolation calls Violation when set.
func (o ObserverFuncs) OnViolation(v Violation) {
	if o.Violation != nil {
		o.Violation(v)
	}
}

// OnSwitch calls Switch when set.
func (o ObserverFuncs) OnSwitch(now time.Duration, rule string) {
	if o.Switch != nil {
		o.Switch(now, rule)
	}
}

// OnCrash calls Crash when set.
func (o ObserverFuncs) OnCrash(at time.Duration) {
	if o.Crash != nil {
		o.Crash(at)
	}
}
