package membw

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testBus() *Bus {
	// 100M accesses/s, 100 µs tick → 10,000 accesses per tick.
	return NewBus(4, 100e6, 100*time.Microsecond)
}

func TestCapacityPerTick(t *testing.T) {
	b := testBus()
	if got := b.CapacityPerTick(); math.Abs(got-10000) > 1e-6 {
		t.Fatalf("CapacityPerTick = %v, want 10000", got)
	}
	if b.Cores() != 4 {
		t.Fatalf("Cores = %d", b.Cores())
	}
}

func TestNoContentionLambdaOne(t *testing.T) {
	b := testBus()
	b.BeginTick()
	b.AddDemand(0, 2000)
	b.AddDemand(1, 3000)
	if got := b.Resolve(); got != 1 {
		t.Fatalf("under-capacity λ = %v, want 1", got)
	}
}

func TestSaturationLambda(t *testing.T) {
	b := testBus()
	b.BeginTick()
	b.AddDemand(3, 40000) // 4× capacity
	if got := b.Resolve(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("λ = %v, want 4", got)
	}
	if b.Lambda() != 4 {
		t.Fatalf("Lambda() = %v", b.Lambda())
	}
}

func TestDemandAccumulates(t *testing.T) {
	b := testBus()
	b.BeginTick()
	b.AddDemand(0, 1000)
	b.AddDemand(0, 500)
	if b.Demand(0) != 1500 {
		t.Fatalf("Demand = %v, want 1500", b.Demand(0))
	}
	b.BeginTick()
	if b.Demand(0) != 0 {
		t.Fatal("BeginTick did not clear demand")
	}
}

func TestSlowdownShape(t *testing.T) {
	if Slowdown(1, 0.5) != 1 {
		t.Fatal("λ=1 must give full speed")
	}
	if Slowdown(4, 0) != 1 {
		t.Fatal("m=0 task must be immune")
	}
	// λ=4, m=0.3: 1/(1+3·0.3) ≈ 0.526
	if got := Slowdown(4, 0.3); math.Abs(got-1/1.9) > 1e-12 {
		t.Fatalf("Slowdown(4,0.3) = %v", got)
	}
	// Fully memory-bound task slows by λ.
	if got := Slowdown(4, 1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Slowdown(4,1) = %v", got)
	}
	// Oversized m clamps to 1.
	if Slowdown(4, 2) != Slowdown(4, 1) {
		t.Fatal("m>1 should clamp")
	}
}

func TestCountersAccumulate(t *testing.T) {
	b := testBus()
	b.Charge(2, 100)
	b.Charge(2, 50.4)
	if got := b.Counter(2); got != 150 {
		t.Fatalf("Counter = %d, want 150", got)
	}
	if old := b.ResetCounter(2); old != 150 {
		t.Fatalf("ResetCounter returned %d", old)
	}
	if b.Counter(2) != 0 {
		t.Fatal("counter not cleared")
	}
}

func TestNegativeDemandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative demand did not panic")
		}
	}()
	testBus().AddDemand(0, -1)
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBus(0, 1e6, time.Millisecond) },
		func() { NewBus(4, 0, time.Millisecond) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: λ ≥ 1 always, and Slowdown ∈ (0, 1].
func TestLambdaSlowdownBoundsProperty(t *testing.T) {
	f := func(d0, d1, d2, d3 float64, m float64) bool {
		b := testBus()
		b.BeginTick()
		for core, d := range []float64{d0, d1, d2, d3} {
			b.AddDemand(core, math.Abs(math.Mod(d, 1e6)))
		}
		lambda := b.Resolve()
		s := Slowdown(lambda, math.Abs(math.Mod(m, 1)))
		return lambda >= 1 && s > 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: more attacker demand never speeds up a victim (monotone
// interference).
func TestInterferenceMonotoneProperty(t *testing.T) {
	f := func(base, extra float64) bool {
		atk1 := math.Abs(math.Mod(base, 1e6))
		atk2 := atk1 + math.Abs(math.Mod(extra, 1e6))
		victim := 2000.0
		lam := func(atk float64) float64 {
			b := testBus()
			b.BeginTick()
			b.AddDemand(0, victim)
			b.AddDemand(3, atk)
			return b.Resolve()
		}
		return Slowdown(lam(atk2), 0.3) <= Slowdown(lam(atk1), 0.3)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
