// Package membw models the shared DRAM bandwidth of the quad-core
// board. All cores draw from one bus; when aggregate demand exceeds
// capacity, every access takes proportionally longer, which slows
// tasks on *other* cores — the cross-core interference channel the
// memory-bandwidth DoS attack (IsolBench Bandwidth, paper §V-B)
// exploits and MemGuard closes.
//
// The model is deliberately simple and monotone: within one scheduler
// tick, each running task declares the number of memory accesses it
// would issue at full speed; the bus computes a latency-inflation
// factor λ = max(1, totalDemand/capacity). A task whose
// memory-boundedness is m then progresses at rate 1/(1+(λ−1)·m).
// Per-core performance counters record the accesses actually issued,
// exactly the signal MemGuard's regulator consumes.
package membw

import (
	"fmt"
	"time"
)

// Bus is the shared memory system. It is re-armed every scheduler tick
// with BeginTick, filled with per-core demand, then Resolve computes
// the inflation factor for that tick.
type Bus struct {
	cores       int
	capPerSec   float64 // accesses per second the DRAM can serve
	demand      []float64
	counters    []uint64 // lifetime accesses issued, per core (the PMC)
	lastLambda  float64
	tickSeconds float64
	capPerTick  float64 // capPerSec * tickSeconds, cached for Resolve
}

// NewBus builds a bus for the given core count and capacity in
// accesses/second. tick is the scheduler tick the bus is resolved at.
func NewBus(cores int, capPerSec float64, tick time.Duration) *Bus {
	if cores <= 0 {
		panic("membw: cores must be positive")
	}
	if capPerSec <= 0 {
		panic("membw: capacity must be positive")
	}
	return &Bus{
		cores:       cores,
		capPerSec:   capPerSec,
		demand:      make([]float64, cores),
		counters:    make([]uint64, cores),
		lastLambda:  1,
		tickSeconds: tick.Seconds(),
		capPerTick:  capPerSec * tick.Seconds(),
	}
}

// Cores returns the number of cores the bus serves.
func (b *Bus) Cores() int { return b.cores }

// CapacityPerTick returns how many accesses the bus serves per tick.
func (b *Bus) CapacityPerTick() float64 { return b.capPerTick }

// BeginTick clears per-tick demand.
func (b *Bus) BeginTick() {
	for i := range b.demand {
		b.demand[i] = 0
	}
}

// AddDemand declares that core would issue the given number of
// accesses this tick at full speed.
func (b *Bus) AddDemand(core int, accesses float64) {
	if accesses < 0 {
		panic(fmt.Sprintf("membw: negative demand %v", accesses))
	}
	b.demand[core] += accesses
}

// Demand returns the declared demand for a core this tick.
func (b *Bus) Demand(core int) float64 { return b.demand[core] }

// Resolve computes the latency-inflation factor λ for this tick:
// λ = max(1, totalDemand/capacityPerTick).
func (b *Bus) Resolve() float64 {
	total := 0.0
	for _, d := range b.demand {
		total += d
	}
	cap := b.CapacityPerTick()
	lambda := 1.0
	if total > cap {
		lambda = total / cap
	}
	b.lastLambda = lambda
	return lambda
}

// Lambda returns the inflation factor from the last Resolve.
func (b *Bus) Lambda() float64 { return b.lastLambda }

// Slowdown converts λ into the execution-progress fraction of a task
// with memory-boundedness m ∈ [0,1]: progress = 1/(1+(λ−1)·m).
func Slowdown(lambda, memBound float64) float64 {
	if lambda <= 1 || memBound <= 0 {
		return 1
	}
	if memBound > 1 {
		memBound = 1
	}
	return 1 / (1 + (lambda-1)*memBound)
}

// Charge records accesses actually issued by a core into its
// performance counter and returns the new count.
func (b *Bus) Charge(core int, accesses float64) uint64 {
	if accesses < 0 {
		panic("membw: negative charge")
	}
	b.counters[core] += uint64(accesses + 0.5)
	return b.counters[core]
}

// Counter reads a core's lifetime access count (the PMC MemGuard
// programs its overflow interrupt on).
func (b *Bus) Counter(core int) uint64 { return b.counters[core] }

// Reset zeroes all per-core counters and per-tick demand, returning
// the bus to its just-built state. Capacity configuration survives.
func (b *Bus) Reset() {
	for i := range b.demand {
		b.demand[i] = 0
		b.counters[i] = 0
	}
	b.lastLambda = 1
}

// BusState is a snapshot of the bus's dynamic state: the per-core
// performance counters, the per-tick demand, and the last resolved λ.
// Capacity configuration stays with its owner.
type BusState struct {
	demand     []float64
	counters   []uint64
	lastLambda float64
}

// SnapshotInto captures the bus's dynamic state into st, reusing st's
// buffers.
func (b *Bus) SnapshotInto(st *BusState) {
	st.demand = append(st.demand[:0], b.demand...)
	st.counters = append(st.counters[:0], b.counters...)
	st.lastLambda = b.lastLambda
}

// RestoreFrom rewinds the bus to a captured state, keeping its own
// capacity configuration. The core counts must match.
func (b *Bus) RestoreFrom(st *BusState) {
	if len(st.demand) != len(b.demand) || len(st.counters) != len(b.counters) {
		panic("membw: RestoreFrom with mismatched core count")
	}
	copy(b.demand, st.demand)
	copy(b.counters, st.counters)
	b.lastLambda = st.lastLambda
}

// ResetCounter zeroes one core's counter, returning the old value.
func (b *Bus) ResetCounter(core int) uint64 {
	old := b.counters[core]
	b.counters[core] = 0
	return old
}
