package vm

import (
	"testing"
	"time"

	"containerdrone/internal/sched"
)

const tick = 100 * time.Microsecond

func run(c *sched.CPU, d time.Duration) {
	steps := int64(d / tick)
	for i := int64(0); i < steps; i++ {
		c.Tick(time.Duration(i) * tick)
	}
}

func TestIdleVMCostsCPU(t *testing.T) {
	cpu := sched.NewCPU(4, tick, nil, nil)
	v, err := Start(cpu, DefaultQEMUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Running() {
		t.Fatal("VM not running after Start")
	}
	run(cpu, time.Second)
	// Idle rates should sit near 1 - housekeeping utilization.
	wants := []float64{0.91, 0.84, 0.82, 0.78}
	for core, want := range wants {
		got := cpu.IdleRate(core)
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("core %d idle = %.3f, want ≈%.2f", core, got, want)
		}
	}
}

func TestStopRemovesLoad(t *testing.T) {
	cpu := sched.NewCPU(4, tick, nil, nil)
	v, _ := Start(cpu, DefaultQEMUConfig())
	v.Stop()
	if v.Running() {
		t.Fatal("VM still running")
	}
	run(cpu, 100*time.Millisecond)
	for core := 0; core < 4; core++ {
		if got := cpu.IdleRate(core); got != 1 {
			t.Fatalf("core %d idle = %v after VM stop", core, got)
		}
	}
	v.Stop() // idempotent
}

func TestGuestTaskInflation(t *testing.T) {
	cpu := sched.NewCPU(1, tick, nil, nil)
	cfg := Config{Name: "q", TranslationOverhead: 8, Priority: 5}
	v, err := Start(cpu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	guest := &sched.Task{
		Name: "ctl", Core: 0, Priority: 50,
		Period: 10 * time.Millisecond, WCET: time.Millisecond,
	}
	wrapped, err := v.WrapGuestTask(guest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.WCET != 8*time.Millisecond {
		t.Fatalf("wrapped WCET = %v, want 8ms", wrapped.WCET)
	}
	if wrapped.Priority != 5 {
		t.Fatalf("wrapped priority = %d, want capped at 5", wrapped.Priority)
	}
	run(cpu, 100*time.Millisecond)
	if wrapped.Stats().Completed == 0 {
		t.Fatal("wrapped guest task never ran")
	}
}

func TestGuestTaskTooTightRejected(t *testing.T) {
	cpu := sched.NewCPU(1, tick, nil, nil)
	v, _ := Start(cpu, Config{Name: "q", TranslationOverhead: 8, Priority: 5})
	// A 250 Hz controller with 1 ms WCET cannot be emulated: 8 ms > 4 ms.
	guest := &sched.Task{
		Name: "px4", Core: 0, Priority: 50,
		Period: 4 * time.Millisecond, WCET: time.Millisecond,
	}
	if _, err := v.WrapGuestTask(guest, 0); err == nil {
		t.Fatal("infeasible guest task accepted — the paper's VM latency argument requires rejection")
	}
}

func TestBusyGuestTaskWraps(t *testing.T) {
	cpu := sched.NewCPU(1, tick, nil, nil)
	v, _ := Start(cpu, Config{Name: "q", TranslationOverhead: 8, Priority: 5})
	hog := &sched.Task{Name: "hog", Core: 0, Priority: 50, AccessRate: 1e6, MemBound: 0.5}
	w, err := v.WrapGuestTask(hog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Busy() || w.AccessRate != 1e6 {
		t.Fatalf("busy wrap lost properties: %+v", w)
	}
}

func TestConfigValidation(t *testing.T) {
	cpu := sched.NewCPU(2, tick, nil, nil)
	if _, err := Start(nil, DefaultQEMUConfig()); err == nil {
		t.Fatal("nil CPU accepted")
	}
	if _, err := Start(cpu, Config{TranslationOverhead: 0.5}); err == nil {
		t.Fatal("overhead < 1 accepted")
	}
	if _, err := Start(cpu, Config{TranslationOverhead: 8, HousekeepingUtil: []float64{0.1, 0.1, 0.1}}); err == nil {
		t.Fatal("too many housekeeping entries accepted")
	}
	if _, err := Start(cpu, Config{TranslationOverhead: 8, HousekeepingUtil: []float64{1.5}}); err == nil {
		t.Fatal("utilization >= 1 accepted")
	}
}

func TestWrapRequiresRunning(t *testing.T) {
	cpu := sched.NewCPU(1, tick, nil, nil)
	v, _ := Start(cpu, Config{Name: "q", TranslationOverhead: 2, Priority: 5})
	v.Stop()
	if _, err := v.WrapGuestTask(&sched.Task{Name: "g", Core: 0, Priority: 1,
		Period: time.Second, WCET: time.Millisecond}, 0); err == nil {
		t.Fatal("wrap on stopped VM accepted")
	}
}
