// Package vm models the QEMU virtual-machine baseline of the paper's
// Table II (system overhead comparison). The paper boots a QEMU v3.0.0
// ARM Versatile/PB guest with 256 MB RAM beside the host workload and
// measures per-core CPU idle rates; even an *idle* guest costs the
// host 14–23% of each core, because TCG binary translation, timer and
// device emulation all burn host cycles continuously. Containers, by
// contrast, add only the engine daemon (~1%) — that gap is the
// paper's argument for container-based Simplex over VirtualDrone's
// VM-based design.
//
// The model has two parts:
//
//   - standing emulation load: periodic housekeeping tasks placed on
//     host cores with configurable utilization, representing vCPU
//     translation and device emulation of an idle guest;
//   - guest-task wrapping: a guest workload's WCET inflates by the
//     translation overhead factor when scheduled through the VM.
package vm

import (
	"errors"
	"fmt"
	"time"

	"containerdrone/internal/sched"
)

// Config describes one virtual machine.
type Config struct {
	Name string
	// MemoryMB is the guest RAM size (bookkeeping only).
	MemoryMB int
	// HousekeepingUtil is the standing host-CPU utilization the idle
	// guest imposes on each host core, index = core.
	HousekeepingUtil []float64
	// TranslationOverhead multiplies guest task WCET (TCG emulation
	// of ARM-on-ARM without KVM runs around an order of magnitude
	// slower than native).
	TranslationOverhead float64
	// Priority of the emulation threads (ordinary processes: low).
	Priority int
}

// DefaultQEMUConfig returns a configuration calibrated so that one
// idle VM reproduces the shape of the paper's Table II row
// (idle rates ≈ 0.86/0.83/0.81/0.77 against a native baseline of
// 0.95/0.99/0.99/0.99).
func DefaultQEMUConfig() Config {
	return Config{
		Name:                "qemu-versatilepb",
		MemoryMB:            256,
		HousekeepingUtil:    []float64{0.09, 0.16, 0.18, 0.22},
		TranslationOverhead: 8,
		Priority:            5,
	}
}

// VM is a started virtual machine.
type VM struct {
	cfg   Config
	cpu   *sched.CPU
	tasks []*sched.Task
	up    bool
}

// Start boots the VM on the host scheduler, registering its standing
// emulation load.
func Start(cpu *sched.CPU, cfg Config) (*VM, error) {
	if cpu == nil {
		return nil, errors.New("vm: nil CPU")
	}
	if cfg.TranslationOverhead < 1 {
		return nil, fmt.Errorf("vm: translation overhead %v must be >= 1", cfg.TranslationOverhead)
	}
	if len(cfg.HousekeepingUtil) > cpu.Cores() {
		return nil, fmt.Errorf("vm: %d housekeeping entries for %d cores",
			len(cfg.HousekeepingUtil), cpu.Cores())
	}
	v := &VM{cfg: cfg, cpu: cpu, up: true}
	const period = 10 * time.Millisecond
	for core, util := range cfg.HousekeepingUtil {
		if util <= 0 {
			continue
		}
		if util >= 1 {
			return nil, fmt.Errorf("vm: housekeeping utilization %v on core %d out of range", util, core)
		}
		t := cpu.Add(&sched.Task{
			Name:     fmt.Sprintf("%s-emu%d", cfg.Name, core),
			Core:     core,
			Priority: cfg.Priority,
			Period:   period,
			WCET:     time.Duration(util * float64(period)),
			// Emulation churns the translation cache: mildly
			// memory-intensive.
			AccessRate: 2e6,
			MemBound:   0.2,
		})
		v.tasks = append(v.tasks, t)
	}
	return v, nil
}

// Stop shuts the VM down, removing its emulation load.
func (v *VM) Stop() {
	if !v.up {
		return
	}
	for _, t := range v.tasks {
		v.cpu.Remove(t)
	}
	v.tasks = nil
	v.up = false
}

// Running reports whether the VM is up.
func (v *VM) Running() bool { return v.up }

// Config returns the VM's configuration.
func (v *VM) Config() Config { return v.cfg }

// WrapGuestTask converts a guest workload into the host task that
// emulates it: WCET inflated by the translation overhead, priority
// capped at the VM's emulation priority, pinned to the given host
// core. It returns an error when the inflated WCET no longer fits the
// period — the static version of the paper's observation that "the
// high latency introduced by the virtual machine makes it impossible
// to enforce more real-time resource control".
func (v *VM) WrapGuestTask(guest *sched.Task, hostCore int) (*sched.Task, error) {
	if !v.up {
		return nil, errors.New("vm: not running")
	}
	if guest.Busy() {
		wrapped := &sched.Task{
			Name:       v.cfg.Name + "/" + guest.Name,
			Core:       hostCore,
			Priority:   v.cfg.Priority,
			AccessRate: guest.AccessRate,
			MemBound:   guest.MemBound,
			Work:       guest.Work,
		}
		v.tasks = append(v.tasks, v.cpu.Add(wrapped))
		return wrapped, nil
	}
	wcet := time.Duration(float64(guest.WCET) * v.cfg.TranslationOverhead)
	if wcet > guest.Period {
		return nil, fmt.Errorf("vm: guest task %q emulated WCET %v exceeds period %v",
			guest.Name, wcet, guest.Period)
	}
	wrapped := &sched.Task{
		Name:       v.cfg.Name + "/" + guest.Name,
		Core:       hostCore,
		Priority:   v.cfg.Priority,
		Period:     guest.Period,
		WCET:       wcet,
		AccessRate: guest.AccessRate,
		MemBound:   guest.MemBound,
		Work:       guest.Work,
	}
	v.tasks = append(v.tasks, v.cpu.Add(wrapped))
	return wrapped, nil
}
