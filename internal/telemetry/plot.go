package telemetry

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Plot renders one axis of a flight log as a multi-row ASCII chart
// with the setpoint overlaid — a terminal rendition of the paper's
// Figs 4–7 (estimated trajectory vs setpoint per axis). The chart is
// width columns by height rows; '*' is the estimate, '-' the
// setpoint, '#' where they coincide.
func Plot(samples []Sample, axis func(Sample) float64, spAxis func(Sample) float64, width, height int) string {
	if len(samples) == 0 || width <= 0 || height <= 1 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		v, sp := axis(s), spAxis(s)
		lo = math.Min(lo, math.Min(v, sp))
		hi = math.Max(hi, math.Max(v, sp))
	}
	if hi-lo < 1e-9 {
		hi = lo + 1e-9
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		} else if r >= height {
			r = height - 1
		}
		return r
	}
	per := float64(len(samples)) / float64(width)
	for col := 0; col < width; col++ {
		idx := int(float64(col) * per)
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		s := samples[idx]
		spRow := row(spAxis(s))
		vRow := row(axis(s))
		grid[spRow][col] = '-'
		if vRow == spRow {
			grid[vRow][col] = '#'
		} else {
			grid[vRow][col] = '*'
		}
	}

	t0 := samples[0].Time
	t1 := samples[len(samples)-1].Time
	var b strings.Builder
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.2f ", (hi+lo)/2)
		}
		b.WriteString(label)
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(fmt.Sprintf("        %-8s%*s\n",
		fmtSec(t0), width-8, fmtSec(t1)))
	return b.String()
}

func fmtSec(d time.Duration) string {
	return fmt.Sprintf("%.0fs", d.Seconds())
}

// SetpointX/Y/Z are Plot accessors for the setpoint series.
func SetpointX(s Sample) float64 { return s.Setpoint.X }

// SetpointY returns the Y setpoint of a sample.
func SetpointY(s Sample) float64 { return s.Setpoint.Y }

// SetpointZ returns the Z setpoint of a sample.
func SetpointZ(s Sample) float64 { return s.Setpoint.Z }
