package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"

	"containerdrone/internal/physics"
)

func sampleAt(sec float64, sp, pos physics.Vec3) Sample {
	return Sample{
		Time:     time.Duration(sec * float64(time.Second)),
		Setpoint: sp,
		Position: pos,
		Source:   "complex",
	}
}

func TestMetricsOnPerfectTracking(t *testing.T) {
	l := NewFlightLog()
	for i := 0; i < 100; i++ {
		p := physics.Vec3{Z: 1}
		l.Add(sampleAt(float64(i)*0.01, p, p))
	}
	m := l.Metrics()
	if m.RMSError != 0 || m.MaxDeviation != 0 {
		t.Fatalf("perfect tracking metrics = %+v", m)
	}
	if m.Samples != 100 {
		t.Fatalf("Samples = %d", m.Samples)
	}
}

func TestMetricsConstantOffset(t *testing.T) {
	l := NewFlightLog()
	sp := physics.Vec3{Z: 1}
	pos := physics.Vec3{X: 3, Y: 4, Z: 1} // 5 m error
	for i := 0; i < 10; i++ {
		l.Add(sampleAt(float64(i), sp, pos))
	}
	m := l.Metrics()
	if math.Abs(m.RMSError-5) > 1e-9 || math.Abs(m.MaxDeviation-5) > 1e-9 {
		t.Fatalf("metrics = %+v, want 5m", m)
	}
}

func TestMetricsMaxTilt(t *testing.T) {
	l := NewFlightLog()
	s := sampleAt(0, physics.Vec3{}, physics.Vec3{})
	s.Roll = -0.4
	s.Pitch = 0.2
	l.Add(s)
	if got := l.Metrics().MaxTilt; math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("MaxTilt = %v", got)
	}
}

func TestMetricsEmpty(t *testing.T) {
	if m := Compute(nil); m.Samples != 0 || m.RMSError != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestWindow(t *testing.T) {
	l := NewFlightLog()
	for i := 0; i < 30; i++ {
		l.Add(sampleAt(float64(i), physics.Vec3{}, physics.Vec3{X: float64(i)}))
	}
	w := l.Window(10*time.Second, 20*time.Second)
	if len(w) != 10 {
		t.Fatalf("window size = %d", len(w))
	}
	if w[0].Position.X != 10 || w[9].Position.X != 19 {
		t.Fatalf("window contents wrong: %v..%v", w[0].Position.X, w[9].Position.X)
	}
	wm := l.WindowMetrics(10*time.Second, 20*time.Second)
	if wm.Samples != 10 {
		t.Fatalf("window metrics samples = %d", wm.Samples)
	}
}

func TestCrashMark(t *testing.T) {
	l := NewFlightLog()
	if c, _ := l.Crashed(); c {
		t.Fatal("fresh log crashed")
	}
	l.MarkCrash(12 * time.Second)
	l.MarkCrash(15 * time.Second) // first wins
	c, at := l.Crashed()
	if !c || at != 12*time.Second {
		t.Fatalf("crash = %v at %v", c, at)
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewFlightLog()
	l.Add(sampleAt(1.5, physics.Vec3{X: 1, Z: 2}, physics.Vec3{X: 0.9, Z: 2.1}))
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t_s,x_sp,x,") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.500,1.0000,0.9000") {
		t.Fatalf("row content wrong: %q", out)
	}
	if !strings.Contains(out, "complex") {
		t.Fatal("source column missing")
	}
}

func TestSparkline(t *testing.T) {
	l := NewFlightLog()
	for i := 0; i < 100; i++ {
		l.Add(sampleAt(float64(i)*0.1, physics.Vec3{}, physics.Vec3{Z: math.Sin(float64(i) / 10)}))
	}
	s := l.Sparkline(AxisZ, 40)
	if len([]rune(s)) == 0 {
		t.Fatal("empty sparkline")
	}
	if !strings.ContainsRune(s, '█') || !strings.ContainsRune(s, '▁') {
		t.Fatalf("sparkline lacks dynamic range: %q", s)
	}
	if NewFlightLog().Sparkline(AxisX, 40) != "" {
		t.Fatal("empty log should render empty sparkline")
	}
}

func TestAxisAccessors(t *testing.T) {
	s := Sample{Position: physics.Vec3{X: 1, Y: 2, Z: 3}}
	if AxisX(s) != 1 || AxisY(s) != 2 || AxisZ(s) != 3 {
		t.Fatal("axis accessors wrong")
	}
}

func TestSparklineFlatSeries(t *testing.T) {
	l := NewFlightLog()
	for i := 0; i < 10; i++ {
		l.Add(sampleAt(float64(i), physics.Vec3{}, physics.Vec3{Z: 1}))
	}
	if s := l.Sparkline(AxisZ, 10); s == "" {
		t.Fatal("flat series should still render")
	}
}
