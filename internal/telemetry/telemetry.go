// Package telemetry records flight trajectories and computes the
// summary metrics the paper's figures are read by: setpoint vs
// estimated position per axis (Figs 4–7 are exactly such plots),
// plus RMS tracking error, maximum deviation and the crash flag.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"containerdrone/internal/physics"
)

// Sample is one trajectory point.
type Sample struct {
	Time     time.Duration
	Setpoint physics.Vec3
	Position physics.Vec3
	Roll     float64
	Pitch    float64
	Yaw      float64
	Source   string // active controller ("complex"/"safety")
}

// FlightLog is an append-only trajectory recording.
type FlightLog struct {
	samples []Sample
	crashed bool
	crashAt time.Duration
}

// NewFlightLog returns an empty log.
func NewFlightLog() *FlightLog { return &FlightLog{} }

// NewFlightLogCap returns an empty log presized for n samples, so a
// run whose sample count is known up front (duration × sample rate)
// never reallocates in Add.
func NewFlightLogCap(n int) *FlightLog {
	if n < 0 {
		n = 0
	}
	return &FlightLog{samples: make([]Sample, 0, n)}
}

// Add appends a sample.
func (l *FlightLog) Add(s Sample) { l.samples = append(l.samples, s) }

// Reset empties the log in place, keeping its capacity, and clears the
// crash mark — the warm-pool campaign's per-run rewind.
func (l *FlightLog) Reset() {
	l.samples = l.samples[:0]
	l.crashed = false
	l.crashAt = 0
}

// LogState is a deep snapshot of a flight log: the samples recorded so
// far and the crash mark. The zero value is ready for SnapshotInto,
// which reuses its sample buffer across captures.
type LogState struct {
	samples []Sample
	crashed bool
	crashAt time.Duration
}

// SnapshotInto deep-copies the log into st; the state shares no memory
// with the log afterwards.
func (l *FlightLog) SnapshotInto(st *LogState) {
	st.samples = append(st.samples[:0], l.samples...)
	st.crashed = l.crashed
	st.crashAt = l.crashAt
}

// RestoreFrom rewinds the log to a captured state, reusing the log's
// backing storage.
func (l *FlightLog) RestoreFrom(st *LogState) {
	l.samples = append(l.samples[:0], st.samples...)
	l.crashed = st.crashed
	l.crashAt = st.crashAt
}

// MarkCrash records the vehicle crash time (first call wins).
func (l *FlightLog) MarkCrash(at time.Duration) {
	if !l.crashed {
		l.crashed = true
		l.crashAt = at
	}
}

// Crashed reports whether and when the vehicle crashed.
func (l *FlightLog) Crashed() (bool, time.Duration) { return l.crashed, l.crashAt }

// Samples returns the recorded trajectory (caller must not mutate).
func (l *FlightLog) Samples() []Sample { return l.samples }

// Len returns the number of samples.
func (l *FlightLog) Len() int { return len(l.samples) }

// Window returns the samples with from <= Time < to.
func (l *FlightLog) Window(from, to time.Duration) []Sample {
	var out []Sample
	for _, s := range l.samples {
		if s.Time >= from && s.Time < to {
			out = append(out, s)
		}
	}
	return out
}

// Metrics summarizes tracking quality over a set of samples.
type Metrics struct {
	RMSError     float64 // m, 3D RMS setpoint error
	MaxDeviation float64 // m, worst 3D setpoint error
	MaxTilt      float64 // rad, worst roll/pitch magnitude
	Samples      int
}

// Degrees converts an angle from radians to degrees — the shared
// tilt-formatting helper of every summary printer.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// MaxTiltDeg returns the worst tilt in degrees.
func (m Metrics) MaxTiltDeg() float64 { return Degrees(m.MaxTilt) }

// Compute derives metrics from samples.
func Compute(samples []Sample) Metrics {
	var m Metrics
	m.Samples = len(samples)
	if len(samples) == 0 {
		return m
	}
	sumSq := 0.0
	for _, s := range samples {
		err := s.Position.Sub(s.Setpoint).Norm()
		sumSq += err * err
		if err > m.MaxDeviation {
			m.MaxDeviation = err
		}
		tilt := math.Max(math.Abs(s.Roll), math.Abs(s.Pitch))
		if tilt > m.MaxTilt {
			m.MaxTilt = tilt
		}
	}
	m.RMSError = math.Sqrt(sumSq / float64(len(samples)))
	return m
}

// Metrics over the whole log.
func (l *FlightLog) Metrics() Metrics { return Compute(l.samples) }

// WindowMetrics computes metrics over [from, to).
func (l *FlightLog) WindowMetrics(from, to time.Duration) Metrics {
	return Compute(l.Window(from, to))
}

// WriteCSV emits the trajectory in the column layout of the paper's
// figures: time, setpoint and estimate per axis, attitude, source.
func (l *FlightLog) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_s,x_sp,x,y_sp,y,z_sp,z,roll,pitch,yaw,source"); err != nil {
		return err
	}
	for _, s := range l.samples {
		_, err := fmt.Fprintf(w, "%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%s\n",
			s.Time.Seconds(),
			s.Setpoint.X, s.Position.X,
			s.Setpoint.Y, s.Position.Y,
			s.Setpoint.Z, s.Position.Z,
			s.Roll, s.Pitch, s.Yaw, s.Source)
		if err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders one axis of the trajectory as a compact ASCII
// strip for terminal output: width columns spanning the log duration.
func (l *FlightLog) Sparkline(axis func(Sample) float64, width int) string {
	if len(l.samples) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range l.samples {
		v := axis(s)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max-min < 1e-9 {
		max = min + 1e-9
	}
	var b strings.Builder
	per := len(l.samples) / width
	if per < 1 {
		per = 1
	}
	for i := 0; i < len(l.samples); i += per {
		v := axis(l.samples[i])
		idx := int((v - min) / (max - min) * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		} else if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// AxisX/AxisY/AxisZ are Sparkline accessors.
func AxisX(s Sample) float64 { return s.Position.X }

// AxisY returns the Y coordinate of a sample.
func AxisY(s Sample) float64 { return s.Position.Y }

// AxisZ returns the Z coordinate of a sample.
func AxisZ(s Sample) float64 { return s.Position.Z }
