package telemetry

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"containerdrone/internal/physics"
)

func demoLog(crashed bool) *FlightLog {
	l := NewFlightLog()
	for i := 0; i < 50; i++ {
		l.Add(Sample{
			Time:     time.Duration(i) * 20 * time.Millisecond,
			Setpoint: physics.Vec3{Z: 1},
			Position: physics.Vec3{X: 0.01 * float64(i), Z: 1 + 0.1*math.Sin(float64(i))},
			Roll:     0.01 * float64(i),
			Pitch:    -0.005 * float64(i),
			Yaw:      0.5,
			Source:   "complex",
		})
	}
	if crashed {
		l.MarkCrash(700 * time.Millisecond)
	}
	return l
}

func TestBlackboxRoundTrip(t *testing.T) {
	in := demoLog(true)
	var buf bytes.Buffer
	if err := WriteBlackbox(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBlackbox(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("sample count %d != %d", out.Len(), in.Len())
	}
	ci, ti := in.Crashed()
	co, to := out.Crashed()
	if ci != co || ti != to {
		t.Fatalf("crash flag round trip: (%v,%v) != (%v,%v)", co, to, ci, ti)
	}
	for i, want := range in.Samples() {
		got := out.Samples()[i]
		if got.Time != want.Time || got.Source != want.Source {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, got, want)
		}
		if math.Abs(got.Position.X-want.Position.X) > 1e-6 ||
			math.Abs(got.Roll-want.Roll) > 1e-6 {
			t.Fatalf("record %d value mismatch", i)
		}
	}
}

func TestBlackboxNoCrashFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlackbox(&buf, demoLog(false)); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBlackbox(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := out.Crashed(); c {
		t.Fatal("crash flag appeared from nowhere")
	}
}

func TestBlackboxRejectsGarbage(t *testing.T) {
	if _, err := ReadBlackbox(bytes.NewReader([]byte("not a blackbox"))); !errors.Is(err, ErrBadBlackbox) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadBlackbox(bytes.NewReader(nil)); !errors.Is(err, ErrBadBlackbox) {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestBlackboxRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlackbox(&buf, demoLog(false)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := ReadBlackbox(bytes.NewReader(data)); !errors.Is(err, ErrBlackboxVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlackboxRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlackbox(&buf, demoLog(true)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 15, 30, len(data) / 2, len(data) - 1} {
		if _, err := ReadBlackbox(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBlackboxEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlackbox(&buf, NewFlightLog()); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBlackbox(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty log round-tripped to %d samples", out.Len())
	}
}

// Property: any log of valid samples round-trips with f32 precision.
func TestBlackboxRoundTripProperty(t *testing.T) {
	f := func(times []uint32, x float32, crashed bool) bool {
		l := NewFlightLog()
		for i, tm := range times {
			l.Add(Sample{
				Time:     time.Duration(tm) * time.Microsecond,
				Position: physics.Vec3{X: float64(x) * float64(i)},
				Source:   "safety",
			})
		}
		if crashed {
			l.MarkCrash(time.Second)
		}
		var buf bytes.Buffer
		if err := WriteBlackbox(&buf, l); err != nil {
			return false
		}
		out, err := ReadBlackbox(&buf)
		if err != nil {
			return false
		}
		if out.Len() != l.Len() {
			return false
		}
		c1, _ := l.Crashed()
		c2, _ := out.Crashed()
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
