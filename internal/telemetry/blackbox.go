package telemetry

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"containerdrone/internal/physics"
)

// Blackbox is the flight-data-recorder format: a compact binary
// serialization of a FlightLog, so a crashed run can be archived and
// replayed through the same analysis pipeline (metrics, plots, CSV).
//
// Layout (little endian):
//
//	magic "CDBB" (4) | version u16 (2) | flags u16 (2) | count u32 (4)
//	| crashNS i64 (8)
//	then count records of:
//	timeNS i64 | sp[3] f32 | pos[3] f32 | rpy[3] f32 | srcLen u8 | src
//
// flags bit 0: crashed.

// BlackboxMagic identifies the format.
var BlackboxMagic = [4]byte{'C', 'D', 'B', 'B'}

// BlackboxVersion is the current format version.
const BlackboxVersion = 1

// Blackbox errors.
var (
	ErrBadBlackbox     = errors.New("telemetry: not a blackbox file")
	ErrBlackboxVersion = errors.New("telemetry: unsupported blackbox version")
)

// WriteBlackbox serializes the log.
func WriteBlackbox(w io.Writer, l *FlightLog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(BlackboxMagic[:]); err != nil {
		return err
	}
	var flags uint16
	crashed, crashAt := l.Crashed()
	if crashed {
		flags |= 1
	}
	hdr := make([]byte, 2+2+4+8)
	binary.LittleEndian.PutUint16(hdr[0:], BlackboxVersion)
	binary.LittleEndian.PutUint16(hdr[2:], flags)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(l.Len()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(crashAt.Nanoseconds()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 8+9*4)
	for _, s := range l.Samples() {
		binary.LittleEndian.PutUint64(rec[0:], uint64(s.Time.Nanoseconds()))
		putVec(rec[8:], s.Setpoint)
		putVec(rec[20:], s.Position)
		putF32b(rec[32:], s.Roll)
		putF32b(rec[36:], s.Pitch)
		putF32b(rec[40:], s.Yaw)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		if len(s.Source) > 255 {
			return fmt.Errorf("telemetry: source %q too long", s.Source)
		}
		if err := bw.WriteByte(byte(len(s.Source))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.Source); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBlackbox parses a serialized log.
func ReadBlackbox(r io.Reader) (*FlightLog, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBlackbox, err)
	}
	if magic != BlackboxMagic {
		return nil, ErrBadBlackbox
	}
	hdr := make([]byte, 2+2+4+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadBlackbox)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != BlackboxVersion {
		return nil, fmt.Errorf("%w: %d", ErrBlackboxVersion, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[2:])
	count := binary.LittleEndian.Uint32(hdr[4:])
	crashNS := int64(binary.LittleEndian.Uint64(hdr[8:]))

	// The header carries the record count, so the log is presized and
	// replay never reallocates mid-read. The hint is capped so a
	// corrupt or hostile header cannot commit the whole heap up front.
	capHint := int(count)
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	l := NewFlightLogCap(capHint)
	rec := make([]byte, 8+9*4)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrBadBlackbox, i)
		}
		var s Sample
		s.Time = time.Duration(binary.LittleEndian.Uint64(rec[0:]))
		s.Setpoint = getVec(rec[8:])
		s.Position = getVec(rec[20:])
		s.Roll = getF32b(rec[32:])
		s.Pitch = getF32b(rec[36:])
		s.Yaw = getF32b(rec[40:])
		n, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated source at record %d", ErrBadBlackbox, i)
		}
		src := make([]byte, n)
		if _, err := io.ReadFull(br, src); err != nil {
			return nil, fmt.Errorf("%w: truncated source at record %d", ErrBadBlackbox, i)
		}
		s.Source = string(src)
		l.Add(s)
	}
	if flags&1 != 0 {
		l.MarkCrash(time.Duration(crashNS))
	}
	return l, nil
}

func putVec(b []byte, v physics.Vec3) {
	putF32b(b[0:], v.X)
	putF32b(b[4:], v.Y)
	putF32b(b[8:], v.Z)
}

func getVec(b []byte) physics.Vec3 {
	return physics.Vec3{X: getF32b(b[0:]), Y: getF32b(b[4:]), Z: getF32b(b[8:])}
}

func putF32b(b []byte, v float64) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v)))
}

func getF32b(b []byte) float64 {
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
}
