package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"

	"containerdrone/internal/physics"
)

func sineLog(n int) *FlightLog {
	l := NewFlightLog()
	for i := 0; i < n; i++ {
		l.Add(Sample{
			Time:     time.Duration(i) * 100 * time.Millisecond,
			Setpoint: physics.Vec3{Z: 1},
			Position: physics.Vec3{Z: 1 + 0.5*math.Sin(float64(i)/10)},
		})
	}
	return l
}

func TestPlotRendersBothSeries(t *testing.T) {
	l := sineLog(300)
	p := Plot(l.Samples(), AxisZ, SetpointZ, 60, 10)
	if p == "" {
		t.Fatal("empty plot")
	}
	if !strings.ContainsRune(p, '*') {
		t.Fatal("estimate series missing")
	}
	if !strings.ContainsAny(p, "-#") {
		t.Fatal("setpoint series missing")
	}
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	if len(lines) != 11 { // height rows + time axis
		t.Fatalf("plot has %d lines, want 11", len(lines))
	}
}

func TestPlotAxisLabels(t *testing.T) {
	l := sineLog(300)
	p := Plot(l.Samples(), AxisZ, SetpointZ, 60, 8)
	if !strings.Contains(p, "0s") {
		t.Fatal("time axis labels missing")
	}
	// The max label should be near 1.5 (+5% pad).
	if !strings.Contains(p, "1.5") {
		t.Fatalf("value labels missing:\n%s", p)
	}
}

func TestPlotCoincidenceMark(t *testing.T) {
	// Perfect tracking: every column should be '#'.
	l := NewFlightLog()
	for i := 0; i < 100; i++ {
		p := physics.Vec3{Z: 1}
		l.Add(Sample{Time: time.Duration(i) * time.Second, Setpoint: p, Position: p})
	}
	p := Plot(l.Samples(), AxisZ, SetpointZ, 40, 6)
	if !strings.ContainsRune(p, '#') {
		t.Fatal("coincidence mark missing on perfect tracking")
	}
	if strings.ContainsRune(p, '*') {
		t.Fatal("divergent mark present on perfect tracking")
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if Plot(nil, AxisZ, SetpointZ, 40, 8) != "" {
		t.Fatal("nil samples should render empty")
	}
	l := sineLog(10)
	if Plot(l.Samples(), AxisZ, SetpointZ, 0, 8) != "" {
		t.Fatal("zero width should render empty")
	}
	if Plot(l.Samples(), AxisZ, SetpointZ, 40, 1) != "" {
		t.Fatal("height 1 should render empty")
	}
}

func TestSetpointAccessors(t *testing.T) {
	s := Sample{Setpoint: physics.Vec3{X: 1, Y: 2, Z: 3}}
	if SetpointX(s) != 1 || SetpointY(s) != 2 || SetpointZ(s) != 3 {
		t.Fatal("setpoint accessors wrong")
	}
}
