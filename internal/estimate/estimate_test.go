package estimate

import (
	"math"
	"testing"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
	"containerdrone/internal/sim"
)

// feedHover primes a filter with one level hover sample at t=0.
func feedHover(f *Filter) {
	f.FeedIMU(sensors.IMUReading{
		TimeUS: 0,
		Accel:  physics.Vec3{Z: 9.81},
		Quat:   physics.IdentityQuat(),
	})
	f.FeedFix(sensors.GPSReading{TimeUS: 0, Pos: physics.Vec3{Z: 1}, FixOK: true})
}

func TestInitializesLevelFromAccel(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	st := f.State()
	if st.Attitude.TiltAngle() > 0.01 {
		t.Fatalf("initial tilt %v from level accel", st.Attitude.TiltAngle())
	}
	if !st.Healthy {
		t.Fatal("not healthy after first samples")
	}
}

func TestGyroIntegrationTracksRotation(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	// Rotate at 0.5 rad/s about X for 1 s, sampled at 250 Hz. Keep the
	// accelerometer consistent with the rotating body so the
	// correction term does not fight the motion.
	truth := physics.IdentityQuat()
	omega := physics.Vec3{X: 0.5}
	for i := 1; i <= 250; i++ {
		truth = truth.Integrate(omega, 0.004)
		f.FeedIMU(sensors.IMUReading{
			TimeUS: uint64(i * 4000),
			Gyro:   omega,
			Accel:  truth.Conj().Rotate(physics.Vec3{Z: 9.81}),
		})
	}
	roll, _, _ := f.State().Attitude.Euler()
	if math.Abs(roll-0.5) > 0.05 {
		t.Fatalf("estimated roll %v after 1s at 0.5 rad/s", roll)
	}
}

func TestAccelCorrectionRemovesDrift(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	// Stationary vehicle, but gyro has a constant bias: the
	// accelerometer correction must bound the attitude error.
	bias := physics.Vec3{X: 0.02}  // 1.1°/s of drift
	for i := 1; i <= 250*30; i++ { // 30 s
		f.FeedIMU(sensors.IMUReading{
			TimeUS: uint64(i * 4000),
			Gyro:   bias,
			Accel:  physics.Vec3{Z: 9.81},
		})
	}
	tilt := f.State().Attitude.TiltAngle()
	// Unbounded integration would reach 33°; correction holds it near
	// the bias/gain equilibrium (0.02/0.5 = 0.04 rad).
	if tilt > 0.08 {
		t.Fatalf("tilt drifted to %.3f rad despite accel correction", tilt)
	}
}

func TestPositionDeadReckoningBetweenFixes(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	f.FeedFix(sensors.GPSReading{TimeUS: 0, Pos: physics.Vec3{Z: 1}, Vel: physics.Vec3{X: 1}, FixOK: true})
	// 100 ms of IMU-only propagation at 1 m/s.
	for i := 1; i <= 25; i++ {
		f.FeedIMU(sensors.IMUReading{TimeUS: uint64(i * 4000), Accel: physics.Vec3{Z: 9.81}})
	}
	st := f.State()
	if math.Abs(st.Pos.X-0.1) > 0.02 {
		t.Fatalf("dead-reckoned X = %v, want ≈0.1", st.Pos.X)
	}
}

func TestFixPullsPositionBack(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	// Inject dead-reckoning error, then several fixes at the truth.
	for i := 1; i <= 25; i++ {
		f.FeedIMU(sensors.IMUReading{TimeUS: uint64(i * 4000), Accel: physics.Vec3{Z: 9.81}})
	}
	for k := 1; k <= 20; k++ {
		us := uint64(100_000 + k*100_000)
		f.FeedFix(sensors.GPSReading{TimeUS: us, Pos: physics.Vec3{X: 2, Z: 1}, FixOK: true})
		f.FeedIMU(sensors.IMUReading{TimeUS: us + 4000, Accel: physics.Vec3{Z: 9.81}})
	}
	if math.Abs(f.State().Pos.X-2) > 0.1 {
		t.Fatalf("position %v did not converge to the fix", f.State().Pos)
	}
}

func TestBadFixIgnored(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	before := f.State().Pos
	f.FeedFix(sensors.GPSReading{TimeUS: 5000, Pos: physics.Vec3{X: 99}, FixOK: false})
	if f.State().Pos != before {
		t.Fatal("FixOK=false fix was consumed")
	}
}

func TestLongIMUGapMarksUnhealthy(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	f.FeedIMU(sensors.IMUReading{TimeUS: 500_000, Accel: physics.Vec3{Z: 9.81}}) // 500 ms gap
	if f.State().Healthy {
		t.Fatal("filter healthy across a 500ms IMU gap")
	}
	// A fresh fix restores health.
	f.FeedFix(sensors.GPSReading{TimeUS: 510_000, Pos: physics.Vec3{Z: 1}, FixOK: true})
	if !f.State().Healthy {
		t.Fatal("fix did not restore health")
	}
}

func TestOutOfOrderIMUDropped(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	f.FeedIMU(sensors.IMUReading{TimeUS: 8000, Accel: physics.Vec3{Z: 9.81}})
	st := f.State()
	f.FeedIMU(sensors.IMUReading{TimeUS: 4000, Gyro: physics.Vec3{X: 10}, Accel: physics.Vec3{Z: 9.81}})
	if f.State() != st {
		t.Fatal("out-of-order sample mutated the estimate")
	}
}

func TestStaleness(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	f.FeedIMU(sensors.IMUReading{TimeUS: 4000, Accel: physics.Vec3{Z: 9.81}})
	if got := f.IMUStalenessUS(10_000); got != 6000 {
		t.Fatalf("staleness = %d, want 6000", got)
	}
	if got := New(DefaultConfig()).IMUStalenessUS(10_000); got != 0 {
		t.Fatalf("unprimed staleness = %d, want 0", got)
	}
}

func TestGPSLikeCarriesState(t *testing.T) {
	f := New(DefaultConfig())
	feedHover(f)
	g := f.GPSLike()
	if g.Pos != f.State().Pos || !g.FixOK {
		t.Fatalf("GPSLike = %+v", g)
	}
}

// End-to-end: track a noisy simulated hover and stay close to truth.
func TestTracksNoisyHover(t *testing.T) {
	rng := sim.NewRNG(3)
	suite := sensors.NewSuite(sensors.DefaultNoise(), rng.Norm)
	q := physics.NewQuad(physics.DefaultParams())
	q.State.Pos = physics.Vec3{Z: 1}
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SettleRotors()

	f := New(DefaultConfig())
	const dt = 0.0001
	for i := 0; i < 100000; i++ { // 10 s
		us := uint64(float64(i) * dt * 1e6)
		if i%40 == 0 { // 250 Hz IMU
			f.FeedIMU(suite.SampleIMU(q, us))
		}
		if i%10000 == 0 { // 10 Hz fix
			f.FeedFix(suite.SampleGPS(q, us))
		}
		q.Step(dt)
	}
	st := f.State()
	if st.Pos.Sub(q.State.Pos).Norm() > 0.2 {
		t.Fatalf("position estimate error %.3fm", st.Pos.Sub(q.State.Pos).Norm())
	}
	if st.Attitude.TiltAngle() > 0.05 {
		t.Fatalf("attitude estimate tilt %.3f rad at hover", st.Attitude.TiltAngle())
	}
}
