// Package estimate implements the onboard state estimator of the
// flight stack: a quaternion complementary filter for attitude (gyro
// integration corrected toward the accelerometer's gravity direction)
// and a constant-velocity position filter corrected by GPS/Vicon
// fixes. PX4 runs an EKF in this role; the complementary structure
// reproduces the property that matters to the paper's experiments —
// estimate quality degrades with sensor staleness, so a DoS attack
// that slows the IMU driver corrupts the state the controllers act on.
package estimate

import (
	"math"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// Config sets the filter gains.
type Config struct {
	// AttCorrGain blends the accelerometer gravity direction into the
	// gyro-integrated attitude, 1/s. Small: trust the gyro short-term.
	AttCorrGain float64
	// PosCorrGain blends position fixes into the dead-reckoned
	// position, 1/s at fix time.
	PosCorrGain float64
	// VelCorrGain blends fix velocity into the filtered velocity.
	VelCorrGain float64
	// MaxCoast is the longest IMU gap integrated as-is; beyond it the
	// filter declares itself unhealthy until the next fix.
	MaxCoastUS uint64
	// Home is the position the filter starts (and resets) at, before
	// any fix arrives. A vehicle launched from a surveyed pad — a
	// fleet member holding its formation slot — knows where it is;
	// leaving Home zero reproduces the cold-start filter that dead
	// reckons from the origin until the first fix.
	Home physics.Vec3
}

// DefaultConfig returns gains matching a Navio2-grade IMU with Vicon
// position fixes.
func DefaultConfig() Config {
	return Config{
		AttCorrGain: 0.5,
		PosCorrGain: 8,
		VelCorrGain: 4,
		MaxCoastUS:  200_000, // 200 ms
	}
}

// State is the estimator output.
type State struct {
	Attitude physics.Quat
	Omega    physics.Vec3
	Pos      physics.Vec3
	Vel      physics.Vec3
	TimeUS   uint64
	Healthy  bool
}

// Filter is the estimator. It is fed IMU samples (high rate) and
// position fixes (low rate) and produces a fused state.
type Filter struct {
	cfg    Config
	st     State
	primed bool
	// staleness accounting
	lastIMUUS uint64
	lastFixUS uint64
}

// New builds a filter with the given config.
func New(cfg Config) *Filter {
	f := &Filter{cfg: cfg}
	f.st.Attitude = physics.IdentityQuat()
	f.st.Pos = cfg.Home
	return f
}

// State returns the current estimate.
func (f *Filter) State() State { return f.st }

// Reset rewinds the filter to its just-built state: identity attitude,
// unprimed, no staleness history.
func (f *Filter) Reset() {
	f.st = State{Attitude: physics.IdentityQuat(), Pos: f.cfg.Home}
	f.primed = false
	f.lastIMUUS = 0
	f.lastFixUS = 0
}

// IMUStalenessUS returns the age of the newest IMU sample relative to
// the given time — the signal a starved driver shows up in.
func (f *Filter) IMUStalenessUS(nowUS uint64) uint64 {
	if !f.primed || nowUS < f.lastIMUUS {
		return 0
	}
	return nowUS - f.lastIMUUS
}

// FeedIMU integrates one inertial sample.
func (f *Filter) FeedIMU(r sensors.IMUReading) {
	if !f.primed {
		f.primed = true
		f.st.Attitude = attitudeFromAccel(r.Accel)
		f.st.Omega = r.Gyro
		f.st.TimeUS = r.TimeUS
		f.lastIMUUS = r.TimeUS
		f.st.Healthy = true
		return
	}
	dtUS := r.TimeUS - f.lastIMUUS
	if r.TimeUS < f.lastIMUUS {
		return // out-of-order sample: drop
	}
	dt := float64(dtUS) / 1e6
	if dtUS > f.cfg.MaxCoastUS {
		// Too long a gap to integrate: hold attitude, mark unhealthy.
		f.st.Healthy = false
		f.lastIMUUS = r.TimeUS
		f.st.TimeUS = r.TimeUS
		f.st.Omega = r.Gyro
		return
	}
	// Gyro integration.
	f.st.Attitude = f.st.Attitude.Integrate(r.Gyro, dt)
	f.st.Omega = r.Gyro

	// Accelerometer correction: rotate measured specific force into
	// world; at modest accelerations it points up. Tilt the attitude a
	// little toward agreement.
	acc := r.Accel
	norm := acc.Norm()
	if norm > 1e-6 {
		worldUp := physics.Vec3{Z: 1}
		measUp := f.st.Attitude.Rotate(acc.Scale(1 / norm))
		corr := measUp.Cross(worldUp) // rotation axis & magnitude toward agreement
		gain := f.cfg.AttCorrGain * dt
		if gain > 0 {
			f.st.Attitude = f.st.Attitude.Integrate(
				f.st.Attitude.Conj().Rotate(corr.Scale(gain/dt)), dt).Normalized()
		}
	}

	// Inertial mechanization: rotate the specific force into the
	// world frame, remove gravity, and integrate velocity then
	// position. Fixes correct the accumulated drift at their rate.
	worldAcc := f.st.Attitude.Rotate(acc).Sub(physics.Vec3{Z: gravityMS2})
	f.st.Vel = f.st.Vel.Add(worldAcc.Scale(dt))
	f.st.Pos = f.st.Pos.Add(f.st.Vel.Scale(dt))
	f.st.TimeUS = r.TimeUS
	f.lastIMUUS = r.TimeUS
	f.st.Healthy = true
}

// gravityMS2 is the gravity the mechanization removes; it matches the
// physics model's constant.
const gravityMS2 = 9.81

// FeedFix folds a GPS/Vicon position fix in.
func (f *Filter) FeedFix(r sensors.GPSReading) {
	if !r.FixOK {
		return
	}
	if !f.primed {
		f.st.Pos = r.Pos
		f.st.Vel = r.Vel
		f.lastFixUS = r.TimeUS
		return
	}
	var dt float64
	if r.TimeUS > f.lastFixUS {
		dt = float64(r.TimeUS-f.lastFixUS) / 1e6
	}
	f.lastFixUS = r.TimeUS
	// Exponential pull toward the fix; a long-overdue fix snaps.
	pGain := clamp01(f.cfg.PosCorrGain * dt)
	vGain := clamp01(f.cfg.VelCorrGain * dt)
	if dt == 0 || dt > 1 {
		pGain, vGain = 1, 1
	}
	f.st.Pos = f.st.Pos.Add(r.Pos.Sub(f.st.Pos).Scale(pGain))
	f.st.Vel = f.st.Vel.Add(r.Vel.Sub(f.st.Vel).Scale(vGain))
	f.st.Healthy = true
}

// Inputs assembles controller inputs from the fused state plus the
// raw barometer/RC channels: the estimator substitutes only the
// attitude and position/velocity sources.
func (f *Filter) Inputs(baro sensors.BaroReading, rc sensors.RCReading) sensors.IMUReading {
	return sensors.IMUReading{
		TimeUS: f.st.TimeUS,
		Gyro:   f.st.Omega,
		Quat:   f.st.Attitude,
	}
}

// GPSLike returns the fused position/velocity in GPS-reading form so
// downstream code consumes estimator output through the same type.
func (f *Filter) GPSLike() sensors.GPSReading {
	return sensors.GPSReading{
		TimeUS:  f.st.TimeUS,
		Pos:     f.st.Pos,
		Vel:     f.st.Vel,
		FixOK:   f.st.Healthy,
		NumSats: 12,
	}
}

// attitudeFromAccel levels the initial attitude from the measured
// gravity direction (yaw unobservable: set to zero).
func attitudeFromAccel(acc physics.Vec3) physics.Quat {
	n := acc.Norm()
	if n < 1e-6 {
		return physics.IdentityQuat()
	}
	a := acc.Scale(1 / n)
	// Roll/pitch that map body 'up' to the measured direction.
	roll := math.Atan2(-a.Y, a.Z)
	pitch := math.Atan2(a.X, math.Sqrt(a.Y*a.Y+a.Z*a.Z))
	return physics.FromEuler(roll, pitch, 0)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
