package container

import (
	"errors"
	"testing"
	"time"

	"containerdrone/internal/cgroup"
	"containerdrone/internal/netsim"
	"containerdrone/internal/sched"
)

const tick = 100 * time.Microsecond

func testRuntime(t *testing.T) (*Runtime, *sched.CPU, *netsim.Network) {
	t.Helper()
	cpu := sched.NewCPU(4, tick, nil, nil)
	net := netsim.New(nil, nil)
	rt, err := NewRuntime(Config{
		CPU: cpu, Net: net, Root: cgroup.NewRoot(), HostName: "hce",
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt, cpu, net
}

func cceSpec() Spec {
	return Spec{
		Name:             "cce",
		Image:            Image{Name: "resin/rpi-raspbian", Tag: "jessie", SizeMB: 120},
		CPUSet:           cgroup.NewCPUSet(3),
		RTPrioCap:        sched.PrioContainer,
		MemoryLimitBytes: 256 << 20,
		Ports: []PortMapping{
			{HostPort: 14600, ContainerPort: 14600},
			{HostPort: 14660, ContainerPort: 14660},
		},
	}
}

func TestImageString(t *testing.T) {
	img := Image{Name: "resin/rpi-raspbian", Tag: "jessie"}
	if img.String() != "resin/rpi-raspbian:jessie" {
		t.Fatalf("String = %q", img.String())
	}
}

func TestLifecycle(t *testing.T) {
	rt, _, _ := testRuntime(t)
	c, err := rt.Create(cceSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateCreated {
		t.Fatalf("state = %v", c.State())
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateRunning {
		t.Fatalf("state = %v", c.State())
	}
	if err := c.Start(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double start: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double stop: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	c.Kill()
	if c.State() != StateKilled {
		t.Fatalf("state = %v", c.State())
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateCreated: "created", StateRunning: "running",
		StateStopped: "stopped", StateKilled: "killed", State(9): "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestPrivilegedRefused(t *testing.T) {
	rt, _, _ := testRuntime(t)
	spec := cceSpec()
	spec.Privileged = true
	if _, err := rt.Create(spec); !errors.Is(err, ErrPrivileged) {
		t.Fatalf("err = %v, want ErrPrivileged", err)
	}
}

func TestDuplicateNameRefused(t *testing.T) {
	rt, _, _ := testRuntime(t)
	if _, err := rt.Create(cceSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create(cceSpec()); !errors.Is(err, ErrDupContainer) {
		t.Fatalf("err = %v", err)
	}
}

func TestGet(t *testing.T) {
	rt, _, _ := testRuntime(t)
	created, _ := rt.Create(cceSpec())
	got, ok := rt.Get("cce")
	if !ok || got != created {
		t.Fatal("Get failed")
	}
	if _, ok := rt.Get("nope"); ok {
		t.Fatal("Get found a ghost")
	}
}

func TestTaskPlacementEnforced(t *testing.T) {
	rt, _, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Legal: core 3, low priority.
	ok := &sched.Task{Name: "px4", Core: 3, Priority: sched.PrioContainer,
		Period: 4 * time.Millisecond, WCET: time.Millisecond}
	if err := c.StartTask(ok); err != nil {
		t.Fatalf("legal task rejected: %v", err)
	}
	// Escaping the cpuset is refused.
	esc := &sched.Task{Name: "escape", Core: 0, Priority: 5,
		Period: 4 * time.Millisecond, WCET: time.Millisecond}
	if err := c.StartTask(esc); !errors.Is(err, cgroup.ErrCoreForbidden) {
		t.Fatalf("err = %v, want ErrCoreForbidden", err)
	}
	// Raising priority above the cap is refused (paper §III-C).
	raise := &sched.Task{Name: "raise", Core: 3, Priority: sched.PrioDriver,
		Period: 4 * time.Millisecond, WCET: time.Millisecond}
	if err := c.StartTask(raise); !errors.Is(err, cgroup.ErrPrioForbidden) {
		t.Fatalf("err = %v, want ErrPrioForbidden", err)
	}
}

func TestTaskRequiresRunning(t *testing.T) {
	rt, _, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	task := &sched.Task{Name: "t", Core: 3, Priority: 5,
		Period: time.Millisecond, WCET: 100 * time.Microsecond}
	if err := c.StartTask(task); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v, want ErrNotRunning", err)
	}
}

func TestKillRemovesTasks(t *testing.T) {
	rt, cpu, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	c.Start()
	task := &sched.Task{Name: "px4", Core: 3, Priority: 5,
		Period: time.Millisecond, WCET: 100 * time.Microsecond}
	if err := c.StartTask(task); err != nil {
		t.Fatal(err)
	}
	if len(cpu.Tasks()) != 1 {
		t.Fatalf("tasks = %d", len(cpu.Tasks()))
	}
	c.Kill()
	if len(cpu.Tasks()) != 0 {
		t.Fatal("kill left tasks in the scheduler")
	}
	if len(c.Tasks()) != 0 {
		t.Fatal("container still lists tasks")
	}
}

func TestStopTaskSingle(t *testing.T) {
	rt, cpu, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	c.Start()
	a := &sched.Task{Name: "a", Core: 3, Priority: 5, Period: time.Millisecond, WCET: 100 * time.Microsecond}
	b := &sched.Task{Name: "b", Core: 3, Priority: 5, Period: time.Millisecond, WCET: 100 * time.Microsecond}
	c.StartTask(a)
	c.StartTask(b)
	c.StopTask(a)
	if len(cpu.Tasks()) != 1 || cpu.Tasks()[0] != b {
		t.Fatal("StopTask removed the wrong task")
	}
}

func TestNetworkSandbox(t *testing.T) {
	rt, _, net := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	c.Start()
	hceEp := net.Bind(netsim.Addr{Host: "hce", Port: 14600}, 16)
	// Mapped port: allowed.
	if err := c.Send(5000, 14600, []byte("motor")); err != nil {
		t.Fatalf("mapped send failed: %v", err)
	}
	net.Step(0)
	if hceEp.Pending() != 1 {
		t.Fatal("mapped packet not delivered")
	}
	// Unmapped host port: blocked by the namespace.
	net.Bind(netsim.Addr{Host: "hce", Port: 22}, 16)
	if err := c.Send(5000, 22, []byte("ssh")); !errors.Is(err, ErrPortBlocked) {
		t.Fatalf("err = %v, want ErrPortBlocked", err)
	}
}

func TestHostToContainerDirection(t *testing.T) {
	rt, _, net := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	c.Start()
	ep, err := c.Bind(14660, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.HostSend(c, 9000, 14660, []byte("imu")); err != nil {
		t.Fatal(err)
	}
	net.Step(0)
	if ep.Pending() != 1 {
		t.Fatal("sensor packet not delivered to container")
	}
	// Unmapped container port refused both ways.
	if _, err := c.Bind(9999, 8); !errors.Is(err, ErrPortBlocked) {
		t.Fatalf("bind unmapped: %v", err)
	}
	if err := rt.HostSend(c, 9000, 9999, []byte("x")); !errors.Is(err, ErrPortBlocked) {
		t.Fatalf("send unmapped: %v", err)
	}
}

func TestSendRequiresRunning(t *testing.T) {
	rt, _, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	if err := c.Send(1, 14600, []byte("x")); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
	if err := rt.HostSend(c, 1, 14660, []byte("x")); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemoryLimitViaGroup(t *testing.T) {
	rt, _, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	if err := c.Group().Allocate(512 << 20); !errors.Is(err, cgroup.ErrMemoryLimit) {
		t.Fatalf("512MiB inside 256MiB limit: %v", err)
	}
	if err := c.Group().Allocate(64 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonOverheadTask(t *testing.T) {
	cpu := sched.NewCPU(4, tick, nil, nil)
	net := netsim.New(nil, nil)
	_, err := NewRuntime(Config{
		CPU: cpu, Net: net, Root: cgroup.NewRoot(), HostName: "hce",
		DaemonCore: 0, DaemonUtil: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cpu.Tasks()) != 1 || cpu.Tasks()[0].Name != "dockerd" {
		t.Fatal("daemon task not registered")
	}
	if u := cpu.Tasks()[0].Utilization(); u < 0.009 || u > 0.011 {
		t.Fatalf("daemon utilization = %v, want 0.01", u)
	}
}

func TestRuntimeConfigValidation(t *testing.T) {
	if _, err := NewRuntime(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
