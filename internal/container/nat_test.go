package container

import (
	"errors"
	"testing"

	"containerdrone/internal/netsim"
)

func TestHostSendGoesThroughNAT(t *testing.T) {
	rt, _, net := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	c.Start()
	ep, err := c.Bind(14660, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.HostSend(c, 9000, 14660, []byte("imu")); err != nil {
		t.Fatal(err)
	}
	net.Step(0)
	if ep.Pending() != 1 {
		t.Fatal("translated datagram not delivered")
	}
	if rt.NAT().Translations(14660) != 1 {
		t.Fatalf("conntrack = %d, want 1", rt.NAT().Translations(14660))
	}
}

func TestNATRuleConflictAcrossContainers(t *testing.T) {
	rt, _, _ := testRuntime(t)
	if _, err := rt.Create(cceSpec()); err != nil {
		t.Fatal(err)
	}
	second := cceSpec()
	second.Name = "cce2"
	if _, err := rt.Create(second); !errors.Is(err, netsim.ErrNATConflict) {
		t.Fatalf("duplicate published port accepted: %v", err)
	}
}

func TestKillWithdrawsNATRules(t *testing.T) {
	rt, _, _ := testRuntime(t)
	c, _ := rt.Create(cceSpec())
	c.Start()
	if rt.NAT().Rules() != 2 {
		t.Fatalf("rules = %d, want 2", rt.NAT().Rules())
	}
	c.Kill()
	if rt.NAT().Rules() != 0 {
		t.Fatalf("rules = %d after kill, want 0", rt.NAT().Rules())
	}
	if err := rt.HostSend(c, 9000, 14660, []byte("x")); err == nil {
		t.Fatal("HostSend to a killed container's port succeeded")
	}
}

func TestRuntimeHairpinEnabled(t *testing.T) {
	rt, _, _ := testRuntime(t)
	if !rt.NAT().Hairpin() {
		t.Fatal("runtime should enable hairpin NAT (paper §IV-B)")
	}
}
