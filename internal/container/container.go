// Package container models the Docker runtime layer of the paper's
// framework: images, container specs, the lifecycle state machine, a
// sandboxed network namespace with UDP port mappings (the hairpin-NAT
// configuration of §IV-B), and enforcement of the cgroup constraints
// (cpuset pinning, FIFO-priority cap, memory limit) on every task the
// container starts.
//
// The trust model follows the paper (§III-B): the isolation boundary
// itself is assumed sound — code inside the container can burn its own
// resources and talk through its mapped ports, but cannot escape the
// cpuset, exceed its priority cap, or reach unmapped host ports.
package container

import (
	"errors"
	"fmt"
	"time"

	"containerdrone/internal/cgroup"
	"containerdrone/internal/netsim"
	"containerdrone/internal/sched"
)

// Image identifies a container image, e.g. the Resin.io Raspbian
// Jessie image of the paper.
type Image struct {
	Name   string
	Tag    string
	SizeMB int
}

// String renders "name:tag".
func (i Image) String() string { return i.Name + ":" + i.Tag }

// PortMapping exposes one container UDP port on the host bridge.
type PortMapping struct {
	HostPort      int
	ContainerPort int
}

// Spec configures a container before creation.
type Spec struct {
	Name  string
	Image Image

	// CPUSet pins all container tasks to these cores (paper: one of
	// the four cores is assigned exclusively for CCE use).
	CPUSet cgroup.CPUSet
	// RTPrioCap is the maximum FIFO priority any container task may
	// take (Docker denies priority raising; §III-C).
	RTPrioCap int
	// MemoryLimitBytes bounds container allocations.
	MemoryLimitBytes int64
	// PIDLimit caps the processes the container may hold (Docker's
	// --pids-limit; the fork-bomb defense). 0 = unlimited.
	PIDLimit int
	// Ports are the UDP port mappings (paper: 14660 in, 14600 out).
	Ports []PortMapping
	// Privileged containers are refused: the paper creates the CCE
	// with no privilege flags.
	Privileged bool
}

// State is the container lifecycle state.
type State int

// Lifecycle states.
const (
	StateCreated State = iota
	StateRunning
	StateStopped
	StateKilled
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateKilled:
		return "killed"
	default:
		return "unknown"
	}
}

// Errors returned by the runtime.
var (
	ErrPrivileged   = errors.New("container: privileged containers are not permitted")
	ErrNotRunning   = errors.New("container: not running")
	ErrBadState     = errors.New("container: invalid state transition")
	ErrPortBlocked  = errors.New("container: destination port not mapped")
	ErrDupContainer = errors.New("container: duplicate name")
)

// Container is one sandboxed workload.
type Container struct {
	spec    Spec
	state   State
	group   *cgroup.Group
	runtime *Runtime
	tasks   []*sched.Task
	// hostAddrByPort resolves a mapped host port to the host address
	// the container may send to.
	hostOK map[int]bool
	// inPorts are container-side ports reachable from the host.
	inPorts map[int]bool
	// routes/hostRoutes cache pre-resolved netsim routes per
	// (srcPort, hostPort) pair, outbound and inbound respectively.
	// Containers talk over a handful of fixed port pairs at high rates
	// (the 400 Hz motor stream, the UDP flood, the Table-I sensor
	// streams), so a linear scan of a tiny slice beats hashing three
	// maps per datagram.
	routes     []portRoute
	hostRoutes []hostRoute

	// Checkpoint state for Reset: the task list and cgroup process
	// count as they stood when Checkpoint was called.
	chkTasks []*sched.Task
	chkPids  int
	chkValid bool
}

// portRoute is one cached container→host send path.
type portRoute struct {
	srcPort, hostPort int
	route             *netsim.Route
}

// hostRoute is one cached host→container (DNAT) send path.
type hostRoute struct {
	srcPort, hostPort int
	natGen            int
	conntrack         *int64
	route             *netsim.Route
}

// Spec returns the container's immutable spec.
func (c *Container) Spec() Spec { return c.spec }

// State returns the current lifecycle state.
func (c *Container) State() State { return c.state }

// Group exposes the container's cgroup for memory accounting.
func (c *Container) Group() *cgroup.Group { return c.group }

// Runtime is the container engine: it owns the docker cgroup subtree,
// the bridge network, and the containers. The engine's own overhead
// (the daemon process) is registered as a low-utilization host task —
// this is exactly what Table II measures.
type Runtime struct {
	cpu        *sched.CPU
	net        *netsim.Network
	nat        *netsim.NATTable
	root       *cgroup.Group
	dockerGrp  *cgroup.Group
	containers map[string]*Container
	hostName   string
	daemon     *sched.Task
}

// Config wires a runtime to its host substrates.
type Config struct {
	CPU  *sched.CPU
	Net  *netsim.Network
	Root *cgroup.Group
	// HostName is the host's network identity ("hce").
	HostName string
	// DaemonCore/DaemonUtil describe the container engine's standing
	// CPU cost. Utilization 0 disables the daemon task.
	DaemonCore int
	DaemonUtil float64
}

// NewRuntime builds a container engine.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.CPU == nil || cfg.Net == nil || cfg.Root == nil {
		return nil, errors.New("container: CPU, Net and Root are required")
	}
	grp, err := cfg.Root.NewChild("docker")
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		cpu: cfg.CPU,
		net: cfg.Net,
		// Hairpin NAT enabled, matching the paper's §IV-B deployment.
		nat:        netsim.NewNATTable(cfg.HostName, true),
		root:       cfg.Root,
		dockerGrp:  grp,
		containers: make(map[string]*Container),
		hostName:   cfg.HostName,
	}
	if cfg.DaemonUtil > 0 {
		// A long period keeps the daemon's WCET well above the
		// scheduler tick so its utilization is not quantized upward.
		period := 100 * time.Millisecond
		r.daemon = cfg.CPU.Add(&sched.Task{
			Name:     "dockerd",
			Core:     cfg.DaemonCore,
			Priority: 5,
			Period:   period,
			WCET:     time.Duration(cfg.DaemonUtil * float64(period)),
		})
	}
	return r, nil
}

// Create validates the spec and instantiates a container in the
// Created state.
func (r *Runtime) Create(spec Spec) (*Container, error) {
	if spec.Privileged {
		return nil, ErrPrivileged
	}
	if spec.Name == "" {
		return nil, errors.New("container: empty name")
	}
	if _, dup := r.containers[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDupContainer, spec.Name)
	}
	grp, err := r.dockerGrp.NewChild(spec.Name)
	if err != nil {
		return nil, err
	}
	if spec.CPUSet != nil {
		grp.SetCPUSet(spec.CPUSet)
	}
	if spec.RTPrioCap > 0 {
		grp.SetRTPrioCap(spec.RTPrioCap)
	}
	if spec.MemoryLimitBytes > 0 {
		grp.SetMemoryLimit(spec.MemoryLimitBytes)
	}
	if spec.PIDLimit > 0 {
		grp.SetPIDLimit(spec.PIDLimit)
	}
	c := &Container{
		spec:    spec,
		state:   StateCreated,
		group:   grp,
		runtime: r,
		hostOK:  make(map[int]bool),
		inPorts: make(map[int]bool),
	}
	for _, pm := range spec.Ports {
		// Install the DNAT rule publishing the container port.
		dst := netsim.Addr{Host: spec.Name, Port: pm.ContainerPort}
		if err := r.nat.AddRule(pm.HostPort, dst); err != nil {
			// Roll back rules installed so far for this container.
			for _, prev := range spec.Ports {
				if prev.HostPort == pm.HostPort {
					break
				}
				r.nat.RemoveRule(prev.HostPort)
			}
			return nil, err
		}
		c.hostOK[pm.HostPort] = true
		c.inPorts[pm.ContainerPort] = true
	}
	r.containers[spec.Name] = c
	return c, nil
}

// NAT exposes the runtime's DNAT table (telemetry and tests).
func (r *Runtime) NAT() *netsim.NATTable { return r.nat }

// Get returns a container by name.
func (r *Runtime) Get(name string) (*Container, bool) {
	c, ok := r.containers[name]
	return c, ok
}

// Start transitions Created/Stopped → Running.
func (c *Container) Start() error {
	if c.state != StateCreated && c.state != StateStopped {
		return fmt.Errorf("%w: start from %v", ErrBadState, c.state)
	}
	c.state = StateRunning
	return nil
}

// Stop transitions Running → Stopped, removing the container's tasks
// from the scheduler (graceful shutdown).
func (c *Container) Stop() error {
	if c.state != StateRunning {
		return fmt.Errorf("%w: stop from %v", ErrBadState, c.state)
	}
	c.removeTasks()
	c.state = StateStopped
	return nil
}

// Kill forcefully terminates the container (the paper's Fig 6 attack
// kills the complex controller). Its NAT rules are withdrawn.
func (c *Container) Kill() {
	c.removeTasks()
	for _, pm := range c.spec.Ports {
		c.runtime.nat.RemoveRule(pm.HostPort)
	}
	c.state = StateKilled
}

func (c *Container) removeTasks() {
	for _, t := range c.tasks {
		c.runtime.cpu.Remove(t)
		c.group.Exit()
	}
	c.tasks = nil
}

// StartTask launches a task inside the container. The cgroup layer
// enforces cpuset and priority cap; violations are errors, exactly the
// mediation Docker applies to SCHED_FIFO requests.
func (c *Container) StartTask(t *sched.Task) error {
	if c.state != StateRunning {
		return ErrNotRunning
	}
	if err := c.group.CheckPlacement(t.Core, t.Priority); err != nil {
		return err
	}
	if err := c.group.Fork(); err != nil {
		return err
	}
	c.runtime.cpu.Add(t)
	c.tasks = append(c.tasks, t)
	return nil
}

// StopTask removes a single task from the container.
func (c *Container) StopTask(t *sched.Task) {
	for i, x := range c.tasks {
		if x == t {
			c.tasks = append(c.tasks[:i], c.tasks[i+1:]...)
			c.runtime.cpu.Remove(t)
			c.group.Exit()
			return
		}
	}
}

// Tasks returns the container's running tasks.
func (c *Container) Tasks() []*sched.Task { return c.tasks }

// Checkpoint records the container's task list and cgroup process
// count so Reset can rewind to them. Call it when scenario
// construction completes, while the container is Running.
func (c *Container) Checkpoint() {
	c.chkTasks = append(c.chkTasks[:0], c.tasks...)
	c.chkPids = c.group.PIDs()
	c.chkValid = true
}

// Reset restores the checkpointed bookkeeping: mid-run task arrivals
// (attack tasks) are forgotten, mid-run stops (a killed controller)
// are reinstated, and the cgroup process count rewinds to match. The
// scheduler's own Reset restores the tasks' scheduling state; Reset
// here only re-aligns the container's view. The container must not
// have been stopped or killed since the checkpoint.
func (c *Container) Reset() {
	if !c.chkValid {
		panic("container: Reset without Checkpoint")
	}
	if c.state != StateRunning {
		panic(fmt.Sprintf("container: Reset from state %v", c.state))
	}
	clear(c.tasks)
	c.tasks = append(c.tasks[:0], c.chkTasks...)
	for c.group.PIDs() > c.chkPids {
		c.group.Exit()
	}
	// Re-forking up to a previously admitted count cannot exceed any
	// limit: counts only shrank since the checkpoint.
	for c.group.PIDs() < c.chkPids {
		if err := c.group.Fork(); err != nil {
			panic(fmt.Sprintf("container: Reset re-fork failed: %v", err))
		}
	}
}

// AtCheckpoint reports whether the container's bookkeeping (task list
// and cgroup process count) still matches its Checkpoint — true at any
// point of a run before attack or fault onset. The fork campaign's
// snapshot relies on this: a container still at its checkpoint needs no
// snapshot state of its own, because a Reset reproduces it exactly.
func (c *Container) AtCheckpoint() bool {
	if !c.chkValid || len(c.tasks) != len(c.chkTasks) {
		return false
	}
	for i, t := range c.tasks {
		if c.chkTasks[i] != t {
			return false
		}
	}
	return c.group.PIDs() == c.chkPids
}

// NetHost returns the container's network identity on the bridge.
func (c *Container) NetHost() string { return c.spec.Name }

// Bind exposes a container-side UDP port, returning its endpoint. Only
// mapped container ports may be bound (the sandboxed namespace has no
// other interfaces).
func (c *Container) Bind(port, queueCap int) (*netsim.Endpoint, error) {
	if !c.inPorts[port] {
		return nil, fmt.Errorf("%w: container port %d", ErrPortBlocked, port)
	}
	return c.runtime.net.Bind(netsim.Addr{Host: c.NetHost(), Port: port}, queueCap), nil
}

// Send transmits a datagram from the container to a host port. The
// sandboxed network namespace only reaches host ports that were
// explicitly mapped; everything else (the Internet, other hosts) is
// unreachable.
func (c *Container) Send(srcPort, hostPort int, payload []byte) error {
	if c.state != StateRunning {
		return ErrNotRunning
	}
	for i := range c.routes {
		if r := &c.routes[i]; r.srcPort == srcPort && r.hostPort == hostPort {
			r.route.Send(payload)
			return nil
		}
	}
	if !c.hostOK[hostPort] {
		return fmt.Errorf("%w: host port %d", ErrPortBlocked, hostPort)
	}
	src := netsim.Addr{Host: c.NetHost(), Port: srcPort}
	dst := netsim.Addr{Host: c.runtime.hostName, Port: hostPort}
	route := c.runtime.net.Route(src, dst)
	c.routes = append(c.routes, portRoute{srcPort: srcPort, hostPort: hostPort, route: route})
	route.Send(payload)
	return nil
}

// HostSend transmits from the host into a published container port —
// the feeder-thread direction (HCE → CCE sensor streams). The
// datagram is addressed to the host's own port and rewritten by the
// DNAT table, exactly how the paper's hairpin-NAT port mapping works.
func (r *Runtime) HostSend(c *Container, srcPort, hostPort int, payload []byte) error {
	if c.state != StateRunning {
		return ErrNotRunning
	}
	for i := range c.hostRoutes {
		hr := &c.hostRoutes[i]
		if hr.srcPort != srcPort || hr.hostPort != hostPort {
			continue
		}
		if hr.natGen == r.nat.Gen() {
			*hr.conntrack++
			hr.route.Send(payload)
			return nil
		}
		// The DNAT rule set changed (container stop/kill): drop the
		// stale entry and re-resolve below.
		c.hostRoutes = append(c.hostRoutes[:i], c.hostRoutes[i+1:]...)
		break
	}
	src := netsim.Addr{Host: r.hostName, Port: srcPort}
	addressed := netsim.Addr{Host: r.hostName, Port: hostPort}
	dst, conntrack := r.nat.Resolve(src, addressed)
	if conntrack != nil {
		// A rule applied: count the rewrite even if it publishes a
		// different container (matching Translate's accounting).
		*conntrack++
	}
	if dst == addressed || dst.Host != c.NetHost() {
		return fmt.Errorf("%w: host port %d does not publish container %q", ErrPortBlocked, hostPort, c.spec.Name)
	}
	route := r.net.Route(src, dst)
	c.hostRoutes = append(c.hostRoutes, hostRoute{
		srcPort: srcPort, hostPort: hostPort,
		natGen: r.nat.Gen(), conntrack: conntrack, route: route,
	})
	route.Send(payload)
	return nil
}
