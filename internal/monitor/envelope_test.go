package monitor

import (
	"testing"
	"time"
)

func envMonitor() *Monitor {
	m := New(Rules{MaxInterval: time.Hour, MaxAttitudeError: 10})
	m.SetEnvelope(EnvelopeRules{GeofenceRadius: 2, MaxDescentRate: 1.5, Hold: 50 * time.Millisecond})
	m.Arm(0)
	return m
}

func TestGeofenceFiresAfterHold(t *testing.T) {
	m := envMonitor()
	m.CheckEnvelope(10*time.Millisecond, 2.5, 0)
	if m.Output() != OutputComplex {
		t.Fatal("geofence fired before hold elapsed")
	}
	m.CheckEnvelope(70*time.Millisecond, 2.5, 0)
	if m.Output() != OutputSafety {
		t.Fatal("persistent geofence violation did not fire")
	}
	if _, rule, _ := m.SwitchedAt(); rule != RuleGeofence {
		t.Fatalf("rule = %v", rule)
	}
}

func TestGeofenceResetsOnReturn(t *testing.T) {
	m := envMonitor()
	m.CheckEnvelope(10*time.Millisecond, 2.5, 0)
	m.CheckEnvelope(30*time.Millisecond, 1.0, 0) // back inside
	m.CheckEnvelope(80*time.Millisecond, 2.5, 0) // new excursion, hold restarts
	if m.Output() != OutputComplex {
		t.Fatal("hold did not reset after returning inside the fence")
	}
}

func TestDescentRuleFires(t *testing.T) {
	m := envMonitor()
	m.CheckEnvelope(10*time.Millisecond, 0, -2.0) // descending 2 m/s
	m.CheckEnvelope(70*time.Millisecond, 0, -2.0)
	if m.Output() != OutputSafety {
		t.Fatal("persistent fast descent did not fire")
	}
	if _, rule, _ := m.SwitchedAt(); rule != RuleDescent {
		t.Fatalf("rule = %v", rule)
	}
}

func TestClimbDoesNotTripDescentRule(t *testing.T) {
	m := envMonitor()
	for ms := 0; ms < 500; ms += 10 {
		m.CheckEnvelope(time.Duration(ms)*time.Millisecond, 0, +3.0) // climbing
	}
	if m.Output() != OutputComplex {
		t.Fatal("climb tripped the descent rule")
	}
}

func TestEnvelopeDisabledByZeroValues(t *testing.T) {
	m := New(Rules{MaxInterval: time.Hour, MaxAttitudeError: 10})
	m.Arm(0)
	for ms := 0; ms < 500; ms += 10 {
		m.CheckEnvelope(time.Duration(ms)*time.Millisecond, 100, -100)
	}
	if m.Output() != OutputComplex {
		t.Fatal("disabled envelope rules fired")
	}
}

func TestEnvelopeRespectsArming(t *testing.T) {
	m := New(Rules{MaxInterval: time.Hour, MaxAttitudeError: 10})
	m.SetEnvelope(DefaultEnvelopeRules())
	for ms := 0; ms < 500; ms += 10 {
		m.CheckEnvelope(time.Duration(ms)*time.Millisecond, 100, -100)
	}
	if m.Output() != OutputComplex {
		t.Fatal("disarmed monitor fired envelope rules")
	}
}

func TestEnvelopeNoDoubleSwitch(t *testing.T) {
	m := envMonitor()
	calls := 0
	m.OnSwitch = func(time.Duration, Rule) { calls++ }
	for ms := 0; ms < 300; ms += 10 {
		m.CheckEnvelope(time.Duration(ms)*time.Millisecond, 10, -10)
	}
	if calls != 1 {
		t.Fatalf("OnSwitch calls = %d", calls)
	}
}

func TestDefaultEnvelopeRulesSane(t *testing.T) {
	r := DefaultEnvelopeRules()
	if r.GeofenceRadius <= 0 || r.MaxDescentRate <= 0 || r.Hold <= 0 {
		t.Fatalf("defaults = %+v", r)
	}
}
