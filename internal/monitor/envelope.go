package monitor

import (
	"fmt"
	"time"
)

// Envelope rules extend the paper's two security rules (§III-E) with
// the physical-state envelopes the Simplex literature monitors (e.g.
// VirtualDrone's safety envelopes): a geofence around the intended
// position and a descent-rate bound. They catch failure modes the
// attitude rule can miss — our UDP-flood experiments showed a control
// loop can lose altitude while oscillating below the attitude
// threshold.

// Extended rule identifiers.
const (
	RuleGeofence Rule = "geofence"
	RuleDescent  Rule = "descent-rate"
)

// EnvelopeRules configures the extended rules; zero values disable a
// rule.
type EnvelopeRules struct {
	// GeofenceRadius is the maximum tolerated distance from the
	// reference position, in meters.
	GeofenceRadius float64
	// MaxDescentRate is the maximum tolerated downward speed, m/s.
	MaxDescentRate float64
	// Hold requires a violation to persist before firing.
	Hold time.Duration
}

// DefaultEnvelopeRules returns the thresholds used by the extended
// experiments: 2 m fence, 1.5 m/s descent, 50 ms persistence.
func DefaultEnvelopeRules() EnvelopeRules {
	return EnvelopeRules{
		GeofenceRadius: 2.0,
		MaxDescentRate: 1.5,
		Hold:           50 * time.Millisecond,
	}
}

// envelopeState tracks per-rule persistence.
type envelopeState struct {
	badSince time.Duration
	bad      bool
}

// SetEnvelope installs the extended rules on the monitor. Passing the
// zero value removes them.
func (m *Monitor) SetEnvelope(r EnvelopeRules) {
	m.envelope = r
	m.geoState = envelopeState{}
	m.desState = envelopeState{}
}

// Envelope returns the configured extended rules.
func (m *Monitor) Envelope() EnvelopeRules { return m.envelope }

// CheckEnvelope evaluates the extended rules. posErr is the distance
// from the reference position (m); vz the vertical speed (m/s, up
// positive). Call alongside Check from the monitor task.
func (m *Monitor) CheckEnvelope(now time.Duration, posErr, vz float64) {
	if !m.armed || m.output == OutputSafety {
		return
	}
	if m.envelope.GeofenceRadius > 0 {
		if m.persist(&m.geoState, now, posErr > m.envelope.GeofenceRadius) {
			m.trip(now, RuleGeofence, fmt.Sprintf("position error %.2fm", posErr))
			return
		}
	}
	if m.envelope.MaxDescentRate > 0 {
		if m.persist(&m.desState, now, -vz > m.envelope.MaxDescentRate) {
			m.trip(now, RuleDescent, fmt.Sprintf("descending at %.2fm/s", -vz))
		}
	}
}

// persist implements the hold-time debounce shared by the envelope
// rules and reports whether the violation has persisted long enough.
func (m *Monitor) persist(st *envelopeState, now time.Duration, violating bool) bool {
	if !violating {
		st.bad = false
		return false
	}
	if !st.bad {
		st.bad = true
		st.badSince = now
	}
	return now-st.badSince >= m.envelope.Hold
}
