package monitor

import (
	"math"
	"testing"
	"time"
)

func armed(r Rules) *Monitor {
	m := New(r)
	m.Arm(0)
	return m
}

func TestStartsOnComplex(t *testing.T) {
	m := New(DefaultRules())
	if m.Output() != OutputComplex {
		t.Fatal("fresh monitor not on complex output")
	}
	if m.Armed() {
		t.Fatal("fresh monitor should be disarmed")
	}
	if _, _, ok := m.SwitchedAt(); ok {
		t.Fatal("fresh monitor claims to have switched")
	}
}

func TestOutputString(t *testing.T) {
	if OutputComplex.String() != "complex" || OutputSafety.String() != "safety" {
		t.Fatal("output names wrong")
	}
}

func TestIntervalRuleFires(t *testing.T) {
	m := armed(Rules{MaxInterval: 100 * time.Millisecond, MaxAttitudeError: 1})
	var gotRule Rule
	m.OnSwitch = func(_ time.Duration, r Rule) { gotRule = r }
	m.NoteComplexOutput(0)
	m.Check(50*time.Millisecond, 0)
	if m.Output() != OutputComplex {
		t.Fatal("switched before threshold")
	}
	m.Check(101*time.Millisecond, 0)
	if m.Output() != OutputSafety {
		t.Fatal("did not switch after interval exceeded")
	}
	if gotRule != RuleInterval {
		t.Fatalf("rule = %q", gotRule)
	}
	at, rule, ok := m.SwitchedAt()
	if !ok || rule != RuleInterval || at != 101*time.Millisecond {
		t.Fatalf("SwitchedAt = %v %v %v", at, rule, ok)
	}
}

func TestIntervalRuleResetByTraffic(t *testing.T) {
	m := armed(Rules{MaxInterval: 100 * time.Millisecond, MaxAttitudeError: 1})
	for ms := 0; ms <= 1000; ms += 50 {
		now := time.Duration(ms) * time.Millisecond
		m.NoteComplexOutput(now)
		m.Check(now, 0)
	}
	if m.Output() != OutputComplex {
		t.Fatal("healthy stream tripped the interval rule")
	}
}

func TestAttitudeRuleNeedsPersistence(t *testing.T) {
	r := Rules{MaxInterval: time.Second, MaxAttitudeError: 0.5, AttitudeHold: 80 * time.Millisecond}
	m := armed(r)
	m.NoteComplexOutput(0)
	// One bad sample then recovery: no trip.
	m.Check(10*time.Millisecond, 0.6)
	m.Check(20*time.Millisecond, 0.1)
	m.Check(110*time.Millisecond, 0.6)
	if m.Output() != OutputSafety {
		// still within hold window — not yet
	} else {
		t.Fatal("single bad samples tripped the attitude rule")
	}
	// Persistent violation trips.
	for ms := 200; ms <= 300; ms += 10 {
		m.NoteComplexOutput(time.Duration(ms) * time.Millisecond)
		m.Check(time.Duration(ms)*time.Millisecond, 0.6)
	}
	if m.Output() != OutputSafety {
		t.Fatal("persistent attitude error did not trip")
	}
	if _, rule, _ := m.SwitchedAt(); rule != RuleAttitude {
		t.Fatalf("rule = %v", rule)
	}
}

func TestDisarmedMonitorIgnoresEverything(t *testing.T) {
	m := New(DefaultRules())
	m.Check(10*time.Second, math.Pi)
	if m.Output() != OutputComplex {
		t.Fatal("disarmed monitor switched")
	}
}

func TestNoDoubleSwitch(t *testing.T) {
	m := armed(Rules{MaxInterval: 10 * time.Millisecond, MaxAttitudeError: 0.1})
	calls := 0
	m.OnSwitch = func(time.Duration, Rule) { calls++ }
	m.NoteComplexOutput(0)
	m.Check(time.Second, 5) // both rules violated
	m.Check(2*time.Second, 5)
	if calls != 1 {
		t.Fatalf("OnSwitch calls = %d, want 1", calls)
	}
	if len(m.Violations()) != 1 {
		t.Fatalf("violations = %d", len(m.Violations()))
	}
}

func TestForceSwitch(t *testing.T) {
	m := armed(DefaultRules())
	m.ForceSwitch(time.Second, "operator")
	if m.Output() != OutputSafety {
		t.Fatal("ForceSwitch did not switch")
	}
	m.ForceSwitch(2*time.Second, "again") // idempotent
	if len(m.Violations()) != 1 {
		t.Fatal("double force recorded twice")
	}
}

func TestArmResetsReceiveTimer(t *testing.T) {
	m := New(Rules{MaxInterval: 100 * time.Millisecond, MaxAttitudeError: 1})
	// Long silence before arming must not trip immediately.
	m.Arm(10 * time.Second)
	m.Check(10*time.Second+50*time.Millisecond, 0)
	if m.Output() != OutputComplex {
		t.Fatal("pre-arm silence tripped the interval rule")
	}
}

func TestAttitudeErrorMetric(t *testing.T) {
	if got := AttitudeError(0, 0, 0.3, -0.1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("AttitudeError = %v, want 0.3", got)
	}
	if got := AttitudeError(0.1, 0, 0.1, 0.4); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("AttitudeError = %v, want 0.4", got)
	}
}

func TestDefaultRulesSane(t *testing.T) {
	r := DefaultRules()
	if r.MaxInterval < 10*time.Millisecond {
		t.Fatal("interval threshold below one output frame")
	}
	if r.MaxAttitudeError <= 0 || r.MaxAttitudeError > math.Pi/2 {
		t.Fatalf("attitude threshold %v out of sane range", r.MaxAttitudeError)
	}
}
