// Package monitor implements the security monitor and Simplex
// decision logic of the host control environment (§III-E). Two rules
// are enforced; a violation of either kills the HCE receiving thread
// and switches actuator output from the complex controller to the
// safety controller:
//
//   - Receiving interval: the gap between consecutive motor outputs
//     received from the CCE must not exceed a threshold — a long
//     interval means the complex controller has failed or is starved.
//   - Attitude error: the difference between the reference attitude
//     and the vehicle's actual roll/pitch must stay bounded — a large
//     error means the vehicle is in a dangerous physical state even
//     if outputs keep arriving.
package monitor

import (
	"fmt"
	"math"
	"time"
)

// Output selects which controller drives the actuators.
type Output int

// Output sources.
const (
	OutputComplex Output = iota
	OutputSafety
)

// String names the output source.
func (o Output) String() string {
	if o == OutputSafety {
		return "safety"
	}
	return "complex"
}

// Rule identifies which security rule fired.
type Rule string

// The two rules of §III-E.
const (
	RuleInterval Rule = "receiving-interval"
	RuleAttitude Rule = "attitude-error"
)

// Rules configures the monitor thresholds.
type Rules struct {
	// MaxInterval is the longest tolerated gap between complex-
	// controller outputs. The stream runs at 400 Hz (2.5 ms); the
	// default tolerates 40 consecutive losses.
	MaxInterval time.Duration
	// MaxAttitudeError is the largest tolerated roll/pitch deviation
	// from the reference attitude, in radians.
	MaxAttitudeError float64
	// AttitudeHold requires the attitude error to persist this long
	// before the rule fires, rejecting single-sample glitches.
	AttitudeHold time.Duration
}

// DefaultRules returns the thresholds used in the experiments. The
// attitude threshold is calibrated against the hover envelope the
// paper flies: steady position hold tilts the vehicle only a couple of
// degrees (wind trim), so a persistent 6° gap between the safety
// controller's reference attitude and the measured attitude marks a
// control loop that has gone unstable, well before the physical crash
// envelope.
func DefaultRules() Rules {
	return Rules{
		MaxInterval:      100 * time.Millisecond,
		MaxAttitudeError: 6 * math.Pi / 180,
		AttitudeHold:     20 * time.Millisecond,
	}
}

// Violation records one rule firing.
type Violation struct {
	Rule Rule
	Time time.Duration
	Info string
}

// Monitor is the Simplex decision module.
type Monitor struct {
	rules  Rules
	output Output
	armed  bool

	lastRecv     time.Duration
	haveRecv     bool
	attBadSince  time.Duration
	attBad       bool
	violations   []Violation
	switchedAt   time.Duration
	switchReason Rule

	// Extended envelope rules (see envelope.go); zero = disabled.
	envelope EnvelopeRules
	geoState envelopeState
	desState envelopeState

	// OnSwitch runs exactly once when the monitor fails over; the
	// framework uses it to kill the receiving thread (§III-E).
	OnSwitch func(now time.Duration, rule Rule)
	// OnViolation runs for every recorded rule firing, before the
	// switch side effects (so observers see the violation that caused
	// a switch before the switch itself).
	OnViolation func(v Violation)
}

// New builds a monitor in the complex-output state. It starts
// disarmed: rules are not enforced until Arm, mirroring the paper's
// procedure of enabling protection once the drone is airborne in
// position mode.
func New(rules Rules) *Monitor {
	return &Monitor{rules: rules}
}

// Rules returns the configured thresholds.
func (m *Monitor) Rules() Rules { return m.rules }

// Reset disarms the monitor and rewinds it to the complex-output
// state: violation history, receive timing, and envelope persistence
// all clear. Thresholds, envelope rules, and callbacks survive. The
// violations backing array is reused, so a reset monitor records its
// next run without allocating.
func (m *Monitor) Reset() {
	m.output = OutputComplex
	m.armed = false
	m.lastRecv = 0
	m.haveRecv = false
	m.attBadSince = 0
	m.attBad = false
	m.violations = m.violations[:0]
	m.switchedAt = 0
	m.switchReason = ""
	m.geoState = envelopeState{}
	m.desState = envelopeState{}
}

// State is a snapshot of the monitor's dynamic state: output
// selection, arming, receive timing, rule persistence, and the
// violation history (deep-copied). Thresholds, envelope rules, and
// callbacks are configuration — they stay with their owner, which is
// exactly what lets a fork sweep monitor thresholds: the restored
// monitor re-judges the post-snapshot flight with its own rules.
type State struct {
	output       Output
	armed        bool
	lastRecv     time.Duration
	haveRecv     bool
	attBadSince  time.Duration
	attBad       bool
	violations   []Violation
	switchedAt   time.Duration
	switchReason Rule
	geoState     envelopeState
	desState     envelopeState
}

// SnapshotInto captures the monitor's dynamic state into st, reusing
// st's violation buffer. The state shares no memory with the monitor
// afterwards.
func (m *Monitor) SnapshotInto(st *State) {
	st.output = m.output
	st.armed = m.armed
	st.lastRecv = m.lastRecv
	st.haveRecv = m.haveRecv
	st.attBadSince = m.attBadSince
	st.attBad = m.attBad
	st.violations = append(st.violations[:0], m.violations...)
	st.switchedAt = m.switchedAt
	st.switchReason = m.switchReason
	st.geoState = m.geoState
	st.desState = m.desState
}

// RestoreFrom rewinds the monitor to a captured state, keeping its own
// thresholds, envelope rules, and callbacks.
func (m *Monitor) RestoreFrom(st *State) {
	m.output = st.output
	m.armed = st.armed
	m.lastRecv = st.lastRecv
	m.haveRecv = st.haveRecv
	m.attBadSince = st.attBadSince
	m.attBad = st.attBad
	m.violations = append(m.violations[:0], st.violations...)
	m.switchedAt = st.switchedAt
	m.switchReason = st.switchReason
	m.geoState = st.geoState
	m.desState = st.desState
}

// Arm starts rule enforcement at the given time; the receive timer
// starts fresh so pre-arm silence does not trip the interval rule.
func (m *Monitor) Arm(now time.Duration) {
	m.armed = true
	m.lastRecv = now
	m.haveRecv = true
}

// Armed reports whether rules are being enforced.
func (m *Monitor) Armed() bool { return m.armed }

// Output returns the currently selected controller.
func (m *Monitor) Output() Output { return m.output }

// Violations returns all recorded rule firings.
func (m *Monitor) Violations() []Violation { return m.violations }

// SwitchedAt returns when and why the monitor failed over; ok=false
// if it has not.
func (m *Monitor) SwitchedAt() (time.Duration, Rule, bool) {
	if m.output != OutputSafety {
		return 0, "", false
	}
	return m.switchedAt, m.switchReason, true
}

// NoteComplexOutput records the arrival of a motor command from the
// CCE. Call it from the HCE receiving thread.
func (m *Monitor) NoteComplexOutput(now time.Duration) {
	m.lastRecv = now
	m.haveRecv = true
}

// Check evaluates both rules. attErr is the angular difference between
// the reference attitude and the measured attitude (radians). Call it
// periodically from the HCE monitor task.
func (m *Monitor) Check(now time.Duration, attErr float64) {
	if !m.armed || m.output == OutputSafety {
		return
	}
	if m.haveRecv && now-m.lastRecv > m.rules.MaxInterval {
		m.trip(now, RuleInterval, fmt.Sprintf("no output for %v", now-m.lastRecv))
		return
	}
	if attErr > m.rules.MaxAttitudeError {
		if !m.attBad {
			m.attBad = true
			m.attBadSince = now
		}
		if now-m.attBadSince >= m.rules.AttitudeHold {
			m.trip(now, RuleAttitude, fmt.Sprintf("attitude error %.1f°", attErr*180/math.Pi))
		}
	} else {
		m.attBad = false
	}
}

func (m *Monitor) trip(now time.Duration, rule Rule, info string) {
	v := Violation{Rule: rule, Time: now, Info: info}
	m.violations = append(m.violations, v)
	if m.OnViolation != nil {
		m.OnViolation(v)
	}
	m.output = OutputSafety
	m.switchedAt = now
	m.switchReason = rule
	if m.OnSwitch != nil {
		m.OnSwitch(now, rule)
	}
}

// ForceSwitch fails over unconditionally (operator action / tests).
func (m *Monitor) ForceSwitch(now time.Duration, info string) {
	if m.output == OutputSafety {
		return
	}
	m.trip(now, Rule("forced"), info)
}

// AttitudeError computes the rule's error metric from reference and
// measured roll/pitch: the max of the two axis errors.
func AttitudeError(refRoll, refPitch, roll, pitch float64) float64 {
	er := math.Abs(roll - refRoll)
	ep := math.Abs(pitch - refPitch)
	if er > ep {
		return er
	}
	return ep
}
