package fault

import (
	"testing"
	"time"

	"containerdrone/internal/sim"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range append(Kinds(), KindNone) {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k, err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("definitely-not-a-fault"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestWithDefaultsFillsOnlyZeroFields(t *testing.T) {
	sp := Spec{Kind: KindMAVReplay, Rate: 123}.WithDefaults()
	if sp.Rate != 123 {
		t.Fatalf("explicit Rate overwritten: %v", sp.Rate)
	}
	if sp.Magnitude != DefaultReplayCapture {
		t.Fatalf("Magnitude default = %v, want %v", sp.Magnitude, DefaultReplayCapture)
	}
	if d := (Spec{Kind: KindRotorDecay}).WithDefaults(); d.Magnitude != DefaultRotorDecayLoss || d.Rate != DefaultRotorDecayPerSec {
		t.Fatalf("rotor-decay defaults = %+v", d)
	}
	// Window-only kinds have no numeric defaults.
	if d := (Spec{Kind: KindNetSplit}).WithDefaults(); d.Magnitude != 0 || d.Rate != 0 {
		t.Fatalf("netsplit gained spurious defaults: %+v", d)
	}
}

func TestSpecEnd(t *testing.T) {
	run := 30 * time.Second
	if _, ok := (Spec{Start: 10 * time.Second}).End(run); ok {
		t.Fatal("zero Duration must have no end event")
	}
	if _, ok := (Spec{Start: 28 * time.Second, Duration: 5 * time.Second}).End(run); ok {
		t.Fatal("window past the run must have no end event")
	}
	end, ok := (Spec{Start: 10 * time.Second, Duration: 5 * time.Second}).End(run)
	if !ok || end != 15*time.Second {
		t.Fatalf("End = %v, %v", end, ok)
	}
}

func TestPlanStringAndQueries(t *testing.T) {
	var p Plan
	if p.Active() || p.String() != "none" {
		t.Fatalf("zero plan: active=%v str=%q", p.Active(), p)
	}
	p = Plan{Specs: []Spec{{Kind: KindNetSplit}, {Kind: KindJitter}}}
	if !p.Active() || !p.Has(KindJitter) || p.Has(KindGPSSpoof) {
		t.Fatalf("plan queries wrong: %+v", p)
	}
	if got := p.String(); got != "netsplit+jitter" {
		t.Fatalf("plan string = %q", got)
	}
}

// countingInjector records the lifecycle calls Arm drives.
type countingInjector struct {
	begins, steps, ends int
	beganAt, endedAt    time.Duration
}

func (c *countingInjector) Begin(now time.Duration) { c.begins++; c.beganAt = now }
func (c *countingInjector) Step(time.Duration)      { c.steps++ }
func (c *countingInjector) End(now time.Duration)   { c.ends++; c.endedAt = now }

func TestArmDrivesWindowLifecycle(t *testing.T) {
	e := sim.NewEngine()
	run := 100 * time.Millisecond
	sp := Spec{Kind: KindRotorDecay, Start: 20 * time.Millisecond, Duration: 30 * time.Millisecond}
	inj := &countingInjector{}
	Arm(e, "fault-test", run, sp, inj, 10*time.Millisecond)
	e.Run(run)

	if inj.begins != 1 || inj.ends != 1 {
		t.Fatalf("begins=%d ends=%d, want 1/1", inj.begins, inj.ends)
	}
	if inj.beganAt != sp.Start {
		t.Fatalf("began at %v, want %v", inj.beganAt, sp.Start)
	}
	if inj.endedAt != 50*time.Millisecond {
		t.Fatalf("ended at %v, want 50ms", inj.endedAt)
	}
	// Step runs only inside the open window (30 ms at a 10 ms cadence).
	if inj.steps < 2 || inj.steps > 4 {
		t.Fatalf("steps = %d, want ~3 (window-gated)", inj.steps)
	}
}

func TestArmWithoutEndKeepsFaultActive(t *testing.T) {
	e := sim.NewEngine()
	run := 100 * time.Millisecond
	inj := &countingInjector{}
	Arm(e, "fault-test", run, Spec{Start: 50 * time.Millisecond}, inj, 10*time.Millisecond)
	e.Run(run)
	if inj.begins != 1 || inj.ends != 0 {
		t.Fatalf("begins=%d ends=%d, want 1/0 (no window close)", inj.begins, inj.ends)
	}
	if inj.steps == 0 {
		t.Fatal("stepping injector never stepped")
	}
}

func TestPrioInversionTask(t *testing.T) {
	task := PrioInversion(1, 95)
	if task.Period != 0 {
		t.Fatal("inversion spinner must be a busy-loop task")
	}
	if task.Core != 1 || task.Priority != 95 {
		t.Fatalf("task placement = core %d prio %d", task.Core, task.Priority)
	}
}
