// Package fault implements the fault-injection layer of the
// framework: physical and infrastructural failure modes the paper's
// threat model does not cover but a fielded ContainerDrone must
// survive. Where package attack models an adversary *inside* the
// container (the paper's §III-B smuggled-code threat), package fault
// models everything else that goes wrong around it — sensors that
// lie, links that partition or jitter, a network adversary replaying
// captured MAVLink frames, a misconfigured host task inverting
// priorities, and hardware that degrades mid-flight.
//
// A fault.Plan is a list of timed Specs, mirroring attack.Plan but
// composable: several faults can overlap in one flight. Each Spec is
// armed on the simulation engine as an Injector — Begin fires at
// Spec.Start, Step runs at a fixed cadence while the fault is active,
// and End fires when the window closes (a zero Duration keeps the
// fault active to the end of the run). The injectors themselves are
// wired by the core package, which owns the surfaces they corrupt
// (sensor suite, network fabric, scheduler, rotors).
package fault

import (
	"fmt"
	"strings"
	"time"

	"containerdrone/internal/sched"
	"containerdrone/internal/sim"
)

// Kind enumerates the implemented fault modes.
type Kind int

// Fault kinds. Each corrupts a different layer of the stack: sensors
// (GPSSpoof, IMUBias, BaroDrop), the network fabric (NetSplit,
// Jitter, MAVReplay), the scheduler (PrioInv), or the airframe
// (RotorDecay).
const (
	KindNone Kind = iota
	KindGPSSpoof
	KindIMUBias
	KindBaroDrop
	KindNetSplit
	KindMAVReplay
	KindJitter
	KindPrioInv
	KindRotorDecay
	// KindFleetSplit partitions one fleet member from the ground
	// control station coordinating the formation, so the member flies
	// its last-heard formation slot until the link heals. Requires a
	// multi-drone scenario.
	KindFleetSplit
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindGPSSpoof:
		return "gps-spoof"
	case KindIMUBias:
		return "imu-bias"
	case KindBaroDrop:
		return "baro-drop"
	case KindNetSplit:
		return "netsplit"
	case KindMAVReplay:
		return "mav-replay"
	case KindJitter:
		return "jitter"
	case KindPrioInv:
		return "prio-inv"
	case KindRotorDecay:
		return "rotor-decay"
	case KindFleetSplit:
		return "fleet-split"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every real fault kind (KindNone excluded).
func Kinds() []Kind {
	return []Kind{
		KindGPSSpoof, KindIMUBias, KindBaroDrop, KindNetSplit,
		KindMAVReplay, KindJitter, KindPrioInv, KindRotorDecay,
		KindFleetSplit,
	}
}

// ParseKind resolves a kind from its string name ("none" included).
func ParseKind(s string) (Kind, error) {
	if s == KindNone.String() {
		return KindNone, nil
	}
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return KindNone, fmt.Errorf("fault: unknown kind %q", s)
}

// Spec is one timed fault: what goes wrong, when, for how long, and
// how hard. Magnitude and Rate are kind-specific; zero selects the
// kind's default (see WithDefaults).
type Spec struct {
	Kind  Kind
	Start time.Duration
	// Duration bounds the fault window; zero means the fault persists
	// to the end of the run.
	Duration time.Duration
	// Magnitude is the kind-specific severity:
	//   gps-spoof:   initial position offset, m
	//   imu-bias:    injected gyro bias, rad/s
	//   jitter:      1-sigma extra link latency, s
	//   mav-replay:  capture-window size, frames
	//   prio-inv:    FIFO priority of the inverting spinner
	//   rotor-decay: total fractional thrust-efficiency loss, [0,1)
	Magnitude float64
	// Rate is the kind-specific intensity:
	//   gps-spoof:   spoofed-position drift rate, m/s
	//   jitter:      independent packet-loss probability, [0,1)
	//   mav-replay:  replay injection rate, frames/s
	//   rotor-decay: efficiency loss per second, 1/s
	Rate float64
	// Member selects which fleet member the fault strikes (index into
	// the fleet, 0 = the leader — the only member of a single-drone
	// scenario). Jitter degrades the shared fabric regardless.
	Member int
	// FromMember selects, for mav-replay only, the member whose motor
	// frames the on-path adversary captures; the replay is then
	// injected at Member. Equal values reproduce the single-drone
	// replay; different values model a cross-drone replay on the
	// shared medium.
	FromMember int
}

// Kind-specific defaults, applied by WithDefaults when the Spec field
// is zero.
const (
	DefaultGPSDriftRate     = 0.5  // m/s
	DefaultIMUBias          = 0.08 // rad/s
	DefaultJitterSigma      = 0.02 // s
	DefaultJitterLoss       = 0.2  // probability
	DefaultReplayCapture    = 64   // frames
	DefaultReplayRate       = 4000 // frames/s
	DefaultPrioInvPriority  = 95   // above the FIFO-90 drivers
	DefaultRotorDecayLoss   = 0.35 // fraction of thrust efficiency
	DefaultRotorDecayPerSec = 0.08 // 1/s
)

// WithDefaults returns the spec with zero Magnitude/Rate fields
// replaced by the kind's defaults, so scenario presets and sweeps can
// set only what they mean to vary.
func (s Spec) WithDefaults() Spec {
	switch s.Kind {
	case KindGPSSpoof:
		if s.Rate == 0 {
			s.Rate = DefaultGPSDriftRate
		}
	case KindIMUBias:
		if s.Magnitude == 0 {
			s.Magnitude = DefaultIMUBias
		}
	case KindJitter:
		if s.Magnitude == 0 {
			s.Magnitude = DefaultJitterSigma
		}
		if s.Rate == 0 {
			s.Rate = DefaultJitterLoss
		}
	case KindMAVReplay:
		if s.Magnitude == 0 {
			s.Magnitude = DefaultReplayCapture
		}
		if s.Rate == 0 {
			s.Rate = DefaultReplayRate
		}
	case KindPrioInv:
		if s.Magnitude == 0 {
			s.Magnitude = DefaultPrioInvPriority
		}
	case KindRotorDecay:
		if s.Magnitude == 0 {
			s.Magnitude = DefaultRotorDecayLoss
		}
		if s.Rate == 0 {
			s.Rate = DefaultRotorDecayPerSec
		}
	}
	return s
}

// Validate rejects specs no injector can act on sensibly: negative
// times or severities (WithDefaults fills only zero fields, so a
// negative value would otherwise pass through and silently disable
// the fault — a replay with Rate -1 never sends a frame), and a
// jitter loss probability above 1.
func (s Spec) Validate() error {
	if s.Kind == KindNone {
		return nil
	}
	if s.Start < 0 || s.Duration < 0 {
		return fmt.Errorf("fault: %s window start %v / duration %v must not be negative", s.Kind, s.Start, s.Duration)
	}
	if s.Magnitude < 0 || s.Rate < 0 {
		return fmt.Errorf("fault: %s magnitude %v / rate %v must not be negative", s.Kind, s.Magnitude, s.Rate)
	}
	if s.Member < 0 || s.FromMember < 0 {
		return fmt.Errorf("fault: %s member %d / from-member %d must not be negative", s.Kind, s.Member, s.FromMember)
	}
	if s.Kind == KindJitter && s.Rate > 1 {
		return fmt.Errorf("fault: jitter loss probability %v exceeds 1", s.Rate)
	}
	if s.Kind == KindPrioInv && s.Magnitude != 0 && s.Magnitude < 1 {
		return fmt.Errorf("fault: prio-inv priority %v truncates to 0; use 0 for the default or a value >= 1", s.Magnitude)
	}
	if s.Kind == KindRotorDecay && s.Magnitude > 1 {
		return fmt.Errorf("fault: rotor-decay efficiency loss %v exceeds 1", s.Magnitude)
	}
	return nil
}

// Validate checks every spec in the plan.
func (p Plan) Validate() error {
	for _, s := range p.Specs {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// End returns the absolute end of the fault window and whether one
// exists inside a run of the given length (a zero Duration, or a
// window reaching past the run, has no end event).
func (s Spec) End(runDur time.Duration) (time.Duration, bool) {
	if s.Duration <= 0 {
		return 0, false
	}
	end := s.Start + s.Duration
	if end >= runDur {
		return 0, false
	}
	return end, true
}

// Plan is a composable set of timed faults — the fault analog of
// attack.Plan, except several faults may be active at once.
type Plan struct {
	Specs []Spec
}

// Active reports whether the plan injects any fault.
func (p Plan) Active() bool {
	for _, s := range p.Specs {
		if s.Kind != KindNone {
			return true
		}
	}
	return false
}

// Has reports whether the plan contains a fault of the given kind.
func (p Plan) Has(k Kind) bool {
	for _, s := range p.Specs {
		if s.Kind == k {
			return true
		}
	}
	return false
}

// String joins the plan's kind names ("gps-spoof+jitter"), or "none".
func (p Plan) String() string {
	var names []string
	for _, s := range p.Specs {
		if s.Kind != KindNone {
			names = append(names, s.Kind.String())
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, "+")
}

// Injector is one armed fault: Begin fires at the window start, Step
// runs at the injector's cadence while the window is open, End fires
// at the window close. Implementations close over the surface they
// corrupt (sensor suite, network, scheduler, rotors).
type Injector interface {
	Begin(now time.Duration)
	Step(now time.Duration)
	End(now time.Duration)
}

// FuncInjector adapts closures to Injector; nil members are skipped.
type FuncInjector struct {
	BeginF func(now time.Duration)
	StepF  func(now time.Duration)
	EndF   func(now time.Duration)
}

// Begin runs BeginF if set.
func (f FuncInjector) Begin(now time.Duration) {
	if f.BeginF != nil {
		f.BeginF(now)
	}
}

// Step runs StepF if set.
func (f FuncInjector) Step(now time.Duration) {
	if f.StepF != nil {
		f.StepF(now)
	}
}

// End runs EndF if set.
func (f FuncInjector) End(now time.Duration) {
	if f.EndF != nil {
		f.EndF(now)
	}
}

// stepProcPriority orders injector Step procs within an engine tick:
// after network delivery (0), before the scheduler (10), so corrupted
// sensor/link state is in place before any driver samples it.
const stepProcPriority = 5

// Arm schedules one injector on the engine for the spec's window. A
// positive stepPeriod registers a periodic Step process that is
// enabled only while the window is open; zero arms Begin/End alone.
// Arm must be called at build time (the engine's registration phase).
func Arm(e *sim.Engine, name string, runDur time.Duration, sp Spec, inj Injector, stepPeriod time.Duration) {
	var h sim.Handle
	stepping := stepPeriod > 0
	if stepping {
		h = e.Register(name, stepPeriod, stepProcPriority, sim.ProcFunc(inj.Step))
		h.SetEnabled(false)
	}
	e.At(sp.Start, func(now time.Duration) {
		inj.Begin(now)
		if stepping {
			h.SetEnabled(true)
		}
	})
	if end, ok := sp.End(runDur); ok {
		e.At(end, func(now time.Duration) {
			if stepping {
				h.SetEnabled(false)
			}
			inj.End(now)
		})
	}
}

// PrioInversion returns the scheduler-starvation injector's task: a
// busy-loop spinner at the given FIFO priority. Pinned to a host core
// above the flight-critical priorities, it models a misconfigured (or
// compromised) host process inverting the priority design of §IV-C —
// the one starvation mode the container's cpuset/priority caps cannot
// contain, because it does not run in the container.
func PrioInversion(core, priority int) *sched.Task {
	return &sched.Task{
		Name:     "fault-prio-inv",
		Core:     core,
		Priority: priority,
		// Spins on cached state: negligible memory traffic.
		AccessRate: 1e6, MemBound: 0.1,
	}
}
