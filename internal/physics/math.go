// Package physics implements the 6-DOF quadrotor rigid-body model that
// stands in for the paper's prototype drone (Raspberry Pi 3B + Navio2
// airframe flown under Vicon). It provides vector/quaternion math, a
// first-order rotor model with thrust and drag-torque maps, and a
// fixed-step integrator with ground-collision (crash) detection.
//
// Conventions: world frame is ENU-like with Z up; body frame is
// front-left-up; attitude is the body-to-world rotation quaternion.
package physics

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalized returns v scaled to unit length; the zero vector is
// returned unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Clamp returns v with each component limited to [-limit, limit].
func (v Vec3) Clamp(limit float64) Vec3 {
	return Vec3{clamp(v.X, limit), clamp(v.Y, limit), clamp(v.Z, limit)}
}

func clamp(x, limit float64) float64 {
	if x > limit {
		return limit
	}
	if x < -limit {
		return -limit
	}
	return x
}

// Quat is a unit quaternion (W + Xi + Yj + Zk) representing a rotation.
type Quat struct{ W, X, Y, Z float64 }

// IdentityQuat returns the no-rotation quaternion.
func IdentityQuat() Quat { return Quat{W: 1} }

// Mul returns the Hamilton product q*r (apply r, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit magnitude. A zero quaternion
// becomes the identity, which keeps integrators well-defined.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to a vector: q v q*.
func (q Quat) Rotate(v Vec3) Vec3 {
	// Efficient form: t = 2 q_vec × v; v' = v + w t + q_vec × t.
	qv := Vec3{q.X, q.Y, q.Z}
	t := qv.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(qv.Cross(t))
}

// UpVector returns the body Z axis expressed in the world frame:
// Rotate(Vec3{Z: 1}) with the zero terms folded away. The arithmetic
// mirrors Rotate's cross-product form operation for operation, so the
// result is bit-identical (TestUpVectorMatchesRotate enforces this).
func (q Quat) UpVector() Vec3 {
	// t = 2 qv × (0,0,1) = (2y, −2x, 0); v' = v + w·t + qv × t.
	tx := 2 * q.Y
	ty := -(2 * q.X)
	return Vec3{
		X: q.W*tx + (q.Y*0 - q.Z*ty),
		Y: q.W*ty + (q.Z*tx - q.X*0),
		Z: 1 + (q.X*ty - q.Y*tx),
	}
}

// FromAxisAngle builds a quaternion rotating by angle (radians) about
// the given axis (need not be normalized).
func FromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalized()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// FromEuler builds a body-to-world quaternion from roll (about X),
// pitch (about Y), yaw (about Z), applied in yaw-pitch-roll order
// (aerospace ZYX convention).
func FromEuler(roll, pitch, yaw float64) Quat {
	sr, cr := math.Sincos(roll / 2)
	sp, cp := math.Sincos(pitch / 2)
	sy, cy := math.Sincos(yaw / 2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// Euler extracts (roll, pitch, yaw) in the ZYX convention. Pitch is
// clamped to ±π/2 at the gimbal-lock boundary.
func (q Quat) Euler() (roll, pitch, yaw float64) {
	// roll (x-axis rotation)
	sinr := 2 * (q.W*q.X + q.Y*q.Z)
	cosr := 1 - 2*(q.X*q.X+q.Y*q.Y)
	roll = math.Atan2(sinr, cosr)

	// pitch (y-axis rotation)
	sinp := 2 * (q.W*q.Y - q.Z*q.X)
	if sinp >= 1 {
		pitch = math.Pi / 2
	} else if sinp <= -1 {
		pitch = -math.Pi / 2
	} else {
		pitch = math.Asin(sinp)
	}

	// yaw (z-axis rotation)
	siny := 2 * (q.W*q.Z + q.X*q.Y)
	cosy := 1 - 2*(q.Y*q.Y+q.Z*q.Z)
	yaw = math.Atan2(siny, cosy)
	return
}

// Integrate advances the quaternion by body angular rate omega
// (rad/s) over dt seconds using the exponential map, then normalizes.
func (q Quat) Integrate(omega Vec3, dt float64) Quat {
	n := omega.Norm()
	angle := n * dt
	if angle == 0 {
		return q
	}
	// FromAxisAngle(omega, angle) with the norm already in hand
	// (bit-identical, one sqrt instead of two). The half-angle of one
	// 100 µs step is ~1e-4 rad, deep inside the first octant, so the
	// reduction-free sincos kernel applies on the hot path.
	a := omega.Scale(1 / n)
	half := angle / 2
	var s, c float64
	if sincosSmallOK(half) {
		s, c = sincosSmall(half)
	} else {
		s, c = math.Sincos(half)
	}
	dq := Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
	return q.Mul(dq).Normalized()
}

// CosTilt returns the cosine of TiltAngle, clamped to [-1, 1]. Cosine
// is monotone decreasing on [0, π], so threshold comparisons against a
// precomputed cosine avoid the arccosine on hot paths.
func (q Quat) CosTilt() float64 {
	c := q.UpVector().Z
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// TiltAngle returns the angle in radians between the body Z axis and
// the world Z axis — the single-number "how far from level" measure
// used by the crash envelope and the attitude-error rule.
func (q Quat) TiltAngle() float64 {
	return math.Acos(q.CosTilt())
}
