package physics

import "testing"

func BenchmarkQuadStep(b *testing.B) {
	q := NewQuad(DefaultParams())
	q.State.Pos = Vec3{Z: 10}
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SettleRotors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step(0.0001)
	}
}

func BenchmarkQuatIntegrate(b *testing.B) {
	q := IdentityQuat()
	omega := Vec3{X: 0.1, Y: -0.2, Z: 0.05}
	for i := 0; i < b.N; i++ {
		q = q.Integrate(omega, 0.0001)
	}
	_ = q
}

func BenchmarkQuatRotate(b *testing.B) {
	q := FromEuler(0.1, 0.2, 0.3)
	v := Vec3{1, 2, 3}
	var out Vec3
	for i := 0; i < b.N; i++ {
		out = q.Rotate(v)
	}
	_ = out
}

func BenchmarkWindStep(b *testing.B) {
	n := 0.0
	w := NewWind(0.25, 0.6, 2, func() float64 { n += 0.1; return n - 1 })
	for i := 0; i < b.N; i++ {
		w.Step(0.01)
	}
}
