package physics

import (
	"math"
	"testing"
)

// TestSincosSmallMatchesStdlib pins the reduction-free kernel to the
// installed math package bit for bit across the whole gated range:
// edge values, denormals, the octant boundary, and a dense random
// sweep. Any divergence — a coefficient typo, a changed association,
// an FMA introduced on some platform for one side only — fails here
// before it can silently shift a golden digest.
func TestSincosSmallMatchesStdlib(t *testing.T) {
	check := func(x float64) {
		t.Helper()
		if !sincosSmallOK(x) {
			return
		}
		gotS, gotC := sincosSmall(x)
		wantS, wantC := math.Sincos(x)
		if math.Float64bits(gotS) != math.Float64bits(wantS) ||
			math.Float64bits(gotC) != math.Float64bits(wantC) {
			t.Fatalf("sincosSmall(%v) = (%x, %x), math.Sincos = (%x, %x)",
				x, math.Float64bits(gotS), math.Float64bits(gotC),
				math.Float64bits(wantS), math.Float64bits(wantC))
		}
	}
	for _, x := range []float64{
		0, math.SmallestNonzeroFloat64, 1e-300, 1e-10, 1e-4, 0.1, 0.5,
		math.Pi/4 - 1e-16, math.Pi / 4, math.Nextafter(math.Pi/4, 0),
	} {
		check(x)
	}
	// Dense deterministic sweep over the integrator's working range
	// and up to the octant boundary.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := 0; i < 1_000_000; i++ {
		check(next() * math.Pi / 4)
		check(next() * 1e-3) // the hot integrator magnitudes
	}
}

// TestSincosSmallGate verifies the gate matches the stdlib's octant
// decision: everything it accepts must be octant 0 (where z = x
// exactly), everything at or past π/4 must be rejected.
func TestSincosSmallGate(t *testing.T) {
	if sincosSmallOK(math.Pi / 2) {
		t.Error("gate accepted π/2")
	}
	if sincosSmallOK(-1e-9) {
		t.Error("gate accepted a negative argument")
	}
	if !sincosSmallOK(0) || !sincosSmallOK(1e-4) {
		t.Error("gate rejected a first-octant argument")
	}
	// At every accepted x the stdlib's own octant computation must be
	// zero, i.e. the stdlib would take the same branch we replicate.
	for _, x := range []float64{0.7853, math.Nextafter(math.Pi/4, 0), math.Pi / 4} {
		if sincosSmallOK(x) != (uint64(x*(4/math.Pi)) == 0) {
			t.Errorf("gate disagrees with stdlib octant at %v", x)
		}
	}
}
