package physics

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecNear(a, b Vec3, tol float64) bool {
	return near(a.X, b.X, tol) && near(a.Y, b.Y, tol) && near(a.Z, b.Z, tol)
}

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*(-5)+3*6 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{X: 1}
	y := Vec3{Y: 1}
	z := Vec3{Z: 1}
	if got := x.Cross(y); !vecNear(got, z, eps) {
		t.Fatalf("x×y = %v, want z", got)
	}
	if got := y.Cross(z); !vecNear(got, x, eps) {
		t.Fatalf("y×z = %v, want x", got)
	}
	if got := z.Cross(x); !vecNear(got, y, eps) {
		t.Fatalf("z×x = %v, want y", got)
	}
}

func TestVec3Norm(t *testing.T) {
	v := Vec3{3, 4, 0}
	if !near(v.Norm(), 5, eps) {
		t.Fatalf("Norm = %v, want 5", v.Norm())
	}
	if !near(v.Normalized().Norm(), 1, eps) {
		t.Fatal("Normalized not unit length")
	}
	zero := Vec3{}
	if zero.Normalized() != zero {
		t.Fatal("Normalized zero vector changed")
	}
}

func TestVec3Clamp(t *testing.T) {
	v := Vec3{5, -5, 0.5}
	got := v.Clamp(1)
	if got != (Vec3{1, -1, 0.5}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestQuatIdentityRotation(t *testing.T) {
	q := IdentityQuat()
	v := Vec3{1, 2, 3}
	if got := q.Rotate(v); !vecNear(got, v, eps) {
		t.Fatalf("identity rotation changed vector: %v", got)
	}
}

func TestQuatAxisAngle90(t *testing.T) {
	// 90° about Z maps X → Y.
	q := FromAxisAngle(Vec3{Z: 1}, math.Pi/2)
	got := q.Rotate(Vec3{X: 1})
	if !vecNear(got, Vec3{Y: 1}, 1e-12) {
		t.Fatalf("90° about Z: X → %v, want Y", got)
	}
}

func TestQuatMulComposition(t *testing.T) {
	// Two 45° rotations about Z compose to 90°.
	h := FromAxisAngle(Vec3{Z: 1}, math.Pi/4)
	q := h.Mul(h)
	got := q.Rotate(Vec3{X: 1})
	if !vecNear(got, Vec3{Y: 1}, 1e-12) {
		t.Fatalf("45°+45° about Z: X → %v, want Y", got)
	}
}

func TestQuatConjInverts(t *testing.T) {
	q := FromEuler(0.3, -0.2, 1.1)
	v := Vec3{1, 2, 3}
	back := q.Conj().Rotate(q.Rotate(v))
	if !vecNear(back, v, 1e-12) {
		t.Fatalf("conj did not invert: %v", back)
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	cases := [][3]float64{
		{0, 0, 0},
		{0.1, 0.2, 0.3},
		{-0.5, 0.4, -1.2},
		{math.Pi / 4, -math.Pi / 6, math.Pi / 3},
	}
	for _, c := range cases {
		q := FromEuler(c[0], c[1], c[2])
		r, p, y := q.Euler()
		if !near(r, c[0], 1e-9) || !near(p, c[1], 1e-9) || !near(y, c[2], 1e-9) {
			t.Errorf("Euler round trip %v → (%v,%v,%v)", c, r, p, y)
		}
	}
}

func TestQuatNormalizedZero(t *testing.T) {
	var q Quat
	if q.Normalized() != IdentityQuat() {
		t.Fatal("zero quaternion should normalize to identity")
	}
}

func TestQuatIntegrateConstantRate(t *testing.T) {
	// Integrating 1 rad/s about Z for π/2 s in small steps ≈ 90° yaw.
	q := IdentityQuat()
	omega := Vec3{Z: 1}
	dt := 0.001
	for s := 0.0; s < math.Pi/2; s += dt {
		q = q.Integrate(omega, dt)
	}
	_, _, yaw := q.Euler()
	if !near(yaw, math.Pi/2, 1e-2) {
		t.Fatalf("integrated yaw = %v, want ~π/2", yaw)
	}
}

func TestQuatIntegrateZeroRate(t *testing.T) {
	q := FromEuler(0.1, 0.2, 0.3)
	if q.Integrate(Vec3{}, 0.01) != q {
		t.Fatal("zero-rate integration changed attitude")
	}
}

func TestTiltAngle(t *testing.T) {
	if !near(IdentityQuat().TiltAngle(), 0, eps) {
		t.Fatal("level attitude has nonzero tilt")
	}
	q := FromEuler(math.Pi/6, 0, 0) // 30° roll
	if !near(q.TiltAngle(), math.Pi/6, 1e-9) {
		t.Fatalf("30° roll tilt = %v", q.TiltAngle())
	}
	q = FromEuler(math.Pi, 0, 0) // inverted
	if !near(q.TiltAngle(), math.Pi, 1e-9) {
		t.Fatalf("inverted tilt = %v", q.TiltAngle())
	}
}

// Property: rotation preserves vector length for any attitude.
func TestQuatRotatePreservesNorm(t *testing.T) {
	f := func(r, p, y, vx, vy, vz float64) bool {
		q := FromEuler(math.Mod(r, math.Pi), math.Mod(p, 1.5), math.Mod(y, math.Pi))
		v := Vec3{math.Mod(vx, 100), math.Mod(vy, 100), math.Mod(vz, 100)}
		return near(q.Rotate(v).Norm(), v.Norm(), 1e-9*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: unit quaternions stay unit under multiplication.
func TestQuatMulPreservesUnit(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		q1 := FromEuler(math.Mod(a, 3), math.Mod(b, 1.5), math.Mod(c, 3))
		q2 := FromEuler(math.Mod(d, 3), math.Mod(e, 1.5), math.Mod(g, 3))
		return near(q1.Mul(q2).Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cross product is anti-commutative and orthogonal to inputs.
func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 10), math.Mod(ay, 10), math.Mod(az, 10)}
		b := Vec3{math.Mod(bx, 10), math.Mod(by, 10), math.Mod(bz, 10)}
		c := a.Cross(b)
		anti := c.Add(b.Cross(a))
		scale := 1 + a.Norm()*b.Norm()
		return anti.Norm() < 1e-9*scale &&
			math.Abs(c.Dot(a)) < 1e-9*scale &&
			math.Abs(c.Dot(b)) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
