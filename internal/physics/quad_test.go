package physics

import (
	"math"
	"testing"
)

func hoverQuad() *Quad {
	q := NewQuad(DefaultParams())
	q.State.Pos = Vec3{Z: 1}
	return q
}

func TestRotorLagConverges(t *testing.T) {
	r := Rotor{MaxThrust: 6, TimeConstant: 0.04, Direction: 1, TorqueCoeff: 0.016}
	r.SetCommand(0.8)
	for i := 0; i < 1000; i++ {
		r.Step(0.001)
	}
	if !near(r.Throttle(), 0.8, 1e-6) {
		t.Fatalf("throttle after 1s = %v, want 0.8", r.Throttle())
	}
}

func TestRotorLagIsGradual(t *testing.T) {
	r := Rotor{MaxThrust: 6, TimeConstant: 0.04, Direction: 1}
	r.SetCommand(1)
	r.Step(0.04) // one time constant
	if r.Throttle() < 0.5 || r.Throttle() > 0.75 {
		t.Fatalf("throttle after one τ = %v, want ≈0.63", r.Throttle())
	}
}

func TestRotorCommandClamped(t *testing.T) {
	var r Rotor
	r.SetCommand(2)
	if r.Command() != 1 {
		t.Fatalf("command = %v, want clamped to 1", r.Command())
	}
	r.SetCommand(-1)
	if r.Command() != 0 {
		t.Fatalf("command = %v, want clamped to 0", r.Command())
	}
}

func TestRotorThrustQuadratic(t *testing.T) {
	r := Rotor{MaxThrust: 8, TimeConstant: 0, Direction: 1}
	r.SetCommand(0.5)
	r.Step(0.01)
	if !near(r.Thrust(), 8*0.25, 1e-9) {
		t.Fatalf("thrust at half throttle = %v, want 2", r.Thrust())
	}
}

func TestRotorReactionTorqueSign(t *testing.T) {
	ccw := Rotor{MaxThrust: 6, TorqueCoeff: 0.016, Direction: +1}
	cw := Rotor{MaxThrust: 6, TorqueCoeff: 0.016, Direction: -1}
	ccw.SetCommand(1)
	cw.SetCommand(1)
	ccw.Step(1)
	cw.Step(1)
	if ccw.ReactionTorque() <= 0 || cw.ReactionTorque() >= 0 {
		t.Fatalf("reaction torques = %v, %v; want opposite signs",
			ccw.ReactionTorque(), cw.ReactionTorque())
	}
}

func TestHoverThrottleBalancesGravity(t *testing.T) {
	q := hoverQuad()
	h := q.HoverThrottle()
	perRotor := q.Params.MaxThrustPerRotor * h * h
	total := 4 * perRotor
	weight := q.Params.Mass * q.Params.Gravity
	if !near(total, weight, 1e-9) {
		t.Fatalf("hover thrust %v != weight %v", total, weight)
	}
}

func TestQuadHoversAtTrim(t *testing.T) {
	q := hoverQuad()
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SettleRotors() // skip spin-up so the trim balance is exact
	dt := 0.0001
	for i := 0; i < 50000; i++ { // 5 s
		q.Step(dt)
	}
	if crashed, _ := q.Crashed(); crashed {
		t.Fatal("quad crashed at hover trim")
	}
	// Drag-free vertical trim: altitude should stay near 1 m.
	if math.Abs(q.State.Pos.Z-1) > 0.1 {
		t.Fatalf("altitude drifted to %v at trim", q.State.Pos.Z)
	}
	if q.State.Attitude.TiltAngle() > 0.01 {
		t.Fatalf("tilt grew to %v at symmetric trim", q.State.Attitude.TiltAngle())
	}
}

func TestQuadFallsWithoutThrust(t *testing.T) {
	q := hoverQuad()
	dt := 0.0001
	for i := 0; i < 60000; i++ { // up to 6 s
		q.Step(dt)
		if c, _ := q.Crashed(); c {
			break
		}
	}
	crashed, when := q.Crashed()
	if !crashed {
		t.Fatal("quad did not crash in free fall from 1 m")
	}
	if when < 0.3 || when > 2 {
		t.Fatalf("free-fall crash at %v s, expected well under 2 s", when)
	}
	if q.State.Pos.Z != 0 {
		t.Fatalf("crashed quad Z = %v, want pinned at ground", q.State.Pos.Z)
	}
}

func TestQuadStateFreezesAfterCrash(t *testing.T) {
	q := hoverQuad()
	for i := 0; i < 100000; i++ {
		q.Step(0.0001)
	}
	crashed, _ := q.Crashed()
	if !crashed {
		t.Fatal("expected crash")
	}
	before := q.State
	q.SetMotors([4]float64{1, 1, 1, 1})
	for i := 0; i < 1000; i++ {
		q.Step(0.0001)
	}
	if q.State != before {
		t.Fatal("state changed after crash")
	}
}

func TestQuadRollTorqueSignConsistency(t *testing.T) {
	// Boosting the two left rotors (indices 1 and 2, y=+1) must
	// produce positive roll torque (positive roll rate about X).
	q := hoverQuad()
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h - 0.05, h + 0.05, h + 0.05, h - 0.05})
	for i := 0; i < 2000; i++ {
		q.Step(0.0001)
	}
	if q.State.Omega.X <= 0 {
		t.Fatalf("left-rotor boost gave roll rate %v, want positive", q.State.Omega.X)
	}
}

func TestQuadPitchTorqueSignConsistency(t *testing.T) {
	// Boosting the two front rotors (indices 0 and 2, x=+1) must
	// produce negative pitch torque (nose up = negative Y torque in
	// our r×F convention).
	q := hoverQuad()
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h + 0.05, h - 0.05, h + 0.05, h - 0.05})
	for i := 0; i < 2000; i++ {
		q.Step(0.0001)
	}
	if q.State.Omega.Y >= 0 {
		t.Fatalf("front-rotor boost gave pitch rate %v, want negative", q.State.Omega.Y)
	}
}

func TestQuadYawFromRotorImbalance(t *testing.T) {
	// Boosting CCW rotors (0,1) against CW rotors (2,3) yields net
	// positive yaw reaction torque.
	q := hoverQuad()
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h + 0.05, h + 0.05, h - 0.05, h - 0.05})
	for i := 0; i < 2000; i++ {
		q.Step(0.0001)
	}
	if q.State.Omega.Z <= 0 {
		t.Fatalf("CCW boost gave yaw rate %v, want positive", q.State.Omega.Z)
	}
}

func TestQuadTiltCausesLateralAccel(t *testing.T) {
	q := hoverQuad()
	q.State.Attitude = FromEuler(0, 0.2, 0) // pitch nose... rotates body Z forward
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	for i := 0; i < 5000; i++ {
		q.Step(0.0001)
	}
	if math.Abs(q.State.Vel.X) < 0.01 {
		t.Fatalf("pitched quad did not accelerate laterally: vx=%v", q.State.Vel.X)
	}
}

func TestQuadDisturbancePushes(t *testing.T) {
	q := hoverQuad()
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SetDisturbance(Vec3{X: 1}, Vec3{})
	for i := 0; i < 10000; i++ {
		q.Step(0.0001)
	}
	if q.State.Vel.X <= 0 {
		t.Fatalf("1N X disturbance gave vx=%v, want positive", q.State.Vel.X)
	}
}

func TestWindDeterministic(t *testing.T) {
	mkNorm := func() func() float64 {
		vals := []float64{0.5, -0.3, 0.8, 0.1, -0.9, 0.2}
		i := 0
		return func() float64 { v := vals[i%len(vals)]; i++; return v }
	}
	w1 := NewWind(0.3, 0.5, 2, mkNorm())
	w2 := NewWind(0.3, 0.5, 2, mkNorm())
	for i := 0; i < 100; i++ {
		if w1.Step(0.01) != w2.Step(0.01) {
			t.Fatal("wind model not deterministic given same noise")
		}
	}
}

func TestWindBounded(t *testing.T) {
	n := 0
	norm := func() float64 { n++; return math.Sin(float64(n)) } // bounded pseudo-noise
	w := NewWind(0.3, 0.5, 2, norm)
	for i := 0; i < 10000; i++ {
		f := w.Step(0.001)
		if f.Norm() > 5 {
			t.Fatalf("wind force %v unreasonably large", f)
		}
	}
}
