package physics

import "math"

// Rotor models one motor+propeller as a first-order lag from commanded
// normalized throttle to achieved throttle, with a quadratic thrust
// map and a reaction (yaw) torque proportional to thrust. The lag is
// what makes stale actuator commands — the symptom of every DoS attack
// in the paper — physically consequential.
type Rotor struct {
	// MaxThrust is the thrust in newtons at full throttle.
	MaxThrust float64
	// TorqueCoeff maps thrust to reaction torque, N·m per N.
	TorqueCoeff float64
	// TimeConstant is the first-order lag time constant in seconds.
	TimeConstant float64
	// Direction is +1 for counter-clockwise rotors, -1 for clockwise;
	// it signs the reaction torque.
	Direction float64

	command  float64 // commanded throttle in [0,1]
	throttle float64 // achieved throttle in [0,1]

	// thrustLoss is 1 - efficiency: the fraction of the thrust map
	// lost to physical degradation (prop damage, bearing wear). Stored
	// as a loss so the zero value is a healthy rotor.
	thrustLoss float64

	// Memoized lag coefficient: dt and TimeConstant are fixed within a
	// run, so 1-exp(-dt/τ) is computed once instead of every step.
	alphaDT  float64
	alphaTau float64
	alpha    float64
}

// SetCommand sets the commanded throttle; values are clamped to [0,1]
// the way an ESC clamps its input.
func (r *Rotor) SetCommand(u float64) { r.command = clamp01(u) }

// Command returns the last commanded throttle.
func (r *Rotor) Command() float64 { return r.command }

// Throttle returns the achieved throttle after the motor lag.
func (r *Rotor) Throttle() float64 { return r.throttle }

// Settle snaps the achieved throttle to the current command,
// bypassing the lag. Scenario setup uses it to start a vehicle that is
// already in steady flight, as the paper's experiments do (the
// operator first flies to a safe height, then the scenario begins).
func (r *Rotor) Settle() { r.throttle = r.command }

// Step advances the motor lag by dt seconds.
func (r *Rotor) Step(dt float64) {
	if r.TimeConstant <= 0 {
		r.throttle = r.command
		return
	}
	if dt != r.alphaDT || r.TimeConstant != r.alphaTau {
		r.alphaDT, r.alphaTau = dt, r.TimeConstant
		r.alpha = 1 - math.Exp(-dt/r.TimeConstant)
	}
	r.throttle += r.alpha * (r.command - r.throttle)
}

// SetEfficiency sets the thrust-efficiency factor, clamped to [0,1].
// The fault layer's rotor-decay injector ramps it down mid-flight.
func (r *Rotor) SetEfficiency(e float64) { r.thrustLoss = 1 - clamp01(e) }

// Efficiency returns the current thrust-efficiency factor (1 for a
// healthy rotor).
func (r *Rotor) Efficiency() float64 { return 1 - r.thrustLoss }

// Thrust returns the current thrust in newtons. Thrust scales with
// the square of the (normalized) rotor speed, approximated here by the
// achieved throttle, degraded by the efficiency factor.
func (r *Rotor) Thrust() float64 {
	return r.MaxThrust * (1 - r.thrustLoss) * r.throttle * r.throttle
}

// ReactionTorque returns the signed yaw reaction torque in N·m.
func (r *Rotor) ReactionTorque() float64 {
	return r.Direction * r.TorqueCoeff * r.Thrust()
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
