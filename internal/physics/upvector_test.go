package physics

import (
	"math"
	"testing"
)

// TestUpVectorMatchesRotate pins the bit-exact equivalence the
// UpVector fast path claims: the folded form must round identically
// to the general Rotate at every step, or hot-loop consumers (crash
// envelope, force assembly) would drift from the reference math.
func TestUpVectorMatchesRotate(t *testing.T) {
	seed := uint64(12345)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(int64(seed)) / float64(math.MaxInt64) * 4
	}
	for i := 0; i < 1_000_000; i++ {
		q := Quat{W: next(), X: next(), Y: next(), Z: next()}.Normalized()
		want := q.Rotate(Vec3{Z: 1})
		got := q.UpVector()
		if got != want {
			t.Fatalf("UpVector() = %+v, Rotate(Z) = %+v for %+v", got, want, q)
		}
	}
}
