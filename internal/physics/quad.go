package physics

import (
	"fmt"
	"math"
)

// State is the full rigid-body state of the quadrotor.
type State struct {
	Pos      Vec3 // world position, m
	Vel      Vec3 // world velocity, m/s
	Attitude Quat // body-to-world rotation
	Omega    Vec3 // body angular rate, rad/s
}

// Roll, Pitch, Yaw extract Euler angles from the attitude.
func (s State) RollPitchYaw() (roll, pitch, yaw float64) { return s.Attitude.Euler() }

// Params describes the airframe. DefaultParams matches a ~1.2 kg
// RPi3B+Navio2 class quadcopter in X configuration.
type Params struct {
	Mass    float64 // kg
	ArmLen  float64 // m, rotor distance from center
	Ixx     float64 // kg·m², roll inertia
	Iyy     float64 // kg·m², pitch inertia
	Izz     float64 // kg·m², yaw inertia
	LinDrag float64 // N per m/s, linear aero drag
	AngDrag float64 // N·m per rad/s, rotational damping

	MaxThrustPerRotor float64 // N
	RotorTimeConst    float64 // s
	TorqueCoeff       float64 // N·m per N

	Gravity float64 // m/s², positive down
}

// DefaultParams returns the prototype-drone airframe used by every
// experiment in this reproduction.
func DefaultParams() Params {
	return Params{
		Mass:              1.2,
		ArmLen:            0.16,
		Ixx:               0.012,
		Iyy:               0.012,
		Izz:               0.022,
		LinDrag:           0.25,
		AngDrag:           0.003,
		MaxThrustPerRotor: 6.0, // ~2:1 thrust-to-weight
		RotorTimeConst:    0.04,
		TorqueCoeff:       0.016,
		Gravity:           9.81,
	}
}

// Quad is the 6-DOF quadrotor body with four rotors in X
// configuration:
//
//	rotor 0: front-right, CCW     rotor 1: back-left,  CCW
//	rotor 2: front-left,  CW      rotor 3: back-right, CW
//
// (the PX4/quad-x numbering used by the motor mixer).
type Quad struct {
	Params Params
	State  State
	Rotors [4]Rotor

	crashed    bool
	crashTime  float64
	disturb    Vec3 // external force, N (wind gusts etc.)
	disturbTrq Vec3 // external torque, N·m
	elapsed    float64
}

// rotor geometry: position signs (x forward, y left) per rotor index.
var rotorGeom = [4]struct{ x, y, dir float64 }{
	{+1, -1, +1}, // 0 front-right CCW
	{-1, +1, +1}, // 1 back-left   CCW
	{+1, +1, -1}, // 2 front-left  CW
	{-1, -1, -1}, // 3 back-right  CW
}

// NewQuad builds a quadrotor at the origin, level, at rest.
func NewQuad(p Params) *Quad {
	q := &Quad{Params: p}
	q.State.Attitude = IdentityQuat()
	for i := range q.Rotors {
		q.Rotors[i] = Rotor{
			MaxThrust:    p.MaxThrustPerRotor,
			TorqueCoeff:  p.TorqueCoeff,
			TimeConstant: p.RotorTimeConst,
			Direction:    rotorGeom[i].dir,
		}
	}
	return q
}

// Reset rewinds the vehicle to a fresh NewQuad at the origin: level,
// at rest, rotors healthy and stopped, crash state and disturbances
// cleared. The rotors' memoized lag coefficients survive (they are a
// pure function of dt and the time constant).
func (q *Quad) Reset() {
	q.State = State{Attitude: IdentityQuat()}
	for i := range q.Rotors {
		r := &q.Rotors[i]
		r.command = 0
		r.throttle = 0
		r.thrustLoss = 0
	}
	q.crashed = false
	q.crashTime = 0
	q.disturb = Vec3{}
	q.disturbTrq = Vec3{}
	q.elapsed = 0
}

// SetMotors applies normalized throttle commands to the four rotors.
func (q *Quad) SetMotors(u [4]float64) {
	for i := range q.Rotors {
		q.Rotors[i].SetCommand(u[i])
	}
}

// Motors returns the currently commanded throttles.
func (q *Quad) Motors() [4]float64 {
	var u [4]float64
	for i := range q.Rotors {
		u[i] = q.Rotors[i].Command()
	}
	return u
}

// SettleRotors snaps all rotors to their commanded throttle, skipping
// the spin-up transient. Call during scenario setup for a vehicle that
// begins the run already in stable flight.
func (q *Quad) SettleRotors() {
	for i := range q.Rotors {
		q.Rotors[i].Settle()
	}
}

// SetRotorEfficiency degrades (or restores) one rotor's thrust
// efficiency — the airframe surface of the rotor-decay fault. The
// index is the quad-x rotor number; e is clamped to [0,1].
func (q *Quad) SetRotorEfficiency(i int, e float64) {
	q.Rotors[i].SetEfficiency(e)
}

// SetDisturbance applies an external world-frame force (N) and body
// torque (N·m), held until changed. Used by the wind model.
func (q *Quad) SetDisturbance(force, torque Vec3) {
	q.disturb = force
	q.disturbTrq = torque
}

// HoverThrottle returns the per-rotor throttle that balances gravity
// at level attitude — the natural trim point for the controllers.
func (q *Quad) HoverThrottle() float64 {
	perRotor := q.Params.Mass * q.Params.Gravity / 4
	return math.Sqrt(perRotor / q.Params.MaxThrustPerRotor)
}

// Crashed reports whether the vehicle has hit the ground (or flipped
// past recovery) and, if so, at what simulated time in seconds.
func (q *Quad) Crashed() (bool, float64) { return q.crashed, q.crashTime }

// Step integrates the body by dt seconds using semi-implicit Euler.
// Once crashed, the state freezes at the crash site.
func (q *Quad) Step(dt float64) {
	if q.crashed {
		q.elapsed += dt
		return
	}
	p := &q.Params

	// Rotor dynamics.
	totalThrust := 0.0
	var torque Vec3
	for i := range q.Rotors {
		r := &q.Rotors[i]
		r.Step(dt)
		t := r.Thrust()
		totalThrust += t
		g := rotorGeom[i]
		// Arm torque is r × F with r=(x·L, y·L, 0), F=(0,0,t):
		// τ = (y·L·t, −x·L·t, 0), plus the propeller reaction about Z
		// (ReactionTorque with the thrust already in hand).
		torque.X += g.y * p.ArmLen * t
		torque.Y += -g.x * p.ArmLen * t
		torque.Z += r.Direction * r.TorqueCoeff * t
	}

	// Forces in world frame: thrust along body Z, gravity, drag, wind.
	bodyZ := q.State.Attitude.UpVector()
	force := bodyZ.Scale(totalThrust)
	force.Z -= p.Mass * p.Gravity
	force = force.Add(q.State.Vel.Scale(-p.LinDrag))
	force = force.Add(q.disturb)

	// Torques in body frame: rotor torques, damping, disturbance,
	// gyroscopic term ω × Iω.
	iw := Vec3{p.Ixx * q.State.Omega.X, p.Iyy * q.State.Omega.Y, p.Izz * q.State.Omega.Z}
	gyro := q.State.Omega.Cross(iw)
	torque = torque.Sub(gyro)
	torque = torque.Add(q.State.Omega.Scale(-p.AngDrag))
	torque = torque.Add(q.disturbTrq)

	// Semi-implicit Euler: update rates first, then pose.
	accel := force.Scale(1 / p.Mass)
	q.State.Vel = q.State.Vel.Add(accel.Scale(dt))
	q.State.Pos = q.State.Pos.Add(q.State.Vel.Scale(dt))

	alpha := Vec3{torque.X / p.Ixx, torque.Y / p.Iyy, torque.Z / p.Izz}
	q.State.Omega = q.State.Omega.Add(alpha.Scale(dt))
	q.State.Attitude = q.State.Attitude.Integrate(q.State.Omega, dt)

	q.elapsed += dt

	// Crash envelope: ground contact while moving, or inverted. The
	// tilt test compares cosines (monotone on [0, π]) to keep the
	// arccosine off the per-tick path.
	if q.State.Pos.Z <= 0 && q.elapsed > 0.5 {
		q.crash()
	}
	if q.State.Attitude.CosTilt() < crashCosTilt {
		q.crash()
	}
}

// crashCosTilt is cos(135°): tilting past it means inverted flight.
var crashCosTilt = math.Cos(math.Pi * 0.75)

func (q *Quad) crash() {
	if q.crashed {
		return
	}
	q.crashed = true
	q.crashTime = q.elapsed
	if q.State.Pos.Z < 0 {
		q.State.Pos.Z = 0
	}
	q.State.Vel = Vec3{}
	q.State.Omega = Vec3{}
}

// String summarizes the vehicle state.
func (q *Quad) String() string {
	r, p, y := q.State.RollPitchYaw()
	return fmt.Sprintf("pos=(%.2f,%.2f,%.2f) rpy=(%.1f°,%.1f°,%.1f°) crashed=%v",
		q.State.Pos.X, q.State.Pos.Y, q.State.Pos.Z,
		r*180/math.Pi, p*180/math.Pi, y*180/math.Pi, q.crashed)
}
