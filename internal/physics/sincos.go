package physics

import "math"

// sincosSmall returns math.Sincos(x) for first-octant arguments,
// bit-identically, without the stdlib's sign handling, special-case
// tests, and octant reduction. For 0 ≤ x < π/4 the stdlib lands in
// octant j=0 with an exact zero reduction (z = x), leaving only the
// two kernel polynomials — which this function evaluates with the
// stdlib's own coefficients in the stdlib's own association, so every
// rounding step matches (TestSincosSmallMatchesStdlib pins this
// exhaustively against the installed math package).
//
// The attitude integrator calls Sincos once per 100 µs physics step
// with a half-angle on the order of |ω|·dt/2 ≈ 1e-4 rad; skipping the
// reduction on that path is worth ~10% of a whole flight.
//
// Callers must gate on sincosSmallOK; outside the first octant the
// polynomials are wrong.
func sincosSmall(x float64) (sin, cos float64) {
	zz := x * x
	cos = 1.0 - 0.5*zz + zz*zz*((((((cosC0*zz)+cosC1)*zz+cosC2)*zz+cosC3)*zz+cosC4)*zz+cosC5)
	sin = x + x*zz*((((((sinC0*zz)+sinC1)*zz+sinC2)*zz+sinC3)*zz+sinC4)*zz+sinC5)
	return
}

// sincosSmallOK reports whether x takes the j=0 fast path — the exact
// octant test math.Sincos performs, so the gate and the stdlib agree
// on every boundary value.
func sincosSmallOK(x float64) bool {
	return x >= 0 && uint64(x*(4/math.Pi)) == 0
}

// The math package's sin/cos kernel coefficients (Cephes sin.c,
// as shipped in $GOROOT/src/math/sin.go).
const (
	sinC0 = 1.58962301576546568060e-10 // 0x3de5d8fd1fd19ccd
	sinC1 = -2.50507477628578072866e-8 // 0xbe5ae5e5a9291f5d
	sinC2 = 2.75573136213857245213e-6  // 0x3ec71de3567d48a1
	sinC3 = -1.98412698295895385996e-4 // 0xbf2a01a019bfdf03
	sinC4 = 8.33333333332211858878e-3  // 0x3f8111111110f7d0
	sinC5 = -1.66666666666666307295e-1 // 0xbfc5555555555548

	cosC0 = -1.13585365213876817300e-11 // 0xbda8fa49a0861a9b
	cosC1 = 2.08757008419747316778e-9   // 0x3e21ee9d7b4e3f05
	cosC2 = -2.75573141792967388112e-7  // 0xbe927e4f7eac4bc6
	cosC3 = 2.48015872888517045348e-5   // 0x3efa01a019c844f5
	cosC4 = -1.38888888888730564116e-3  // 0xbf56c16c16c14f91
	cosC5 = 4.16666666666665929218e-2   // 0x3fa555555555554b
)
