package physics

import "math"

// Wind is a light turbulence model: a slowly-varying mean gust plus
// band-limited noise, producing the persistent disturbances that make
// degraded control visibly drift (Figs 4–7 all show setpoint error
// under disturbance). It is deterministic given its noise source.
type Wind struct {
	// MeanForce is the steady force amplitude in newtons.
	MeanForce float64
	// GustForce is the peak of the random gust component in newtons.
	GustForce float64
	// Period is the dominant gust period in seconds.
	Period float64

	noise func() float64 // standard normal source
	state Vec3           // filtered gust state
	t     float64
}

// NewWind builds a wind model; norm must return standard normal
// samples (wire it to sim.RNG.Norm).
func NewWind(mean, gust, period float64, norm func() float64) *Wind {
	return &Wind{MeanForce: mean, GustForce: gust, Period: period, noise: norm}
}

// Reset clears the filtered gust state and rewinds the gust clock,
// returning the model to its just-built state (the noise source is
// external and is reseeded by the caller).
func (w *Wind) Reset() {
	w.state = Vec3{}
	w.t = 0
}

// WindState is a snapshot of the model's dynamic state; the noise
// source stays with its owner (its RNG stream is captured separately).
type WindState struct {
	state Vec3
	t     float64
}

// SnapshotInto captures the model's dynamic state into st.
func (w *Wind) SnapshotInto(st *WindState) {
	st.state = w.state
	st.t = w.t
}

// RestoreFrom rewinds the model to a captured state, keeping its own
// noise source.
func (w *Wind) RestoreFrom(st *WindState) {
	w.state = st.state
	w.t = st.t
}

// Step advances the model by dt seconds and returns the world-frame
// force to apply to the airframe.
func (w *Wind) Step(dt float64) Vec3 {
	w.t += dt
	// First-order coloured noise per axis.
	if w.Period > 0 && w.noise != nil {
		alpha := dt / w.Period
		if alpha > 1 {
			alpha = 1
		}
		w.state.X += alpha * (w.GustForce*w.noise() - w.state.X)
		w.state.Y += alpha * (w.GustForce*w.noise() - w.state.Y)
		w.state.Z += alpha * (0.5*w.GustForce*w.noise() - w.state.Z)
	}
	// Slowly rotating mean component.
	angle := 2 * math.Pi * w.t / math.Max(w.Period*8, 1e-9)
	mean := Vec3{
		X: w.MeanForce * math.Cos(angle),
		Y: w.MeanForce * math.Sin(angle),
	}
	return mean.Add(w.state)
}
