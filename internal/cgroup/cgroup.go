// Package cgroup models the three Linux control-group controllers the
// paper's framework configures through Docker (§III-C, §III-D):
//
//   - cpuset: pins a group of tasks to a set of CPU cores,
//   - cpu: caps the real-time FIFO priority tasks in the group may use,
//   - memory: limits the bytes of RAM the group may allocate.
//
// Groups form a hierarchy; a child's effective constraints are the
// intersection of its own and every ancestor's. Note that — exactly as
// the paper observes — the memory controller limits *allocation*, not
// *bandwidth*; the Bandwidth attack fits comfortably inside its memory
// limit while saturating the DRAM bus, which is why MemGuard exists.
package cgroup

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// CPUSet is a set of CPU core indices.
type CPUSet map[int]bool

// NewCPUSet builds a set from core indices.
func NewCPUSet(cores ...int) CPUSet {
	s := make(CPUSet, len(cores))
	for _, c := range cores {
		s[c] = true
	}
	return s
}

// Contains reports whether the core is in the set.
func (s CPUSet) Contains(core int) bool { return s[core] }

// Intersect returns the cores present in both sets. A nil set means
// "all cores" and acts as identity.
func (s CPUSet) Intersect(o CPUSet) CPUSet {
	if s == nil {
		return o
	}
	if o == nil {
		return s
	}
	out := make(CPUSet)
	for c := range s {
		if o[c] {
			out[c] = true
		}
	}
	return out
}

// Empty reports whether the set has no cores. A nil set is NOT empty
// (it means unrestricted).
func (s CPUSet) Empty() bool { return s != nil && len(s) == 0 }

// String renders the set like the kernel's cpuset file, e.g. "0-2".
func (s CPUSet) String() string {
	if s == nil {
		return "all"
	}
	cores := make([]int, 0, len(s))
	for c := range s {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	parts := make([]string, len(cores))
	for i, c := range cores {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// Errors returned by group operations.
var (
	ErrMemoryLimit   = errors.New("cgroup: memory limit exceeded")
	ErrCoreForbidden = errors.New("cgroup: core outside cpuset")
	ErrPrioForbidden = errors.New("cgroup: priority above rt cap")
	ErrDuplicate     = errors.New("cgroup: duplicate child name")
)

// Group is one node of the cgroup hierarchy.
type Group struct {
	name     string
	parent   *Group
	children map[string]*Group

	cpuset   CPUSet // nil = inherit/unrestricted
	rtPrio   int    // max FIFO priority; 0 = unrestricted
	memLimit int64  // bytes; 0 = unrestricted
	memUsed  int64  // bytes charged to this group (not descendants)
	pidLimit int    // processes; 0 = unrestricted (pids controller)
	pids     int    // processes charged to this group
}

// NewRoot creates the hierarchy root (unrestricted).
func NewRoot() *Group {
	return &Group{name: "/", children: make(map[string]*Group)}
}

// NewChild creates a child group.
func (g *Group) NewChild(name string) (*Group, error) {
	if _, dup := g.children[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	c := &Group{name: name, parent: g, children: make(map[string]*Group)}
	g.children[name] = c
	return c, nil
}

// Name returns the group's name; Path the full hierarchy path.
func (g *Group) Name() string { return g.name }

// Path returns the slash-joined path from the root.
func (g *Group) Path() string {
	if g.parent == nil {
		return "/"
	}
	p := g.parent.Path()
	if p == "/" {
		return "/" + g.name
	}
	return p + "/" + g.name
}

// SetCPUSet pins the group to a set of cores (cpuset controller).
func (g *Group) SetCPUSet(s CPUSet) { g.cpuset = s }

// SetRTPrioCap caps the FIFO priority of tasks in the group (the cpu
// controller's rt limits; Docker uses this to prevent containers from
// raising their own priority, §III-C).
func (g *Group) SetRTPrioCap(p int) { g.rtPrio = p }

// SetMemoryLimit bounds bytes allocated by the group.
func (g *Group) SetMemoryLimit(bytes int64) { g.memLimit = bytes }

// EffectiveCPUSet intersects cpusets up the hierarchy.
func (g *Group) EffectiveCPUSet() CPUSet {
	var eff CPUSet
	for n := g; n != nil; n = n.parent {
		eff = eff.Intersect(n.cpuset)
	}
	return eff
}

// EffectiveRTPrioCap returns the tightest priority cap up the
// hierarchy (0 = unrestricted).
func (g *Group) EffectiveRTPrioCap() int {
	cap := 0
	for n := g; n != nil; n = n.parent {
		if n.rtPrio > 0 && (cap == 0 || n.rtPrio < cap) {
			cap = n.rtPrio
		}
	}
	return cap
}

// CheckPlacement validates that a task pinned to core at the given
// FIFO priority is admissible for this group.
func (g *Group) CheckPlacement(core, priority int) error {
	eff := g.EffectiveCPUSet()
	if eff != nil && !eff.Contains(core) {
		return fmt.Errorf("%w: core %d not in %v (group %s)", ErrCoreForbidden, core, eff, g.Path())
	}
	if cap := g.EffectiveRTPrioCap(); cap > 0 && priority > cap {
		return fmt.Errorf("%w: prio %d > cap %d (group %s)", ErrPrioForbidden, priority, cap, g.Path())
	}
	return nil
}

// Allocate charges bytes to the group, enforcing every ancestor's
// limit against the subtree usage it can see.
func (g *Group) Allocate(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("cgroup: negative allocation %d", bytes)
	}
	for n := g; n != nil; n = n.parent {
		if n.memLimit > 0 && n.SubtreeUsage()+bytes > n.memLimit {
			return fmt.Errorf("%w: %d + %d > %d (group %s)",
				ErrMemoryLimit, n.SubtreeUsage(), bytes, n.memLimit, n.Path())
		}
	}
	g.memUsed += bytes
	return nil
}

// Free returns bytes to the group; freeing more than allocated clamps
// to zero (mirrors the kernel's non-negative usage counter).
func (g *Group) Free(bytes int64) {
	g.memUsed -= bytes
	if g.memUsed < 0 {
		g.memUsed = 0
	}
}

// Usage returns bytes charged directly to this group.
func (g *Group) Usage() int64 { return g.memUsed }

// SubtreeUsage returns bytes charged to this group and descendants.
func (g *Group) SubtreeUsage() int64 {
	total := g.memUsed
	for _, c := range g.children {
		total += c.SubtreeUsage()
	}
	return total
}
