package cgroup

import (
	"errors"
	"testing"
)

func TestPIDLimitEnforced(t *testing.T) {
	root := NewRoot()
	cce, _ := root.NewChild("cce")
	cce.SetPIDLimit(3)
	for i := 0; i < 3; i++ {
		if err := cce.Fork(); err != nil {
			t.Fatalf("fork %d refused: %v", i, err)
		}
	}
	if err := cce.Fork(); !errors.Is(err, ErrPIDLimit) {
		t.Fatalf("err = %v, want ErrPIDLimit", err)
	}
	if cce.PIDs() != 3 {
		t.Fatalf("PIDs = %d", cce.PIDs())
	}
}

func TestPIDExitReplenishes(t *testing.T) {
	root := NewRoot()
	g, _ := root.NewChild("g")
	g.SetPIDLimit(1)
	if err := g.Fork(); err != nil {
		t.Fatal(err)
	}
	g.Exit()
	if err := g.Fork(); err != nil {
		t.Fatalf("fork after exit refused: %v", err)
	}
}

func TestPIDExitNeverNegative(t *testing.T) {
	g := NewRoot()
	g.Exit()
	if g.PIDs() != 0 {
		t.Fatalf("PIDs = %d after over-exit", g.PIDs())
	}
}

func TestPIDLimitCountsSubtree(t *testing.T) {
	root := NewRoot()
	docker, _ := root.NewChild("docker")
	docker.SetPIDLimit(5)
	a, _ := docker.NewChild("a")
	b, _ := docker.NewChild("b")
	for i := 0; i < 3; i++ {
		if err := a.Fork(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := b.Fork(); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Fork(); !errors.Is(err, ErrPIDLimit) {
		t.Fatalf("subtree overflow accepted: %v", err)
	}
	if docker.SubtreePIDs() != 5 {
		t.Fatalf("SubtreePIDs = %d", docker.SubtreePIDs())
	}
}

func TestPIDUnlimitedByDefault(t *testing.T) {
	g := NewRoot()
	for i := 0; i < 10000; i++ {
		if err := g.Fork(); err != nil {
			t.Fatalf("unlimited fork %d refused: %v", i, err)
		}
	}
}
