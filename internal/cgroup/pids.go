package cgroup

import (
	"errors"
	"fmt"
)

// The pids controller bounds the number of processes a group may
// hold — Docker's --pids-limit. It is the defense against fork-bomb
// style DoS from inside the container: without it, a malicious update
// could exhaust the global process table and starve the HCE of kernel
// resources the cpuset cannot protect.

// ErrPIDLimit is returned when a fork would exceed the pids limit of
// the group or any ancestor.
var ErrPIDLimit = errors.New("cgroup: pids limit exceeded")

// SetPIDLimit bounds the processes in the group's subtree; 0 removes
// the limit.
func (g *Group) SetPIDLimit(n int) { g.pidLimit = n }

// PIDLimit returns the group's own limit (0 = unlimited).
func (g *Group) PIDLimit() int { return g.pidLimit }

// PIDs returns the processes charged directly to this group.
func (g *Group) PIDs() int { return g.pids }

// SubtreePIDs counts processes in this group and all descendants.
func (g *Group) SubtreePIDs() int {
	total := g.pids
	for _, c := range g.children {
		total += c.SubtreePIDs()
	}
	return total
}

// Fork charges one process to the group, enforcing every ancestor's
// pids limit against its subtree count.
func (g *Group) Fork() error {
	for n := g; n != nil; n = n.parent {
		if n.pidLimit > 0 && n.SubtreePIDs()+1 > n.pidLimit {
			return fmt.Errorf("%w: %d at limit %d (group %s)",
				ErrPIDLimit, n.SubtreePIDs(), n.pidLimit, n.Path())
		}
	}
	g.pids++
	return nil
}

// Exit returns one process; the count never goes negative.
func (g *Group) Exit() {
	if g.pids > 0 {
		g.pids--
	}
}
