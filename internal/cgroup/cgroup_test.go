package cgroup

import (
	"errors"
	"testing"
)

func TestCPUSetBasics(t *testing.T) {
	s := NewCPUSet(0, 1, 2)
	if !s.Contains(1) || s.Contains(3) {
		t.Fatal("membership wrong")
	}
	if s.String() != "0,1,2" {
		t.Fatalf("String = %q", s.String())
	}
	var all CPUSet
	if all.String() != "all" {
		t.Fatalf("nil set String = %q", all.String())
	}
}

func TestCPUSetIntersect(t *testing.T) {
	a := NewCPUSet(0, 1, 2)
	b := NewCPUSet(2, 3)
	got := a.Intersect(b)
	if !got.Contains(2) || got.Contains(0) || got.Contains(3) {
		t.Fatalf("intersect = %v", got)
	}
	if a.Intersect(nil).String() != a.String() {
		t.Fatal("nil should act as identity")
	}
	var n CPUSet
	if n.Intersect(b).String() != b.String() {
		t.Fatal("nil receiver should act as identity")
	}
	if !NewCPUSet(0).Intersect(NewCPUSet(1)).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestHierarchyPath(t *testing.T) {
	root := NewRoot()
	docker, err := root.NewChild("docker")
	if err != nil {
		t.Fatal(err)
	}
	cce, err := docker.NewChild("cce")
	if err != nil {
		t.Fatal(err)
	}
	if cce.Path() != "/docker/cce" {
		t.Fatalf("Path = %q", cce.Path())
	}
	if root.Path() != "/" {
		t.Fatalf("root path = %q", root.Path())
	}
}

func TestDuplicateChildRejected(t *testing.T) {
	root := NewRoot()
	if _, err := root.NewChild("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.NewChild("x"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestEffectiveCPUSetIntersectsAncestors(t *testing.T) {
	root := NewRoot()
	root.SetCPUSet(NewCPUSet(0, 1, 2, 3))
	docker, _ := root.NewChild("docker")
	docker.SetCPUSet(NewCPUSet(2, 3))
	cce, _ := docker.NewChild("cce")
	cce.SetCPUSet(NewCPUSet(3))
	eff := cce.EffectiveCPUSet()
	if !eff.Contains(3) || eff.Contains(2) {
		t.Fatalf("effective = %v, want {3}", eff)
	}
}

func TestCheckPlacementCPUSet(t *testing.T) {
	root := NewRoot()
	cce, _ := root.NewChild("cce")
	cce.SetCPUSet(NewCPUSet(3))
	if err := cce.CheckPlacement(3, 10); err != nil {
		t.Fatalf("core 3 rejected: %v", err)
	}
	if err := cce.CheckPlacement(0, 10); !errors.Is(err, ErrCoreForbidden) {
		t.Fatalf("err = %v, want ErrCoreForbidden", err)
	}
}

func TestCheckPlacementPriorityCap(t *testing.T) {
	root := NewRoot()
	cce, _ := root.NewChild("cce")
	cce.SetRTPrioCap(10)
	if err := cce.CheckPlacement(0, 10); err != nil {
		t.Fatalf("prio at cap rejected: %v", err)
	}
	// The paper's defense: the container cannot raise its priority to
	// compete with the 90-priority drivers.
	if err := cce.CheckPlacement(0, 90); !errors.Is(err, ErrPrioForbidden) {
		t.Fatalf("err = %v, want ErrPrioForbidden", err)
	}
}

func TestPriorityCapTightestAncestorWins(t *testing.T) {
	root := NewRoot()
	root.SetRTPrioCap(50)
	child, _ := root.NewChild("c")
	child.SetRTPrioCap(80) // looser than parent: parent still binds
	if got := child.EffectiveRTPrioCap(); got != 50 {
		t.Fatalf("effective cap = %d, want 50", got)
	}
	grand, _ := child.NewChild("g")
	grand.SetRTPrioCap(10)
	if got := grand.EffectiveRTPrioCap(); got != 10 {
		t.Fatalf("effective cap = %d, want 10", got)
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	root := NewRoot()
	cce, _ := root.NewChild("cce")
	cce.SetMemoryLimit(1 << 20) // 1 MiB
	if err := cce.Allocate(1 << 19); err != nil {
		t.Fatal(err)
	}
	if err := cce.Allocate(1 << 19); err != nil {
		t.Fatal(err)
	}
	if err := cce.Allocate(1); !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("err = %v, want ErrMemoryLimit", err)
	}
	cce.Free(1 << 19)
	if err := cce.Allocate(100); err != nil {
		t.Fatalf("allocation after free rejected: %v", err)
	}
}

func TestMemoryLimitCountsSubtree(t *testing.T) {
	root := NewRoot()
	docker, _ := root.NewChild("docker")
	docker.SetMemoryLimit(1000)
	a, _ := docker.NewChild("a")
	b, _ := docker.NewChild("b")
	if err := a.Allocate(600); err != nil {
		t.Fatal(err)
	}
	if err := b.Allocate(600); !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("sibling overflow accepted: %v", err)
	}
	if docker.SubtreeUsage() != 600 {
		t.Fatalf("SubtreeUsage = %d", docker.SubtreeUsage())
	}
	if docker.Usage() != 0 {
		t.Fatalf("Usage = %d, direct usage should be 0", docker.Usage())
	}
}

func TestFreeClampsAtZero(t *testing.T) {
	root := NewRoot()
	root.Free(100)
	if root.Usage() != 0 {
		t.Fatalf("Usage = %d after over-free", root.Usage())
	}
}

func TestNegativeAllocationRejected(t *testing.T) {
	if err := NewRoot().Allocate(-1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

// The paper's key observation (§III-D): the memory *size* limit does
// not stop a bandwidth attack — a small buffer accessed intensively
// stays within the limit.
func TestMemorySizeLimitDoesNotBoundBandwidth(t *testing.T) {
	root := NewRoot()
	cce, _ := root.NewChild("cce")
	cce.SetMemoryLimit(64 << 20) // generous 64 MiB
	// The Bandwidth attack allocates one small array…
	if err := cce.Allocate(4 << 20); err != nil {
		t.Fatalf("attack buffer rejected: %v", err)
	}
	// …and the cgroup layer has no further say in how often it is
	// accessed. Nothing in this package can express an access-rate
	// bound — that is memguard's job. This test documents the gap.
	if cce.SubtreeUsage() >= 64<<20 {
		t.Fatal("attack buffer should be comfortably inside the limit")
	}
}
