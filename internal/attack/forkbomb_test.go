package attack

import (
	"errors"
	"testing"
	"time"

	"containerdrone/internal/cgroup"
	"containerdrone/internal/container"
	"containerdrone/internal/netsim"
	"containerdrone/internal/sched"
)

func TestForkBombCountsRefusals(t *testing.T) {
	limit := 5
	spawned := 0
	spawn := func(*sched.Task) error {
		if spawned >= limit {
			return errors.New("pids limit")
		}
		spawned++
		return nil
	}
	fb := NewForkBomb(spawn, 3, 1000)
	task := fb.Task(3)
	for i := 0; i < 10; i++ { // 10 jobs × 10 forks
		task.Work(time.Duration(i) * 10 * time.Millisecond)
	}
	if fb.Attempts() != 100 {
		t.Fatalf("attempts = %d, want 100", fb.Attempts())
	}
	if fb.Children() != 5 {
		t.Fatalf("children = %d, want 5", fb.Children())
	}
	if fb.Refused() != 95 {
		t.Fatalf("refused = %d, want 95", fb.Refused())
	}
}

func TestForkBombDefaults(t *testing.T) {
	fb := NewForkBomb(func(*sched.Task) error { return nil }, 3, 0)
	if fb.SpawnPerSecond != 1000 {
		t.Fatalf("default rate = %v", fb.SpawnPerSecond)
	}
}

// End-to-end against the real container runtime: the pids limit
// contains the bomb; without a limit the bomb floods the scheduler.
func TestForkBombContainedByPIDLimit(t *testing.T) {
	cpu := sched.NewCPU(4, 100*time.Microsecond, nil, nil)
	net := netsim.New(nil, nil)
	rt, err := container.NewRuntime(container.Config{
		CPU: cpu, Net: net, Root: cgroup.NewRoot(), HostName: "hce",
	})
	if err != nil {
		t.Fatal(err)
	}
	cce, err := rt.Create(container.Spec{
		Name:      "cce",
		CPUSet:    cgroup.NewCPUSet(3),
		RTPrioCap: sched.PrioContainer,
		PIDLimit:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cce.Start(); err != nil {
		t.Fatal(err)
	}
	fb := NewForkBomb(cce.StartTask, 3, 10000)
	if err := cce.StartTask(fb.Task(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ { // 1 s
		cpu.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
	// Bomb driver + children ≤ pids limit.
	if got := len(cce.Tasks()); got > 16 {
		t.Fatalf("container holds %d tasks, limit 16", got)
	}
	if fb.Refused() == 0 {
		t.Fatal("pids limit never refused a fork")
	}
	// The host side is untouched either way (cpuset), but the
	// scheduler must not be flooded.
	if got := len(cpu.Tasks()); got > 20 {
		t.Fatalf("scheduler holds %d tasks", got)
	}
}

func TestForkBombUnlimitedFloodsScheduler(t *testing.T) {
	cpu := sched.NewCPU(4, 100*time.Microsecond, nil, nil)
	net := netsim.New(nil, nil)
	rt, _ := container.NewRuntime(container.Config{
		CPU: cpu, Net: net, Root: cgroup.NewRoot(), HostName: "hce",
	})
	cce, _ := rt.Create(container.Spec{
		Name:      "cce",
		CPUSet:    cgroup.NewCPUSet(3),
		RTPrioCap: sched.PrioContainer,
		// no PIDLimit
	})
	cce.Start()
	fb := NewForkBomb(cce.StartTask, 3, 10000)
	cce.StartTask(fb.Task(3))
	for i := 0; i < 2000; i++ { // 200 ms
		cpu.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
	if fb.Children() < 100 {
		t.Fatalf("unlimited bomb spawned only %d children", fb.Children())
	}
	// Even so, cpuset keeps the damage on core 3: a driver-priority
	// host task on core 0 is unaffected.
	driver := cpu.Add(&sched.Task{
		Name: "driver", Core: 0, Priority: sched.PrioDriver,
		Period: 4 * time.Millisecond, WCET: time.Millisecond,
	})
	for i := 2000; i < 12000; i++ {
		cpu.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
	if driver.Stats().Missed != 0 {
		t.Fatal("fork bomb on core 3 affected a core-0 driver")
	}
}
