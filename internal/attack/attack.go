// Package attack implements the adversary of the paper's threat model
// (§III-B): malicious code smuggled into the container through an
// update, able to run any program inside the CCE but unable to escape
// it. Four concrete attacks cover the paper's experiments plus the
// CPU-DoS case the defenses are designed around:
//
//   - Bandwidth: the IsolBench-style memory hog of §V-B (Figs 4/5),
//   - Flood: the UDP packet flood of §V-C (Fig 7),
//   - KillController: the §V-D attack that shuts down the complex
//     controller mid-flight (Fig 6),
//   - CPUHog: a busy-loop spinner targeting CPU time (§III-C).
package attack

import (
	"fmt"
	"time"

	"containerdrone/internal/sched"
)

// BandwidthAccessRate is the default memory demand of the Bandwidth
// attack: several times the bus capacity, matching IsolBench's
// sequential read/write of a large array.
const BandwidthAccessRate = 400e6 // accesses per second

// Bandwidth returns the memory-intensive busy task. It is "the only
// process running inside the container" in the paper's experiment, so
// it gets the whole container core to itself.
func Bandwidth(core int, accessRate float64) *sched.Task {
	if accessRate <= 0 {
		accessRate = BandwidthAccessRate
	}
	return &sched.Task{
		Name:       "attack-bandwidth",
		Core:       core,
		Priority:   sched.PrioContainer,
		AccessRate: accessRate,
		MemBound:   1, // pure pointer-chasing: fully memory bound
	}
}

// CPUHog returns a pure compute spinner at the given priority (the
// priority cap of the container decides how much damage it can do).
func CPUHog(core, priority int) *sched.Task {
	return &sched.Task{
		Name:     "attack-cpuhog",
		Core:     core,
		Priority: priority,
	}
}

// Flood generates a UDP packet flood against a host port. The send
// function abstracts the container's network namespace (wired to
// Container.Send by the framework); the flood task runs inside the
// container and emits a burst of packets every period.
type Flood struct {
	// PacketsPerSecond is the attempted flood rate.
	PacketsPerSecond float64
	// PayloadSize is the size of each junk datagram.
	PayloadSize int

	send    func(payload []byte)
	payload []byte
	sent    int64
}

// NewFlood builds a flood generator. send must enqueue one datagram
// toward the victim port.
func NewFlood(send func(payload []byte), pktPerSec float64, payloadSize int) *Flood {
	if pktPerSec <= 0 {
		pktPerSec = 20000
	}
	if payloadSize <= 0 {
		payloadSize = 64
	}
	f := &Flood{
		PacketsPerSecond: pktPerSec,
		PayloadSize:      payloadSize,
		send:             send,
		payload:          make([]byte, payloadSize),
	}
	for i := range f.payload {
		f.payload[i] = 0xA5 // junk, deliberately not valid MAVLink
	}
	return f
}

// Sent reports packets emitted so far.
func (f *Flood) Sent() int64 { return f.sent }

// Task returns the scheduler task that drives the flood: a 1 kHz
// periodic task emitting PacketsPerSecond/1000 datagrams per job. The
// flood costs the attacker little CPU — the damage is in the network.
func (f *Flood) Task(core int) *sched.Task {
	period := time.Millisecond
	burst := int(f.PacketsPerSecond * period.Seconds())
	if burst < 1 {
		burst = 1
	}
	return &sched.Task{
		Name:     "attack-udpflood",
		Core:     core,
		Priority: sched.PrioContainer,
		Period:   period,
		WCET:     200 * time.Microsecond,
		Work: func(time.Duration) {
			for i := 0; i < burst; i++ {
				f.send(f.payload)
				f.sent++
			}
		},
	}
}

// KillController is the §V-D attack: terminate the complex controller
// to deny its output entirely while freeing the container's resources
// for other attack code. It is expressed as a function the scenario
// schedules at the attack time.
func KillController(kill func()) func(now time.Duration) {
	return func(time.Duration) { kill() }
}

// Plan names an attack scenario and its start time, used by the
// scenario runner and the experiment harness.
type Plan struct {
	Kind  Kind
	Start time.Duration
	// Rate parameterizes the attack: accesses/s for Bandwidth,
	// packets/s for Flood; ignored otherwise.
	Rate float64
	// Member selects whose container the attack code runs in (fleet
	// member index, 0 = the leader — the only member of a single-drone
	// scenario).
	Member int
	// Target selects the member a Flood aims at (its HCE motor port).
	// Target == Member models the paper's in-drone flood; a different
	// Target models a compromised swarm member attacking a peer across
	// the shared fabric. Ignored by the other kinds.
	Target int
}

// Active reports whether the plan schedules a real attack (any kind
// other than KindNone).
func (p Plan) Active() bool { return p.Kind != KindNone }

// Kind enumerates the implemented attacks.
type Kind int

// Attack kinds.
const (
	KindNone Kind = iota
	KindBandwidth
	KindFlood
	KindKill
	KindCPUHog
)

// String names the attack kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindBandwidth:
		return "bandwidth"
	case KindFlood:
		return "udp-flood"
	case KindKill:
		return "kill-controller"
	case KindCPUHog:
		return "cpu-hog"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind resolves a kind from its string name.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindNone, KindBandwidth, KindFlood, KindKill, KindCPUHog} {
		if k.String() == s {
			return k, nil
		}
	}
	return KindNone, fmt.Errorf("attack: unknown kind %q", s)
}
