package attack

import (
	"testing"
	"time"

	"containerdrone/internal/sched"
)

func TestBandwidthTaskShape(t *testing.T) {
	task := Bandwidth(3, 0)
	if !task.Busy() {
		t.Fatal("Bandwidth should be a busy-loop task")
	}
	if task.AccessRate != BandwidthAccessRate {
		t.Fatalf("default access rate = %v", task.AccessRate)
	}
	if task.MemBound != 1 {
		t.Fatal("Bandwidth must be fully memory bound")
	}
	if task.Core != 3 || task.Priority != sched.PrioContainer {
		t.Fatalf("placement = core %d prio %d", task.Core, task.Priority)
	}
	custom := Bandwidth(3, 123e6)
	if custom.AccessRate != 123e6 {
		t.Fatalf("custom rate ignored: %v", custom.AccessRate)
	}
}

func TestCPUHogShape(t *testing.T) {
	task := CPUHog(2, 15)
	if !task.Busy() || task.Core != 2 || task.Priority != 15 {
		t.Fatalf("hog = %+v", task)
	}
	if task.AccessRate != 0 {
		t.Fatal("pure CPU hog should not demand memory")
	}
}

func TestFloodEmitsAtConfiguredRate(t *testing.T) {
	var got [][]byte
	f := NewFlood(func(p []byte) { got = append(got, p) }, 20000, 64)
	task := f.Task(3)
	if task.Period != time.Millisecond {
		t.Fatalf("flood period = %v", task.Period)
	}
	// Run the Work callback as the scheduler would, 100 times = 100 ms.
	for i := 0; i < 100; i++ {
		task.Work(time.Duration(i) * time.Millisecond)
	}
	// 20000 pkt/s over 100 ms = 2000 packets.
	if len(got) != 2000 {
		t.Fatalf("flood sent %d packets in 100ms, want 2000", len(got))
	}
	if f.Sent() != 2000 {
		t.Fatalf("Sent() = %d", f.Sent())
	}
	if len(got[0]) != 64 {
		t.Fatalf("payload size = %d", len(got[0]))
	}
}

func TestFloodDefaults(t *testing.T) {
	f := NewFlood(func([]byte) {}, 0, 0)
	if f.PacketsPerSecond != 20000 || f.PayloadSize != 64 {
		t.Fatalf("defaults = %v pkt/s, %d B", f.PacketsPerSecond, f.PayloadSize)
	}
}

func TestFloodPayloadIsNotMAVLink(t *testing.T) {
	f := NewFlood(func([]byte) {}, 1000, 32)
	if f.payload[0] == 0xFE {
		t.Fatal("flood payload accidentally looks like a MAVLink frame")
	}
}

func TestKillControllerInvokes(t *testing.T) {
	killed := false
	fn := KillController(func() { killed = true })
	fn(12 * time.Second)
	if !killed {
		t.Fatal("kill callback not invoked")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindNone: "none", KindBandwidth: "bandwidth", KindFlood: "udp-flood",
		KindKill: "kill-controller", KindCPUHog: "cpu-hog",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatalf("unknown kind string = %q", Kind(42).String())
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{KindNone, KindBandwidth, KindFlood, KindKill, KindCPUHog} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Fatal("ParseKind accepted nonsense")
	}
}

func TestBandwidthStarvesNothingByPriority(t *testing.T) {
	// CPU protection sanity: the Bandwidth task at container priority
	// cannot steal CPU from a driver-priority task on the same core —
	// its damage channel is memory only.
	cpu := sched.NewCPU(4, 100*time.Microsecond, nil, nil)
	cpu.Add(Bandwidth(3, 0))
	driver := cpu.Add(&sched.Task{
		Name: "driver", Core: 3, Priority: sched.PrioDriver,
		Period: 4 * time.Millisecond, WCET: time.Millisecond,
	})
	for i := 0; i < 1000; i++ {
		cpu.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
	if driver.Stats().Missed != 0 {
		t.Fatal("bandwidth task stole CPU from a higher-priority task")
	}
}
