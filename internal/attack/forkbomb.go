package attack

import (
	"time"

	"containerdrone/internal/sched"
)

// ForkBomb models the process-table exhaustion attack: malicious code
// inside the container spawning children as fast as it can. The
// container runtime's pids limit (Docker --pids-limit) is the defense;
// without it the spawner would flood the scheduler with busy tasks.
//
// The spawn function abstracts Container.StartTask; it returns an
// error when the pids controller refuses the fork.
type ForkBomb struct {
	// SpawnPerSecond is the attempted fork rate.
	SpawnPerSecond float64

	spawn    func(t *sched.Task) error
	core     int
	attempts int64
	children int64
	refused  int64
	n        int
}

// NewForkBomb builds the attack. spawn launches one child into the
// container (typically Container.StartTask).
func NewForkBomb(spawn func(*sched.Task) error, core int, perSec float64) *ForkBomb {
	if perSec <= 0 {
		perSec = 1000
	}
	return &ForkBomb{SpawnPerSecond: perSec, spawn: spawn, core: core}
}

// Attempts, Children, Refused report the attack's progress.
func (f *ForkBomb) Attempts() int64 { return f.attempts }

// Children returns how many forks succeeded.
func (f *ForkBomb) Children() int64 { return f.children }

// Refused returns how many forks the pids controller denied.
func (f *ForkBomb) Refused() int64 { return f.refused }

// Task returns the driver task: a 100 Hz periodic process attempting
// SpawnPerSecond/100 forks per job. Each child is a low-priority busy
// loop (the classic ":(){ :|:& };:" payload burns CPU in every child).
func (f *ForkBomb) Task(core int) *sched.Task {
	burst := int(f.SpawnPerSecond / 100)
	if burst < 1 {
		burst = 1
	}
	return &sched.Task{
		Name:     "attack-forkbomb",
		Core:     core,
		Priority: sched.PrioContainer,
		Period:   10 * time.Millisecond,
		WCET:     100 * time.Microsecond,
		Work: func(time.Duration) {
			for i := 0; i < burst; i++ {
				f.attempts++
				f.n++
				child := &sched.Task{
					Name:     "bomb-child",
					Core:     f.core,
					Priority: sched.PrioContainer,
					// Busy loop: no period, burns its core share.
				}
				if err := f.spawn(child); err != nil {
					f.refused++
					continue
				}
				f.children++
			}
		},
	}
}
