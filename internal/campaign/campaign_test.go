package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// shortSpec is a cheap campaign: 2 points × 3 runs of 1-second
// flights, executed by 4 workers so worker interleaving is real.
func shortSpec() Spec {
	return Spec{
		Points:   Expand("baseline", nil, []Sweep{{Key: "wind", Values: []float64{0, 1}}}),
		Runs:     3,
		Parallel: 4,
		BaseSeed: 99,
		Duration: time.Second,
	}
}

// TestCampaignDeterministicUnderParallelism is the campaign's core
// contract: the same spec at the same seed produces byte-identical
// output regardless of worker scheduling.
func TestCampaignDeterministicUnderParallelism(t *testing.T) {
	emit := func() []byte {
		records, err := Run(shortSpec())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, records, AggregateRecords(records)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same campaign spec produced different bytes")
	}
}

// TestCampaignParallelMatchesSerial pins the stronger property: the
// worker count must not affect results at all.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	serial := shortSpec()
	serial.Parallel = 1
	recSerial, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	recParallel, err := Run(shortSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recSerial, recParallel) {
		t.Fatal("parallel records differ from serial records")
	}
}

func TestCampaignRecordsOrderAndSeeds(t *testing.T) {
	spec := shortSpec()
	records, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(spec.Points)*spec.Runs {
		t.Fatalf("got %d records, want %d", len(records), len(spec.Points)*spec.Runs)
	}
	for i, r := range records {
		pi, ri := i/spec.Runs, i%spec.Runs
		if r.Point != spec.Points[pi].Label || r.Run != ri {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
		if r.Seed != DeriveSeed(spec.BaseSeed, pi, ri) {
			t.Fatalf("record %d seed mismatch", i)
		}
		if r.Err != "" {
			t.Fatalf("record %d errored: %s", i, r.Err)
		}
	}
}

func TestCampaignRejectsBadSpecs(t *testing.T) {
	if _, err := Run(Spec{Runs: 0, Points: []Point{{Label: "x", Scenario: "baseline"}}}); err == nil {
		t.Fatal("zero runs accepted")
	}
	if _, err := Run(Spec{Runs: 1}); err == nil {
		t.Fatal("empty point set accepted")
	}
	// A bad sweep key must fail up front, before any run executes.
	spec := Spec{
		Points: []Point{{Label: "x", Scenario: "baseline",
			Params: map[string]float64{"not.a.key": 1}}},
		Runs: 1, Duration: time.Second,
	}
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown sweep key accepted")
	}
	spec = Spec{Points: []Point{{Label: "x", Scenario: "no-such"}}, Runs: 1}
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := make(map[uint64]bool)
	for p := 0; p < 8; p++ {
		for r := 0; r < 8; r++ {
			s := DeriveSeed(1, p, r)
			if s == 0 {
				t.Fatal("derived seed 0 (reserved for scenario default)")
			}
			if seen[s] {
				t.Fatalf("seed collision at point %d run %d", p, r)
			}
			seen[s] = true
			if s != DeriveSeed(1, p, r) {
				t.Fatal("derivation not stable")
			}
		}
	}
	if DeriveSeed(1, 0, 0) == DeriveSeed(2, 0, 0) {
		t.Fatal("base seed ignored")
	}
}

func TestParseSweep(t *testing.T) {
	sw, err := ParseSweep("attack.rate=1e9, 2e9,4e9")
	if err != nil {
		t.Fatal(err)
	}
	if sw.Key != "attack.rate" || !reflect.DeepEqual(sw.Values, []float64{1e9, 2e9, 4e9}) {
		t.Fatalf("parsed %+v", sw)
	}
	for _, bad := range []string{"", "key", "key=", "=1,2", "key=1,x"} {
		if _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) did not error", bad)
		}
	}
}

func TestExpandCartesian(t *testing.T) {
	points := Expand("memdos",
		map[string]float64{"bus.capacity": 50e6},
		[]Sweep{
			{Key: "attack.rate", Values: []float64{1e9, 2e9}},
			{Key: "attack.start", Values: []float64{5, 10, 15}},
		})
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	labels := make(map[string]bool)
	for _, p := range points {
		labels[p.Label] = true
		if p.Scenario != "memdos" {
			t.Fatalf("scenario = %q", p.Scenario)
		}
		if p.Params["bus.capacity"] != 50e6 {
			t.Fatalf("base param lost: %+v", p.Params)
		}
		if len(p.Params) != 3 {
			t.Fatalf("params = %+v", p.Params)
		}
	}
	if len(labels) != 6 {
		t.Fatalf("labels not distinct: %v", labels)
	}
	// No sweeps → single point, base params preserved, label = scenario.
	single := Expand("kill", nil, nil)
	if len(single) != 1 || single[0].Label != "kill" {
		t.Fatalf("no-sweep expand = %+v", single)
	}
}

func TestAggregateRecords(t *testing.T) {
	records := []Record{
		{Point: "a", Scenario: "s", Run: 0, Crashed: true, CrashS: 12, MissRate: 0.5, MaxDeviation: 3},
		{Point: "a", Scenario: "s", Run: 1, Switched: true, SwitchS: 8.5, Rule: "attitude-error", MissRate: 0.1, MaxDeviation: 1},
		{Point: "a", Scenario: "s", Run: 2, Err: "boom"},
		{Point: "b", Scenario: "s", Run: 0, MissRate: 0.2},
	}
	aggs := AggregateRecords(records)
	if len(aggs) != 2 || aggs[0].Point != "a" || aggs[1].Point != "b" {
		t.Fatalf("aggs = %+v", aggs)
	}
	a := aggs[0]
	if a.Runs != 3 || a.Errors != 1 {
		t.Fatalf("runs/errors = %d/%d", a.Runs, a.Errors)
	}
	// Rates are over the 2 non-errored runs.
	if a.CrashRate != 0.5 || a.FailoverRate != 0.5 {
		t.Fatalf("crash/failover rate = %v/%v", a.CrashRate, a.FailoverRate)
	}
	if a.RuleCounts["attitude-error"] != 1 {
		t.Fatalf("rule counts = %v", a.RuleCounts)
	}
	if a.SwitchS.P50 != 8.5 || a.SwitchS.Max != 8.5 {
		t.Fatalf("switch percentiles = %+v", a.SwitchS)
	}
	if a.MissRate.Max != 0.5 || a.MissRate.Mean != 0.3 {
		t.Fatalf("miss percentiles = %+v", a.MissRate)
	}
}

func TestPercentiles(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	p := percentiles(vals)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles = %+v", p)
	}
	if p.Mean != 50.5 {
		t.Fatalf("mean = %v", p.Mean)
	}
	zero := percentiles(nil)
	if zero != (Percentiles{}) {
		t.Fatalf("empty percentiles = %+v", zero)
	}
}

func TestEmitters(t *testing.T) {
	records := []Record{
		{Point: "a", Scenario: "s", Run: 0, Seed: 7, Switched: true, SwitchS: 8.5, Rule: "r", RMSError: 0.1},
		{Point: "a", Scenario: "s", Run: 1, Seed: 8, Crashed: true, CrashS: 2},
	}
	aggs := AggregateRecords(records)

	var csvBuf bytes.Buffer
	if err := WriteRecordsCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("records CSV has %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "point,scenario,faults,run,seed") {
		t.Fatalf("records CSV header = %q", lines[0])
	}

	csvBuf.Reset()
	if err := WriteAggregatesCSV(&csvBuf, aggs); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("aggregates CSV has %d lines, want 2", len(lines))
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, records, aggs); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || len(rep.Aggregates) != 1 {
		t.Fatalf("round-trip = %d records, %d aggregates", len(rep.Records), len(rep.Aggregates))
	}

	if Table(aggs) == "" {
		t.Fatal("empty table")
	}
}
