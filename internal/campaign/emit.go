package campaign

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteRecordsCSV emits one row per run. The column set is stable;
// downstream plotting scripts key on the header.
func WriteRecordsCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	header := []string{
		"point", "scenario", "faults", "run", "seed",
		"crashed", "crash_s", "switched", "switch_s", "rule",
		"rms_error_m", "max_deviation_m", "miss_rate", "err",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			r.Point, r.Scenario, r.Faults,
			strconv.Itoa(r.Run), strconv.FormatUint(r.Seed, 10),
			strconv.FormatBool(r.Crashed), f(r.CrashS),
			strconv.FormatBool(r.Switched), f(r.SwitchS), r.Rule,
			f(r.RMSError), f(r.MaxDeviation), f(r.MissRate), r.Err,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAggregatesCSV emits one row per point.
func WriteAggregatesCSV(w io.Writer, aggs []Aggregate) error {
	cw := csv.NewWriter(w)
	header := []string{
		"point", "scenario", "faults", "runs", "errors",
		"crash_rate", "failover_rate",
		"switch_s_p50", "switch_s_p90", "switch_s_p99", "switch_s_max",
		"miss_rate_p50", "miss_rate_p90", "miss_rate_p99", "miss_rate_max",
		"rms_error_m_mean", "max_deviation_m_p99",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, a := range aggs {
		row := []string{
			a.Point, a.Scenario, a.Faults, strconv.Itoa(a.Runs), strconv.Itoa(a.Errors),
			f(a.CrashRate), f(a.FailoverRate),
			f(a.SwitchS.P50), f(a.SwitchS.P90), f(a.SwitchS.P99), f(a.SwitchS.Max),
			f(a.MissRate.P50), f(a.MissRate.P90), f(a.MissRate.P99), f(a.MissRate.Max),
			f(a.RMSError.Mean), f(a.MaxDeviation.P99),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report bundles a campaign's raw and reduced outputs for JSON.
type Report struct {
	Records    []Record    `json:"records"`
	Aggregates []Aggregate `json:"aggregates"`
}

// WriteJSON emits the full campaign report as indented JSON.
func WriteJSON(w io.Writer, records []Record, aggs []Aggregate) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Records: records, Aggregates: aggs})
}

// f formats a float compactly for CSV cells.
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
