package campaign

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// recordsHeader is the stable records-CSV column set; downstream
// plotting scripts key on it.
var recordsHeader = []string{
	"point", "scenario", "faults", "run", "seed",
	"crashed", "crash_s", "switched", "switch_s", "rule",
	"rms_error_m", "max_deviation_m", "miss_rate", "err",
	"panicked", "retries",
}

// recordRow renders one record in recordsHeader order. The recovered
// panic's stack stays JSON-only — multiline goroutine dumps with
// addresses don't belong in a CSV cell.
func recordRow(r *Record) []string {
	return []string{
		r.Point, r.Scenario, r.Faults,
		strconv.Itoa(r.Run), strconv.FormatUint(r.Seed, 10),
		strconv.FormatBool(r.Crashed), f(r.CrashS),
		strconv.FormatBool(r.Switched), f(r.SwitchS), r.Rule,
		f(r.RMSError), f(r.MaxDeviation), f(r.MissRate), r.Err,
		strconv.FormatBool(r.Panicked), strconv.Itoa(r.Retries),
	}
}

// WriteRecordsCSV emits one row per run, in record (index) order.
func WriteRecordsCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(recordsHeader); err != nil {
		return err
	}
	for i := range records {
		if err := cw.Write(recordRow(&records[i])); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAggregatesCSV emits one row per point.
func WriteAggregatesCSV(w io.Writer, aggs []Aggregate) error {
	cw := csv.NewWriter(w)
	header := []string{
		"point", "scenario", "faults", "runs", "errors",
		"crash_rate", "failover_rate",
		"switch_s_p50", "switch_s_p90", "switch_s_p99", "switch_s_max",
		"miss_rate_p50", "miss_rate_p90", "miss_rate_p99", "miss_rate_max",
		"rms_error_m_mean", "max_deviation_m_p99",
		"panics", "retried",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, a := range aggs {
		row := []string{
			a.Point, a.Scenario, a.Faults, strconv.Itoa(a.Runs), strconv.Itoa(a.Errors),
			f(a.CrashRate), f(a.FailoverRate),
			f(a.SwitchS.P50), f(a.SwitchS.P90), f(a.SwitchS.P99), f(a.SwitchS.Max),
			f(a.MissRate.P50), f(a.MissRate.P90), f(a.MissRate.P99), f(a.MissRate.Max),
			f(a.RMSError.Mean), f(a.MaxDeviation.P99),
			strconv.Itoa(a.Panics), strconv.Itoa(a.Retried),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// NewRecordStreamer writes the records-CSV header to w immediately
// and returns a Spec.Stream callback that appends one flushed row per
// completed run — live campaign output for `tail -f` style consumers.
// Rows arrive in completion order (each row names its point and run
// index); the post-hoc WriteRecordsCSV emits the same rows in index
// order.
//
// The stream callback cannot return an error (it runs on the
// campaign's emitter goroutine), so write failures are sticky: call
// the returned done function after the campaign finishes to flush and
// learn whether every row reached w — a full disk mid-campaign must
// not masquerade as a complete records file.
func NewRecordStreamer(w io.Writer) (stream func(Record), done func() error, err error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(recordsHeader); err != nil {
		return nil, nil, err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, nil, err
	}
	var sticky error
	stream = func(r Record) {
		if sticky != nil {
			return
		}
		if err := cw.Write(recordRow(&r)); err != nil {
			sticky = err
			return
		}
		cw.Flush()
		sticky = cw.Error()
	}
	done = func() error {
		cw.Flush()
		if sticky != nil {
			return sticky
		}
		return cw.Error()
	}
	return stream, done, nil
}

// Report bundles a campaign's raw and reduced outputs for JSON.
type Report struct {
	Records    []Record    `json:"records"`
	Aggregates []Aggregate `json:"aggregates"`
}

// WriteJSON emits the full campaign report as indented JSON.
func WriteJSON(w io.Writer, records []Record, aggs []Aggregate) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Records: records, Aggregates: aggs})
}

// f formats a float compactly for CSV cells.
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
