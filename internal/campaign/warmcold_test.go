package campaign

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

// warmColdSpec is the fixed-seed sample the warm/cold assertion runs
// on: fault scenarios with a sweep, several runs per point, so the
// comparison exercises point switching, fault plans, and failovers.
// The nightly workflow raises the run count via CAMPAIGN_EQUIV_RUNS
// before bundling the 200-run fault campaign onto the warm-pool path.
func warmColdSpec(t *testing.T) Spec {
	runs := 4
	if env := os.Getenv("CAMPAIGN_EQUIV_RUNS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad CAMPAIGN_EQUIV_RUNS=%q", env)
		}
		runs = n
	}
	points := Expand("gps-spoof", nil, []Sweep{{Key: "fault.rate", Values: []float64{0.5, 2}}})
	points = append(points, Expand("netsplit", nil, nil)...)
	points = append(points, Expand("udpflood", nil, nil)...)
	return Spec{
		Points:   points,
		Runs:     runs,
		BaseSeed: 42,
		// Long enough that the faults (start 10 s) and the flood
		// (start 8 s, switch ≈8.8 s) actually fire: warm/cold
		// equivalence over flights where nothing happened would not
		// test the rewind of fired state.
		Duration: 12 * time.Second,
	}
}

// TestWarmColdEquivalence pins the warm-pool path to the cold-start
// path: identical records and identical aggregates for the same spec,
// run to run and mode to mode. This is the campaign-level reading of
// the per-scenario TestResetEquivalence byte-identity.
func TestWarmColdEquivalence(t *testing.T) {
	spec := warmColdSpec(t)

	warmRec, warmAgg, err := RunAggregated(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := spec
	cold.ColdStart = true
	coldRec, coldAgg, err := RunAggregated(context.Background(), cold)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRec, coldRec) {
		for i := range warmRec {
			if !reflect.DeepEqual(warmRec[i], coldRec[i]) {
				t.Fatalf("record %d differs between warm and cold paths:\n warm: %+v\n cold: %+v",
					i, warmRec[i], coldRec[i])
			}
		}
		t.Fatal("record sets differ between warm and cold paths")
	}
	w, _ := json.Marshal(warmAgg)
	c, _ := json.Marshal(coldAgg)
	if string(w) != string(c) {
		t.Fatalf("aggregates differ between warm and cold paths:\n warm: %s\n cold: %s", w, c)
	}
}

// TestShardedAggregationMatchesPostPass pins the merged worker shards
// to the replay-side reduction over the same records: the two
// aggregation paths must stay interchangeable.
func TestShardedAggregationMatchesPostPass(t *testing.T) {
	spec := warmColdSpec(t)
	records, aggs, err := RunAggregated(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	replay := AggregateRecords(records)
	a, _ := json.Marshal(aggs)
	b, _ := json.Marshal(replay)
	if string(a) != string(b) {
		t.Fatalf("sharded aggregates differ from AggregateRecords:\n shard: %s\n replay: %s", a, b)
	}
}

// TestStreamDeliversEveryRecordOnce verifies the streaming emitter:
// every (point, run) cell arrives exactly once, off the hot path, and
// the streamed population equals the returned record slice.
func TestStreamDeliversEveryRecordOnce(t *testing.T) {
	spec := warmColdSpec(t)
	var mu sync.Mutex
	seen := make(map[string]int)
	spec.Stream = func(r Record) {
		// Single emitter goroutine by contract; the mutex guards the
		// check itself under -race.
		mu.Lock()
		seen[r.Point+"#"+strconv.Itoa(r.Run)]++
		mu.Unlock()
	}
	records, err := RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(records) {
		t.Fatalf("streamed %d distinct cells, want %d", len(seen), len(records))
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s streamed %d times", key, n)
		}
	}
}
