package campaign

import (
	"runtime"
	"testing"
	"time"
)

// benchSpec is the acceptance workload: a memdos campaign of short
// flights, enough runs to keep every worker busy.
func benchSpec(parallel int) Spec {
	return Spec{
		Points:   Expand("memdos", nil, nil),
		Runs:     8,
		Parallel: parallel,
		BaseSeed: 1,
		Duration: 2 * time.Second,
	}
}

// BenchmarkCampaignSerial and BenchmarkCampaignParallel measure
// campaign throughput with one worker versus one per CPU. On a 4+
// core machine the parallel variant must show ≥3× wall-clock speedup;
// compare with:
//
//	go test ./internal/campaign -bench 'Campaign(Serial|Parallel)' -benchtime 3x
func BenchmarkCampaignSerial(b *testing.B) {
	benchCampaign(b, 1)
}

func BenchmarkCampaignParallel(b *testing.B) {
	benchCampaign(b, runtime.NumCPU())
}

func benchCampaign(b *testing.B, workers int) {
	spec := benchSpec(workers)
	simSeconds := spec.Duration.Seconds() * float64(spec.Runs*len(spec.Points))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records, err := Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(records) != spec.Runs*len(spec.Points) {
			b.Fatalf("got %d records", len(records))
		}
	}
	b.ReportMetric(simSeconds/b.Elapsed().Seconds()*float64(b.N), "sim-s/s")
}
