package campaign

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"containerdrone/internal/core"
	"containerdrone/internal/sim"
)

// forkSpec builds the canonical prefix-sharing sweep for one scenario:
// two monitor-threshold variants, which act only after onset (and not
// at all on unmonitored scenarios — an inert sweep still exercises the
// grouping machinery). Every registry scenario qualifies structurally;
// whether the group actually forks depends on it scheduling an onset
// inside the flight.
func forkSpec(scenario string, runs int) Spec {
	return Spec{
		Points: Expand(scenario, nil, []Sweep{
			{Key: "monitor.max-interval", Values: []float64{0.1, 0.15}},
		}),
		Runs:        runs,
		BaseSeed:    1234,
		Duration:    20 * time.Second,
		PrefixShare: true,
	}
}

// TestForkEquivalence is the prefix-sharing correctness gate: for every
// registry scenario, a fork-mode campaign must be byte-identical to the
// same spec flown as full cold flights (ColdStart+PrefixShare keeps the
// grouped seed derivation but disables both the warm pool and the
// forking, so it is the ground-truth baseline). Scenarios with a
// scheduled onset must actually fork; scenarios without one (baseline,
// mission) must fall back transparently.
func TestForkEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fork equivalence flies every registry scenario; run without -short")
	}
	for _, sc := range core.Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			spec := forkSpec(sc.Name, 2)

			forkRec, forkAgg, stats, err := RunAggregatedStats(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			cold := spec
			cold.ColdStart = true
			coldRec, coldAgg, coldStats, err := RunAggregatedStats(context.Background(), cold)
			if err != nil {
				t.Fatal(err)
			}
			for i := range forkRec {
				if !reflect.DeepEqual(forkRec[i], coldRec[i]) {
					t.Fatalf("record %d differs between fork and cold paths:\n fork: %+v\n cold: %+v",
						i, forkRec[i], coldRec[i])
				}
			}
			if !reflect.DeepEqual(forkAgg, coldAgg) {
				t.Fatalf("aggregates differ between fork and cold paths:\n fork: %+v\n cold: %+v",
					forkAgg, coldAgg)
			}

			cfg, err := core.Build(sc.Name, core.Options{Duration: spec.Duration})
			if err != nil {
				t.Fatal(err)
			}
			wantFork := false
			if tick, ok := onsetTick(cfg); ok && tick < sim.TicksFor(cfg.Duration) {
				wantFork = true
			}
			if wantFork {
				// One group of two points: each run flies the prefix
				// once and forks the second member.
				if stats.ForkGroups != 1 || stats.ForkedRuns != spec.Runs {
					t.Fatalf("fork stats = %+v, want 1 group and %d forked runs", stats, spec.Runs)
				}
				if stats.TicksSaved == 0 || stats.PrefixShareRatio() <= 0 {
					t.Fatalf("no ticks saved despite forking: %+v", stats)
				}
			} else if stats.ForkedRuns != 0 || stats.TicksSaved != 0 {
				t.Fatalf("scenario without onset forked: %+v", stats)
			}
			if coldStats.ForkedRuns != 0 || coldStats.TicksSaved != 0 {
				t.Fatalf("cold baseline forked: %+v", coldStats)
			}
		})
	}
}

// TestForkDeterminismAcrossParallel pins the fork scheduler out of the
// results: the same prefix-sharing spec must produce byte-identical
// records at every worker count, and those records must equal the
// full-flight baseline.
func TestForkDeterminismAcrossParallel(t *testing.T) {
	spec := warmColdSpec(t)
	spec.PrefixShare = true

	baseline := spec
	baseline.ColdStart = true
	baseline.Parallel = 2
	want, err := Run(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 3, 8} {
		s := spec
		s.Parallel = parallel
		got, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			for i := range want {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("parallel=%d: record %d differs:\n want: %+v\n got:  %+v",
						parallel, i, want[i], got[i])
				}
			}
			t.Fatalf("parallel=%d: records differ from full-flight baseline", parallel)
		}
	}
}

// TestForkStreamIndexOrder verifies the emitter's ordering promise
// under forking, where completion order interleaves group members:
// streamed records must arrive in exact index order (point-major, then
// run) and equal the returned slice element for element.
func TestForkStreamIndexOrder(t *testing.T) {
	for _, mode := range []struct {
		name string
		fork bool
	}{{"full-flight", false}, {"fork", true}} {
		t.Run(mode.name, func(t *testing.T) {
			spec := warmColdSpec(t)
			spec.PrefixShare = mode.fork
			spec.Parallel = 4
			var mu sync.Mutex
			var streamed []Record
			spec.Stream = func(r Record) {
				mu.Lock()
				streamed = append(streamed, r)
				mu.Unlock()
			}
			records, err := RunContext(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(streamed, records) {
				t.Fatalf("streamed sequence differs from index-ordered records:\n stream: %d records\n return: %d records",
					len(streamed), len(records))
			}
		})
	}
}

// TestPlanPrefixGroups exercises the planner's classification directly:
// post-onset sweeps group, pre-onset sweeps stay singletons, and
// onset-free scenarios never qualify.
func TestPlanPrefixGroups(t *testing.T) {
	t.Run("post-onset sweep groups", func(t *testing.T) {
		spec := Spec{
			Points: Expand("memdos", nil, []Sweep{
				{Key: "attack.rate", Values: []float64{1e9, 2e9, 4e9}},
			}),
			Runs: 1, Duration: 12 * time.Second, PrefixShare: true,
		}
		plan, err := planPrefixGroups(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.groups) != 1 {
			t.Fatalf("got %d groups, want 1: %+v", len(plan.groups), plan.groups)
		}
		g := plan.groups[0]
		if !reflect.DeepEqual(g.members, []int{0, 1, 2}) || g.forkTick == 0 {
			t.Fatalf("group = %+v", g)
		}
		cfg := core.MustBuild("memdos", core.Options{})
		want := int64((cfg.Attack.Start + sim.Tick/2) / sim.Tick)
		if g.forkTick != want {
			t.Fatalf("forkTick = %d, want onset tick %d", g.forkTick, want)
		}
		for pi, leader := range plan.leaderOf {
			if leader != 0 {
				t.Fatalf("leaderOf[%d] = %d, want 0", pi, leader)
			}
		}
	})

	t.Run("onset sweep groups at earliest onset", func(t *testing.T) {
		spec := Spec{
			Points: Expand("memdos", nil, []Sweep{
				{Key: "attack.start", Values: []float64{5, 9}},
			}),
			Runs: 1, Duration: 12 * time.Second, PrefixShare: true,
		}
		plan, err := planPrefixGroups(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.groups) != 1 {
			t.Fatalf("got %d groups, want 1", len(plan.groups))
		}
		want := int64((5*time.Second + sim.Tick/2) / sim.Tick)
		if plan.groups[0].forkTick != want {
			t.Fatalf("forkTick = %d, want earliest onset %d", plan.groups[0].forkTick, want)
		}
	})

	t.Run("pre-onset sweep stays singleton", func(t *testing.T) {
		spec := Spec{
			Points: Expand("baseline", nil, []Sweep{
				{Key: "wind", Values: []float64{0, 1}},
			}),
			Runs: 1, Duration: 12 * time.Second, PrefixShare: true,
		}
		plan, err := planPrefixGroups(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.groups) != 2 {
			t.Fatalf("got %d groups, want 2 singletons", len(plan.groups))
		}
		for gi, g := range plan.groups {
			if len(g.members) != 1 || g.forkTick != 0 {
				t.Fatalf("group %d = %+v, want unforked singleton", gi, g)
			}
		}
	})

	t.Run("no onset never qualifies", func(t *testing.T) {
		spec := Spec{
			Points: Expand("mission", nil, []Sweep{
				{Key: "monitor.max-interval", Values: []float64{0.1, 0.15}},
			}),
			Runs: 1, Duration: 12 * time.Second, PrefixShare: true,
		}
		plan, err := planPrefixGroups(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.groups) != 1 || len(plan.groups[0].members) != 2 {
			t.Fatalf("plan = %+v", plan.groups)
		}
		if plan.groups[0].forkTick != 0 {
			t.Fatalf("onset-free group qualified: %+v", plan.groups[0])
		}
	})

	t.Run("mav-replay capture knobs split groups", func(t *testing.T) {
		// The replay capture window (fault.magnitude) shapes pre-onset
		// behavior, so sweeping it must NOT group; sweeping a monitor
		// threshold on the same scenario must.
		split := Spec{
			Points: Expand("mav-replay", nil, []Sweep{
				{Key: "fault.magnitude", Values: []float64{16, 32}},
			}),
			Runs: 1, Duration: 16 * time.Second, PrefixShare: true,
		}
		plan, err := planPrefixGroups(split)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.groups) != 2 {
			t.Fatalf("capture-window sweep grouped: %+v", plan.groups)
		}
		grouped := forkSpec("mav-replay", 1)
		plan, err = planPrefixGroups(grouped)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.groups) != 1 || plan.groups[0].forkTick == 0 {
			t.Fatalf("threshold sweep did not group: %+v", plan.groups)
		}
	})
}

// TestForkSeedsFollowLeader pins the grouped seed derivation: every
// member of a fork group runs the group leader's seed for a given run
// index, so swept variants are compared like for like.
func TestForkSeedsFollowLeader(t *testing.T) {
	spec := forkSpec("udpflood", 2)
	spec.Duration = 10 * time.Second
	records, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range records {
		pi, ri := i/spec.Runs, i%spec.Runs
		if r.Err != "" {
			t.Fatalf("record %d errored: %s", i, r.Err)
		}
		if want := DeriveSeed(spec.BaseSeed, 0, ri); r.Seed != want {
			t.Fatalf("record %d (point %d run %d) seed = %d, want leader seed %d",
				i, pi, ri, r.Seed, want)
		}
	}
}
