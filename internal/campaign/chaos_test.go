package campaign

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"containerdrone/internal/mavlink"
	"containerdrone/internal/membw"
	"containerdrone/internal/sched"
)

// chaosSpec builds the standard chaos-test campaign: one point, runs
// seeds, short flights, a single worker so warm-pool reuse is
// exercised across the panic boundary (the worker that panics is the
// worker that must rebuild and keep going).
func chaosSpec(scenario string, runs int, chaos Chaos) Spec {
	return Spec{
		Points:   []Point{{Label: scenario, Scenario: scenario}},
		Runs:     runs,
		Parallel: 1,
		BaseSeed: 42,
		Duration: 200 * time.Millisecond,
		Chaos:    chaos,
	}
}

// TestChaosPanicIsolation is the chaos harness's core claim: a
// 200-run campaign with panics injected at several run indices
// completes every healthy run, byte-identical to an uninjected
// campaign, with the panicked cells quarantined as failure records —
// not a dead process.
func TestChaosPanicIsolation(t *testing.T) {
	const runs = 200
	panicAt := map[int]bool{3: true, 17: true, 101: true, 199: true}
	hook := ChaosFunc(func(point, run, attempt int) error {
		if panicAt[run] && attempt == 0 {
			panic("chaos: injected panic")
		}
		return nil
	})

	clean, cleanAggs, err := RunAggregated(context.Background(), chaosSpec("baseline", runs, ChaosFunc(
		func(point, run, attempt int) error { return nil })))
	if err != nil {
		t.Fatalf("clean campaign: %v", err)
	}
	injected, aggs, stats, err := RunAggregatedStats(context.Background(), chaosSpec("baseline", runs, hook))
	if err != nil {
		t.Fatalf("injected campaign must not fail as a whole: %v", err)
	}
	if len(injected) != runs {
		t.Fatalf("got %d records, want %d", len(injected), runs)
	}
	for i := range injected {
		if panicAt[i] {
			r := injected[i]
			if !r.Panicked {
				t.Errorf("run %d: want quarantined panic record, got %+v", i, r)
			}
			if !strings.Contains(r.Err, "chaos: injected panic") {
				t.Errorf("run %d: Err %q does not carry the panic value", i, r.Err)
			}
			if !strings.Contains(r.Stack, "runCell") {
				t.Errorf("run %d: stack does not show the worker boundary:\n%s", i, r.Stack)
			}
			if r.Seed != clean[i].Seed {
				t.Errorf("run %d: quarantined record lost its seed identity", i)
			}
			continue
		}
		got, _ := json.Marshal(injected[i])
		want, _ := json.Marshal(clean[i])
		if string(got) != string(want) {
			t.Errorf("healthy run %d diverged after neighboring panics:\n got %s\nwant %s", i, got, want)
		}
	}
	if stats.RunsPanicked != int64(len(panicAt)) || stats.RunsFailed != int64(len(panicAt)) {
		t.Errorf("stats = %+v, want %d panicked/failed", stats, len(panicAt))
	}
	if aggs[0].Errors != len(panicAt) || aggs[0].Panics != len(panicAt) {
		t.Errorf("aggregate errors=%d panics=%d, want %d", aggs[0].Errors, aggs[0].Panics, len(panicAt))
	}
	if cleanAggs[0].Panics != 0 || cleanAggs[0].Retried != 0 {
		t.Errorf("clean aggregate carries failure counts: %+v", cleanAggs[0])
	}
}

// TestChaosZeroFailureOutputIdentical pins the "pay only a recover
// frame" half of the contract: with no chaos at all, records,
// aggregates, and stats serialize without any of the new failure
// fields, so pre-recovery consumers see byte-identical output.
func TestChaosZeroFailureOutputIdentical(t *testing.T) {
	spec := chaosSpec("baseline", 4, nil)
	records, aggs, stats, err := RunAggregatedStats(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(records)
	for _, field := range []string{"panicked", "retries", "stack"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("healthy records serialize failure field %q: %s", field, raw)
		}
	}
	araw, _ := json.Marshal(aggs)
	for _, field := range []string{"panics", "retried_runs"} {
		if strings.Contains(string(araw), field) {
			t.Errorf("healthy aggregates serialize failure field %q", field)
		}
	}
	sraw, _ := json.Marshal(stats)
	if strings.Contains(string(sraw), "runs_failed") {
		t.Errorf("healthy stats serialize runs_failed: %s", sraw)
	}
}

// TestChaosTransientRetry proves the bounded-backoff retry path: a
// transient first attempt is re-executed and lands the same healthy
// result (warm reset is pinned to cold equivalence, so the retry is
// deterministic), while a permanent error fails without retry and an
// always-transient failure exhausts its attempt budget.
func TestChaosTransientRetry(t *testing.T) {
	clean, _, err := RunAggregated(context.Background(), chaosSpec("baseline", 3, nil))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("transient-once", func(t *testing.T) {
		hook := ChaosFunc(func(point, run, attempt int) error {
			if run == 1 && attempt == 0 {
				return Transient(context.DeadlineExceeded)
			}
			return nil
		})
		records, aggs, stats, err := RunAggregatedStats(context.Background(), chaosSpec("baseline", 3, hook))
		if err != nil {
			t.Fatal(err)
		}
		r := records[1]
		if r.Err != "" || r.Retries != 1 {
			t.Fatalf("retried run: want healthy with retries=1, got %+v", r)
		}
		r.Retries = 0
		got, _ := json.Marshal(r)
		want, _ := json.Marshal(clean[1])
		if string(got) != string(want) {
			t.Errorf("retried run diverged from clean run:\n got %s\nwant %s", got, want)
		}
		if stats.RunsRetried != 1 || stats.RunsFailed != 0 {
			t.Errorf("stats = %+v, want 1 retried, 0 failed", stats)
		}
		if aggs[0].Retried != 1 {
			t.Errorf("aggregate retried = %d, want 1", aggs[0].Retried)
		}
	})

	t.Run("permanent-no-retry", func(t *testing.T) {
		attempts := 0
		hook := ChaosFunc(func(point, run, attempt int) error {
			if run == 1 {
				attempts++
				return context.DeadlineExceeded // not marked Transient
			}
			return nil
		})
		records, _, stats, err := RunAggregatedStats(context.Background(), chaosSpec("baseline", 3, hook))
		if err != nil {
			t.Fatal(err)
		}
		if attempts != 1 {
			t.Errorf("permanent failure was attempted %d times, want 1", attempts)
		}
		if records[1].Err == "" || records[1].Retries != 0 || records[1].Panicked {
			t.Errorf("permanent failure record = %+v", records[1])
		}
		if stats.RunsFailed != 1 || stats.RunsRetried != 0 {
			t.Errorf("stats = %+v", stats)
		}
	})

	t.Run("transient-exhausted", func(t *testing.T) {
		attempts := 0
		hook := ChaosFunc(func(point, run, attempt int) error {
			if run == 0 {
				attempts++
				return Transient(context.DeadlineExceeded)
			}
			return nil
		})
		records, _, stats, err := RunAggregatedStats(context.Background(), chaosSpec("baseline", 2, hook))
		if err != nil {
			t.Fatal(err)
		}
		if attempts != maxRunAttempts {
			t.Errorf("exhausted %d attempts, want %d", attempts, maxRunAttempts)
		}
		if records[0].Err == "" || records[0].Retries != maxRunAttempts-1 {
			t.Errorf("exhausted record = %+v", records[0])
		}
		if stats.RunsFailed != 1 || stats.RunsRetried != maxRunAttempts-1 {
			t.Errorf("stats = %+v", stats)
		}
	})
}

// TestChaosPanicContracts drives every documented panic contract in
// sched, membw, and mavlink through the campaign boundary: each one
// must surface as a quarantined failure record, not a process death.
// The table calls the real contract-violating operations — the same
// panics a corrupted config or a future bug would raise mid-run.
func TestChaosPanicContracts(t *testing.T) {
	tick := time.Millisecond
	cases := []struct {
		name    string
		trigger func()
		want    string // documented panic message substring
	}{
		{"sched-nonpositive-cores", func() { sched.NewCPU(0, tick, nil, nil) }, "sched: cores must be positive"},
		{"sched-nonpositive-tick", func() { sched.NewCPU(1, 0, nil, nil) }, "sched: tick must be positive"},
		{"sched-bus-core-mismatch", func() { sched.NewCPU(2, tick, membw.NewBus(4, 1e9, tick), nil) }, "sched: bus core count mismatch"},
		{"membw-nonpositive-cores", func() { membw.NewBus(0, 1e9, tick) }, "membw: cores must be positive"},
		{"membw-nonpositive-capacity", func() { membw.NewBus(4, 0, tick) }, "membw: capacity must be positive"},
		{"membw-negative-demand", func() { membw.NewBus(1, 1e9, tick).AddDemand(0, -1) }, "membw: negative demand"},
		{"mavlink-oversized-payload", func() { mavlink.Encode(mavlink.Frame{Payload: make([]byte, 256)}) }, "mavlink: payload 256 bytes exceeds 255"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hook := ChaosFunc(func(point, run, attempt int) error {
				tc.trigger()
				return nil
			})
			records, aggs, stats, err := RunAggregatedStats(context.Background(), chaosSpec("baseline", 1, hook))
			if err != nil {
				t.Fatalf("campaign must survive the panic: %v", err)
			}
			r := records[0]
			if !r.Panicked {
				t.Fatalf("want quarantined panic record, got %+v", r)
			}
			if !strings.Contains(r.Err, tc.want) {
				t.Errorf("Err %q does not carry the contract message %q", r.Err, tc.want)
			}
			if r.Stack == "" {
				t.Error("panic record carries no stack")
			}
			if aggs[0].Errors != 1 || aggs[0].Panics != 1 || stats.RunsPanicked != 1 {
				t.Errorf("counts: aggs=%+v stats=%+v", aggs[0], stats)
			}
		})
	}
}

// TestChaosStall: a stalled run (hung dependency simulated by the
// hook sleeping) delays the campaign but corrupts nothing.
func TestChaosStall(t *testing.T) {
	clean, _, err := RunAggregated(context.Background(), chaosSpec("baseline", 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	hook, err := ParseChaos("stall@1:30ms")
	if err != nil {
		t.Fatal(err)
	}
	hook.(*envChaos).bind(3)
	records, _, err := RunAggregated(context.Background(), chaosSpec("baseline", 3, hook))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(records)
	want, _ := json.Marshal(clean)
	if string(got) != string(want) {
		t.Errorf("stalled campaign diverged:\n got %s\nwant %s", got, want)
	}
}

// TestChaosEnv covers the environment-variable injection path used by
// separately built binaries (campaignd under the CI chaos job): a
// spec in ChaosEnv applies to campaigns with no explicit hook, and a
// malformed spec fails the campaign loudly at start.
func TestChaosEnv(t *testing.T) {
	t.Setenv(ChaosEnv, "panic@2;transient@0")
	spec := chaosSpec("baseline", 4, nil)
	records, _, stats, err := RunAggregatedStats(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !records[2].Panicked {
		t.Errorf("env-injected panic not quarantined: %+v", records[2])
	}
	if records[0].Retries != 1 || records[0].Err != "" {
		t.Errorf("env-injected transient not retried: %+v", records[0])
	}
	if stats.RunsPanicked != 1 || stats.RunsRetried != 1 {
		t.Errorf("stats = %+v", stats)
	}

	t.Setenv(ChaosEnv, "panic@")
	if _, _, _, err := RunAggregatedStats(context.Background(), spec); err == nil {
		t.Error("malformed chaos spec must fail the campaign at start")
	}
}
