package campaign

import (
	"reflect"
	"testing"
	"time"
)

// TestSwarmWarmParallelEquivalence is the fleet acceptance gate for
// the warm-pool engine: a 3-drone campaign (peer flood sweep plus a
// cross-drone replay point) must produce byte-identical records at
// every worker count, warm or cold. Swarm systems carry N members'
// worth of resettable state over one shared fabric; any member state
// the Reset path misses, or any cross-member aliasing in the pooled
// Results, shows up here as a parallel- or mode-dependent diff.
func TestSwarmWarmParallelEquivalence(t *testing.T) {
	points := Expand("swarm-peer-flood", nil, []Sweep{
		{Key: "attack.rate", Values: []float64{10000, 20000}},
	})
	points = append(points, Expand("swarm-cross-replay", nil, nil)...)
	spec := Spec{
		Points:   points,
		Runs:     2,
		BaseSeed: 7,
		// Long enough that the flood (8 s) and the replay (12 s)
		// both fire: equivalence over flights where nothing happened
		// would not test the rewind of fired fleet state.
		Duration: 16 * time.Second,
	}

	baseline := spec
	baseline.ColdStart = true
	baseline.Parallel = 2
	want, err := Run(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 3, 8} {
		warm := spec
		warm.Parallel = par
		got, err := Run(warm)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("parallel=%d record %d differs from cold baseline:\n warm: %+v\n cold: %+v",
					par, i, got[i], want[i])
			}
		}
	}
}
