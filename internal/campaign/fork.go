package campaign

import (
	"fmt"
	"strings"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/core"
	"containerdrone/internal/fault"
	"containerdrone/internal/monitor"
	"containerdrone/internal/sim"
)

// Stats summarizes a campaign's execution economics. In prefix-sharing
// mode the planner groups grid points that fly an identical pre-onset
// prefix and forks the variants from one mid-run snapshot; TicksSaved
// counts the prefix ticks those forks did not have to re-fly.
type Stats struct {
	// TicksFlown is the number of engine ticks actually executed.
	TicksFlown int64 `json:"ticks_flown"`
	// TicksSaved is the number of ticks avoided by restoring forks
	// from a shared prefix snapshot instead of re-flying the prefix.
	TicksSaved int64 `json:"ticks_saved"`
	// ForkGroups is the number of multi-point groups the planner
	// qualified for prefix sharing (before any runtime fallback).
	ForkGroups int `json:"fork_groups"`
	// ForkedRuns is the number of runs that were restored from a
	// snapshot rather than flown from tick zero.
	ForkedRuns int `json:"forked_runs"`

	// RunsFailed counts runs that settled with a failure record after
	// actually executing (panics, build failures, injected permanent
	// errors) — campaign cancellation is not a run failure.
	// RunsPanicked is the quarantined subset recovered at the worker's
	// crash boundary; RunsRetried counts transient re-executions. All
	// three are zero on a healthy campaign, keeping its serialized
	// output byte-identical to pre-recovery builds.
	RunsFailed   int64 `json:"runs_failed,omitempty"`
	RunsPanicked int64 `json:"runs_panicked,omitempty"`
	RunsRetried  int64 `json:"runs_retried,omitempty"`
}

// PrefixShareRatio is the fraction of total demanded ticks that prefix
// sharing avoided: saved / (flown + saved). Zero when nothing forked.
func (s Stats) PrefixShareRatio() float64 {
	total := s.TicksFlown + s.TicksSaved
	if total == 0 {
		return 0
	}
	return float64(s.TicksSaved) / float64(total)
}

func (s *Stats) add(o Stats) {
	s.TicksFlown += o.TicksFlown
	s.TicksSaved += o.TicksSaved
	s.ForkedRuns += o.ForkedRuns
	s.RunsFailed += o.RunsFailed
	s.RunsPanicked += o.RunsPanicked
	s.RunsRetried += o.RunsRetried
}

// forkGroup is one set of grid points that share a pre-onset prefix:
// for every run index, the members' flights are byte-identical up to
// (not including) forkTick, so one prefix flight per run serves all of
// them. members are point indices in ascending order; the first is the
// group leader, whose index roots the group's per-run seed derivation.
// forkTick == 0 marks a group that does not qualify for sharing (no
// onset, onset at/after flight end, or a singleton group); its members
// run as ordinary full flights.
type forkGroup struct {
	members  []int
	forkTick int64
}

func (g *forkGroup) leader() int { return g.members[0] }

// forkPlan is the grouped view of a campaign grid.
type forkPlan struct {
	groups []forkGroup
	// leaderOf maps each point index to its group leader's index —
	// the point whose index derives the group's per-run seeds.
	leaderOf []int
}

// planPrefixGroups classifies the campaign grid for prefix sharing.
// Two points share a group when they build the same scenario into
// Configs whose pre-onset behavior is provably identical: everything
// except the attack plan, the post-onset action of the fault plan, and
// the monitor's thresholds (rules and envelope) must agree. Those
// exempt knobs only act at or after their scheduled onset —
// attack/fault effects begin at their Start one-shots, and monitor
// thresholds cannot fire during the benign pre-onset hover (a trip
// would be caught by the runtime Snapshotable probe and the group
// would fall back to full flights).
//
// Structural caveats honored here:
//   - mav-replay faults stay in the fingerprint entirely: the capture
//     window (Magnitude) is consumed by the receiver BEFORE the replay
//     window opens, and the injector's step cadence derives from Rate.
//   - every other fault spec contributes only its Kind, preserving the
//     engine's process registration shape (one step proc per stepping
//     injector, in spec order) that Snapshot restore requires.
//
// The group's forkTick is the earliest onset one-shot tick across its
// members — every member behaves identically on [0, forkTick).
func planPrefixGroups(spec Spec) (*forkPlan, error) {
	plan := &forkPlan{leaderOf: make([]int, len(spec.Points))}
	type groupKey struct {
		scenario    string
		fingerprint string
	}
	index := make(map[groupKey]int)
	ticks := make([]int64, 0, 4) // per-group earliest onset; 0 = none
	for pi, p := range spec.Points {
		cfg, err := buildPoint(p, spec, 1)
		if err != nil {
			return nil, err
		}
		key := groupKey{p.Scenario, prefixFingerprint(cfg)}
		gi, ok := index[key]
		if !ok {
			gi = len(plan.groups)
			index[key] = gi
			plan.groups = append(plan.groups, forkGroup{})
			ticks = append(ticks, 0)
		}
		g := &plan.groups[gi]
		g.members = append(g.members, pi)
		plan.leaderOf[pi] = g.members[0]
		if t, ok := onsetTick(cfg); ok && (ticks[gi] == 0 || t < ticks[gi]) {
			ticks[gi] = t
		}
	}
	for gi := range plan.groups {
		g := &plan.groups[gi]
		if len(g.members) < 2 {
			continue
		}
		// Qualify the group: the shared prefix must be a proper,
		// non-empty slice of the flight.
		cfg, err := buildPoint(spec.Points[g.leader()], spec, 1)
		if err != nil {
			return nil, err
		}
		end := sim.TicksFor(cfg.Duration)
		if t := ticks[gi]; t > 0 && t < end {
			g.forkTick = t
		}
	}
	return plan, nil
}

// singletonPlan is the fork-off grouping: every point is its own
// group, never forked — the planner shape that reproduces the classic
// per-point campaign exactly (including its seed derivation, since
// each point leads itself).
func singletonPlan(n int) *forkPlan {
	plan := &forkPlan{
		groups:   make([]forkGroup, n),
		leaderOf: make([]int, n),
	}
	for pi := 0; pi < n; pi++ {
		plan.groups[pi] = forkGroup{members: []int{pi}}
		plan.leaderOf[pi] = pi
	}
	return plan
}

// prefixFingerprint renders the parts of a built Config that shape the
// pre-onset flight into a comparable key. Knobs that only act at or
// after onset are normalized away: the seed (per-run anyway), the
// attack plan, monitor thresholds and envelope rules, and every fault
// spec's timing and severity — except mav-replay, whose capture window
// and step cadence act on the prefix (see planPrefixGroups).
func prefixFingerprint(cfg core.Config) string {
	norm := cfg
	norm.Seed = 0
	norm.Attack = attack.Plan{}
	norm.Rules = monitor.Rules{}
	norm.Envelope = monitor.EnvelopeRules{}
	// Faults are rendered explicitly, not via %+v: fault.Plan's
	// Stringer prints only the kind names, which would hide the
	// spec fields the fingerprint must keep (and those it must drop).
	norm.Faults = fault.Plan{}
	var b strings.Builder
	fmt.Fprintf(&b, "%+v", norm)
	for i, sp := range cfg.Faults.Specs {
		if sp.Kind == fault.KindMAVReplay {
			// FromMember matters pre-onset too: it selects which
			// member's receiver captures frames during the prefix.
			d := sp.WithDefaults()
			fmt.Fprintf(&b, "|fault%d:%v:capture=%v:rate=%v:from=%d", i, sp.Kind, d.Magnitude, d.Rate, sp.FromMember)
		} else {
			fmt.Fprintf(&b, "|fault%d:%v", i, sp.Kind)
		}
	}
	return b.String()
}

// onsetTick returns the engine tick of the earliest attack or fault
// onset one-shot, and whether the config schedules one at all. It uses
// the engine's own At rounding, so "snapshot at this tick" lands
// strictly before the onset callback fires (a one-shot scheduled for
// tick T is still pending when the clock reads T).
func onsetTick(cfg core.Config) (int64, bool) {
	have := false
	var min time.Duration
	consider := func(t time.Duration) {
		if !have || t < min {
			have, min = true, t
		}
	}
	if cfg.Attack.Active() {
		consider(cfg.Attack.Start)
	}
	for _, sp := range cfg.Faults.Specs {
		if sp.Kind != fault.KindNone {
			consider(sp.Start)
		}
	}
	if !have || min <= 0 {
		return 0, false
	}
	return int64((min + sim.Tick/2) / sim.Tick), true
}
