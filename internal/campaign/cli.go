package campaign

import (
	"fmt"
	"io"
	"strings"
)

// StringList is a repeatable string flag (flag.Value): each
// occurrence appends. Both CLIs use it for -sweep and -set.
type StringList []string

// String renders the collected values.
func (s *StringList) String() string { return strings.Join(*s, " ") }

// Set appends one occurrence.
func (s *StringList) Set(v string) error { *s = append(*s, v); return nil }

// ParseSweeps parses a list of "key=v1,v2,..." specs.
func ParseSweeps(specs []string) ([]Sweep, error) {
	var out []Sweep
	for _, s := range specs {
		sw, err := ParseSweep(s)
		if err != nil {
			return nil, err
		}
		out = append(out, sw)
	}
	return out, nil
}

// PrintSummary writes the standard campaign report: a header line and
// the aggregate table — the shared output path of both CLIs.
func PrintSummary(w io.Writer, spec Spec, aggs []Aggregate) {
	fmt.Fprintf(w, "campaign: %d points × %d runs (seed %d)\n",
		len(spec.Points), spec.Runs, spec.BaseSeed)
	fmt.Fprint(w, Table(aggs))
}
