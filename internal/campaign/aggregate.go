package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Percentiles summarizes one metric over a run population.
type Percentiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// percentiles computes the summary with nearest-rank percentiles,
// sorting vals in place (callers pass reusable scratch buffers).
// Empty input returns the zero value.
func percentiles(vals []float64) Percentiles {
	if len(vals) == 0 {
		return Percentiles{}
	}
	s := vals
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	rank := func(p float64) float64 {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Percentiles{
		Mean: sum / float64(len(s)),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		Max:  s[len(s)-1],
	}
}

// Aggregate is the reduction of one point's run population: the
// campaign-level reading of the paper's per-figure outcomes.
type Aggregate struct {
	Point    string `json:"point"`
	Scenario string `json:"scenario"`
	// Faults names the point's injected fault plan (empty when
	// fault-free); FailoverRate doubles as the fault's detection rate.
	Faults string `json:"faults,omitempty"`
	Runs   int    `json:"runs"`
	Errors int    `json:"errors,omitempty"`
	// Panics counts the quarantined subset of Errors — runs whose
	// execution panicked and was recovered at the worker's crash
	// boundary. Retried counts transient re-executions that preceded
	// the point's final run outcomes (healthy or failed).
	Panics  int `json:"panics,omitempty"`
	Retried int `json:"retried_runs,omitempty"`

	Crashes   int     `json:"crashes"`
	CrashRate float64 `json:"crash_rate"`

	Failovers    int     `json:"failovers"`
	FailoverRate float64 `json:"failover_rate"`
	// RuleCounts tallies which security rule fired the failover.
	RuleCounts map[string]int `json:"rule_counts,omitempty"`

	// SwitchS summarizes the Simplex switch time (s) over failover
	// runs only.
	SwitchS Percentiles `json:"switch_s"`
	// MissRate summarizes the worst flight-critical deadline-miss
	// rate per run.
	MissRate Percentiles `json:"miss_rate"`
	// RMSError and MaxDeviation summarize whole-flight tracking (m).
	RMSError     Percentiles `json:"rms_error_m"`
	MaxDeviation Percentiles `json:"max_deviation_m"`
}

// pointAgg is the mergeable partial aggregate of one point within one
// shard: outcome counts plus the raw metric populations percentile
// reduction needs.
type pointAgg struct {
	label      string
	scenario   string
	faults     string
	runs       int
	errors     int
	panics     int
	retried    int
	crashes    int
	failovers  int
	ruleCounts map[string]int

	switchS   []float64
	missRates []float64
	rms       []float64
	maxDev    []float64
}

// Shard is one worker's private partial aggregation over the campaign
// grid. Workers fold each completed run into their shard lock-free;
// MergeShards reduces the shards to the final per-point Aggregates
// once, after the pool drains. The merged result is identical to
// AggregateRecords over the same records: counts are associative, and
// the percentile reduction sorts its population, so the shard-order
// concatenation of metric values cannot change it.
type Shard struct {
	points []pointAgg
}

// NewShard builds an empty shard covering the campaign's points.
func NewShard(points []Point) *Shard {
	s := &Shard{points: make([]pointAgg, len(points))}
	for i, p := range points {
		s.points[i].label = p.Label
		s.points[i].scenario = p.Scenario
	}
	return s
}

// Add folds one run's record into the shard.
func (s *Shard) Add(pi int, r *Record) {
	a := &s.points[pi]
	a.runs++
	if r.Faults != "" {
		a.faults = r.Faults
	}
	a.retried += r.Retries
	if r.Err != "" {
		a.errors++
		if r.Panicked {
			a.panics++
		}
		return
	}
	if r.Crashed {
		a.crashes++
	}
	if r.Switched {
		a.failovers++
		if a.ruleCounts == nil {
			a.ruleCounts = make(map[string]int)
		}
		a.ruleCounts[r.Rule]++
		a.switchS = append(a.switchS, r.SwitchS)
	}
	a.missRates = append(a.missRates, r.MissRate)
	a.rms = append(a.rms, r.RMSError)
	a.maxDev = append(a.maxDev, r.MaxDeviation)
}

// MergeShards reduces worker shards to the final per-point Aggregates,
// in point order. All shards must cover the same point grid.
func MergeShards(shards []*Shard) []Aggregate {
	if len(shards) == 0 {
		return nil
	}
	npoints := len(shards[0].points)
	out := make([]Aggregate, 0, npoints)
	var switchTimes, missRates, rms, maxDev []float64
	for pi := 0; pi < npoints; pi++ {
		var agg Aggregate
		switchTimes = switchTimes[:0]
		missRates = missRates[:0]
		rms = rms[:0]
		maxDev = maxDev[:0]
		for _, sh := range shards {
			a := &sh.points[pi]
			if agg.Point == "" {
				agg.Point, agg.Scenario = a.label, a.scenario
			}
			if a.faults != "" {
				agg.Faults = a.faults
			}
			agg.Runs += a.runs
			agg.Errors += a.errors
			agg.Panics += a.panics
			agg.Retried += a.retried
			agg.Crashes += a.crashes
			agg.Failovers += a.failovers
			for rule, n := range a.ruleCounts {
				if agg.RuleCounts == nil {
					agg.RuleCounts = make(map[string]int)
				}
				agg.RuleCounts[rule] += n
			}
			switchTimes = append(switchTimes, a.switchS...)
			missRates = append(missRates, a.missRates...)
			rms = append(rms, a.rms...)
			maxDev = append(maxDev, a.maxDev...)
		}
		if ok := agg.Runs - agg.Errors; ok > 0 {
			agg.CrashRate = float64(agg.Crashes) / float64(ok)
			agg.FailoverRate = float64(agg.Failovers) / float64(ok)
		}
		agg.SwitchS = percentiles(switchTimes)
		agg.MissRate = percentiles(missRates)
		agg.RMSError = percentiles(rms)
		agg.MaxDeviation = percentiles(maxDev)
		out = append(out, agg)
	}
	return out
}

// Aggregate reduces records to one Aggregate per point, in the
// records' point order — the replay-side reduction (records decoded
// from CSV/JSON). It is a fold into a single Shard followed by the
// same merge the live campaign uses, so there is exactly one
// reduction implementation to keep correct: a field added to the
// shard fold shows up in live and replayed aggregates alike.
func AggregateRecords(records []Record) []Aggregate {
	order := pointOrder(records)
	idx := make(map[string]int, len(order))
	sh := &Shard{points: make([]pointAgg, len(order))}
	for i, label := range order {
		idx[label] = i
		sh.points[i].label = label
	}
	for i := range records {
		r := &records[i]
		pi := idx[r.Point]
		sh.points[pi].scenario = r.Scenario
		sh.Add(pi, r)
	}
	return MergeShards([]*Shard{sh})
}

// Table renders aggregates as an aligned text table for terminals.
func Table(aggs []Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %5s %7s %9s %10s %10s %10s %10s\n",
		"point", "runs", "crash", "failover", "switch-p50", "switch-p99", "miss-p99", "maxdev-p99")
	for _, a := range aggs {
		failover := "-"
		if a.Failovers > 0 {
			failover = fmt.Sprintf("%.0f%%", a.FailoverRate*100)
		}
		sw50, sw99 := "-", "-"
		if a.Failovers > 0 {
			sw50 = fmt.Sprintf("%.2fs", a.SwitchS.P50)
			sw99 = fmt.Sprintf("%.2fs", a.SwitchS.P99)
		}
		fmt.Fprintf(&b, "%-44s %5d %6.0f%% %9s %10s %10s %9.2f%% %9.2fm\n",
			a.Point, a.Runs, a.CrashRate*100, failover, sw50, sw99,
			a.MissRate.P99*100, a.MaxDeviation.P99)
		if a.Errors > 0 {
			fmt.Fprintf(&b, "%-44s %d runs errored\n", "", a.Errors)
		}
	}
	return b.String()
}
