package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Percentiles summarizes one metric over a run population.
type Percentiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// percentiles computes the summary with nearest-rank percentiles,
// sorting vals in place (callers pass reusable scratch buffers).
// Empty input returns the zero value.
func percentiles(vals []float64) Percentiles {
	if len(vals) == 0 {
		return Percentiles{}
	}
	s := vals
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	rank := func(p float64) float64 {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Percentiles{
		Mean: sum / float64(len(s)),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		Max:  s[len(s)-1],
	}
}

// Aggregate is the reduction of one point's run population: the
// campaign-level reading of the paper's per-figure outcomes.
type Aggregate struct {
	Point    string `json:"point"`
	Scenario string `json:"scenario"`
	// Faults names the point's injected fault plan (empty when
	// fault-free); FailoverRate doubles as the fault's detection rate.
	Faults string `json:"faults,omitempty"`
	Runs   int    `json:"runs"`
	Errors int    `json:"errors,omitempty"`

	Crashes   int     `json:"crashes"`
	CrashRate float64 `json:"crash_rate"`

	Failovers    int     `json:"failovers"`
	FailoverRate float64 `json:"failover_rate"`
	// RuleCounts tallies which security rule fired the failover.
	RuleCounts map[string]int `json:"rule_counts,omitempty"`

	// SwitchS summarizes the Simplex switch time (s) over failover
	// runs only.
	SwitchS Percentiles `json:"switch_s"`
	// MissRate summarizes the worst flight-critical deadline-miss
	// rate per run.
	MissRate Percentiles `json:"miss_rate"`
	// RMSError and MaxDeviation summarize whole-flight tracking (m).
	RMSError     Percentiles `json:"rms_error_m"`
	MaxDeviation Percentiles `json:"max_deviation_m"`
}

// Aggregate reduces records to one Aggregate per point, in the
// records' point order.
func AggregateRecords(records []Record) []Aggregate {
	byPoint := make(map[string][]Record)
	for _, r := range records {
		byPoint[r.Point] = append(byPoint[r.Point], r)
	}
	order := pointOrder(records)
	out := make([]Aggregate, 0, len(order))
	// Metric buffers are reused across points (percentiles sorts them
	// in place), so a large sweep aggregates without per-point garbage.
	var switchTimes, missRates, rms, maxDev []float64
	for _, label := range order {
		runs := byPoint[label]
		agg := Aggregate{Point: label, Runs: len(runs), RuleCounts: make(map[string]int)}
		switchTimes = switchTimes[:0]
		missRates = missRates[:0]
		rms = rms[:0]
		maxDev = maxDev[:0]
		ok := 0
		for _, r := range runs {
			agg.Scenario = r.Scenario
			if r.Faults != "" {
				agg.Faults = r.Faults
			}
			if r.Err != "" {
				agg.Errors++
				continue
			}
			ok++
			if r.Crashed {
				agg.Crashes++
			}
			if r.Switched {
				agg.Failovers++
				agg.RuleCounts[r.Rule]++
				switchTimes = append(switchTimes, r.SwitchS)
			}
			missRates = append(missRates, r.MissRate)
			rms = append(rms, r.RMSError)
			maxDev = append(maxDev, r.MaxDeviation)
		}
		if ok > 0 {
			agg.CrashRate = float64(agg.Crashes) / float64(ok)
			agg.FailoverRate = float64(agg.Failovers) / float64(ok)
		}
		if len(agg.RuleCounts) == 0 {
			agg.RuleCounts = nil
		}
		agg.SwitchS = percentiles(switchTimes)
		agg.MissRate = percentiles(missRates)
		agg.RMSError = percentiles(rms)
		agg.MaxDeviation = percentiles(maxDev)
		out = append(out, agg)
	}
	return out
}

// Table renders aggregates as an aligned text table for terminals.
func Table(aggs []Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %5s %7s %9s %10s %10s %10s %10s\n",
		"point", "runs", "crash", "failover", "switch-p50", "switch-p99", "miss-p99", "maxdev-p99")
	for _, a := range aggs {
		failover := "-"
		if a.Failovers > 0 {
			failover = fmt.Sprintf("%.0f%%", a.FailoverRate*100)
		}
		sw50, sw99 := "-", "-"
		if a.Failovers > 0 {
			sw50 = fmt.Sprintf("%.2fs", a.SwitchS.P50)
			sw99 = fmt.Sprintf("%.2fs", a.SwitchS.P99)
		}
		fmt.Fprintf(&b, "%-44s %5d %6.0f%% %9s %10s %10s %9.2f%% %9.2fm\n",
			a.Point, a.Runs, a.CrashRate*100, failover, sw50, sw99,
			a.MissRate.P99*100, a.MaxDeviation.P99)
		if a.Errors > 0 {
			fmt.Fprintf(&b, "%-44s %d runs errored\n", "", a.Errors)
		}
	}
	return b.String()
}
