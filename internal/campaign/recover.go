package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the campaign engine's crash-only boundary. A simulator
// whose internal packages enforce their contracts with panic() —
// sched, membw, mavlink, the snapshot layer — must not let one
// violating run take down a million-run campaign, let alone the
// serving process above it. Every run executes inside protect(): a
// panic becomes a per-run failure record carrying the panic value and
// stack, the (scenario, seed) point is quarantined (never retried — a
// deterministic simulator panics the same way twice), and the worker
// discards its warm pooled state and rebuilds from cold, because a
// panic may have unwound mid-mutation and left the pooled System
// corrupted. Failures classified transient are retried with bounded
// exponential backoff instead.

// Run-attempt policy: a transient failure is retried up to
// maxRunAttempts total executions, sleeping base<<attempt (capped)
// between attempts. Panics and permanent errors never retry.
const (
	maxRunAttempts   = 3
	retryBackoffBase = 2 * time.Millisecond
	retryBackoffMax  = 100 * time.Millisecond
)

// ErrTransient classifies a run failure as retryable. The simulator
// itself is deterministic, so genuine transience enters through the
// boundary with the outside world (and through the chaos hook, which
// exists to prove the retry path works): wrap such errors with
// Transient, or any error chain containing ErrTransient is retried.
var ErrTransient = errors.New("transient")

// Transient wraps err so the campaign worker retries the run.
func Transient(err error) error {
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// protect runs fn, converting a panic into (error, panicked=true,
// stack). It is the recover() boundary every campaign run crosses.
func protect(fn func() error) (err error, panicked bool, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("panic: %v", r)
			stack = debug.Stack()
		}
	}()
	err = fn()
	return
}

// Chaos is the test-only fault-injection hook for the campaign worker
// itself — the same discipline the simulator applies to the drone,
// turned on the serving infrastructure. When set on a Spec, it runs
// inside the recover boundary before every full-flight run attempt:
// it may panic (a crash at the worker), stall (a hung dependency), or
// return an error (Transient to exercise the retry path, anything
// else for a permanent failure). point and run identify the cell;
// attempt counts executions of that cell, starting at 0.
type Chaos interface {
	BeforeRun(point, run, attempt int) error
}

// ChaosFunc adapts a function to the Chaos interface.
type ChaosFunc func(point, run, attempt int) error

// BeforeRun implements Chaos.
func (f ChaosFunc) BeforeRun(point, run, attempt int) error { return f(point, run, attempt) }

// ChaosEnv is the environment variable holding a chaos spec applied
// to every campaign whose Spec carries no explicit hook — the way a
// separately built binary (campaignd under a CI chaos job) gets
// fault injection without a test-only API surface. Empty disables.
const ChaosEnv = "CONTAINERDRONE_CHAOS"

// ParseChaos parses a chaos spec string: semicolon-separated
// directives, each targeting one flat run index (point*runs+run):
//
//	panic@IDX          panic at that cell's first attempt
//	transient@IDX      fail the first attempt with a Transient error
//	error@IDX          fail every attempt with a permanent error
//	stall@IDX:DUR      sleep DUR (Go duration) before the first attempt
//
// Directives fire on attempt 0 only (except error@), so a transient
// directive proves retry succeeds and a panic directive proves the
// quarantine is final. An empty spec returns a nil hook.
func ParseChaos(spec string) (Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	h := &envChaos{cells: make(map[int]chaosDirective)}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, target, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("campaign: bad chaos directive %q (want kind@index)", part)
		}
		d := chaosDirective{kind: kind}
		if kind == "stall" {
			idxs, durs, ok := strings.Cut(target, ":")
			if !ok {
				return nil, fmt.Errorf("campaign: stall directive %q wants stall@index:duration", part)
			}
			dur, err := time.ParseDuration(durs)
			if err != nil {
				return nil, fmt.Errorf("campaign: bad stall duration in %q: %v", part, err)
			}
			d.stall = dur
			target = idxs
		}
		switch kind {
		case "panic", "transient", "error", "stall":
		default:
			return nil, fmt.Errorf("campaign: unknown chaos kind %q in %q", kind, part)
		}
		idx, err := strconv.Atoi(target)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("campaign: bad chaos index in %q", part)
		}
		h.cells[idx] = d
	}
	return h, nil
}

// chaosFromEnv builds the process-wide chaos hook from ChaosEnv. A
// malformed spec fails loudly at campaign start rather than silently
// injecting nothing.
func chaosFromEnv() (Chaos, error) {
	return ParseChaos(os.Getenv(ChaosEnv))
}

type chaosDirective struct {
	kind  string
	stall time.Duration
}

// envChaos keys directives on the flat run index. The runs-per-point
// width is bound by the campaign at start (the env spec cannot know
// it), and each directive fires per matching cell attempt as
// documented on ParseChaos.
type envChaos struct {
	mu    sync.Mutex
	runs  int
	cells map[int]chaosDirective
}

func (h *envChaos) bind(runs int) { h.mu.Lock(); h.runs = runs; h.mu.Unlock() }

func (h *envChaos) BeforeRun(point, run, attempt int) error {
	h.mu.Lock()
	d, ok := h.cells[point*h.runs+run]
	h.mu.Unlock()
	if !ok {
		return nil
	}
	switch d.kind {
	case "error":
		return fmt.Errorf("chaos: injected permanent failure at (%d,%d)", point, run)
	case "panic":
		if attempt == 0 {
			panic(fmt.Sprintf("chaos: injected panic at (%d,%d)", point, run))
		}
	case "transient":
		if attempt == 0 {
			return Transient(fmt.Errorf("chaos: injected transient failure at (%d,%d)", point, run))
		}
	case "stall":
		if attempt == 0 {
			time.Sleep(d.stall)
		}
	}
	return nil
}

// backoff sleeps the bounded-exponential retry delay for the given
// completed attempt count, returning early if ctx is done.
func backoff(ctx context.Context, attempt int) {
	d := retryBackoffBase << attempt
	if d > retryBackoffMax {
		d = retryBackoffMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
