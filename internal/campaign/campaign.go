// Package campaign runs Monte-Carlo experiment campaigns over the
// scenario registry: N seeds × M scenario/parameter points, executed
// on a worker pool, reduced to per-point aggregate statistics (crash
// rate, failover rate, switch-time and deadline-miss percentiles).
//
// The paper evaluates each defense with a handful of hand-run flights
// (Figs 4–7); a campaign is the batch-sweep generalization — the same
// flights repeated across seed populations and parameter grids, the
// way MemGuard-style bandwidth regulation is evaluated across budget
// grids. Results are deterministic: a campaign is a pure function of
// (spec, base seed), independent of worker count and scheduling,
// because every run derives its seed from (base, point, run) and
// results are collected by index, not completion order.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"containerdrone/internal/core"
	"containerdrone/internal/sim"
)

// Point is one cell of the campaign grid: a registered scenario plus
// the parameter overrides that distinguish this cell from its
// neighbors in a sweep.
type Point struct {
	// Label names the cell in reports, e.g. "memdos/attack.rate=2e+09".
	Label string
	// Scenario is the registry name built for this cell.
	Scenario string
	// Params are applied on top of the scenario defaults (see
	// core.ApplyParam for the key set).
	Params map[string]float64
}

// Spec describes a campaign.
type Spec struct {
	// Points are the grid cells; see Expand for building them from
	// sweep definitions.
	Points []Point
	// Runs is the number of seeds per point.
	Runs int
	// Parallel is the worker count; 0 means runtime.GOMAXPROCS(0) —
	// the schedulable CPU count, which unlike NumCPU respects quota
	// and taskset restrictions.
	Parallel int
	// BaseSeed roots the deterministic per-run seed derivation.
	BaseSeed uint64
	// Duration overrides each scenario's flight length when non-zero
	// (campaigns usually run shorter flights than the paper figures).
	Duration time.Duration

	// ColdStart disables warm-pool reuse: every run rebuilds its
	// core.System from scratch instead of resetting a per-worker
	// cached instance. The two paths produce byte-identical records
	// (core.System.Reset is pinned to cold-build equivalence); the
	// escape hatch exists for debugging and for the equivalence tests
	// themselves.
	ColdStart bool

	// PrefixShare enables checkpoint-fork prefix sharing: grid points
	// whose swept knobs only act after attack/fault onset (attack
	// parameters, fault severities, monitor thresholds) are grouped,
	// the common pre-onset prefix is flown once per (group, run), and
	// the variants fork from a mid-run snapshot. Grouping changes the
	// per-run seed derivation — every member of a group runs the
	// group leader's seed for a given run index, so forked variants
	// are comparable like-for-like — which is why the flag is part of
	// the spec rather than an execution hint: records differ between
	// modes by seeds, never by correctness. Combined with ColdStart,
	// the grouped seeds are kept but every run is a full cold flight —
	// the equivalence baseline TestForkEquivalence compares against.
	// Non-qualifying groups (no onset inside the flight, or a sweep
	// touching pre-onset behavior) transparently fall back to full
	// flights.
	PrefixShare bool

	// Chaos, when non-nil, is the test-only fault-injection hook run
	// inside the worker's recover boundary before every full-flight
	// run attempt — it may panic, stall, or return a (possibly
	// Transient) error, proving the campaign's crash isolation works
	// without corrupting anything. When nil, the hook is read from the
	// ChaosEnv environment variable so separately built binaries
	// (campaignd under a CI chaos job) can be injected too. Production
	// campaigns leave both unset and pay only a recover() frame.
	Chaos Chaos

	// Stream, when non-nil, receives every Record exactly once, from a
	// single emitter goroutine off the workers' hot path — live
	// CSV/JSON emit without a post-pass. Records are delivered in
	// index order (point-major, then run) regardless of worker or fork
	// completion order, so a streamed records CSV is byte-identical to
	// the post-hoc WriteRecordsCSV output. The emitter holds
	// out-of-order completions in a reorder buffer bounded by the
	// worker pool's dispatch skew (≈ workers × chunk cells), not by
	// the campaign size.
	Stream func(Record)
}

// Record is the outcome of one run. Times are in simulated seconds so
// records serialize compactly and uniformly.
type Record struct {
	Point    string `json:"point"`
	Scenario string `json:"scenario"`
	// Faults names the run's injected fault plan ("gps-spoof",
	// "netsplit+jitter", "none"), so fault campaigns aggregate
	// detection and crash outcomes per fault mix.
	Faults   string  `json:"faults,omitempty"`
	Run      int     `json:"run"`
	Seed     uint64  `json:"seed"`
	Crashed  bool    `json:"crashed"`
	CrashS   float64 `json:"crash_s,omitempty"`
	Switched bool    `json:"switched"`
	SwitchS  float64 `json:"switch_s,omitempty"`
	Rule     string  `json:"rule,omitempty"`
	// RMSError and MaxDeviation are whole-flight tracking metrics (m).
	RMSError     float64 `json:"rms_error_m"`
	MaxDeviation float64 `json:"max_deviation_m"`
	// MissRate is the worst deadline-miss rate across the host's
	// flight-critical tasks (attack and CCE tasks excluded): the
	// scheduling health of the control pipeline under this run.
	MissRate float64 `json:"miss_rate"`
	// Err records a build or run failure; such runs carry no metrics.
	Err string `json:"err,omitempty"`
	// Panicked marks a run that died to a panic recovered at the
	// worker's crash boundary. The (scenario, seed) point is
	// quarantined: the failure record is final and never retried,
	// because a deterministic simulator panics the same way twice. Err
	// carries the panic value; Stack the goroutine stack at recovery.
	Panicked bool `json:"panicked,omitempty"`
	// Retries counts re-executions after transient failures; 0 for
	// first-attempt outcomes, healthy or failed.
	Retries int `json:"retries,omitempty"`
	// Stack is the recovered panic's goroutine stack (JSON only; the
	// records CSV omits it).
	Stack string `json:"stack,omitempty"`
}

// DeriveSeed maps (base, point, run) to the seed of one run with a
// SplitMix64-style mix. Derivation — rather than base+counter — keeps
// neighboring runs statistically independent and makes every run's
// seed reproducible in isolation (re-run cell 3 run 17 without
// executing the 50 runs before it).
func DeriveSeed(base uint64, point, run int) uint64 {
	z := base ^ (uint64(point)+1)*0x9e3779b97f4a7c15 ^ (uint64(run)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		// Seed 0 means "keep the scenario default" to core.Build;
		// remap so every run gets an explicit seed.
		z = 0x2545f4914f6cdd1d
	}
	return z
}

// Run executes the campaign and returns one Record per (point, run),
// ordered by point then run index regardless of worker interleaving.
func Run(spec Spec) ([]Record, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cancellation: when the context is done, no
// new runs are dispatched, in-flight runs stop at the next engine
// checkpoint, and the partial record set is returned together with
// the context's error. Every cell is present in the output; cells
// that never ran (or were interrupted) carry a non-empty Err.
func RunContext(ctx context.Context, spec Spec) ([]Record, error) {
	records, _, err := RunAggregated(ctx, spec)
	return records, err
}

// RunAggregated is RunContext returning the per-point aggregates
// alongside the records. Aggregation is sharded: each worker folds
// its completed runs into a private partial aggregate as it goes, and
// the shards are merged once after the pool drains — no post-pass
// over the record population and no cross-worker synchronization on
// the hot path. The merged aggregates are identical to
// AggregateRecords over the same records.
func RunAggregated(ctx context.Context, spec Spec) ([]Record, []Aggregate, error) {
	records, aggs, _, err := RunAggregatedStats(ctx, spec)
	return records, aggs, err
}

// RunAggregatedStats is RunAggregated also returning the campaign's
// execution Stats: ticks flown, prefix ticks saved by checkpoint
// forking, and how much of the grid qualified for sharing.
func RunAggregatedStats(ctx context.Context, spec Spec) ([]Record, []Aggregate, Stats, error) {
	var stats Stats
	if spec.Runs <= 0 {
		return nil, nil, stats, fmt.Errorf("campaign: non-positive run count %d", spec.Runs)
	}
	if len(spec.Points) == 0 {
		return nil, nil, stats, fmt.Errorf("campaign: no points")
	}
	// Validate every point up front: a typo in a sweep key should
	// fail the campaign before it burns CPU on the valid cells. In
	// prefix-sharing mode the planner's classification pass doubles as
	// this validation (it builds every point's Config).
	var plan *forkPlan
	if spec.PrefixShare {
		p, err := planPrefixGroups(spec)
		if err != nil {
			return nil, nil, stats, err
		}
		plan = p
		for _, g := range plan.groups {
			if g.forkTick > 0 {
				stats.ForkGroups++
			}
		}
	} else {
		for _, p := range spec.Points {
			if _, err := buildPoint(p, spec, 1); err != nil {
				return nil, nil, stats, err
			}
		}
		plan = singletonPlan(len(spec.Points))
	}
	chaos := spec.Chaos
	if chaos == nil {
		c, err := chaosFromEnv()
		if err != nil {
			return nil, nil, stats, err
		}
		chaos = c
	}
	if ec, ok := chaos.(*envChaos); ok {
		ec.bind(spec.Runs) // env directives address flat run indices
	}
	workers := spec.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(spec.Points) * spec.Runs
	if workers > total {
		workers = total
	}

	// Optional streaming emit: a single consumer goroutine fed by a
	// bounded channel. The buffer absorbs bursts so workers virtually
	// never wait on the observer; only an observer persistently slower
	// than the whole worker pool backpressures it (bounding memory at
	// O(buffer), not O(total records) — a million-run campaign must
	// not allocate its record population twice up front). The emitter
	// re-sequences completions into index order before invoking the
	// callback, holding early arrivals in a buffer bounded by the
	// pool's dispatch skew.
	var streamCh chan indexedRecord
	var streamWG sync.WaitGroup
	if spec.Stream != nil {
		streamCh = make(chan indexedRecord, min(total, 8192))
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			pending := make(map[int]Record)
			next := 0
			for ir := range streamCh {
				if ir.idx != next {
					pending[ir.idx] = ir.rec
					continue
				}
				spec.Stream(ir.rec)
				next++
				for {
					r, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					spec.Stream(r)
					next++
				}
			}
			// Every index is sent exactly once, so nothing remains;
			// the guard keeps a future bookkeeping bug from hanging
			// the campaign instead of surfacing in the record set.
			for next < total && len(pending) > 0 {
				if r, ok := pending[next]; ok {
					spec.Stream(r)
					delete(pending, next)
				}
				next++
			}
		}()
	}

	// Work is dispatched as contiguous per-group run ranges rather
	// than single cells: a worker that receives runs [lo, hi) of one
	// group cold-builds each member at most once and resets between
	// the rest, so warm reuse survives even when a group's run count
	// is at or below the worker count (per-cell dispatch would hand
	// each worker a different point every pull and silently degrade
	// every run to a cold start). With prefix sharing off every point
	// is its own singleton group, reproducing the classic per-point
	// chunking exactly. Chunks are sized so each group is covered by
	// the fewest workers that still keep the whole pool busy.
	type chunk struct{ gi, lo, hi int } // runs [lo, hi) of group gi
	var chunks []chunk
	perWorker := (total + workers - 1) / workers
	for gi := range plan.groups {
		k := len(plan.groups[gi].members)
		chunkRuns := spec.Runs
		if per := perWorker / k; per < chunkRuns {
			chunkRuns = per
		}
		if chunkRuns < 1 {
			chunkRuns = 1
		}
		for lo := 0; lo < spec.Runs; lo += chunkRuns {
			hi := lo + chunkRuns
			if hi > spec.Runs {
				hi = spec.Runs
			}
			chunks = append(chunks, chunk{gi, lo, hi})
		}
	}

	// One flat preallocated record array shared by every worker: each
	// run writes its own index, so collection is allocation- and
	// synchronization-free regardless of completion order.
	records := make([]Record, total)
	shards := make([]*Shard, workers)
	workerStats := make([]Stats, workers)
	jobs := make(chan chunk)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		shards[wi] = NewShard(spec.Points)
		wg.Add(1)
		go func(wi int, shard *Shard) {
			defer wg.Done()
			w := worker{spec: spec, plan: plan, pi: -1, gi: -1, chaos: chaos}
			emit := func(idx int) {
				pi := idx / spec.Runs
				shard.Add(pi, &records[idx])
				if streamCh != nil {
					streamCh <- indexedRecord{idx, records[idx]}
				}
			}
			for c := range jobs {
				w.runChunk(ctx, c.gi, c.lo, c.hi, records, emit)
			}
			workerStats[wi] = w.stats
		}(wi, shards[wi])
	}
	dispatchedAll := true
	for _, c := range chunks {
		// Checking the context before the send (not only in the
		// select, which picks randomly among ready cases) guarantees
		// nothing is dispatched once the context is done.
		if ctx.Err() != nil {
			dispatchedAll = false
			break
		}
		select {
		case jobs <- c:
		case <-ctx.Done():
			dispatchedAll = false
		}
		if !dispatchedAll {
			break
		}
	}
	close(jobs)
	wg.Wait()
	if !dispatchedAll {
		// Fill the cells that were never dispatched so the output
		// shape stays total-sized and index-ordered even on
		// cancellation. Group dispatch interleaves point indices, so
		// the never-ran set is found by scanning for unwritten records
		// (a written record always carries its point label) rather
		// than by an index watermark.
		for idx := range records {
			if records[idx].Point != "" {
				continue
			}
			pi, ri := idx/spec.Runs, idx%spec.Runs
			records[idx] = Record{
				Point:    spec.Points[pi].Label,
				Scenario: spec.Points[pi].Scenario,
				Run:      ri,
				Seed:     DeriveSeed(spec.BaseSeed, plan.leaderOf[pi], ri),
				Err:      ctx.Err().Error(),
			}
			shards[0].Add(pi, &records[idx])
			if streamCh != nil {
				streamCh <- indexedRecord{idx, records[idx]}
			}
		}
	}
	if streamCh != nil {
		close(streamCh)
		streamWG.Wait()
	}
	for _, ws := range workerStats {
		stats.add(ws)
	}
	return records, MergeShards(shards), stats, ctx.Err()
}

// indexedRecord carries a record and its flat index to the stream
// emitter, which re-sequences completions into index order.
type indexedRecord struct {
	idx int
	rec Record
}

// buildPoint constructs the Config for one run of a point.
func buildPoint(p Point, spec Spec, seed uint64) (core.Config, error) {
	return core.Build(p.Scenario, core.Options{
		Seed:     seed,
		Duration: spec.Duration,
		Params:   p.Params,
	})
}

// worker is one pool member's run state: the cached warm System(s)
// for the work it is currently flying, plus a reused Result buffer
// and a reused Snapshot. A warm run rewinds a cached System with
// Reset(seed) instead of rebuilding it — rings, schedules,
// fault/attack plans, and telemetry buffers all survive in place, so
// the steady state of a campaign allocates nothing per run. Fork
// groups cycle through K member points per run index, so they use a
// per-point map cache (cleared on group switch) beside the classic
// single slot.
type worker struct {
	spec  Spec
	plan  *forkPlan
	chaos Chaos
	pi    int // point index the cached System was built for (-1 none)
	sys   *core.System
	res   core.Result
	gi    int // fork group the map cache belongs to (-1 none)
	group map[int]*core.System
	snap  core.Snapshot
	stats Stats
}

// discardPools drops every cached warm System. Called after a
// recovered panic: the panic may have unwound mid-mutation, so the
// pooled state cannot be trusted and the next run cold-builds.
func (w *worker) discardPools() {
	w.sys, w.pi = nil, -1
	w.group, w.gi = nil, -1
}

// panicRecord settles a cell whose execution panicked: a quarantined
// failure record carrying the panic value and stack, the pooled state
// discarded, and the failure counted. Quarantine means final — the
// simulator is deterministic, so the same (scenario, seed) point
// would panic identically on retry.
func (w *worker) panicRecord(pi, ri int, err error, stack []byte) Record {
	w.discardPools()
	rec := w.errRecord(pi, ri, err)
	rec.Panicked = true
	rec.Stack = string(stack)
	w.stats.RunsFailed++
	w.stats.RunsPanicked++
	return rec
}

// runChunk executes runs [lo, hi) of fork group gi — every member
// point at every run index in the range — writing each cell into
// records[pi*Runs+ri] and calling emit(idx) as it completes. Groups
// that do not qualify for prefix sharing (and every group under
// ColdStart) take the full-flight path; qualified groups fly the
// shared prefix once per run index and fork the members from a
// snapshot.
func (w *worker) runChunk(ctx context.Context, gi, lo, hi int, records []Record, emit func(int)) {
	g := &w.plan.groups[gi]
	if g.forkTick == 0 || w.spec.ColdStart {
		for _, pi := range g.members {
			for ri := lo; ri < hi; ri++ {
				idx := pi*w.spec.Runs + ri
				if err := ctx.Err(); err != nil {
					records[idx] = w.errRecord(pi, ri, err)
				} else {
					records[idx] = w.runCell(ctx, pi, ri)
				}
				emit(idx)
			}
		}
		return
	}
	for ri := lo; ri < hi; ri++ {
		if err := ctx.Err(); err != nil {
			for _, pi := range g.members {
				idx := pi*w.spec.Runs + ri
				records[idx] = w.errRecord(pi, ri, err)
				emit(idx)
			}
			continue
		}
		w.runForkIndex(ctx, gi, g, ri, records, emit)
	}
}

// runForkIndex flies one run index of a qualified fork group: the
// leader's shared prefix, a snapshot, then every member forked from
// it. Each stage runs inside the protect() boundary, so a panic fails
// only the cell it surfaced on, discards the worker's pooled state,
// and degrades the remaining members to full (still protected)
// flights — one poisoned (scenario, seed) point cannot sink its
// group, let alone the campaign.
func (w *worker) runForkIndex(ctx context.Context, gi int, g *forkGroup, ri int, records []Record, emit func(int)) {
	leadPI := g.leader()
	seed := DeriveSeed(w.spec.BaseSeed, leadPI, ri)
	lidx := leadPI*w.spec.Runs + ri

	var leader *core.System
	berr, bpanic, bstack := protect(func() error {
		var err error
		leader, err = w.groupSystem(gi, leadPI, seed)
		return err
	})
	if berr != nil || bpanic {
		// Per-point builds were validated up front, so this is
		// vanishingly rare; degrade the whole run index to full
		// flights rather than guessing at shared state.
		if bpanic {
			records[lidx] = w.panicRecord(leadPI, ri, berr, bstack)
		} else {
			records[lidx] = w.errRecord(leadPI, ri, berr)
			w.stats.RunsFailed++
		}
		emit(lidx)
		for _, pi := range g.members[1:] {
			idx := pi*w.spec.Runs + ri
			records[idx] = w.runCell(ctx, pi, ri)
			emit(idx)
		}
		return
	}

	// Fly the shared prefix on the leader and snapshot at the fork
	// point. fallback marks the runtime Snapshotable refusal:
	// something acted before the planned onset after all (e.g. a swept
	// monitor threshold tight enough to trip during the benign hover).
	fallback := false
	perr, ppanic, pstack := protect(func() error {
		if err := leader.RunToTickContext(ctx, g.forkTick); err != nil {
			return err
		}
		if serr := leader.Snapshotable(); serr != nil {
			fallback = true
			return nil
		}
		leader.SnapshotInto(&w.snap)
		return nil
	})
	if ppanic {
		records[lidx] = w.panicRecord(leadPI, ri, perr, pstack)
		emit(lidx)
		for _, pi := range g.members[1:] {
			idx := pi*w.spec.Runs + ri
			records[idx] = w.runCell(ctx, pi, ri)
			emit(idx)
		}
		return
	}
	if perr != nil {
		for _, pi := range g.members {
			idx := pi*w.spec.Runs + ri
			records[idx] = w.errRecord(pi, ri, perr)
			emit(idx)
		}
		return
	}

	// The leader's prefix is already flown, so resuming it IS its full
	// flight — on the fallback path the other members fly ordinary
	// full flights at the leader's seed. Results stay byte-identical
	// to cold runs either way.
	end := sim.TicksFor(leader.Cfg.Duration)
	records[lidx] = w.protectedFinish(ctx, leader, leadPI, ri, seed)
	if records[lidx].Err == "" {
		w.stats.TicksFlown += end
	}
	emit(lidx)
	if fallback {
		for _, pi := range g.members[1:] {
			idx := pi*w.spec.Runs + ri
			records[idx] = w.runCell(ctx, pi, ri)
			emit(idx)
		}
		return
	}
	for _, pi := range g.members[1:] {
		idx := pi*w.spec.Runs + ri
		var rec Record
		ferr, fpanic, fstack := protect(func() error {
			sys, err := w.groupSystem(gi, pi, seed)
			if err != nil {
				return err
			}
			sys.RestoreFrom(seed, &w.snap)
			rec = w.finish(ctx, sys, pi, ri, seed)
			return nil
		})
		switch {
		case fpanic:
			records[idx] = w.panicRecord(pi, ri, ferr, fstack)
		case ferr != nil:
			records[idx] = w.errRecord(pi, ri, ferr)
			w.stats.RunsFailed++
		default:
			records[idx] = rec
			if rec.Err == "" {
				w.stats.TicksFlown += end - g.forkTick
				w.stats.TicksSaved += g.forkTick
				w.stats.ForkedRuns++
			}
		}
		emit(idx)
	}
}

// protectedFinish is finish inside the recover boundary: a panic
// while resuming a mid-flight System settles the cell as quarantined
// instead of killing the worker.
func (w *worker) protectedFinish(ctx context.Context, sys *core.System, pi, ri int, seed uint64) Record {
	var rec Record
	err, panicked, stack := protect(func() error {
		rec = w.finish(ctx, sys, pi, ri, seed)
		return nil
	})
	if panicked {
		return w.panicRecord(pi, ri, err, stack)
	}
	return rec
}

// runCell executes one (point, run) cell as a full flight inside the
// recover boundary. Transient failures retry with bounded exponential
// backoff; a panic quarantines the cell — its failure record is
// final — and discards the worker's warm pooled state, since the
// panic may have unwound mid-mutation.
func (w *worker) runCell(ctx context.Context, pi, ri int) Record {
	var rec Record
	for attempt := 0; ; attempt++ {
		err, panicked, stack := protect(func() error {
			if w.chaos != nil {
				if cerr := w.chaos.BeforeRun(pi, ri, attempt); cerr != nil {
					return cerr
				}
			}
			rec = w.runOne(ctx, pi, ri)
			return nil
		})
		switch {
		case panicked:
			rec = w.panicRecord(pi, ri, err, stack)
			rec.Retries = attempt
			return rec
		case err != nil && IsTransient(err) && attempt+1 < maxRunAttempts && ctx.Err() == nil:
			w.stats.RunsRetried++
			backoff(ctx, attempt)
			continue
		case err != nil:
			rec = w.errRecord(pi, ri, err)
			rec.Retries = attempt
			w.stats.RunsFailed++
			return rec
		}
		rec.Retries = attempt
		if rec.Err != "" && ctx.Err() == nil {
			w.stats.RunsFailed++
		}
		return rec
	}
}

// system returns a System ready to run (point pi, given seed):
// the cached instance reset in place when the point matches, a cold
// build otherwise.
func (w *worker) system(pi int, seed uint64) (*core.System, error) {
	if !w.spec.ColdStart && w.sys != nil && w.pi == pi {
		w.sys.Reset(seed)
		return w.sys, nil
	}
	cfg, err := buildPoint(w.spec.Points[pi], w.spec, seed)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if !w.spec.ColdStart {
		w.sys, w.pi = sys, pi
	}
	return sys, nil
}

// groupSystem is the fork path's warm cache: a System for point pi of
// group gi, reset to seed. The map is dropped when the worker moves
// to a different group, bounding residency at one group's width.
func (w *worker) groupSystem(gi, pi int, seed uint64) (*core.System, error) {
	if w.gi != gi {
		w.gi, w.group = gi, nil
	}
	if sys := w.group[pi]; sys != nil {
		sys.Reset(seed)
		return sys, nil
	}
	cfg, err := buildPoint(w.spec.Points[pi], w.spec, seed)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if w.group == nil {
		w.group = make(map[int]*core.System, 8)
	}
	w.group[pi] = sys
	return sys, nil
}

// errRecord is the shape of a cell that never ran: point identity,
// its (leader-derived) seed, and the error — no build, no metrics.
func (w *worker) errRecord(pi, ri int, err error) Record {
	p := w.spec.Points[pi]
	return Record{
		Point:    p.Label,
		Scenario: p.Scenario,
		Run:      ri,
		Seed:     DeriveSeed(w.spec.BaseSeed, w.plan.leaderOf[pi], ri),
		Err:      err.Error(),
	}
}

// runOne executes a single (point, run) cell as a full flight.
func (w *worker) runOne(ctx context.Context, pi, ri int) Record {
	p := w.spec.Points[pi]
	seed := DeriveSeed(w.spec.BaseSeed, w.plan.leaderOf[pi], ri)
	rec := Record{Point: p.Label, Scenario: p.Scenario, Run: ri, Seed: seed}
	sys, err := w.system(pi, seed)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	if sys.Cfg.Faults.Active() {
		rec.Faults = sys.Cfg.Faults.String()
	}
	if err := sys.RunContextInto(ctx, &w.res); err != nil {
		// An interrupted flight carries no trustworthy metrics. The
		// cached System stays reusable: Reset rewinds mid-run state.
		rec.Err = err.Error()
		return rec
	}
	w.stats.TicksFlown += sim.TicksFor(sys.Cfg.Duration)
	w.fill(&rec, &w.res)
	return rec
}

// finish runs a mid-flight System — the fork leader after its prefix,
// or a just-restored fork — to the end of its flight and builds the
// cell's record.
func (w *worker) finish(ctx context.Context, sys *core.System, pi, ri int, seed uint64) Record {
	p := w.spec.Points[pi]
	rec := Record{Point: p.Label, Scenario: p.Scenario, Run: ri, Seed: seed}
	if sys.Cfg.Faults.Active() {
		rec.Faults = sys.Cfg.Faults.String()
	}
	if err := sys.ResumeContextInto(ctx, &w.res); err != nil {
		rec.Err = err.Error()
		return rec
	}
	w.fill(&rec, &w.res)
	return rec
}

// fill maps a Result onto a Record's metric fields.
func (w *worker) fill(rec *Record, res *core.Result) {
	rec.Crashed = res.Crashed
	if res.Crashed {
		rec.CrashS = res.CrashTime.Seconds()
	}
	rec.Switched = res.Switched
	if res.Switched {
		rec.SwitchS = res.SwitchTime.Seconds()
		rec.Rule = string(res.SwitchRule)
	}
	rec.RMSError = res.Metrics.RMSError
	rec.MaxDeviation = res.Metrics.MaxDeviation
	for _, t := range res.Tasks {
		if t.Core == core.CoreContainer || strings.HasPrefix(t.Name, "attack-") ||
			strings.HasPrefix(t.Name, "fault-") {
			continue // attacker/fault scheduling health is not a defense metric
		}
		if t.MissRate > rec.MissRate {
			rec.MissRate = t.MissRate
		}
	}
}

// Sweep is one swept parameter: a key and its value grid.
type Sweep struct {
	Key    string
	Values []float64
}

// ParseSweep parses "key=v1,v2,v3" into a Sweep. Values accept any Go
// float syntax (so "attack.rate=1e9,4e9" works).
func ParseSweep(s string) (Sweep, error) {
	key, list, ok := strings.Cut(s, "=")
	if !ok || key == "" || list == "" {
		return Sweep{}, fmt.Errorf("campaign: bad sweep %q (want key=v1,v2,...)", s)
	}
	var sw Sweep
	sw.Key = strings.TrimSpace(key)
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return Sweep{}, fmt.Errorf("campaign: bad sweep value %q in %q: %v", f, s, err)
		}
		sw.Values = append(sw.Values, v)
	}
	return sw, nil
}

// Expand builds the cartesian grid of a scenario's sweeps as campaign
// points. base params (may be nil) apply to every cell; with no
// sweeps the result is the single base point. Point labels encode the
// swept coordinates, e.g. "memdos/attack.rate=2e+09/attack.start=5".
func Expand(scenario string, base map[string]float64, sweeps []Sweep) []Point {
	points := []Point{{Label: scenario, Scenario: scenario, Params: cloneParams(base)}}
	for _, sw := range sweeps {
		next := make([]Point, 0, len(points)*len(sw.Values))
		for _, p := range points {
			for _, v := range sw.Values {
				np := Point{
					Label:    fmt.Sprintf("%s/%s=%v", p.Label, sw.Key, v),
					Scenario: p.Scenario,
					Params:   cloneParams(p.Params),
				}
				if np.Params == nil {
					np.Params = make(map[string]float64, 1)
				}
				np.Params[sw.Key] = v
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}

func cloneParams(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	c := make(map[string]float64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// pointOrder returns the distinct point labels in first-seen order
// (records arrive grouped by point already).
func pointOrder(records []Record) []string {
	var order []string
	seen := make(map[string]bool)
	for _, r := range records {
		if !seen[r.Point] {
			seen[r.Point] = true
			order = append(order, r.Point)
		}
	}
	return order
}
