// Package campaign runs Monte-Carlo experiment campaigns over the
// scenario registry: N seeds × M scenario/parameter points, executed
// on a worker pool, reduced to per-point aggregate statistics (crash
// rate, failover rate, switch-time and deadline-miss percentiles).
//
// The paper evaluates each defense with a handful of hand-run flights
// (Figs 4–7); a campaign is the batch-sweep generalization — the same
// flights repeated across seed populations and parameter grids, the
// way MemGuard-style bandwidth regulation is evaluated across budget
// grids. Results are deterministic: a campaign is a pure function of
// (spec, base seed), independent of worker count and scheduling,
// because every run derives its seed from (base, point, run) and
// results are collected by index, not completion order.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"containerdrone/internal/core"
)

// Point is one cell of the campaign grid: a registered scenario plus
// the parameter overrides that distinguish this cell from its
// neighbors in a sweep.
type Point struct {
	// Label names the cell in reports, e.g. "memdos/attack.rate=2e+09".
	Label string
	// Scenario is the registry name built for this cell.
	Scenario string
	// Params are applied on top of the scenario defaults (see
	// core.ApplyParam for the key set).
	Params map[string]float64
}

// Spec describes a campaign.
type Spec struct {
	// Points are the grid cells; see Expand for building them from
	// sweep definitions.
	Points []Point
	// Runs is the number of seeds per point.
	Runs int
	// Parallel is the worker count; 0 means runtime.GOMAXPROCS(0) —
	// the schedulable CPU count, which unlike NumCPU respects quota
	// and taskset restrictions.
	Parallel int
	// BaseSeed roots the deterministic per-run seed derivation.
	BaseSeed uint64
	// Duration overrides each scenario's flight length when non-zero
	// (campaigns usually run shorter flights than the paper figures).
	Duration time.Duration

	// ColdStart disables warm-pool reuse: every run rebuilds its
	// core.System from scratch instead of resetting a per-worker
	// cached instance. The two paths produce byte-identical records
	// (core.System.Reset is pinned to cold-build equivalence); the
	// escape hatch exists for debugging and for the equivalence tests
	// themselves.
	ColdStart bool

	// Stream, when non-nil, receives every Record exactly once as runs
	// complete, from a single emitter goroutine off the workers' hot
	// path — live CSV/JSON emit without a post-pass. Delivery order is
	// completion order, not index order; the returned record slice is
	// still index-ordered and deterministic.
	Stream func(Record)
}

// Record is the outcome of one run. Times are in simulated seconds so
// records serialize compactly and uniformly.
type Record struct {
	Point    string `json:"point"`
	Scenario string `json:"scenario"`
	// Faults names the run's injected fault plan ("gps-spoof",
	// "netsplit+jitter", "none"), so fault campaigns aggregate
	// detection and crash outcomes per fault mix.
	Faults   string  `json:"faults,omitempty"`
	Run      int     `json:"run"`
	Seed     uint64  `json:"seed"`
	Crashed  bool    `json:"crashed"`
	CrashS   float64 `json:"crash_s,omitempty"`
	Switched bool    `json:"switched"`
	SwitchS  float64 `json:"switch_s,omitempty"`
	Rule     string  `json:"rule,omitempty"`
	// RMSError and MaxDeviation are whole-flight tracking metrics (m).
	RMSError     float64 `json:"rms_error_m"`
	MaxDeviation float64 `json:"max_deviation_m"`
	// MissRate is the worst deadline-miss rate across the host's
	// flight-critical tasks (attack and CCE tasks excluded): the
	// scheduling health of the control pipeline under this run.
	MissRate float64 `json:"miss_rate"`
	// Err records a build or run failure; such runs carry no metrics.
	Err string `json:"err,omitempty"`
}

// DeriveSeed maps (base, point, run) to the seed of one run with a
// SplitMix64-style mix. Derivation — rather than base+counter — keeps
// neighboring runs statistically independent and makes every run's
// seed reproducible in isolation (re-run cell 3 run 17 without
// executing the 50 runs before it).
func DeriveSeed(base uint64, point, run int) uint64 {
	z := base ^ (uint64(point)+1)*0x9e3779b97f4a7c15 ^ (uint64(run)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		// Seed 0 means "keep the scenario default" to core.Build;
		// remap so every run gets an explicit seed.
		z = 0x2545f4914f6cdd1d
	}
	return z
}

// Run executes the campaign and returns one Record per (point, run),
// ordered by point then run index regardless of worker interleaving.
func Run(spec Spec) ([]Record, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cancellation: when the context is done, no
// new runs are dispatched, in-flight runs stop at the next engine
// checkpoint, and the partial record set is returned together with
// the context's error. Every cell is present in the output; cells
// that never ran (or were interrupted) carry a non-empty Err.
func RunContext(ctx context.Context, spec Spec) ([]Record, error) {
	records, _, err := RunAggregated(ctx, spec)
	return records, err
}

// RunAggregated is RunContext returning the per-point aggregates
// alongside the records. Aggregation is sharded: each worker folds
// its completed runs into a private partial aggregate as it goes, and
// the shards are merged once after the pool drains — no post-pass
// over the record population and no cross-worker synchronization on
// the hot path. The merged aggregates are identical to
// AggregateRecords over the same records.
func RunAggregated(ctx context.Context, spec Spec) ([]Record, []Aggregate, error) {
	if spec.Runs <= 0 {
		return nil, nil, fmt.Errorf("campaign: non-positive run count %d", spec.Runs)
	}
	if len(spec.Points) == 0 {
		return nil, nil, fmt.Errorf("campaign: no points")
	}
	// Validate every point up front: a typo in a sweep key should
	// fail the campaign before it burns CPU on the valid cells.
	for _, p := range spec.Points {
		if _, err := buildPoint(p, spec, 1); err != nil {
			return nil, nil, err
		}
	}
	workers := spec.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(spec.Points) * spec.Runs
	if workers > total {
		workers = total
	}

	// Optional streaming emit: a single consumer goroutine fed by a
	// bounded channel. The buffer absorbs bursts so workers virtually
	// never wait on the observer; only an observer persistently slower
	// than the whole worker pool backpressures it (bounding memory at
	// O(buffer), not O(total records) — a million-run campaign must
	// not allocate its record population twice up front).
	var streamCh chan Record
	var streamWG sync.WaitGroup
	if spec.Stream != nil {
		streamCh = make(chan Record, min(total, 8192))
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			for r := range streamCh {
				spec.Stream(r)
			}
		}()
	}

	// Work is dispatched as contiguous per-point run ranges rather
	// than single cells: a worker that receives [lo, hi) of one point
	// cold-builds at most once and resets between the rest, so warm
	// reuse survives even when a point's run count is at or below the
	// worker count (per-cell dispatch would hand each worker a
	// different point every pull and silently degrade every run to a
	// cold start). Chunks are sized so each point is covered by the
	// fewest workers that still keep the whole pool busy, and are
	// emitted in index order, preserving the records' determinism and
	// the cancellation contract (dispatched cells form an index-space
	// prefix).
	chunkSize := spec.Runs
	if per := (total + workers - 1) / workers; per < chunkSize {
		chunkSize = per
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	type chunk struct{ pi, lo, hi int } // runs [lo, hi) of point pi
	var chunks []chunk
	for pi := range spec.Points {
		for lo := 0; lo < spec.Runs; lo += chunkSize {
			hi := lo + chunkSize
			if hi > spec.Runs {
				hi = spec.Runs
			}
			chunks = append(chunks, chunk{pi, lo, hi})
		}
	}

	// One flat preallocated record array shared by every worker: each
	// run writes its own index, so collection is allocation- and
	// synchronization-free regardless of completion order.
	records := make([]Record, total)
	shards := make([]*Shard, workers)
	jobs := make(chan chunk)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		shards[wi] = NewShard(spec.Points)
		wg.Add(1)
		go func(shard *Shard) {
			defer wg.Done()
			w := worker{spec: spec, pi: -1}
			for c := range jobs {
				for ri := c.lo; ri < c.hi; ri++ {
					idx := c.pi*spec.Runs + ri
					if err := ctx.Err(); err != nil {
						// Match the undispatched-cell shape: no build,
						// no fault label, just the error.
						records[idx] = Record{
							Point:    spec.Points[c.pi].Label,
							Scenario: spec.Points[c.pi].Scenario,
							Run:      ri,
							Seed:     DeriveSeed(spec.BaseSeed, c.pi, ri),
							Err:      err.Error(),
						}
					} else {
						records[idx] = w.runOne(ctx, c.pi, ri)
					}
					shard.Add(c.pi, &records[idx])
					if streamCh != nil {
						streamCh <- records[idx]
					}
				}
			}
		}(shards[wi])
	}
	dispatched := total
	for _, c := range chunks {
		// Checking the context before the send (not only in the
		// select, which picks randomly among ready cases) guarantees
		// nothing is dispatched once the context is done.
		if ctx.Err() != nil {
			dispatched = c.pi*spec.Runs + c.lo
			break
		}
		select {
		case jobs <- c:
		case <-ctx.Done():
			dispatched = c.pi*spec.Runs + c.lo
		}
		if dispatched < total {
			break
		}
	}
	close(jobs)
	wg.Wait()
	// Fill the cells that were never dispatched so the output shape
	// stays total-sized and index-ordered even on cancellation.
	for idx := dispatched; idx < total; idx++ {
		pi, ri := idx/spec.Runs, idx%spec.Runs
		records[idx] = Record{
			Point:    spec.Points[pi].Label,
			Scenario: spec.Points[pi].Scenario,
			Run:      ri,
			Seed:     DeriveSeed(spec.BaseSeed, pi, ri),
			Err:      ctx.Err().Error(),
		}
		shards[0].Add(pi, &records[idx])
		if streamCh != nil {
			streamCh <- records[idx]
		}
	}
	if streamCh != nil {
		close(streamCh)
		streamWG.Wait()
	}
	return records, MergeShards(shards), ctx.Err()
}

// buildPoint constructs the Config for one run of a point.
func buildPoint(p Point, spec Spec, seed uint64) (core.Config, error) {
	return core.Build(p.Scenario, core.Options{
		Seed:     seed,
		Duration: spec.Duration,
		Params:   p.Params,
	})
}

// worker is one pool member's run state: the cached warm System for
// the point it is currently working through, plus a reused Result
// buffer. A warm run rewinds the cached System with Reset(seed)
// instead of rebuilding it — rings, schedules, fault/attack plans,
// and telemetry buffers all survive in place, so the steady state of
// a campaign allocates nothing per run.
type worker struct {
	spec Spec
	pi   int // point index the cached System was built for (-1 none)
	sys  *core.System
	res  core.Result
}

// system returns a System ready to run (point pi, given seed):
// the cached instance reset in place when the point matches, a cold
// build otherwise.
func (w *worker) system(pi int, seed uint64) (*core.System, error) {
	if !w.spec.ColdStart && w.sys != nil && w.pi == pi {
		w.sys.Reset(seed)
		return w.sys, nil
	}
	cfg, err := buildPoint(w.spec.Points[pi], w.spec, seed)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if !w.spec.ColdStart {
		w.sys, w.pi = sys, pi
	}
	return sys, nil
}

// runOne executes a single (point, run) cell.
func (w *worker) runOne(ctx context.Context, pi, ri int) Record {
	p := w.spec.Points[pi]
	seed := DeriveSeed(w.spec.BaseSeed, pi, ri)
	rec := Record{Point: p.Label, Scenario: p.Scenario, Run: ri, Seed: seed}
	sys, err := w.system(pi, seed)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	if sys.Cfg.Faults.Active() {
		rec.Faults = sys.Cfg.Faults.String()
	}
	if err := sys.RunContextInto(ctx, &w.res); err != nil {
		// An interrupted flight carries no trustworthy metrics. The
		// cached System stays reusable: Reset rewinds mid-run state.
		rec.Err = err.Error()
		return rec
	}
	res := &w.res
	rec.Crashed = res.Crashed
	if res.Crashed {
		rec.CrashS = res.CrashTime.Seconds()
	}
	rec.Switched = res.Switched
	if res.Switched {
		rec.SwitchS = res.SwitchTime.Seconds()
		rec.Rule = string(res.SwitchRule)
	}
	rec.RMSError = res.Metrics.RMSError
	rec.MaxDeviation = res.Metrics.MaxDeviation
	for _, t := range res.Tasks {
		if t.Core == core.CoreContainer || strings.HasPrefix(t.Name, "attack-") ||
			strings.HasPrefix(t.Name, "fault-") {
			continue // attacker/fault scheduling health is not a defense metric
		}
		if t.MissRate > rec.MissRate {
			rec.MissRate = t.MissRate
		}
	}
	return rec
}

// Sweep is one swept parameter: a key and its value grid.
type Sweep struct {
	Key    string
	Values []float64
}

// ParseSweep parses "key=v1,v2,v3" into a Sweep. Values accept any Go
// float syntax (so "attack.rate=1e9,4e9" works).
func ParseSweep(s string) (Sweep, error) {
	key, list, ok := strings.Cut(s, "=")
	if !ok || key == "" || list == "" {
		return Sweep{}, fmt.Errorf("campaign: bad sweep %q (want key=v1,v2,...)", s)
	}
	var sw Sweep
	sw.Key = strings.TrimSpace(key)
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return Sweep{}, fmt.Errorf("campaign: bad sweep value %q in %q: %v", f, s, err)
		}
		sw.Values = append(sw.Values, v)
	}
	return sw, nil
}

// Expand builds the cartesian grid of a scenario's sweeps as campaign
// points. base params (may be nil) apply to every cell; with no
// sweeps the result is the single base point. Point labels encode the
// swept coordinates, e.g. "memdos/attack.rate=2e+09/attack.start=5".
func Expand(scenario string, base map[string]float64, sweeps []Sweep) []Point {
	points := []Point{{Label: scenario, Scenario: scenario, Params: cloneParams(base)}}
	for _, sw := range sweeps {
		next := make([]Point, 0, len(points)*len(sw.Values))
		for _, p := range points {
			for _, v := range sw.Values {
				np := Point{
					Label:    fmt.Sprintf("%s/%s=%v", p.Label, sw.Key, v),
					Scenario: p.Scenario,
					Params:   cloneParams(p.Params),
				}
				if np.Params == nil {
					np.Params = make(map[string]float64, 1)
				}
				np.Params[sw.Key] = v
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}

func cloneParams(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	c := make(map[string]float64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// pointOrder returns the distinct point labels in first-seen order
// (records arrive grouped by point already).
func pointOrder(records []Record) []string {
	var order []string
	seen := make(map[string]bool)
	for _, r := range records {
		if !seen[r.Point] {
			seen[r.Point] = true
			order = append(order, r.Point)
		}
	}
	return order
}
