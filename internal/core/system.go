package core

import (
	"fmt"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/container"
	"containerdrone/internal/fault"
	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
	"containerdrone/internal/monitor"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// physDT is the physics integration step (one engine tick).
const physDT = 0.0001

// hceHost is the leader host's identity on the simulated bridge (and
// the only host of a single-drone System).
const hceHost = "hce"

// StreamStat counts one Table-I stream.
type StreamStat struct {
	Name      string
	Port      int
	FrameSize int
	Packets   int64
}

// Hooks are optional run-time observer taps. Set them after New and
// before the run starts; nil members are skipped. They exist so the
// public SDK can stream a run live (ticks, violations, Simplex
// switches, crashes) without the deterministic kernel knowing about
// its consumers. Hooks are invoked synchronously from the engine
// loop, on the run's goroutine. In a swarm, OnSample fires for the
// leader's telemetry only; OnViolation/OnSwitch/OnCrash fire for every
// member.
type Hooks struct {
	// OnSample fires at the telemetry rate with each recorded sample.
	OnSample func(now time.Duration, s telemetry.Sample)
	// OnViolation fires for every security-rule violation, before the
	// resulting Simplex switch side effects.
	OnViolation func(v monitor.Violation)
	// OnSwitch fires once when the monitor fails over.
	OnSwitch func(now time.Duration, rule monitor.Rule)
	// OnCrash fires once when the vehicle crashes.
	OnCrash func(at time.Duration)
}

// System is one fully wired scenario instance hosting one or more
// drones on a single shared network fabric.
//
// Each member drone owns its full stack — quad-core FIFO scheduler,
// DRAM bus, MemGuard, container runtime and CCE, airframe, sensors,
// estimators, controllers, security monitor, flight log — while the
// System owns exactly what is physically shared: the simulation
// engine, the radio/bridge fabric, the event trace, and (for fleets)
// the ground-control station coordinating the formation. The exported
// CPU/Bus/Guard/Runtime/CCE/Quad/Monitor/Log fields alias member 0
// (the leader), so single-drone callers read the System exactly as
// before the fleet refactor.
//
// A System is single-threaded — the deterministic kernel forbids
// intra-run concurrency — but distinct Systems share no mutable
// state: every substrate (engine, CPUs, buses, network, RNG streams,
// logs) is owned by the instance, and the only package-level data in
// the dependency graph (MAVLink message registry, scenario registry,
// physics geometry tables) is written at init time only. Concurrent
// core.New(cfg).Run() calls on separate Systems are therefore safe;
// the campaign runner's worker pool relies on this, and the campaign
// tests enforce it under the race detector.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	Net    *netsim.Network
	Trace  *sim.Trace
	Hooks  Hooks

	// Member-0 (leader) aliases; see the type comment.
	CPU     *sched.CPU
	Bus     *membw.Bus
	Guard   *memguard.Guard
	Runtime *container.Runtime
	CCE     *container.Container
	Quad    *physics.Quad
	Monitor *monitor.Monitor
	Log     *telemetry.FlightLog

	drones []*Drone

	// jitterStack holds the link parameters of every open jitter
	// window, in Begin order; the link runs the newest open window's
	// parameters and heals to baseLink when the stack empties. The
	// link model is fabric-global, so jitter state lives here, not on
	// a member.
	jitterStack []*netsim.LinkParams
	baseLink    netsim.LinkParams

	// netRNG drives the shared fabric; per-member streams live on the
	// drones. Held so Reset(seed) can re-derive the whole tree in the
	// exact Split order New used.
	netRNG *sim.RNG

	// Fleet coordinator state (wired only when the fleet has >1
	// member); see fleet.go.
	gcsEP      *netsim.Endpoint
	downRoutes []*netsim.Route
	leaderSP   physics.Vec3
	fleetSeq   uint32
	gcsPayload []byte
	gcsFrame   []byte

	// violScratch backs the aggregated top-level Violations slice of
	// swarm results, reused across warm-pool runs.
	violScratch []monitor.Violation

	// chkLink is the bridge's link parameters at checkpoint time,
	// restored on Reset (a persistent jitter fault may leave the link
	// degraded at run end).
	chkLink netsim.LinkParams
}

// Members returns the fleet, leader first. The slice is owned by the
// System; do not mutate.
func (s *System) Members() []*Drone { return s.drones }

// Member returns the i-th fleet member (0 = leader).
func (s *System) Member(i int) *Drone { return s.drones[i] }

// New builds and wires a system from the config.
func New(cfg Config) (*System, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("core: non-positive duration %v", cfg.Duration)
	}
	if cfg.BusCapacity <= 0 {
		return nil, fmt.Errorf("core: non-positive bus capacity %v", cfg.BusCapacity)
	}
	if cfg.Drones < 0 || cfg.Drones > MaxDrones {
		return nil, fmt.Errorf("core: drone count %d outside [1, %d]", cfg.Drones, MaxDrones)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validateMembers(); err != nil {
		return nil, err
	}
	n := cfg.DroneCount()
	s := &System{
		Cfg:    cfg,
		Engine: sim.NewEngine(),
		Trace:  sim.NewTrace(4096),
	}
	rng := sim.NewRNG(cfg.Seed)

	// The fabric is the one physically shared substrate, so its RNG
	// stream splits off first — before any member's — keeping the
	// single-drone derivation order byte-identical to the pre-fleet
	// kernel.
	s.netRNG = rng.Split()
	s.Net = netsim.New(s.netRNG.Norm, s.netRNG.Float64)
	s.Engine.Register("net", sim.Tick, 0, sim.ProcFunc(func(now time.Duration) {
		s.Net.Step(now)
	}))

	s.drones = make([]*Drone, 0, n)
	for i := 0; i < n; i++ {
		d, err := newDrone(s, i, rng)
		if err != nil {
			return nil, err
		}
		s.drones = append(s.drones, d)
	}
	d0 := s.drones[0]
	s.CPU, s.Bus, s.Guard = d0.CPU, d0.Bus, d0.Guard
	s.Runtime, s.CCE = d0.Runtime, d0.CCE
	s.Quad, s.Monitor, s.Log = d0.Quad, d0.Monitor, d0.Log
	s.leaderSP = cfg.Setpoint

	if n > 1 {
		s.buildFleet()
	}
	s.scheduleAttack()
	s.scheduleFaults()

	if cfg.MonitorEnabled {
		s.Engine.At(cfg.ArmDelay, func(now time.Duration) {
			for _, d := range s.drones {
				d.Monitor.Arm(now)
			}
			s.Trace.Add(now, "monitor", "armed")
		})
	}

	// Checkpoint the fully wired scenario so Reset can rewind to this
	// exact state: the engine's one-shot schedule (attack launches,
	// fault windows, monitor arming), every scheduler's task set, the
	// containers' bookkeeping, and the healthy link parameters.
	s.Engine.Checkpoint()
	for _, d := range s.drones {
		d.CPU.Checkpoint()
		d.CCE.Checkpoint()
	}
	s.chkLink = s.Net.Link()
	return s, nil
}

// Reset rewinds the System to its just-built state under a new seed,
// reusing every allocation: rings, schedules, logs, task sets, and
// fault/attack plans are rewound in place rather than rebuilt. A reset
// System runs byte-identically to a cold core.New with the same Config
// and seed (TestResetEquivalence pins this for every registry
// scenario); at steady state Reset itself does not allocate.
//
// Results produced before the Reset share buffers (flight logs, trace,
// violations) with the System: consume or serialize them first.
//
// Reset must not be called mid-run — only after a completed (or
// context-canceled and abandoned) run.
func (s *System) Reset(seed uint64) {
	s.Cfg.Seed = seed

	// Shared substrates: engine schedule and the fabric.
	s.Engine.Reset()
	s.Net.Reset()
	s.Net.SetLink(s.chkLink)

	// Re-derive the RNG tree exactly as New does: one root generator,
	// the fabric stream first, then each member's streams (sensors,
	// wind) in member order.
	var rng sim.RNG
	rng.Reseed(seed)
	rng.SplitInto(s.netRNG)
	for _, d := range s.drones {
		rng.SplitInto(d.sensorRNG)
		if d.windRNG != nil {
			rng.SplitInto(d.windRNG)
		}
	}

	for _, d := range s.drones {
		d.reset()
	}

	s.Trace.Reset()
	clear(s.jitterStack)
	s.jitterStack = s.jitterStack[:0]

	s.leaderSP = s.Cfg.Setpoint
	s.fleetSeq = 0
}

// nowUS converts engine time to the microsecond timestamps sensors use.
func nowUS(now time.Duration) uint64 { return uint64(now / time.Microsecond) }

// scheduleAttack arms the configured attack plan on the compromised
// member's container (Plan.Member; 0 — the leader — by default). A
// flood may additionally aim at another member's motor port via
// Plan.Target, modeling one compromised swarm member attacking a peer
// across the shared fabric.
func (s *System) scheduleAttack() {
	plan := s.Cfg.Attack
	if plan.Kind == attack.KindNone {
		return
	}
	a := s.drones[plan.Member]
	victim := s.drones[plan.Target]
	switch plan.Kind {
	case attack.KindBandwidth:
		s.Engine.At(plan.Start, func(now time.Duration) {
			t := attack.Bandwidth(CoreContainer, plan.Rate)
			if err := a.CCE.StartTask(t); err != nil {
				s.Trace.Add(now, a.compAttack, "bandwidth launch failed: %v", err)
				return
			}
			s.Trace.Add(now, a.compAttack, "bandwidth attack launched (%.0f acc/s)", t.AccessRate)
		})
	case attack.KindFlood:
		s.Engine.At(plan.Start, func(now time.Duration) {
			send := func(p []byte) {
				_ = a.CCE.Send(40000, PortMotor, p)
			}
			if victim != a {
				// Peer flood: the compromised member sprays a sibling's
				// motor port across the shared fabric. The task still
				// burns the attacker's container core; only the
				// destination differs.
				route := s.Net.Route(
					netsim.Addr{Host: a.hostName, Port: 40000},
					netsim.Addr{Host: victim.hostName, Port: PortMotor})
				send = func(p []byte) { route.Send(p) }
			}
			a.flood = attack.NewFlood(send, plan.Rate, 64)
			if err := a.CCE.StartTask(a.flood.Task(CoreContainer)); err != nil {
				s.Trace.Add(now, a.compAttack, "flood launch failed: %v", err)
				return
			}
			if victim != a {
				s.Trace.Add(now, a.compAttack, "UDP flood launched against member %d (%.0f pkt/s)",
					victim.idx, a.flood.PacketsPerSecond)
			} else {
				s.Trace.Add(now, a.compAttack, "UDP flood launched (%.0f pkt/s)", a.flood.PacketsPerSecond)
			}
		})
	case attack.KindKill:
		s.Engine.At(plan.Start, func(now time.Duration) {
			if a.complexTask != nil {
				a.CCE.StopTask(a.complexTask)
				s.Trace.Add(now, a.compAttack, "complex controller killed")
			}
		})
	case attack.KindCPUHog:
		s.Engine.At(plan.Start, func(now time.Duration) {
			t := attack.CPUHog(CoreContainer, sched.PrioContainer)
			if err := a.CCE.StartTask(t); err != nil {
				s.Trace.Add(now, a.compAttack, "cpu hog launch failed: %v", err)
				return
			}
			s.Trace.Add(now, a.compAttack, "CPU hog launched")
		})
	}
}

// Schedulability runs fixed-priority response-time analysis over the
// leader's current task set — the paper's §VII future work ("provide
// hard real-time proof and schedulability analysis"). Call it on a
// freshly built System to audit the flight-critical task set before
// any attack task is admitted. Fleet members carry identical task
// sets, so the leader's analysis speaks for all of them.
func (s *System) Schedulability() []sched.AnalysisResult {
	return sched.Analyze(s.CPU)
}

// AddSystemBaseline registers the idle OS load present in every
// Table-II case: kernel threads and interrupt handling, ~5% on core 0
// and ~1% on the others (calibrated to the paper's native row).
func AddSystemBaseline(cpu *sched.CPU) {
	utils := []float64{0.05, 0.01, 0.01, 0.01}
	const period = 10 * time.Millisecond
	for core, u := range utils {
		cpu.Add(&sched.Task{
			Name:     fmt.Sprintf("sys-core%d", core),
			Core:     core,
			Priority: sched.PrioInterrupt,
			Period:   period,
			WCET:     time.Duration(u * float64(period)),
			// Kernel housekeeping touches memory lightly.
			AccessRate: 1e6, MemBound: 0.3,
		})
	}
}

// validateMembers rejects member selectors outside the fleet and
// fleet-only faults on a single drone, so a bad sweep fails at build
// time instead of silently targeting the leader.
func (c Config) validateMembers() error {
	n := c.DroneCount()
	if c.Attack.Kind != attack.KindNone {
		if c.Attack.Member < 0 || c.Attack.Member >= n {
			return fmt.Errorf("core: attack member %d outside fleet of %d", c.Attack.Member, n)
		}
		if c.Attack.Target < 0 || c.Attack.Target >= n {
			return fmt.Errorf("core: attack target member %d outside fleet of %d", c.Attack.Target, n)
		}
	}
	for _, sp := range c.Faults.Specs {
		if sp.Kind == fault.KindNone {
			continue
		}
		if sp.Member < 0 || sp.Member >= n {
			return fmt.Errorf("core: %s fault member %d outside fleet of %d", sp.Kind, sp.Member, n)
		}
		if sp.Kind == fault.KindMAVReplay {
			if sp.FromMember < 0 || sp.FromMember >= n {
				return fmt.Errorf("core: mav-replay capture member %d outside fleet of %d", sp.FromMember, n)
			}
		}
		if sp.Kind == fault.KindFleetSplit && n < 2 {
			return fmt.Errorf("core: fleet-split needs a fleet (drones >= 2), got %d", n)
		}
	}
	return nil
}
