package core

import (
	"fmt"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/cgroup"
	"containerdrone/internal/container"
	"containerdrone/internal/control"
	"containerdrone/internal/estimate"
	"containerdrone/internal/mavlink"
	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
	"containerdrone/internal/monitor"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
	"containerdrone/internal/sensors"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// physDT is the physics integration step (one engine tick).
const physDT = 0.0001

// hceHost is the host's identity on the simulated bridge.
const hceHost = "hce"

// StreamStat counts one Table-I stream.
type StreamStat struct {
	Name      string
	Port      int
	FrameSize int
	Packets   int64
}

// Hooks are optional run-time observer taps. Set them after New and
// before the run starts; nil members are skipped. They exist so the
// public SDK can stream a run live (ticks, violations, Simplex
// switches, crashes) without the deterministic kernel knowing about
// its consumers. Hooks are invoked synchronously from the engine
// loop, on the run's goroutine.
type Hooks struct {
	// OnSample fires at the telemetry rate with each recorded sample.
	OnSample func(now time.Duration, s telemetry.Sample)
	// OnViolation fires for every security-rule violation, before the
	// resulting Simplex switch side effects.
	OnViolation func(v monitor.Violation)
	// OnSwitch fires once when the monitor fails over.
	OnSwitch func(now time.Duration, rule monitor.Rule)
	// OnCrash fires once when the vehicle crashes.
	OnCrash func(at time.Duration)
}

// System is one fully wired scenario instance.
//
// A System is single-threaded — the deterministic kernel forbids
// intra-run concurrency — but distinct Systems share no mutable
// state: every substrate (engine, CPU, bus, network, RNG streams,
// logs) is owned by the instance, and the only package-level data in
// the dependency graph (MAVLink message registry, scenario registry,
// physics geometry tables) is written at init time only. Concurrent
// core.New(cfg).Run() calls on separate Systems are therefore safe;
// the campaign runner's worker pool relies on this, and the campaign
// tests enforce it under the race detector.
type System struct {
	Cfg     Config
	Engine  *sim.Engine
	CPU     *sched.CPU
	Bus     *membw.Bus
	Guard   *memguard.Guard
	Net     *netsim.Network
	Runtime *container.Runtime
	CCE     *container.Container
	Quad    *physics.Quad
	Monitor *monitor.Monitor
	Log     *telemetry.FlightLog
	Trace   *sim.Trace
	Hooks   Hooks

	safetyCtl  *control.Cascade
	complexCtl *control.Cascade
	wind       *physics.Wind
	rcScript   *sensors.RCScript
	suite      *sensors.Suite

	// Each control environment runs its own state estimator, exactly
	// as each PX4 instance runs its own EKF: the HCE filter feeds the
	// safety controller and the monitor; the CCE filter is owned by
	// the complex controller and fed from the MAVLink stream.
	hostEst *estimate.Filter
	cceEst  *estimate.Filter

	// Mission state (nil when flying a static setpoint).
	mission     *control.Mission
	curSetpoint physics.Vec3 // what the complex controller is tracking
	holdSP      physics.Vec3 // the safety controller's hold target

	// host-side sensor caches written by the driver tasks
	lastIMU  sensors.IMUReading
	lastGPS  sensors.GPSReading
	lastBaro sensors.BaroReading
	lastRC   sensors.RCReading

	// actuator command paths
	complexCmd   [4]float64
	complexCmdAt time.Duration
	safetyCmd    [4]float64
	hostCmd      [4]float64

	hceMotorEP  *netsim.Endpoint
	cceSensorEP *netsim.Endpoint

	complexTask *sched.Task
	recvTask    *sched.Task
	flood       *attack.Flood

	// MAVLink replay capture: when the fault plan includes mav-replay,
	// the receiving thread copies the first replayMax valid motor
	// frames it sees — the adversary's tap on the bridge.
	replayFrames [][]byte
	replayMax    int

	// Shared-surface fault accounting, so same-kind fault windows can
	// overlap without one injector's End healing a surface another
	// injector still degrades (see fault.go).
	splitDepth    int
	baroDropDepth int
	gyroBiasDepth int
	gpsSpoofDepth int
	// jitterStack holds the link parameters of every open jitter
	// window, in Begin order; the link runs the newest open window's
	// parameters and heals to baseLink when the stack empties.
	jitterStack []*netsim.LinkParams
	baseLink    netsim.LinkParams

	streams map[string]*StreamStat
	// Per-stream stat pointers, resolved once at wiring time so the
	// per-frame hot paths never hash the streams map.
	imuStream, baroStream, gpsStream, rcStream, motorStream *StreamStat

	seqOut  uint32
	garbage int64 // undecodable packets seen by the receiver

	// Steady-state encode scratch. The kernel is single-threaded and
	// netsim.Send copies payloads into its pool, so one payload buffer
	// and one frame buffer serve every host-side sensor stream without
	// allocating per frame.
	sendPayload []byte
	sendFrame   []byte

	// hostIn is the host-side controller-input scratch; see hostInputs.
	hostIn control.Inputs

	// CCE controller per-run state and scratch (fields rather than
	// closure locals so Reset can rewind them between warm-pool runs).
	cceIn           control.Inputs
	cceSeq          uint32
	cceMotorPayload []byte
	cceMotorFrame   []byte

	// The per-subsystem RNG streams, held so Reset(seed) can re-derive
	// them in place in exactly the Split order New used.
	netRNG, sensorRNG, windRNG *sim.RNG

	// trim is the hover throttle vector every run starts from.
	trim [4]float64

	// chkLink is the bridge's link parameters at checkpoint time,
	// restored on Reset (a persistent jitter fault may leave the link
	// degraded at run end).
	chkLink netsim.LinkParams
}

// New builds and wires a system from the config.
func New(cfg Config) (*System, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("core: non-positive duration %v", cfg.Duration)
	}
	if cfg.BusCapacity <= 0 {
		return nil, fmt.Errorf("core: non-positive bus capacity %v", cfg.BusCapacity)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	// Presize the flight log for the whole run (+1 for the t=0 sample)
	// so steady-state Add never reallocates.
	logCap := 0
	if cfg.TelemetryRate > 0 {
		logCap = int(cfg.Duration.Seconds()*cfg.TelemetryRate) + 1
	}
	s := &System{
		Cfg:     cfg,
		Engine:  sim.NewEngine(),
		Log:     telemetry.NewFlightLogCap(logCap),
		Trace:   sim.NewTrace(4096),
		streams: make(map[string]*StreamStat),
	}
	rng := sim.NewRNG(cfg.Seed)

	// --- physical substrates -------------------------------------
	s.Bus = membw.NewBus(NumCores, cfg.BusCapacity, sim.Tick)
	s.Guard = memguard.New(NumCores)
	s.Guard.SetEnabled(cfg.MemGuardEnabled)
	if cfg.MemGuardBudget > 0 {
		s.Guard.SetBudget(CoreContainer, cfg.MemGuardBudget*memguard.DefaultPeriod.Seconds())
	}
	s.CPU = sched.NewCPU(NumCores, sim.Tick, s.Bus, s.Guard)

	s.netRNG = rng.Split()
	s.Net = netsim.New(s.netRNG.Norm, s.netRNG.Float64)
	if cfg.IPTablesRate > 0 {
		s.Net.Limit(netsim.Addr{Host: hceHost, Port: PortMotor}, cfg.IPTablesRate, cfg.IPTablesBurst)
	}

	root := cgroup.NewRoot()
	rt, err := container.NewRuntime(container.Config{
		CPU: s.CPU, Net: s.Net, Root: root, HostName: hceHost,
		DaemonCore: CoreDriver, DaemonUtil: 0.002,
	})
	if err != nil {
		return nil, err
	}
	s.Runtime = rt
	cce, err := rt.Create(container.Spec{
		Name:             "cce",
		Image:            container.Image{Name: "resin/rpi-raspbian", Tag: "jessie", SizeMB: 120},
		CPUSet:           cgroup.NewCPUSet(CoreContainer),
		RTPrioCap:        sched.PrioContainer,
		MemoryLimitBytes: 256 << 20,
		Ports: []container.PortMapping{
			{HostPort: PortMotor, ContainerPort: PortMotor},
			{HostPort: PortSensors, ContainerPort: PortSensors},
		},
	})
	if err != nil {
		return nil, err
	}
	s.CCE = cce
	if err := cce.Start(); err != nil {
		return nil, err
	}

	// --- vehicle, sensors, controllers ---------------------------
	s.Quad = physics.NewQuad(physics.DefaultParams())
	s.Quad.State.Pos = cfg.Setpoint
	hov := s.Quad.HoverThrottle()
	s.trim = [4]float64{hov, hov, hov, hov}
	s.Quad.SetMotors(s.trim)
	s.Quad.SettleRotors()
	s.complexCmd, s.safetyCmd, s.hostCmd = s.trim, s.trim, s.trim

	s.curSetpoint = cfg.Setpoint
	s.holdSP = cfg.Setpoint
	if len(cfg.Mission) > 0 {
		s.mission = control.NewMission(cfg.Mission...)
	}

	s.sensorRNG = rng.Split()
	s.suite = sensors.NewSuite(cfg.Noise, s.sensorRNG.Norm)
	s.rcScript = sensors.NewRCScript()
	if cfg.ManualUntil > 0 {
		s.rcScript.
			Add(0, sensors.RCReading{Mode: sensors.ModeManual, Throttle: 0.5}).
			Add(uint64(cfg.ManualUntil/time.Microsecond),
				sensors.RCReading{Mode: sensors.ModePosition, Throttle: 0.5})
	}
	if cfg.Wind {
		s.windRNG = rng.Split()
		s.wind = physics.NewWind(0.25, 0.6, 2.0, s.windRNG.Norm)
	}

	af := control.AirframeFrom(s.Quad.Params)
	s.safetyCtl = control.NewCascade(control.SafetyGains(), af, 250)
	s.complexCtl = control.NewCascade(control.ComplexGains(), af, 400)
	s.hostEst = estimate.New(estimate.DefaultConfig())
	s.cceEst = estimate.New(estimate.DefaultConfig())

	s.Monitor = monitor.New(cfg.Rules)
	s.Monitor.SetEnvelope(cfg.Envelope)
	s.Monitor.OnSwitch = func(now time.Duration, rule monitor.Rule) {
		s.Trace.Add(now, "monitor", "rule %s violated: switching to safety controller, killing receiver", rule)
		if s.recvTask != nil {
			s.CPU.Remove(s.recvTask)
		}
		if s.Hooks.OnSwitch != nil {
			s.Hooks.OnSwitch(now, rule)
		}
	}
	s.Monitor.OnViolation = func(v monitor.Violation) {
		if s.Hooks.OnViolation != nil {
			s.Hooks.OnViolation(v)
		}
	}

	s.hceMotorEP = s.Net.Bind(netsim.Addr{Host: hceHost, Port: PortMotor}, 256)
	if ep, err := cce.Bind(PortSensors, 256); err == nil {
		s.cceSensorEP = ep
	} else {
		return nil, err
	}

	s.imuStream = s.registerStream("IMU", PortSensors, mavlink.IMUPayloadSize+mavlink.Overhead)
	s.baroStream = s.registerStream("Barometer", PortSensors, mavlink.BaroPayloadSize+mavlink.Overhead)
	s.gpsStream = s.registerStream("GPS", PortSensors, mavlink.GPSPayloadSize+mavlink.Overhead)
	s.rcStream = s.registerStream("RC", PortSensors, mavlink.RCPayloadSize+mavlink.Overhead)
	s.motorStream = s.registerStream("Motor Output", PortMotor, mavlink.MotorPayloadSize+mavlink.Overhead)

	s.buildHCETasks()
	if cfg.ComplexInContainer {
		if err := s.buildCCEController(); err != nil {
			return nil, err
		}
	} else {
		s.buildHostComplexController()
	}
	s.buildEngineProcs()
	s.scheduleAttack()
	s.scheduleFaults()

	if cfg.MonitorEnabled {
		s.Engine.At(cfg.ArmDelay, func(now time.Duration) {
			s.Monitor.Arm(now)
			s.Trace.Add(now, "monitor", "armed")
		})
	}

	// Checkpoint the fully wired scenario so Reset can rewind to this
	// exact state: the engine's one-shot schedule (attack launches,
	// fault windows, monitor arming), the scheduler's task set, the
	// container's bookkeeping, and the healthy link parameters.
	s.Engine.Checkpoint()
	s.CPU.Checkpoint()
	s.CCE.Checkpoint()
	s.chkLink = s.Net.Link()
	return s, nil
}

// Reset rewinds the System to its just-built state under a new seed,
// reusing every allocation: rings, schedules, logs, task sets, and
// fault/attack plans are rewound in place rather than rebuilt. A reset
// System runs byte-identically to a cold core.New with the same Config
// and seed (TestResetEquivalence pins this for every registry
// scenario); at steady state Reset itself does not allocate.
//
// Results produced before the Reset share buffers (flight log, trace,
// violations) with the System: consume or serialize them first.
//
// Reset must not be called mid-run — only after a completed (or
// context-canceled and abandoned) run.
func (s *System) Reset(seed uint64) {
	s.Cfg.Seed = seed

	// Substrates: engine schedule, scheduler, memory system, fabric.
	s.Engine.Reset()
	s.CPU.Reset()
	s.Bus.Reset()
	s.Guard.Reset()
	s.Net.Reset()
	s.Net.SetLink(s.chkLink)
	s.Runtime.NAT().ResetCounters()
	s.CCE.Reset()

	// Re-derive the RNG tree exactly as New does: one root generator,
	// children split in wiring order (network, sensors, wind).
	var rng sim.RNG
	rng.Reseed(seed)
	rng.SplitInto(s.netRNG)
	rng.SplitInto(s.sensorRNG)
	if s.windRNG != nil {
		rng.SplitInto(s.windRNG)
	}

	// Vehicle back to the start of the flight envelope.
	s.Quad.Reset()
	s.Quad.State.Pos = s.Cfg.Setpoint
	s.Quad.SetMotors(s.trim)
	s.Quad.SettleRotors()
	s.complexCmd, s.safetyCmd, s.hostCmd = s.trim, s.trim, s.trim
	if s.wind != nil {
		s.wind.Reset()
	}

	// Sensors, estimators, controllers, monitor, mission.
	s.suite.Reset()
	s.hostEst.Reset()
	s.cceEst.Reset()
	s.safetyCtl.Reset()
	s.complexCtl.Reset()
	s.Monitor.Reset()
	if s.mission != nil {
		s.mission.Reset()
	}
	s.curSetpoint = s.Cfg.Setpoint
	s.holdSP = s.Cfg.Setpoint

	// Recording and per-run caches.
	s.Log.Reset()
	s.Trace.Reset()
	s.lastIMU = sensors.IMUReading{}
	s.lastGPS = sensors.GPSReading{}
	s.lastBaro = sensors.BaroReading{}
	s.lastRC = sensors.RCReading{}
	s.complexCmdAt = 0
	s.seqOut = 0
	s.garbage = 0
	s.cceIn = control.Inputs{}
	s.cceSeq = 0
	s.flood = nil
	for _, st := range s.streams {
		st.Packets = 0
	}

	// Fault-layer shared-surface accounting.
	clear(s.replayFrames)
	s.replayFrames = s.replayFrames[:0]
	s.splitDepth = 0
	s.baroDropDepth = 0
	s.gyroBiasDepth = 0
	s.gpsSpoofDepth = 0
	clear(s.jitterStack)
	s.jitterStack = s.jitterStack[:0]
}

func (s *System) registerStream(name string, port, size int) *StreamStat {
	st := &StreamStat{Name: name, Port: port, FrameSize: size}
	s.streams[name] = st
	return st
}

// sendToCCE encodes and ships one sensor frame into the container.
// The frame is built in the System's scratch buffer; HostSend copies
// it into the network's pool, so nothing here allocates at steady
// state.
func (s *System) sendToCCE(stream *StreamStat, msgID uint8, payload []byte) {
	if !s.Cfg.ComplexInContainer {
		return
	}
	s.sendFrame = mavlink.AppendEncode(s.sendFrame[:0], mavlink.Frame{
		Seq: uint8(s.seqOut), SysID: 1, CompID: 1, MsgID: msgID, Payload: payload,
	})
	s.seqOut++
	if err := s.Runtime.HostSend(s.CCE, 9000, PortSensors, s.sendFrame); err == nil {
		stream.Packets++
	}
}

// nowUS converts engine time to the microsecond timestamps sensors use.
func nowUS(now time.Duration) uint64 { return uint64(now / time.Microsecond) }

// buildHCETasks registers the host control environment's task set:
// kernel drivers at FIFO 90, receiver and monitor as middle-priority
// I/O threads, safety controller at FIFO 20, plus baseline system load
// (the paper's "about 40 priority" Linux interrupt work).
func (s *System) buildHCETasks() {
	// Baseline OS load (matches the native row of Table II).
	AddSystemBaseline(s.CPU)

	// IMU driver: samples inertial state, caches it, feeds the CCE.
	s.CPU.Add(&sched.Task{
		Name: "drv-imu", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 4 * time.Millisecond, WCET: 300 * time.Microsecond,
		AccessRate: 15e6, MemBound: 0.6,
		Work: func(now time.Duration) {
			s.lastIMU = s.suite.SampleIMU(s.Quad, nowUS(now))
			s.hostEst.FeedIMU(s.lastIMU)
			var p []byte
			s.sendPayload, p = mavlink.AppendIMU(s.sendPayload[:0], s.lastIMU)
			s.sendToCCE(s.imuStream, mavlink.MsgIDIMU, p)
		},
	})
	// Barometer driver.
	s.CPU.Add(&sched.Task{
		Name: "drv-baro", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 20 * time.Millisecond, WCET: 120 * time.Microsecond,
		AccessRate: 5e6, MemBound: 0.5,
		Work: func(now time.Duration) {
			s.lastBaro = s.suite.SampleBaro(s.Quad, nowUS(now))
			var p []byte
			s.sendPayload, p = mavlink.AppendBaro(s.sendPayload[:0], s.lastBaro)
			s.sendToCCE(s.baroStream, mavlink.MsgIDBaro, p)
		},
	})
	// GPS/Vicon driver.
	s.CPU.Add(&sched.Task{
		Name: "drv-gps", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 100 * time.Millisecond, WCET: 150 * time.Microsecond,
		AccessRate: 5e6, MemBound: 0.5,
		Work: func(now time.Duration) {
			s.lastGPS = s.suite.SampleGPS(s.Quad, nowUS(now))
			s.hostEst.FeedFix(s.lastGPS)
			var p []byte
			s.sendPayload, p = mavlink.AppendGPS(s.sendPayload[:0], s.lastGPS)
			s.sendToCCE(s.gpsStream, mavlink.MsgIDGPS, p)
		},
	})
	// RC driver.
	s.CPU.Add(&sched.Task{
		Name: "drv-rc", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 20 * time.Millisecond, WCET: 100 * time.Microsecond,
		AccessRate: 4e6, MemBound: 0.5,
		Work: func(now time.Duration) {
			s.lastRC = s.rcScript.Sample(nowUS(now))
			var p []byte
			s.sendPayload, p = mavlink.AppendRC(s.sendPayload[:0], s.lastRC)
			s.sendToCCE(s.rcStream, mavlink.MsgIDRC, p)
		},
	})
	// PWM output: applies the selected actuator command to the ESCs.
	s.CPU.Add(&sched.Task{
		Name: "drv-pwm", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 2500 * time.Microsecond, WCET: 150 * time.Microsecond,
		AccessRate: 8e6, MemBound: 0.5,
		Work: func(now time.Duration) { s.Quad.SetMotors(s.selectCommand()) },
	})
	// Safety controller: hot standby on every sensor update.
	s.CPU.Add(&sched.Task{
		Name: "safety-ctl", Core: CoreSafety, Priority: sched.PrioSafety,
		Period: 4 * time.Millisecond, WCET: 500 * time.Microsecond,
		AccessRate: 10e6, MemBound: 0.6,
		Work: func(now time.Duration) {
			s.safetyCmd = s.safetyCtl.Compute(s.hostInputs(), control.Setpoint{Pos: s.safetyTarget()})
		},
	})
	if s.Cfg.ComplexInContainer {
		// HCE receiving thread: drains the motor port, decodes, and
		// forwards valid commands to the PWM path.
		s.recvTask = s.CPU.Add(&sched.Task{
			Name: "hce-recv", Core: CoreSafety, Priority: 50,
			Period: 2500 * time.Microsecond, WCET: 150 * time.Microsecond,
			AccessRate: 6e6, MemBound: 0.4,
			Work: s.drainMotorPort,
		})
		// Security monitor task.
		s.CPU.Add(&sched.Task{
			Name: "sec-monitor", Core: CoreSafety, Priority: 60,
			Period: 10 * time.Millisecond, WCET: 60 * time.Microsecond,
			AccessRate: 2e6, MemBound: 0.3,
			Work: func(now time.Duration) {
				refRoll, refPitch, _ := s.safetyCtl.AttitudeSetpoint()
				est := s.hostEst.State()
				roll, pitch, _ := est.Attitude.Euler()
				s.Monitor.Check(now, monitor.AttitudeError(refRoll, refPitch, roll, pitch))
				posErr := est.Pos.Sub(s.safetyTarget()).Norm()
				s.Monitor.CheckEnvelope(now, posErr, est.Vel.Z)
			},
		})
	}
}

// drainMotorPort is the receiving thread's job: up to 16 datagrams per
// 2.5 ms period — the bounded service rate the UDP flood overwhelms.
func (s *System) drainMotorPort(now time.Duration) {
	for i := 0; i < 16; i++ {
		pkt, ok := s.hceMotorEP.Recv()
		if !ok {
			return
		}
		frame, _, err := mavlink.Decode(pkt.Payload)
		if err != nil || frame.MsgID != mavlink.MsgIDMotor {
			s.garbage++
			continue
		}
		cmd, err := mavlink.DecodeMotor(frame.Payload)
		if err != nil {
			s.garbage++
			continue
		}
		if len(s.replayFrames) < s.replayMax {
			// Copy: pkt.Payload is a pooled buffer, invalid after the
			// next receive call on this endpoint.
			s.replayFrames = append(s.replayFrames, append([]byte(nil), pkt.Payload...))
		}
		s.complexCmd = cmd.Motors
		s.complexCmdAt = now
		s.motorStream.Packets++
		s.Monitor.NoteComplexOutput(now)
	}
}

// hostInputs assembles controller inputs from the host estimator's
// fused state plus the raw barometer/RC channels, into a reused
// scratch field (fully overwritten on every call, so it needs no
// per-run reset).
func (s *System) hostInputs() *control.Inputs {
	s.hostIn = control.Inputs{
		IMU:  s.hostEst.Inputs(s.lastBaro, s.lastRC),
		GPS:  s.hostEst.GPSLike(),
		Baro: s.lastBaro,
		RC:   s.lastRC,
	}
	return &s.hostIn
}

// safetyTarget returns the safety controller's setpoint. For static
// flights it is the configured setpoint; during a mission it shadows
// the vehicle until a Simplex switch and then freezes, so failover
// means "hold position here", not "fly the rest of the mission".
func (s *System) safetyTarget() physics.Vec3 {
	if s.mission == nil {
		return s.Cfg.Setpoint
	}
	if s.Monitor.Output() == monitor.OutputComplex {
		s.holdSP = s.hostEst.State().Pos
	}
	return s.holdSP
}

// complexSetpoint advances the mission (if any) and returns the
// setpoint the complex controller tracks this cycle.
func (s *System) complexSetpoint(now time.Duration, pos physics.Vec3, dt float64) control.Setpoint {
	if s.mission == nil {
		return control.Setpoint{Pos: s.Cfg.Setpoint}
	}
	sp := s.mission.Update(now, pos, dt)
	s.curSetpoint = sp.Pos
	return sp
}

// selectCommand is the Simplex decision point: the PWM driver applies
// the complex controller's output until the monitor switches.
func (s *System) selectCommand() [4]float64 {
	if !s.Cfg.ComplexInContainer {
		return s.hostCmd
	}
	if s.Monitor.Output() == monitor.OutputSafety {
		return s.safetyCmd
	}
	return s.complexCmd
}

// buildCCEController starts the PX4-style complex controller inside
// the container: it consumes the sensor stream from port 14660 and
// emits motor frames to host port 14600 at 400 Hz (Table I).
func (s *System) buildCCEController() error {
	// Per-run input cache and stream sequence live on the System (so
	// Reset rewinds them); the encode scratch is reused across jobs:
	// Container.Send copies the frame into the network pool before
	// returning.
	task := &sched.Task{
		Name: "px4-complex", Core: CoreContainer, Priority: sched.PrioContainer,
		Period: 2500 * time.Microsecond, WCET: 900 * time.Microsecond,
		AccessRate: 25e6, MemBound: 0.6,
		Work: func(now time.Duration) {
			// Drain the sensor port into the input cache.
			for {
				pkt, ok := s.cceSensorEP.Recv()
				if !ok {
					break
				}
				frame, _, err := mavlink.Decode(pkt.Payload)
				if err != nil {
					continue
				}
				switch frame.MsgID {
				case mavlink.MsgIDIMU:
					if r, err := mavlink.DecodeIMU(frame.Payload); err == nil {
						s.cceEst.FeedIMU(r)
					}
				case mavlink.MsgIDBaro:
					if r, err := mavlink.DecodeBaro(frame.Payload); err == nil {
						s.cceIn.Baro = r
					}
				case mavlink.MsgIDGPS:
					if r, err := mavlink.DecodeGPS(frame.Payload); err == nil {
						s.cceEst.FeedFix(r)
					}
				case mavlink.MsgIDRC:
					if r, err := mavlink.DecodeRC(frame.Payload); err == nil {
						s.cceIn.RC = r
					}
				}
			}
			s.cceIn.IMU = s.cceEst.Inputs(s.cceIn.Baro, s.cceIn.RC)
			s.cceIn.GPS = s.cceEst.GPSLike()
			cmd := s.complexCtl.Compute(&s.cceIn, s.complexSetpoint(now, s.cceIn.GPS.Pos, 1.0/400))
			s.cceSeq++
			var payload []byte
			s.cceMotorPayload, payload = mavlink.AppendMotor(s.cceMotorPayload[:0], mavlink.MotorCommand{
				TimeUS: nowUS(now), Motors: cmd, Seq: s.cceSeq, Armed: true,
			})
			s.cceMotorFrame = mavlink.AppendEncode(s.cceMotorFrame[:0], mavlink.Frame{
				Seq: uint8(s.cceSeq), SysID: 2, CompID: 1, MsgID: mavlink.MsgIDMotor, Payload: payload,
			})
			// Best-effort UDP: namespace violations would be bugs, but
			// a full fabric just drops.
			_ = s.CCE.Send(9001, PortMotor, s.cceMotorFrame)
		},
	}
	if err := s.CCE.StartTask(task); err != nil {
		return err
	}
	s.complexTask = task
	return nil
}

// buildHostComplexController runs the complex controller on the host
// (the memory-DoS experiment's deployment).
func (s *System) buildHostComplexController() {
	s.CPU.Add(&sched.Task{
		Name: "px4-host", Core: CoreHost, Priority: 30,
		Period: 4 * time.Millisecond, WCET: 1200 * time.Microsecond,
		AccessRate: 30e6, MemBound: 0.8,
		Work: func(now time.Duration) {
			in := s.hostInputs()
			s.hostCmd = s.complexCtl.Compute(in, s.complexSetpoint(now, in.GPS.Pos, 1.0/250))
		},
	})
}

// buildEngineProcs registers the per-tick infrastructure: network
// delivery, scheduler, wind, physics, telemetry.
func (s *System) buildEngineProcs() {
	s.Engine.Register("net", sim.Tick, 0, sim.ProcFunc(func(now time.Duration) {
		s.Net.Step(now)
	}))
	s.Engine.Register("sched", sim.Tick, 10, sim.ProcFunc(func(now time.Duration) {
		s.CPU.Tick(now)
	}))
	if s.wind != nil {
		s.Engine.Register("wind", 10*time.Millisecond, 19, sim.ProcFunc(func(now time.Duration) {
			s.Quad.SetDisturbance(s.wind.Step(0.01), physics.Vec3{})
		}))
	}
	s.Engine.Register("physics", sim.Tick, 20, sim.ProcFunc(func(now time.Duration) {
		s.Quad.Step(physDT)
		if crashed, at := s.Quad.Crashed(); crashed {
			if already, _ := s.Log.Crashed(); !already {
				crashAt := time.Duration(at * float64(time.Second))
				s.Log.MarkCrash(crashAt)
				s.Trace.Add(now, "physics", "vehicle crashed")
				if s.Hooks.OnCrash != nil {
					s.Hooks.OnCrash(crashAt)
				}
			}
		}
	}))
	period := time.Duration(float64(time.Second) / s.Cfg.TelemetryRate)
	s.Engine.Register("telemetry", period, 30, sim.ProcFunc(func(now time.Duration) {
		roll, pitch, yaw := s.Quad.State.RollPitchYaw()
		src := "complex"
		if !s.Cfg.ComplexInContainer {
			src = "host"
		} else if s.Monitor.Output() == monitor.OutputSafety {
			src = "safety"
		}
		sp := s.curSetpoint
		if s.mission != nil && s.Monitor.Output() == monitor.OutputSafety {
			sp = s.holdSP
		}
		sample := telemetry.Sample{
			Time: now, Setpoint: sp, Position: s.Quad.State.Pos,
			Roll: roll, Pitch: pitch, Yaw: yaw, Source: src,
		}
		s.Log.Add(sample)
		if s.Hooks.OnSample != nil {
			s.Hooks.OnSample(now, sample)
		}
	}))
}

// scheduleAttack arms the configured attack plan.
func (s *System) scheduleAttack() {
	plan := s.Cfg.Attack
	switch plan.Kind {
	case attack.KindNone:
		return
	case attack.KindBandwidth:
		s.Engine.At(plan.Start, func(now time.Duration) {
			t := attack.Bandwidth(CoreContainer, plan.Rate)
			if err := s.CCE.StartTask(t); err != nil {
				s.Trace.Add(now, "attack", "bandwidth launch failed: %v", err)
				return
			}
			s.Trace.Add(now, "attack", "bandwidth attack launched (%.0f acc/s)", t.AccessRate)
		})
	case attack.KindFlood:
		s.Engine.At(plan.Start, func(now time.Duration) {
			s.flood = attack.NewFlood(func(p []byte) {
				_ = s.CCE.Send(40000, PortMotor, p)
			}, plan.Rate, 64)
			if err := s.CCE.StartTask(s.flood.Task(CoreContainer)); err != nil {
				s.Trace.Add(now, "attack", "flood launch failed: %v", err)
				return
			}
			s.Trace.Add(now, "attack", "UDP flood launched (%.0f pkt/s)", s.flood.PacketsPerSecond)
		})
	case attack.KindKill:
		s.Engine.At(plan.Start, func(now time.Duration) {
			if s.complexTask != nil {
				s.CCE.StopTask(s.complexTask)
				s.Trace.Add(now, "attack", "complex controller killed")
			}
		})
	case attack.KindCPUHog:
		s.Engine.At(plan.Start, func(now time.Duration) {
			t := attack.CPUHog(CoreContainer, sched.PrioContainer)
			if err := s.CCE.StartTask(t); err != nil {
				s.Trace.Add(now, "attack", "cpu hog launch failed: %v", err)
				return
			}
			s.Trace.Add(now, "attack", "CPU hog launched")
		})
	}
}

// Schedulability runs fixed-priority response-time analysis over the
// system's current task set — the paper's §VII future work ("provide
// hard real-time proof and schedulability analysis"). Call it on a
// freshly built System to audit the flight-critical task set before
// any attack task is admitted.
func (s *System) Schedulability() []sched.AnalysisResult {
	return sched.Analyze(s.CPU)
}

// AddSystemBaseline registers the idle OS load present in every
// Table-II case: kernel threads and interrupt handling, ~5% on core 0
// and ~1% on the others (calibrated to the paper's native row).
func AddSystemBaseline(cpu *sched.CPU) {
	utils := []float64{0.05, 0.01, 0.01, 0.01}
	const period = 10 * time.Millisecond
	for core, u := range utils {
		cpu.Add(&sched.Task{
			Name:     fmt.Sprintf("sys-core%d", core),
			Core:     core,
			Priority: sched.PrioInterrupt,
			Period:   period,
			WCET:     time.Duration(u * float64(period)),
			// Kernel housekeeping touches memory lightly.
			AccessRate: 1e6, MemBound: 0.3,
		})
	}
}
