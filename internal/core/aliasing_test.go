package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"containerdrone/internal/sim"
)

// TestSnapshotForkAliasing pins the Snapshot ownership contract: a
// capture shares no memory with its source or its forks. Four systems
// — the donor and three restored siblings — run to completion
// concurrently from one snapshot; under -race any aliased slice, map,
// or pointer between them (or back into the snapshot) is a data race,
// and any logical aliasing shows up as a diverged outcome. A final
// sequential fork from the same (now heavily exercised) snapshot
// proves the capture itself survived its forks untouched.
func TestSnapshotForkAliasing(t *testing.T) {
	if testing.Short() {
		t.Skip("aliasing stress flies five full scenarios; run without -short")
	}
	const seed = 11
	const dur = 12 * time.Second
	ctx := context.Background()
	for _, name := range []string{"udpflood", "mav-replay"} {
		t.Run(name, func(t *testing.T) {
			cfg, err := Build(name, Options{Seed: seed, Duration: dur})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			coldRes := cold.Run()

			donor, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			forkTick := sim.TicksFor(2 * time.Second)
			if err := donor.RunToTickContext(ctx, forkTick); err != nil {
				t.Fatal(err)
			}
			snap := donor.Snapshot()

			// Donor and three forks race to the end of the flight.
			systems := []*System{donor}
			for i := 0; i < 3; i++ {
				fork, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fork.RestoreFrom(seed, snap)
				systems = append(systems, fork)
			}
			results := make([]Result, len(systems))
			errs := make([]error, len(systems))
			var wg sync.WaitGroup
			for i, sys := range systems {
				wg.Add(1)
				go func(i int, sys *System) {
					defer wg.Done()
					errs[i] = sys.ResumeContextInto(ctx, &results[i])
				}(i, sys)
			}
			wg.Wait()
			for i := range systems {
				if errs[i] != nil {
					t.Fatalf("system %d: %v", i, errs[i])
				}
				assertSameOutcome(t, "concurrent fork", coldRes, &results[i])
			}

			// The snapshot is read-only to its forks: one more restore
			// after all that traffic must still reproduce the cold run.
			late, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			late.RestoreFrom(seed, snap)
			var lateRes Result
			if err := late.ResumeContextInto(ctx, &lateRes); err != nil {
				t.Fatal(err)
			}
			assertSameOutcome(t, "fork after concurrent siblings", coldRes, &lateRes)
		})
	}
}
