package core

import (
	"fmt"
	"time"

	"containerdrone/internal/sched"
	"containerdrone/internal/vm"
)

// VMDeploymentCheck evaluates the VirtualDrone-style alternative the
// paper argues against (§VI): running the complex controller inside a
// QEMU virtual machine instead of a container. It builds the VM, wraps
// the controller's task, and reports whether the deployment is
// feasible. With TCG translation overhead the 400 Hz / 0.9 ms
// controller inflates past its own period — "the high latency
// introduced by the virtual machine makes it impossible to enforce
// more real-time resource control."
type VMDeploymentCheck struct {
	// Feasible is true when the wrapped controller still fits its
	// period.
	Feasible bool
	// Reason explains an infeasible result.
	Reason string
	// EmulatedWCET is the controller's WCET after translation
	// overhead.
	EmulatedWCET time.Duration
	// IdleCost is the mean standing idle-rate loss of the VM itself.
	IdleCost float64
}

// CheckVMDeployment runs the analysis with the default QEMU model and
// the ContainerDrone complex-controller task shape.
func CheckVMDeployment() (VMDeploymentCheck, error) {
	cpu := sched.NewCPU(NumCores, 100*time.Microsecond, nil, nil)
	AddSystemBaseline(cpu)
	cfg := vm.DefaultQEMUConfig()
	machine, err := vm.Start(cpu, cfg)
	if err != nil {
		return VMDeploymentCheck{}, err
	}
	// Standing cost: run 5 s idle and average the idle-rate loss.
	for i := int64(0); i < 50000; i++ {
		cpu.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
	loss := 0.0
	for core := 0; core < NumCores; core++ {
		loss += 1 - cpu.IdleRate(core)
	}
	res := VMDeploymentCheck{IdleCost: loss / NumCores}

	guest := &sched.Task{
		Name: "px4-complex", Core: CoreContainer, Priority: sched.PrioContainer,
		Period: 2500 * time.Microsecond, WCET: 900 * time.Microsecond,
	}
	res.EmulatedWCET = time.Duration(float64(guest.WCET) * cfg.TranslationOverhead)
	if _, err := machine.WrapGuestTask(guest, CoreContainer); err != nil {
		res.Feasible = false
		res.Reason = fmt.Sprintf("controller cannot run in the VM: %v", err)
		return res, nil
	}
	res.Feasible = true
	return res, nil
}
