package core

import (
	"testing"
	"time"
)

// TestHCETaskSetSchedulable is the static half of the paper's safety
// argument (§VII future work): the host control environment's task
// set, at nominal WCETs, is provably schedulable on every core before
// any attack launches.
func TestHCETaskSetSchedulable(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range s.Schedulability() {
		if !res.Schedulable {
			t.Errorf("core %d not schedulable (U=%.3f):", res.Core, res.Utilization)
			for _, rt := range res.Tasks {
				t.Errorf("  %-16s prio %2d R=%v ok=%v unbounded=%v",
					rt.Task.Name, rt.Task.Priority, rt.Response, rt.Schedulable, rt.Unbounded)
			}
		}
		if res.Utilization > 0.6 {
			t.Errorf("core %d utilization %.3f leaves too little headroom", res.Core, res.Utilization)
		}
	}
}

// TestAnalysisBoundsHoldInSimulation cross-validates the analysis: no
// flight-critical task may exceed its analytical response-time bound
// during an attack-free flight (memory model active but uncontended).
func TestAnalysisBoundsHoldInSimulation(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[string]struct {
		response float64 // seconds
	}{}
	for _, res := range s.Schedulability() {
		for _, rt := range res.Tasks {
			if !rt.Task.Busy() && rt.Schedulable {
				bounds[rt.Task.Name] = struct{ response float64 }{rt.Response.Seconds()}
			}
		}
	}
	s.Run()
	for _, task := range s.CPU.Tasks() {
		b, ok := bounds[task.Name]
		if !ok {
			continue
		}
		got := task.Stats().MaxLatency.Seconds()
		// Allow one tick of quantization slack.
		if got > b.response+0.0002 {
			t.Errorf("%s simulated max latency %.4fs exceeds RTA bound %.4fs",
				task.Name, got, b.response)
		}
	}
}

// TestBandwidthAttackUnboundsItsCore documents the analysis view of
// the memory attack: the busy Bandwidth task makes core 3 unbounded
// for anything below it, while host cores remain schedulable — CPU
// isolation holds even when the memory channel does not.
func TestBandwidthAttackUnboundsItsCore(t *testing.T) {
	cfg := ScenarioMemDoS(false)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Advance past the attack launch so the Bandwidth task is in the
	// task set, then re-analyze.
	s.Engine.RunUntil(cfg.Attack.Start + time.Second)
	results := s.Schedulability()
	for _, res := range results {
		if res.Core == CoreContainer {
			continue // the attacker's own core has no deadline claim
		}
		if !res.Schedulable {
			t.Errorf("host core %d lost schedulability to a container-core attack", res.Core)
		}
	}
	// The container core now hosts a busy-loop task; utilization 1.
	if got := results[CoreContainer].Utilization; got < 1 {
		t.Errorf("container core utilization %.3f, want ≥1 with the hog", got)
	}
}
