package core

import (
	"testing"
	"time"

	"containerdrone/internal/monitor"
)

// Multi-seed robustness: the experiment outcomes must hold across
// noise/wind realizations, not just at the documented seed.

func TestBaselineStableAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := ScenarioBaseline()
		cfg.Seed = seed
		cfg.Duration = 12 * time.Second
		r := mustRun(t, cfg)
		if r.Crashed {
			t.Errorf("seed %d: baseline crashed at %v", seed, r.CrashTime)
		}
		if r.Switched {
			t.Errorf("seed %d: baseline tripped %v", seed, r.SwitchRule)
		}
	}
}

func TestFig4CrashesAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := ScenarioMemDoS(false)
		cfg.Seed = seed
		r := mustRun(t, cfg)
		if !r.Crashed {
			t.Errorf("seed %d: unprotected memory DoS did not crash", seed)
		}
	}
}

func TestFig5SurvivesAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := ScenarioMemDoS(true)
		cfg.Seed = seed
		r := mustRun(t, cfg)
		if r.Crashed {
			t.Errorf("seed %d: MemGuard-protected flight crashed at %v", seed, r.CrashTime)
		}
	}
}

func TestFig6RecoversAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := ScenarioKill()
		cfg.Seed = seed
		r := mustRun(t, cfg)
		if r.Crashed {
			t.Errorf("seed %d: kill scenario crashed", seed)
			continue
		}
		if !r.Switched || r.SwitchRule != monitor.RuleInterval {
			t.Errorf("seed %d: switch = %v (%v)", seed, r.Switched, r.SwitchRule)
		}
	}
}

func TestFig7RecoversAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := ScenarioFlood()
		cfg.Seed = seed
		r := mustRun(t, cfg)
		if r.Crashed {
			t.Errorf("seed %d: flood scenario crashed at %v", seed, r.CrashTime)
			continue
		}
		if !r.Switched {
			t.Errorf("seed %d: flood never tripped the monitor", seed)
		}
	}
}
