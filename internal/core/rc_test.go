package core

import (
	"testing"
	"time"
)

// TestManualToPositionHandOff reproduces the paper's flight procedure:
// the operator holds the vehicle in manual mode, then flips the mode
// switch; position control takes over and the flight proceeds
// normally. The RC stream carries the mode through the full stack
// (driver → MAVLink → container → controller).
func TestManualToPositionHandOff(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 15 * time.Second
	cfg.ManualUntil = 3 * time.Second
	// Arm only after the return-to-setpoint transient: the recovering
	// vehicle legitimately tilts harder than the hover-calibrated
	// attitude reference allows (same trade-off as mission flight).
	cfg.ArmDelay = 8 * time.Second
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatalf("crashed at %v during mode hand-off", r.CrashTime)
	}
	if r.Switched {
		t.Fatalf("monitor tripped (%v) during hand-off", r.SwitchRule)
	}
	// Manual phase with centered sticks drifts with the wind; the
	// position phase must re-converge to the setpoint.
	tail := r.Log.WindowMetrics(cfg.Duration-5*time.Second, cfg.Duration)
	if tail.RMSError > 0.25 {
		t.Fatalf("post-hand-off RMS %.3fm — position mode did not take over", tail.RMSError)
	}
}

// TestManualPhaseActuallyManual verifies the mode is honored: during
// the manual window the vehicle does not track the position setpoint
// (centered sticks hold attitude, not position) while wind pushes it.
func TestManualPhaseActuallyManual(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 6 * time.Second
	cfg.ManualUntil = 6 * time.Second // manual for the whole run
	cfg.MonitorEnabled = false
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatal("level manual flight crashed in 6s")
	}
	// With pure attitude hold and steady wind, position drifts more
	// than position mode would ever allow.
	if r.Metrics.MaxDeviation < 0.1 {
		t.Fatalf("manual-mode deviation %.3fm suspiciously tight — mode not honored?",
			r.Metrics.MaxDeviation)
	}
}
