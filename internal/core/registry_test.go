package core

import (
	"reflect"
	"testing"
	"time"
)

// TestAllScenariosBuildAndRun is the registry's liveness contract:
// every registered scenario builds and completes a short run without
// panicking, both as registered and with the attack pulled forward so
// its attack path actually executes inside the short window.
func TestAllScenariosBuildAndRun(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, variant := range []struct {
			name string
			opts Options
		}{
			{"default", Options{Duration: 2 * time.Second}},
			{"early-attack", Options{Duration: 2 * time.Second,
				Params: map[string]float64{"attack.start": 0.5, "monitor.arm-delay": 0.2}}},
		} {
			t.Run(sc.Name+"/"+variant.name, func(t *testing.T) {
				cfg, err := Build(sc.Name, variant.opts)
				if err != nil {
					t.Fatalf("Build(%q) failed: %v", sc.Name, err)
				}
				if cfg.Duration != 2*time.Second {
					t.Fatalf("duration override ignored: %v", cfg.Duration)
				}
				sys, err := New(cfg)
				if err != nil {
					t.Fatalf("New failed: %v", err)
				}
				res := sys.Run()
				if res.Log.Len() == 0 {
					t.Fatal("run produced no telemetry")
				}
			})
		}
	}
}

func TestBuildUnknownScenario(t *testing.T) {
	if _, err := Build("no-such-scenario", Options{}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

func TestBuildUnknownParam(t *testing.T) {
	_, err := Build("baseline", Options{Params: map[string]float64{"no.such.key": 1}})
	if err == nil {
		t.Fatal("unknown parameter did not error")
	}
}

func TestBuildAppliesOptions(t *testing.T) {
	cfg := MustBuild("memdos", Options{
		Seed:     42,
		Duration: 7 * time.Second,
		Params: map[string]float64{
			"memguard.enabled": 0,
			"attack.rate":      2e9,
			"attack.start":     5,
			"bus.capacity":     50e6,
		},
	})
	if cfg.Seed != 42 || cfg.Duration != 7*time.Second {
		t.Fatalf("seed/duration = %d/%v", cfg.Seed, cfg.Duration)
	}
	if cfg.MemGuardEnabled {
		t.Fatal("memguard.enabled=0 not applied")
	}
	if cfg.Attack.Rate != 2e9 || cfg.Attack.Start != 5*time.Second {
		t.Fatalf("attack = %+v", cfg.Attack)
	}
	if cfg.BusCapacity != 50e6 {
		t.Fatalf("bus capacity = %v", cfg.BusCapacity)
	}
}

// TestBuildDoesNotMutateOptions guards the campaign path: workers
// share Point.Params maps across goroutines, so Build must treat its
// options as read-only.
func TestBuildDoesNotMutateOptions(t *testing.T) {
	params := map[string]float64{"attack.rate": 1e9}
	opts := Options{Params: params}
	MustBuild("memdos", opts)
	if len(params) != 1 || params["attack.rate"] != 1e9 {
		t.Fatalf("Build mutated caller params: %v", params)
	}
}

// TestScenarioWrappersMatchRegistry pins the legacy constructors to
// their registry entries.
func TestScenarioWrappersMatchRegistry(t *testing.T) {
	cases := []struct {
		name string
		got  Config
	}{
		{"baseline", ScenarioBaseline()},
		{"memdos", ScenarioMemDoS(true)},
		{"memdos-unguarded", ScenarioMemDoS(false)},
		{"kill", ScenarioKill()},
		{"udpflood", ScenarioFlood()},
	}
	for _, c := range cases {
		want := MustBuild(c.name, Options{})
		if !reflect.DeepEqual(c.got, want) {
			t.Errorf("wrapper for %q diverged from registry build", c.name)
		}
	}
}

func TestParamKeysHaveDescriptions(t *testing.T) {
	for _, k := range ParamKeys() {
		if ParamDesc(k) == "" {
			t.Errorf("parameter %q has no description", k)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("baseline", "dup", func(Options) Config { return DefaultConfig() })
}
