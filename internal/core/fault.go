package core

import (
	"time"

	"containerdrone/internal/fault"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
)

// faultStepPeriod is the cadence of time-varying injectors (spoof
// drift, rotor decay): 100 Hz tracks a drifting fault far faster than
// any sensor that observes it.
const faultStepPeriod = 10 * time.Millisecond

// replaySourcePort identifies the on-path replay adversary on the
// bridge. It is not the container: a MAVLink replay needs only a tap
// on the shared medium, which is why it evades the container's
// cpuset/priority/namespace confinement entirely.
var replaySource = netsim.Addr{Host: "mitm", Port: 45000}

// scheduleFaults arms every fault in the configured plan. Each spec
// becomes one fault.Injector closing over the member it strikes
// (Spec.Member, leader by default) and the surface it corrupts;
// fault.Arm sequences Begin/Step/End on the engine.
func (s *System) scheduleFaults() {
	for i, sp := range s.Cfg.Faults.Specs {
		sp = sp.WithDefaults()
		name := "fault-" + sp.Kind.String()
		if len(s.Cfg.Faults.Specs) > 1 {
			name += string(rune('0' + i%10))
		}
		inj, stepPeriod := s.buildInjector(sp)
		if inj == nil {
			continue
		}
		fault.Arm(s.Engine, name, s.Cfg.Duration, sp, inj, stepPeriod)
	}
	// Capture legitimate motor frames ahead of each replay window, on
	// the member the adversary taps (Spec.FromMember). Each tapped
	// member's cap is the largest capture magnitude across the replay
	// specs that tap it.
	for _, sp := range s.Cfg.Faults.Specs {
		if sp.Kind != fault.KindMAVReplay {
			continue
		}
		src := s.drones[sp.FromMember]
		if n := int(sp.WithDefaults().Magnitude); n > src.replayMax {
			src.replayMax = n
			src.replayFrames = make([][]byte, 0, n)
		}
	}
}

// buildInjector maps one fault spec to its injector and Step cadence
// (zero for window-only faults).
func (s *System) buildInjector(sp fault.Spec) (fault.Injector, time.Duration) {
	d := s.drones[sp.Member]
	switch sp.Kind {
	case fault.KindGPSSpoof:
		return s.gpsSpoofInjector(d, sp), faultStepPeriod
	case fault.KindIMUBias:
		return s.imuBiasInjector(d, sp), 0
	case fault.KindBaroDrop:
		return s.baroDropInjector(d), 0
	case fault.KindNetSplit:
		return s.netSplitInjector(d), 0
	case fault.KindMAVReplay:
		period := time.Duration(float64(time.Second) / sp.Rate)
		return s.mavReplayInjector(d, sp), period
	case fault.KindJitter:
		return s.jitterInjector(d, sp), 0
	case fault.KindPrioInv:
		return s.prioInvInjector(d, sp), 0
	case fault.KindRotorDecay:
		return s.rotorDecayInjector(d, sp), faultStepPeriod
	case fault.KindFleetSplit:
		return s.fleetSplitInjector(d), 0
	default:
		return nil, 0
	}
}

// gpsSpoofInjector drifts the GPS/Vicon position offset: the spoofer
// walks its lie away from the truth at Rate m/s (+X), starting from
// Magnitude meters. The position controller chases the lie, so the
// vehicle physically drifts the opposite way while every estimator —
// host and CCE alike — still believes it is on station. This is the
// stealth fault: no rule observable from spoofed state can fire.
//
// The injector tracks its own contribution and adds/removes it from
// the shared offset, so overlapping spoof windows compose additively.
func (s *System) gpsSpoofInjector(d *Drone, sp fault.Spec) fault.Injector {
	var start time.Duration
	var applied physics.Vec3
	retarget := func(to physics.Vec3) {
		f := d.suite.Faults()
		f.GPSOffset = f.GPSOffset.Sub(applied).Add(to)
		d.suite.SetFaults(f)
		applied = to
	}
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			start = now
			applied = physics.Vec3{} // fresh window (and fresh warm-pool run)
			d.gpsSpoofDepth++
			s.Trace.Add(now, d.compFault, "gps-spoof begins: drift %.2f m/s", sp.Rate)
		},
		StepF: func(now time.Duration) {
			retarget(physics.Vec3{X: sp.Magnitude + sp.Rate*(now-start).Seconds()})
		},
		EndF: func(now time.Duration) {
			retarget(physics.Vec3{})
			d.gpsSpoofDepth--
			if d.gpsSpoofDepth == 0 {
				// Snap the accumulated contributions to exactly zero:
				// float add/subtract of overlapping windows leaves dust.
				f := d.suite.Faults()
				f.GPSOffset = physics.Vec3{}
				d.suite.SetFaults(f)
			}
			s.Trace.Add(now, d.compFault, "gps-spoof ends")
		},
	}
}

// imuBiasInjector switches a constant extra gyro bias on: the
// estimator integrates the lie, the controllers fight the resulting
// phantom rotation, and the real attitude diverges until the
// accelerometer correction balances the bias. Contributions are
// additive, so overlapping bias windows compose.
func (s *System) imuBiasInjector(d *Drone, sp fault.Spec) fault.Injector {
	bias := physics.Vec3{X: sp.Magnitude}
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			d.gyroBiasDepth++
			f := d.suite.Faults()
			f.GyroBias = f.GyroBias.Add(bias)
			d.suite.SetFaults(f)
			s.Trace.Add(now, d.compFault, "imu-bias begins: %.3f rad/s", sp.Magnitude)
		},
		EndF: func(now time.Duration) {
			d.gyroBiasDepth--
			f := d.suite.Faults()
			f.GyroBias = f.GyroBias.Sub(bias)
			if d.gyroBiasDepth == 0 {
				// Snap to exactly zero (see gpsSpoofInjector).
				f.GyroBias = physics.Vec3{}
			}
			d.suite.SetFaults(f)
			s.Trace.Add(now, d.compFault, "imu-bias ends")
		},
	}
}

// baroDropInjector wedges the barometer driver: SampleBaro returns
// the last healthy reading, timestamp and all, until the window ends.
// Depth-counted so overlapping windows heal only when the last closes.
func (s *System) baroDropInjector(d *Drone) fault.Injector {
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			d.baroDropDepth++
			f := d.suite.Faults()
			f.BaroFrozen = true
			d.suite.SetFaults(f)
			s.Trace.Add(now, d.compFault, "baro-drop begins")
		},
		EndF: func(now time.Duration) {
			d.baroDropDepth--
			if d.baroDropDepth == 0 {
				f := d.suite.Faults()
				f.BaroFrozen = false
				d.suite.SetFaults(f)
			}
			s.Trace.Add(now, d.compFault, "baro-drop ends")
		},
	}
}

// netSplitInjector partitions the member's HCE↔CCE bridge in both
// directions: sensor frames stop reaching the container and motor
// frames stop reaching the host — docker0 going down mid-flight. The
// receiving-interval rule is the designed detector. Depth-counted so
// overlapping windows heal only when the last closes.
func (s *System) netSplitInjector(d *Drone) fault.Injector {
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			d.splitDepth++
			s.Net.SetPartition(d.hostName, d.CCE.NetHost(), true)
			s.Trace.Add(now, d.compFault, "netsplit begins: %s <-> %s partitioned", d.hostName, d.CCE.NetHost())
		},
		EndF: func(now time.Duration) {
			d.splitDepth--
			if d.splitDepth == 0 {
				s.Net.SetPartition(d.hostName, d.CCE.NetHost(), false)
			}
			s.Trace.Add(now, d.compFault, "netsplit heals")
		},
	}
}

// fleetSplitInjector partitions a member's host from the ground
// control station: the member stops hearing formation updates (and the
// GCS stops hearing the member). Splitting the leader starves every
// follower of fresh slots — they hold the last formation they heard —
// while splitting a follower strands just that member. Depth-counted
// like netsplit. Build-time validation guarantees a fleet exists.
func (s *System) fleetSplitInjector(d *Drone) fault.Injector {
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			d.fleetSplitDepth++
			s.Net.SetPartition(d.hostName, gcsHost, true)
			s.Trace.Add(now, d.compFault, "fleet-split begins: member %d <-> %s partitioned", d.idx, gcsHost)
		},
		EndF: func(now time.Duration) {
			d.fleetSplitDepth--
			if d.fleetSplitDepth == 0 {
				s.Net.SetPartition(d.hostName, gcsHost, false)
			}
			s.Trace.Add(now, d.compFault, "fleet-split heals")
		},
	}
}

// mavReplayInjector replays captured motor frames from an on-path
// tap: frames are cryptographically valid MAVLink (correct CRC, known
// msgid), so the receiver accepts them and the interval rule stays
// satisfied — but the commands are stale, steering the vehicle with
// the past. Only the attitude/envelope rules can notice. In a fleet,
// the tap may sit on one member's bridge (Spec.FromMember) and the
// injection strike another (Spec.Member): frames from drone A are
// valid MAVLink at drone B too, since Table-I streams carry no member
// identity — the cross-drone replay the shared medium invites.
func (s *System) mavReplayInjector(d *Drone, sp fault.Spec) fault.Injector {
	src := s.drones[sp.FromMember]
	var route *netsim.Route
	var idx int
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			route = s.Net.Route(replaySource, netsim.Addr{Host: d.hostName, Port: PortMotor})
			idx = 0 // restart the capture cursor (fresh window, fresh warm-pool run)
			if src != d {
				s.Trace.Add(now, d.compFault, "mav-replay begins: %d frames captured at member %d, re-injected at member %d, %.0f/s",
					len(src.replayFrames), src.idx, d.idx, sp.Rate)
			} else {
				s.Trace.Add(now, d.compFault, "mav-replay begins: %d captured frames at %.0f/s",
					len(src.replayFrames), sp.Rate)
			}
		},
		StepF: func(now time.Duration) {
			if len(src.replayFrames) == 0 {
				return
			}
			route.Send(src.replayFrames[idx])
			idx++
			if idx == len(src.replayFrames) {
				idx = 0
			}
		},
		EndF: func(now time.Duration) {
			s.Trace.Add(now, d.compFault, "mav-replay ends")
		},
	}
}

// jitterInjector degrades the bridge with gaussian extra latency and
// independent loss. Large jitter relative to the 2.5 ms motor period
// also reorders frames, since delivery follows per-packet deadlines.
// The link model is fabric-global, so in a fleet every member feels
// the weather; the member selector only attributes the trace line.
// The healthy link is captured once when the first jitter window
// opens; while windows overlap the link runs the most recently
// opened window still active (a closing window reapplies the next
// one down the stack), and the last End heals to the captured
// baseline — composed jitter faults cannot leave a degraded link
// behind nor keep a closed window's severity.
func (s *System) jitterInjector(d *Drone, sp fault.Spec) fault.Injector {
	degraded := &netsim.LinkParams{
		Jitter: time.Duration(sp.Magnitude * float64(time.Second)),
		Loss:   sp.Rate,
	}
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			if len(s.jitterStack) == 0 {
				s.baseLink = s.Net.Link()
			}
			degraded.Latency = s.baseLink.Latency
			s.jitterStack = append(s.jitterStack, degraded)
			s.Net.SetLink(*degraded)
			s.Trace.Add(now, d.compFault, "jitter begins: σ=%.0fms loss=%.0f%%",
				sp.Magnitude*1e3, sp.Rate*100)
		},
		EndF: func(now time.Duration) {
			for i, p := range s.jitterStack {
				if p == degraded {
					s.jitterStack = append(s.jitterStack[:i], s.jitterStack[i+1:]...)
					break
				}
			}
			if n := len(s.jitterStack); n > 0 {
				s.Net.SetLink(*s.jitterStack[n-1])
			} else {
				s.Net.SetLink(s.baseLink)
			}
			s.Trace.Add(now, d.compFault, "jitter ends")
		},
	}
}

// prioInvInjector starves the member's safety core: a busy spinner
// above driver priority occupies the core carrying the safety
// controller, the receiver, and the monitor itself. While it runs
// nothing on that core executes — including detection; the interval
// rule can only fire after the burst ends and the monitor task runs
// again.
func (s *System) prioInvInjector(d *Drone, sp fault.Spec) fault.Injector {
	var task *sched.Task
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			task = fault.PrioInversion(CoreSafety, int(sp.Magnitude))
			d.CPU.Add(task)
			s.Trace.Add(now, d.compFault, "prio-inv begins: FIFO %d spinner on core %d",
				task.Priority, task.Core)
		},
		EndF: func(now time.Duration) {
			if task != nil {
				d.CPU.Remove(task)
				task = nil
			}
			s.Trace.Add(now, d.compFault, "prio-inv ends")
		},
	}
}

// rotorDecayInjector ramps rotor 0's thrust efficiency down by Rate
// per second until Magnitude of it is gone. The asymmetric thrust
// deficit torques the airframe continuously; damage is permanent — a
// closing window stops the decay but does not restore the rotor.
func (s *System) rotorDecayInjector(d *Drone, sp fault.Spec) fault.Injector {
	var start time.Duration
	return fault.FuncInjector{
		BeginF: func(now time.Duration) {
			start = now
			s.Trace.Add(now, d.compFault, "rotor-decay begins: rotor 0, %.0f%% loss at %.0f%%/s",
				sp.Magnitude*100, sp.Rate*100)
		},
		StepF: func(now time.Duration) {
			loss := sp.Rate * (now - start).Seconds()
			if loss > sp.Magnitude {
				loss = sp.Magnitude
			}
			d.Quad.SetRotorEfficiency(0, 1-loss)
		},
		EndF: func(now time.Duration) {
			s.Trace.Add(now, d.compFault, "rotor-decay ends (damage persists)")
		},
	}
}
