// Package core assembles the ContainerDrone framework: the host
// control environment (sensor drivers, feeder threads, safety
// controller, security monitor, PWM output), the container control
// environment (Docker-style runtime, PX4-style complex controller),
// and the shared physical substrates (quad-core FIFO scheduler, DRAM
// bus, MemGuard, UDP bridge, quadrotor physics) into one deterministic
// co-simulation.
//
// Every experiment in the paper is a Config: which controller runs
// where, which protections are on, and which attack fires when.
package core

import (
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/control"
	"containerdrone/internal/fault"
	"containerdrone/internal/monitor"
	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// Network ports from Table I: the CCE receives sensor data on 14660
// and the HCE receives motor output on 14600.
const (
	PortSensors = 14660
	PortMotor   = 14600
)

// Core assignment: three host cores and one container core, the
// paper's cpuset split ("one of the four cores is assigned exclusively
// for CCE use").
const (
	CoreDriver    = 0 // kernel drivers, PWM output
	CoreSafety    = 1 // safety controller, receiver, monitor
	CoreHost      = 2 // host-side complex controller (memdos scenario)
	CoreContainer = 3 // the CCE core
	NumCores      = 4
)

// MaxDrones bounds the fleet size a System will host. Eight members
// is far past the scenario set's needs and keeps a mistyped sweep
// ("drones=100") from building 100 full stacks.
const MaxDrones = 8

// DefaultFleetSpacing is the line-formation spacing between adjacent
// members, in meters, when FleetSpacing is zero.
const DefaultFleetSpacing = 2.0

// Config fully describes one scenario run.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// Duration is the simulated flight length.
	Duration time.Duration
	// Setpoint is the position-hold target (experiments hover at it).
	Setpoint physics.Vec3

	// Drones is the fleet size: that many full drone stacks share one
	// network fabric and one ground control station. 0 and 1 both mean
	// the classic single-vehicle scenario (no GCS traffic at all).
	// Member 0 is the leader: it flies Mission/Setpoint, while members
	// i > 0 hold a line formation FleetSpacing*i meters behind it,
	// coordinated over the fabric (see fleet.go).
	Drones int
	// FleetSpacing is the formation spacing in meters; zero selects
	// DefaultFleetSpacing. Ignored for a single drone.
	FleetSpacing float64

	// Mission, when non-empty, replaces the static setpoint with a
	// waypoint sequence flown by the complex controller — the
	// "advanced features like mission planning" of the paper's CCE.
	// The safety controller then acts as a position-hold fallback: it
	// tracks the vehicle until a Simplex switch and freezes its
	// setpoint there. Mission flight tilts the vehicle far more than
	// hover, so the attitude-error rule needs a looser threshold (see
	// the mission example and TestMissionFalsePositive).
	Mission []control.Waypoint

	// ComplexInContainer selects the deployment: true is the full
	// ContainerDrone architecture (complex controller inside the CCE,
	// Simplex switching armed); false runs the complex controller on
	// the host, the configuration of the memory-DoS experiment where
	// the container holds only the attacker.
	ComplexInContainer bool

	// MemGuard configuration (§III-D).
	MemGuardEnabled bool
	// MemGuardBudget is the CCE core's budget in accesses/second
	// (converted to per-period internally).
	MemGuardBudget float64

	// IPTablesRate/Burst rate-limit packets into the HCE motor port
	// (§III-E); 0 disables the limit.
	IPTablesRate  float64
	IPTablesBurst float64

	// MonitorEnabled arms the security monitor after ArmDelay.
	MonitorEnabled bool
	Rules          monitor.Rules
	// Envelope adds the extended geofence/descent rules (zero = the
	// paper's two rules only).
	Envelope monitor.EnvelopeRules
	ArmDelay time.Duration

	// Attack is the adversary's plan.
	Attack attack.Plan

	// Faults is the environment's plan: timed sensor, network,
	// scheduler, and airframe failures injected on top of (or instead
	// of) the in-container adversary. Faults compose — several may
	// overlap in one flight.
	Faults fault.Plan

	// BusCapacity is the DRAM service rate in accesses/second. The
	// latency-inflation factor λ folds in bank-conflict amplification,
	// calibrated so a saturating attacker slows fully memory-bound
	// victims by the 15–25× reported for RPi3-class boards.
	BusCapacity float64

	// ManualUntil scripts the paper's flight procedure: "the drone
	// operator first flies the drone to a safe height in manual mode
	// and then switches to position control mode". Until this time the
	// RC feed reports manual mode with hover throttle; zero starts
	// directly in position mode (the scenario default, since runs
	// begin mid-flight).
	ManualUntil time.Duration

	// Noise selects the sensor error model; Wind enables gusts.
	Noise sensors.Noise
	Wind  bool

	// TelemetryRate is the flight-log sampling rate in Hz.
	TelemetryRate float64
}

// DroneCount returns the effective fleet size (at least 1).
func (c Config) DroneCount() int {
	if c.Drones < 1 {
		return 1
	}
	return c.Drones
}

// Spacing returns the effective formation spacing in meters.
func (c Config) Spacing() float64 {
	if c.FleetSpacing > 0 {
		return c.FleetSpacing
	}
	return DefaultFleetSpacing
}

// DefaultConfig returns the baseline scenario: full ContainerDrone
// deployment, all protections on, no attack, 30-second hover at
// (0, 0, 1) — the flight envelope of every figure in the paper.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Duration:           30 * time.Second,
		Setpoint:           physics.Vec3{Z: 1},
		ComplexInContainer: true,
		MemGuardEnabled:    true,
		MemGuardBudget:     30e6,
		IPTablesRate:       8000,
		IPTablesBurst:      512,
		MonitorEnabled:     true,
		Rules:              monitor.DefaultRules(),
		ArmDelay:           time.Second,
		BusCapacity:        100e6,
		Noise:              sensors.DefaultNoise(),
		Wind:               true,
		TelemetryRate:      50,
	}
}

// MemDoSAccessRate is the Bandwidth attack's demand used by the
// memory experiments: saturating enough that unregulated interference
// collapses the host control pipeline (λ ≈ 40 with the default bus).
const MemDoSAccessRate = 4e9

// ScenarioMemDoS reproduces Figs 4 (guard off) and 5 (guard on): the
// complex controller flies from the host, the container runs only the
// Bandwidth attack from t = 10 s. Thin wrapper over the registry's
// "memdos"/"memdos-unguarded" scenarios.
func ScenarioMemDoS(memguardOn bool) Config {
	if memguardOn {
		return MustBuild("memdos", Options{})
	}
	return MustBuild("memdos-unguarded", Options{})
}

// ScenarioKill reproduces Fig 6: the attacker shuts down the complex
// controller at t = 12 s; the receiving-interval rule must fire.
// Thin wrapper over the registry's "kill" scenario.
func ScenarioKill() Config { return MustBuild("kill", Options{}) }

// ScenarioFlood reproduces Fig 7: a UDP flood into the HCE motor port
// from t = 8 s; the attitude-error rule must fire and the safety
// controller must recover the vehicle. Thin wrapper over the
// registry's "udpflood" scenario.
func ScenarioFlood() Config { return MustBuild("udpflood", Options{}) }

// ScenarioBaseline is an attack-free flight of the full architecture.
// Thin wrapper over the registry's "baseline" scenario.
func ScenarioBaseline() Config { return MustBuild("baseline", Options{}) }
