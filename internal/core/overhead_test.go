package core

import (
	"math"
	"testing"
	"time"
)

const overheadDur = 10 * time.Second

func TestOverheadNativeMatchesTableII(t *testing.T) {
	r, err := RunOverheadCase(OverheadNative, overheadDur)
	if err != nil {
		t.Fatal(err)
	}
	want := [NumCores]float64{0.95, 0.99, 0.99, 0.99}
	for core, w := range want {
		if math.Abs(r.IdleRates[core]-w) > 0.01 {
			t.Errorf("native core %d idle = %.3f, want %.2f", core, r.IdleRates[core], w)
		}
	}
}

func TestOverheadVMMatchesTableII(t *testing.T) {
	r, err := RunOverheadCase(OverheadVM, overheadDur)
	if err != nil {
		t.Fatal(err)
	}
	want := [NumCores]float64{0.86, 0.83, 0.81, 0.77}
	for core, w := range want {
		if math.Abs(r.IdleRates[core]-w) > 0.02 {
			t.Errorf("VM core %d idle = %.3f, want %.2f", core, r.IdleRates[core], w)
		}
	}
}

func TestOverheadContainerMatchesTableII(t *testing.T) {
	r, err := RunOverheadCase(OverheadContainer, overheadDur)
	if err != nil {
		t.Fatal(err)
	}
	want := [NumCores]float64{0.95, 0.99, 0.99, 0.98}
	for core, w := range want {
		if math.Abs(r.IdleRates[core]-w) > 0.01 {
			t.Errorf("container core %d idle = %.3f, want %.2f", core, r.IdleRates[core], w)
		}
	}
}

func TestOverheadOrdering(t *testing.T) {
	// The paper's headline: container overhead ≈ native ≫ VM.
	rows, err := TableII(overheadDur)
	if err != nil {
		t.Fatal(err)
	}
	native, vmRow, cont := rows[0], rows[1], rows[2]
	for core := 0; core < NumCores; core++ {
		if vmRow.IdleRates[core] >= cont.IdleRates[core] {
			t.Errorf("core %d: VM idle %.3f not below container idle %.3f",
				core, vmRow.IdleRates[core], cont.IdleRates[core])
		}
		if native.IdleRates[core]-cont.IdleRates[core] > 0.02 {
			t.Errorf("core %d: container overhead %.3f not close to native",
				core, native.IdleRates[core]-cont.IdleRates[core])
		}
	}
}

func TestOverheadCaseString(t *testing.T) {
	if OverheadNative.String() != "No container nor VM" ||
		OverheadVM.String() != "One VM" ||
		OverheadContainer.String() != "One container" {
		t.Fatal("case labels do not match the paper's row names")
	}
	if OverheadCase(9).String() != "unknown" {
		t.Fatal("unknown case label")
	}
}

func TestOverheadUnknownCase(t *testing.T) {
	if _, err := RunOverheadCase(OverheadCase(42), time.Second); err == nil {
		t.Fatal("unknown case accepted")
	}
}
