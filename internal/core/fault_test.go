package core

import (
	"strings"
	"testing"
	"time"

	"containerdrone/internal/fault"
	"containerdrone/internal/monitor"
	"containerdrone/internal/physics"
)

// runFault executes one fault scenario to completion.
func runFault(t *testing.T, name string) *Result {
	t.Helper()
	sys, err := New(MustBuild(name, Options{}))
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return sys.Run()
}

func TestNetSplitDetectedByIntervalRule(t *testing.T) {
	res := runFault(t, "netsplit")
	if !res.Switched || res.SwitchRule != monitor.RuleInterval {
		t.Fatalf("netsplit not caught by interval rule: switched=%v rule=%s", res.Switched, res.SwitchRule)
	}
	// The partition opens at 10 s; the rule tolerates 100 ms of silence.
	lat := res.SwitchTime - 10*time.Second
	if lat < 0 || lat > 300*time.Millisecond {
		t.Fatalf("detection latency %v, want within rule threshold", lat)
	}
	if res.Crashed {
		t.Fatal("monitored netsplit must not crash")
	}
}

func TestPrioInversionDetectedAfterBurst(t *testing.T) {
	res := runFault(t, "prio-inv")
	if !res.Switched || res.SwitchRule != monitor.RuleInterval {
		t.Fatalf("prio-inv: switched=%v rule=%s", res.Switched, res.SwitchRule)
	}
	// Detection is itself starved: the monitor cannot fire before the
	// 400 ms burst releases the safety core at 10.4 s.
	if res.SwitchTime < 10*time.Second+400*time.Millisecond {
		t.Fatalf("switch at %v, before the burst released the core", res.SwitchTime)
	}
}

func TestGPSSpoofIsStealthy(t *testing.T) {
	res := runFault(t, "gps-spoof")
	if res.Switched {
		t.Fatalf("gps-spoof tripped rule %s; the spoof should be invisible to spoofed-state rules", res.SwitchRule)
	}
	// ...while physically walking the vehicle off station.
	if res.Metrics.MaxDeviation < 2 {
		t.Fatalf("spoof max deviation %.2fm, expected a multi-meter walk-off", res.Metrics.MaxDeviation)
	}
}

func TestMAVReplayCapturesAndDetects(t *testing.T) {
	cfg := MustBuild("mav-replay", Options{})
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(sys.Member(0).replayFrames) == 0 {
		t.Fatal("replay fault captured no motor frames")
	}
	if !res.Switched || res.SwitchRule != monitor.RuleAttitude {
		t.Fatalf("mav-replay: switched=%v rule=%s, want attitude-error", res.Switched, res.SwitchRule)
	}
	// Replayed frames are valid MAVLink: they must not count as garbage.
	if res.GarbagePkts != 0 {
		t.Fatalf("replay produced %d garbage packets; frames should decode", res.GarbagePkts)
	}
}

func TestRotorDecayDegradesEfficiency(t *testing.T) {
	cfg := MustBuild("rotor-decay", Options{})
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	eff := sys.Quad.Rotors[0].Efficiency()
	want := 1 - fault.DefaultRotorDecayLoss
	if eff > want+1e-9 || eff < want-1e-9 {
		t.Fatalf("rotor 0 efficiency = %v, want %v", eff, want)
	}
	if e := sys.Quad.Rotors[1].Efficiency(); e != 1 {
		t.Fatalf("rotor 1 efficiency = %v, want healthy", e)
	}
}

func TestJitterRestoresLinkAfterWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 12 * time.Second
	cfg.Faults = fault.Plan{Specs: []fault.Spec{
		{Kind: fault.KindJitter, Start: 2 * time.Second, Duration: 3 * time.Second},
	}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if link := sys.Net.Link(); link.Jitter != 0 || link.Loss != 0 {
		t.Fatalf("link not restored after jitter window: %+v", link)
	}
}

// TestOverlappingSameKindFaultsCompose pins the composition contract
// on shared surfaces: when two windows of the same kind overlap, the
// first End must not heal the surface while the second is still open,
// and after the last End every surface must be fully healthy.
func TestOverlappingSameKindFaultsCompose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * time.Second
	sec := func(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }
	cfg.Faults = fault.Plan{Specs: []fault.Spec{
		{Kind: fault.KindJitter, Start: sec(1), Duration: sec(3)},
		{Kind: fault.KindJitter, Start: sec(2), Duration: sec(3)},
		{Kind: fault.KindNetSplit, Start: sec(1), Duration: sec(2)},
		{Kind: fault.KindNetSplit, Start: sec(2), Duration: sec(2)},
		{Kind: fault.KindIMUBias, Start: sec(1), Duration: sec(2), Magnitude: 0.01},
		{Kind: fault.KindIMUBias, Start: sec(2), Duration: sec(2), Magnitude: 0.02},
		{Kind: fault.KindGPSSpoof, Start: sec(1), Duration: sec(2), Rate: 0.1},
		{Kind: fault.KindGPSSpoof, Start: sec(2), Duration: sec(2), Rate: 0.1},
		{Kind: fault.KindBaroDrop, Start: sec(1), Duration: sec(2)},
		{Kind: fault.KindBaroDrop, Start: sec(2), Duration: sec(2)},
	}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-overlap probe at t=3.5s: the first window of each pair has
	// closed, the second is still open — every surface must still be
	// degraded.
	sys.Engine.At(sec(3.5), func(time.Duration) {
		if !sys.Net.Partitioned(hceHost, sys.CCE.NetHost()) {
			t.Error("first netsplit End healed the bridge while the second window is open")
		}
		if sys.Net.Link().Jitter == 0 {
			t.Error("first jitter End restored the link while the second window is open")
		}
		f := sys.Member(0).suite.Faults()
		if f.GyroBias.X < 0.015 || f.GyroBias.X > 0.025 {
			t.Errorf("mid-overlap gyro bias = %v, want the second spec's 0.02", f.GyroBias.X)
		}
		if !f.BaroFrozen {
			t.Error("first baro-drop End unfroze the barometer while the second window is open")
		}
		if f.GPSOffset.X <= 0 {
			t.Error("gps offset gone while a spoof window is open")
		}
	})
	sys.Run()
	// All windows closed: every surface fully healed.
	if sys.Net.Partitioned(hceHost, sys.CCE.NetHost()) {
		t.Error("partition survived both windows")
	}
	if link := sys.Net.Link(); link.Jitter != 0 || link.Loss != 0 {
		t.Errorf("link not healed after both jitter windows: %+v", link)
	}
	f := sys.Member(0).suite.Faults()
	if f.GyroBias != (physics.Vec3{}) || f.GPSOffset != (physics.Vec3{}) || f.BaroFrozen {
		t.Errorf("sensor faults not healed after all windows: %+v", f)
	}
}

func TestFaultParamsApplyToPlan(t *testing.T) {
	cfg := MustBuild("netsplit", Options{Params: map[string]float64{
		"fault.start":    5,
		"fault.duration": 2,
	}})
	sp := cfg.Faults.Specs[0]
	if sp.Start != 5*time.Second || sp.Duration != 2*time.Second {
		t.Fatalf("fault params not applied: %+v", sp)
	}
}

// TestJitterWindowClosesOutOfOrder pins the stack semantics: when a
// shorter jitter window opens inside a longer one and closes first,
// the link must fall back to the still-open window's severity, not
// keep the closed window's or heal early.
func TestJitterWindowClosesOutOfOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * time.Second
	long := fault.Spec{Kind: fault.KindJitter, Start: 2 * time.Second, Duration: 6 * time.Second, Magnitude: 0.05, Rate: 0.3}
	short := fault.Spec{Kind: fault.KindJitter, Start: 3 * time.Second, Duration: time.Second, Magnitude: 0.001, Rate: 0.01}
	cfg.Faults = fault.Plan{Specs: []fault.Spec{long, short}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantLong := time.Duration(long.Magnitude * float64(time.Second))
	sys.Engine.At(3500*time.Millisecond, func(time.Duration) {
		if got := sys.Net.Link().Jitter; got != time.Duration(short.Magnitude*float64(time.Second)) {
			t.Errorf("inside the short window: jitter = %v, want the short spec's", got)
		}
	})
	sys.Engine.At(5*time.Second, func(time.Duration) {
		if got := sys.Net.Link(); got.Jitter != wantLong || got.Loss != long.Rate {
			t.Errorf("after the short window closed: link = %+v, want the long spec's severity back", got)
		}
	})
	sys.Run()
	if got := sys.Net.Link(); got.Jitter != 0 || got.Loss != 0 {
		t.Errorf("link not healed after the long window: %+v", got)
	}
}

// TestEveryFaultKindHasScenario pins the convention the fault-matrix
// CLIs rely on: each fault kind's string doubles as the name of its
// monitored scenario.
func TestEveryFaultKindHasScenario(t *testing.T) {
	for _, k := range fault.Kinds() {
		if _, ok := Lookup(k.String()); !ok {
			t.Errorf("fault kind %s has no registered scenario of the same name", k)
		}
	}
}

// TestInvalidFaultSpecRejected checks that degenerate severities fail
// at build time instead of producing a silently inert fault.
func TestInvalidFaultSpecRejected(t *testing.T) {
	for _, sp := range []fault.Spec{
		{Kind: fault.KindMAVReplay, Rate: -1},
		{Kind: fault.KindJitter, Rate: 1.5},
		{Kind: fault.KindPrioInv, Magnitude: 0.5},
		{Kind: fault.KindRotorDecay, Magnitude: 2},
		{Kind: fault.KindGPSSpoof, Start: -time.Second},
	} {
		cfg := DefaultConfig()
		cfg.Faults = fault.Plan{Specs: []fault.Spec{sp}}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted invalid fault spec %+v", sp)
		}
	}
}

func TestFaultEventsTraced(t *testing.T) {
	res := runFault(t, "baro-drop")
	var found bool
	for _, ev := range res.Trace.Events() {
		if strings.Contains(ev.String(), "baro-drop begins") {
			found = true
		}
	}
	if !found {
		t.Fatal("fault begin event missing from trace")
	}
}
