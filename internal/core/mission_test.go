package core

import (
	"math"
	"testing"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/control"
	"containerdrone/internal/physics"
)

// missionConfig returns a square patrol at 1 m altitude with rules
// loosened for maneuvering flight (mission legs tilt the vehicle far
// beyond the hover envelope the default attitude threshold assumes).
func missionConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 40 * time.Second
	cfg.Rules.MaxAttitudeError = 25 * math.Pi / 180
	cfg.Mission = []control.Waypoint{
		{Pos: physics.Vec3{X: 1, Z: 1}, Hold: time.Second},
		{Pos: physics.Vec3{X: 1, Y: 1, Z: 1.5}, Hold: time.Second},
		{Pos: physics.Vec3{Y: 1, Z: 1}, Hold: time.Second},
		{Pos: physics.Vec3{Z: 1}, Hold: time.Second},
	}
	return cfg
}

func TestMissionCompletes(t *testing.T) {
	r := mustRun(t, missionConfig())
	if r.Crashed {
		t.Fatalf("mission flight crashed at %v", r.CrashTime)
	}
	if r.Switched {
		t.Fatalf("mission tripped the monitor (%v at %v)", r.SwitchRule, r.SwitchTime)
	}
	if !r.MissionComplete {
		t.Fatal("mission did not visit every waypoint in 40s")
	}
}

func TestMissionNotConfiguredNotComplete(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 2 * time.Second
	r := mustRun(t, cfg)
	if r.MissionComplete {
		t.Fatal("MissionComplete true without a mission")
	}
}

func TestMissionKillFailoverHoldsPosition(t *testing.T) {
	// The Fig-6 attack during a mission: the safety controller must
	// freeze and hold, not continue the mission.
	cfg := missionConfig()
	cfg.Attack = attack.Plan{Kind: attack.KindKill, Start: 6 * time.Second}
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatalf("crashed at %v", r.CrashTime)
	}
	if !r.Switched {
		t.Fatal("monitor did not fail over after mid-mission kill")
	}
	if r.MissionComplete {
		t.Fatal("mission 'completed' after its controller was killed")
	}
	// After the switch the vehicle parks: position variance over the
	// tail must be small.
	tail := r.Log.Window(cfg.Duration-8*time.Second, cfg.Duration)
	if len(tail) == 0 {
		t.Fatal("no tail samples")
	}
	ref := tail[0].Position
	for _, smp := range tail {
		if smp.Position.Sub(ref).Norm() > 0.4 {
			t.Fatalf("vehicle still wandering after failover: %v vs %v", smp.Position, ref)
		}
	}
}

func TestMissionHoverRulesFalsePositive(t *testing.T) {
	// Design trade-off the framework documents: the hover-calibrated
	// attitude threshold (6°) treats aggressive mission legs as a
	// violation. This is the false-positive side of the §III-E rule.
	cfg := missionConfig()
	cfg.Rules = DefaultConfig().Rules // hover-tuned 6° threshold
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatalf("crashed at %v", r.CrashTime)
	}
	if !r.Switched {
		t.Skip("mission flew gently enough to avoid the hover threshold — acceptable")
	}
	// A switch is the expected false positive: the flight must still
	// end safely (that is the Simplex guarantee).
	if r.MissionComplete {
		t.Fatal("mission completed despite safety takeover")
	}
}
