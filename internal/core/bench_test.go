package core

import (
	"testing"
	"time"
)

// BenchmarkSystemTick measures the cost of one 100 µs co-simulation
// tick of the full ContainerDrone stack (scheduler + bus + network +
// physics + telemetry).
func BenchmarkSystemTick(b *testing.B) {
	s, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Engine.Step()
	}
}

// BenchmarkFlightSecond measures one simulated second of flight.
func BenchmarkFlightSecond(b *testing.B) {
	s, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Engine.Run(time.Second)
	}
}
