package core

import (
	"fmt"
	"time"

	"containerdrone/internal/control"
	"containerdrone/internal/estimate"
	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
	"containerdrone/internal/monitor"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
	"containerdrone/internal/sensors"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// Snapshot is a deep mid-run capture of a System: everything a run's
// future depends on — the engine clock and schedule position, every
// task's scheduling state, the network fabric (queued and in-flight
// packets, token buckets, NAT counters), the vehicle, both estimators,
// both controllers, the mission, the monitor, the flight log and
// trace, the memory system, and all RNG stream states.
//
// Ownership contract: a Snapshot shares no memory with the System it
// was taken from or any System it is restored onto. The source may
// keep running (and a restored fork may run to completion) without
// invalidating the Snapshot or perturbing sibling forks — the fork
// campaign restores K variants from one capture and the aliasing
// regression test pins this. The zero value is ready for SnapshotInto,
// which reuses the Snapshot's buffers across captures.
//
// Snapshots restore only onto Systems built from the same scenario
// shape: identical process registrations, task sets, endpoints, and
// mission/wind presence. Config values that only act after the capture
// tick (attack parameters, fault magnitudes, monitor thresholds) may
// differ — that is exactly what prefix-sharing campaigns exploit.
type Snapshot struct {
	engine sim.EngineState
	cpu    sched.CPUState
	bus    membw.BusState
	guard  memguard.GuardState
	net    netsim.NetworkState
	nat    netsim.NATState

	quad       physics.Quad
	wind       physics.WindState
	haveWind   bool
	suite      sensors.SuiteState
	hostEst    estimate.Filter
	cceEst     estimate.Filter
	safetyCtl  control.Cascade
	complexCtl control.Cascade

	mission     control.MissionState
	haveMission bool
	mon         monitor.State
	log         telemetry.LogState
	trace       sim.Trace

	curSetpoint physics.Vec3
	holdSP      physics.Vec3

	lastIMU  sensors.IMUReading
	lastGPS  sensors.GPSReading
	lastBaro sensors.BaroReading
	lastRC   sensors.RCReading

	complexCmd   [4]float64
	complexCmdAt time.Duration
	safetyCmd    [4]float64
	hostCmd      [4]float64

	cceIn   control.Inputs
	cceSeq  uint32
	seqOut  uint32
	garbage int64

	replayFrames [][]byte

	// Stream packet counters, in the fixed resolved-pointer order:
	// IMU, Barometer, GPS, RC, Motor Output.
	streamPackets [5]int64

	netRNG    sim.RNG
	sensorRNG sim.RNG
	windRNG   sim.RNG
}

// Tick returns the engine clock position the snapshot was taken at.
func (sn *Snapshot) Tick() int64 { return sn.engine.Tick() }

// Snapshotable reports whether the System is currently in a state a
// mid-run Snapshot can capture, returning a descriptive error when it
// is not. The snapshot machinery covers exactly the pre-onset regime:
// no attack launched, no fault window open, no dynamic schedule or
// task-set changes since the build checkpoint. The fork campaign
// probes this before committing a group to prefix sharing, falling
// back to full flights when it fails.
func (s *System) Snapshotable() error {
	switch {
	case !s.Engine.ScheduleAtCheckpoint():
		return fmt.Errorf("core: one-shots were scheduled dynamically mid-run")
	case !s.CPU.TaskSetAtCheckpoint():
		return fmt.Errorf("core: the scheduler task set changed since the checkpoint")
	case !s.CCE.AtCheckpoint():
		return fmt.Errorf("core: the container's task or process bookkeeping changed since the checkpoint")
	case s.flood != nil:
		return fmt.Errorf("core: a UDP flood attack is live")
	case s.splitDepth != 0 || s.baroDropDepth != 0 || s.gyroBiasDepth != 0 || s.gpsSpoofDepth != 0:
		return fmt.Errorf("core: a sensor or network fault window is open")
	case len(s.jitterStack) != 0:
		return fmt.Errorf("core: a jitter fault window is open")
	}
	return nil
}

// SnapshotInto captures the System's full mid-run state into snap,
// reusing snap's buffers. It must be called between engine ticks
// (after RunToTickContext returns) and panics if the System is not
// Snapshotable — probe that first when falling back is an option.
//
// Two injectors keep pre-onset state outside the System's view and are
// still safe to snapshot: rotor-decay holds only its healed baseline
// (re-read at Begin), and mav-replay's captured frames live in
// replayFrames, which IS part of the snapshot.
func (s *System) SnapshotInto(snap *Snapshot) {
	if err := s.Snapshotable(); err != nil {
		panic(fmt.Sprintf("core: SnapshotInto: %v", err))
	}

	s.Engine.StateInto(&snap.engine)
	s.CPU.SnapshotInto(&snap.cpu)
	s.Bus.SnapshotInto(&snap.bus)
	s.Guard.SnapshotInto(&snap.guard)
	s.Net.SnapshotInto(&snap.net)
	s.Runtime.NAT().SnapshotInto(&snap.nat)

	snap.quad = *s.Quad
	snap.haveWind = s.wind != nil
	if s.wind != nil {
		s.wind.SnapshotInto(&snap.wind)
	}
	s.suite.SnapshotInto(&snap.suite)
	snap.hostEst = *s.hostEst
	snap.cceEst = *s.cceEst
	snap.safetyCtl = *s.safetyCtl
	snap.complexCtl = *s.complexCtl

	snap.haveMission = s.mission != nil
	if s.mission != nil {
		s.mission.SnapshotInto(&snap.mission)
	}
	s.Monitor.SnapshotInto(&snap.mon)
	s.Log.SnapshotInto(&snap.log)
	s.Trace.CopyInto(&snap.trace)

	snap.curSetpoint = s.curSetpoint
	snap.holdSP = s.holdSP
	snap.lastIMU = s.lastIMU
	snap.lastGPS = s.lastGPS
	snap.lastBaro = s.lastBaro
	snap.lastRC = s.lastRC
	snap.complexCmd = s.complexCmd
	snap.complexCmdAt = s.complexCmdAt
	snap.safetyCmd = s.safetyCmd
	snap.hostCmd = s.hostCmd
	snap.cceIn = s.cceIn
	snap.cceSeq = s.cceSeq
	snap.seqOut = s.seqOut
	snap.garbage = s.garbage

	snap.replayFrames = snap.replayFrames[:0]
	for _, f := range s.replayFrames {
		snap.replayFrames = append(snap.replayFrames, append([]byte(nil), f...))
	}

	snap.streamPackets = [5]int64{
		s.imuStream.Packets, s.baroStream.Packets, s.gpsStream.Packets,
		s.rcStream.Packets, s.motorStream.Packets,
	}

	snap.netRNG = *s.netRNG
	snap.sensorRNG = *s.sensorRNG
	if s.windRNG != nil {
		snap.windRNG = *s.windRNG
	}
}

// Snapshot captures the System's full mid-run state into a fresh
// Snapshot. See SnapshotInto for the preconditions and the ownership
// contract.
func (s *System) Snapshot() *Snapshot {
	snap := &Snapshot{}
	s.SnapshotInto(snap)
	return snap
}

// RestoreFrom rewinds the System onto a captured state under the given
// seed, reusing the System's allocations: first a full Reset (which
// re-aligns the container bookkeeping, the engine schedule, and every
// per-run cache to the build checkpoint), then the snapshot's state is
// overlaid subsystem by subsystem and the engine is sought to the
// capture tick. A restored System resumed with ResumeContextInto runs
// byte-identically to a cold run of its own Config at that seed,
// provided the Configs agree on everything that acts before the
// capture tick (TestForkEquivalence pins this for every registry
// scenario).
//
// The System must be built from the same scenario shape as the capture
// source; structural mismatches (task sets, endpoints, wind or mission
// presence) panic. The Snapshot is read-only here and remains valid
// for further restores.
func (s *System) RestoreFrom(seed uint64, snap *Snapshot) {
	s.Reset(seed)

	s.Engine.Seek(&snap.engine)
	s.CPU.RestoreFrom(&snap.cpu)
	s.Bus.RestoreFrom(&snap.bus)
	s.Guard.RestoreFrom(&snap.guard)
	s.Net.RestoreFrom(&snap.net)
	s.Runtime.NAT().RestoreFrom(&snap.nat)

	*s.Quad = snap.quad
	if snap.haveWind != (s.wind != nil) {
		panic("core: RestoreFrom across wind-model presence; source and target must share a scenario")
	}
	if s.wind != nil {
		s.wind.RestoreFrom(&snap.wind)
	}
	s.suite.RestoreFrom(&snap.suite)
	*s.hostEst = snap.hostEst
	*s.cceEst = snap.cceEst
	*s.safetyCtl = snap.safetyCtl
	*s.complexCtl = snap.complexCtl

	if snap.haveMission != (s.mission != nil) {
		panic("core: RestoreFrom across mission presence; source and target must share a scenario")
	}
	if s.mission != nil {
		s.mission.RestoreFrom(&snap.mission)
	}
	s.Monitor.RestoreFrom(&snap.mon)
	s.Log.RestoreFrom(&snap.log)
	s.Trace.RestoreFrom(&snap.trace)

	s.curSetpoint = snap.curSetpoint
	s.holdSP = snap.holdSP
	s.lastIMU = snap.lastIMU
	s.lastGPS = snap.lastGPS
	s.lastBaro = snap.lastBaro
	s.lastRC = snap.lastRC
	s.complexCmd = snap.complexCmd
	s.complexCmdAt = snap.complexCmdAt
	s.safetyCmd = snap.safetyCmd
	s.hostCmd = snap.hostCmd
	s.cceIn = snap.cceIn
	s.cceSeq = snap.cceSeq
	s.seqOut = snap.seqOut
	s.garbage = snap.garbage

	for _, f := range snap.replayFrames {
		s.replayFrames = append(s.replayFrames, append([]byte(nil), f...))
	}

	s.imuStream.Packets = snap.streamPackets[0]
	s.baroStream.Packets = snap.streamPackets[1]
	s.gpsStream.Packets = snap.streamPackets[2]
	s.rcStream.Packets = snap.streamPackets[3]
	s.motorStream.Packets = snap.streamPackets[4]

	*s.netRNG = snap.netRNG
	*s.sensorRNG = snap.sensorRNG
	if s.windRNG != nil {
		*s.windRNG = snap.windRNG
	}
}
