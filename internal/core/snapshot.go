package core

import (
	"fmt"
	"time"

	"containerdrone/internal/control"
	"containerdrone/internal/estimate"
	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
	"containerdrone/internal/monitor"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
	"containerdrone/internal/sensors"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// memberSnap is one fleet member's share of a Snapshot: the member's
// computer (scheduler, memory system, NAT), vehicle, sensors,
// estimators, controllers, mission, monitor, flight log, and per-run
// caches.
type memberSnap struct {
	cpu   sched.CPUState
	bus   membw.BusState
	guard memguard.GuardState
	nat   netsim.NATState

	quad       physics.Quad
	wind       physics.WindState
	haveWind   bool
	suite      sensors.SuiteState
	hostEst    estimate.Filter
	cceEst     estimate.Filter
	safetyCtl  control.Cascade
	complexCtl control.Cascade

	mission     control.MissionState
	haveMission bool
	mon         monitor.State
	log         telemetry.LogState

	curSetpoint physics.Vec3
	holdSP      physics.Vec3
	fleetSP     physics.Vec3

	lastIMU  sensors.IMUReading
	lastGPS  sensors.GPSReading
	lastBaro sensors.BaroReading
	lastRC   sensors.RCReading

	complexCmd   [4]float64
	complexCmdAt time.Duration
	safetyCmd    [4]float64
	hostCmd      [4]float64

	cceIn   control.Inputs
	cceSeq  uint32
	seqOut  uint32
	garbage int64

	replayFrames [][]byte

	// Stream packet counters, in the fixed resolved-pointer order:
	// IMU, Barometer, GPS, RC, Motor Output.
	streamPackets [5]int64

	sensorRNG sim.RNG
	windRNG   sim.RNG
}

// Snapshot is a deep mid-run capture of a System: everything a run's
// future depends on — the engine clock and schedule position, the
// shared network fabric (queued and in-flight packets, token buckets),
// the trace, the fleet coordinator, and per member every task's
// scheduling state, the vehicle, both estimators, both controllers,
// the mission, the monitor, the flight log, the memory system, and
// all RNG stream states.
//
// Ownership contract: a Snapshot shares no memory with the System it
// was taken from or any System it is restored onto. The source may
// keep running (and a restored fork may run to completion) without
// invalidating the Snapshot or perturbing sibling forks — the fork
// campaign restores K variants from one capture and the aliasing
// regression test pins this. The zero value is ready for SnapshotInto,
// which reuses the Snapshot's buffers across captures.
//
// Snapshots restore only onto Systems built from the same scenario
// shape: identical fleet size, process registrations, task sets,
// endpoints, and mission/wind presence. Config values that only act
// after the capture tick (attack parameters, fault magnitudes, monitor
// thresholds) may differ — that is exactly what prefix-sharing
// campaigns exploit.
type Snapshot struct {
	engine sim.EngineState
	net    netsim.NetworkState
	trace  sim.Trace

	netRNG sim.RNG

	leaderSP physics.Vec3
	fleetSeq uint32

	members []memberSnap
}

// Tick returns the engine clock position the snapshot was taken at.
func (sn *Snapshot) Tick() int64 { return sn.engine.Tick() }

// Snapshotable reports whether the System is currently in a state a
// mid-run Snapshot can capture, returning a descriptive error when it
// is not. The snapshot machinery covers exactly the pre-onset regime:
// no attack launched, no fault window open, no dynamic schedule or
// task-set changes since the build checkpoint, on any member. The fork
// campaign probes this before committing a group to prefix sharing,
// falling back to full flights when it fails.
func (s *System) Snapshotable() error {
	if !s.Engine.ScheduleAtCheckpoint() {
		return fmt.Errorf("core: one-shots were scheduled dynamically mid-run")
	}
	if len(s.jitterStack) != 0 {
		return fmt.Errorf("core: a jitter fault window is open")
	}
	for _, d := range s.drones {
		switch {
		case !d.CPU.TaskSetAtCheckpoint():
			return fmt.Errorf("core: member %d's scheduler task set changed since the checkpoint", d.idx)
		case !d.CCE.AtCheckpoint():
			return fmt.Errorf("core: member %d's container task or process bookkeeping changed since the checkpoint", d.idx)
		case d.flood != nil:
			return fmt.Errorf("core: a UDP flood attack is live on member %d", d.idx)
		case d.splitDepth != 0 || d.baroDropDepth != 0 || d.gyroBiasDepth != 0 || d.gpsSpoofDepth != 0 || d.fleetSplitDepth != 0:
			return fmt.Errorf("core: a sensor or network fault window is open on member %d", d.idx)
		}
	}
	return nil
}

// SnapshotInto captures the System's full mid-run state into snap,
// reusing snap's buffers. It must be called between engine ticks
// (after RunToTickContext returns) and panics if the System is not
// Snapshotable — probe that first when falling back is an option.
//
// Two injectors keep pre-onset state outside the System's view and are
// still safe to snapshot: rotor-decay holds only its healed baseline
// (re-read at Begin), and mav-replay's captured frames live in the
// tapped member's replayFrames, which IS part of the snapshot.
func (s *System) SnapshotInto(snap *Snapshot) {
	if err := s.Snapshotable(); err != nil {
		panic(fmt.Sprintf("core: SnapshotInto: %v", err))
	}

	s.Engine.StateInto(&snap.engine)
	s.Net.SnapshotInto(&snap.net)
	s.Trace.CopyInto(&snap.trace)
	snap.netRNG = *s.netRNG
	snap.leaderSP = s.leaderSP
	snap.fleetSeq = s.fleetSeq

	for len(snap.members) < len(s.drones) {
		snap.members = append(snap.members, memberSnap{})
	}
	snap.members = snap.members[:len(s.drones)]
	for i, d := range s.drones {
		d.snapshotInto(&snap.members[i])
	}
}

func (d *Drone) snapshotInto(ms *memberSnap) {
	d.CPU.SnapshotInto(&ms.cpu)
	d.Bus.SnapshotInto(&ms.bus)
	d.Guard.SnapshotInto(&ms.guard)
	d.Runtime.NAT().SnapshotInto(&ms.nat)

	ms.quad = *d.Quad
	ms.haveWind = d.wind != nil
	if d.wind != nil {
		d.wind.SnapshotInto(&ms.wind)
	}
	d.suite.SnapshotInto(&ms.suite)
	ms.hostEst = *d.hostEst
	ms.cceEst = *d.cceEst
	ms.safetyCtl = *d.safetyCtl
	ms.complexCtl = *d.complexCtl

	ms.haveMission = d.mission != nil
	if d.mission != nil {
		d.mission.SnapshotInto(&ms.mission)
	}
	d.Monitor.SnapshotInto(&ms.mon)
	d.Log.SnapshotInto(&ms.log)

	ms.curSetpoint = d.curSetpoint
	ms.holdSP = d.holdSP
	ms.fleetSP = d.fleetSP
	ms.lastIMU = d.lastIMU
	ms.lastGPS = d.lastGPS
	ms.lastBaro = d.lastBaro
	ms.lastRC = d.lastRC
	ms.complexCmd = d.complexCmd
	ms.complexCmdAt = d.complexCmdAt
	ms.safetyCmd = d.safetyCmd
	ms.hostCmd = d.hostCmd
	ms.cceIn = d.cceIn
	ms.cceSeq = d.cceSeq
	ms.seqOut = d.seqOut
	ms.garbage = d.garbage

	ms.replayFrames = ms.replayFrames[:0]
	for _, f := range d.replayFrames {
		ms.replayFrames = append(ms.replayFrames, append([]byte(nil), f...))
	}

	ms.streamPackets = [5]int64{
		d.imuStream.Packets, d.baroStream.Packets, d.gpsStream.Packets,
		d.rcStream.Packets, d.motorStream.Packets,
	}

	ms.sensorRNG = *d.sensorRNG
	if d.windRNG != nil {
		ms.windRNG = *d.windRNG
	}
}

// Snapshot captures the System's full mid-run state into a fresh
// Snapshot. See SnapshotInto for the preconditions and the ownership
// contract.
func (s *System) Snapshot() *Snapshot {
	snap := &Snapshot{}
	s.SnapshotInto(snap)
	return snap
}

// RestoreFrom rewinds the System onto a captured state under the given
// seed, reusing the System's allocations: first a full Reset (which
// re-aligns every member's container bookkeeping, the engine schedule,
// and every per-run cache to the build checkpoint), then the
// snapshot's state is overlaid subsystem by subsystem and the engine
// is sought to the capture tick. A restored System resumed with
// ResumeContextInto runs byte-identically to a cold run of its own
// Config at that seed, provided the Configs agree on everything that
// acts before the capture tick (TestForkEquivalence pins this for
// every registry scenario).
//
// The System must be built from the same scenario shape as the capture
// source; structural mismatches (fleet size, task sets, endpoints,
// wind or mission presence) panic. The Snapshot is read-only here and
// remains valid for further restores.
func (s *System) RestoreFrom(seed uint64, snap *Snapshot) {
	if len(snap.members) != len(s.drones) {
		panic(fmt.Sprintf("core: RestoreFrom across fleet sizes (%d members captured, %d built); source and target must share a scenario",
			len(snap.members), len(s.drones)))
	}
	s.Reset(seed)

	s.Engine.Seek(&snap.engine)
	s.Net.RestoreFrom(&snap.net)
	s.Trace.RestoreFrom(&snap.trace)
	*s.netRNG = snap.netRNG
	s.leaderSP = snap.leaderSP
	s.fleetSeq = snap.fleetSeq

	for i, d := range s.drones {
		d.restoreFrom(&snap.members[i])
	}
}

func (d *Drone) restoreFrom(ms *memberSnap) {
	d.CPU.RestoreFrom(&ms.cpu)
	d.Bus.RestoreFrom(&ms.bus)
	d.Guard.RestoreFrom(&ms.guard)
	d.Runtime.NAT().RestoreFrom(&ms.nat)

	*d.Quad = ms.quad
	if ms.haveWind != (d.wind != nil) {
		panic("core: RestoreFrom across wind-model presence; source and target must share a scenario")
	}
	if d.wind != nil {
		d.wind.RestoreFrom(&ms.wind)
	}
	d.suite.RestoreFrom(&ms.suite)
	*d.hostEst = ms.hostEst
	*d.cceEst = ms.cceEst
	*d.safetyCtl = ms.safetyCtl
	*d.complexCtl = ms.complexCtl

	if ms.haveMission != (d.mission != nil) {
		panic("core: RestoreFrom across mission presence; source and target must share a scenario")
	}
	if d.mission != nil {
		d.mission.RestoreFrom(&ms.mission)
	}
	d.Monitor.RestoreFrom(&ms.mon)
	d.Log.RestoreFrom(&ms.log)

	d.curSetpoint = ms.curSetpoint
	d.holdSP = ms.holdSP
	d.fleetSP = ms.fleetSP
	d.lastIMU = ms.lastIMU
	d.lastGPS = ms.lastGPS
	d.lastBaro = ms.lastBaro
	d.lastRC = ms.lastRC
	d.complexCmd = ms.complexCmd
	d.complexCmdAt = ms.complexCmdAt
	d.safetyCmd = ms.safetyCmd
	d.hostCmd = ms.hostCmd
	d.cceIn = ms.cceIn
	d.cceSeq = ms.cceSeq
	d.seqOut = ms.seqOut
	d.garbage = ms.garbage

	for _, f := range ms.replayFrames {
		d.replayFrames = append(d.replayFrames, append([]byte(nil), f...))
	}

	d.imuStream.Packets = ms.streamPackets[0]
	d.baroStream.Packets = ms.streamPackets[1]
	d.gpsStream.Packets = ms.streamPackets[2]
	d.rcStream.Packets = ms.streamPackets[3]
	d.motorStream.Packets = ms.streamPackets[4]

	*d.sensorRNG = ms.sensorRNG
	if d.windRNG != nil {
		*d.windRNG = ms.windRNG
	}
}
