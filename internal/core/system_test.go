package core

import (
	"testing"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/monitor"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestBaselineStableFlight(t *testing.T) {
	r := mustRun(t, ScenarioBaseline())
	if r.Crashed {
		t.Fatalf("baseline flight crashed at %v", r.CrashTime)
	}
	if r.Switched {
		t.Fatalf("baseline flight switched to safety (%v)", r.SwitchRule)
	}
	if r.Metrics.RMSError > 0.15 {
		t.Fatalf("baseline RMS error %.3fm too large", r.Metrics.RMSError)
	}
	if r.Metrics.MaxTilt > 0.1 {
		t.Fatalf("baseline max tilt %.3f rad too large", r.Metrics.MaxTilt)
	}
}

func TestTableIStreamRatesAndSizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * time.Second
	r := mustRun(t, cfg)

	want := map[string]struct {
		port int
		size int
		rate float64 // Hz, from Table I
	}{
		"IMU":          {PortSensors, 52, 250},
		"Barometer":    {PortSensors, 32, 50},
		"GPS":          {PortSensors, 44, 10},
		"RC":           {PortSensors, 50, 50},
		"Motor Output": {PortMotor, 29, 400},
	}
	got := map[string]StreamStat{}
	for _, st := range r.Streams {
		got[st.Name] = st
	}
	for name, w := range want {
		st, ok := got[name]
		if !ok {
			t.Fatalf("stream %q missing", name)
		}
		if st.Port != w.port {
			t.Errorf("%s port = %d, want %d", name, st.Port, w.port)
		}
		if st.FrameSize != w.size {
			t.Errorf("%s frame size = %d, want %d (Table I)", name, st.FrameSize, w.size)
		}
		expected := w.rate * 10 // 10-second run
		lo, hi := expected*0.95, expected*1.02
		if float64(st.Packets) < lo || float64(st.Packets) > hi {
			t.Errorf("%s packets = %d over 10s, want ≈%.0f", name, st.Packets, expected)
		}
	}
}

func TestFig4MemDoSWithoutMemGuardCrashes(t *testing.T) {
	r := mustRun(t, ScenarioMemDoS(false))
	if !r.Crashed {
		t.Fatal("memory DoS without MemGuard did not crash the drone (Fig 4)")
	}
	// "The drone starts to drift right after the Bandwidth task is
	// launched … and results in a crash shortly after."
	if r.CrashTime < 10*time.Second {
		t.Fatalf("crash at %v precedes the attack at 10s", r.CrashTime)
	}
	if r.CrashTime > 16*time.Second {
		t.Fatalf("crash at %v not 'shortly after' the 10s attack", r.CrashTime)
	}
	// Pre-attack flight is clean.
	pre := r.Log.WindowMetrics(2*time.Second, 10*time.Second)
	if pre.RMSError > 0.15 {
		t.Fatalf("pre-attack RMS %.3fm already degraded", pre.RMSError)
	}
}

func TestFig5MemDoSWithMemGuardSurvives(t *testing.T) {
	r := mustRun(t, ScenarioMemDoS(true))
	if r.Crashed {
		t.Fatalf("memory DoS with MemGuard crashed at %v (Fig 5 expects survival)", r.CrashTime)
	}
	// "The drone oscillates for a short time but then managed to
	// stabilize itself": degraded vs the pre-attack window, but
	// bounded.
	pre := r.Log.WindowMetrics(2*time.Second, 10*time.Second)
	post := r.Log.WindowMetrics(10*time.Second, 30*time.Second)
	if post.MaxDeviation > 0.5 {
		t.Fatalf("with MemGuard deviation %.3fm too large", post.MaxDeviation)
	}
	if post.RMSError < pre.RMSError*0.5 {
		t.Fatalf("attack window unexpectedly cleaner than pre-attack (%.3f vs %.3f)",
			post.RMSError, pre.RMSError)
	}
}

func TestFig6KillControllerFailover(t *testing.T) {
	r := mustRun(t, ScenarioKill())
	if r.Crashed {
		t.Fatalf("kill scenario crashed at %v", r.CrashTime)
	}
	if !r.Switched {
		t.Fatal("monitor never switched after controller kill (Fig 6)")
	}
	if r.SwitchRule != monitor.RuleInterval {
		t.Fatalf("switch rule = %v, want receiving-interval", r.SwitchRule)
	}
	// Detection latency: within the rule threshold plus slack.
	lat := r.SwitchTime - r.Cfg.Attack.Start
	if lat <= 0 || lat > 300*time.Millisecond {
		t.Fatalf("detection latency %v outside expected range", lat)
	}
	// The safety controller stabilizes the drone afterward.
	tail := r.Log.WindowMetrics(20*time.Second, 30*time.Second)
	if tail.RMSError > 0.2 {
		t.Fatalf("post-recovery RMS %.3fm — safety controller did not stabilize", tail.RMSError)
	}
}

func TestFig7UDPFloodFailover(t *testing.T) {
	r := mustRun(t, ScenarioFlood())
	if r.Crashed {
		t.Fatalf("flood scenario crashed at %v (Fig 7 expects recovery)", r.CrashTime)
	}
	if !r.Switched {
		t.Fatal("monitor never switched under UDP flood")
	}
	if r.SwitchRule != monitor.RuleAttitude {
		t.Fatalf("switch rule = %v, want attitude-error (paper: 'attitude error control kicks in')", r.SwitchRule)
	}
	if r.SwitchTime < 8*time.Second {
		t.Fatalf("switched at %v, before the attack", r.SwitchTime)
	}
	// Degradation between attack and switch must be visible.
	if r.AttackMetrics.MaxTilt < 0.05 {
		t.Fatalf("flood caused no visible attitude disturbance (%.3f rad)", r.AttackMetrics.MaxTilt)
	}
	// Recovery.
	tail := r.Log.WindowMetrics(20*time.Second, 30*time.Second)
	if tail.RMSError > 0.2 {
		t.Fatalf("post-recovery RMS %.3fm", tail.RMSError)
	}
	if r.GarbagePkts == 0 {
		t.Fatal("receiver saw no garbage packets during a flood")
	}
}

func TestFloodWithoutMonitorCrashes(t *testing.T) {
	// Ablation: the flood is fatal when the security monitor is off —
	// the defense, not luck, saves the vehicle.
	cfg := ScenarioFlood()
	cfg.MonitorEnabled = false
	r := mustRun(t, cfg)
	if !r.Crashed {
		t.Fatal("flood without monitor did not crash; Fig 7's defense would be vacuous")
	}
}

func TestKillWithoutMonitorIsFatalOrLost(t *testing.T) {
	cfg := ScenarioKill()
	cfg.MonitorEnabled = false
	r := mustRun(t, cfg)
	if !r.Crashed && r.AttackMetrics.MaxDeviation < 0.5 {
		t.Fatalf("killed controller without monitor left deviation %.3fm — should drift or crash",
			r.AttackMetrics.MaxDeviation)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result { return mustRun(t, ScenarioFlood()) }
	a, b := run(), run()
	if a.Crashed != b.Crashed || a.SwitchTime != b.SwitchTime {
		t.Fatal("same-seed runs diverged in outcome")
	}
	sa, sb := a.Log.Samples(), b.Log.Samples()
	if len(sa) != len(sb) {
		t.Fatalf("sample counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("trajectories diverge at sample %d", i)
		}
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 5 * time.Second
	a := mustRun(t, cfg)
	cfg.Seed = 999
	b := mustRun(t, cfg)
	sa, sb := a.Log.Samples(), b.Log.Samples()
	same := 0
	for i := range sa {
		if i < len(sb) && sa[i].Position == sb[i].Position {
			same++
		}
	}
	if same > len(sa)/2 {
		t.Fatal("different seeds produced near-identical noise trajectories")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Duration = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad = DefaultConfig()
	bad.BusCapacity = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero bus capacity accepted")
	}
}

func TestReceiverKilledOnSwitch(t *testing.T) {
	s, err := New(ScenarioKill())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if !r.Switched {
		t.Fatal("expected switch")
	}
	for _, task := range s.CPU.Tasks() {
		if task.Name == "hce-recv" {
			t.Fatal("receiving thread still scheduled after switch — §III-E requires it be killed")
		}
	}
}

func TestAttackPlanCPUHogHarmless(t *testing.T) {
	// The CPU-DoS protection: a hog inside the container cannot affect
	// the flight (cpuset pins it to core 3; priority cap keeps it
	// below everything host-critical).
	cfg := DefaultConfig()
	cfg.Duration = 15 * time.Second
	cfg.Attack = attack.Plan{Kind: attack.KindCPUHog, Start: 5 * time.Second}
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatal("CPU hog crashed the drone despite cpuset+priority protection")
	}
	// The hog shares core 3 with the complex controller at equal
	// priority; FIFO lets the running hog starve it, so the Simplex
	// monitor may fail over — but the flight must stay safe.
	tail := r.Log.WindowMetrics(10*time.Second, 15*time.Second)
	if tail.RMSError > 0.3 {
		t.Fatalf("flight degraded too much under CPU hog: %.3fm", tail.RMSError)
	}
}

func TestResultSummaryRenders(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 2 * time.Second
	r := mustRun(t, cfg)
	if s := r.Summary(); len(s) == 0 {
		t.Fatal("empty summary")
	}
}

func TestTraceRecordsAttackEvents(t *testing.T) {
	r := mustRun(t, ScenarioKill())
	found := false
	for _, ev := range r.Trace.Filter("attack") {
		if ev.Time == 12*time.Second {
			found = true
		}
	}
	if !found {
		t.Fatal("attack event missing from trace")
	}
}
