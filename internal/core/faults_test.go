package core

import (
	"strings"
	"testing"
	"time"

	"containerdrone/internal/netsim"
	"containerdrone/internal/sensors"
)

// Failure-injection tests: the framework must tolerate degraded but
// non-adversarial conditions without tripping Simplex or crashing.

func TestToleratesBridgePacketLoss(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 15 * time.Second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3% random loss on the bridge — lost sensor frames and motor
	// commands are routine UDP behavior.
	s.Net.SetLink(netsim.LinkParams{Loss: 0.03})
	r := s.Run()
	if r.Crashed {
		t.Fatal("3% packet loss crashed the flight")
	}
	if r.Switched {
		t.Fatalf("3%% packet loss tripped the monitor (%v)", r.SwitchRule)
	}
	if r.Metrics.RMSError > 0.2 {
		t.Fatalf("RMS %.3fm under mild loss", r.Metrics.RMSError)
	}
}

func TestHeavyLossTripsIntervalRuleNotCrash(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 15 * time.Second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 80% loss: the motor stream gaps long enough for the interval
	// rule — the correct response is failover, not a crash.
	s.Net.SetLink(netsim.LinkParams{Loss: 0.8})
	r := s.Run()
	if r.Crashed {
		t.Fatal("heavy loss crashed despite the Simplex fallback")
	}
	if !r.Switched {
		// 80% of 400 Hz still leaves ~80 Hz of arrivals; a 100 ms
		// silence needs ~40 consecutive losses (p≈0.8^40). If the
		// monitor held on, the flight must simply be clean.
		if r.Metrics.RMSError > 0.2 {
			t.Fatalf("no switch and degraded flight: RMS %.3fm", r.Metrics.RMSError)
		}
		return
	}
	tail := r.Log.WindowMetrics(cfg.Duration-5*time.Second, cfg.Duration)
	if tail.RMSError > 0.25 {
		t.Fatalf("post-failover RMS %.3fm", tail.RMSError)
	}
}

func TestBridgeLatencyTolerated(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 15 * time.Second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 ms of bridge latency + jitter: within the control margin.
	s.Net.SetLink(netsim.LinkParams{Latency: 2 * time.Millisecond, Jitter: 500 * time.Microsecond})
	r := s.Run()
	if r.Crashed || r.Switched {
		t.Fatalf("2ms bridge latency: crashed=%v switched=%v", r.Crashed, r.Switched)
	}
}

func TestTriplesSensorNoiseStillFlies(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 15 * time.Second
	n := sensors.DefaultNoise()
	n.GyroSigma *= 3
	n.AccelSigma *= 3
	n.PosSigma *= 3
	n.VelSigma *= 3
	n.BaroSigma *= 3
	cfg.Noise = n
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatal("3x sensor noise crashed the flight")
	}
	if r.Metrics.RMSError > 0.25 {
		t.Fatalf("RMS %.3fm under 3x noise", r.Metrics.RMSError)
	}
}

func TestCalmAirFlight(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Duration = 10 * time.Second
	cfg.Wind = false
	r := mustRun(t, cfg)
	if r.Crashed || r.Switched {
		t.Fatal("calm-air flight failed")
	}
	if r.Metrics.RMSError > 0.05 {
		t.Fatalf("calm-air RMS %.3fm should be tighter than windy flight", r.Metrics.RMSError)
	}
}

func TestVMDeploymentInfeasible(t *testing.T) {
	// The VirtualDrone comparison: the paper's complex controller
	// cannot meet its 2.5 ms period under QEMU translation overhead.
	res, err := CheckVMDeployment()
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("VM deployment reported feasible with emulated WCET %v", res.EmulatedWCET)
	}
	if !strings.Contains(res.Reason, "cannot run") {
		t.Fatalf("reason = %q", res.Reason)
	}
	if res.EmulatedWCET <= 2500*time.Microsecond {
		t.Fatalf("emulated WCET %v should exceed the 2.5ms period", res.EmulatedWCET)
	}
	if res.IdleCost < 0.05 {
		t.Fatalf("VM standing cost %.3f suspiciously low", res.IdleCost)
	}
}
