package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/control"
	"containerdrone/internal/fault"
	"containerdrone/internal/monitor"
	"containerdrone/internal/physics"
)

// Options parameterize a registered scenario at build time. The zero
// value keeps every scenario default.
type Options struct {
	// Seed overrides the scenario's seed when non-zero.
	Seed uint64
	// Duration overrides the simulated flight length when non-zero.
	Duration time.Duration
	// Params are named numeric overrides applied to the built Config
	// in sorted key order (see ApplyParam for the key set). They are
	// the unit of campaign sweeps: any key can be swept over a value
	// list without a scenario knowing about it.
	Params map[string]float64
}

// clone returns a deep copy so a builder can edit freely.
func (o Options) clone() Options {
	c := o
	if o.Params != nil {
		c.Params = make(map[string]float64, len(o.Params))
		for k, v := range o.Params {
			c.Params[k] = v
		}
	}
	return c
}

// BuildFunc constructs a scenario's Config from options. Builders may
// interpret options themselves, but most ignore them: Build applies
// Seed, Duration, and Params generically after the builder returns.
type BuildFunc func(Options) Config

// Scenario is one registered, named experiment definition.
type Scenario struct {
	Name string
	Desc string
	// Build constructs the scenario Config; prefer core.Build, which
	// also applies the generic option/param overrides.
	Build BuildFunc
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a named scenario to the registry. It panics on a
// duplicate or empty name or a nil builder: scenario names are a
// global namespace wired at init time, and a collision is a
// programming error, exactly like a duplicate MAVLink message id.
func Register(name, desc string, build BuildFunc) {
	if name == "" || build == nil {
		panic("core: Register needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: duplicate scenario %q", name))
	}
	registry[name] = Scenario{Name: name, Desc: desc, Build: build}
}

// Scenarios lists every registered scenario sorted by name.
func Scenarios() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Build constructs the named scenario and applies the generic
// overrides: Seed and Duration when non-zero, then every Params entry
// in sorted key order (sorting makes the result independent of map
// iteration order, so equal options always give equal configs).
func Build(name string, opts Options) (Config, error) {
	s, ok := Lookup(name)
	if !ok {
		names := make([]string, 0)
		for _, sc := range Scenarios() {
			names = append(names, sc.Name)
		}
		return Config{}, fmt.Errorf("core: unknown scenario %q (registered: %v)", name, names)
	}
	cfg := s.Build(opts.clone())
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Duration != 0 {
		cfg.Duration = opts.Duration
	}
	keys := make([]string, 0, len(opts.Params))
	for k := range opts.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := ApplyParam(&cfg, k, opts.Params[k]); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// MustBuild is Build for statically known names; it panics on error.
func MustBuild(name string, opts Options) Config {
	cfg, err := Build(name, opts)
	if err != nil {
		panic(err)
	}
	return cfg
}

// paramSetters maps sweepable parameter keys to Config fields.
// Durations are expressed in seconds, rates in their native units,
// booleans as 0/1.
var paramSetters = map[string]struct {
	desc string
	set  func(*Config, float64)
}{
	"seed":     {"simulation seed", func(c *Config, v float64) { c.Seed = uint64(v) }},
	"duration": {"flight length (s)", func(c *Config, v float64) { c.Duration = seconds(v) }},

	"attack.start": {"attack start time (s)", func(c *Config, v float64) { c.Attack.Start = seconds(v) }},
	"attack.rate":  {"attack intensity (accesses/s or pkt/s)", func(c *Config, v float64) { c.Attack.Rate = v }},

	// Fault setters apply to every spec in the plan; single-fault
	// scenarios (all the presets) sweep exactly as expected.
	"fault.start": {"fault window start (s)", func(c *Config, v float64) {
		for i := range c.Faults.Specs {
			c.Faults.Specs[i].Start = seconds(v)
		}
	}},
	"fault.duration": {"fault window length (s, 0=to end of run)", func(c *Config, v float64) {
		for i := range c.Faults.Specs {
			c.Faults.Specs[i].Duration = seconds(v)
		}
	}},
	"fault.magnitude": {"fault severity (kind-specific; see internal/fault)", func(c *Config, v float64) {
		for i := range c.Faults.Specs {
			c.Faults.Specs[i].Magnitude = v
		}
	}},
	"fault.rate": {"fault intensity (kind-specific; see internal/fault)", func(c *Config, v float64) {
		for i := range c.Faults.Specs {
			c.Faults.Specs[i].Rate = v
		}
	}},

	"memguard.enabled": {"MemGuard on/off (1/0)", func(c *Config, v float64) { c.MemGuardEnabled = v != 0 }},
	"memguard.budget":  {"CCE bandwidth budget (accesses/s)", func(c *Config, v float64) { c.MemGuardBudget = v }},

	"iptables.rate":  {"motor-port packet rate limit (pkt/s, 0=off)", func(c *Config, v float64) { c.IPTablesRate = v }},
	"iptables.burst": {"motor-port burst allowance (pkts)", func(c *Config, v float64) { c.IPTablesBurst = v }},

	"bus.capacity": {"DRAM service rate (accesses/s)", func(c *Config, v float64) { c.BusCapacity = v }},

	"monitor.enabled":       {"security monitor on/off (1/0)", func(c *Config, v float64) { c.MonitorEnabled = v != 0 }},
	"monitor.max-interval":  {"receiving-interval threshold (s)", func(c *Config, v float64) { c.Rules.MaxInterval = seconds(v) }},
	"monitor.max-attitude":  {"attitude-error threshold (deg)", func(c *Config, v float64) { c.Rules.MaxAttitudeError = v * math.Pi / 180 }},
	"monitor.attitude-hold": {"attitude-error persistence (s)", func(c *Config, v float64) { c.Rules.AttitudeHold = seconds(v) }},
	"monitor.arm-delay":     {"monitor arming delay (s)", func(c *Config, v float64) { c.ArmDelay = seconds(v) }},

	"envelope.geofence": {"geofence radius (m, 0=off)", func(c *Config, v float64) { c.Envelope.GeofenceRadius = v }},
	"envelope.descent":  {"max descent rate (m/s, 0=off)", func(c *Config, v float64) { c.Envelope.MaxDescentRate = v }},
	"envelope.hold":     {"envelope persistence (s)", func(c *Config, v float64) { c.Envelope.Hold = seconds(v) }},

	"wind":           {"wind gusts on/off (1/0)", func(c *Config, v float64) { c.Wind = v != 0 }},
	"telemetry.rate": {"flight-log sampling rate (Hz)", func(c *Config, v float64) { c.TelemetryRate = v }},
	"manual-until":   {"manual-mode handoff time (s)", func(c *Config, v float64) { c.ManualUntil = seconds(v) }},

	"drones":        {"fleet size (1 = single drone)", func(c *Config, v float64) { c.Drones = int(v) }},
	"fleet.spacing": {"formation spacing between members (m)", func(c *Config, v float64) { c.FleetSpacing = v }},

	"attack.member": {"fleet member hosting the attack code", func(c *Config, v float64) { c.Attack.Member = int(v) }},
	"attack.target": {"fleet member a flood aims at", func(c *Config, v float64) { c.Attack.Target = int(v) }},

	// Member setters apply to every spec in the plan, like the other
	// fault.* keys.
	"fault.member": {"fleet member the fault strikes", func(c *Config, v float64) {
		for i := range c.Faults.Specs {
			c.Faults.Specs[i].Member = int(v)
		}
	}},
	"fault.from-member": {"fleet member a mav-replay captures from", func(c *Config, v float64) {
		for i := range c.Faults.Specs {
			c.Faults.Specs[i].FromMember = int(v)
		}
	}},
}

func seconds(v float64) time.Duration {
	return time.Duration(v * float64(time.Second))
}

// ApplyParam sets one named parameter on a Config. See ParamKeys for
// the key set; unknown keys are an error so sweep typos fail loudly.
func ApplyParam(cfg *Config, key string, v float64) error {
	p, ok := paramSetters[key]
	if !ok {
		return fmt.Errorf("core: unknown parameter %q (known: %v)", key, ParamKeys())
	}
	p.set(cfg, v)
	return nil
}

// ParamKeys lists every sweepable parameter key, sorted.
func ParamKeys() []string {
	keys := make([]string, 0, len(paramSetters))
	for k := range paramSetters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParamDesc describes one parameter key for CLI help; empty for
// unknown keys.
func ParamDesc(key string) string { return paramSetters[key].desc }

// squareMission is the patrol flown by the mission scenarios: the
// square at 1–1.5 m altitude of examples/mission.
func squareMission() []control.Waypoint {
	return []control.Waypoint{
		{Pos: physics.Vec3{X: 1, Z: 1}, Hold: time.Second},
		{Pos: physics.Vec3{X: 1, Y: 1, Z: 1.5}, Hold: time.Second},
		{Pos: physics.Vec3{Y: 1, Z: 1}, Hold: time.Second},
		{Pos: physics.Vec3{Z: 1}, Hold: time.Second},
	}
}

// missionConfig is the shared base of the mission scenarios: the
// square patrol with the attitude rule loosened for mission tilt (see
// the mission example and TestMissionFalsePositive on the trade-off).
func missionBaseConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 40 * time.Second
	cfg.Rules.MaxAttitudeError = 25 * math.Pi / 180
	cfg.Mission = squareMission()
	return cfg
}

// The built-in scenario set: the four paper experiments, the CPU-DoS
// case the defenses are designed around, mission+attack combinations,
// and per-rule monitor ablations. Campaign sweeps add attack
// start/intensity and defense-parameter grids on top via Params.
func init() {
	Register("baseline",
		"attack-free flight of the full ContainerDrone architecture",
		func(Options) Config { return DefaultConfig() })

	Register("memdos",
		"Fig 5: memory-bandwidth DoS from the CCE with MemGuard ON — oscillation but stable",
		func(Options) Config { return memDoSConfig(true) })

	Register("memdos-unguarded",
		"Fig 4: memory-bandwidth DoS with MemGuard OFF — expect crash shortly after attack start",
		func(Options) Config { return memDoSConfig(false) })

	Register("kill",
		"Fig 6: complex controller killed at 12s — receiving-interval rule must fire",
		func(Options) Config {
			cfg := DefaultConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindKill, Start: 12 * time.Second}
			return cfg
		})

	Register("udpflood",
		"Fig 7: UDP flood into the HCE motor port at 8s — attitude rule must fire and recover",
		func(Options) Config {
			cfg := DefaultConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindFlood, Start: 8 * time.Second, Rate: 20000}
			return cfg
		})

	Register("cpuhog",
		"busy-loop CPU DoS inside the CCE at 10s — cpuset+priority caps contain it",
		func(Options) Config {
			cfg := DefaultConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindCPUHog, Start: 10 * time.Second}
			return cfg
		})

	Register("mission",
		"attack-free square-patrol mission flown by the containerized controller",
		func(Options) Config { return missionBaseConfig() })

	Register("mission-kill",
		"square patrol + controller kill at 18s — safety controller freezes and holds",
		func(Options) Config {
			cfg := missionBaseConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindKill, Start: 18 * time.Second}
			return cfg
		})

	Register("mission-flood",
		"square patrol + UDP flood at 12s — failover mid-mission",
		func(Options) Config {
			cfg := missionBaseConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindFlood, Start: 12 * time.Second, Rate: 20000}
			return cfg
		})

	Register("kill-no-interval",
		"monitor ablation: controller kill with the receiving-interval rule disabled — only the envelope rules can catch it",
		func(Options) Config {
			cfg := DefaultConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindKill, Start: 12 * time.Second}
			cfg.Rules.MaxInterval = time.Hour // ablated
			cfg.Envelope = monitor.DefaultEnvelopeRules()
			return cfg
		})

	Register("udpflood-no-attitude",
		"monitor ablation: UDP flood with the attitude-error rule disabled — only the envelope rules can catch it",
		func(Options) Config {
			cfg := DefaultConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindFlood, Start: 8 * time.Second, Rate: 20000}
			cfg.Rules.MaxAttitudeError = math.Pi // ablated (> any physical tilt short of inversion)
			cfg.Envelope = monitor.DefaultEnvelopeRules()
			return cfg
		})

	Register("udpflood-envelope",
		"UDP flood with both paper rules AND the extended envelope rules armed",
		func(Options) Config {
			cfg := DefaultConfig()
			cfg.Attack = attack.Plan{Kind: attack.KindFlood, Start: 8 * time.Second, Rate: 20000}
			cfg.Envelope = monitor.DefaultEnvelopeRules()
			return cfg
		})
}

// faultConfig is the shared base of the fault scenarios: the full
// ContainerDrone deployment with the extended envelope rules armed
// (faults stress physical state in ways the paper's two rules alone
// may miss), injecting one fault spec. Unmonitored variants disable
// the monitor to measure the undefended outcome.
func faultConfig(kind fault.Kind, start, dur time.Duration, monitored bool) Config {
	cfg := DefaultConfig()
	cfg.Envelope = monitor.DefaultEnvelopeRules()
	cfg.MonitorEnabled = monitored
	cfg.Faults = fault.Plan{Specs: []fault.Spec{{Kind: kind, Start: start, Duration: dur}}}
	return cfg
}

// The fault scenario set: eight failure modes the paper never
// measured, each registered with an unmonitored variant where the
// monitored/unmonitored comparison is informative. Magnitudes and
// rates use the fault package defaults; sweep fault.* params to vary
// them.
func init() {
	Register("gps-spoof",
		"GPS/Vicon spoof drifting 0.5 m/s from 10s — the stealth fault: every estimator believes the lie, the vehicle walks off station undetected",
		func(Options) Config { return faultConfig(fault.KindGPSSpoof, 10*time.Second, 0, true) })

	Register("gps-spoof-unmonitored",
		"GPS spoof with the monitor disabled — identical trajectory to gps-spoof, demonstrating the monitor is blind to spoofed state",
		func(Options) Config { return faultConfig(fault.KindGPSSpoof, 10*time.Second, 0, false) })

	Register("imu-bias",
		"0.08 rad/s gyro bias injected at 10s — estimator integrates the lie; attitude rule should catch the divergence",
		func(Options) Config { return faultConfig(fault.KindIMUBias, 10*time.Second, 0, true) })

	Register("imu-bias-unmonitored",
		"gyro bias with the monitor disabled — the undefended outcome of imu-bias",
		func(Options) Config { return faultConfig(fault.KindIMUBias, 10*time.Second, 0, false) })

	Register("baro-drop",
		"barometer wedges at 10s, repeating its last reading — altitude flows from the fused estimate, so the flight should shrug",
		func(Options) Config { return faultConfig(fault.KindBaroDrop, 10*time.Second, 0, true) })

	Register("netsplit",
		"HCE↔CCE bridge partitioned 10–15s — receiving-interval rule must fire within its threshold",
		func(Options) Config { return faultConfig(fault.KindNetSplit, 10*time.Second, 5*time.Second, true) })

	Register("netsplit-unmonitored",
		"bridge partition with the monitor disabled — the vehicle flies 5s on frozen motor commands",
		func(Options) Config { return faultConfig(fault.KindNetSplit, 10*time.Second, 5*time.Second, false) })

	Register("mav-replay",
		"on-path adversary replays captured motor frames from 12s — valid CRCs keep the interval rule happy; only attitude/envelope can notice",
		func(Options) Config { return faultConfig(fault.KindMAVReplay, 12*time.Second, 0, true) })

	Register("mav-replay-unmonitored",
		"MAVLink replay with the monitor disabled — the undefended outcome of mav-replay",
		func(Options) Config { return faultConfig(fault.KindMAVReplay, 12*time.Second, 0, false) })

	Register("jitter",
		"bridge degrades at 8s: 20ms σ jitter + 20% loss reorders and starves the 400 Hz motor stream",
		func(Options) Config { return faultConfig(fault.KindJitter, 8*time.Second, 0, true) })

	Register("prio-inv",
		"FIFO-95 spinner seizes the safety core for 400ms at 10s — detection itself is starved until the burst ends",
		func(Options) Config {
			return faultConfig(fault.KindPrioInv, 10*time.Second, 400*time.Millisecond, true)
		})

	Register("prio-inv-unmonitored",
		"priority-inversion burst with the monitor disabled — transient control gap, no failover",
		func(Options) Config {
			return faultConfig(fault.KindPrioInv, 10*time.Second, 400*time.Millisecond, false)
		})

	Register("rotor-decay",
		"rotor 0 loses 35% thrust efficiency from 10s (8%/s) — asymmetric damage the controllers must fight",
		func(Options) Config { return faultConfig(fault.KindRotorDecay, 10*time.Second, 0, true) })

	Register("rotor-decay-unmonitored",
		"rotor decay with the monitor disabled — the undefended outcome of rotor-decay",
		func(Options) Config { return faultConfig(fault.KindRotorDecay, 10*time.Second, 0, false) })
}

// swarmConfig is the shared base of the swarm scenarios: a 3-drone
// fleet hovering in line formation with the extended envelope rules
// armed (swarm faults stress position, which the paper's two rules
// alone cannot see).
func swarmConfig(dur time.Duration) Config {
	cfg := DefaultConfig()
	cfg.Drones = 3
	cfg.Duration = dur
	cfg.Envelope = monitor.DefaultEnvelopeRules()
	return cfg
}

// The swarm scenario set: N drones on one shared fabric, coordinated
// by a GCS (see core/fleet.go). These exercise the threat surface a
// single-vehicle scenario cannot: one compromised member attacking a
// peer, C2 partitions starving the formation, and cross-drone replay
// on the shared medium. Sweep drones / fleet.spacing / attack.member
// / fault.member to vary fleet shape and which member is hit.
func init() {
	Register("swarm-baseline",
		"attack-free 3-drone formation hover — the fleet regression baseline",
		func(Options) Config { return swarmConfig(20 * time.Second) })

	Register("swarm-mission",
		"3-drone fleet: the leader flies the square patrol, followers hold formation via the GCS",
		func(Options) Config {
			cfg := swarmConfig(40 * time.Second)
			cfg.Rules.MaxAttitudeError = 25 * math.Pi / 180
			cfg.Mission = squareMission()
			return cfg
		})

	Register("fleet-split",
		"3-drone patrol: the leader is partitioned from the GCS 12–22s — followers fly their last-heard slot, then resync",
		func(Options) Config {
			cfg := swarmConfig(40 * time.Second)
			cfg.Rules.MaxAttitudeError = 25 * math.Pi / 180
			cfg.Mission = squareMission()
			cfg.Faults = fault.Plan{Specs: []fault.Spec{
				{Kind: fault.KindFleetSplit, Start: 12 * time.Second, Duration: 10 * time.Second},
			}}
			return cfg
		})

	Register("swarm-peer-flood",
		"compromised member 2 floods the leader's motor port across the fabric from 8s — the leader's attitude rule must catch it",
		func(Options) Config {
			cfg := swarmConfig(20 * time.Second)
			cfg.Attack = attack.Plan{
				Kind: attack.KindFlood, Start: 8 * time.Second, Rate: 20000,
				Member: 2, Target: 0,
			}
			return cfg
		})

	Register("swarm-cross-replay",
		"on-path adversary captures member 1's motor frames and replays them at member 2 from 12s",
		func(Options) Config {
			cfg := swarmConfig(25 * time.Second)
			cfg.Faults = fault.Plan{Specs: []fault.Spec{
				{Kind: fault.KindMAVReplay, Start: 12 * time.Second, Member: 2, FromMember: 1},
			}}
			return cfg
		})

	Register("swarm-cross-replay-unmonitored",
		"cross-drone replay with the monitor disabled — the undefended outcome of swarm-cross-replay",
		func(Options) Config {
			cfg := swarmConfig(25 * time.Second)
			cfg.MonitorEnabled = false
			cfg.Faults = fault.Plan{Specs: []fault.Spec{
				{Kind: fault.KindMAVReplay, Start: 12 * time.Second, Member: 2, FromMember: 1},
			}}
			return cfg
		})

	Register("swarm-compromised",
		"member 1's own container floods its own HCE from 8s — the compromised-member sweep base (vary attack.member)",
		func(Options) Config {
			cfg := swarmConfig(20 * time.Second)
			cfg.Attack = attack.Plan{
				Kind: attack.KindFlood, Start: 8 * time.Second, Rate: 20000,
				Member: 1, Target: 1,
			}
			return cfg
		})
}

// memDoSConfig is the deployment of the memory experiments: complex
// controller on the host, the container holding only the attacker.
func memDoSConfig(memguardOn bool) Config {
	cfg := DefaultConfig()
	cfg.ComplexInContainer = false
	cfg.MonitorEnabled = false // this experiment isolates the memory defense
	cfg.MemGuardEnabled = memguardOn
	cfg.Attack = attack.Plan{Kind: attack.KindBandwidth, Start: 10 * time.Second, Rate: MemDoSAccessRate}
	return cfg
}
