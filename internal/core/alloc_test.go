package core

import (
	"testing"
	"time"
)

// stepAllocs measures allocations per Engine.Step after advancing the
// scenario to the given simulated time (past setup transients, attack
// launches, and any Simplex switch).
func stepAllocs(t *testing.T, cfg Config, warmup time.Duration, steps int) float64 {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.Run(warmup)
	return testing.AllocsPerRun(steps, sys.Engine.Step)
}

// TestEngineStepZeroAllocsFlood is the tentpole regression gate: in
// the paper's Fig 7 UDP-flood scenario, the steady-state tick — flood
// bursts, pooled packet delivery, frame decode, physics, telemetry —
// must be allocation-free. The warmup runs past the attack start
// (t=8s) and the resulting Simplex switch.
func TestEngineStepZeroAllocsFlood(t *testing.T) {
	if allocs := stepAllocs(t, ScenarioFlood(), 10*time.Second, 2000); allocs != 0 {
		t.Fatalf("flood steady-state Engine.Step allocates %.2f times per tick, want 0", allocs)
	}
}

// TestEngineStepZeroAllocsBaseline covers the attack-free hover of
// the full architecture: all five Table-I streams active.
func TestEngineStepZeroAllocsBaseline(t *testing.T) {
	if allocs := stepAllocs(t, ScenarioBaseline(), 3*time.Second, 2000); allocs != 0 {
		t.Fatalf("baseline steady-state Engine.Step allocates %.2f times per tick, want 0", allocs)
	}
}

// TestEngineStepZeroAllocsMemDoS covers the memory-DoS deployment
// (host-side complex controller, Bandwidth attacker in the container).
func TestEngineStepZeroAllocsMemDoS(t *testing.T) {
	if allocs := stepAllocs(t, ScenarioMemDoS(true), 12*time.Second, 2000); allocs != 0 {
		t.Fatalf("memdos steady-state Engine.Step allocates %.2f times per tick, want 0", allocs)
	}
}
