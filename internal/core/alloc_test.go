package core

import (
	"context"
	"testing"
	"time"
)

// stepAllocs measures allocations per Engine.Step after advancing the
// scenario to the given simulated time (past setup transients, attack
// launches, and any Simplex switch).
func stepAllocs(t *testing.T, cfg Config, warmup time.Duration, steps int) float64 {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.Run(warmup)
	return testing.AllocsPerRun(steps, sys.Engine.Step)
}

// TestEngineStepZeroAllocsFlood is the tentpole regression gate: in
// the paper's Fig 7 UDP-flood scenario, the steady-state tick — flood
// bursts, pooled packet delivery, frame decode, physics, telemetry —
// must be allocation-free. The warmup runs past the attack start
// (t=8s) and the resulting Simplex switch.
func TestEngineStepZeroAllocsFlood(t *testing.T) {
	if allocs := stepAllocs(t, ScenarioFlood(), 10*time.Second, 2000); allocs != 0 {
		t.Fatalf("flood steady-state Engine.Step allocates %.2f times per tick, want 0", allocs)
	}
}

// TestEngineStepZeroAllocsBaseline covers the attack-free hover of
// the full architecture: all five Table-I streams active.
func TestEngineStepZeroAllocsBaseline(t *testing.T) {
	if allocs := stepAllocs(t, ScenarioBaseline(), 3*time.Second, 2000); allocs != 0 {
		t.Fatalf("baseline steady-state Engine.Step allocates %.2f times per tick, want 0", allocs)
	}
}

// TestEngineStepZeroAllocsMemDoS covers the memory-DoS deployment
// (host-side complex controller, Bandwidth attacker in the container).
func TestEngineStepZeroAllocsMemDoS(t *testing.T) {
	if allocs := stepAllocs(t, ScenarioMemDoS(true), 12*time.Second, 2000); allocs != 0 {
		t.Fatalf("memdos steady-state Engine.Step allocates %.2f times per tick, want 0", allocs)
	}
}

// warmRunAllocs measures allocations of one complete steady-state
// campaign run — Reset, full flight, Result extraction — after the
// warm-up run has populated every pool and scratch buffer.
func warmRunAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	cfg.Duration = 2 * time.Second
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	run := func() {
		sys.Reset(7)
		if err := sys.RunContextInto(context.Background(), &res); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	return testing.AllocsPerRun(3, run)
}

// TestWarmCampaignRunAllocs extends the zero-alloc regression gate
// from a single Engine.Step to an entire steady-state campaign run:
// with the System reused and the Result buffers pooled, a warm
// baseline run is allocation-free end to end, and a warm flood run is
// bounded by its per-launch attack setup (flood generator, trace
// events), not by anything per-tick or per-record.
func TestWarmCampaignRunAllocs(t *testing.T) {
	if allocs := warmRunAllocs(t, ScenarioBaseline()); allocs > 4 {
		t.Fatalf("warm baseline campaign run allocates %.1f times, want <= 4", allocs)
	}
	flood := ScenarioFlood()
	// Launch the attack inside the shortened flight so the warm run
	// exercises the whole flood path, not an attack-free prefix.
	flood.Attack.Start = 500 * time.Millisecond
	if allocs := warmRunAllocs(t, flood); allocs > 64 {
		t.Fatalf("warm flood campaign run allocates %.1f times, want <= 64", allocs)
	}
}
