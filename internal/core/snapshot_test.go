package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"containerdrone/internal/sim"
)

// snapEquivScenarios covers the structurally distinct snapshot paths:
// a flood attack (network + container task arrival), a sensor fault
// (RNG-heavy), a mission kill (mission state + monitor failover), the
// host-deployment memory DoS (no container controller), link jitter
// (netsim link swap), and the MAVLink replay (replayFrames capture).
var snapEquivScenarios = []string{
	"udpflood", "gps-spoof", "mission-kill", "memdos", "jitter", "mav-replay",
}

// runOutcome flattens the comparable parts of a Result for equality
// checks: everything except the Log/Trace pointers, which are compared
// separately by value.
type runOutcome struct {
	crashed    bool
	crashTime  time.Duration
	switched   bool
	switchTime time.Duration
	switchRule string
	violations int
	garbage    int64
	mission    bool
	metrics    [3]float64
	tasks      []TaskReport
	streams    []StreamStat
	idle       [NumCores]float64
	logLen     int
	traceLen   int
}

func outcomeOf(r *Result) runOutcome {
	return runOutcome{
		crashed: r.Crashed, crashTime: r.CrashTime,
		switched: r.Switched, switchTime: r.SwitchTime, switchRule: string(r.SwitchRule),
		violations: len(r.Violations), garbage: r.GarbagePkts, mission: r.MissionComplete,
		metrics: [3]float64{r.Metrics.RMSError, r.Metrics.MaxDeviation, r.Metrics.MaxTilt},
		tasks:   r.Tasks, streams: r.Streams, idle: r.IdleRates,
		logLen: r.Log.Len(), traceLen: r.Trace.Len(),
	}
}

func assertSameOutcome(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(outcomeOf(want), outcomeOf(got)) {
		t.Fatalf("%s: outcome diverged\nwant %+v\ngot  %+v", label, outcomeOf(want), outcomeOf(got))
	}
	ws, gs := want.Log.Samples(), got.Log.Samples()
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("%s: log sample %d diverged\nwant %+v\ngot  %+v", label, i, ws[i], gs[i])
		}
	}
}

// TestSnapshotRestoreEquivalence is the core-level restore gate: a run
// paused mid-prefix, snapshotted, and resumed — on the donor itself and
// on a restored warm sibling — must match a cold run bit for bit.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot equivalence is slow; run without -short")
	}
	const seed = 7
	const dur = 14 * time.Second
	ctx := context.Background()
	for _, name := range snapEquivScenarios {
		t.Run(name, func(t *testing.T) {
			cfg, err := Build(name, Options{Seed: seed, Duration: dur})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			coldRes := cold.Run()

			// Donor: pause two seconds in (strictly before every onset
			// in the list above), snapshot, and finish the flight.
			donor, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			forkTick := sim.TicksFor(2 * time.Second)
			if err := donor.RunToTickContext(ctx, forkTick); err != nil {
				t.Fatal(err)
			}
			if err := donor.Snapshotable(); err != nil {
				t.Fatalf("donor not snapshotable at tick %d: %v", forkTick, err)
			}
			snap := donor.Snapshot()
			if snap.Tick() != forkTick {
				t.Fatalf("snapshot tick = %d, want %d", snap.Tick(), forkTick)
			}
			var donorRes Result
			if err := donor.ResumeContextInto(ctx, &donorRes); err != nil {
				t.Fatal(err)
			}
			assertSameOutcome(t, "donor resume", coldRes, &donorRes)

			// Warm sibling: dirty it with a full decoy flight under a
			// different seed, then restore the snapshot and resume.
			warm, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm.Reset(0xDECAF)
			warm.Run()
			warm.RestoreFrom(seed, snap)
			var forkRes Result
			if err := warm.ResumeContextInto(ctx, &forkRes); err != nil {
				t.Fatal(err)
			}
			assertSameOutcome(t, "warm fork", coldRes, &forkRes)

			// The snapshot survives its forks: restore a second sibling
			// from the same capture and it must still match.
			again, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			again.RestoreFrom(seed, snap)
			var againRes Result
			if err := again.ResumeContextInto(ctx, &againRes); err != nil {
				t.Fatal(err)
			}
			assertSameOutcome(t, "second fork from same snapshot", coldRes, &againRes)
		})
	}
}
