package core

import (
	"testing"

	"containerdrone/internal/monitor"
)

// TestEnvelopeRulesCatchWhatAttitudeMisses runs the UDP flood with the
// attitude rule effectively disabled: the extended descent/geofence
// envelope must still rescue the vehicle. This is the gap the
// extension closes — a destabilized loop can lose altitude while
// oscillating below any reasonable attitude threshold.
func TestEnvelopeRulesCatchWhatAttitudeMisses(t *testing.T) {
	cfg := ScenarioFlood()
	cfg.Rules.MaxAttitudeError = 10 // radians: never fires
	// Tight hover envelope: the vertical-velocity estimate lags the
	// 10 Hz position fixes, so detection thresholds must lead the
	// physical limits by a margin.
	cfg.Envelope = monitor.DefaultEnvelopeRules()
	cfg.Envelope.MaxDescentRate = 0.5
	cfg.Envelope.GeofenceRadius = 0.4
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatalf("crashed at %v despite envelope rules", r.CrashTime)
	}
	if !r.Switched {
		t.Fatal("envelope rules never fired")
	}
	if r.SwitchRule != monitor.RuleDescent && r.SwitchRule != monitor.RuleGeofence {
		t.Fatalf("switch rule = %v, want an envelope rule", r.SwitchRule)
	}
}

// TestEnvelopeRulesQuietInNormalFlight guards against false positives:
// the default envelope must never fire during a clean hover.
func TestEnvelopeRulesQuietInNormalFlight(t *testing.T) {
	cfg := ScenarioBaseline()
	cfg.Envelope = monitor.DefaultEnvelopeRules()
	r := mustRun(t, cfg)
	if r.Switched {
		t.Fatalf("envelope rule %v fired during clean flight", r.SwitchRule)
	}
	if r.Crashed {
		t.Fatal("clean flight crashed")
	}
}

// TestEnvelopePlusPaperRulesCompose verifies the rule sets compose:
// with both active during the flood, whichever fires first wins and
// the flight still recovers.
func TestEnvelopePlusPaperRulesCompose(t *testing.T) {
	cfg := ScenarioFlood()
	cfg.Envelope = monitor.DefaultEnvelopeRules()
	r := mustRun(t, cfg)
	if r.Crashed {
		t.Fatalf("crashed at %v", r.CrashTime)
	}
	if !r.Switched {
		t.Fatal("no rule fired")
	}
}
