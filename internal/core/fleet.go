package core

import (
	"encoding/binary"
	"math"
	"time"

	"containerdrone/internal/mavlink"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
	"containerdrone/internal/sim"
)

// The fleet coordinator: a ground-control station on the shared
// fabric that keeps N drones in formation. The leader (member 0)
// flies the mission and uplinks its current setpoint at 20 Hz; the
// GCS re-broadcasts each follower's formation slot (leader setpoint +
// member offset) on a per-member downlink. Followers track the last
// slot they heard — so a partition between a member and the GCS
// (fault.KindFleetSplit) leaves that member flying a stale target,
// exactly the degradation mode a real swarm shows when its C2 link
// drops.
const (
	gcsHost = "gcs"
	// gcsUplinkPort receives FLEET_STATE from every member.
	gcsUplinkPort = 14550
	// fleetDownlinkPort is bound on each follower host for
	// FLEET_SETPOINT broadcasts.
	fleetDownlinkPort = 14555
)

// Fleet MAVLink messages, registered alongside the Table-I streams.
// (The gcs package's external link owns 77/78; these in-sim messages
// claim 80/81.)
const (
	msgIDFleetState    uint8 = 80
	msgIDFleetSetpoint uint8 = 81

	fleetStatePayloadSize    = 1 + 24 // member, setpoint xyz (float64)
	fleetSetpointPayloadSize = 24     // slot xyz (float64)
)

func init() {
	mavlink.RegisterExternal(msgIDFleetState, "FLEET_STATE", fleetStatePayloadSize, 113)
	mavlink.RegisterExternal(msgIDFleetSetpoint, "FLEET_SETPOINT", fleetSetpointPayloadSize, 71)
}

func putVec3(p []byte, v physics.Vec3) {
	binary.LittleEndian.PutUint64(p[0:], math.Float64bits(v.X))
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(v.Y))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(v.Z))
}

func getVec3(p []byte) physics.Vec3 {
	return physics.Vec3{
		X: math.Float64frombits(binary.LittleEndian.Uint64(p[0:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		Z: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}
}

// buildFleet wires the coordinator: the GCS endpoint and per-member
// routes on the fabric, one uplink task per member, one downlink-drain
// task per follower, and the GCS engine proc. Registered after every
// member's stacks so a single-drone System's wiring is untouched; the
// proc runs at priority 8 — after network delivery (0) and fault
// injection (5), before any member's scheduler (10).
func (s *System) buildFleet() {
	s.gcsEP = s.Net.Bind(netsim.Addr{Host: gcsHost, Port: gcsUplinkPort}, 64*len(s.drones))
	s.downRoutes = make([]*netsim.Route, len(s.drones))
	for _, d := range s.drones {
		d.upRoute = s.Net.Route(
			netsim.Addr{Host: d.hostName, Port: 9100},
			netsim.Addr{Host: gcsHost, Port: gcsUplinkPort})
		if d.idx > 0 {
			d.fleetEP = s.Net.Bind(netsim.Addr{Host: d.hostName, Port: fleetDownlinkPort}, 64)
			s.downRoutes[d.idx] = s.Net.Route(
				netsim.Addr{Host: gcsHost, Port: 9200},
				netsim.Addr{Host: d.hostName, Port: fleetDownlinkPort})
		}
		s.buildFleetTasks(d)
	}
	s.Engine.Register("fleet", 50*time.Millisecond, 8, sim.ProcFunc(func(now time.Duration) {
		s.fleetStep(now)
	}))
}

// buildFleetTasks adds the member's C2 threads: every member uplinks
// FLEET_STATE at 20 Hz; followers additionally drain their downlink.
// Both live on the driver core below the flight-critical drivers —
// losing C2 must never preempt flight control.
func (s *System) buildFleetTasks(d *Drone) {
	d.CPU.Add(&sched.Task{
		Name: "fleet-uplink", Core: CoreDriver, Priority: 40,
		Period: 50 * time.Millisecond, WCET: 80 * time.Microsecond,
		AccessRate: 2e6, MemBound: 0.3,
		Work: func(now time.Duration) {
			sp := d.curSetpoint
			if d.idx > 0 {
				sp = d.fleetSP
			}
			if cap(d.sendPayload) < fleetStatePayloadSize {
				d.sendPayload = make([]byte, fleetStatePayloadSize)
			}
			d.sendPayload = d.sendPayload[:fleetStatePayloadSize]
			d.sendPayload[0] = byte(d.idx)
			putVec3(d.sendPayload[1:], sp)
			d.sendFrame = mavlink.AppendEncode(d.sendFrame[:0], mavlink.Frame{
				Seq: uint8(d.seqOut), SysID: uint8(d.idx + 1), CompID: 2,
				MsgID: msgIDFleetState, Payload: d.sendPayload,
			})
			d.seqOut++
			d.upRoute.Send(d.sendFrame)
		},
	})
	if d.idx > 0 {
		d.CPU.Add(&sched.Task{
			Name: "fleet-recv", Core: CoreDriver, Priority: 40,
			Period: 20 * time.Millisecond, WCET: 60 * time.Microsecond,
			AccessRate: 2e6, MemBound: 0.3,
			Work: func(now time.Duration) {
				for {
					pkt, ok := d.fleetEP.Recv()
					if !ok {
						return
					}
					frame, _, err := mavlink.Decode(pkt.Payload)
					if err != nil || frame.MsgID != msgIDFleetSetpoint {
						continue
					}
					d.fleetSP = getVec3(frame.Payload)
				}
			},
		})
	}
}

// fleetStep is the GCS: drain the uplink, track the leader's current
// setpoint, and broadcast each follower's formation slot.
func (s *System) fleetStep(now time.Duration) {
	for {
		pkt, ok := s.gcsEP.Recv()
		if !ok {
			break
		}
		frame, _, err := mavlink.Decode(pkt.Payload)
		if err != nil || frame.MsgID != msgIDFleetState || len(frame.Payload) != fleetStatePayloadSize {
			continue
		}
		if int(frame.Payload[0]) == 0 {
			s.leaderSP = getVec3(frame.Payload[1:])
		}
	}
	for _, d := range s.drones[1:] {
		slot := s.leaderSP.Add(d.offset)
		if cap(s.gcsPayload) < fleetSetpointPayloadSize {
			s.gcsPayload = make([]byte, fleetSetpointPayloadSize)
		}
		s.gcsPayload = s.gcsPayload[:fleetSetpointPayloadSize]
		putVec3(s.gcsPayload, slot)
		s.fleetSeq++
		s.gcsFrame = mavlink.AppendEncode(s.gcsFrame[:0], mavlink.Frame{
			Seq: uint8(s.fleetSeq), SysID: 255, CompID: 1,
			MsgID: msgIDFleetSetpoint, Payload: s.gcsPayload,
		})
		s.downRoutes[d.idx].Send(s.gcsFrame)
	}
}
