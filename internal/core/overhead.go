package core

import (
	"fmt"
	"time"

	"containerdrone/internal/cgroup"
	"containerdrone/internal/container"
	"containerdrone/internal/netsim"
	"containerdrone/internal/sched"
	"containerdrone/internal/sim"
	"containerdrone/internal/vm"
)

// OverheadCase selects a row of the paper's Table II.
type OverheadCase int

// Table II rows.
const (
	OverheadNative    OverheadCase = iota // "No container nor VM"
	OverheadVM                            // "One VM"
	OverheadContainer                     // "One container"
)

// String names the case as the paper's row label.
func (c OverheadCase) String() string {
	switch c {
	case OverheadNative:
		return "No container nor VM"
	case OverheadVM:
		return "One VM"
	case OverheadContainer:
		return "One container"
	default:
		return "unknown"
	}
}

// OverheadResult is one measured Table II row: per-core idle rates.
type OverheadResult struct {
	Case      OverheadCase
	IdleRates [NumCores]float64
}

// RunOverheadCase measures per-core CPU idle rates over the given
// duration with the selected virtualization layer running idle beside
// the baseline OS load — the paper's Table II methodology.
func RunOverheadCase(c OverheadCase, duration time.Duration) (OverheadResult, error) {
	cpu := sched.NewCPU(NumCores, sim.Tick, nil, nil)
	AddSystemBaseline(cpu)

	switch c {
	case OverheadNative:
		// nothing extra
	case OverheadVM:
		if _, err := vm.Start(cpu, vm.DefaultQEMUConfig()); err != nil {
			return OverheadResult{}, err
		}
	case OverheadContainer:
		net := netsim.New(nil, nil)
		rt, err := container.NewRuntime(container.Config{
			CPU: cpu, Net: net, Root: cgroup.NewRoot(), HostName: hceHost,
			DaemonCore: CoreDriver, DaemonUtil: 0.002,
		})
		if err != nil {
			return OverheadResult{}, err
		}
		cce, err := rt.Create(container.Spec{
			Name:   "idle-cce",
			Image:  container.Image{Name: "resin/rpi-raspbian", Tag: "jessie", SizeMB: 120},
			CPUSet: cgroup.NewCPUSet(CoreContainer),
		})
		if err != nil {
			return OverheadResult{}, err
		}
		if err := cce.Start(); err != nil {
			return OverheadResult{}, err
		}
		// The idle container still runs an init/idle process.
		idle := &sched.Task{
			Name: "container-init", Core: CoreContainer, Priority: 1,
			Period: 10 * time.Millisecond, WCET: 100 * time.Microsecond,
		}
		if err := cce.StartTask(idle); err != nil {
			return OverheadResult{}, err
		}
	default:
		return OverheadResult{}, fmt.Errorf("core: unknown overhead case %d", c)
	}

	steps := int64(duration / sim.Tick)
	for i := int64(0); i < steps; i++ {
		cpu.Tick(time.Duration(i) * sim.Tick)
	}
	res := OverheadResult{Case: c}
	for core := 0; core < NumCores; core++ {
		res.IdleRates[core] = cpu.IdleRate(core)
	}
	return res, nil
}

// TableII runs all three cases and returns the rows in paper order.
func TableII(duration time.Duration) ([]OverheadResult, error) {
	var out []OverheadResult
	for _, c := range []OverheadCase{OverheadNative, OverheadVM, OverheadContainer} {
		r, err := RunOverheadCase(c, duration)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
