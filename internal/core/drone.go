package core

import (
	"fmt"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/cgroup"
	"containerdrone/internal/container"
	"containerdrone/internal/control"
	"containerdrone/internal/estimate"
	"containerdrone/internal/mavlink"
	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
	"containerdrone/internal/monitor"
	"containerdrone/internal/netsim"
	"containerdrone/internal/physics"
	"containerdrone/internal/sched"
	"containerdrone/internal/sensors"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// Drone is one vehicle's full stack on the shared fabric: its own
// quad-core computer (scheduler, DRAM bus, MemGuard), container
// runtime and CCE, airframe, sensor suite, estimators, controllers,
// security monitor, and flight log. Drones share only the simulation
// engine, the network fabric, and the event trace, all owned by the
// System; member 0 is the fleet leader and flies the mission.
type Drone struct {
	sys *System
	idx int

	// hostName is this member's HCE identity on the fabric: "hce" for
	// member 0 (the single-drone name), "hce<i>" beyond.
	hostName string

	CPU     *sched.CPU
	Bus     *membw.Bus
	Guard   *memguard.Guard
	Runtime *container.Runtime
	CCE     *container.Container
	Quad    *physics.Quad
	Monitor *monitor.Monitor
	Log     *telemetry.FlightLog

	safetyCtl  *control.Cascade
	complexCtl *control.Cascade
	wind       *physics.Wind
	rcScript   *sensors.RCScript
	suite      *sensors.Suite

	// Each control environment runs its own state estimator, exactly
	// as each PX4 instance runs its own EKF: the HCE filter feeds the
	// safety controller and the monitor; the CCE filter is owned by
	// the complex controller and fed from the MAVLink stream.
	hostEst *estimate.Filter
	cceEst  *estimate.Filter

	// Mission state (leader only; nil when flying a static setpoint).
	mission     *control.Mission
	curSetpoint physics.Vec3 // what the complex controller is tracking
	holdSP      physics.Vec3 // the safety controller's hold target

	// Fleet state: the formation offset from the leader's setpoint,
	// the member's spawn/hover position, and — for followers — the
	// last formation target received from the GCS.
	offset  physics.Vec3
	initPos physics.Vec3
	fleetSP physics.Vec3
	fleetEP *netsim.Endpoint // follower downlink (nil on the leader)
	upRoute *netsim.Route    // host → GCS uplink (swarm only)

	// host-side sensor caches written by the driver tasks
	lastIMU  sensors.IMUReading
	lastGPS  sensors.GPSReading
	lastBaro sensors.BaroReading
	lastRC   sensors.RCReading

	// actuator command paths
	complexCmd   [4]float64
	complexCmdAt time.Duration
	safetyCmd    [4]float64
	hostCmd      [4]float64

	hceMotorEP  *netsim.Endpoint
	cceSensorEP *netsim.Endpoint

	complexTask *sched.Task
	recvTask    *sched.Task
	flood       *attack.Flood

	// MAVLink replay capture: when a fault plan taps this member, the
	// receiving thread copies the first replayMax valid motor frames
	// it sees — the adversary's tap on the bridge.
	replayFrames [][]byte
	replayMax    int

	// Shared-surface fault accounting, so same-kind fault windows can
	// overlap without one injector's End healing a surface another
	// injector still degrades (see fault.go).
	splitDepth      int
	baroDropDepth   int
	gyroBiasDepth   int
	gpsSpoofDepth   int
	fleetSplitDepth int

	streams map[string]*StreamStat
	// Per-stream stat pointers, resolved once at wiring time so the
	// per-frame hot paths never hash the streams map.
	imuStream, baroStream, gpsStream, rcStream, motorStream *StreamStat

	seqOut  uint32
	garbage int64 // undecodable packets seen by the receiver

	// Steady-state encode scratch. The kernel is single-threaded and
	// netsim.Send copies payloads into its pool, so one payload buffer
	// and one frame buffer serve every host-side stream without
	// allocating per frame.
	sendPayload []byte
	sendFrame   []byte

	// hostIn is the host-side controller-input scratch; see hostInputs.
	hostIn control.Inputs

	// CCE controller per-run state and scratch (fields rather than
	// closure locals so Reset can rewind them between warm-pool runs).
	cceIn           control.Inputs
	cceSeq          uint32
	cceMotorPayload []byte
	cceMotorFrame   []byte

	// The per-member RNG streams, held so Reset(seed) can re-derive
	// them in place in exactly the Split order New used.
	sensorRNG, windRNG *sim.RNG

	// trim is the hover throttle vector every run starts from.
	trim [4]float64

	// Trace component names: bare ("monitor") for a single-drone
	// System, member-tagged ("monitor#1") in a swarm.
	compMonitor, compFault, compAttack, compPhysics string
}

// Index returns this member's position in the fleet (0 = leader).
func (d *Drone) Index() int { return d.idx }

// Host returns this member's HCE identity on the shared fabric.
func (d *Drone) Host() string { return d.hostName }

// comp tags a trace component with the member index in swarm runs;
// single-drone traces keep the classic bare names.
func (s *System) comp(idx int, name string) string {
	if s.Cfg.DroneCount() == 1 {
		return name
	}
	return fmt.Sprintf("%s#%d", name, idx)
}

// newDrone builds and wires one member's full stack. rng is the
// System's root generator; each drone splits its sensor (and wind)
// streams from it in member order, after the shared fabric stream.
func newDrone(s *System, idx int, rng *sim.RNG) (*Drone, error) {
	cfg := s.Cfg
	logCap := 0
	if cfg.TelemetryRate > 0 {
		logCap = int(cfg.Duration.Seconds()*cfg.TelemetryRate) + 1
	}
	d := &Drone{
		sys:      s,
		idx:      idx,
		hostName: memberHost(idx),
		Log:      telemetry.NewFlightLogCap(logCap),
		streams:  make(map[string]*StreamStat),
	}
	d.compMonitor = s.comp(idx, "monitor")
	d.compFault = s.comp(idx, "fault")
	d.compAttack = s.comp(idx, "attack")
	d.compPhysics = s.comp(idx, "physics")
	d.offset = memberOffset(cfg, idx)
	d.initPos = cfg.Setpoint.Add(d.offset)

	// --- physical substrates -------------------------------------
	d.Bus = membw.NewBus(NumCores, cfg.BusCapacity, sim.Tick)
	d.Guard = memguard.New(NumCores)
	d.Guard.SetEnabled(cfg.MemGuardEnabled)
	if cfg.MemGuardBudget > 0 {
		d.Guard.SetBudget(CoreContainer, cfg.MemGuardBudget*memguard.DefaultPeriod.Seconds())
	}
	d.CPU = sched.NewCPU(NumCores, sim.Tick, d.Bus, d.Guard)

	if cfg.IPTablesRate > 0 {
		s.Net.Limit(netsim.Addr{Host: d.hostName, Port: PortMotor}, cfg.IPTablesRate, cfg.IPTablesBurst)
	}

	root := cgroup.NewRoot()
	rt, err := container.NewRuntime(container.Config{
		CPU: d.CPU, Net: s.Net, Root: root, HostName: d.hostName,
		DaemonCore: CoreDriver, DaemonUtil: 0.002,
	})
	if err != nil {
		return nil, err
	}
	d.Runtime = rt
	cceName := "cce"
	if idx > 0 {
		cceName = fmt.Sprintf("cce%d", idx)
	}
	cce, err := rt.Create(container.Spec{
		Name:             cceName,
		Image:            container.Image{Name: "resin/rpi-raspbian", Tag: "jessie", SizeMB: 120},
		CPUSet:           cgroup.NewCPUSet(CoreContainer),
		RTPrioCap:        sched.PrioContainer,
		MemoryLimitBytes: 256 << 20,
		Ports: []container.PortMapping{
			{HostPort: PortMotor, ContainerPort: PortMotor},
			{HostPort: PortSensors, ContainerPort: PortSensors},
		},
	})
	if err != nil {
		return nil, err
	}
	d.CCE = cce
	if err := cce.Start(); err != nil {
		return nil, err
	}

	// --- vehicle, sensors, controllers ---------------------------
	d.Quad = physics.NewQuad(physics.DefaultParams())
	d.Quad.State.Pos = d.initPos
	hov := d.Quad.HoverThrottle()
	d.trim = [4]float64{hov, hov, hov, hov}
	d.Quad.SetMotors(d.trim)
	d.Quad.SettleRotors()
	d.complexCmd, d.safetyCmd, d.hostCmd = d.trim, d.trim, d.trim

	d.curSetpoint = d.initPos
	d.holdSP = d.initPos
	d.fleetSP = d.initPos
	if idx == 0 && len(cfg.Mission) > 0 {
		d.mission = control.NewMission(cfg.Mission...)
	}

	d.sensorRNG = rng.Split()
	d.suite = sensors.NewSuite(cfg.Noise, d.sensorRNG.Norm)
	d.rcScript = sensors.NewRCScript()
	if cfg.ManualUntil > 0 {
		d.rcScript.
			Add(0, sensors.RCReading{Mode: sensors.ModeManual, Throttle: 0.5}).
			Add(uint64(cfg.ManualUntil/time.Microsecond),
				sensors.RCReading{Mode: sensors.ModePosition, Throttle: 0.5})
	}
	if cfg.Wind {
		d.windRNG = rng.Split()
		d.wind = physics.NewWind(0.25, 0.6, 2.0, d.windRNG.Norm)
	}

	af := control.AirframeFrom(d.Quad.Params)
	d.safetyCtl = control.NewCascade(control.SafetyGains(), af, 250)
	d.complexCtl = control.NewCascade(control.ComplexGains(), af, 400)
	// Member 0 keeps the paper's cold-start estimator (dead reckoning
	// from the origin until the first fix — every single-drone golden
	// trace pins that transient). Followers launch from a surveyed
	// formation slot: seeding the filters there avoids fabricating a
	// multi-meter initial innovation that would ring the vehicle right
	// through the monitor's arming.
	estCfg := estimate.DefaultConfig()
	if idx > 0 {
		estCfg.Home = d.initPos
	}
	d.hostEst = estimate.New(estCfg)
	d.cceEst = estimate.New(estCfg)

	d.Monitor = monitor.New(cfg.Rules)
	d.Monitor.SetEnvelope(cfg.Envelope)
	d.Monitor.OnSwitch = func(now time.Duration, rule monitor.Rule) {
		s.Trace.Add(now, d.compMonitor, "rule %s violated: switching to safety controller, killing receiver", rule)
		if d.recvTask != nil {
			d.CPU.Remove(d.recvTask)
		}
		if s.Hooks.OnSwitch != nil {
			s.Hooks.OnSwitch(now, rule)
		}
	}
	d.Monitor.OnViolation = func(v monitor.Violation) {
		if s.Hooks.OnViolation != nil {
			s.Hooks.OnViolation(v)
		}
	}

	d.hceMotorEP = s.Net.Bind(netsim.Addr{Host: d.hostName, Port: PortMotor}, 256)
	if ep, err := cce.Bind(PortSensors, 256); err == nil {
		d.cceSensorEP = ep
	} else {
		return nil, err
	}

	d.imuStream = d.registerStream("IMU", PortSensors, mavlink.IMUPayloadSize+mavlink.Overhead)
	d.baroStream = d.registerStream("Barometer", PortSensors, mavlink.BaroPayloadSize+mavlink.Overhead)
	d.gpsStream = d.registerStream("GPS", PortSensors, mavlink.GPSPayloadSize+mavlink.Overhead)
	d.rcStream = d.registerStream("RC", PortSensors, mavlink.RCPayloadSize+mavlink.Overhead)
	d.motorStream = d.registerStream("Motor Output", PortMotor, mavlink.MotorPayloadSize+mavlink.Overhead)

	d.buildHCETasks()
	if cfg.ComplexInContainer {
		if err := d.buildCCEController(); err != nil {
			return nil, err
		}
	} else {
		d.buildHostComplexController()
	}
	d.buildEngineProcs()
	return d, nil
}

// memberHost names member idx's HCE on the fabric.
func memberHost(idx int) string {
	if idx == 0 {
		return hceHost
	}
	return fmt.Sprintf("hce%d", idx)
}

// memberOffset is the member's slot in the line formation: spacing
// meters along -X per index, so followers trail the leader.
func memberOffset(cfg Config, idx int) physics.Vec3 {
	if idx == 0 {
		return physics.Vec3{}
	}
	return physics.Vec3{X: -cfg.Spacing() * float64(idx)}
}

// reset rewinds the member to its just-built state. The caller has
// already reset the shared substrates (engine, fabric, trace) and
// re-derived this member's RNG streams.
func (d *Drone) reset() {
	d.CPU.Reset()
	d.Bus.Reset()
	d.Guard.Reset()
	d.Runtime.NAT().ResetCounters()
	d.CCE.Reset()

	// Vehicle back to the start of the flight envelope.
	d.Quad.Reset()
	d.Quad.State.Pos = d.initPos
	d.Quad.SetMotors(d.trim)
	d.Quad.SettleRotors()
	d.complexCmd, d.safetyCmd, d.hostCmd = d.trim, d.trim, d.trim
	if d.wind != nil {
		d.wind.Reset()
	}

	// Sensors, estimators, controllers, monitor, mission.
	d.suite.Reset()
	d.hostEst.Reset()
	d.cceEst.Reset()
	d.safetyCtl.Reset()
	d.complexCtl.Reset()
	d.Monitor.Reset()
	if d.mission != nil {
		d.mission.Reset()
	}
	d.curSetpoint = d.initPos
	d.holdSP = d.initPos
	d.fleetSP = d.initPos

	// Recording and per-run caches.
	d.Log.Reset()
	d.lastIMU = sensors.IMUReading{}
	d.lastGPS = sensors.GPSReading{}
	d.lastBaro = sensors.BaroReading{}
	d.lastRC = sensors.RCReading{}
	d.complexCmdAt = 0
	d.seqOut = 0
	d.garbage = 0
	d.cceIn = control.Inputs{}
	d.cceSeq = 0
	d.flood = nil
	for _, st := range d.streams {
		st.Packets = 0
	}

	// Fault-layer shared-surface accounting.
	clear(d.replayFrames)
	d.replayFrames = d.replayFrames[:0]
	d.splitDepth = 0
	d.baroDropDepth = 0
	d.gyroBiasDepth = 0
	d.gpsSpoofDepth = 0
	d.fleetSplitDepth = 0
}

func (d *Drone) registerStream(name string, port, size int) *StreamStat {
	st := &StreamStat{Name: name, Port: port, FrameSize: size}
	d.streams[name] = st
	return st
}

// sendToCCE encodes and ships one sensor frame into the container.
// The frame is built in the member's scratch buffer; HostSend copies
// it into the network's pool, so nothing here allocates at steady
// state.
func (d *Drone) sendToCCE(stream *StreamStat, msgID uint8, payload []byte) {
	if !d.sys.Cfg.ComplexInContainer {
		return
	}
	d.sendFrame = mavlink.AppendEncode(d.sendFrame[:0], mavlink.Frame{
		Seq: uint8(d.seqOut), SysID: 1, CompID: 1, MsgID: msgID, Payload: payload,
	})
	d.seqOut++
	if err := d.Runtime.HostSend(d.CCE, 9000, PortSensors, d.sendFrame); err == nil {
		stream.Packets++
	}
}

// buildHCETasks registers the host control environment's task set:
// kernel drivers at FIFO 90, receiver and monitor as middle-priority
// I/O threads, safety controller at FIFO 20, plus baseline system load
// (the paper's "about 40 priority" Linux interrupt work).
func (d *Drone) buildHCETasks() {
	// Baseline OS load (matches the native row of Table II).
	AddSystemBaseline(d.CPU)

	// IMU driver: samples inertial state, caches it, feeds the CCE.
	d.CPU.Add(&sched.Task{
		Name: "drv-imu", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 4 * time.Millisecond, WCET: 300 * time.Microsecond,
		AccessRate: 15e6, MemBound: 0.6,
		Work: func(now time.Duration) {
			d.lastIMU = d.suite.SampleIMU(d.Quad, nowUS(now))
			d.hostEst.FeedIMU(d.lastIMU)
			var p []byte
			d.sendPayload, p = mavlink.AppendIMU(d.sendPayload[:0], d.lastIMU)
			d.sendToCCE(d.imuStream, mavlink.MsgIDIMU, p)
		},
	})
	// Barometer driver.
	d.CPU.Add(&sched.Task{
		Name: "drv-baro", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 20 * time.Millisecond, WCET: 120 * time.Microsecond,
		AccessRate: 5e6, MemBound: 0.5,
		Work: func(now time.Duration) {
			d.lastBaro = d.suite.SampleBaro(d.Quad, nowUS(now))
			var p []byte
			d.sendPayload, p = mavlink.AppendBaro(d.sendPayload[:0], d.lastBaro)
			d.sendToCCE(d.baroStream, mavlink.MsgIDBaro, p)
		},
	})
	// GPS/Vicon driver.
	d.CPU.Add(&sched.Task{
		Name: "drv-gps", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 100 * time.Millisecond, WCET: 150 * time.Microsecond,
		AccessRate: 5e6, MemBound: 0.5,
		Work: func(now time.Duration) {
			d.lastGPS = d.suite.SampleGPS(d.Quad, nowUS(now))
			d.hostEst.FeedFix(d.lastGPS)
			var p []byte
			d.sendPayload, p = mavlink.AppendGPS(d.sendPayload[:0], d.lastGPS)
			d.sendToCCE(d.gpsStream, mavlink.MsgIDGPS, p)
		},
	})
	// RC driver.
	d.CPU.Add(&sched.Task{
		Name: "drv-rc", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 20 * time.Millisecond, WCET: 100 * time.Microsecond,
		AccessRate: 4e6, MemBound: 0.5,
		Work: func(now time.Duration) {
			d.lastRC = d.rcScript.Sample(nowUS(now))
			var p []byte
			d.sendPayload, p = mavlink.AppendRC(d.sendPayload[:0], d.lastRC)
			d.sendToCCE(d.rcStream, mavlink.MsgIDRC, p)
		},
	})
	// PWM output: applies the selected actuator command to the ESCs.
	d.CPU.Add(&sched.Task{
		Name: "drv-pwm", Core: CoreDriver, Priority: sched.PrioDriver,
		Period: 2500 * time.Microsecond, WCET: 150 * time.Microsecond,
		AccessRate: 8e6, MemBound: 0.5,
		Work: func(now time.Duration) { d.Quad.SetMotors(d.selectCommand()) },
	})
	// Safety controller: hot standby on every sensor update.
	d.CPU.Add(&sched.Task{
		Name: "safety-ctl", Core: CoreSafety, Priority: sched.PrioSafety,
		Period: 4 * time.Millisecond, WCET: 500 * time.Microsecond,
		AccessRate: 10e6, MemBound: 0.6,
		Work: func(now time.Duration) {
			d.safetyCmd = d.safetyCtl.Compute(d.hostInputs(), control.Setpoint{Pos: d.safetyTarget()})
		},
	})
	if d.sys.Cfg.ComplexInContainer {
		// HCE receiving thread: drains the motor port, decodes, and
		// forwards valid commands to the PWM path.
		d.recvTask = d.CPU.Add(&sched.Task{
			Name: "hce-recv", Core: CoreSafety, Priority: 50,
			Period: 2500 * time.Microsecond, WCET: 150 * time.Microsecond,
			AccessRate: 6e6, MemBound: 0.4,
			Work: d.drainMotorPort,
		})
		// Security monitor task.
		d.CPU.Add(&sched.Task{
			Name: "sec-monitor", Core: CoreSafety, Priority: 60,
			Period: 10 * time.Millisecond, WCET: 60 * time.Microsecond,
			AccessRate: 2e6, MemBound: 0.3,
			Work: func(now time.Duration) {
				refRoll, refPitch, _ := d.safetyCtl.AttitudeSetpoint()
				est := d.hostEst.State()
				roll, pitch, _ := est.Attitude.Euler()
				d.Monitor.Check(now, monitor.AttitudeError(refRoll, refPitch, roll, pitch))
				posErr := est.Pos.Sub(d.safetyTarget()).Norm()
				d.Monitor.CheckEnvelope(now, posErr, est.Vel.Z)
			},
		})
	}
}

// drainMotorPort is the receiving thread's job: up to 16 datagrams per
// 2.5 ms period — the bounded service rate the UDP flood overwhelms.
func (d *Drone) drainMotorPort(now time.Duration) {
	for i := 0; i < 16; i++ {
		pkt, ok := d.hceMotorEP.Recv()
		if !ok {
			return
		}
		frame, _, err := mavlink.Decode(pkt.Payload)
		if err != nil || frame.MsgID != mavlink.MsgIDMotor {
			d.garbage++
			continue
		}
		cmd, err := mavlink.DecodeMotor(frame.Payload)
		if err != nil {
			d.garbage++
			continue
		}
		if len(d.replayFrames) < d.replayMax {
			// Copy: pkt.Payload is a pooled buffer, invalid after the
			// next receive call on this endpoint.
			d.replayFrames = append(d.replayFrames, append([]byte(nil), pkt.Payload...))
		}
		d.complexCmd = cmd.Motors
		d.complexCmdAt = now
		d.motorStream.Packets++
		d.Monitor.NoteComplexOutput(now)
	}
}

// hostInputs assembles controller inputs from the host estimator's
// fused state plus the raw barometer/RC channels, into a reused
// scratch field (fully overwritten on every call, so it needs no
// per-run reset).
func (d *Drone) hostInputs() *control.Inputs {
	d.hostIn = control.Inputs{
		IMU:  d.hostEst.Inputs(d.lastBaro, d.lastRC),
		GPS:  d.hostEst.GPSLike(),
		Baro: d.lastBaro,
		RC:   d.lastRC,
	}
	return &d.hostIn
}

// safetyTarget returns the safety controller's setpoint. Followers
// hold their formation slot. For the leader's static flights it is the
// configured setpoint; during a mission it shadows the vehicle until a
// Simplex switch and then freezes, so failover means "hold position
// here", not "fly the rest of the mission".
func (d *Drone) safetyTarget() physics.Vec3 {
	if d.idx > 0 {
		return d.fleetSP
	}
	if d.mission == nil {
		return d.initPos
	}
	if d.Monitor.Output() == monitor.OutputComplex {
		d.holdSP = d.hostEst.State().Pos
	}
	return d.holdSP
}

// complexSetpoint advances the mission (leader only) and returns the
// setpoint the complex controller tracks this cycle; followers track
// their formation slot as broadcast by the GCS.
func (d *Drone) complexSetpoint(now time.Duration, pos physics.Vec3, dt float64) control.Setpoint {
	if d.idx > 0 {
		d.curSetpoint = d.fleetSP
		return control.Setpoint{Pos: d.fleetSP}
	}
	if d.mission == nil {
		return control.Setpoint{Pos: d.initPos}
	}
	sp := d.mission.Update(now, pos, dt)
	d.curSetpoint = sp.Pos
	return sp
}

// selectCommand is the Simplex decision point: the PWM driver applies
// the complex controller's output until the monitor switches.
func (d *Drone) selectCommand() [4]float64 {
	if !d.sys.Cfg.ComplexInContainer {
		return d.hostCmd
	}
	if d.Monitor.Output() == monitor.OutputSafety {
		return d.safetyCmd
	}
	return d.complexCmd
}

// buildCCEController starts the PX4-style complex controller inside
// the container: it consumes the sensor stream from port 14660 and
// emits motor frames to host port 14600 at 400 Hz (Table I).
func (d *Drone) buildCCEController() error {
	// Per-run input cache and stream sequence live on the Drone (so
	// Reset rewinds them); the encode scratch is reused across jobs:
	// Container.Send copies the frame into the network pool before
	// returning.
	task := &sched.Task{
		Name: "px4-complex", Core: CoreContainer, Priority: sched.PrioContainer,
		Period: 2500 * time.Microsecond, WCET: 900 * time.Microsecond,
		AccessRate: 25e6, MemBound: 0.6,
		Work: func(now time.Duration) {
			// Drain the sensor port into the input cache.
			for {
				pkt, ok := d.cceSensorEP.Recv()
				if !ok {
					break
				}
				frame, _, err := mavlink.Decode(pkt.Payload)
				if err != nil {
					continue
				}
				switch frame.MsgID {
				case mavlink.MsgIDIMU:
					if r, err := mavlink.DecodeIMU(frame.Payload); err == nil {
						d.cceEst.FeedIMU(r)
					}
				case mavlink.MsgIDBaro:
					if r, err := mavlink.DecodeBaro(frame.Payload); err == nil {
						d.cceIn.Baro = r
					}
				case mavlink.MsgIDGPS:
					if r, err := mavlink.DecodeGPS(frame.Payload); err == nil {
						d.cceEst.FeedFix(r)
					}
				case mavlink.MsgIDRC:
					if r, err := mavlink.DecodeRC(frame.Payload); err == nil {
						d.cceIn.RC = r
					}
				}
			}
			d.cceIn.IMU = d.cceEst.Inputs(d.cceIn.Baro, d.cceIn.RC)
			d.cceIn.GPS = d.cceEst.GPSLike()
			cmd := d.complexCtl.Compute(&d.cceIn, d.complexSetpoint(now, d.cceIn.GPS.Pos, 1.0/400))
			d.cceSeq++
			var payload []byte
			d.cceMotorPayload, payload = mavlink.AppendMotor(d.cceMotorPayload[:0], mavlink.MotorCommand{
				TimeUS: nowUS(now), Motors: cmd, Seq: d.cceSeq, Armed: true,
			})
			d.cceMotorFrame = mavlink.AppendEncode(d.cceMotorFrame[:0], mavlink.Frame{
				Seq: uint8(d.cceSeq), SysID: 2, CompID: 1, MsgID: mavlink.MsgIDMotor, Payload: payload,
			})
			// Best-effort UDP: namespace violations would be bugs, but
			// a full fabric just drops.
			_ = d.CCE.Send(9001, PortMotor, d.cceMotorFrame)
		},
	}
	if err := d.CCE.StartTask(task); err != nil {
		return err
	}
	d.complexTask = task
	return nil
}

// buildHostComplexController runs the complex controller on the host
// (the memory-DoS experiment's deployment).
func (d *Drone) buildHostComplexController() {
	d.CPU.Add(&sched.Task{
		Name: "px4-host", Core: CoreHost, Priority: 30,
		Period: 4 * time.Millisecond, WCET: 1200 * time.Microsecond,
		AccessRate: 30e6, MemBound: 0.8,
		Work: func(now time.Duration) {
			in := d.hostInputs()
			d.hostCmd = d.complexCtl.Compute(in, d.complexSetpoint(now, in.GPS.Pos, 1.0/250))
		},
	})
}

// buildEngineProcs registers the member's per-tick infrastructure:
// scheduler, wind, physics, telemetry. (Network delivery is fabric-
// global and registered once by the System.) Members register in index
// order, so same-priority procs across members keep a deterministic
// member-order execution.
func (d *Drone) buildEngineProcs() {
	s := d.sys
	s.Engine.Register(s.comp(d.idx, "sched"), sim.Tick, 10, sim.ProcFunc(func(now time.Duration) {
		d.CPU.Tick(now)
	}))
	if d.wind != nil {
		s.Engine.Register(s.comp(d.idx, "wind"), 10*time.Millisecond, 19, sim.ProcFunc(func(now time.Duration) {
			d.Quad.SetDisturbance(d.wind.Step(0.01), physics.Vec3{})
		}))
	}
	s.Engine.Register(s.comp(d.idx, "physics"), sim.Tick, 20, sim.ProcFunc(func(now time.Duration) {
		d.Quad.Step(physDT)
		if crashed, at := d.Quad.Crashed(); crashed {
			if already, _ := d.Log.Crashed(); !already {
				crashAt := time.Duration(at * float64(time.Second))
				d.Log.MarkCrash(crashAt)
				s.Trace.Add(now, d.compPhysics, "vehicle crashed")
				if s.Hooks.OnCrash != nil {
					s.Hooks.OnCrash(crashAt)
				}
			}
		}
	}))
	period := time.Duration(float64(time.Second) / s.Cfg.TelemetryRate)
	s.Engine.Register(s.comp(d.idx, "telemetry"), period, 30, sim.ProcFunc(func(now time.Duration) {
		roll, pitch, yaw := d.Quad.State.RollPitchYaw()
		src := "complex"
		if !s.Cfg.ComplexInContainer {
			src = "host"
		} else if d.Monitor.Output() == monitor.OutputSafety {
			src = "safety"
		}
		sp := d.curSetpoint
		if d.mission != nil && d.Monitor.Output() == monitor.OutputSafety {
			sp = d.holdSP
		}
		sample := telemetry.Sample{
			Time: now, Setpoint: sp, Position: d.Quad.State.Pos,
			Roll: roll, Pitch: pitch, Yaw: yaw, Source: src,
		}
		d.Log.Add(sample)
		if d.idx == 0 && s.Hooks.OnSample != nil {
			s.Hooks.OnSample(now, sample)
		}
	}))
}
