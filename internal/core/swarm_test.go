package core

import (
	"strings"
	"testing"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/fault"
	"containerdrone/internal/monitor"
)

// TestSwarmSingleDroneEquivalence pins the fleet refactor's N=1 path:
// a Config with Drones=1 must fly byte-identically (trace and outcome)
// to the same Config with the fleet machinery left unconfigured. The
// golden suite pins this against history; this test pins it against
// the explicit field.
func TestSwarmSingleDroneEquivalence(t *testing.T) {
	base := DefaultConfig()
	base.Duration = 8 * time.Second
	base.Envelope = monitor.DefaultEnvelopeRules()
	base.Seed = 11

	run := func(cfg Config) (string, *Result) {
		t.Helper()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		return sys.Trace.String(), res
	}

	implicit := base
	explicit := base
	explicit.Drones = 1
	trImp, resImp := run(implicit)
	trExp, resExp := run(explicit)
	if trImp != trExp {
		t.Fatalf("trace differs between Drones=0 and Drones=1:\n%s\n----\n%s", trImp, trExp)
	}
	if resImp.Metrics != resExp.Metrics || resImp.Crashed != resExp.Crashed || resImp.GarbagePkts != resExp.GarbagePkts {
		t.Fatalf("outcome differs between Drones=0 and Drones=1: %+v vs %+v", resImp.Metrics, resExp.Metrics)
	}
	if resExp.Members != nil {
		t.Fatalf("single-drone run reported Members = %+v, want nil", resExp.Members)
	}
}

// TestSwarmFormationHold checks the fleet coordinator does its one
// job: followers hold their slots behind the leader. After a benign
// hover, every member must sit within a tight ball of its slot.
func TestSwarmFormationHold(t *testing.T) {
	cfg, err := Build("swarm-baseline", Options{Duration: 8 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Members) != 3 {
		t.Fatalf("got %d member reports, want 3", len(res.Members))
	}
	for i, d := range sys.Members() {
		slot := cfg.Setpoint.Add(memberOffset(cfg, i))
		if err := d.Quad.State.Pos.Sub(slot).Norm(); err > 0.5 {
			t.Errorf("member %d ended %.2fm from its slot %v", i, err, slot)
		}
		wantHost := memberHost(i)
		if res.Members[i].Host != wantHost {
			t.Errorf("member %d host = %q, want %q", i, res.Members[i].Host, wantHost)
		}
	}
}

// TestSwarmPeerFloodHitsVictim pins the cross-fabric attack routing:
// in swarm-peer-flood member 2's container floods member 0's motor
// port, so the garbage lands at the victim, not the attacker.
func TestSwarmPeerFloodHitsVictim(t *testing.T) {
	cfg, err := Build("swarm-peer-flood", Options{Duration: 12 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Attack.Member != 2 || cfg.Attack.Target != 0 {
		t.Fatalf("scenario attack = member %d -> target %d, want 2 -> 0", cfg.Attack.Member, cfg.Attack.Target)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Members[0].GarbagePkts == 0 {
		t.Error("victim member 0 saw no garbage packets")
	}
	if got := res.Members[2].GarbagePkts; got != 0 {
		t.Errorf("attacker member 2 saw %d garbage packets, want 0", got)
	}
	if !res.Members[0].Switched {
		t.Error("victim's monitor never switched under the flood")
	}
	if res.Members[2].Switched {
		t.Error("attacker's own monitor switched; the flood should not disturb its flight")
	}
}

// TestSwarmCrossReplay pins the cross-drone replay plumbing: frames
// are captured at FromMember's receiver during the prefix and
// re-injected at the target member, whose monitor catches the stale
// commands.
func TestSwarmCrossReplay(t *testing.T) {
	cfg, err := Build("swarm-cross-replay", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Faults.Specs[0]
	if sp.Member != 2 || sp.FromMember != 1 {
		t.Fatalf("scenario fault = from %d -> member %d, want from 1 -> member 2", sp.FromMember, sp.Member)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(sys.Member(1).replayFrames) == 0 {
		t.Error("no frames captured at source member 1")
	}
	if len(sys.Member(0).replayFrames) != 0 || len(sys.Member(2).replayFrames) != 0 {
		t.Error("capture buffers allocated on members other than the tap")
	}
	if !res.Members[2].Switched {
		t.Error("replay target member 2 never switched")
	}
	if res.Members[0].Switched || res.Members[1].Switched {
		t.Error("a bystander member switched during the cross-drone replay")
	}
	if !strings.Contains(sys.Trace.String(), "re-injected at member 2") {
		t.Error("trace does not record the cross-drone injection")
	}
}

// TestSwarmMemberValidation exercises the member-selector bounds: a
// Config may not aim attacks or faults at members it does not have,
// and fleet-split needs a fleet.
func TestSwarmMemberValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Drones = 3
		cfg.Duration = time.Second
		return cfg
	}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"attack member out of range", func(c *Config) {
			c.Attack = attack.Plan{Kind: attack.KindFlood, Start: time.Second, Member: 3}
		}},
		{"attack target out of range", func(c *Config) {
			c.Attack = attack.Plan{Kind: attack.KindFlood, Start: time.Second, Target: 5}
		}},
		{"fault member out of range", func(c *Config) {
			c.Faults = fault.Plan{Specs: []fault.Spec{{Kind: fault.KindGPSSpoof, Start: time.Second, Member: 3}}}
		}},
		{"replay source out of range", func(c *Config) {
			c.Faults = fault.Plan{Specs: []fault.Spec{{Kind: fault.KindMAVReplay, Start: time.Second, FromMember: 3}}}
		}},
		{"fleet-split without a fleet", func(c *Config) {
			c.Drones = 1
			c.Faults = fault.Plan{Specs: []fault.Spec{{Kind: fault.KindFleetSplit, Start: time.Second}}}
		}},
		{"too many drones", func(c *Config) { c.Drones = MaxDrones + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("New accepted an invalid fleet config")
			}
		})
	}
}

// TestFleetSplitStarvesFollowers pins the leader-partition scenario's
// mechanism: while the leader is cut off from the GCS, the followers'
// fleet setpoints freeze at the last broadcast slot.
func TestFleetSplitStarvesFollowers(t *testing.T) {
	cfg, err := Build("fleet-split", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Faults.Specs[0]
	if sp.Kind != fault.KindFleetSplit || sp.Member != 0 {
		t.Fatalf("scenario fault = %v member %d, want fleet-split on the leader", sp.Kind, sp.Member)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fly into the partition window, note the follower setpoint, fly
	// further within the window: it must not move — the GCS stops
	// hearing the leader, so the broadcast slots freeze.
	mid := sp.Start + sp.WithDefaults().Duration/4
	sys.Engine.Run(mid)
	frozen := sys.Member(1).fleetSP
	sys.Engine.Run(mid + sp.WithDefaults().Duration/4)
	if got := sys.Member(1).fleetSP; got != frozen {
		t.Errorf("follower fleet setpoint moved during the partition: %v -> %v", frozen, got)
	}
	res := sys.Run()
	if !res.MissionComplete {
		t.Error("partitioning the C2 link should not stop the leader's own mission")
	}
	tr := sys.Trace.String()
	if !strings.Contains(tr, "fleet-split begins") || !strings.Contains(tr, "fleet-split heals") {
		t.Error("trace does not record the partition window")
	}
}
