package core

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"containerdrone/internal/monitor"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// Result summarizes one scenario run.
//
// For a single-drone run the top-level fields describe the vehicle and
// Members is nil. For a fleet run the top-level fields aggregate:
// Crashed/Switched report the earliest event across members,
// GarbagePkts sums, Violations concatenates in member order, and the
// flight-shape fields (Metrics, Streams, Tasks, Log, ...) describe the
// leader; Members then carries every member's own outcome (leader
// included).
type Result struct {
	Cfg Config

	Crashed   bool
	CrashTime time.Duration

	Switched    bool
	SwitchTime  time.Duration
	SwitchRule  monitor.Rule
	Violations  []monitor.Violation
	GarbagePkts int64

	// MissionComplete reports whether a configured mission visited
	// every waypoint (false when no mission was configured).
	MissionComplete bool

	// Whole-flight and attack-window tracking metrics.
	Metrics       telemetry.Metrics
	AttackMetrics telemetry.Metrics

	Streams   []StreamStat
	IdleRates [NumCores]float64

	// Tasks reports per-task scheduling outcomes — the quantitative
	// reading of the resource-DoS figures (deadline misses and latency
	// inflation during the attack window).
	Tasks []TaskReport

	// Members carries per-member outcomes for fleet runs; nil for a
	// single drone.
	Members []MemberReport

	Log   *telemetry.FlightLog
	Trace *sim.Trace
}

// MemberReport is one fleet member's outcome within a swarm Result.
type MemberReport struct {
	Member int
	Host   string

	Crashed   bool
	CrashTime time.Duration

	Switched    bool
	SwitchTime  time.Duration
	SwitchRule  monitor.Rule
	Violations  []monitor.Violation
	GarbagePkts int64

	MissionComplete bool

	Metrics   telemetry.Metrics
	Streams   []StreamStat
	IdleRates [NumCores]float64
	Tasks     []TaskReport
}

// Run executes the scenario to completion and returns the result.
func (s *System) Run() *Result {
	s.Engine.Run(s.Cfg.Duration)
	return s.Result()
}

// RunContext executes the scenario until completion or context
// cancellation. On cancellation it returns the partial result
// accumulated so far together with the context's error.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	err := s.Engine.RunContext(ctx, s.Cfg.Duration)
	return s.Result(), err
}

// RunContextInto is RunContext writing the outcome into a caller-owned
// Result whose slices are reused — the warm-pool campaign's per-run
// path, which keeps a steady-state campaign run allocation-free.
func (s *System) RunContextInto(ctx context.Context, r *Result) error {
	err := s.Engine.RunContext(ctx, s.Cfg.Duration)
	s.resultInto(r)
	return err
}

// RunToTickContext advances the run until the engine clock reaches the
// absolute tick, Stop, or context cancellation — the fork campaign's
// shared-prefix leg, after which the System can be snapshotted.
func (s *System) RunToTickContext(ctx context.Context, tick int64) error {
	return s.Engine.RunToTickContext(ctx, tick)
}

// ResumeContextInto advances a mid-run System (typically one just
// restored from a Snapshot, or the prefix leader itself) to the end of
// its configured flight and fills r, reusing r's backing slices — the
// fork campaign's per-variant path.
func (s *System) ResumeContextInto(ctx context.Context, r *Result) error {
	err := s.Engine.RunToTickContext(ctx, sim.TicksFor(s.Cfg.Duration))
	s.resultInto(r)
	return err
}

// Result snapshots the current outcome without advancing time.
func (s *System) Result() *Result {
	r := &Result{}
	s.resultInto(r)
	return r
}

// resultInto fills r with the current outcome, reusing its Streams,
// Tasks, and Members backing arrays.
func (s *System) resultInto(r *Result) {
	streams, tasks, members := r.Streams[:0], r.Tasks[:0], r.Members[:0]
	d0 := s.drones[0]
	*r = Result{Cfg: s.Cfg, Log: d0.Log, Trace: s.Trace, GarbagePkts: d0.garbage}
	r.Crashed, r.CrashTime = d0.Log.Crashed()
	if at, rule, ok := d0.Monitor.SwitchedAt(); ok {
		r.Switched, r.SwitchTime, r.SwitchRule = true, at, rule
	}
	r.Violations = d0.Monitor.Violations()
	if d0.mission != nil {
		r.MissionComplete = d0.mission.Done()
	}
	r.Metrics = d0.Log.Metrics()
	if s.Cfg.Attack.Active() {
		r.AttackMetrics = d0.Log.WindowMetrics(s.Cfg.Attack.Start, s.Cfg.Duration)
	}
	r.Streams = streams
	for _, st := range d0.streams {
		r.Streams = append(r.Streams, *st)
	}
	// slices.SortFunc rather than sort.Slice: no reflection, no
	// allocation on the per-run campaign path. Stream names and
	// (core, name) task keys are unique, so the unstable sort still
	// yields one deterministic order.
	slices.SortFunc(r.Streams, func(a, b StreamStat) int { return strings.Compare(a.Name, b.Name) })
	for core := 0; core < NumCores; core++ {
		r.IdleRates[core] = d0.CPU.IdleRate(core)
	}
	r.Tasks = tasks
	appendTaskReports(&r.Tasks, d0)

	if len(s.drones) == 1 {
		return
	}

	// Fleet aggregation: earliest crash/switch across members, summed
	// garbage, violations concatenated in member order (backed by a
	// System-owned scratch so warm-pool runs stay allocation-free at
	// steady state), plus one MemberReport per member.
	s.violScratch = s.violScratch[:0]
	r.Members = members
	for _, d := range s.drones {
		// Reuse the previous run's report at this slot (it survives in
		// the slice's capacity) so its Streams/Tasks backing arrays are
		// recycled instead of reallocated.
		var prev MemberReport
		if cap(r.Members) > len(r.Members) {
			prev = r.Members[:len(r.Members)+1][len(r.Members)]
		}
		mStreams, mTasks := prev.Streams[:0], prev.Tasks[:0]
		m := MemberReport{Member: d.idx, Host: d.hostName, GarbagePkts: d.garbage}
		m.Crashed, m.CrashTime = d.Log.Crashed()
		if at, rule, ok := d.Monitor.SwitchedAt(); ok {
			m.Switched, m.SwitchTime, m.SwitchRule = true, at, rule
		}
		m.Violations = d.Monitor.Violations()
		if d.mission != nil {
			m.MissionComplete = d.mission.Done()
		}
		m.Metrics = d.Log.Metrics()
		m.Streams = mStreams
		for _, st := range d.streams {
			m.Streams = append(m.Streams, *st)
		}
		slices.SortFunc(m.Streams, func(a, b StreamStat) int { return strings.Compare(a.Name, b.Name) })
		for core := 0; core < NumCores; core++ {
			m.IdleRates[core] = d.CPU.IdleRate(core)
		}
		m.Tasks = mTasks
		appendTaskReports(&m.Tasks, d)
		r.Members = append(r.Members, m)

		if d.idx > 0 {
			r.GarbagePkts += d.garbage
			if m.Crashed && (!r.Crashed || m.CrashTime < r.CrashTime) {
				r.Crashed, r.CrashTime = true, m.CrashTime
			}
			if m.Switched && (!r.Switched || m.SwitchTime < r.SwitchTime) {
				r.Switched, r.SwitchTime, r.SwitchRule = true, m.SwitchTime, m.SwitchRule
			}
		}
		s.violScratch = append(s.violScratch, m.Violations...)
	}
	r.Violations = s.violScratch
}

// appendTaskReports appends one TaskReport per scheduler task of the
// member, sorted by (core, name).
func appendTaskReports(out *[]TaskReport, d *Drone) {
	base := len(*out)
	for _, task := range d.CPU.Tasks() {
		st := task.Stats()
		*out = append(*out, TaskReport{
			Name:       task.Name,
			Core:       task.Core,
			Priority:   task.Priority,
			Released:   st.Released,
			Completed:  st.Completed,
			Missed:     st.Missed,
			MissRate:   st.MissRate(),
			AvgLatency: st.AvgLatency(),
			MaxLatency: st.MaxLatency,
		})
	}
	slices.SortFunc((*out)[base:], func(a, b TaskReport) int {
		if a.Core != b.Core {
			return a.Core - b.Core
		}
		return strings.Compare(a.Name, b.Name)
	})
}

// TaskReport is one task's scheduling outcome over the run.
type TaskReport struct {
	Name       string
	Core       int
	Priority   int
	Released   int64
	Completed  int64
	Missed     int64
	MissRate   float64
	AvgLatency time.Duration
	MaxLatency time.Duration
}

// Summary renders a human-readable digest of the run.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight %v  attack=%v@%v\n", r.Cfg.Duration, r.Cfg.Attack.Kind, r.Cfg.Attack.Start)
	if n := len(r.Members); n > 0 {
		fmt.Fprintf(&b, "  fleet of %d drones\n", n)
	}
	if r.Crashed {
		fmt.Fprintf(&b, "  CRASHED at %.1fs\n", r.CrashTime.Seconds())
	} else {
		fmt.Fprintf(&b, "  survived\n")
	}
	if r.Switched {
		fmt.Fprintf(&b, "  Simplex switch at %.2fs (%s)\n", r.SwitchTime.Seconds(), r.SwitchRule)
	}
	fmt.Fprintf(&b, "  RMS err %.3fm  max dev %.3fm  max tilt %.1f°\n",
		r.Metrics.RMSError, r.Metrics.MaxDeviation, telemetry.Degrees(r.Metrics.MaxTilt))
	for i := range r.Members {
		m := &r.Members[i]
		state := "ok"
		if m.Crashed {
			state = fmt.Sprintf("CRASHED at %.1fs", m.CrashTime.Seconds())
		} else if m.Switched {
			state = fmt.Sprintf("switched at %.2fs (%s)", m.SwitchTime.Seconds(), m.SwitchRule)
		}
		fmt.Fprintf(&b, "  member %d (%s): %s  RMS err %.3fm\n", m.Member, m.Host, state, m.Metrics.RMSError)
	}
	return b.String()
}
