package core

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"containerdrone/internal/monitor"
	"containerdrone/internal/sim"
	"containerdrone/internal/telemetry"
)

// Result summarizes one scenario run.
type Result struct {
	Cfg Config

	Crashed   bool
	CrashTime time.Duration

	Switched    bool
	SwitchTime  time.Duration
	SwitchRule  monitor.Rule
	Violations  []monitor.Violation
	GarbagePkts int64

	// MissionComplete reports whether a configured mission visited
	// every waypoint (false when no mission was configured).
	MissionComplete bool

	// Whole-flight and attack-window tracking metrics.
	Metrics       telemetry.Metrics
	AttackMetrics telemetry.Metrics

	Streams   []StreamStat
	IdleRates [NumCores]float64

	// Tasks reports per-task scheduling outcomes — the quantitative
	// reading of the resource-DoS figures (deadline misses and latency
	// inflation during the attack window).
	Tasks []TaskReport

	Log   *telemetry.FlightLog
	Trace *sim.Trace
}

// Run executes the scenario to completion and returns the result.
func (s *System) Run() *Result {
	s.Engine.Run(s.Cfg.Duration)
	return s.Result()
}

// RunContext executes the scenario until completion or context
// cancellation. On cancellation it returns the partial result
// accumulated so far together with the context's error.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	err := s.Engine.RunContext(ctx, s.Cfg.Duration)
	return s.Result(), err
}

// RunContextInto is RunContext writing the outcome into a caller-owned
// Result whose slices are reused — the warm-pool campaign's per-run
// path, which keeps a steady-state campaign run allocation-free.
func (s *System) RunContextInto(ctx context.Context, r *Result) error {
	err := s.Engine.RunContext(ctx, s.Cfg.Duration)
	s.resultInto(r)
	return err
}

// RunToTickContext advances the run until the engine clock reaches the
// absolute tick, Stop, or context cancellation — the fork campaign's
// shared-prefix leg, after which the System can be snapshotted.
func (s *System) RunToTickContext(ctx context.Context, tick int64) error {
	return s.Engine.RunToTickContext(ctx, tick)
}

// ResumeContextInto advances a mid-run System (typically one just
// restored from a Snapshot, or the prefix leader itself) to the end of
// its configured flight and fills r, reusing r's backing slices — the
// fork campaign's per-variant path.
func (s *System) ResumeContextInto(ctx context.Context, r *Result) error {
	err := s.Engine.RunToTickContext(ctx, sim.TicksFor(s.Cfg.Duration))
	s.resultInto(r)
	return err
}

// Result snapshots the current outcome without advancing time.
func (s *System) Result() *Result {
	r := &Result{}
	s.resultInto(r)
	return r
}

// resultInto fills r with the current outcome, reusing its Streams and
// Tasks backing arrays.
func (s *System) resultInto(r *Result) {
	streams, tasks := r.Streams[:0], r.Tasks[:0]
	*r = Result{Cfg: s.Cfg, Log: s.Log, Trace: s.Trace, GarbagePkts: s.garbage}
	r.Crashed, r.CrashTime = s.Log.Crashed()
	if at, rule, ok := s.Monitor.SwitchedAt(); ok {
		r.Switched, r.SwitchTime, r.SwitchRule = true, at, rule
	}
	r.Violations = s.Monitor.Violations()
	if s.mission != nil {
		r.MissionComplete = s.mission.Done()
	}
	r.Metrics = s.Log.Metrics()
	if s.Cfg.Attack.Active() {
		r.AttackMetrics = s.Log.WindowMetrics(s.Cfg.Attack.Start, s.Cfg.Duration)
	}
	r.Streams = streams
	for _, st := range s.streams {
		r.Streams = append(r.Streams, *st)
	}
	// slices.SortFunc rather than sort.Slice: no reflection, no
	// allocation on the per-run campaign path. Stream names and
	// (core, name) task keys are unique, so the unstable sort still
	// yields one deterministic order.
	slices.SortFunc(r.Streams, func(a, b StreamStat) int { return strings.Compare(a.Name, b.Name) })
	for core := 0; core < NumCores; core++ {
		r.IdleRates[core] = s.CPU.IdleRate(core)
	}
	r.Tasks = tasks
	for _, task := range s.CPU.Tasks() {
		st := task.Stats()
		r.Tasks = append(r.Tasks, TaskReport{
			Name:       task.Name,
			Core:       task.Core,
			Priority:   task.Priority,
			Released:   st.Released,
			Completed:  st.Completed,
			Missed:     st.Missed,
			MissRate:   st.MissRate(),
			AvgLatency: st.AvgLatency(),
			MaxLatency: st.MaxLatency,
		})
	}
	slices.SortFunc(r.Tasks, func(a, b TaskReport) int {
		if a.Core != b.Core {
			return a.Core - b.Core
		}
		return strings.Compare(a.Name, b.Name)
	})
}

// TaskReport is one task's scheduling outcome over the run.
type TaskReport struct {
	Name       string
	Core       int
	Priority   int
	Released   int64
	Completed  int64
	Missed     int64
	MissRate   float64
	AvgLatency time.Duration
	MaxLatency time.Duration
}

// Summary renders a human-readable digest of the run.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight %v  attack=%v@%v\n", r.Cfg.Duration, r.Cfg.Attack.Kind, r.Cfg.Attack.Start)
	if r.Crashed {
		fmt.Fprintf(&b, "  CRASHED at %.1fs\n", r.CrashTime.Seconds())
	} else {
		fmt.Fprintf(&b, "  survived\n")
	}
	if r.Switched {
		fmt.Fprintf(&b, "  Simplex switch at %.2fs (%s)\n", r.SwitchTime.Seconds(), r.SwitchRule)
	}
	fmt.Fprintf(&b, "  RMS err %.3fm  max dev %.3fm  max tilt %.1f°\n",
		r.Metrics.RMSError, r.Metrics.MaxDeviation, telemetry.Degrees(r.Metrics.MaxTilt))
	return b.String()
}
