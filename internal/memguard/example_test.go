package memguard_test

import (
	"fmt"
	"time"

	"containerdrone/internal/memguard"
)

// Example shows the regulation cycle: a core exhausts its budget, is
// throttled, and is released at the next period boundary.
func Example() {
	g := memguard.New(4)
	g.SetEnabled(true)
	g.SetBudget(3, 1000) // container core: 1000 accesses per 1 ms

	g.Tick(0)
	g.Charge(3, 600)
	fmt.Println("after 600:", g.Throttled(3))
	g.Charge(3, 600)
	fmt.Println("after 1200:", g.Throttled(3))
	g.Tick(time.Millisecond) // period boundary: replenish
	fmt.Println("next period:", g.Throttled(3))
	// Output:
	// after 600: false
	// after 1200: true
	// next period: false
}
