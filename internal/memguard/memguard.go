// Package memguard reimplements the MemGuard memory-bandwidth
// reservation system (Yun et al., RTAS 2013) on top of the membw bus
// model. Each CPU core gets a budget of memory accesses per regulation
// period; a core that exhausts its budget is throttled — its tasks
// make no progress and issue no accesses — until the budget is
// replenished at the next period boundary.
//
// This is the paper's defense for the memory-bandwidth DoS (§III-D):
// the container core's budget is set to just what the complex
// controller needs, so the Bandwidth attack cannot saturate the shared
// bus and starve host-side drivers and the safety controller.
package memguard

import (
	"fmt"
	"time"
)

// DefaultPeriod is the regulation period used by MemGuard (1 ms).
const DefaultPeriod = time.Millisecond

// Guard regulates per-core memory bandwidth.
type Guard struct {
	enabled   bool
	period    time.Duration
	budgets   []float64 // accesses per period; <=0 = unregulated core
	used      []float64 // accesses charged this period
	throttled []bool
	nextReset time.Duration
	stats     []CoreStats
}

// CoreStats counts regulation activity for one core.
type CoreStats struct {
	Periods        int64   // regulation periods observed
	ThrottleEvents int64   // times the core hit its budget
	ThrottledTicks int64   // ticks spent throttled
	TotalCharged   float64 // lifetime accesses charged
}

// New builds a guard for the given core count with the default 1 ms
// regulation period. All cores start unregulated; set budgets with
// SetBudget. The guard starts disabled (the paper's baseline).
func New(cores int) *Guard {
	if cores <= 0 {
		panic("memguard: cores must be positive")
	}
	return &Guard{
		period:    DefaultPeriod,
		budgets:   make([]float64, cores),
		used:      make([]float64, cores),
		throttled: make([]bool, cores),
		stats:     make([]CoreStats, cores),
	}
}

// SetPeriod changes the regulation period (must be positive).
func (g *Guard) SetPeriod(p time.Duration) {
	if p <= 0 {
		panic(fmt.Sprintf("memguard: non-positive period %v", p))
	}
	g.period = p
}

// Period returns the regulation period.
func (g *Guard) Period() time.Duration { return g.period }

// SetEnabled turns regulation on or off; disabling also clears any
// active throttle.
func (g *Guard) SetEnabled(on bool) {
	g.enabled = on
	if !on {
		for i := range g.throttled {
			g.throttled[i] = false
		}
	}
}

// Enabled reports whether regulation is active.
func (g *Guard) Enabled() bool { return g.enabled }

// SetBudget assigns a per-period access budget to a core. A budget of
// zero or less leaves the core unregulated (host cores in the paper
// keep full bandwidth; only the container core is capped).
func (g *Guard) SetBudget(core int, accessesPerPeriod float64) {
	g.budgets[core] = accessesPerPeriod
}

// Budget returns a core's per-period budget.
func (g *Guard) Budget(core int) float64 { return g.budgets[core] }

// Reset rewinds the regulator to time zero: usage, throttles, and
// statistics clear; the enabled flag, period, and budgets survive as
// configuration.
func (g *Guard) Reset() {
	for i := range g.used {
		g.used[i] = 0
		g.throttled[i] = false
		g.stats[i] = CoreStats{}
	}
	g.nextReset = 0
}

// GuardState is a snapshot of the regulator's dynamic state: per-core
// usage, throttles, statistics, and the next replenish time. The
// enabled flag, period, and budgets are configuration and stay with
// their owner.
type GuardState struct {
	used      []float64
	throttled []bool
	stats     []CoreStats
	nextReset time.Duration
}

// SnapshotInto captures the regulator's dynamic state into st, reusing
// st's buffers.
func (g *Guard) SnapshotInto(st *GuardState) {
	st.used = append(st.used[:0], g.used...)
	st.throttled = append(st.throttled[:0], g.throttled...)
	st.stats = append(st.stats[:0], g.stats...)
	st.nextReset = g.nextReset
}

// RestoreFrom rewinds the regulator to a captured state, keeping its
// own configuration. The core counts must match.
func (g *Guard) RestoreFrom(st *GuardState) {
	if len(st.used) != len(g.used) {
		panic("memguard: RestoreFrom with mismatched core count")
	}
	copy(g.used, st.used)
	copy(g.throttled, st.throttled)
	copy(g.stats, st.stats)
	g.nextReset = st.nextReset
}

// Tick advances the regulator to the given time: at each period
// boundary budgets replenish and throttles lift.
func (g *Guard) Tick(now time.Duration) {
	if now < g.nextReset {
		return
	}
	for i := range g.used {
		g.used[i] = 0
		g.throttled[i] = false
		if g.enabled {
			g.stats[i].Periods++
		}
	}
	g.nextReset = now + g.period
}

// Throttled reports whether the core is currently stalled by the
// regulator. Callers should count a throttled tick via NoteThrottledTick
// so stats reflect actual stall time.
func (g *Guard) Throttled(core int) bool {
	return g.enabled && g.throttled[core]
}

// NoteThrottledTick records one tick of stall time for a core.
func (g *Guard) NoteThrottledTick(core int) { g.stats[core].ThrottledTicks++ }

// Charge records accesses issued by a core this period. When the
// budget is exhausted the core becomes throttled until the next
// replenish. Charging an unregulated core only updates statistics.
func (g *Guard) Charge(core int, accesses float64) {
	g.stats[core].TotalCharged += accesses
	if !g.enabled || g.budgets[core] <= 0 {
		return
	}
	g.used[core] += accesses
	if g.used[core] >= g.budgets[core] && !g.throttled[core] {
		g.throttled[core] = true
		g.stats[core].ThrottleEvents++
	}
}

// Used returns accesses charged to the core in the current period.
func (g *Guard) Used(core int) float64 { return g.used[core] }

// Remaining returns the budget left this period for a regulated core,
// or +Inf semantics via a negative value for unregulated cores.
func (g *Guard) Remaining(core int) float64 {
	if g.budgets[core] <= 0 {
		return -1
	}
	rem := g.budgets[core] - g.used[core]
	if rem < 0 {
		return 0
	}
	return rem
}

// Stats returns a copy of a core's regulation statistics.
func (g *Guard) Stats(core int) CoreStats { return g.stats[core] }
