package memguard

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDisabledGuardNeverThrottles(t *testing.T) {
	g := New(4)
	g.SetBudget(3, 100)
	g.Charge(3, 1e9)
	if g.Throttled(3) {
		t.Fatal("disabled guard throttled a core")
	}
}

func TestBudgetExhaustionThrottles(t *testing.T) {
	g := New(4)
	g.SetEnabled(true)
	g.SetBudget(3, 100)
	g.Tick(0)
	g.Charge(3, 50)
	if g.Throttled(3) {
		t.Fatal("throttled before budget exhausted")
	}
	g.Charge(3, 50)
	if !g.Throttled(3) {
		t.Fatal("not throttled at budget")
	}
	if g.Stats(3).ThrottleEvents != 1 {
		t.Fatalf("ThrottleEvents = %d", g.Stats(3).ThrottleEvents)
	}
}

func TestReplenishLiftsThrottle(t *testing.T) {
	g := New(4)
	g.SetEnabled(true)
	g.SetBudget(3, 100)
	g.Tick(0)
	g.Charge(3, 200)
	if !g.Throttled(3) {
		t.Fatal("expected throttle")
	}
	g.Tick(500 * time.Microsecond) // before period boundary
	if !g.Throttled(3) {
		t.Fatal("throttle lifted before period boundary")
	}
	g.Tick(time.Millisecond)
	if g.Throttled(3) {
		t.Fatal("throttle not lifted at period boundary")
	}
	if g.Used(3) != 0 {
		t.Fatalf("usage not reset: %v", g.Used(3))
	}
}

func TestUnregulatedCoreNeverThrottles(t *testing.T) {
	g := New(4)
	g.SetEnabled(true)
	// Core 0 has no budget (host core in the paper).
	g.Tick(0)
	g.Charge(0, 1e12)
	if g.Throttled(0) {
		t.Fatal("unregulated core throttled")
	}
	if g.Stats(0).TotalCharged != 1e12 {
		t.Fatal("stats not recorded for unregulated core")
	}
}

func TestRemaining(t *testing.T) {
	g := New(2)
	g.SetEnabled(true)
	g.SetBudget(1, 100)
	g.Tick(0)
	g.Charge(1, 30)
	if got := g.Remaining(1); got != 70 {
		t.Fatalf("Remaining = %v, want 70", got)
	}
	g.Charge(1, 200)
	if got := g.Remaining(1); got != 0 {
		t.Fatalf("Remaining after overrun = %v, want 0", got)
	}
	if got := g.Remaining(0); got >= 0 {
		t.Fatalf("unregulated Remaining = %v, want negative sentinel", got)
	}
}

func TestDisableClearsThrottle(t *testing.T) {
	g := New(1)
	g.SetEnabled(true)
	g.SetBudget(0, 10)
	g.Tick(0)
	g.Charge(0, 20)
	if !g.Throttled(0) {
		t.Fatal("expected throttle")
	}
	g.SetEnabled(false)
	if g.Throttled(0) {
		t.Fatal("disable did not clear throttle")
	}
}

func TestThrottledTickStats(t *testing.T) {
	g := New(1)
	g.SetEnabled(true)
	g.SetBudget(0, 10)
	g.Tick(0)
	g.Charge(0, 20)
	g.NoteThrottledTick(0)
	g.NoteThrottledTick(0)
	if got := g.Stats(0).ThrottledTicks; got != 2 {
		t.Fatalf("ThrottledTicks = %d", got)
	}
}

func TestSetPeriodValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetPeriod(0) did not panic")
		}
	}()
	New(1).SetPeriod(0)
}

func TestPeriodsCounted(t *testing.T) {
	g := New(1)
	g.SetEnabled(true)
	g.SetBudget(0, 100)
	for us := 0; us <= 10000; us += 100 {
		g.Tick(time.Duration(us) * time.Microsecond)
	}
	// 10 ms of 1 ms periods: first Tick(0) resets, then every 1 ms.
	if got := g.Stats(0).Periods; got < 10 || got > 11 {
		t.Fatalf("Periods = %d, want ~10", got)
	}
}

// Property: within any single regulation period, charged accesses that
// pass the throttle gate never exceed budget + one charge quantum.
// (The regulator throttles after the budget is crossed, so the excess
// of the final charge is bounded by that charge's size.)
func TestBudgetEnforcementProperty(t *testing.T) {
	f := func(budget16 uint16, charges []uint8) bool {
		budget := float64(budget16%1000) + 1
		g := New(1)
		g.SetEnabled(true)
		g.SetBudget(0, budget)
		g.Tick(0)
		admitted := 0.0
		maxQuantum := 0.0
		for _, c := range charges {
			q := float64(c)
			if q > maxQuantum {
				maxQuantum = q
			}
			if g.Throttled(0) {
				continue // scheduler would not run the core
			}
			g.Charge(0, q)
			admitted += q
		}
		return admitted <= budget+maxQuantum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: replenishment is periodic — after a Tick at or past the
// boundary, usage is zero and the throttle is lifted, for any charge
// history.
func TestReplenishProperty(t *testing.T) {
	f := func(charges []uint8) bool {
		g := New(1)
		g.SetEnabled(true)
		g.SetBudget(0, 50)
		g.Tick(0)
		for _, c := range charges {
			g.Charge(0, float64(c))
		}
		g.Tick(DefaultPeriod)
		return g.Used(0) == 0 && !g.Throttled(0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
