package control

import (
	"time"

	"containerdrone/internal/physics"
)

// Waypoint is one leg of a mission: fly to Pos, then hold for Hold.
type Waypoint struct {
	Pos    physics.Vec3
	Yaw    float64
	Hold   time.Duration
	Radius float64 // acceptance radius, m (0 → 0.15 m default)
}

// Mission sequences waypoints and slew-limits the emitted setpoint —
// the "advanced functionality" (mission planning, smooth trajectories)
// that distinguishes the complex controller from the safety
// controller in the paper's system model.
type Mission struct {
	Waypoints []Waypoint
	// SlewRate limits setpoint motion in m/s (0 = jump immediately).
	SlewRate float64

	idx       int
	holdUntil time.Duration
	holding   bool
	current   Setpoint
	primed    bool
}

// NewMission builds a mission with a 1.5 m/s setpoint slew.
func NewMission(wps ...Waypoint) *Mission {
	return &Mission{Waypoints: wps, SlewRate: 1.5}
}

// Done reports whether every waypoint has been visited and held.
func (m *Mission) Done() bool { return m.idx >= len(m.Waypoints) }

// Reset rewinds the mission to its first waypoint with no hold or
// slew history, as if freshly built.
func (m *Mission) Reset() {
	m.idx = 0
	m.holdUntil = 0
	m.holding = false
	m.current = Setpoint{}
	m.primed = false
}

// MissionState is a snapshot of the mission's progress; the waypoint
// list and slew rate are configuration and stay with their owner.
type MissionState struct {
	idx       int
	holdUntil time.Duration
	holding   bool
	current   Setpoint
	primed    bool
}

// SnapshotInto captures the mission's progress into st.
func (m *Mission) SnapshotInto(st *MissionState) {
	st.idx = m.idx
	st.holdUntil = m.holdUntil
	st.holding = m.holding
	st.current = m.current
	st.primed = m.primed
}

// RestoreFrom rewinds the mission to a captured state, keeping its own
// waypoint list.
func (m *Mission) RestoreFrom(st *MissionState) {
	m.idx = st.idx
	m.holdUntil = st.holdUntil
	m.holding = st.holding
	m.current = st.current
	m.primed = st.primed
}

// Target returns the active waypoint, or false when the mission is
// complete.
func (m *Mission) Target() (Waypoint, bool) {
	if m.Done() {
		return Waypoint{}, false
	}
	return m.Waypoints[m.idx], true
}

// Update advances the mission state machine with the vehicle's
// position and returns the (slew-limited) setpoint to track. After
// completion it keeps returning the final waypoint.
func (m *Mission) Update(now time.Duration, pos physics.Vec3, dt float64) Setpoint {
	if !m.primed {
		m.current = Setpoint{Pos: pos}
		m.primed = true
	}
	var goal Setpoint
	if m.Done() {
		if n := len(m.Waypoints); n > 0 {
			last := m.Waypoints[n-1]
			goal = Setpoint{Pos: last.Pos, Yaw: last.Yaw}
		} else {
			goal = m.current
		}
	} else {
		wp := m.Waypoints[m.idx]
		goal = Setpoint{Pos: wp.Pos, Yaw: wp.Yaw}
		radius := wp.Radius
		if radius <= 0 {
			radius = 0.15
		}
		if pos.Sub(wp.Pos).Norm() <= radius {
			if !m.holding {
				m.holding = true
				m.holdUntil = now + wp.Hold
			}
			if now >= m.holdUntil {
				m.idx++
				m.holding = false
			}
		} else {
			m.holding = false
		}
	}
	// Slew-limit the emitted position setpoint toward the goal.
	if m.SlewRate <= 0 || dt <= 0 {
		m.current = goal
		return m.current
	}
	delta := goal.Pos.Sub(m.current.Pos)
	maxStep := m.SlewRate * dt
	if d := delta.Norm(); d > maxStep {
		delta = delta.Scale(maxStep / d)
	}
	m.current.Pos = m.current.Pos.Add(delta)
	m.current.Yaw = goal.Yaw
	return m.current
}
