package control

import (
	"math"
	"testing"
	"testing/quick"

	"containerdrone/internal/physics"
)

func TestMixPureThrust(t *testing.T) {
	out := Mix(0.6, 0, 0, 0)
	for i, v := range out {
		if v != 0.6 {
			t.Fatalf("motor %d = %v, want 0.6", i, v)
		}
	}
}

func TestMixClamps(t *testing.T) {
	for _, v := range Mix(2, 0, 0, 0) {
		if v != 1 {
			t.Fatalf("overdriven motor = %v", v)
		}
	}
	for _, v := range Mix(-1, 0, 0, 0) {
		if v != 0 {
			t.Fatalf("negative thrust motor = %v", v)
		}
	}
}

// applyToQuad spins a quad briefly with the mixed outputs and returns
// the resulting body rates — the ground truth for sign consistency.
func applyToQuad(u [4]float64) physics.Vec3 {
	q := physics.NewQuad(physics.DefaultParams())
	q.State.Pos = physics.Vec3{Z: 5}
	q.SetMotors(u)
	q.SettleRotors()
	for i := 0; i < 500; i++ {
		q.Step(0.0001)
	}
	return q.State.Omega
}

func TestMixRollSign(t *testing.T) {
	w := applyToQuad(Mix(0.55, 0.05, 0, 0))
	if w.X <= 0 {
		t.Fatalf("positive roll command gave roll rate %v", w.X)
	}
	if math.Abs(w.Y) > math.Abs(w.X)/5 || math.Abs(w.Z) > math.Abs(w.X)/5 {
		t.Fatalf("roll command cross-coupled: %v", w)
	}
}

func TestMixPitchSign(t *testing.T) {
	w := applyToQuad(Mix(0.55, 0, 0.05, 0))
	if w.Y <= 0 {
		t.Fatalf("positive pitch command gave pitch rate %v", w.Y)
	}
}

func TestMixYawSign(t *testing.T) {
	w := applyToQuad(Mix(0.55, 0, 0, 0.05))
	if w.Z <= 0 {
		t.Fatalf("positive yaw command gave yaw rate %v", w.Z)
	}
}

func TestMixTorquePriorityUnderSaturation(t *testing.T) {
	// At near-full collective, a roll command must still produce a
	// rotor differential (collective shifts down to make room).
	out := Mix(0.99, 0.1, 0, 0)
	left := out[1] + out[2]  // y=+1 rotors
	right := out[0] + out[3] // y=-1 rotors
	if left-right < 0.1 {
		t.Fatalf("saturated mix lost roll authority: %v", out)
	}
}

// Property: outputs always within [0,1].
func TestMixBoundsProperty(t *testing.T) {
	f := func(thr, r, p, y float64) bool {
		for _, v := range Mix(mod1(thr), mod1(r), mod1(p), mod1(y)) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the roll differential matches the command sign whenever
// unsaturated headroom exists.
func TestMixDifferentialSignProperty(t *testing.T) {
	f := func(r float64) bool {
		cmd := math.Mod(math.Abs(r), 0.2) + 0.01
		out := Mix(0.5, cmd, 0, 0)
		left := out[1] + out[2]
		right := out[0] + out[3]
		return left > right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mod1(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1.5)
}
