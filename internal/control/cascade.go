package control

import (
	"math"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// Inputs bundles the sensor data a controller consumes each cycle —
// the same four streams the HCE feeder threads forward (Table I).
type Inputs struct {
	IMU  sensors.IMUReading
	GPS  sensors.GPSReading
	Baro sensors.BaroReading
	RC   sensors.RCReading
}

// Setpoint is a 3D position-hold target with heading.
type Setpoint struct {
	Pos physics.Vec3
	Yaw float64
}

// Airframe carries the physical constants the thrust map needs.
type Airframe struct {
	Mass              float64
	Gravity           float64
	MaxThrustPerRotor float64
}

// AirframeFrom extracts the constants from physics parameters.
func AirframeFrom(p physics.Params) Airframe {
	return Airframe{Mass: p.Mass, Gravity: p.Gravity, MaxThrustPerRotor: p.MaxThrustPerRotor}
}

// Gains parameterizes the cascade. All limits use SI units; torque
// commands are normalized motor differentials.
type Gains struct {
	PosP   float64 // position error → velocity setpoint, 1/s
	VelMax float64 // m/s

	VelP, VelI, VelD float64 // velocity error → acceleration
	AccMax           float64 // m/s² horizontal
	TiltMax          float64 // rad

	AttP    float64 // attitude error → rate setpoint, 1/s
	YawP    float64
	RateMax float64 // rad/s

	RateP, RateD float64 // rate error → torque command
	TorqueMax    float64 // normalized motor differential
}

// ComplexGains returns the aggressive, feature-rich tune of the
// container's PX4-style controller.
func ComplexGains() Gains {
	return Gains{
		PosP: 1.1, VelMax: 2.5,
		VelP: 2.4, VelI: 0.6, VelD: 0.02, AccMax: 6, TiltMax: 0.6,
		AttP: 7, YawP: 3, RateMax: 4,
		RateP: 0.10, RateD: 0.0045, TorqueMax: 0.45,
	}
}

// SafetyGains returns the conservative tune of the host's verified
// safety controller: lower speed and tilt envelopes, no integral term
// (stateless enough to analyze exhaustively), strong damping.
func SafetyGains() Gains {
	return Gains{
		PosP: 0.7, VelMax: 1.0,
		VelP: 1.8, VelI: 0, VelD: 0.03, AccMax: 3.5, TiltMax: 0.3,
		AttP: 6, YawP: 2, RateMax: 2.5,
		RateP: 0.11, RateD: 0.005, TorqueMax: 0.35,
	}
}

// Cascade is the position→velocity→attitude→rate controller both
// Simplex sides share structurally; they differ in gains and in the
// features layered on top (mission planning, setpoint smoothing).
type Cascade struct {
	Gains    Gains
	Airframe Airframe

	velX, velY, velZ    PID
	rateX, rateY, rateZ PID

	lastUS    uint64
	primed    bool
	defaultDT float64

	lastRollSP, lastPitchSP, lastYawSP float64
}

// AttitudeSetpoint returns the attitude setpoint of the most recent
// Compute call. The security monitor uses the safety controller's
// setpoint as the reference for the attitude-error rule: a large gap
// between the commanded and actual attitude marks a dangerous state.
func (c *Cascade) AttitudeSetpoint() (roll, pitch, yaw float64) {
	return c.lastRollSP, c.lastPitchSP, c.lastYawSP
}

// NewCascade builds a controller for the given airframe running
// nominally at the given rate in hertz.
func NewCascade(g Gains, af Airframe, rateHz float64) *Cascade {
	c := &Cascade{Gains: g, Airframe: af, defaultDT: 1 / rateHz}
	c.velX = PID{Kp: g.VelP, Ki: g.VelI, Kd: g.VelD, OutLimit: g.AccMax, ILimit: 2}
	c.velY = c.velX
	c.velZ = PID{Kp: g.VelP, Ki: g.VelI, Kd: g.VelD, OutLimit: g.AccMax, ILimit: 2}
	c.rateX = PID{Kp: g.RateP, Kd: g.RateD, OutLimit: g.TorqueMax}
	c.rateY = c.rateX
	c.rateZ = PID{Kp: g.RateP * 1.5, Kd: g.RateD, OutLimit: g.TorqueMax}
	return c
}

// Reset clears all regulator state (hand-off hygiene), including the
// timestamp history and the published attitude setpoint, so a reset
// controller is indistinguishable from a freshly built one.
func (c *Cascade) Reset() {
	c.velX.Reset()
	c.velY.Reset()
	c.velZ.Reset()
	c.rateX.Reset()
	c.rateY.Reset()
	c.rateZ.Reset()
	c.primed = false
	c.lastUS = 0
	c.lastRollSP, c.lastPitchSP, c.lastYawSP = 0, 0, 0
}

// dt derives the integration step from IMU timestamps, clamped so a
// stalled stream cannot blow up the integrators.
func (c *Cascade) dt(timeUS uint64) float64 {
	if !c.primed {
		c.primed = true
		c.lastUS = timeUS
		return c.defaultDT
	}
	d := float64(timeUS-c.lastUS) / 1e6
	c.lastUS = timeUS
	if d <= 0 || d > 0.2 {
		return c.defaultDT
	}
	return d
}

// Compute runs one full cascade cycle and returns motor throttles.
// The inputs are passed by pointer purely to keep the ~230-byte
// bundle off the per-cycle copy path (two controllers run at
// 250–400 Hz); Compute never retains or mutates it.
func (c *Cascade) Compute(in *Inputs, sp Setpoint) [4]float64 {
	g := c.Gains
	dt := c.dt(in.IMU.TimeUS)
	roll, pitch, yaw := in.IMU.Quat.Euler()

	var velSP physics.Vec3
	var rollSP, pitchSP, yawSP float64
	var thrust float64

	switch in.RC.Mode {
	case sensors.ModeManual:
		// Sticks command attitude directly; throttle is passthrough
		// around hover.
		rollSP = in.RC.Roll * g.TiltMax
		pitchSP = in.RC.Pitch * g.TiltMax
		yawSP = yaw + in.RC.Yaw // rate-style yaw stick folded into sp
		thrust = c.hoverThrottle() * (0.5 + in.RC.Throttle)
	default: // position mode
		// Position loop.
		posErr := sp.Pos.Sub(in.GPS.Pos)
		velSP = posErr.Scale(g.PosP).Clamp(g.VelMax)
		// Velocity loops → world-frame acceleration demand.
		acc := physics.Vec3{
			X: c.velX.Update(velSP.X-in.GPS.Vel.X, dt),
			Y: c.velY.Update(velSP.Y-in.GPS.Vel.Y, dt),
			Z: c.velZ.Update(velSP.Z-in.GPS.Vel.Z, dt),
		}
		// Acceleration → tilt setpoints, rotated into the heading.
		axB := acc.X*math.Cos(yaw) + acc.Y*math.Sin(yaw)
		ayB := -acc.X*math.Sin(yaw) + acc.Y*math.Cos(yaw)
		pitchSP = clamp(axB/c.Airframe.Gravity, g.TiltMax)
		rollSP = clamp(-ayB/c.Airframe.Gravity, g.TiltMax)
		yawSP = sp.Yaw
		// Thrust from the exact quadratic map, with tilt compensation.
		tilt := in.IMU.Quat.TiltAngle()
		cosTilt := math.Cos(tilt)
		if cosTilt < 0.5 {
			cosTilt = 0.5
		}
		need := c.Airframe.Mass * (c.Airframe.Gravity + acc.Z) / cosTilt
		if need < 0 {
			need = 0
		}
		thrust = math.Sqrt(need / (4 * c.Airframe.MaxThrustPerRotor))
	}

	c.lastRollSP, c.lastPitchSP, c.lastYawSP = rollSP, pitchSP, yawSP

	// Attitude loop → body rate setpoints.
	rateSP := physics.Vec3{
		X: clamp(g.AttP*(rollSP-roll), g.RateMax),
		Y: clamp(g.AttP*(pitchSP-pitch), g.RateMax),
		Z: clamp(g.YawP*wrapAngle(yawSP-yaw), g.RateMax),
	}
	// Rate loop → torque commands.
	tx := c.rateX.Update(rateSP.X-in.IMU.Gyro.X, dt)
	ty := c.rateY.Update(rateSP.Y-in.IMU.Gyro.Y, dt)
	tz := c.rateZ.Update(rateSP.Z-in.IMU.Gyro.Z, dt)

	return Mix(thrust, tx, ty, tz)
}

func (c *Cascade) hoverThrottle() float64 {
	return math.Sqrt(c.Airframe.Mass * c.Airframe.Gravity / (4 * c.Airframe.MaxThrustPerRotor))
}

// wrapAngle maps an angle difference into (−π, π].
func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
