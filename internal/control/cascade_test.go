package control

import (
	"math"
	"testing"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// flyLoop runs a controller against the physics in a clean closed loop
// (no network, no scheduler): controller at ctlHz, physics at 10 kHz.
// Returns the quad after the given duration.
func flyLoop(t *testing.T, c *Cascade, sp Setpoint, start physics.Vec3, seconds float64, ctlHz float64, disturb func(sec float64) physics.Vec3) *physics.Quad {
	t.Helper()
	q := physics.NewQuad(physics.DefaultParams())
	q.State.Pos = start
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SettleRotors()
	suite := sensors.NewSuite(sensors.Noise{}, nil)

	const physDT = 0.0001
	ctlEvery := int(1 / (ctlHz * physDT))
	steps := int(seconds / physDT)
	for i := 0; i < steps; i++ {
		sec := float64(i) * physDT
		if disturb != nil {
			q.SetDisturbance(disturb(sec), physics.Vec3{})
		}
		if i%ctlEvery == 0 {
			us := uint64(sec * 1e6)
			in := Inputs{
				IMU:  suite.SampleIMU(q, us),
				GPS:  suite.SampleGPS(q, us),
				Baro: suite.SampleBaro(q, us),
				RC:   sensors.RCReading{TimeUS: us, Mode: sensors.ModePosition, Throttle: 0.5},
			}
			q.SetMotors(c.Compute(&in, sp))
		}
		q.Step(physDT)
	}
	return q
}

func defaultAirframe() Airframe { return AirframeFrom(physics.DefaultParams()) }

func TestComplexControllerHoldsHover(t *testing.T) {
	c := NewCascade(ComplexGains(), defaultAirframe(), 250)
	sp := Setpoint{Pos: physics.Vec3{Z: 1}}
	q := flyLoop(t, c, sp, physics.Vec3{Z: 1}, 10, 250, nil)
	if crashed, at := q.Crashed(); crashed {
		t.Fatalf("crashed at %.2fs holding hover", at)
	}
	if err := q.State.Pos.Sub(sp.Pos).Norm(); err > 0.05 {
		t.Fatalf("hover error %.3fm", err)
	}
}

func TestComplexControllerReachesSetpoint(t *testing.T) {
	c := NewCascade(ComplexGains(), defaultAirframe(), 250)
	sp := Setpoint{Pos: physics.Vec3{X: 1, Y: -0.5, Z: 1.5}}
	q := flyLoop(t, c, sp, physics.Vec3{Z: 1}, 12, 250, nil)
	if crashed, at := q.Crashed(); crashed {
		t.Fatalf("crashed at %.2fs en route", at)
	}
	if err := q.State.Pos.Sub(sp.Pos).Norm(); err > 0.08 {
		t.Fatalf("settling error %.3fm at %v", err, q.State.Pos)
	}
}

func TestSafetyControllerHoldsHover(t *testing.T) {
	c := NewCascade(SafetyGains(), defaultAirframe(), 250)
	sp := Setpoint{Pos: physics.Vec3{Z: 1}}
	q := flyLoop(t, c, sp, physics.Vec3{Z: 1}, 10, 250, nil)
	if crashed, at := q.Crashed(); crashed {
		t.Fatalf("safety controller crashed at %.2fs", at)
	}
	if err := q.State.Pos.Sub(sp.Pos).Norm(); err > 0.05 {
		t.Fatalf("hover error %.3fm", err)
	}
}

func TestSafetyControllerRecoversFromUpset(t *testing.T) {
	// The Simplex hand-off case: the vehicle is off-setpoint, tilted
	// and moving when the safety controller takes over.
	c := NewCascade(SafetyGains(), defaultAirframe(), 250)
	sp := Setpoint{Pos: physics.Vec3{Z: 1}}
	q := physics.NewQuad(physics.DefaultParams())
	q.State.Pos = physics.Vec3{X: 1.5, Y: -1, Z: 1.3}
	q.State.Vel = physics.Vec3{X: 1, Y: 0.5, Z: -0.3}
	q.State.Attitude = physics.FromEuler(0.25, -0.2, 0.4)
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SettleRotors()
	suite := sensors.NewSuite(sensors.Noise{}, nil)
	const physDT = 0.0001
	for i := 0; i < 150000; i++ { // 15 s
		sec := float64(i) * physDT
		if i%40 == 0 { // 250 Hz
			us := uint64(sec * 1e6)
			in := Inputs{
				IMU: suite.SampleIMU(q, us), GPS: suite.SampleGPS(q, us),
				Baro: suite.SampleBaro(q, us),
				RC:   sensors.RCReading{TimeUS: us, Mode: sensors.ModePosition},
			}
			q.SetMotors(c.Compute(&in, sp))
		}
		q.Step(physDT)
	}
	if crashed, at := q.Crashed(); crashed {
		t.Fatalf("safety controller failed to recover, crashed at %.2fs", at)
	}
	if err := q.State.Pos.Sub(sp.Pos).Norm(); err > 0.1 {
		t.Fatalf("recovery error %.3fm", err)
	}
}

func TestControllerRejectsWindDisturbance(t *testing.T) {
	c := NewCascade(ComplexGains(), defaultAirframe(), 250)
	sp := Setpoint{Pos: physics.Vec3{Z: 1}}
	gust := func(sec float64) physics.Vec3 {
		return physics.Vec3{X: 0.4 * math.Sin(2*math.Pi*sec/3), Y: 0.3}
	}
	q := flyLoop(t, c, sp, physics.Vec3{Z: 1}, 15, 250, gust)
	if crashed, _ := q.Crashed(); crashed {
		t.Fatal("crashed under mild wind")
	}
	if err := q.State.Pos.Sub(sp.Pos).Norm(); err > 0.25 {
		t.Fatalf("wind-hold error %.3fm", err)
	}
}

func TestControllerDegradesAtLowRate(t *testing.T) {
	// Sanity for the DoS experiments: the same controller run at a
	// crippled 10 Hz must perform visibly worse than at 250 Hz (it is
	// the mechanism by which resource DoS translates into flight
	// degradation).
	spot := physics.Vec3{Z: 1}
	fast := flyLoop(t, NewCascade(ComplexGains(), defaultAirframe(), 250),
		Setpoint{Pos: spot}, spot, 8, 250,
		func(sec float64) physics.Vec3 {
			return physics.Vec3{X: 0.5 * math.Sin(sec*4), Y: 0.4 * math.Cos(sec*3)}
		})
	slow := flyLoop(t, NewCascade(ComplexGains(), defaultAirframe(), 250),
		Setpoint{Pos: spot}, spot, 8, 10,
		func(sec float64) physics.Vec3 {
			return physics.Vec3{X: 0.5 * math.Sin(sec*4), Y: 0.4 * math.Cos(sec*3)}
		})
	fastErr := fast.State.Pos.Sub(spot).Norm()
	slowErr := slow.State.Pos.Sub(spot).Norm()
	slowCrashed, _ := slow.Crashed()
	if !slowCrashed && slowErr < 2*fastErr {
		t.Fatalf("10Hz control err %.3f vs 250Hz %.3f: starved loop not visibly degraded", slowErr, fastErr)
	}
}

func TestManualMode(t *testing.T) {
	c := NewCascade(ComplexGains(), defaultAirframe(), 250)
	q := physics.NewQuad(physics.DefaultParams())
	q.State.Pos = physics.Vec3{Z: 1}
	h := q.HoverThrottle()
	q.SetMotors([4]float64{h, h, h, h})
	q.SettleRotors()
	suite := sensors.NewSuite(sensors.Noise{}, nil)
	// Hold a small forward pitch stick for 2 s.
	for i := 0; i < 20000; i++ {
		sec := float64(i) * 0.0001
		if i%40 == 0 {
			us := uint64(sec * 1e6)
			in := Inputs{
				IMU: suite.SampleIMU(q, us), GPS: suite.SampleGPS(q, us),
				RC: sensors.RCReading{TimeUS: us, Mode: sensors.ModeManual, Pitch: 0.3, Throttle: 0.55},
			}
			q.SetMotors(c.Compute(&in, Setpoint{}))
		}
		q.Step(0.0001)
	}
	if q.State.Vel.X <= 0.1 {
		t.Fatalf("forward stick gave vx=%v, want forward motion", q.State.Vel.X)
	}
}

func TestCascadeResetClearsState(t *testing.T) {
	c := NewCascade(ComplexGains(), defaultAirframe(), 250)
	in := Inputs{
		IMU: sensors.IMUReading{TimeUS: 1000, Quat: physics.IdentityQuat()},
		GPS: sensors.GPSReading{Pos: physics.Vec3{X: 5}},
		RC:  sensors.RCReading{Mode: sensors.ModePosition},
	}
	c.Compute(&in, Setpoint{})
	c.Reset()
	if c.velX.Integrator() != 0 {
		t.Fatal("velocity integrator survived reset")
	}
	if c.primed {
		t.Fatal("timestamp primer survived reset")
	}
}

func TestDTClampsOnStall(t *testing.T) {
	c := NewCascade(ComplexGains(), defaultAirframe(), 250)
	if got := c.dt(1000); got != 1.0/250 {
		t.Fatalf("first dt = %v, want default", got)
	}
	if got := c.dt(5000); math.Abs(got-0.004) > 1e-12 {
		t.Fatalf("dt = %v, want 4ms", got)
	}
	// A 2 s gap (stalled stream) falls back to the default step.
	if got := c.dt(2_005_000); got != 1.0/250 {
		t.Fatalf("stalled dt = %v, want default", got)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	}
	for _, tc := range cases {
		if got := wrapAngle(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("wrapAngle(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestGainPresetsDiffer(t *testing.T) {
	cg, sg := ComplexGains(), SafetyGains()
	if sg.VelMax >= cg.VelMax {
		t.Fatal("safety controller should have a tighter velocity envelope")
	}
	if sg.TiltMax >= cg.TiltMax {
		t.Fatal("safety controller should have a tighter tilt envelope")
	}
	if sg.VelI != 0 {
		t.Fatal("safety controller should be integral-free for verifiability")
	}
}
