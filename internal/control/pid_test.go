package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPIDProportional(t *testing.T) {
	p := PID{Kp: 2}
	if got := p.Update(1.5, 0.01); got != 3 {
		t.Fatalf("P-only output = %v, want 3", got)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	p := PID{Ki: 1}
	for i := 0; i < 100; i++ {
		p.Update(1, 0.01)
	}
	if got := p.Integrator(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("integrator = %v, want 1", got)
	}
}

func TestPIDIntegralClamped(t *testing.T) {
	p := PID{Ki: 1, ILimit: 0.5}
	for i := 0; i < 1000; i++ {
		p.Update(10, 0.01)
	}
	if got := p.Integrator(); got != 0.5 {
		t.Fatalf("integrator = %v, want clamped 0.5", got)
	}
	p2 := PID{Ki: 1, ILimit: 0.5}
	for i := 0; i < 1000; i++ {
		p2.Update(-10, 0.01)
	}
	if got := p2.Integrator(); got != -0.5 {
		t.Fatalf("integrator = %v, want -0.5", got)
	}
}

func TestPIDDerivativeNeedsHistory(t *testing.T) {
	p := PID{Kd: 1}
	if got := p.Update(1, 0.1); got != 0 {
		t.Fatalf("first-sample derivative = %v, want 0", got)
	}
	if got := p.Update(2, 0.1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("derivative = %v, want 10", got)
	}
}

func TestPIDOutputClamp(t *testing.T) {
	p := PID{Kp: 100, OutLimit: 1}
	if got := p.Update(5, 0.01); got != 1 {
		t.Fatalf("output = %v, want clamped 1", got)
	}
	if got := p.Update(-5, 0.01); got != -1 {
		t.Fatalf("output = %v, want clamped -1", got)
	}
}

func TestPIDReset(t *testing.T) {
	p := PID{Kp: 1, Ki: 1, Kd: 1}
	p.Update(1, 0.1)
	p.Update(2, 0.1)
	p.Reset()
	if p.Integrator() != 0 {
		t.Fatal("integrator survived reset")
	}
	if got := p.Update(1, 0.1); math.Abs(got-(1+0.1)) > 1e-9 {
		t.Fatalf("post-reset output = %v, want P+I only (no stale derivative)", got)
	}
}

func TestPIDZeroDTSafe(t *testing.T) {
	p := PID{Kp: 1, Ki: 1, Kd: 1}
	if got := p.Update(2, 0); got != 2 {
		t.Fatalf("dt=0 output = %v, want pure P", got)
	}
}

func TestLowPassFirstSamplePasses(t *testing.T) {
	f := LowPass{Alpha: 0.1}
	if got := f.Update(5); got != 5 {
		t.Fatalf("first sample = %v, want 5", got)
	}
}

func TestLowPassConverges(t *testing.T) {
	f := LowPass{Alpha: 0.2}
	f.Update(0)
	var got float64
	for i := 0; i < 100; i++ {
		got = f.Update(10)
	}
	if math.Abs(got-10) > 1e-6 {
		t.Fatalf("filter did not converge: %v", got)
	}
}

func TestLowPassSmoothing(t *testing.T) {
	f := LowPass{Alpha: 0.1}
	f.Update(0)
	got := f.Update(10)
	if got != 1 {
		t.Fatalf("one step = %v, want 1", got)
	}
	if f.Value() != 1 {
		t.Fatalf("Value = %v", f.Value())
	}
}

func TestLowPassReset(t *testing.T) {
	f := LowPass{Alpha: 0.5}
	f.Update(10)
	f.Reset()
	if got := f.Update(2); got != 2 {
		t.Fatalf("post-reset first sample = %v, want 2", got)
	}
}

func TestLowPassAlphaClamped(t *testing.T) {
	f := LowPass{Alpha: 5} // silly alpha behaves as passthrough
	f.Update(0)
	if got := f.Update(7); got != 7 {
		t.Fatalf("alpha>1 output = %v, want 7", got)
	}
}

// Property: PID output is always within ±OutLimit when set.
func TestPIDOutputBoundedProperty(t *testing.T) {
	f := func(errs []float64) bool {
		p := PID{Kp: 3, Ki: 2, Kd: 0.5, OutLimit: 1, ILimit: 10}
		for _, e := range errs {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				continue
			}
			if out := p.Update(e, 0.004); out > 1 || out < -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: zero error with zero state produces zero output.
func TestPIDZeroInputZeroOutput(t *testing.T) {
	p := PID{Kp: 1, Ki: 1, Kd: 1, OutLimit: 5}
	for i := 0; i < 50; i++ {
		if out := p.Update(0, 0.01); out != 0 {
			t.Fatalf("zero error produced output %v", out)
		}
	}
}
