package control

import (
	"testing"
	"time"

	"containerdrone/internal/physics"
)

func TestMissionSequencesWaypoints(t *testing.T) {
	m := NewMission(
		Waypoint{Pos: physics.Vec3{X: 1, Z: 1}},
		Waypoint{Pos: physics.Vec3{X: 1, Y: 1, Z: 1}},
	)
	m.SlewRate = 0 // jump setpoints for this test
	if m.Done() {
		t.Fatal("fresh mission done")
	}
	sp := m.Update(0, physics.Vec3{Z: 1}, 0.01)
	if sp.Pos.X != 1 {
		t.Fatalf("first target = %v", sp.Pos)
	}
	// Arrive at WP0 (zero hold): advances.
	m.Update(time.Second, physics.Vec3{X: 1, Z: 1}, 0.01)
	sp = m.Update(time.Second+time.Millisecond, physics.Vec3{X: 1, Z: 1}, 0.01)
	if sp.Pos.Y != 1 {
		t.Fatalf("second target = %v", sp.Pos)
	}
	// Arrive at WP1: mission completes and keeps emitting the last WP.
	m.Update(2*time.Second, physics.Vec3{X: 1, Y: 1, Z: 1}, 0.01)
	if !m.Done() {
		t.Fatal("mission not done after both arrivals")
	}
	sp = m.Update(3*time.Second, physics.Vec3{}, 0.01)
	if sp.Pos != (physics.Vec3{X: 1, Y: 1, Z: 1}) {
		t.Fatalf("post-completion setpoint = %v", sp.Pos)
	}
}

func TestMissionHoldTime(t *testing.T) {
	m := NewMission(Waypoint{Pos: physics.Vec3{Z: 1}, Hold: 2 * time.Second})
	m.SlewRate = 0
	at := physics.Vec3{Z: 1}
	m.Update(0, at, 0.01)
	m.Update(time.Second, at, 0.01)
	if m.Done() {
		t.Fatal("advanced before hold elapsed")
	}
	m.Update(2100*time.Millisecond, at, 0.01)
	if !m.Done() {
		t.Fatal("did not advance after hold")
	}
}

func TestMissionHoldResetsOnDeparture(t *testing.T) {
	m := NewMission(Waypoint{Pos: physics.Vec3{Z: 1}, Hold: time.Second})
	m.SlewRate = 0
	m.Update(0, physics.Vec3{Z: 1}, 0.01)                     // arrive, hold starts
	m.Update(500*time.Millisecond, physics.Vec3{X: 2}, 0.01)  // blown away
	m.Update(1100*time.Millisecond, physics.Vec3{Z: 1}, 0.01) // re-arrive
	if m.Done() {
		t.Fatal("hold should have restarted after departure")
	}
	m.Update(2200*time.Millisecond, physics.Vec3{Z: 1}, 0.01)
	if !m.Done() {
		t.Fatal("hold never completed")
	}
}

func TestMissionSlewLimitsSetpoint(t *testing.T) {
	m := NewMission(Waypoint{Pos: physics.Vec3{X: 10}})
	m.SlewRate = 1 // 1 m/s
	sp := m.Update(0, physics.Vec3{}, 0.1)
	if sp.Pos.X > 0.11 {
		t.Fatalf("slew step = %v, want ≤0.1", sp.Pos.X)
	}
	for i := 0; i < 50; i++ {
		sp = m.Update(time.Duration(i)*100*time.Millisecond, physics.Vec3{}, 0.1)
	}
	if sp.Pos.X > 5.1 {
		t.Fatalf("after 5s of 1m/s slew, sp=%v", sp.Pos.X)
	}
}

func TestMissionAcceptanceRadius(t *testing.T) {
	m := NewMission(Waypoint{Pos: physics.Vec3{Z: 1}, Radius: 0.5})
	m.SlewRate = 0
	m.Update(0, physics.Vec3{X: 0.4, Z: 1}, 0.01) // inside custom radius
	if !m.Done() {
		t.Fatal("custom acceptance radius ignored")
	}
}

func TestEmptyMissionHoldsCurrent(t *testing.T) {
	m := NewMission()
	sp := m.Update(0, physics.Vec3{X: 2, Z: 1}, 0.01)
	if sp.Pos != (physics.Vec3{X: 2, Z: 1}) {
		t.Fatalf("empty mission setpoint = %v, want current position", sp.Pos)
	}
	if !m.Done() {
		t.Fatal("empty mission should be done")
	}
}

func TestMissionTarget(t *testing.T) {
	m := NewMission(Waypoint{Pos: physics.Vec3{X: 3}})
	wp, ok := m.Target()
	if !ok || wp.Pos.X != 3 {
		t.Fatalf("Target = %v %v", wp, ok)
	}
	m.SlewRate = 0
	m.Update(0, physics.Vec3{X: 3}, 0.01)
	if _, ok := m.Target(); ok {
		t.Fatal("Target on done mission should be false")
	}
}
