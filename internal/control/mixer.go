package control

// Mix converts a collective thrust command and normalized body-torque
// commands into the four motor throttles of the quad-X airframe. The
// rotor numbering and torque signs match physics.Quad:
//
//	rotor 0: front-right (x=+1, y=-1, CCW)
//	rotor 1: back-left   (x=-1, y=+1, CCW)
//	rotor 2: front-left  (x=+1, y=+1, CW)
//	rotor 3: back-right  (x=-1, y=-1, CW)
//
// Positive roll command boosts the y=+1 rotors (τx = Σ yᵢ·L·tᵢ),
// positive pitch boosts the x=−1 rotors (τy = −Σ xᵢ·L·tᵢ), positive
// yaw boosts the CCW pair. Outputs are clamped to [0,1]; thrust is
// reduced before torque authority (torque has priority near the
// limits, the same choice PX4's mixer makes for attitude authority).
func Mix(thrust, roll, pitch, yaw float64) [4]float64 {
	geom := [4]struct{ y, negx, dir float64 }{
		{-1, -1, +1}, // rotor 0: front-right CCW
		{+1, +1, +1}, // rotor 1: back-left CCW
		{+1, -1, -1}, // rotor 2: front-left CW
		{-1, +1, -1}, // rotor 3: back-right CW
	}
	var out [4]float64
	// First pass: raw mix.
	maxOver, minUnder := 0.0, 0.0
	for i, g := range geom {
		v := thrust + roll*g.y + pitch*g.negx + yaw*g.dir
		out[i] = v
		if v > 1 && v-1 > maxOver {
			maxOver = v - 1
		}
		if v < 0 && -v > minUnder {
			minUnder = -v
		}
	}
	// Shift collective to keep torque differentials when saturated.
	shift := 0.0
	if maxOver > 0 && minUnder == 0 {
		shift = -maxOver
	} else if minUnder > 0 && maxOver == 0 {
		shift = minUnder
	}
	for i := range out {
		v := out[i] + shift
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}
