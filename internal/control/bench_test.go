package control

import (
	"testing"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

func BenchmarkCascadeCompute(b *testing.B) {
	c := NewCascade(ComplexGains(), AirframeFrom(physics.DefaultParams()), 400)
	in := Inputs{
		IMU: sensors.IMUReading{Quat: physics.FromEuler(0.02, -0.01, 0.1), Gyro: physics.Vec3{X: 0.01}},
		GPS: sensors.GPSReading{Pos: physics.Vec3{X: 0.1, Z: 1}, FixOK: true},
		RC:  sensors.RCReading{Mode: sensors.ModePosition},
	}
	sp := Setpoint{Pos: physics.Vec3{Z: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.IMU.TimeUS += 2500
		_ = c.Compute(&in, sp)
	}
}

func BenchmarkMix(b *testing.B) {
	var out [4]float64
	for i := 0; i < b.N; i++ {
		out = Mix(0.55, 0.02, -0.01, 0.005)
	}
	_ = out
}

func BenchmarkPIDUpdate(b *testing.B) {
	p := PID{Kp: 2, Ki: 0.5, Kd: 0.02, OutLimit: 1, ILimit: 2}
	for i := 0; i < b.N; i++ {
		p.Update(0.1, 0.0025)
	}
}
