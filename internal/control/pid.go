// Package control implements the flight controllers of both Simplex
// sides: the PX4-style cascaded complex controller that runs inside
// the container and the conservative, exhaustively-testable safety
// controller that runs on the host. Both drive a quad-X motor mixer
// matched to the physics package's rotor geometry.
package control

// PID is a discrete PID regulator with output clamping and integrator
// anti-windup. The zero value is a zero-gain (inert) regulator.
type PID struct {
	Kp, Ki, Kd float64
	// OutLimit clamps the output to ±OutLimit (0 = unclamped).
	OutLimit float64
	// ILimit clamps the integrator state to ±ILimit (0 = unclamped).
	ILimit float64

	integ   float64
	prevErr float64
	primed  bool
}

// Update advances the regulator by dt seconds with the given error
// and returns the control output.
func (p *PID) Update(err, dt float64) float64 {
	if dt <= 0 {
		return p.output(err, 0)
	}
	p.integ += err * dt
	if p.ILimit > 0 {
		if p.integ > p.ILimit {
			p.integ = p.ILimit
		} else if p.integ < -p.ILimit {
			p.integ = -p.ILimit
		}
	}
	var deriv float64
	if p.primed {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.primed = true
	return p.output(err, deriv)
}

func (p *PID) output(err, deriv float64) float64 {
	out := p.Kp*err + p.Ki*p.integ + p.Kd*deriv
	if p.OutLimit > 0 {
		if out > p.OutLimit {
			out = p.OutLimit
		} else if out < -p.OutLimit {
			out = -p.OutLimit
		}
	}
	return out
}

// Reset clears the regulator state (integrator and derivative
// history) — called on controller hand-off so the safety controller
// starts clean.
func (p *PID) Reset() {
	p.integ = 0
	p.prevErr = 0
	p.primed = false
}

// Integrator exposes the integrator state for telemetry and tests.
func (p *PID) Integrator() float64 { return p.integ }

// LowPass is a first-order low-pass filter: state += α(in − state).
type LowPass struct {
	// Alpha in (0,1]; 1 = no filtering.
	Alpha  float64
	state  float64
	primed bool
}

// Update folds a sample in and returns the filtered value. The first
// sample initializes the state directly.
func (f *LowPass) Update(in float64) float64 {
	if !f.primed {
		f.state = in
		f.primed = true
		return in
	}
	a := f.Alpha
	if a <= 0 {
		a = 1
	} else if a > 1 {
		a = 1
	}
	f.state += a * (in - f.state)
	return f.state
}

// Value returns the current filter state.
func (f *LowPass) Value() float64 { return f.state }

// Reset clears the filter.
func (f *LowPass) Reset() { f.state = 0; f.primed = false }

func clamp(x, limit float64) float64 {
	if limit <= 0 {
		return x
	}
	if x > limit {
		return limit
	}
	if x < -limit {
		return -limit
	}
	return x
}
