package control_test

import (
	"fmt"

	"containerdrone/internal/control"
	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// ExampleMix shows how torque commands map to the quad-X motors:
// a pure roll command boosts the left pair against the right pair.
func ExampleMix() {
	motors := control.Mix(0.5, 0.1, 0, 0)
	fmt.Printf("front-right %.1f back-left %.1f front-left %.1f back-right %.1f\n",
		motors[0], motors[1], motors[2], motors[3])
	// Output:
	// front-right 0.4 back-left 0.6 front-left 0.6 back-right 0.4
}

// ExampleNewCascade runs one control cycle of the safety controller.
func ExampleNewCascade() {
	af := control.AirframeFrom(physics.DefaultParams())
	ctl := control.NewCascade(control.SafetyGains(), af, 250)
	in := control.Inputs{
		IMU: sensors.IMUReading{Quat: physics.IdentityQuat()},
		GPS: sensors.GPSReading{Pos: physics.Vec3{Z: 1}, FixOK: true},
		RC:  sensors.RCReading{Mode: sensors.ModePosition},
	}
	motors := ctl.Compute(&in, control.Setpoint{Pos: physics.Vec3{Z: 1}})
	// At the setpoint with level attitude, all four motors sit at the
	// hover trim.
	fmt.Printf("trim: %.2f %.2f %.2f %.2f\n", motors[0], motors[1], motors[2], motors[3])
	// Output:
	// trim: 0.70 0.70 0.70 0.70
}

// ExamplePID demonstrates the regulator's clamped output.
func ExamplePID() {
	pid := control.PID{Kp: 2, OutLimit: 1}
	fmt.Println(pid.Update(0.25, 0.004))
	fmt.Println(pid.Update(5, 0.004)) // clamped
	// Output:
	// 0.5
	// 1
}
