package sched

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: work conservation — over any horizon, a core's busy ticks
// plus idle ticks equals the elapsed ticks, and a core with a ready
// busy-loop task is never idle.
func TestWorkConservationProperty(t *testing.T) {
	f := func(periodMS, wcetFrac uint8, horizon16 uint16) bool {
		period := time.Duration(int(periodMS)%20+2) * time.Millisecond
		wcet := time.Duration(float64(period) * (float64(wcetFrac%90+5) / 100))
		steps := int64(horizon16%5000) + 3000

		c := NewCPU(2, tick, nil, nil)
		c.Add(&Task{Name: "p", Core: 0, Priority: 50, Period: period, WCET: wcet})
		c.Add(&Task{Name: "hog", Core: 1, Priority: 10})
		for i := int64(0); i < steps; i++ {
			c.Tick(time.Duration(i) * tick)
		}
		// Core 1 runs the hog every tick: zero idle.
		if c.IdleRate(1) != 0 {
			return false
		}
		// Core 0 busy fraction ≈ utilization, within the tick
		// quantization and the partial-period boundary effect (at most
		// one extra job's worth of work inside the horizon).
		util := float64(wcet) / float64(period)
		got := 1 - c.IdleRate(0)
		horizonSec := float64(steps) * tick.Seconds()
		slack := tick.Seconds()/period.Seconds() + // one tick per job
			wcet.Seconds()/horizonSec + // boundary job
			0.01
		return got >= util-slack && got <= util+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: completions never exceed releases, and releases match the
// horizon/period for a lone task.
func TestReleaseAccountingProperty(t *testing.T) {
	f := func(periodMS uint8, horizon16 uint16) bool {
		period := time.Duration(int(periodMS)%20+1) * time.Millisecond
		steps := int64(horizon16%8000) + 1000
		c := NewCPU(1, tick, nil, nil)
		task := c.Add(&Task{Name: "p", Core: 0, Priority: 50, Period: period, WCET: period / 4})
		for i := int64(0); i < steps; i++ {
			c.Tick(time.Duration(i) * tick)
		}
		st := task.Stats()
		if st.Completed > st.Released {
			return false
		}
		expected := int64(time.Duration(steps)*tick/period) + 1
		return st.Released >= expected-1 && st.Released <= expected+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a higher-priority task's latency is unaffected by any
// lower-priority load on the same core (priority isolation — the
// paper's CPU defense).
func TestPriorityIsolationProperty(t *testing.T) {
	f := func(lowWCETFrac uint8) bool {
		mk := func(withLoad bool) time.Duration {
			c := NewCPU(1, tick, nil, nil)
			hi := c.Add(&Task{Name: "hi", Core: 0, Priority: 90,
				Period: 4 * time.Millisecond, WCET: time.Millisecond})
			if withLoad {
				frac := float64(lowWCETFrac%95+5) / 100
				c.Add(&Task{Name: "lo", Core: 0, Priority: 10,
					Period: 10 * time.Millisecond,
					WCET:   time.Duration(frac * float64(10*time.Millisecond))})
			}
			for i := int64(0); i < 4000; i++ {
				c.Tick(time.Duration(i) * tick)
			}
			return hi.Stats().MaxLatency
		}
		return mk(true) == mk(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
