package sched

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements the fixed-priority response-time analysis the
// paper lists as future work (§VII: "provide hard real-time proof and
// schedulability analysis for container drone"). For each core, tasks
// are partitioned by priority and the classical recurrence
//
//	R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i/T_j⌉ · C_j
//
// is iterated to a fixed point; the task set is schedulable when every
// task's response time is at most its (implicit) deadline = period.
// Busy-loop tasks are treated as background load below every periodic
// task when their priority says so, or make the core unschedulable for
// lower-priority periodic tasks otherwise.

// ResponseTime holds the analysis result for one task.
type ResponseTime struct {
	Task        *Task
	Response    time.Duration
	Schedulable bool
	// Unbounded marks tasks whose response diverges (priority below a
	// busy-loop task on the same core, or over-utilized core).
	Unbounded bool
}

// AnalysisResult is the per-core schedulability verdict.
type AnalysisResult struct {
	Core        int
	Utilization float64
	Tasks       []ResponseTime
	Schedulable bool
}

// Analyze runs response-time analysis for every core of the CPU and
// returns per-core results, lowest core first.
func Analyze(c *CPU) []AnalysisResult {
	out := make([]AnalysisResult, 0, c.cores)
	for core := 0; core < c.cores; core++ {
		out = append(out, analyzeCore(core, c.byCore[core]))
	}
	return out
}

func analyzeCore(core int, tasks []*Task) AnalysisResult {
	res := AnalysisResult{Core: core, Schedulable: true}
	if len(tasks) == 0 {
		return res
	}
	// Sort by descending priority (FIFO same-priority ties resolved by
	// registration order, which matches the scheduler's tie-break).
	sorted := append([]*Task(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Priority != sorted[j].Priority {
			return sorted[i].Priority > sorted[j].Priority
		}
		return sorted[i].seq < sorted[j].seq
	})
	for _, t := range sorted {
		res.Utilization += t.Utilization()
	}
	for i, t := range sorted {
		rt := ResponseTime{Task: t}
		if t.Busy() {
			// A busy-loop task runs whenever nothing higher is ready;
			// it has no deadline and is schedulable by definition.
			rt.Schedulable = true
			rt.Response = 0
			res.Tasks = append(res.Tasks, rt)
			continue
		}
		// Any busy-loop task at equal-or-higher priority starves t:
		// equal priority FIFO never preempts a running busy loop.
		starved := false
		for j := 0; j < len(sorted); j++ {
			hp := sorted[j]
			if hp == t || !hp.Busy() {
				continue
			}
			if hp.Priority > t.Priority ||
				(hp.Priority == t.Priority && hp.seq < t.seq) {
				starved = true
				break
			}
		}
		if starved {
			rt.Unbounded = true
			res.Tasks = append(res.Tasks, rt)
			res.Schedulable = false
			continue
		}
		r, ok := responseTime(t, sorted[:i])
		rt.Response = r
		rt.Schedulable = ok && r <= t.Period
		rt.Unbounded = !ok
		if !rt.Schedulable {
			res.Schedulable = false
		}
		res.Tasks = append(res.Tasks, rt)
	}
	return res
}

// responseTime iterates the RTA recurrence for task t against the
// strictly earlier (higher-priority) periodic tasks in hp.
func responseTime(t *Task, hp []*Task) (time.Duration, bool) {
	const maxIter = 1000
	r := t.WCET
	for iter := 0; iter < maxIter; iter++ {
		interference := time.Duration(0)
		for _, h := range hp {
			if h.Busy() {
				continue // handled by the starvation check
			}
			n := math.Ceil(float64(r) / float64(h.Period))
			interference += time.Duration(n) * h.WCET
		}
		next := t.WCET + interference
		if next == r {
			return r, true
		}
		if next > 10*t.Period {
			return next, false // diverging
		}
		r = next
	}
	return r, false
}

// String renders a one-line verdict for the core.
func (a AnalysisResult) String() string {
	return fmt.Sprintf("core %d: U=%.3f schedulable=%v tasks=%d",
		a.Core, a.Utilization, a.Schedulable, len(a.Tasks))
}
