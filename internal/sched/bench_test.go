package sched

import (
	"testing"
	"time"

	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
)

func flightTaskSet(c *CPU) {
	c.Add(&Task{Name: "drv-imu", Core: 0, Priority: 90, Period: 4 * time.Millisecond, WCET: 300 * time.Microsecond, AccessRate: 15e6, MemBound: 0.6})
	c.Add(&Task{Name: "drv-pwm", Core: 0, Priority: 90, Period: 2500 * time.Microsecond, WCET: 150 * time.Microsecond, AccessRate: 8e6, MemBound: 0.5})
	c.Add(&Task{Name: "safety", Core: 1, Priority: 20, Period: 4 * time.Millisecond, WCET: 500 * time.Microsecond, AccessRate: 10e6, MemBound: 0.6})
	c.Add(&Task{Name: "recv", Core: 1, Priority: 50, Period: 2500 * time.Microsecond, WCET: 150 * time.Microsecond, AccessRate: 6e6, MemBound: 0.4})
	c.Add(&Task{Name: "px4", Core: 3, Priority: 10, Period: 2500 * time.Microsecond, WCET: 900 * time.Microsecond, AccessRate: 25e6, MemBound: 0.6})
}

func BenchmarkCPUTickIdle(b *testing.B) {
	c := NewCPU(4, 100*time.Microsecond, nil, nil)
	for i := 0; i < b.N; i++ {
		c.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
}

func BenchmarkCPUTickFlightSet(b *testing.B) {
	c := NewCPU(4, 100*time.Microsecond, nil, nil)
	flightTaskSet(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
}

func BenchmarkCPUTickWithMemoryModel(b *testing.B) {
	bus := membw.NewBus(4, 100e6, 100*time.Microsecond)
	guard := memguard.New(4)
	guard.SetEnabled(true)
	guard.SetBudget(3, 30000)
	c := NewCPU(4, 100*time.Microsecond, bus, guard)
	flightTaskSet(c)
	c.Add(&Task{Name: "bandwidth", Core: 3, Priority: 10, AccessRate: 4e9, MemBound: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(time.Duration(i) * 100 * time.Microsecond)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	c := NewCPU(4, 100*time.Microsecond, nil, nil)
	flightTaskSet(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(c)
	}
}
