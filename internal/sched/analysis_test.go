package sched

import (
	"testing"
	"time"
)

func TestAnalysisSimpleSchedulable(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "a", Core: 0, Priority: 90, Period: 4 * time.Millisecond, WCET: time.Millisecond})
	c.Add(&Task{Name: "b", Core: 0, Priority: 50, Period: 10 * time.Millisecond, WCET: 2 * time.Millisecond})
	res := Analyze(c)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	r := res[0]
	if !r.Schedulable {
		t.Fatalf("task set should be schedulable: %+v", r)
	}
	// RTA: R_a = 1ms; R_b = 2 + ⌈R_b/4⌉·1 → 2+1=3, ⌈3/4⌉=1 → fixed 3ms.
	if r.Tasks[0].Response != time.Millisecond {
		t.Fatalf("R_a = %v", r.Tasks[0].Response)
	}
	if r.Tasks[1].Response != 3*time.Millisecond {
		t.Fatalf("R_b = %v, want 3ms", r.Tasks[1].Response)
	}
	if u := r.Utilization; u < 0.449 || u > 0.451 {
		t.Fatalf("U = %v, want 0.45", u)
	}
}

func TestAnalysisInterferenceCounts(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "hp", Core: 0, Priority: 90, Period: 5 * time.Millisecond, WCET: 2 * time.Millisecond})
	c.Add(&Task{Name: "lp", Core: 0, Priority: 10, Period: 20 * time.Millisecond, WCET: 5 * time.Millisecond})
	r := Analyze(c)[0]
	// R_lp: 5 + ⌈R/5⌉·2; start 5 → 5+2·1=7? ⌈5/5⌉=1 → 7; ⌈7/5⌉=2 → 9;
	// ⌈9/5⌉=2 → 9. Fixed point 9ms ≤ 20ms.
	if r.Tasks[1].Response != 9*time.Millisecond {
		t.Fatalf("R_lp = %v, want 9ms", r.Tasks[1].Response)
	}
	if !r.Schedulable {
		t.Fatal("set should be schedulable")
	}
}

func TestAnalysisUnschedulableOverload(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "hp", Core: 0, Priority: 90, Period: 2 * time.Millisecond, WCET: 1500 * time.Microsecond})
	c.Add(&Task{Name: "lp", Core: 0, Priority: 10, Period: 4 * time.Millisecond, WCET: 2 * time.Millisecond})
	r := Analyze(c)[0]
	if r.Schedulable {
		t.Fatal("135% utilization reported schedulable")
	}
	if r.Tasks[0].Schedulable != true {
		t.Fatal("highest-priority task should still be schedulable")
	}
	if r.Tasks[1].Schedulable {
		t.Fatal("overloaded low task reported schedulable")
	}
}

func TestAnalysisBusyHogStarvesLower(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "hog", Core: 0, Priority: 50})
	c.Add(&Task{Name: "victim", Core: 0, Priority: 10, Period: 10 * time.Millisecond, WCET: time.Millisecond})
	r := Analyze(c)[0]
	if r.Schedulable {
		t.Fatal("busy hog above victim should be unschedulable")
	}
	var victim ResponseTime
	for _, rt := range r.Tasks {
		if rt.Task.Name == "victim" {
			victim = rt
		}
	}
	if !victim.Unbounded {
		t.Fatal("victim response should be unbounded")
	}
}

func TestAnalysisBusyHogBelowIsHarmless(t *testing.T) {
	// The ContainerDrone configuration: the container hog sits below
	// every host-critical task, so the host tasks stay schedulable.
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "hog", Core: 0, Priority: PrioContainer})
	c.Add(&Task{Name: "driver", Core: 0, Priority: PrioDriver, Period: 4 * time.Millisecond, WCET: time.Millisecond})
	c.Add(&Task{Name: "safety", Core: 0, Priority: PrioSafety, Period: 10 * time.Millisecond, WCET: 2 * time.Millisecond})
	r := Analyze(c)[0]
	for _, rt := range r.Tasks {
		if rt.Task.Name != "hog" && !rt.Schedulable {
			t.Fatalf("%s unschedulable despite having priority over the hog", rt.Task.Name)
		}
	}
}

func TestAnalysisPerCore(t *testing.T) {
	c := NewCPU(4, tick, nil, nil)
	c.Add(&Task{Name: "a", Core: 0, Priority: 90, Period: 4 * time.Millisecond, WCET: time.Millisecond})
	c.Add(&Task{Name: "hog", Core: 3, Priority: 99})
	res := Analyze(c)
	if len(res) != 4 {
		t.Fatalf("expected 4 per-core results")
	}
	if !res[0].Schedulable || !res[1].Schedulable {
		t.Fatal("cores 0/1 should be schedulable")
	}
	if res[3].Utilization != 1 {
		t.Fatalf("hog core utilization = %v", res[3].Utilization)
	}
}

func TestAnalysisMatchesSimulation(t *testing.T) {
	// Cross-validation: a set RTA declares schedulable must produce
	// zero misses in simulation (memory modeling off).
	c := NewCPU(1, tick, nil, nil)
	a := c.Add(&Task{Name: "a", Core: 0, Priority: 90, Period: 4 * time.Millisecond, WCET: time.Millisecond})
	b := c.Add(&Task{Name: "b", Core: 0, Priority: 50, Period: 10 * time.Millisecond, WCET: 3 * time.Millisecond})
	r := Analyze(c)[0]
	if !r.Schedulable {
		t.Fatal("expected schedulable set")
	}
	run(c, time.Second)
	if a.Stats().Missed != 0 || b.Stats().Missed != 0 {
		t.Fatalf("simulation missed deadlines RTA declared safe: a=%d b=%d",
			a.Stats().Missed, b.Stats().Missed)
	}
	// And simulated max latency must not exceed the analytical bound.
	if b.Stats().MaxLatency > r.Tasks[1].Response {
		t.Fatalf("simulated latency %v exceeds RTA bound %v",
			b.Stats().MaxLatency, r.Tasks[1].Response)
	}
}

func TestAnalysisStringRenders(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "a", Core: 0, Priority: 90, Period: 4 * time.Millisecond, WCET: time.Millisecond})
	s := Analyze(c)[0].String()
	if s == "" {
		t.Fatal("empty render")
	}
}
