package sched

import (
	"fmt"
	"math"
	"time"

	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
)

// neverDue is a release time beyond any simulated horizon, used when
// no periodic task is registered.
const neverDue = time.Duration(math.MaxInt64)

// CPU is the multicore fixed-priority FIFO scheduler. It advances in
// engine ticks: each tick every core runs its highest-priority ready
// task, with progress scaled by memory-bus contention and gated by
// MemGuard throttling.
//
// The tick loop is structured for the 10 kHz hot path: the earliest
// pending release time is cached, so ticks with no release due (the
// overwhelming majority at 10 kHz) skip the task scan entirely, and
// the per-core winner is recomputed only when that core's ready set
// changed (release, completion, task add/remove) — both bit-identical
// to the full per-tick rescan they replace.
type CPU struct {
	cores    int
	tick     time.Duration
	tickSec  float64 // tick.Seconds(), cached off the 10 kHz hot path
	tasks    []*Task
	byCore   [][]*Task
	busy     []*Task         // busy-loop tasks, always ready
	periodic []*Task         // periodic tasks, registration order
	nextDue  time.Duration   // earliest nextRelease across periodic tasks
	dirty    []bool          // per-core: ready set changed, re-pick
	bus      *membw.Bus      // optional
	guard    *memguard.Guard // optional
	idle     []int64         // idle ticks per core
	busyT    []int64         // busy ticks per core
	running  []*Task         // chosen task per core this tick
	demand   []float64       // full-speed demand per core this tick
	now      time.Duration   // time of the most recent Tick

	// activeCount and dirtyCount gate the idle fast path in Tick: when
	// no task is ready, no ready set changed, and no release is due,
	// the tick is pure idle accounting.
	activeCount int
	dirtyCount  int

	// snapshot is the task set recorded by Checkpoint, restored by
	// Reset — the warm-pool campaign's way of undoing mid-run task
	// arrivals (attack tasks, fault spinners) and removals (the killed
	// receiver thread).
	snapshot []*Task
}

// NewCPU builds a scheduler for the given core count and tick. The
// bus and guard are optional; nil disables memory modeling.
func NewCPU(cores int, tick time.Duration, bus *membw.Bus, guard *memguard.Guard) *CPU {
	if cores <= 0 {
		panic("sched: cores must be positive")
	}
	if tick <= 0 {
		panic("sched: tick must be positive")
	}
	if bus != nil && bus.Cores() != cores {
		panic("sched: bus core count mismatch")
	}
	return &CPU{
		cores:   cores,
		tick:    tick,
		tickSec: tick.Seconds(),
		nextDue: neverDue,
		bus:     bus,
		guard:   guard,
		byCore:  make([][]*Task, cores),
		dirty:   make([]bool, cores),
		idle:    make([]int64, cores),
		busyT:   make([]int64, cores),
		running: make([]*Task, cores),
		demand:  make([]float64, cores),
	}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Add registers a task; it panics on invalid configuration (task sets
// are static program configuration, not runtime input).
func (c *CPU) Add(t *Task) *Task {
	if err := t.validate(c.cores); err != nil {
		panic(err)
	}
	// A task spawned mid-run releases from now, not from time zero.
	if !t.Busy() && t.nextRelease < c.now {
		t.nextRelease = c.now
	}
	t.seq = len(c.tasks)
	c.tasks = append(c.tasks, t)
	c.byCore[t.Core] = append(c.byCore[t.Core], t)
	if t.Busy() {
		c.busy = append(c.busy, t)
	} else {
		c.periodic = append(c.periodic, t)
		if t.nextRelease < c.nextDue {
			c.nextDue = t.nextRelease
		}
	}
	c.markDirty(t.Core)
	return t
}

// markDirty flags a core for re-pick, keeping the dirty-core count
// that gates the idle fast path.
func (c *CPU) markDirty(core int) {
	if !c.dirty[core] {
		c.dirty[core] = true
		c.dirtyCount++
	}
}

// Remove deregisters a task (e.g. the attacker killing the complex
// controller, or the monitor killing the receiver thread). The task's
// current job is abandoned.
func (c *CPU) Remove(t *Task) {
	c.tasks = removeTask(c.tasks, t)
	c.byCore[t.Core] = removeTask(c.byCore[t.Core], t)
	if t.Busy() {
		c.busy = removeTask(c.busy, t)
	} else {
		// nextDue may now be earlier than any remaining task's release;
		// that only costs one spurious scan, which recomputes it.
		c.periodic = removeTask(c.periodic, t)
	}
	if t.active {
		c.activeCount--
	}
	t.active = false
	c.markDirty(t.Core)
}

func removeTask(s []*Task, t *Task) []*Task {
	for i, x := range s {
		if x == t {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Tasks returns the registered tasks (shared slice; do not mutate).
func (c *CPU) Tasks() []*Task { return c.tasks }

// AttachMemory wires the shared bus and regulator after construction.
func (c *CPU) AttachMemory(bus *membw.Bus, guard *memguard.Guard) {
	if bus != nil && bus.Cores() != c.cores {
		panic("sched: bus core count mismatch")
	}
	c.bus = bus
	c.guard = guard
}

// IdleRate returns the fraction of observed ticks a core spent idle —
// the "CPU idle rate" measurement of the paper's Table II.
func (c *CPU) IdleRate(core int) float64 {
	total := c.idle[core] + c.busyT[core]
	if total == 0 {
		return 1
	}
	return float64(c.idle[core]) / float64(total)
}

// ResetIdleStats clears idle accounting (used to skip warm-up).
func (c *CPU) ResetIdleStats() {
	for i := range c.idle {
		c.idle[i] = 0
		c.busyT[i] = 0
	}
}

// Tick advances the scheduler by one tick ending at time now+tick.
// The sequence per tick: release jobs, pick per-core winners, gather
// memory demand, resolve contention, apply progress, fire completions.
func (c *CPU) Tick(now time.Duration) {
	c.now = now
	if c.guard != nil {
		c.guard.Tick(now)
	}

	// Idle fast path: no ready task anywhere, no ready set changed, and
	// no release due this tick — the overwhelming majority of 10 kHz
	// ticks in a lightly loaded flight. Pure idle accounting, nothing
	// else. This is observably identical to the full path: with no
	// ready task the previous full tick already resolved the bus at
	// zero demand, every running slot is nil, and no statistics besides
	// idle ticks can change.
	if c.activeCount == 0 && c.dirtyCount == 0 && now < c.nextDue && len(c.busy) == 0 {
		for i := range c.idle {
			c.idle[i]++
		}
		return
	}

	// Phase 1: job releases. Busy-loop tasks are always ready; the
	// periodic scan runs only on ticks where some release is due and
	// recomputes the earliest upcoming release as it goes.
	for _, t := range c.busy {
		if !t.active {
			t.active = true
			t.releaseTime = now
			c.activeCount++
			c.markDirty(t.Core)
		}
	}
	if now >= c.nextDue {
		next := neverDue
		for _, t := range c.periodic {
			for t.nextRelease <= now {
				t.stats.Released++
				if t.active {
					// Previous job still running: skip this release.
					t.stats.Missed++
				} else {
					t.active = true
					t.remaining = t.WCET
					t.releaseTime = t.nextRelease
					c.activeCount++
					c.markDirty(t.Core)
				}
				t.nextRelease += t.Period
			}
			if t.nextRelease < next {
				next = t.nextRelease
			}
		}
		c.nextDue = next
	}

	// Phase 2: pick the highest-priority active task per core,
	// rescanning only cores whose ready set changed since their last
	// pick (the winner is stable otherwise).
	for core := 0; core < c.cores; core++ {
		if !c.dirty[core] {
			continue
		}
		c.dirty[core] = false
		c.dirtyCount--
		var best *Task
		for _, t := range c.byCore[core] {
			if !t.active {
				continue
			}
			if best == nil || t.Priority > best.Priority ||
				(t.Priority == best.Priority && t.seq < best.seq) {
				best = t
			}
		}
		c.running[core] = best
	}

	// Phase 3: declare memory demand for non-throttled running tasks.
	lambda := 1.0
	if c.bus != nil {
		c.bus.BeginTick()
		for core := 0; core < c.cores; core++ {
			t := c.running[core]
			c.demand[core] = 0
			if t == nil {
				continue
			}
			if c.guard != nil && c.guard.Throttled(core) {
				continue
			}
			d := t.AccessRate * c.tickSec
			c.demand[core] = d
			c.bus.AddDemand(core, d)
		}
		lambda = c.bus.Resolve()
	}

	// Phase 4: apply progress and completions.
	for core := 0; core < c.cores; core++ {
		t := c.running[core]
		if t == nil {
			c.idle[core]++
			continue
		}
		c.busyT[core]++
		if c.guard != nil && c.guard.Throttled(core) {
			c.guard.NoteThrottledTick(core)
			continue // core stalled: no progress, no accesses
		}
		frac := membw.Slowdown(lambda, t.MemBound)
		progress := c.tick
		if frac != 1 {
			progress = time.Duration(float64(c.tick) * frac)
		}
		t.stats.RunTicks++
		if c.bus != nil && c.demand[core] > 0 {
			issued := c.demand[core] * frac
			c.bus.Charge(core, issued)
			if c.guard != nil {
				c.guard.Charge(core, issued)
			}
		}
		if t.Busy() {
			continue // busy tasks never complete
		}
		t.remaining -= progress
		if t.remaining <= 0 {
			t.active = false
			c.activeCount--
			t.stats.Completed++
			c.markDirty(core)
			latency := now + c.tick - t.releaseTime
			t.stats.SumLatency += latency
			if latency > t.stats.MaxLatency {
				t.stats.MaxLatency = latency
			}
			if t.Work != nil {
				t.Work(now)
			}
		}
	}
}

// Running returns the task currently occupying a core, or nil.
func (c *CPU) Running(core int) *Task { return c.running[core] }

// Checkpoint records the current task set so Reset can restore it.
// Call it once when scenario construction completes, before the first
// Tick.
func (c *CPU) Checkpoint() {
	c.snapshot = append(c.snapshot[:0], c.tasks...)
}

// Reset rewinds the scheduler to its Checkpoint: the recorded task set
// (mid-run arrivals dropped, mid-run removals restored), every task's
// scheduling state and statistics cleared to a zero-phase start, and
// all idle accounting zeroed. Reset does not allocate at steady state:
// the per-core slices are truncated and refilled in place.
func (c *CPU) Reset() {
	if c.snapshot == nil {
		panic("sched: Reset without Checkpoint")
	}
	clear(c.tasks)
	c.tasks = append(c.tasks[:0], c.snapshot...)
	for core := range c.byCore {
		clear(c.byCore[core])
		c.byCore[core] = c.byCore[core][:0]
	}
	clear(c.busy)
	c.busy = c.busy[:0]
	clear(c.periodic)
	c.periodic = c.periodic[:0]
	c.nextDue = neverDue
	for i, t := range c.tasks {
		t.resetSched(i)
		c.byCore[t.Core] = append(c.byCore[t.Core], t)
		if t.Busy() {
			c.busy = append(c.busy, t)
		} else {
			c.periodic = append(c.periodic, t)
			c.nextDue = 0 // zero-phase: every periodic task releases at t=0
		}
	}
	c.activeCount = 0
	c.dirtyCount = 0
	for i := range c.dirty {
		c.dirty[i] = true
		c.dirtyCount++
		c.idle[i] = 0
		c.busyT[i] = 0
		c.running[i] = nil
		c.demand[i] = 0
	}
	c.now = 0
}

// String summarizes scheduler state.
func (c *CPU) String() string {
	return fmt.Sprintf("sched.CPU{cores=%d tasks=%d}", c.cores, len(c.tasks))
}
