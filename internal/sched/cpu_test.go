package sched

import (
	"testing"
	"time"

	"containerdrone/internal/membw"
	"containerdrone/internal/memguard"
)

const tick = 100 * time.Microsecond

func run(c *CPU, d time.Duration) {
	steps := int64(d / tick)
	for i := int64(0); i < steps; i++ {
		c.Tick(time.Duration(i) * tick)
	}
}

func TestPeriodicTaskCompletes(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	done := 0
	c.Add(&Task{
		Name: "ctl", Core: 0, Priority: 50,
		Period: time.Millisecond, WCET: 200 * time.Microsecond,
		Work: func(time.Duration) { done++ },
	})
	run(c, 10*time.Millisecond)
	if done != 10 {
		t.Fatalf("completions = %d, want 10", done)
	}
}

func TestTaskLatencyAccounting(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	task := c.Add(&Task{
		Name: "t", Core: 0, Priority: 50,
		Period: time.Millisecond, WCET: 300 * time.Microsecond,
	})
	run(c, 10*time.Millisecond)
	st := task.Stats()
	if st.Completed != 10 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	// Uncontended: latency equals WCET.
	if st.AvgLatency() != 300*time.Microsecond {
		t.Fatalf("AvgLatency = %v, want 300µs", st.AvgLatency())
	}
	if st.MaxLatency != 300*time.Microsecond {
		t.Fatalf("MaxLatency = %v", st.MaxLatency)
	}
}

func TestPreemptionByPriority(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	low := c.Add(&Task{
		Name: "low", Core: 0, Priority: 10,
		Period: 10 * time.Millisecond, WCET: 5 * time.Millisecond,
	})
	high := c.Add(&Task{
		Name: "high", Core: 0, Priority: 90,
		Period: time.Millisecond, WCET: 500 * time.Microsecond,
	})
	run(c, 20*time.Millisecond)
	hs, ls := high.Stats(), low.Stats()
	if hs.Missed != 0 {
		t.Fatalf("high-priority task missed %d deadlines", hs.Missed)
	}
	// High takes 50% of the core; low (50% demand) still completes
	// but with inflated latency.
	if ls.Completed == 0 {
		t.Fatal("low-priority task never completed")
	}
	if ls.AvgLatency() <= 5*time.Millisecond {
		t.Fatalf("low latency %v should exceed its WCET due to preemption", ls.AvgLatency())
	}
}

func TestBusyTaskStarvesEqualAndLowerPriority(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	hog := c.Add(&Task{Name: "hog", Core: 0, Priority: 50})
	victim := c.Add(&Task{
		Name: "victim", Core: 0, Priority: 10,
		Period: time.Millisecond, WCET: 100 * time.Microsecond,
	})
	run(c, 20*time.Millisecond)
	if victim.Stats().Completed != 0 {
		t.Fatal("lower-priority task ran despite busy hog")
	}
	if victim.Stats().Missed == 0 {
		t.Fatal("victim should be accumulating misses")
	}
	if hog.Stats().RunTicks == 0 {
		t.Fatal("hog never ran")
	}
}

func TestHigherPriorityImmuneToBusyHog(t *testing.T) {
	// The paper's CPU protection: container tasks run at low priority,
	// so a CPU DoS inside the container cannot steal cycles from the
	// drivers.
	c := NewCPU(1, tick, nil, nil)
	c.Add(&Task{Name: "hog", Core: 0, Priority: PrioContainer})
	driver := c.Add(&Task{
		Name: "driver", Core: 0, Priority: PrioDriver,
		Period: 4 * time.Millisecond, WCET: 400 * time.Microsecond,
	})
	run(c, 40*time.Millisecond)
	st := driver.Stats()
	if st.Missed != 0 {
		t.Fatalf("driver missed %d deadlines under low-priority hog", st.Missed)
	}
	if st.AvgLatency() != 400*time.Microsecond {
		t.Fatalf("driver latency %v inflated by low-priority hog", st.AvgLatency())
	}
}

func TestCoreIsolation(t *testing.T) {
	// cpuset pinning: a hog on core 3 cannot affect core 0 (absent
	// memory contention).
	c := NewCPU(4, tick, nil, nil)
	c.Add(&Task{Name: "hog", Core: 3, Priority: 99})
	ctl := c.Add(&Task{
		Name: "ctl", Core: 0, Priority: 20,
		Period: time.Millisecond, WCET: 300 * time.Microsecond,
	})
	run(c, 10*time.Millisecond)
	if ctl.Stats().Missed != 0 {
		t.Fatal("cross-core interference without a shared bus")
	}
	if got := c.IdleRate(3); got != 0 {
		t.Fatalf("hog core idle rate = %v, want 0", got)
	}
}

func TestIdleRate(t *testing.T) {
	c := NewCPU(2, tick, nil, nil)
	c.Add(&Task{
		Name: "half", Core: 0, Priority: 50,
		Period: time.Millisecond, WCET: 500 * time.Microsecond,
	})
	run(c, 100*time.Millisecond)
	if got := c.IdleRate(0); got < 0.45 || got > 0.55 {
		t.Fatalf("idle rate = %v, want ~0.5", got)
	}
	if got := c.IdleRate(1); got != 1 {
		t.Fatalf("empty core idle rate = %v, want 1", got)
	}
	c.ResetIdleStats()
	if got := c.IdleRate(0); got != 1 {
		t.Fatalf("after reset idle rate = %v, want 1 (no samples)", got)
	}
}

func TestMissedReleasesWhileJobRuns(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	// WCET 0.9·period with a higher-priority task consuming 50%:
	// demand 140% ⇒ must miss.
	c.Add(&Task{
		Name: "high", Core: 0, Priority: 90,
		Period: time.Millisecond, WCET: 500 * time.Microsecond,
	})
	low := c.Add(&Task{
		Name: "low", Core: 0, Priority: 10,
		Period: time.Millisecond, WCET: 900 * time.Microsecond,
	})
	run(c, 100*time.Millisecond)
	if low.Stats().Missed == 0 {
		t.Fatal("overloaded task reported no misses")
	}
	if low.Stats().MissRate() < 0.3 {
		t.Fatalf("miss rate = %v, want substantial", low.Stats().MissRate())
	}
}

func TestMemoryContentionSlowsVictim(t *testing.T) {
	bus := membw.NewBus(4, 100e6, tick)
	c := NewCPU(4, tick, bus, nil)
	// Attacker on core 3 demands 4× bus capacity.
	c.Add(&Task{Name: "bandwidth", Core: 3, Priority: 10, AccessRate: 400e6, MemBound: 1})
	victim := c.Add(&Task{
		Name: "driver", Core: 0, Priority: 90,
		Period: 4 * time.Millisecond, WCET: 2 * time.Millisecond,
		AccessRate: 20e6, MemBound: 0.5,
	})
	run(c, 400*time.Millisecond)
	st := victim.Stats()
	// λ≈4.2 ⇒ victim speed ≈ 1/(1+3.2·0.5) ≈ 0.38 ⇒ effective WCET
	// ≈ 5.2ms > 4ms period ⇒ misses.
	if st.Missed == 0 {
		t.Fatal("memory DoS caused no deadline misses on the victim core")
	}
	if st.MaxLatency <= 2*time.Millisecond {
		t.Fatalf("victim latency %v not inflated", st.MaxLatency)
	}
}

func TestMemGuardProtectsVictim(t *testing.T) {
	bus := membw.NewBus(4, 100e6, tick)
	guard := memguard.New(4)
	guard.SetEnabled(true)
	// Container core budget: 10% of bus capacity per 1 ms period.
	guard.SetBudget(3, 10e6*memguard.DefaultPeriod.Seconds())
	c := NewCPU(4, tick, bus, guard)
	c.Add(&Task{Name: "bandwidth", Core: 3, Priority: 10, AccessRate: 400e6, MemBound: 1})
	victim := c.Add(&Task{
		Name: "driver", Core: 0, Priority: 90,
		Period: 4 * time.Millisecond, WCET: 2 * time.Millisecond,
		AccessRate: 20e6, MemBound: 0.5,
	})
	run(c, 400*time.Millisecond)
	st := victim.Stats()
	if st.Missed != 0 {
		t.Fatalf("victim missed %d deadlines with MemGuard enabled", st.Missed)
	}
	if guard.Stats(3).ThrottleEvents == 0 {
		t.Fatal("attacker core was never throttled")
	}
	if guard.Stats(3).ThrottledTicks == 0 {
		t.Fatal("no throttled ticks recorded")
	}
}

func TestRemoveTask(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	done := 0
	task := c.Add(&Task{
		Name: "t", Core: 0, Priority: 50,
		Period: time.Millisecond, WCET: 100 * time.Microsecond,
		Work: func(time.Duration) { done++ },
	})
	run(c, 5*time.Millisecond)
	c.Remove(task)
	before := done
	run(c, 5*time.Millisecond)
	if done != before {
		t.Fatal("removed task kept completing")
	}
	if len(c.Tasks()) != 0 {
		t.Fatal("task still registered")
	}
}

func TestAddValidation(t *testing.T) {
	c := NewCPU(2, tick, nil, nil)
	bad := []*Task{
		{Name: "", Core: 0, Priority: 1, Period: time.Millisecond, WCET: time.Microsecond},
		{Name: "x", Core: 5, Priority: 1, Period: time.Millisecond, WCET: time.Microsecond},
		{Name: "x", Core: 0, Priority: 1, Period: time.Millisecond, WCET: 0},
		{Name: "x", Core: 0, Priority: 1, Period: time.Millisecond, WCET: 2 * time.Millisecond},
		{Name: "x", Core: 0, Priority: 1, Period: time.Millisecond, WCET: time.Microsecond, MemBound: 2},
		{Name: "x", Core: 0, Priority: 1, Period: time.Millisecond, WCET: time.Microsecond, AccessRate: -1},
	}
	for i, task := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad task %d did not panic", i)
				}
			}()
			c.Add(task)
		}()
	}
}

func TestFIFOTieBreakByRegistration(t *testing.T) {
	c := NewCPU(1, tick, nil, nil)
	first := c.Add(&Task{Name: "first", Core: 0, Priority: 50})
	c.Add(&Task{Name: "second", Core: 0, Priority: 50})
	c.Tick(0)
	if c.Running(0) != first {
		t.Fatal("equal-priority tie should go to earlier registration")
	}
}

func TestUtilization(t *testing.T) {
	periodic := &Task{Period: 10 * time.Millisecond, WCET: 2 * time.Millisecond}
	if periodic.Utilization() != 0.2 {
		t.Fatalf("utilization = %v", periodic.Utilization())
	}
	busy := &Task{}
	if busy.Utilization() != 1 {
		t.Fatal("busy task utilization should be 1")
	}
}
