package sched_test

import (
	"fmt"
	"time"

	"containerdrone/internal/sched"
)

// ExampleAnalyze runs response-time analysis on the paper's priority
// layout: drivers above interrupts above the safety controller.
func ExampleAnalyze() {
	cpu := sched.NewCPU(1, 100*time.Microsecond, nil, nil)
	cpu.Add(&sched.Task{Name: "driver", Core: 0, Priority: sched.PrioDriver,
		Period: 4 * time.Millisecond, WCET: time.Millisecond})
	cpu.Add(&sched.Task{Name: "safety", Core: 0, Priority: sched.PrioSafety,
		Period: 10 * time.Millisecond, WCET: 2 * time.Millisecond})

	res := sched.Analyze(cpu)[0]
	for _, rt := range res.Tasks {
		fmt.Printf("%s: response %v (ok=%v)\n", rt.Task.Name, rt.Response, rt.Schedulable)
	}
	fmt.Println("schedulable:", res.Schedulable)
	// Output:
	// driver: response 1ms (ok=true)
	// safety: response 3ms (ok=true)
	// schedulable: true
}
