// Package sched models the quad-core real-time scheduler of the
// paper's RPi3B: fixed-priority FIFO tasks pinned to cores (cgroup
// cpuset), with execution progress modulated by shared-memory
// contention (membw) and MemGuard throttling. The paper's CPU DoS
// protection (§III-C) is exactly this mechanism: the container's tasks
// are pinned to one core at a priority below every host-critical task,
// so they cannot steal cycles from drivers (prio 90) or the safety
// controller (prio 20).
package sched

import (
	"fmt"
	"time"
)

// Priorities used by the paper's deployment (§IV-C): kernel drivers
// run at FIFO 90, system interrupts around 40 (assigned by Linux), the
// safety controller at 20, and everything in the container below that.
const (
	PrioDriver    = 90
	PrioInterrupt = 40
	PrioSafety    = 20
	PrioContainer = 10
	PrioIdle      = 0
)

// Task is a periodic (or busy-loop) real-time task. Functional work is
// attached via the Work callback, which runs when a job completes —
// so everything downstream of a starved task is late exactly when the
// schedule says it is.
type Task struct {
	Name     string
	Core     int
	Priority int // FIFO priority, higher preempts lower

	// Period is the release period; zero means a busy-loop task that
	// is always ready (the Bandwidth attack, a CPU hog).
	Period time.Duration
	// WCET is the nominal per-job execution time at full memory speed.
	// Ignored for busy-loop tasks.
	WCET time.Duration

	// AccessRate is memory accesses issued per second of execution.
	AccessRate float64
	// MemBound is the fraction of execution stalled on memory at
	// saturation, in [0,1]; it converts bus contention into slowdown.
	MemBound float64

	// Work runs (at most once per job) when the job completes.
	Work func(now time.Duration)

	// internal scheduling state
	active      bool
	remaining   time.Duration
	releaseTime time.Duration
	nextRelease time.Duration
	stats       TaskStats
	seq         int // registration order for FIFO tie-break
}

// TaskStats accumulates per-task scheduling outcomes.
type TaskStats struct {
	Released   int64
	Completed  int64
	Missed     int64 // releases skipped because the previous job still ran
	RunTicks   int64 // ticks this task occupied its core
	MaxLatency time.Duration
	SumLatency time.Duration
}

// AvgLatency returns mean release-to-completion latency.
func (s TaskStats) AvgLatency() time.Duration {
	if s.Completed == 0 {
		return 0
	}
	return s.SumLatency / time.Duration(s.Completed)
}

// MissRate returns the fraction of releases that were skipped.
func (s TaskStats) MissRate() float64 {
	if s.Released == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Released)
}

// Stats returns a copy of the task's counters.
func (t *Task) Stats() TaskStats { return t.stats }

// resetSched rewinds the task to the state of a freshly Added task at
// time zero: inactive, zero-phase releases, clean statistics.
func (t *Task) resetSched(seq int) {
	t.active = false
	t.remaining = 0
	t.releaseTime = 0
	t.nextRelease = 0
	t.stats = TaskStats{}
	t.seq = seq
}

// ResetStats clears the task's counters (used between experiment
// phases to measure attack windows in isolation).
func (t *Task) ResetStats() { t.stats = TaskStats{} }

// Busy reports whether this is a busy-loop task.
func (t *Task) Busy() bool { return t.Period <= 0 }

// Utilization returns WCET/Period for periodic tasks and 1 for
// busy-loop tasks.
func (t *Task) Utilization() float64 {
	if t.Busy() {
		return 1
	}
	return float64(t.WCET) / float64(t.Period)
}

func (t *Task) validate(cores int) error {
	if t.Name == "" {
		return fmt.Errorf("sched: task with empty name")
	}
	if t.Core < 0 || t.Core >= cores {
		return fmt.Errorf("sched: task %q pinned to core %d of %d", t.Name, t.Core, cores)
	}
	if !t.Busy() && t.WCET <= 0 {
		return fmt.Errorf("sched: periodic task %q has non-positive WCET", t.Name)
	}
	if !t.Busy() && t.WCET > t.Period {
		return fmt.Errorf("sched: task %q WCET %v exceeds period %v", t.Name, t.WCET, t.Period)
	}
	if t.MemBound < 0 || t.MemBound > 1 {
		return fmt.Errorf("sched: task %q MemBound %v outside [0,1]", t.Name, t.MemBound)
	}
	if t.AccessRate < 0 {
		return fmt.Errorf("sched: task %q negative AccessRate", t.Name)
	}
	return nil
}
