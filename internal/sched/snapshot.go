package sched

import "time"

// CPUState is a mid-run snapshot of the scheduler's dynamic state:
// every task's job state and statistics (positionally, in registration
// order), the release cache, and the idle accounting. It presumes the
// scheduler's task set still equals its Checkpoint — the fork-campaign
// contract is that snapshots are taken strictly before any mid-run
// task arrival or removal (attack tasks, fault spinners, kills) —
// and SnapshotInto enforces that.
//
// The per-core running slots are intentionally NOT captured:
// RestoreFrom marks every core dirty, and the next Tick re-picks each
// winner with the same pure (priority, seq) rule that chose the
// original — bit-identical because the ready set is restored exactly.
//
// Ownership: the state shares no memory with any scheduler; the
// capture source may keep running. The zero value is ready for
// SnapshotInto, which reuses the state's buffers.
type CPUState struct {
	now     time.Duration
	nextDue time.Duration
	idle    []int64
	busyT   []int64
	tasks   []taskState
}

type taskState struct {
	active      bool
	remaining   time.Duration
	releaseTime time.Duration
	nextRelease time.Duration
	stats       TaskStats
	seq         int
}

// TaskSetAtCheckpoint reports whether the live task set still equals
// the Checkpoint, positionally — the non-panicking form of the
// SnapshotInto precondition.
func (c *CPU) TaskSetAtCheckpoint() bool {
	if c.snapshot == nil || len(c.tasks) != len(c.snapshot) {
		return false
	}
	for i, t := range c.tasks {
		if t != c.snapshot[i] {
			return false
		}
	}
	return true
}

// SnapshotInto captures the scheduler's dynamic state into st. It
// panics if the live task set has diverged from the Checkpoint —
// such a scheduler cannot be restored positionally onto a warm
// sibling.
func (c *CPU) SnapshotInto(st *CPUState) {
	if c.snapshot == nil {
		panic("sched: SnapshotInto without Checkpoint")
	}
	if !c.TaskSetAtCheckpoint() {
		panic("sched: SnapshotInto after the task set changed; snapshots must precede task arrivals and removals")
	}
	st.now = c.now
	st.nextDue = c.nextDue
	st.idle = append(st.idle[:0], c.idle...)
	st.busyT = append(st.busyT[:0], c.busyT...)
	st.tasks = st.tasks[:0]
	for _, t := range c.tasks {
		st.tasks = append(st.tasks, taskState{
			active:      t.active,
			remaining:   t.remaining,
			releaseTime: t.releaseTime,
			nextRelease: t.nextRelease,
			stats:       t.stats,
			seq:         t.seq,
		})
	}
}

// RestoreFrom rewinds the scheduler to a captured state: Reset back to
// the checkpointed task set, then overlay each task's captured job
// state positionally onto this scheduler's own Task objects. The
// scheduler must be built from the same scenario as the capture source
// (same task registration order).
func (c *CPU) RestoreFrom(st *CPUState) {
	c.Reset()
	if len(c.tasks) != len(st.tasks) {
		panic("sched: RestoreFrom with mismatched task set; source and target must share a scenario")
	}
	c.activeCount = 0
	for i, t := range c.tasks {
		ts := &st.tasks[i]
		t.active = ts.active
		t.remaining = ts.remaining
		t.releaseTime = ts.releaseTime
		t.nextRelease = ts.nextRelease
		t.stats = ts.stats
		t.seq = ts.seq
		if t.active {
			c.activeCount++
		}
	}
	copy(c.idle, st.idle)
	copy(c.busyT, st.busyT)
	c.nextDue = st.nextDue
	c.now = st.now
	// Reset left every core dirty with no incumbent: the next Tick
	// re-picks each winner from the restored ready set.
}
