package sensors

// RCScript replays a scripted sequence of pilot inputs — the paper's
// experiments are all "operator flies to a safe height in manual mode,
// then switches to position control"; the script captures that
// hand-off plus any stick activity.
type RCScript struct {
	steps []rcStep
}

type rcStep struct {
	atUS    uint64
	reading RCReading
}

// NewRCScript starts an empty script. With no steps, Sample returns a
// centered-stick position-mode frame — the steady state of every
// experiment.
func NewRCScript() *RCScript { return &RCScript{} }

// Add appends a step: from time atUS onward the given reading is
// reported (with its TimeUS overwritten at sampling). Steps must be
// added in increasing time order.
func (s *RCScript) Add(atUS uint64, r RCReading) *RCScript {
	if len(s.steps) > 0 && atUS < s.steps[len(s.steps)-1].atUS {
		panic("sensors: RC script steps out of order")
	}
	s.steps = append(s.steps, rcStep{atUS: atUS, reading: r})
	return s
}

// Sample returns the scripted reading in effect at timeUS.
func (s *RCScript) Sample(timeUS uint64) RCReading {
	r := RCReading{Throttle: 0.5, Mode: ModePosition}
	for _, st := range s.steps {
		if st.atUS <= timeUS {
			r = st.reading
		} else {
			break
		}
	}
	r.TimeUS = timeUS
	return r
}
