// Package sensors models the Navio2 sensor suite and the Vicon indoor
// positioning feed of the paper's testbed. Each sensor samples the
// physics ground truth at the paper's Table-I rate, adding bias and
// noise drawn from a deterministic RNG.
//
// Rates (Table I of the paper): IMU 250 Hz, barometer 50 Hz, GPS
// 10 Hz, RC 50 Hz; the Vicon feed substitutes for GPS position indoors
// and is modeled at the GPS rate.
package sensors

import "containerdrone/internal/physics"

// Table-I sensor stream rates in hertz.
const (
	IMURate  = 250
	BaroRate = 50
	GPSRate  = 10
	RCRate   = 50
)

// IMUReading is one inertial sample: body angular rates and the
// attitude estimate fused onboard (the Navio2 carries two IMU chips;
// the EKF attitude solution is modeled directly).
type IMUReading struct {
	TimeUS uint64       // sample time, microseconds
	Gyro   physics.Vec3 // body rates, rad/s
	Accel  physics.Vec3 // body acceleration, m/s² (including gravity reaction)
	Quat   physics.Quat // fused attitude estimate
}

// BaroReading is one barometric altitude sample.
type BaroReading struct {
	TimeUS   uint64
	Pressure float64 // Pa
	AltM     float64 // derived altitude, m
	TempC    float64
}

// GPSReading is one position fix. Indoors the Vicon motion-capture
// system supplies this stream (ViconMAVLink in the paper); the field
// layout is the same.
type GPSReading struct {
	TimeUS  uint64
	Pos     physics.Vec3 // local frame, m
	Vel     physics.Vec3 // m/s
	NumSats uint8
	FixOK   bool
}

// RCReading is one radio-control input frame: normalized stick
// positions plus the flight-mode switch.
type RCReading struct {
	TimeUS   uint64
	Roll     float64 // [-1, 1]
	Pitch    float64 // [-1, 1]
	Yaw      float64 // [-1, 1]
	Throttle float64 // [0, 1]
	Mode     FlightMode
}

// FlightMode is the RC mode-switch position.
type FlightMode uint8

const (
	// ModeManual passes stick inputs to attitude control directly.
	ModeManual FlightMode = iota
	// ModePosition holds a 3D position setpoint (the mode every
	// experiment in the paper flies in).
	ModePosition
)

// String returns the mode name.
func (m FlightMode) String() string {
	switch m {
	case ModeManual:
		return "manual"
	case ModePosition:
		return "position"
	default:
		return "unknown"
	}
}

// Noise configures the stochastic error models. The zero value is a
// perfect (noise-free) sensor suite, which tests rely on.
type Noise struct {
	GyroSigma  float64 // rad/s
	AccelSigma float64 // m/s²
	BaroSigma  float64 // m
	PosSigma   float64 // m (Vicon is millimeter-accurate; GPS is not)
	VelSigma   float64 // m/s
	GyroBias   physics.Vec3
}

// DefaultNoise returns noise levels matching a Navio2-class IMU with
// Vicon positioning.
func DefaultNoise() Noise {
	return Noise{
		GyroSigma:  0.002,
		AccelSigma: 0.02,
		BaroSigma:  0.08,
		PosSigma:   0.002, // Vicon: ~2 mm
		VelSigma:   0.01,
		GyroBias:   physics.Vec3{X: 0.001, Y: -0.0005, Z: 0.0008},
	}
}

// NormSource supplies standard normal samples; sim.RNG.Norm satisfies
// it via a closure.
type NormSource func() float64

// Faults is the suite's live fault-injection state, driven by the
// fault layer while a sensor fault's window is open. The zero value
// is a healthy suite; every field composes with the noise model.
type Faults struct {
	// GPSOffset shifts every position fix — a GPS/Vicon spoofer
	// steering the vehicle by lying about where it is.
	GPSOffset physics.Vec3
	// GyroBias adds to the gyro channel on top of Noise.GyroBias — a
	// thermally drifting or tampered IMU.
	GyroBias physics.Vec3
	// BaroFrozen makes SampleBaro return the last healthy reading
	// (stale timestamp included) — a wedged barometer driver.
	BaroFrozen bool
}

// Suite samples a physics.Quad into sensor readings.
type Suite struct {
	Noise Noise
	norm  NormSource

	faults   Faults
	lastBaro BaroReading
	haveBaro bool
}

// NewSuite builds a sensor suite; norm may be nil for a noise-free
// suite (all sigmas must then be zero to be meaningful).
func NewSuite(noise Noise, norm NormSource) *Suite {
	if norm == nil {
		norm = func() float64 { return 0 }
	}
	return &Suite{Noise: noise, norm: norm}
}

// SetFaults replaces the live fault state; the zero value heals the
// suite. Called by fault injectors at window boundaries and, for
// time-varying faults (GPS spoof drift), from their Step cadence.
func (s *Suite) SetFaults(f Faults) { s.faults = f }

// Reset heals the suite and forgets the barometer history, returning
// it to its just-built state (the noise source is external and is
// reseeded by the caller).
func (s *Suite) Reset() {
	s.faults = Faults{}
	s.lastBaro = BaroReading{}
	s.haveBaro = false
}

// Faults returns the current fault state.
func (s *Suite) Faults() Faults { return s.faults }

// SuiteState is a snapshot of the suite's dynamic state: the live
// fault injection and the barometer history. The noise model and
// noise source stay with their owners (the RNG stream is captured
// separately).
type SuiteState struct {
	faults   Faults
	lastBaro BaroReading
	haveBaro bool
}

// SnapshotInto captures the suite's dynamic state into st.
func (s *Suite) SnapshotInto(st *SuiteState) {
	st.faults = s.faults
	st.lastBaro = s.lastBaro
	st.haveBaro = s.haveBaro
}

// RestoreFrom rewinds the suite to a captured state, keeping its own
// noise source.
func (s *Suite) RestoreFrom(st *SuiteState) {
	s.faults = st.faults
	s.lastBaro = st.lastBaro
	s.haveBaro = st.haveBaro
}

func (s *Suite) n(sigma float64) float64 {
	if sigma == 0 {
		return 0
	}
	return sigma * s.norm()
}

// SampleIMU reads the inertial state at the given time.
func (s *Suite) SampleIMU(q *physics.Quad, timeUS uint64) IMUReading {
	st := q.State
	gyro := st.Omega.Add(s.Noise.GyroBias)
	gyro = gyro.Add(s.faults.GyroBias)
	gyro = gyro.Add(physics.Vec3{X: s.n(s.Noise.GyroSigma), Y: s.n(s.Noise.GyroSigma), Z: s.n(s.Noise.GyroSigma)})
	// Specific force in body frame: attitude⁻¹ · (a - g), with the quad
	// near equilibrium this is ≈ -g rotated into body.
	gravity := physics.Vec3{Z: -q.Params.Gravity}
	specific := st.Attitude.Conj().Rotate(gravity.Scale(-1))
	specific = specific.Add(physics.Vec3{X: s.n(s.Noise.AccelSigma), Y: s.n(s.Noise.AccelSigma), Z: s.n(s.Noise.AccelSigma)})
	return IMUReading{TimeUS: timeUS, Gyro: gyro, Accel: specific, Quat: st.Attitude}
}

// SampleBaro reads barometric altitude using the standard-atmosphere
// pressure lapse near sea level.
func (s *Suite) SampleBaro(q *physics.Quad, timeUS uint64) BaroReading {
	if s.faults.BaroFrozen && s.haveBaro {
		return s.lastBaro // wedged driver: stale reading, stale timestamp
	}
	alt := q.State.Pos.Z + s.n(s.Noise.BaroSigma)
	const p0 = 101325.0 // Pa
	pressure := p0 * (1 - 2.25577e-5*alt)
	r := BaroReading{TimeUS: timeUS, Pressure: pressure, AltM: alt, TempC: 22.0}
	s.lastBaro, s.haveBaro = r, true
	return r
}

// SampleGPS reads the Vicon/GPS position fix.
func (s *Suite) SampleGPS(q *physics.Quad, timeUS uint64) GPSReading {
	pos := q.State.Pos.Add(s.faults.GPSOffset)
	pos = pos.Add(physics.Vec3{X: s.n(s.Noise.PosSigma), Y: s.n(s.Noise.PosSigma), Z: s.n(s.Noise.PosSigma)})
	vel := q.State.Vel.Add(physics.Vec3{X: s.n(s.Noise.VelSigma), Y: s.n(s.Noise.VelSigma), Z: s.n(s.Noise.VelSigma)})
	return GPSReading{TimeUS: timeUS, Pos: pos, Vel: vel, NumSats: 12, FixOK: true}
}
