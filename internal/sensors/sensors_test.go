package sensors

import (
	"math"
	"testing"

	"containerdrone/internal/physics"
	"containerdrone/internal/sim"
)

func testQuad() *physics.Quad {
	q := physics.NewQuad(physics.DefaultParams())
	q.State.Pos = physics.Vec3{X: 0.5, Y: -0.3, Z: 1.2}
	q.State.Vel = physics.Vec3{X: 0.1}
	return q
}

func TestNoiseFreeIMUMatchesTruth(t *testing.T) {
	s := NewSuite(Noise{}, nil)
	q := testQuad()
	q.State.Omega = physics.Vec3{X: 0.2, Y: -0.1, Z: 0.05}
	r := s.SampleIMU(q, 123)
	if r.TimeUS != 123 {
		t.Fatalf("TimeUS = %d", r.TimeUS)
	}
	if r.Gyro != q.State.Omega {
		t.Fatalf("noise-free gyro = %v, want %v", r.Gyro, q.State.Omega)
	}
	if r.Quat != q.State.Attitude {
		t.Fatal("attitude estimate differs from truth in noise-free suite")
	}
}

func TestIMULevelAccelIsGravityReaction(t *testing.T) {
	s := NewSuite(Noise{}, nil)
	q := testQuad()
	r := s.SampleIMU(q, 0)
	if math.Abs(r.Accel.Z-q.Params.Gravity) > 1e-9 {
		t.Fatalf("level specific force Z = %v, want +g", r.Accel.Z)
	}
	if math.Abs(r.Accel.X) > 1e-9 || math.Abs(r.Accel.Y) > 1e-9 {
		t.Fatalf("level specific force lateral = %v", r.Accel)
	}
}

func TestIMUGyroBiasApplied(t *testing.T) {
	n := Noise{GyroBias: physics.Vec3{X: 0.01}}
	s := NewSuite(n, nil)
	q := testQuad()
	r := s.SampleIMU(q, 0)
	if math.Abs(r.Gyro.X-0.01) > 1e-12 {
		t.Fatalf("gyro bias missing: %v", r.Gyro.X)
	}
}

func TestBaroAltitude(t *testing.T) {
	s := NewSuite(Noise{}, nil)
	q := testQuad()
	r := s.SampleBaro(q, 7)
	if math.Abs(r.AltM-1.2) > 1e-9 {
		t.Fatalf("baro alt = %v, want 1.2", r.AltM)
	}
	if r.Pressure >= 101325 {
		t.Fatalf("pressure at 1.2m = %v, want below sea level pressure", r.Pressure)
	}
}

func TestBaroPressureDecreasesWithAltitude(t *testing.T) {
	s := NewSuite(Noise{}, nil)
	q := testQuad()
	low := s.SampleBaro(q, 0)
	q.State.Pos.Z = 50
	high := s.SampleBaro(q, 1)
	if high.Pressure >= low.Pressure {
		t.Fatal("pressure did not decrease with altitude")
	}
}

func TestGPSTracksPosition(t *testing.T) {
	s := NewSuite(Noise{}, nil)
	q := testQuad()
	r := s.SampleGPS(q, 9)
	if r.Pos != q.State.Pos || r.Vel != q.State.Vel {
		t.Fatalf("noise-free GPS differs from truth: %+v", r)
	}
	if !r.FixOK || r.NumSats < 4 {
		t.Fatal("GPS fix should be valid")
	}
}

func TestNoisyGPSStaysNearTruth(t *testing.T) {
	rng := sim.NewRNG(1)
	s := NewSuite(DefaultNoise(), rng.Norm)
	q := testQuad()
	for i := 0; i < 1000; i++ {
		r := s.SampleGPS(q, uint64(i))
		if r.Pos.Sub(q.State.Pos).Norm() > 0.02 {
			t.Fatalf("Vicon-grade noise moved fix by %v m", r.Pos.Sub(q.State.Pos).Norm())
		}
	}
}

func TestNoiseIsDeterministic(t *testing.T) {
	q := testQuad()
	a := NewSuite(DefaultNoise(), sim.NewRNG(5).Norm)
	b := NewSuite(DefaultNoise(), sim.NewRNG(5).Norm)
	for i := 0; i < 100; i++ {
		ra, rb := a.SampleIMU(q, uint64(i)), b.SampleIMU(q, uint64(i))
		if ra != rb {
			t.Fatal("same-seed sensor suites diverged")
		}
	}
}

func TestRCScriptDefault(t *testing.T) {
	s := NewRCScript()
	r := s.Sample(1000)
	if r.Mode != ModePosition {
		t.Fatalf("default mode = %v, want position", r.Mode)
	}
	if r.Throttle != 0.5 || r.Roll != 0 {
		t.Fatalf("default sticks = %+v, want centered", r)
	}
	if r.TimeUS != 1000 {
		t.Fatalf("TimeUS = %d", r.TimeUS)
	}
}

func TestRCScriptSteps(t *testing.T) {
	s := NewRCScript().
		Add(0, RCReading{Mode: ModeManual, Throttle: 0.6}).
		Add(5_000_000, RCReading{Mode: ModePosition, Throttle: 0.5})
	if got := s.Sample(1_000_000); got.Mode != ModeManual {
		t.Fatalf("mode at 1s = %v, want manual", got.Mode)
	}
	if got := s.Sample(5_000_000); got.Mode != ModePosition {
		t.Fatalf("mode at 5s = %v, want position", got.Mode)
	}
	if got := s.Sample(9_000_000); got.Mode != ModePosition {
		t.Fatalf("mode at 9s = %v, want position", got.Mode)
	}
}

func TestRCScriptOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	NewRCScript().Add(100, RCReading{}).Add(50, RCReading{})
}

func TestFlightModeString(t *testing.T) {
	if ModeManual.String() != "manual" || ModePosition.String() != "position" {
		t.Fatal("mode names wrong")
	}
	if FlightMode(99).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}
