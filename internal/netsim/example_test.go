package netsim_test

import (
	"fmt"
	"time"

	"containerdrone/internal/netsim"
)

// ExampleNetwork shows the basic send/deliver/receive cycle.
func ExampleNetwork() {
	net := netsim.New(nil, nil)
	hce := netsim.Addr{Host: "hce", Port: 14600}
	cce := netsim.Addr{Host: "cce", Port: 9001}
	ep := net.Bind(hce, 16)

	net.Send(cce, hce, []byte("motor frame"))
	net.Step(0)

	pkt, _ := ep.Recv()
	fmt.Printf("%s from %s\n", pkt.Payload, pkt.Src)
	// Output:
	// motor frame from cce:9001
}

// ExampleTokenBucket shows the iptables-style limit: burst then refusal.
func ExampleTokenBucket() {
	tb := netsim.NewTokenBucket(100, 2) // 100 pps sustained, burst 2
	fmt.Println(tb.Allow(0), tb.Allow(0), tb.Allow(0))
	fmt.Println(tb.Allow(10 * time.Millisecond)) // one token replenished
	// Output:
	// true true false
	// true
}

// ExampleNATTable demonstrates the hairpin DNAT rewrite of §IV-B.
func ExampleNATTable() {
	nat := netsim.NewNATTable("hce", true)
	nat.AddRule(14660, netsim.Addr{Host: "cce", Port: 14660})

	from := netsim.Addr{Host: "hce", Port: 9000}
	to := nat.Translate(from, netsim.Addr{Host: "hce", Port: 14660})
	fmt.Println(to)
	// Output:
	// cce:14660
}
