package netsim

import (
	"bytes"
	"testing"
	"time"
)

// TestDrainPayloadAliasing pins the package's payload-ownership
// contract (see the package godoc): a payload handed out by
// Recv/Drain is a pooled buffer, valid only until the next receive
// call on the endpoint — after the pool recycles it into a later
// send, the retained slice observes the NEW datagram's bytes. The
// test demonstrates both halves: the retained reference is clobbered,
// and a copy taken before the next receive call survives. If buffer
// recycling ever changes (copy-on-hand-out, GC ownership), this test
// fails and the contract comment must change with it.
func TestDrainPayloadAliasing(t *testing.T) {
	n := New(nil, nil)
	src := Addr{Host: "a", Port: 1}
	dst := Addr{Host: "b", Port: 2}
	ep := n.Bind(dst, 8)
	now := time.Duration(0)
	deliver := func(payload string) {
		if !n.Send(src, dst, []byte(payload)) {
			t.Fatalf("send %q failed", payload)
		}
		now += time.Millisecond
		n.Step(now)
	}

	// Batch 1: drain and retain the payload across receive calls —
	// the misuse the contract warns about — plus a defensive copy,
	// the documented correct pattern.
	deliver("first--datagram")
	first := ep.Drain()
	retained := first[0].Payload
	copied := append([]byte(nil), retained...)

	// Batch 2: the next Drain recycles batch 1's buffer to the pool.
	deliver("second-datagram")
	second := ep.Drain()
	if !bytes.Equal(second[0].Payload, []byte("second-datagram")) {
		t.Fatalf("second drain = %q", second[0].Payload)
	}
	// The scratch slice itself is also reused: both drains return the
	// same backing array.
	if &first[0] != &second[0] {
		t.Error("Drain scratch slice was reallocated; contract comment in the godoc is stale")
	}

	// Batch 3: the pool hands batch 1's buffer to this send — the
	// retained slice now silently shows the third datagram's bytes.
	deliver("third--datagram")
	ep.Drain()
	if bytes.Equal(retained, []byte("first--datagram")) {
		t.Error("retained payload survived two receive calls; pooling contract no longer holds — update the godoc")
	}
	if !bytes.Equal(retained, []byte("third--datagram")) {
		t.Errorf("retained payload = %q, want it clobbered by the recycled send", retained)
	}
	if !bytes.Equal(copied, []byte("first--datagram")) {
		t.Errorf("defensive copy corrupted: %q", copied)
	}
}

// TestCrossEndpointPayloadAliasing pins the contract's fleet-critical
// half: the payload pool is Network-owned and shared by every member
// endpoint on the fabric, but a buffer lent to member A must survive
// arbitrary receive traffic on members B and C — lent-buffer recycling
// is per-endpoint, not per-pool. The swarm scenarios put N drones'
// receive paths on one Network; if another member's drain could
// recycle A's lent payload, every cross-member frame would be a
// use-after-free in disguise.
func TestCrossEndpointPayloadAliasing(t *testing.T) {
	n := New(nil, nil)
	src := Addr{Host: "gcs", Port: 9}
	a := Addr{Host: "hce", Port: 100}
	b := Addr{Host: "hce1", Port: 101}
	c := Addr{Host: "hce2", Port: 102}
	epA, epB, epC := n.Bind(a, 8), n.Bind(b, 8), n.Bind(c, 8)
	now := time.Duration(0)
	deliver := func(dst Addr, payload string) {
		if !n.Send(src, dst, []byte(payload)) {
			t.Fatalf("send %q failed", payload)
		}
		now += time.Millisecond
		n.Step(now)
	}

	deliver(a, "member-A-frame")
	pktA, ok := epA.Recv()
	if !ok {
		t.Fatal("no packet at member A")
	}

	// Heavy churn on the sibling endpoints: each receive call recycles
	// that endpoint's own lent buffers through the shared pool.
	for i := 0; i < 16; i++ {
		deliver(b, "member-B-noise!")
		deliver(c, "member-C-noise!")
		if pkt, ok := epB.Recv(); !ok || !bytes.Equal(pkt.Payload, []byte("member-B-noise!")) {
			t.Fatalf("member B recv = %q, %v", pkt.Payload, ok)
		}
		if pkt, ok := epC.Recv(); !ok || !bytes.Equal(pkt.Payload, []byte("member-C-noise!")) {
			t.Fatalf("member C recv = %q, %v", pkt.Payload, ok)
		}
	}
	if !bytes.Equal(pktA.Payload, []byte("member-A-frame")) {
		t.Fatalf("member A's lent payload clobbered by sibling traffic: %q", pktA.Payload)
	}

	// A's OWN next receive call is still the recycling point.
	deliver(a, "member-A-later")
	if pkt, ok := epA.Recv(); !ok || !bytes.Equal(pkt.Payload, []byte("member-A-later")) {
		t.Fatalf("member A second recv = %q, %v", pkt.Payload, ok)
	}
	deliver(a, "member-A-again")
	epA.Recv()
	if bytes.Equal(pktA.Payload, []byte("member-A-frame")) {
		t.Error("payload survived two receive calls on its own endpoint; pooling contract no longer holds — update the godoc")
	}
}

// TestSetPartition covers the fault layer's network-split switch:
// blocking is bidirectional, queryable via Partitioned, counted in
// DroppedSplit, and fully healed by the off switch.
func TestSetPartition(t *testing.T) {
	n := New(nil, nil)
	a := Addr{Host: "hce", Port: 1}
	b := Addr{Host: "cce", Port: 2}
	epA := n.Bind(a, 4)
	epB := n.Bind(b, 4)

	n.SetPartition("hce", "cce", true)
	if !n.Partitioned("hce", "cce") || !n.Partitioned("cce", "hce") {
		t.Fatal("partition must block both directions")
	}
	if n.Partitioned("hce", "mitm") {
		t.Fatal("unrelated host pair reported partitioned")
	}
	if n.Send(a, b, []byte("x")) || n.Send(b, a, []byte("y")) {
		t.Fatal("send across an open partition succeeded")
	}
	if epB.Stats().DroppedSplit != 1 || epA.Stats().DroppedSplit != 1 {
		t.Fatalf("DroppedSplit = %d/%d, want 1/1", epB.Stats().DroppedSplit, epA.Stats().DroppedSplit)
	}

	n.SetPartition("hce", "cce", false)
	if n.Partitioned("hce", "cce") || n.Partitioned("cce", "hce") {
		t.Fatal("partition not healed")
	}
	if !n.Send(a, b, []byte("x")) {
		t.Fatal("send after heal failed")
	}
	// Healing an already-healed pair on a nil map must be a no-op.
	fresh := New(nil, nil)
	fresh.SetPartition("x", "y", false)
	if fresh.Partitioned("x", "y") {
		t.Fatal("no-op heal created a partition")
	}
}

// TestRecvPayloadValidUntilNextReceive verifies the positive half of
// the contract: between receive calls the handed payload is stable,
// even while new traffic is in flight and delivered.
func TestRecvPayloadValidUntilNextReceive(t *testing.T) {
	n := New(nil, nil)
	src := Addr{Host: "a", Port: 1}
	dst := Addr{Host: "b", Port: 2}
	ep := n.Bind(dst, 8)

	n.Send(src, dst, []byte("hold-me"))
	n.Step(time.Millisecond)
	pkt, ok := ep.Recv()
	if !ok {
		t.Fatal("no packet")
	}
	// More traffic arrives and is delivered — but not yet received.
	n.Send(src, dst, []byte("later-1"))
	n.Send(src, dst, []byte("later-2"))
	n.Step(2 * time.Millisecond)
	if !bytes.Equal(pkt.Payload, []byte("hold-me")) {
		t.Fatalf("payload mutated before any receive call: %q", pkt.Payload)
	}
}
