package netsim

import (
	"bytes"
	"testing"
	"time"

	"containerdrone/internal/mavlink"
	"containerdrone/internal/sensors"
)

// FuzzRecv drives the pooled ring-buffer receive path with an
// arbitrary op script and checks it against a reference model: every
// payload handed out must match, byte for byte, what was sent — in
// FIFO order, with queue-full drops accounted — no matter how sends,
// steps, Recv, and Drain interleave. This is the layer PR 3 rewrote
// onto free lists and fixed rings; the fuzzer hunts for recycling
// bugs (a pooled buffer handed out twice, a drop that leaks, a ring
// wrap that reorders) that a fixed test sequence would never hit.
func FuzzRecv(f *testing.F) {
	// Seed corpus: captured MAVLink frames as payload material (the
	// real traffic mix), plus op scripts covering each op.
	motor := mavlink.Encode(mavlink.Frame{
		MsgID: mavlink.MsgIDMotor,
		Payload: mavlink.EncodeMotor(mavlink.MotorCommand{
			TimeUS: 12_500_000, Motors: [4]float64{0.52, 0.51, 0.52, 0.51}, Seq: 42, Armed: true,
		}),
	})
	imu := mavlink.Encode(mavlink.Frame{
		MsgID:   mavlink.MsgIDIMU,
		Payload: mavlink.EncodeIMU(sensors.IMUReading{TimeUS: 12_500_000}),
	})
	f.Add([]byte{0, 1, 2, 0, 0, 1, 3, 0, 1, 2, 2, 3}, motor)
	f.Add([]byte{0, 0, 0, 0, 0, 1, 3}, imu)
	f.Add(bytes.Repeat([]byte{0, 1, 2}, 40), motor)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 3, 3, 2}, []byte{0xA5})
	f.Fuzz(func(t *testing.T, script, payload []byte) {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		const queueCap = 4
		n := New(nil, nil)
		src := Addr{Host: "a", Port: 1}
		dst := Addr{Host: "b", Port: 2}
		ep := n.Bind(dst, queueCap)

		// Reference model: payload copies in flight and queued.
		var inflight, queued [][]byte
		var seq byte
		now := time.Duration(0)

		mkPayload := func() []byte {
			// Unique, variable-length content derived from the fuzzed
			// material: a slice of payload plus a sequence byte.
			end := 1 + int(seq)%len(payload)
			p := append([]byte(nil), payload[:end]...)
			p = append(p, seq)
			seq++
			return p
		}
		checkPacket := func(pkt Packet, op string) {
			if len(queued) == 0 {
				t.Fatalf("%s returned a packet but model queue is empty", op)
			}
			if !bytes.Equal(pkt.Payload, queued[0]) {
				t.Fatalf("%s payload = %x, want %x (FIFO head)", op, pkt.Payload, queued[0])
			}
			queued = queued[1:]
		}

		for _, op := range script {
			switch op % 4 {
			case 0: // send
				p := mkPayload()
				if n.Send(src, dst, p) {
					inflight = append(inflight, p)
				} else {
					t.Fatal("send into a bound, unlimited endpoint failed")
				}
			case 1: // step: zero-latency fabric delivers everything
				now += time.Millisecond
				n.Step(now)
				for _, p := range inflight {
					if len(queued) < queueCap {
						queued = append(queued, p)
					} // else: queue-full drop, recycled to the pool
				}
				inflight = inflight[:0]
			case 2: // recv one
				pkt, ok := ep.Recv()
				if ok != (len(queued) > 0) {
					t.Fatalf("Recv ok=%v with %d queued", ok, len(queued))
				}
				if ok {
					checkPacket(pkt, "Recv")
				}
			case 3: // drain all
				pkts := ep.Drain()
				if len(pkts) != len(queued) {
					t.Fatalf("Drain returned %d packets, model holds %d", len(pkts), len(queued))
				}
				for _, pkt := range pkts {
					checkPacket(pkt, "Drain")
				}
			}
			if ep.Pending() != len(queued) {
				t.Fatalf("Pending() = %d, model holds %d", ep.Pending(), len(queued))
			}
		}

		// Drain the remainder; totals must reconcile exactly.
		now += time.Millisecond
		n.Step(now)
		for _, p := range inflight {
			if len(queued) < queueCap {
				queued = append(queued, p)
			}
		}
		for _, pkt := range ep.Drain() {
			checkPacket(pkt, "final Drain")
		}
		if len(queued) != 0 {
			t.Fatalf("%d modeled packets never delivered", len(queued))
		}
		st := ep.Stats()
		if st.Received != st.Delivered {
			t.Fatalf("stats: received %d != delivered %d after full drain", st.Received, st.Delivered)
		}
	})
}

// FuzzRecvMultiEndpoint is the fleet reading of FuzzRecv: three member
// endpoints — the swarm scenarios' hce/hce1/hce2 — bound on ONE shared
// fabric, driven by an arbitrary interleaving of sends, steps, and
// receives. The payload pool is Network-owned and shared by every
// endpoint, so the property under attack is cross-member isolation:
// a buffer lent to member A must never be recycled into member B's
// traffic while A still holds it, and each member's FIFO order must
// survive interleaved delivery. Each op byte's high bits pick the
// member, low bits the op, so the corpus drives asymmetric loads
// (one member flooded while another drains) the single-endpoint
// fuzzer cannot express.
func FuzzRecvMultiEndpoint(f *testing.F) {
	motor := mavlink.Encode(mavlink.Frame{
		MsgID: mavlink.MsgIDMotor,
		Payload: mavlink.EncodeMotor(mavlink.MotorCommand{
			TimeUS: 12_500_000, Motors: [4]float64{0.52, 0.51, 0.52, 0.51}, Seq: 42, Armed: true,
		}),
	})
	// Round-robin across members; flood member 0 while 1 and 2 drain;
	// deliver to all then drain in reverse member order.
	f.Add([]byte{0x00, 0x10, 0x20, 0x03, 0x02, 0x12, 0x22}, motor)
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x13, 0x23, 0x12, 0x22}, motor)
	f.Add([]byte{0x00, 0x10, 0x20, 0x03, 0x23, 0x13, 0x03}, []byte{0xA5, 0x5A})
	f.Add(bytes.Repeat([]byte{0x00, 0x13, 0x20, 0x02}, 24), motor)
	f.Fuzz(func(t *testing.T, script, payload []byte) {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		const (
			members  = 3
			queueCap = 4
		)
		n := New(nil, nil)
		src := Addr{Host: "gcs", Port: 9}
		var eps [members]*Endpoint
		var dst [members]Addr
		for m := 0; m < members; m++ {
			host := "hce"
			if m > 0 {
				host += string(rune('0' + m))
			}
			dst[m] = Addr{Host: host, Port: 100 + m}
			eps[m] = n.Bind(dst[m], queueCap)
		}

		// Per-member reference model, plus the last payload each member
		// was handed: it must stay intact until that member's next
		// receive call, no matter what the other members do in between.
		var inflight, queued [members][][]byte
		var held, heldWant [members][]byte
		var seq byte
		now := time.Duration(0)

		mkPayload := func(m int) []byte {
			end := 1 + int(seq)%len(payload)
			p := append([]byte(nil), payload[:end]...)
			p = append(p, seq, byte(m))
			seq++
			return p
		}
		checkHeld := func(m int) {
			if held[m] != nil && !bytes.Equal(held[m], heldWant[m]) {
				t.Fatalf("member %d's lent payload clobbered by other members' traffic: %x, want %x",
					m, held[m], heldWant[m])
			}
		}
		checkPacket := func(m int, pkt Packet, op string) {
			if len(queued[m]) == 0 {
				t.Fatalf("%s on member %d returned a packet but model queue is empty", op, m)
			}
			if !bytes.Equal(pkt.Payload, queued[m][0]) {
				t.Fatalf("%s on member %d payload = %x, want %x (FIFO head)", op, m, pkt.Payload, queued[m][0])
			}
			queued[m] = queued[m][1:]
			held[m], heldWant[m] = pkt.Payload, append(heldWant[m][:0], pkt.Payload...)
		}

		for _, op := range script {
			m := int(op>>4) % members
			switch op % 4 {
			case 0: // send to member m
				p := mkPayload(m)
				if n.Send(src, dst[m], p) {
					inflight[m] = append(inflight[m], p)
				} else {
					t.Fatal("send into a bound, unlimited endpoint failed")
				}
			case 1: // step: zero-latency fabric delivers to every member
				now += time.Millisecond
				n.Step(now)
				for k := 0; k < members; k++ {
					for _, p := range inflight[k] {
						if len(queued[k]) < queueCap {
							queued[k] = append(queued[k], p)
						}
					}
					inflight[k] = inflight[k][:0]
				}
			case 2: // recv one at member m
				pkt, ok := eps[m].Recv()
				if ok != (len(queued[m]) > 0) {
					t.Fatalf("member %d Recv ok=%v with %d queued", m, ok, len(queued[m]))
				}
				if ok {
					checkPacket(m, pkt, "Recv")
				} else {
					held[m] = nil
				}
			case 3: // drain member m
				pkts := eps[m].Drain()
				if len(pkts) != len(queued[m]) {
					t.Fatalf("member %d Drain returned %d packets, model holds %d", m, len(pkts), len(queued[m]))
				}
				held[m] = nil // an empty drain still recycles the lent buffers
				for _, pkt := range pkts {
					checkPacket(m, pkt, "Drain")
				}
			}
			for k := 0; k < members; k++ {
				checkHeld(k)
				if eps[k].Pending() != len(queued[k]) {
					t.Fatalf("member %d Pending() = %d, model holds %d", k, eps[k].Pending(), len(queued[k]))
				}
			}
		}

		// Deliver and drain every member; totals must reconcile.
		now += time.Millisecond
		n.Step(now)
		for m := 0; m < members; m++ {
			for _, p := range inflight[m] {
				if len(queued[m]) < queueCap {
					queued[m] = append(queued[m], p)
				}
			}
			for _, pkt := range eps[m].Drain() {
				checkPacket(m, pkt, "final Drain")
			}
			if len(queued[m]) != 0 {
				t.Fatalf("member %d: %d modeled packets never delivered", m, len(queued[m]))
			}
			st := eps[m].Stats()
			if st.Received != st.Delivered {
				t.Fatalf("member %d stats: received %d != delivered %d after full drain", m, st.Received, st.Delivered)
			}
		}
	})
}
