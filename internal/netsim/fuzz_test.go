package netsim

import (
	"bytes"
	"testing"
	"time"

	"containerdrone/internal/mavlink"
	"containerdrone/internal/sensors"
)

// FuzzRecv drives the pooled ring-buffer receive path with an
// arbitrary op script and checks it against a reference model: every
// payload handed out must match, byte for byte, what was sent — in
// FIFO order, with queue-full drops accounted — no matter how sends,
// steps, Recv, and Drain interleave. This is the layer PR 3 rewrote
// onto free lists and fixed rings; the fuzzer hunts for recycling
// bugs (a pooled buffer handed out twice, a drop that leaks, a ring
// wrap that reorders) that a fixed test sequence would never hit.
func FuzzRecv(f *testing.F) {
	// Seed corpus: captured MAVLink frames as payload material (the
	// real traffic mix), plus op scripts covering each op.
	motor := mavlink.Encode(mavlink.Frame{
		MsgID: mavlink.MsgIDMotor,
		Payload: mavlink.EncodeMotor(mavlink.MotorCommand{
			TimeUS: 12_500_000, Motors: [4]float64{0.52, 0.51, 0.52, 0.51}, Seq: 42, Armed: true,
		}),
	})
	imu := mavlink.Encode(mavlink.Frame{
		MsgID:   mavlink.MsgIDIMU,
		Payload: mavlink.EncodeIMU(sensors.IMUReading{TimeUS: 12_500_000}),
	})
	f.Add([]byte{0, 1, 2, 0, 0, 1, 3, 0, 1, 2, 2, 3}, motor)
	f.Add([]byte{0, 0, 0, 0, 0, 1, 3}, imu)
	f.Add(bytes.Repeat([]byte{0, 1, 2}, 40), motor)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 3, 3, 2}, []byte{0xA5})
	f.Fuzz(func(t *testing.T, script, payload []byte) {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		const queueCap = 4
		n := New(nil, nil)
		src := Addr{Host: "a", Port: 1}
		dst := Addr{Host: "b", Port: 2}
		ep := n.Bind(dst, queueCap)

		// Reference model: payload copies in flight and queued.
		var inflight, queued [][]byte
		var seq byte
		now := time.Duration(0)

		mkPayload := func() []byte {
			// Unique, variable-length content derived from the fuzzed
			// material: a slice of payload plus a sequence byte.
			end := 1 + int(seq)%len(payload)
			p := append([]byte(nil), payload[:end]...)
			p = append(p, seq)
			seq++
			return p
		}
		checkPacket := func(pkt Packet, op string) {
			if len(queued) == 0 {
				t.Fatalf("%s returned a packet but model queue is empty", op)
			}
			if !bytes.Equal(pkt.Payload, queued[0]) {
				t.Fatalf("%s payload = %x, want %x (FIFO head)", op, pkt.Payload, queued[0])
			}
			queued = queued[1:]
		}

		for _, op := range script {
			switch op % 4 {
			case 0: // send
				p := mkPayload()
				if n.Send(src, dst, p) {
					inflight = append(inflight, p)
				} else {
					t.Fatal("send into a bound, unlimited endpoint failed")
				}
			case 1: // step: zero-latency fabric delivers everything
				now += time.Millisecond
				n.Step(now)
				for _, p := range inflight {
					if len(queued) < queueCap {
						queued = append(queued, p)
					} // else: queue-full drop, recycled to the pool
				}
				inflight = inflight[:0]
			case 2: // recv one
				pkt, ok := ep.Recv()
				if ok != (len(queued) > 0) {
					t.Fatalf("Recv ok=%v with %d queued", ok, len(queued))
				}
				if ok {
					checkPacket(pkt, "Recv")
				}
			case 3: // drain all
				pkts := ep.Drain()
				if len(pkts) != len(queued) {
					t.Fatalf("Drain returned %d packets, model holds %d", len(pkts), len(queued))
				}
				for _, pkt := range pkts {
					checkPacket(pkt, "Drain")
				}
			}
			if ep.Pending() != len(queued) {
				t.Fatalf("Pending() = %d, model holds %d", ep.Pending(), len(queued))
			}
		}

		// Drain the remainder; totals must reconcile exactly.
		now += time.Millisecond
		n.Step(now)
		for _, p := range inflight {
			if len(queued) < queueCap {
				queued = append(queued, p)
			}
		}
		for _, pkt := range ep.Drain() {
			checkPacket(pkt, "final Drain")
		}
		if len(queued) != 0 {
			t.Fatalf("%d modeled packets never delivered", len(queued))
		}
		st := ep.Stats()
		if st.Received != st.Delivered {
			t.Fatalf("stats: received %d != delivered %d after full drain", st.Received, st.Delivered)
		}
	})
}
