package netsim

import (
	"testing"
	"time"
)

// TestSteadyStateAllocs pins the zero-allocation contract of the
// fabric: once the payload pool and scratch slices are warm, a
// send→deliver→drain cycle must not touch the heap.
func TestSteadyStateAllocs(t *testing.T) {
	n := New(nil, nil)
	src := Addr{Host: "cce", Port: 40000}
	dst := Addr{Host: "hce", Port: 14600}
	ep := n.Bind(dst, 64)
	payload := make([]byte, 64)
	now := time.Duration(0)

	cycle := func() {
		for i := 0; i < 8; i++ {
			n.Send(src, dst, payload)
		}
		now += 100 * time.Microsecond
		n.Step(now)
		ep.Drain()
	}
	for i := 0; i < 32; i++ {
		cycle() // warm the pool, ring, and scratch slices
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state send/deliver/drain allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestRouteSendSteadyStateAllocs covers the pre-resolved Route path
// the flood attack and Table-I streams use.
func TestRouteSendSteadyStateAllocs(t *testing.T) {
	n := New(nil, nil)
	src := Addr{Host: "cce", Port: 9001}
	dst := Addr{Host: "hce", Port: 14600}
	ep := n.Bind(dst, 64)
	n.Limit(dst, 8000, 512)
	route := n.Route(src, dst)
	payload := make([]byte, 29)
	now := time.Duration(0)

	cycle := func() {
		for i := 0; i < 4; i++ {
			route.Send(payload)
		}
		now += 100 * time.Microsecond
		n.Step(now)
		for {
			if _, ok := ep.Recv(); !ok {
				break
			}
		}
	}
	for i := 0; i < 32; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state Route.Send allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestDrainReturnsScratch documents the Drain ownership contract: the
// slice (and payloads) are only valid until the next receive call.
func TestDrainReturnsScratch(t *testing.T) {
	n := New(nil, nil)
	dst := Addr{Host: "hce", Port: 1}
	ep := n.Bind(dst, 8)
	n.Send(Addr{Host: "a", Port: 2}, dst, []byte{1})
	n.Step(0)
	first := ep.Drain()
	if len(first) != 1 {
		t.Fatalf("Drain returned %d packets, want 1", len(first))
	}
	n.Send(Addr{Host: "a", Port: 2}, dst, []byte{2})
	n.Step(0)
	second := ep.Drain()
	if len(second) != 1 || second[0].Payload[0] != 2 {
		t.Fatalf("second Drain = %+v, want the second packet", second)
	}
	// The scratch slice is reused: both calls returned the same backing
	// array, which is exactly why callers must not retain it.
	if &first[0] != &second[0] {
		t.Fatalf("Drain allocated a fresh slice; want reused scratch")
	}
}
