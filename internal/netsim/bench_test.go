package netsim

import (
	"testing"
	"time"
)

func BenchmarkSendDeliverRecv(b *testing.B) {
	n := New(nil, nil)
	dst := Addr{Host: "hce", Port: 14600}
	src := Addr{Host: "cce", Port: 9001}
	ep := n.Bind(dst, 1024)
	payload := make([]byte, 29)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Send(src, dst, payload)
		n.Step(time.Duration(i) * 100 * time.Microsecond)
		if _, ok := ep.Recv(); !ok {
			b.Fatal("packet lost")
		}
	}
}

func BenchmarkTokenBucketAllow(b *testing.B) {
	tb := NewTokenBucket(1e6, 100)
	for i := 0; i < b.N; i++ {
		tb.Allow(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkFloodedStep(b *testing.B) {
	n := New(nil, nil)
	dst := Addr{Host: "hce", Port: 14600}
	src := Addr{Host: "cce", Port: 40000}
	n.Bind(dst, 256)
	n.Limit(dst, 8000, 512)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ { // ~flood intensity per tick
			n.Send(src, dst, payload)
		}
		n.Step(time.Duration(i) * 100 * time.Microsecond)
	}
}
