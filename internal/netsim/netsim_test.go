package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"containerdrone/internal/sim"
)

var (
	hce = Addr{Host: "hce", Port: 14600}
	cce = Addr{Host: "cce", Port: 14660}
)

func TestAddrString(t *testing.T) {
	if hce.String() != "hce:14600" {
		t.Fatalf("Addr.String = %q", hce.String())
	}
}

func TestSendAndReceive(t *testing.T) {
	n := New(nil, nil)
	ep := n.Bind(hce, 8)
	if !n.Send(cce, hce, []byte("motor")) {
		t.Fatal("send to bound endpoint failed")
	}
	n.Step(0)
	p, ok := ep.Recv()
	if !ok {
		t.Fatal("no packet delivered")
	}
	if string(p.Payload) != "motor" || p.Src != cce {
		t.Fatalf("packet = %+v", p)
	}
	if _, ok := ep.Recv(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestSendToUnboundDrops(t *testing.T) {
	n := New(nil, nil)
	if n.Send(cce, Addr{"nowhere", 1}, []byte("x")) {
		t.Fatal("send to unbound address should report false")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n := New(nil, nil)
	ep := n.Bind(hce, 8)
	buf := []byte("abc")
	n.Send(cce, hce, buf)
	buf[0] = 'z'
	n.Step(0)
	p, _ := ep.Recv()
	if string(p.Payload) != "abc" {
		t.Fatal("payload aliased caller's buffer")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := New(nil, nil)
	ep := n.Bind(hce, 4)
	for i := 0; i < 10; i++ {
		n.Send(cce, hce, []byte{byte(i)})
	}
	n.Step(0)
	if ep.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", ep.Pending())
	}
	st := ep.Stats()
	if st.DroppedQueue != 6 {
		t.Fatalf("DroppedQueue = %d, want 6", st.DroppedQueue)
	}
	if st.Delivered != 4 {
		t.Fatalf("Delivered = %d, want 4", st.Delivered)
	}
}

func TestFIFOOrder(t *testing.T) {
	n := New(nil, nil)
	ep := n.Bind(hce, 16)
	for i := 0; i < 5; i++ {
		n.Send(cce, hce, []byte{byte(i)})
	}
	n.Step(0)
	for i := 0; i < 5; i++ {
		p, ok := ep.Recv()
		if !ok || p.Payload[0] != byte(i) {
			t.Fatalf("packet %d out of order: %+v", i, p)
		}
	}
}

func TestRecvAll(t *testing.T) {
	n := New(nil, nil)
	ep := n.Bind(hce, 16)
	for i := 0; i < 3; i++ {
		n.Send(cce, hce, []byte{byte(i)})
	}
	n.Step(0)
	all := ep.RecvAll()
	if len(all) != 3 || all[2].Payload[0] != 2 {
		t.Fatalf("RecvAll = %v", all)
	}
	if ep.Pending() != 0 {
		t.Fatal("queue not drained")
	}
	if ep.Stats().Received != 3 {
		t.Fatalf("Received = %d", ep.Stats().Received)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(nil, nil)
	n.SetLink(LinkParams{Latency: 5 * time.Millisecond})
	ep := n.Bind(hce, 8)
	n.Step(0)
	n.Send(cce, hce, []byte("x"))
	n.Step(4 * time.Millisecond)
	if ep.Pending() != 0 {
		t.Fatal("packet arrived before its latency elapsed")
	}
	n.Step(5 * time.Millisecond)
	if ep.Pending() != 1 {
		t.Fatal("packet not delivered after latency")
	}
	if n.InFlight() != 0 {
		t.Fatal("in-flight count wrong")
	}
}

func TestLossDropsSome(t *testing.T) {
	rng := sim.NewRNG(3)
	n := New(nil, rng.Float64)
	n.SetLink(LinkParams{Loss: 0.5})
	ep := n.Bind(hce, 100000)
	const total = 10000
	for i := 0; i < total; i++ {
		n.Send(cce, hce, []byte("x"))
	}
	n.Step(0)
	st := ep.Stats()
	if st.DroppedLoss < total/3 || st.DroppedLoss > 2*total/3 {
		t.Fatalf("50%% loss dropped %d of %d", st.DroppedLoss, total)
	}
	if st.Delivered+st.DroppedLoss != total {
		t.Fatalf("delivered %d + lost %d != %d", st.Delivered, st.DroppedLoss, total)
	}
}

func TestRateLimitCapsThroughput(t *testing.T) {
	n := New(nil, nil)
	ep := n.Bind(hce, 1<<20)
	n.Limit(hce, 100, 10) // 100 pps, burst 10
	// Simulate a 10 kHz flood for one second.
	for tick := 0; tick < 10000; tick++ {
		now := time.Duration(tick) * 100 * time.Microsecond
		n.Step(now)
		n.Send(cce, hce, []byte("flood"))
	}
	n.Step(time.Second)
	st := ep.Stats()
	// Budget: 10 burst + 100/s sustained ≈ 110 packets.
	if st.Delivered > 115 || st.Delivered < 100 {
		t.Fatalf("rate-limited delivery = %d, want ≈110", st.Delivered)
	}
	if st.DroppedLimit < 9000 {
		t.Fatalf("DroppedLimit = %d, want ≈9890", st.DroppedLimit)
	}
}

func TestLimitRemoval(t *testing.T) {
	n := New(nil, nil)
	n.Bind(hce, 1024)
	n.Limit(hce, 1, 1)
	n.Limit(hce, 0, 0) // remove
	for i := 0; i < 100; i++ {
		n.Send(cce, hce, []byte("x"))
	}
	n.Step(0)
	if got := n.endpoints[hce].Stats().Delivered; got != 100 {
		t.Fatalf("after limit removal delivered = %d, want 100", got)
	}
}

func TestBindIdempotent(t *testing.T) {
	n := New(nil, nil)
	a := n.Bind(hce, 8)
	b := n.Bind(hce, 99)
	if a != b {
		t.Fatal("rebinding returned a different endpoint")
	}
}

func TestTokenBucketBasics(t *testing.T) {
	b := NewTokenBucket(10, 2)
	if !b.Allow(0) || !b.Allow(0) {
		t.Fatal("burst of 2 should allow 2")
	}
	if b.Allow(0) {
		t.Fatal("third immediate packet should be denied")
	}
	if !b.Allow(100 * time.Millisecond) { // 1 token replenished
		t.Fatal("packet after replenish should pass")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b := NewTokenBucket(1000, 5)
	b.Allow(0)
	if got := b.Tokens(); got > 5 {
		t.Fatalf("tokens %v exceed burst", got)
	}
	// long idle: tokens must cap at burst
	b.Allow(10 * time.Second)
	if b.Tokens() > 5 {
		t.Fatalf("tokens %v exceed burst after idle", b.Tokens())
	}
}

// Property: token bucket never allows more than burst + rate·T + 1
// packets in any window of length T (conservation).
func TestTokenBucketConservationProperty(t *testing.T) {
	f := func(rate8, burst8 uint8, n16 uint16) bool {
		rate := float64(rate8%50) + 1
		burst := float64(burst8%20) + 1
		b := NewTokenBucket(rate, burst)
		steps := int(n16%2000) + 100
		allowed := 0
		for i := 0; i < steps; i++ {
			if b.Allow(time.Duration(i) * time.Millisecond) {
				allowed++
			}
		}
		windowSec := float64(steps-1) / 1000
		bound := burst + rate*windowSec + 1
		return float64(allowed) <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with no loss/limit, every packet sent to a large-enough
// queue is delivered exactly once.
func TestDeliveryConservationProperty(t *testing.T) {
	f := func(count8 uint8) bool {
		count := int(count8)%100 + 1
		n := New(nil, nil)
		ep := n.Bind(hce, count)
		for i := 0; i < count; i++ {
			n.Send(cce, hce, []byte{byte(i)})
		}
		n.Step(0)
		st := ep.Stats()
		return st.Delivered == int64(count) && ep.Pending() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
