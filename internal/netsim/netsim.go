// Package netsim simulates the UDP communication fabric between the
// host control environment and the container control environment: the
// docker0-style bridge, bounded receive queues, iptables-style
// token-bucket rate limits, and optional latency/jitter/loss. The
// paper's UDP DoS experiment (Fig 7) is entirely a property of this
// layer: a flood fills queues and consumes the rate budget, starving
// the legitimate motor-output stream.
//
// The fabric is allocation-free at steady state: payload bytes live in
// a free-list pool owned by the Network, receive queues are fixed
// rings sized at Bind, and Drain hands out a reused scratch slice.
//
// # Payload ownership
//
// Payloads are recycled, not garbage collected. Every receive entry
// point (Recv, Drain, RecvAll) first returns the buffers it lent on
// the previous call to the pool, so:
//
//   - a Packet.Payload is valid only until the NEXT receive call on
//     the same endpoint — after that the same backing array may be
//     rewritten with a different datagram's bytes;
//   - the slice returned by Drain is scratch, overwritten by the next
//     Drain/RecvAll on the endpoint;
//   - callers that retain a payload across receive calls (queues,
//     capture buffers, logs) must copy it first, e.g.
//     buf = append(buf[:0], pkt.Payload...).
//
// Decoding in place is safe (mavlink.Decode aliases its input), but
// the decoded frame's Payload inherits the same lifetime. The
// aliasing regression test in this package pins this contract.
package netsim

import (
	"fmt"
	"time"
)

// Addr identifies a simulated UDP endpoint.
type Addr struct {
	Host string
	Port int
}

// String renders "host:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Packet is one datagram in flight or queued.
type Packet struct {
	Src     Addr
	Dst     Addr
	Payload []byte
	SentAt  time.Duration

	// ep is the destination endpoint, resolved at send time so
	// delivery in Step never hashes the endpoint map.
	ep *Endpoint
}

// Stats counts per-endpoint delivery outcomes.
type Stats struct {
	Delivered      int64 // packets enqueued at the receiver
	Received       int64 // packets dequeued by the application
	DroppedQueue   int64 // receiver queue full
	DroppedLimit   int64 // iptables rate limit exceeded
	DroppedLoss    int64 // random link loss
	DroppedSplit   int64 // host pair partitioned (fault injection)
	BytesDelivered int64
}

// Endpoint is a bound receive queue: a fixed-capacity ring allocated
// once at Bind, so steady-state enqueue/dequeue never allocates and
// never shifts queued packets.
type Endpoint struct {
	addr  Addr
	net   *Network
	ring  []Packet // fixed ring storage, len(ring) == queue capacity
	head  int      // index of the oldest queued packet
	count int      // queued packets
	stats Stats

	// handed are pool payloads lent to the application by the previous
	// receive call; they return to the pool on the next receive call.
	handed [][]byte
	// drain is the scratch slice Drain/RecvAll hand out.
	drain []Packet
}

// Addr returns the bound address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Pending returns the number of queued packets.
func (e *Endpoint) Pending() int { return e.count }

// recycle returns the payloads lent by the previous receive call to
// the network's pool. Every receive entry point calls it first, which
// is what makes the lending contract "valid until the next receive
// call on this endpoint".
func (e *Endpoint) recycle() {
	for i, p := range e.handed {
		e.net.putBuf(p)
		e.handed[i] = nil
	}
	e.handed = e.handed[:0]
}

// pop removes and returns the oldest queued packet. The caller must
// have checked count > 0. The vacated slot is left as-is: its payload
// reference pins only a pool-owned buffer, and the slot is overwritten
// on reuse.
func (e *Endpoint) pop() Packet {
	p := e.ring[e.head]
	e.head++
	if e.head == len(e.ring) {
		e.head = 0
	}
	e.count--
	e.stats.Received++
	return p
}

// Recv pops the oldest queued packet, reporting ok=false when empty.
//
// Ownership: the packet's Payload is a pooled buffer, valid only until
// the next Recv/RecvAll/Drain call on this endpoint; callers that
// retain it across receive calls must copy it.
func (e *Endpoint) Recv() (Packet, bool) {
	e.recycle()
	if e.count == 0 {
		return Packet{}, false
	}
	p := e.pop()
	e.handed = append(e.handed, p.Payload)
	return p, true
}

// Drain empties the queue, returning packets oldest-first in an
// internal scratch slice reused across calls.
//
// Ownership: both the returned slice and every packet's Payload are
// valid only until the next Recv/RecvAll/Drain call on this endpoint;
// callers that retain them must copy.
func (e *Endpoint) Drain() []Packet {
	e.recycle()
	e.drain = e.drain[:0]
	for e.count > 0 {
		p := e.pop()
		e.handed = append(e.handed, p.Payload)
		e.drain = append(e.drain, p)
	}
	return e.drain
}

// RecvAll is Drain under its historical name. Deprecated: use Drain;
// unlike the original RecvAll the result is no longer caller-owned.
func (e *Endpoint) RecvAll() []Packet { return e.Drain() }

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// TokenBucket is the iptables `limit` match: average rate with burst.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Duration
}

// NewTokenBucket builds a full bucket with the given sustained rate
// (tokens/second) and burst capacity.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow consumes one token if available at time now.
func (b *TokenBucket) Allow(now time.Duration) bool {
	dt := (now - b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Tokens reports the current token count (for tests and telemetry).
func (b *TokenBucket) Tokens() float64 { return b.tokens }

// Reset refills the bucket to its initial full state at time zero.
func (b *TokenBucket) Reset() {
	b.tokens = b.burst
	b.last = 0
}

// NormSource supplies standard normal samples for jitter; UniformSource
// supplies uniform [0,1) samples for loss.
type (
	NormSource    func() float64
	UniformSource func() float64
)

// LinkParams models the bridge characteristics.
type LinkParams struct {
	Latency time.Duration // fixed one-way latency
	Jitter  time.Duration // 1-sigma random extra latency
	Loss    float64       // independent drop probability
}

// flight is one in-fabric packet and its delivery deadline.
type flight struct {
	pkt Packet
	at  time.Duration
}

// Network is the simulated fabric. Call Step once per simulation tick
// to move in-flight packets into receive queues.
type Network struct {
	endpoints map[Addr]*Endpoint
	limits    map[Addr]*TokenBucket
	inflight  []flight
	link      LinkParams
	now       time.Duration
	norm      NormSource
	uniform   UniformSource

	// partitions holds directed host pairs whose traffic is dropped at
	// send time — the fault layer's network-split switch. nil (the
	// common case) keeps the per-packet check to one pointer test.
	partitions map[hostPair]bool

	// free is the payload buffer pool. Send copies into a pooled
	// buffer; the buffer comes back on drop, on endpoint recycle, or
	// never grows past the population the steady-state traffic needs.
	free [][]byte

	// gen invalidates cached Routes whenever the endpoint or limit
	// tables change (Bind/Limit are setup-time operations).
	gen int
}

// New builds an empty network. The random sources may be nil when the
// link is configured without jitter or loss.
func New(norm NormSource, uniform UniformSource) *Network {
	if norm == nil {
		norm = func() float64 { return 0 }
	}
	if uniform == nil {
		uniform = func() float64 { return 1 }
	}
	return &Network{
		endpoints: make(map[Addr]*Endpoint),
		limits:    make(map[Addr]*TokenBucket),
		norm:      norm,
		uniform:   uniform,
	}
}

// getBuf returns a pooled buffer with capacity >= n, allocating only
// when the pool is empty or its top buffer is too small (buffer sizes
// converge on the largest payload in the traffic mix).
func (n *Network) getBuf(size int) []byte {
	if last := len(n.free) - 1; last >= 0 {
		b := n.free[last]
		n.free[last] = nil
		n.free = n.free[:last]
		if cap(b) >= size {
			return b[:0]
		}
	}
	return make([]byte, 0, size)
}

// putBuf returns a payload buffer to the pool.
func (n *Network) putBuf(b []byte) {
	if b == nil {
		return
	}
	n.free = append(n.free, b)
}

// PooledBuffers reports the free-list population (tests, telemetry).
func (n *Network) PooledBuffers() int { return len(n.free) }

// SetLink configures latency/jitter/loss for all traffic.
func (n *Network) SetLink(p LinkParams) { n.link = p }

// Link returns the current link parameters, so a transient
// degradation (the jitter fault) can restore the previous state when
// its window closes.
func (n *Network) Link() LinkParams { return n.link }

// hostPair is a directed (src host, dst host) edge.
type hostPair struct{ src, dst string }

// SetPartition opens (on=true) or heals (on=false) a bidirectional
// partition between two hosts: while open, every datagram between
// them is dropped at send time and counted in DroppedSplit — the
// bridge-down failure mode of a network split.
func (n *Network) SetPartition(a, b string, on bool) {
	if n.partitions == nil {
		if !on {
			return
		}
		n.partitions = make(map[hostPair]bool)
	}
	if on {
		n.partitions[hostPair{a, b}] = true
		n.partitions[hostPair{b, a}] = true
	} else {
		delete(n.partitions, hostPair{a, b})
		delete(n.partitions, hostPair{b, a})
	}
}

// Partitioned reports whether traffic from src host to dst host is
// currently dropped.
func (n *Network) Partitioned(src, dst string) bool {
	return n.partitions != nil && n.partitions[hostPair{src, dst}]
}

// Bind creates (or returns) the endpoint for addr with the given
// receive queue capacity, preallocating its ring storage. Rebinding
// keeps the original capacity.
func (n *Network) Bind(addr Addr, queueCap int) *Endpoint {
	if ep, ok := n.endpoints[addr]; ok {
		return ep
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	ep := &Endpoint{addr: addr, net: n, ring: make([]Packet, queueCap)}
	n.endpoints[addr] = ep
	n.gen++
	return ep
}

// Limit installs an iptables-style token-bucket limit on packets
// destined to addr: at most rate packets/second sustained, with the
// given burst. Passing rate <= 0 removes the limit.
func (n *Network) Limit(addr Addr, rate, burst float64) {
	n.gen++
	if rate <= 0 {
		delete(n.limits, addr)
		return
	}
	n.limits[addr] = NewTokenBucket(rate, burst)
}

// Send submits a datagram, copying the payload into a pooled buffer
// (the caller keeps ownership of payload). Drop decisions (rate limit,
// loss) happen at send time; queue-full drops happen at delivery time.
// Returns whether the packet entered the fabric.
func (n *Network) Send(src, dst Addr, payload []byte) bool {
	ep, bound := n.endpoints[dst]
	if !bound {
		return false // nothing listening: silently dropped like real UDP
	}
	return n.sendTo(ep, n.limits[dst], src, dst, payload)
}

// sendTo is the resolved-destination send path shared by Send and
// Route.Send.
func (n *Network) sendTo(ep *Endpoint, tb *TokenBucket, src, dst Addr, payload []byte) bool {
	if n.partitions != nil && n.partitions[hostPair{src.Host, dst.Host}] {
		ep.stats.DroppedSplit++
		return false
	}
	if tb != nil && !tb.Allow(n.now) {
		ep.stats.DroppedLimit++
		return false
	}
	if n.link.Loss > 0 && n.uniform() < n.link.Loss {
		ep.stats.DroppedLoss++
		return false
	}
	delay := n.link.Latency
	if n.link.Jitter > 0 {
		j := time.Duration(float64(n.link.Jitter) * n.norm())
		if j < 0 {
			j = -j
		}
		delay += j
	}
	buf := append(n.getBuf(len(payload)), payload...)
	n.inflight = append(n.inflight, flight{
		pkt: Packet{Src: src, Dst: dst, Payload: buf, SentAt: n.now, ep: ep},
		at:  n.now + delay,
	})
	return true
}

// Route is a pre-resolved unicast path: fixed source and destination
// with the endpoint and rate-limit lookups hoisted out of the
// per-packet path. High-rate senders (the Table-I streams, the UDP
// flood) send through a Route so the fabric's address maps are hashed
// once per topology change instead of once per packet.
type Route struct {
	net      *Network
	src, dst Addr
	gen      int // matches net.gen when ep/tb are current
	ep       *Endpoint
	tb       *TokenBucket
}

// Route builds a reusable sender from src to dst. Resolution is lazy
// and self-invalidating: a later Bind or Limit bumps the network's
// generation and the Route re-resolves on its next Send.
func (n *Network) Route(src, dst Addr) *Route {
	return &Route{net: n, src: src, dst: dst, gen: n.gen - 1}
}

// Send submits one datagram along the route; semantics are identical
// to Network.Send with the route's addresses.
func (r *Route) Send(payload []byte) bool {
	n := r.net
	if r.gen != n.gen {
		r.ep = n.endpoints[r.dst]
		r.tb = n.limits[r.dst]
		r.gen = n.gen
	}
	if r.ep == nil {
		return false
	}
	return n.sendTo(r.ep, r.tb, r.src, r.dst, payload)
}

// Step advances the fabric to the given simulated time, delivering
// every in-flight packet whose latency has elapsed, in send order.
// Packets dropped at delivery (queue full, endpoint gone) return their
// payload buffers to the pool.
func (n *Network) Step(now time.Duration) {
	n.now = now
	kept := 0
	for i := range n.inflight {
		f := &n.inflight[i]
		if f.at > now {
			if kept != i {
				n.inflight[kept] = *f
			}
			kept++
			continue
		}
		ep := f.pkt.ep
		if ep.count >= len(ep.ring) {
			ep.stats.DroppedQueue++
			n.putBuf(f.pkt.Payload)
			continue
		}
		tail := ep.head + ep.count
		if tail >= len(ep.ring) {
			tail -= len(ep.ring)
		}
		ep.ring[tail] = f.pkt
		ep.count++
		ep.stats.Delivered++
		ep.stats.BytesDelivered += int64(len(f.pkt.Payload))
	}
	// The truncated tail keeps its payload references; they point into
	// the pool, which owns the buffers either way.
	n.inflight = n.inflight[:kept]
}

// InFlight reports packets not yet delivered.
func (n *Network) InFlight() int { return len(n.inflight) }

// reset rewinds one endpoint to its just-bound state: queued and lent
// payloads go back to the pool, the ring indices and statistics clear.
// Ring capacity and scratch storage are kept.
func (e *Endpoint) reset() {
	e.recycle()
	for e.count > 0 {
		p := e.pop()
		e.net.putBuf(p.Payload)
	}
	e.head = 0
	e.stats = Stats{}
	e.drain = e.drain[:0]
}

// Reset rewinds the fabric to its just-built topology: in-flight and
// queued packets return to the pool, endpoint statistics and token
// buckets clear, partitions heal, and the clock rewinds — while every
// endpoint, limit, route cache, and pooled buffer survives for the
// next run. Link parameters are left as-is; a caller that changed them
// mid-run (the jitter fault) restores its own baseline. Reset does not
// allocate.
func (n *Network) Reset() {
	for i := range n.inflight {
		n.putBuf(n.inflight[i].pkt.Payload)
		n.inflight[i] = flight{}
	}
	n.inflight = n.inflight[:0]
	for _, ep := range n.endpoints {
		ep.reset()
	}
	for _, tb := range n.limits {
		tb.Reset()
	}
	clear(n.partitions)
	n.now = 0
}
