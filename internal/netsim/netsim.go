// Package netsim simulates the UDP communication fabric between the
// host control environment and the container control environment: the
// docker0-style bridge, bounded receive queues, iptables-style
// token-bucket rate limits, and optional latency/jitter/loss. The
// paper's UDP DoS experiment (Fig 7) is entirely a property of this
// layer: a flood fills queues and consumes the rate budget, starving
// the legitimate motor-output stream.
package netsim

import (
	"fmt"
	"time"
)

// Addr identifies a simulated UDP endpoint.
type Addr struct {
	Host string
	Port int
}

// String renders "host:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Packet is one datagram in flight or queued.
type Packet struct {
	Src     Addr
	Dst     Addr
	Payload []byte
	SentAt  time.Duration
}

// Stats counts per-endpoint delivery outcomes.
type Stats struct {
	Delivered      int64 // packets enqueued at the receiver
	Received       int64 // packets dequeued by the application
	DroppedQueue   int64 // receiver queue full
	DroppedLimit   int64 // iptables rate limit exceeded
	DroppedLoss    int64 // random link loss
	BytesDelivered int64
}

// Endpoint is a bound receive queue.
type Endpoint struct {
	addr  Addr
	queue []Packet
	cap   int
	stats Stats
}

// Addr returns the bound address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Pending returns the number of queued packets.
func (e *Endpoint) Pending() int { return len(e.queue) }

// Recv pops the oldest queued packet, reporting ok=false when empty.
func (e *Endpoint) Recv() (Packet, bool) {
	if len(e.queue) == 0 {
		return Packet{}, false
	}
	p := e.queue[0]
	copy(e.queue, e.queue[1:])
	e.queue = e.queue[:len(e.queue)-1]
	e.stats.Received++
	return p, true
}

// RecvAll drains the queue, returning packets oldest-first.
func (e *Endpoint) RecvAll() []Packet {
	out := make([]Packet, len(e.queue))
	copy(out, e.queue)
	e.queue = e.queue[:0]
	e.stats.Received += int64(len(out))
	return out
}

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// TokenBucket is the iptables `limit` match: average rate with burst.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Duration
}

// NewTokenBucket builds a full bucket with the given sustained rate
// (tokens/second) and burst capacity.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow consumes one token if available at time now.
func (b *TokenBucket) Allow(now time.Duration) bool {
	dt := (now - b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Tokens reports the current token count (for tests and telemetry).
func (b *TokenBucket) Tokens() float64 { return b.tokens }

// NormSource supplies standard normal samples for jitter; UniformSource
// supplies uniform [0,1) samples for loss.
type (
	NormSource    func() float64
	UniformSource func() float64
)

// LinkParams models the bridge characteristics.
type LinkParams struct {
	Latency time.Duration // fixed one-way latency
	Jitter  time.Duration // 1-sigma random extra latency
	Loss    float64       // independent drop probability
}

// Network is the simulated fabric. Call Step once per simulation tick
// to move in-flight packets into receive queues.
type Network struct {
	endpoints map[Addr]*Endpoint
	limits    map[Addr]*TokenBucket
	inflight  []Packet
	deliverAt []time.Duration
	link      LinkParams
	now       time.Duration
	norm      NormSource
	uniform   UniformSource
}

// New builds an empty network. The random sources may be nil when the
// link is configured without jitter or loss.
func New(norm NormSource, uniform UniformSource) *Network {
	if norm == nil {
		norm = func() float64 { return 0 }
	}
	if uniform == nil {
		uniform = func() float64 { return 1 }
	}
	return &Network{
		endpoints: make(map[Addr]*Endpoint),
		limits:    make(map[Addr]*TokenBucket),
		norm:      norm,
		uniform:   uniform,
	}
}

// SetLink configures latency/jitter/loss for all traffic.
func (n *Network) SetLink(p LinkParams) { n.link = p }

// Bind creates (or returns) the endpoint for addr with the given
// receive queue capacity. Rebinding keeps the original capacity.
func (n *Network) Bind(addr Addr, queueCap int) *Endpoint {
	if ep, ok := n.endpoints[addr]; ok {
		return ep
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	ep := &Endpoint{addr: addr, cap: queueCap}
	n.endpoints[addr] = ep
	return ep
}

// Limit installs an iptables-style token-bucket limit on packets
// destined to addr: at most rate packets/second sustained, with the
// given burst. Passing rate <= 0 removes the limit.
func (n *Network) Limit(addr Addr, rate, burst float64) {
	if rate <= 0 {
		delete(n.limits, addr)
		return
	}
	n.limits[addr] = NewTokenBucket(rate, burst)
}

// Send submits a datagram. Drop decisions (rate limit, loss) happen at
// send time; queue-full drops happen at delivery time. Returns whether
// the packet entered the fabric.
func (n *Network) Send(src, dst Addr, payload []byte) bool {
	ep, bound := n.endpoints[dst]
	if !bound {
		return false // nothing listening: silently dropped like real UDP
	}
	if tb, limited := n.limits[dst]; limited && !tb.Allow(n.now) {
		ep.stats.DroppedLimit++
		return false
	}
	if n.link.Loss > 0 && n.uniform() < n.link.Loss {
		ep.stats.DroppedLoss++
		return false
	}
	delay := n.link.Latency
	if n.link.Jitter > 0 {
		j := time.Duration(float64(n.link.Jitter) * n.norm())
		if j < 0 {
			j = -j
		}
		delay += j
	}
	pkt := Packet{Src: src, Dst: dst, Payload: append([]byte(nil), payload...), SentAt: n.now}
	n.inflight = append(n.inflight, pkt)
	n.deliverAt = append(n.deliverAt, n.now+delay)
	return true
}

// Step advances the fabric to the given simulated time, delivering
// every in-flight packet whose latency has elapsed, in send order.
func (n *Network) Step(now time.Duration) {
	n.now = now
	kept := 0
	for i, pkt := range n.inflight {
		if n.deliverAt[i] > now {
			n.inflight[kept] = pkt
			n.deliverAt[kept] = n.deliverAt[i]
			kept++
			continue
		}
		ep := n.endpoints[pkt.Dst]
		if ep == nil {
			continue
		}
		if len(ep.queue) >= ep.cap {
			ep.stats.DroppedQueue++
			continue
		}
		ep.queue = append(ep.queue, pkt)
		ep.stats.Delivered++
		ep.stats.BytesDelivered += int64(len(pkt.Payload))
	}
	n.inflight = n.inflight[:kept]
	n.deliverAt = n.deliverAt[:kept]
}

// InFlight reports packets not yet delivered.
func (n *Network) InFlight() int { return len(n.inflight) }
