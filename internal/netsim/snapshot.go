package netsim

import "time"

// NetworkState is a deep mid-run snapshot of the fabric's dynamic
// state: queued and in-flight packets (payload bytes copied out of the
// pool), token-bucket levels, per-endpoint statistics, open partitions,
// link parameters, and the fabric clock. Topology (endpoints, limits,
// routes) is NOT part of the state — a snapshot restores onto a
// network built from the same scenario, which already has the same
// endpoints bound.
//
// Ownership: the state shares no memory with the network it was taken
// from or any network it is restored onto; the source may keep running
// and the state stays valid. The zero value is ready for SnapshotInto,
// which reuses the state's buffers across captures.
type NetworkState struct {
	now        time.Duration
	link       LinkParams
	endpoints  []endpointState
	limits     []bucketState
	partitions []hostPair
	inflight   []flightState
}

type endpointState struct {
	addr   Addr
	stats  Stats
	queued []packetState
}

type packetState struct {
	src, dst Addr
	payload  []byte // owned by the state, deep-copied both ways
	sentAt   time.Duration
}

type bucketState struct {
	addr   Addr
	tokens float64
	last   time.Duration
}

type flightState struct {
	packetState
	at time.Duration
}

func capturePacket(dst *packetState, p *Packet) {
	dst.src = p.Src
	dst.dst = p.Dst
	dst.payload = append(dst.payload[:0], p.Payload...)
	dst.sentAt = p.SentAt
}

// SnapshotInto captures the network's dynamic state into st, reusing
// st's buffers. Snapshots must be taken at a tick boundary (between
// Step calls), when no receive call is mid-flight.
func (n *Network) SnapshotInto(st *NetworkState) {
	st.now = n.now
	st.link = n.link

	st.endpoints = st.endpoints[:0]
	for _, ep := range n.endpoints {
		if cap(st.endpoints) > len(st.endpoints) {
			st.endpoints = st.endpoints[:len(st.endpoints)+1]
		} else {
			st.endpoints = append(st.endpoints, endpointState{})
		}
		es := &st.endpoints[len(st.endpoints)-1]
		es.addr = ep.addr
		es.stats = ep.stats
		es.queued = es.queued[:0]
		for i := 0; i < ep.count; i++ {
			slot := ep.head + i
			if slot >= len(ep.ring) {
				slot -= len(ep.ring)
			}
			if cap(es.queued) > len(es.queued) {
				es.queued = es.queued[:len(es.queued)+1]
			} else {
				es.queued = append(es.queued, packetState{})
			}
			capturePacket(&es.queued[len(es.queued)-1], &ep.ring[slot])
		}
	}

	st.limits = st.limits[:0]
	for addr, tb := range n.limits {
		st.limits = append(st.limits, bucketState{addr: addr, tokens: tb.tokens, last: tb.last})
	}

	st.partitions = st.partitions[:0]
	for pair := range n.partitions {
		st.partitions = append(st.partitions, pair)
	}

	st.inflight = st.inflight[:0]
	for i := range n.inflight {
		f := &n.inflight[i]
		if cap(st.inflight) > len(st.inflight) {
			st.inflight = st.inflight[:len(st.inflight)+1]
		} else {
			st.inflight = append(st.inflight, flightState{})
		}
		fs := &st.inflight[len(st.inflight)-1]
		capturePacket(&fs.packetState, &f.pkt)
		fs.at = f.at
	}
}

// RestoreFrom rewinds the network to a captured state. The network
// must carry the same topology as the capture source (same scenario,
// same Binds and Limits); a missing endpoint or bucket panics. Queued
// and in-flight payloads are re-materialized from the pool, so the
// state remains valid for further restores.
func (n *Network) RestoreFrom(st *NetworkState) {
	n.Reset()
	n.now = st.now
	n.link = st.link

	for i := range st.endpoints {
		es := &st.endpoints[i]
		ep := n.endpoints[es.addr]
		if ep == nil {
			panic("netsim: RestoreFrom onto a network missing endpoint " + es.addr.String())
		}
		ep.stats = es.stats
		ep.head = 0
		ep.count = len(es.queued)
		if ep.count > len(ep.ring) {
			panic("netsim: RestoreFrom queue exceeds ring capacity at " + es.addr.String())
		}
		for j := range es.queued {
			ps := &es.queued[j]
			buf := append(n.getBuf(len(ps.payload)), ps.payload...)
			ep.ring[j] = Packet{Src: ps.src, Dst: ps.dst, Payload: buf, SentAt: ps.sentAt, ep: ep}
		}
	}

	for _, bs := range st.limits {
		tb := n.limits[bs.addr]
		if tb == nil {
			panic("netsim: RestoreFrom onto a network missing limit for " + bs.addr.String())
		}
		tb.tokens = bs.tokens
		tb.last = bs.last
	}

	for _, pair := range st.partitions {
		if n.partitions == nil {
			n.partitions = make(map[hostPair]bool)
		}
		n.partitions[pair] = true
	}

	n.inflight = n.inflight[:0]
	for i := range st.inflight {
		fs := &st.inflight[i]
		ep := n.endpoints[fs.dst]
		if ep == nil {
			panic("netsim: RestoreFrom in-flight packet to unbound " + fs.dst.String())
		}
		buf := append(n.getBuf(len(fs.payload)), fs.payload...)
		n.inflight = append(n.inflight, flight{
			pkt: Packet{Src: fs.src, Dst: fs.dst, Payload: buf, SentAt: fs.sentAt, ep: ep},
			at:  fs.at,
		})
	}
}

// NATState captures a NAT table's conntrack counters, keyed by host
// port. Rules themselves are topology, rebuilt by the scenario; only
// the counters are run state.
type NATState struct {
	counts []natCount
}

type natCount struct {
	port  int
	count int64
}

// SnapshotInto captures the table's conntrack counters into st,
// reusing st's buffer.
func (n *NATTable) SnapshotInto(st *NATState) {
	st.counts = st.counts[:0]
	for port, ct := range n.translations {
		st.counts = append(st.counts, natCount{port: port, count: *ct})
	}
}

// RestoreFrom rewinds the conntrack counters to a captured state. The
// boxed counters are written in place, so cached send paths keep their
// pointers. Counters absent from the state (none, for same-topology
// restores) are zeroed.
func (n *NATTable) RestoreFrom(st *NATState) {
	n.ResetCounters()
	for _, c := range st.counts {
		ct := n.translations[c.port]
		if ct == nil {
			panic("netsim: NAT RestoreFrom onto a table missing a counter")
		}
		*ct = c.count
	}
}
