package netsim

import (
	"errors"
	"fmt"
)

// NATTable models the iptables DNAT rules Docker installs for port
// mapping with hairpin NAT enabled (paper §IV-B: "port mapping is
// achieved only through modification of iptables rules, no port
// binding or user proxy process is involved"). A rule rewrites
// datagrams addressed to hostAddr:hostPort toward the container
// endpoint; hairpin mode lets the *container itself* reach its own
// published port through the host address, which a userland proxy
// cannot do.
type NATTable struct {
	hostHost string
	rules    map[int]Addr // host port → container endpoint
	hairpin  bool
	// conntrack counts translations per host port, the analog of the
	// kernel's connection-tracking statistics. Counters are boxed so
	// cached send paths can bump them without a map lookup per packet.
	translations map[int]*int64
	// gen invalidates cached resolutions whenever the rule set changes.
	gen int
}

// ErrNATConflict reports a duplicate host-port rule.
var ErrNATConflict = errors.New("netsim: host port already mapped")

// NewNATTable builds an empty table for the given host identity.
func NewNATTable(hostHost string, hairpin bool) *NATTable {
	return &NATTable{
		hostHost:     hostHost,
		rules:        make(map[int]Addr),
		hairpin:      hairpin,
		translations: make(map[int]*int64),
	}
}

// AddRule publishes a container endpoint on a host port.
func (n *NATTable) AddRule(hostPort int, containerDst Addr) error {
	if _, dup := n.rules[hostPort]; dup {
		return fmt.Errorf("%w: %d", ErrNATConflict, hostPort)
	}
	n.rules[hostPort] = containerDst
	if n.translations[hostPort] == nil {
		n.translations[hostPort] = new(int64)
	}
	n.gen++
	return nil
}

// RemoveRule withdraws a mapping (container stop).
func (n *NATTable) RemoveRule(hostPort int) {
	delete(n.rules, hostPort)
	n.gen++
}

// Gen identifies the current rule-set revision; cached resolutions
// carrying an older Gen must re-resolve.
func (n *NATTable) Gen() int { return n.gen }

// Rules returns the number of installed rules.
func (n *NATTable) Rules() int { return len(n.rules) }

// Hairpin reports whether hairpin mode is on.
func (n *NATTable) Hairpin() bool { return n.hairpin }

// Translations returns how many datagrams were rewritten for a host
// port.
func (n *NATTable) Translations(hostPort int) int64 {
	if ct := n.translations[hostPort]; ct != nil {
		return *ct
	}
	return 0
}

// ResetCounters zeroes the conntrack statistics in place. The boxed
// counters survive, so cached send paths keep their pointers.
func (n *NATTable) ResetCounters() {
	for _, ct := range n.translations {
		*ct = 0
	}
}

// Translate applies the DNAT rules to a datagram from src to dst and
// returns the effective destination. Rules apply when dst is the host
// address and a rule exists for the port; traffic from the container
// side is translated only in hairpin mode.
func (n *NATTable) Translate(src, dst Addr) Addr {
	to, ct := n.Resolve(src, dst)
	if ct != nil {
		*ct++
	}
	return to
}

// Resolve applies the DNAT rules like Translate but without counting:
// it returns the effective destination plus the rule's conntrack
// counter (nil when no rule applied). Callers that cache the resolved
// destination bump the counter once per datagram sent through it.
func (n *NATTable) Resolve(src, dst Addr) (Addr, *int64) {
	if dst.Host != n.hostHost {
		return dst, nil
	}
	to, ok := n.rules[dst.Port]
	if !ok {
		return dst, nil
	}
	fromContainer := src.Host == to.Host
	if fromContainer && !n.hairpin {
		// Without hairpin NAT the container's own published port is
		// unreachable via the host address (the classic Docker
		// userland-proxy asymmetry).
		return dst, nil
	}
	return to, n.translations[dst.Port]
}
