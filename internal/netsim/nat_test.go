package netsim

import (
	"errors"
	"testing"
)

func TestNATTranslatesHostPort(t *testing.T) {
	n := NewNATTable("hce", true)
	cceSvc := Addr{Host: "cce", Port: 8080}
	if err := n.AddRule(80, cceSvc); err != nil {
		t.Fatal(err)
	}
	got := n.Translate(Addr{Host: "gcs", Port: 5000}, Addr{Host: "hce", Port: 80})
	if got != cceSvc {
		t.Fatalf("Translate = %v, want %v", got, cceSvc)
	}
	if n.Translations(80) != 1 {
		t.Fatalf("conntrack = %d", n.Translations(80))
	}
}

func TestNATLeavesUnmappedAlone(t *testing.T) {
	n := NewNATTable("hce", true)
	n.AddRule(80, Addr{Host: "cce", Port: 8080})
	dst := Addr{Host: "hce", Port: 22}
	if got := n.Translate(Addr{Host: "gcs", Port: 1}, dst); got != dst {
		t.Fatalf("unmapped port rewritten: %v", got)
	}
	other := Addr{Host: "elsewhere", Port: 80}
	if got := n.Translate(Addr{Host: "gcs", Port: 1}, other); got != other {
		t.Fatalf("non-host destination rewritten: %v", got)
	}
}

func TestNATHairpin(t *testing.T) {
	// With hairpin on, the container reaches its own published port
	// through the host address.
	n := NewNATTable("hce", true)
	svc := Addr{Host: "cce", Port: 8080}
	n.AddRule(80, svc)
	got := n.Translate(Addr{Host: "cce", Port: 40000}, Addr{Host: "hce", Port: 80})
	if got != svc {
		t.Fatalf("hairpin Translate = %v, want %v", got, svc)
	}
}

func TestNATNoHairpinAsymmetry(t *testing.T) {
	// Without hairpin the same datagram is NOT rewritten: the
	// container cannot reach itself via the host address.
	n := NewNATTable("hce", false)
	svc := Addr{Host: "cce", Port: 8080}
	n.AddRule(80, svc)
	dst := Addr{Host: "hce", Port: 80}
	if got := n.Translate(Addr{Host: "cce", Port: 40000}, dst); got != dst {
		t.Fatalf("no-hairpin Translate = %v, want unchanged", got)
	}
	// External traffic still translates.
	if got := n.Translate(Addr{Host: "gcs", Port: 1}, dst); got != svc {
		t.Fatalf("external Translate = %v, want %v", got, svc)
	}
}

func TestNATConflictAndRemoval(t *testing.T) {
	n := NewNATTable("hce", true)
	if err := n.AddRule(80, Addr{Host: "a", Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(80, Addr{Host: "b", Port: 2}); !errors.Is(err, ErrNATConflict) {
		t.Fatalf("err = %v, want ErrNATConflict", err)
	}
	n.RemoveRule(80)
	if n.Rules() != 0 {
		t.Fatalf("Rules = %d after removal", n.Rules())
	}
	if err := n.AddRule(80, Addr{Host: "b", Port: 2}); err != nil {
		t.Fatalf("re-add after removal: %v", err)
	}
}

// End-to-end through the fabric: an external host reaches a container
// service via the host's published port.
func TestNATEndToEnd(t *testing.T) {
	net := New(nil, nil)
	nat := NewNATTable("hce", true)
	svc := Addr{Host: "cce", Port: 8080}
	nat.AddRule(80, svc)
	ep := net.Bind(svc, 16)

	src := Addr{Host: "gcs", Port: 5000}
	dst := nat.Translate(src, Addr{Host: "hce", Port: 80})
	net.Send(src, dst, []byte("hello"))
	net.Step(0)
	pkt, ok := ep.Recv()
	if !ok || string(pkt.Payload) != "hello" {
		t.Fatalf("translated datagram lost: %v %v", pkt, ok)
	}
}
