// Package sim provides the deterministic fixed-step simulation kernel
// that every other ContainerDrone subsystem runs on: a microsecond
// clock, a seeded random number generator, a periodic-callback
// scheduler and a bounded trace buffer.
//
// The kernel is single-threaded by design. The paper's testbed is a
// real-time system whose behaviour must be reproducible in analysis;
// all simulated concurrency (cores, network queues, sensor streams) is
// expressed as work performed inside a tick, so a run is a pure
// function of (scenario, seed).
package sim

import (
	"fmt"
	"time"
)

// Tick is the base simulation step: 100 µs (10 kHz). All periodic
// activity in the framework (400 Hz motor output, 250 Hz IMU, MemGuard
// 1 ms regulation periods, scheduler quanta) divides evenly into it.
const Tick = 100 * time.Microsecond

// Clock is a discrete simulation clock advancing in whole Ticks.
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	ticks int64
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return time.Duration(c.ticks) * Tick }

// Ticks returns the number of whole ticks elapsed.
func (c *Clock) Ticks() int64 { return c.ticks }

// Advance moves the clock forward by exactly one tick.
func (c *Clock) Advance() { c.ticks++ }

// Seconds returns the current simulated time in seconds.
func (c *Clock) Seconds() float64 { return float64(c.ticks) * Tick.Seconds() }

// TicksPerSecond is the number of base ticks in one simulated second.
const TicksPerSecond = int64(time.Second / Tick)

// TicksFor converts a duration to a whole number of ticks, rounding to
// the nearest tick and never returning less than 1 for a positive
// duration. It panics on non-positive durations: a zero-period
// activity is always a configuration bug.
func TicksFor(d time.Duration) int64 {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive duration %v", d))
	}
	n := int64((d + Tick/2) / Tick)
	if n < 1 {
		n = 1
	}
	return n
}

// RateTicks returns the tick period of an activity that runs at the
// given frequency in hertz, e.g. RateTicks(400) = 25 ticks.
func RateTicks(hz float64) int64 {
	if hz <= 0 {
		panic(fmt.Sprintf("sim: non-positive rate %v Hz", hz))
	}
	period := time.Duration(float64(time.Second) / hz)
	return TicksFor(period)
}
