package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestEngineRunsProcAtPeriod(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register("p", time.Millisecond, 0, ProcFunc(func(time.Duration) { count++ }))
	e.Run(10 * time.Millisecond)
	if count != 10 {
		t.Fatalf("1ms proc over 10ms ran %d times, want 10", count)
	}
}

func TestEngineRateRegistration(t *testing.T) {
	e := NewEngine()
	count := 0
	e.RegisterRate("imu", 250, 0, ProcFunc(func(time.Duration) { count++ }))
	e.Run(time.Second)
	if count != 250 {
		t.Fatalf("250Hz proc over 1s ran %d times, want 250", count)
	}
}

func TestEnginePriorityOrderWithinTick(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register("late", time.Millisecond, 5, ProcFunc(func(time.Duration) { order = append(order, "late") }))
	e.Register("early", time.Millisecond, 1, ProcFunc(func(time.Duration) { order = append(order, "early") }))
	e.Run(time.Millisecond)
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("execution order = %v, want [early late]", order)
	}
}

func TestEngineStableOrderForEqualPriority(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register("a", time.Millisecond, 0, ProcFunc(func(time.Duration) { order = append(order, "a") }))
	e.Register("b", time.Millisecond, 0, ProcFunc(func(time.Duration) { order = append(order, "b") }))
	e.Run(time.Millisecond)
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("equal-priority order = %v, want registration order [a b]", order)
	}
}

func TestEngineDisable(t *testing.T) {
	e := NewEngine()
	count := 0
	h := e.Register("p", time.Millisecond, 0, ProcFunc(func(time.Duration) { count++ }))
	e.Run(5 * time.Millisecond)
	h.SetEnabled(false)
	if h.Enabled() {
		t.Fatal("handle still enabled after SetEnabled(false)")
	}
	e.Run(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("disabled proc still ran: count = %d, want 5", count)
	}
	h.SetEnabled(true)
	e.Run(5 * time.Millisecond)
	if count != 10 {
		t.Fatalf("re-enabled proc count = %d, want 10", count)
	}
}

func TestEngineHandleName(t *testing.T) {
	e := NewEngine()
	h := e.Register("receiver", time.Millisecond, 0, ProcFunc(func(time.Duration) {}))
	if h.Name() != "receiver" {
		t.Fatalf("Name() = %q, want receiver", h.Name())
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var fired time.Duration = -1
	e.After(5*time.Millisecond, func(now time.Duration) { fired = now })
	e.Run(4 * time.Millisecond)
	if fired != -1 {
		t.Fatalf("one-shot fired early at %v", fired)
	}
	e.Run(2 * time.Millisecond)
	if fired != 5*time.Millisecond {
		t.Fatalf("one-shot fired at %v, want 5ms", fired)
	}
}

func TestEngineAt(t *testing.T) {
	e := NewEngine()
	var fired time.Duration = -1
	e.At(12*time.Millisecond, func(now time.Duration) { fired = now })
	e.Run(20 * time.Millisecond)
	if fired != 12*time.Millisecond {
		t.Fatalf("At callback fired at %v, want 12ms", fired)
	}
}

func TestEngineAtInPastRunsImmediately(t *testing.T) {
	e := NewEngine()
	e.Run(10 * time.Millisecond)
	fired := false
	e.At(time.Millisecond, func(time.Duration) { fired = true })
	e.Step()
	if !fired {
		t.Fatal("At in the past did not run at the next step")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register("p", time.Millisecond, 0, ProcFunc(func(now time.Duration) {
		count++
		if now >= 3*time.Millisecond {
			e.Stop()
		}
	}))
	e.Run(100 * time.Millisecond)
	if !e.Stopped() {
		t.Fatal("engine not stopped")
	}
	if count != 4 { // t=0,1,2,3 ms
		t.Fatalf("proc ran %d times before stop, want 4", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	e.RunUntil(25 * time.Millisecond)
	if e.Now() != 25*time.Millisecond {
		t.Fatalf("RunUntil left clock at %v, want 25ms", e.Now())
	}
}

// TestEngineMidRunRegistration guards the next-fire schedule against
// processes registered from inside a callback: a slow process whose
// first computed fire tick lands on the tick being stepped must not
// wedge the heap head (it runs a tick late), and other slow processes
// must keep firing.
func TestEngineMidRunRegistration(t *testing.T) {
	e := NewEngine()
	preCount, lateCount := 0, 0
	e.Register("pre", 2*time.Millisecond, 0, ProcFunc(func(time.Duration) { preCount++ }))
	// Register the new process from a one-shot that fires at t=2ms —
	// exactly a multiple of its 2 ms period, the wedging case.
	e.At(2*time.Millisecond, func(time.Duration) {
		e.Register("late", 2*time.Millisecond, 0, ProcFunc(func(time.Duration) { lateCount++ }))
	})
	e.Run(10 * time.Millisecond)
	if preCount != 5 { // t=0,2,4,6,8 ms
		t.Fatalf("pre-existing proc ran %d times, want 5", preCount)
	}
	if lateCount < 3 { // due at 2 (runs late at ~2.0001), then 4,6,8 ms
		t.Fatalf("mid-run-registered proc ran %d times, want >=3", lateCount)
	}
}

func TestEngineTwoRatesAlign(t *testing.T) {
	// A 400 Hz and a 250 Hz process must both hit t=0 and then keep
	// their own cadence — the base schedule the HCE/CCE streams rely on.
	e := NewEngine()
	var at400, at250 []time.Duration
	e.RegisterRate("motor", 400, 0, ProcFunc(func(now time.Duration) { at400 = append(at400, now) }))
	e.RegisterRate("imu", 250, 0, ProcFunc(func(now time.Duration) { at250 = append(at250, now) }))
	e.Run(10 * time.Millisecond)
	if len(at400) != 4 {
		t.Fatalf("400Hz ran %d times in 10ms, want 4", len(at400))
	}
	if len(at250) != 3 { // t=0, 4ms, 8ms
		t.Fatalf("250Hz ran %d times in 10ms, want 3", len(at250))
	}
	if at400[1] != 2500*time.Microsecond {
		t.Fatalf("400Hz second invocation at %v, want 2.5ms", at400[1])
	}
	if at250[1] != 4*time.Millisecond {
		t.Fatalf("250Hz second invocation at %v, want 4ms", at250[1])
	}
}

// TestEngineCheckpointReset pins the rewind contract the warm-pool
// campaign rests on: after Checkpoint, any number of runs followed by
// Reset replays the identical schedule — periodic phases, one-shot
// firings, and enabled flags all restored.
func TestEngineCheckpointReset(t *testing.T) {
	e := NewEngine()
	var log []string
	record := func(name string) ProcFunc {
		return func(now time.Duration) {
			log = append(log, fmt.Sprintf("%s@%v", name, now))
		}
	}
	e.Register("fast", Tick, 0, record("fast"))
	h := e.Register("slow", 3*Tick, 10, record("slow"))
	h.SetEnabled(false) // fault-step style: disabled until its window opens
	e.At(2*Tick, func(now time.Duration) {
		log = append(log, fmt.Sprintf("shot@%v", now))
		h.SetEnabled(true)
	})
	e.Checkpoint()

	run := func() []string {
		log = nil
		e.Run(7 * Tick)
		return append([]string(nil), log...)
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no events recorded")
	}
	e.Reset()
	second := run()
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("replay after Reset diverged:\n first: %v\n second: %v", first, second)
	}
	// A third cycle catches state that survives exactly one reset.
	e.Reset()
	if third := run(); fmt.Sprint(first) != fmt.Sprint(third) {
		t.Fatalf("second Reset diverged:\n first: %v\n third: %v", first, third)
	}
}

// TestEngineResetWithoutCheckpointPanics pins the misuse guard.
func TestEngineResetWithoutCheckpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset without Checkpoint did not panic")
		}
	}()
	NewEngine().Reset()
}
