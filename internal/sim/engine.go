package sim

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"
)

// Proc is a periodic simulation process. Tick is called at the
// process's registered period with the current simulated time.
type Proc interface {
	Tick(now time.Duration)
}

// ProcFunc adapts a plain function to the Proc interface.
type ProcFunc func(now time.Duration)

// Tick calls f(now).
func (f ProcFunc) Tick(now time.Duration) { f(now) }

type procEntry struct {
	name     string
	proc     Proc
	period   int64 // ticks
	next     int64 // next fire tick; advances even while disabled, preserving phase
	priority int   // lower runs first within a tick
	order    int   // registration order, ties broken stably
	enabled  bool
}

// procLess orders invocations within one tick.
func procLess(a, b *procEntry) bool {
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.order < b.order
}

// procHeap is a min-heap of slow (period > 1 tick) processes keyed by
// (next fire tick, priority, order), so popping the due entries of a
// tick yields them already in execution order.
type procHeap []*procEntry

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next < h[j].next
	}
	return procLess(h[i], h[j])
}
func (h procHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x interface{}) { *h = append(*h, x.(*procEntry)) }
func (h *procHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// oneShot is a scheduled callback; seq keeps same-tick callbacks in
// insertion order.
type oneShot struct {
	tick int64
	seq  int64
	fn   func(now time.Duration)
}

type oneShotHeap []oneShot

func (h oneShotHeap) Len() int { return len(h) }
func (h oneShotHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}
func (h oneShotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oneShotHeap) Push(x interface{}) { *h = append(*h, x.(oneShot)) }
func (h *oneShotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1].fn = nil
	*h = old[:n-1]
	return x
}

// Engine drives the simulation: it owns the clock and invokes every
// registered periodic process at its period, in deterministic order
// (priority, then registration order) within a tick.
//
// The hot loop is schedule-driven rather than scan-driven: every-tick
// processes live in a dedicated slice that runs unconditionally, and
// slower processes wait in a min-heap keyed by their precomputed next
// fire tick — so a tick costs O(every-tick procs + procs actually
// due), with no per-proc modulo arithmetic and no map lookup for
// one-shot callbacks (they wait in their own min-heap). At campaign
// scale (thousands of 10 kHz runs) this is the single hottest loop in
// the codebase.
type Engine struct {
	clock     Clock
	procs     []*procEntry // every registration, in registration order
	everyTick []*procEntry // period == 1, sorted (priority, order)
	slow      procHeap     // period > 1, keyed by next fire tick
	due       []*procEntry // per-Step scratch, reused across ticks
	oneShots  oneShotHeap
	seq       int64
	stopped   bool

	// Checkpoint state for Reset: the one-shot schedule and per-proc
	// enabled flags as they stood when Checkpoint was called.
	chkOneShots oneShotHeap
	chkSeq      int64
	chkEnabled  []bool
	chkValid    bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.clock.Now() }

// Clock exposes the engine clock (read-only use expected).
func (e *Engine) Clock() *Clock { return &e.clock }

// Handle identifies a registered process so it can be enabled,
// disabled, or inspected later (e.g. the monitor killing the HCE
// receiver thread disables its process).
type Handle struct {
	ent *procEntry
}

// Register adds a periodic process. Priority orders invocations within
// one tick: lower priority values run first. Names are for traces.
func (e *Engine) Register(name string, period time.Duration, priority int, p Proc) Handle {
	ticks := TicksFor(period)
	tick := e.clock.Ticks()
	ent := &procEntry{
		name:     name,
		proc:     p,
		period:   ticks,
		priority: priority,
		order:    len(e.procs),
		enabled:  true,
		// First fire at the next multiple of the period, matching the
		// zero-phase schedule (tick % period == 0).
		next: ((tick + ticks - 1) / ticks) * ticks,
	}
	e.procs = append(e.procs, ent)
	if ticks == 1 {
		e.everyTick = append(e.everyTick, ent)
		// Registration is setup-time only, so re-sorting is cheap.
		sort.SliceStable(e.everyTick, func(i, j int) bool {
			return procLess(e.everyTick[i], e.everyTick[j])
		})
	} else {
		heap.Push(&e.slow, ent)
	}
	return Handle{ent: ent}
}

// RegisterRate is Register with a frequency in hertz.
func (e *Engine) RegisterRate(name string, hz float64, priority int, p Proc) Handle {
	period := time.Duration(float64(time.Second) / hz)
	return e.Register(name, period, priority, p)
}

// SetEnabled switches a process on or off. Disabled processes are
// skipped but keep their phase.
func (h Handle) SetEnabled(on bool) { h.ent.enabled = on }

// Enabled reports whether the process currently runs.
func (h Handle) Enabled() bool { return h.ent.enabled }

// Name returns the registered process name.
func (h Handle) Name() string { return h.ent.name }

// After schedules f to run once when the clock reaches now+d,
// at the end of that tick (after all periodic processes).
func (e *Engine) After(d time.Duration, f func(now time.Duration)) {
	e.pushOneShot(e.clock.Ticks()+TicksFor(d), f)
}

// At schedules f at an absolute simulated time. Times in the past (or
// now) run at the end of the current tick's step.
func (e *Engine) At(t time.Duration, f func(now time.Duration)) {
	at := int64((t + Tick/2) / Tick)
	if at < e.clock.Ticks() {
		at = e.clock.Ticks()
	}
	e.pushOneShot(at, f)
}

func (e *Engine) pushOneShot(tick int64, f func(now time.Duration)) {
	e.seq++
	heap.Push(&e.oneShots, oneShot{tick: tick, seq: e.seq, fn: f})
}

// Stop ends the run at the end of the current tick.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step advances the simulation by one tick: runs every periodic
// process due at this tick, then any one-shots due, then advances
// the clock.
func (e *Engine) Step() {
	now := e.clock.Now()
	tick := e.clock.Ticks()

	// Collect the slow processes due this tick. Heap pops arrive in
	// (priority, order) order because their next-fire keys are equal.
	// The <= guards against a process registered mid-tick whose first
	// fire landed on the tick being stepped: it runs one tick late
	// instead of stalling the heap head forever.
	e.due = e.due[:0]
	for len(e.slow) > 0 && e.slow[0].next <= tick {
		e.due = append(e.due, heap.Pop(&e.slow).(*procEntry))
	}

	// Merge the always-due fast list with the due slow list, both
	// sorted by (priority, order), preserving the global invocation
	// order of the scan-based engine. Most ticks have no slow process
	// due, so that case skips the merge bookkeeping entirely.
	fast := e.everyTick
	if len(e.due) == 0 {
		for _, p := range fast {
			if p.enabled {
				p.proc.Tick(now)
			}
		}
	} else {
		i, j := 0, 0
		for i < len(fast) || j < len(e.due) {
			var p *procEntry
			if j >= len(e.due) || (i < len(fast) && procLess(fast[i], e.due[j])) {
				p = fast[i]
				i++
			} else {
				p = e.due[j]
				j++
			}
			if p.enabled {
				p.proc.Tick(now)
			}
		}
	}

	// Reschedule the slow processes that fired (or were skipped while
	// disabled — their phase advances either way). Catch-up keeps the
	// zero-phase schedule for entries that ran late.
	for _, p := range e.due {
		for p.next += p.period; p.next <= tick; p.next += p.period {
		}
		heap.Push(&e.slow, p)
	}

	// One-shots due now, including any scheduled for this tick by the
	// processes (or one-shots) above.
	for len(e.oneShots) > 0 && e.oneShots[0].tick <= tick {
		f := heap.Pop(&e.oneShots).(oneShot)
		f.fn(now)
	}
	e.clock.Advance()
}

// Checkpoint records the engine's schedule — the pending one-shot
// callbacks and every process's enabled flag — so Reset can rewind to
// it. Call it once at the end of scenario construction, after every
// Register/At of the build phase; the clock must still be at zero.
//
// Checkpoint is what makes an Engine reusable across campaign runs:
// one-shots are consumed as they fire, so without a recorded schedule
// a second run would fly with no attack, no faults, and no monitor
// arming.
func (e *Engine) Checkpoint() {
	if e.clock.Ticks() != 0 {
		panic("sim: Checkpoint after the clock advanced")
	}
	e.chkOneShots = append(e.chkOneShots[:0], e.oneShots...)
	e.chkSeq = e.seq
	if e.chkEnabled == nil {
		e.chkEnabled = make([]bool, 0, len(e.procs))
	}
	e.chkEnabled = e.chkEnabled[:0]
	for _, ent := range e.procs {
		e.chkEnabled = append(e.chkEnabled, ent.enabled)
	}
	e.chkValid = true
}

// EngineState is the engine's contribution to a mid-run snapshot: the
// clock position, the stop flag, and every process's enabled flag at
// the moment of capture. Together with the schedule Checkpoint recorded
// at build time it is enough to Seek an identically built engine to the
// same point — the pending one-shot set at any tick T is exactly the
// checkpointed schedule filtered to fire ticks >= T, and every periodic
// process's next fire is a pure function of (T, period).
//
// The zero value is ready to use; StateInto reuses its buffers across
// captures.
type EngineState struct {
	tick    int64
	stopped bool
	enabled []bool
}

// Tick returns the captured clock position.
func (st *EngineState) Tick() int64 { return st.tick }

// ScheduleAtCheckpoint reports whether the engine's pending one-shot
// schedule is exactly the checkpointed schedule filtered to ticks not
// yet reached — that is, no one-shots were added dynamically mid-run.
// It is the non-panicking form of the StateInto precondition; fork
// campaigns probe it to decide whether a mid-run snapshot is possible
// before committing to one.
func (e *Engine) ScheduleAtCheckpoint() bool {
	if !e.chkValid {
		return false
	}
	tick := e.clock.Ticks()
	pending := 0
	for _, os := range e.chkOneShots {
		if os.tick >= tick {
			pending++
		}
	}
	return pending == len(e.oneShots)
}

// StateInto captures the engine's mid-run state into st, reusing st's
// buffers. It requires a Checkpoint and verifies the core snapshot
// premise — that every pending one-shot is part of the checkpointed
// schedule (none were added dynamically mid-run) — and panics
// otherwise, because Seek reconstructs the pending set from the
// checkpoint alone.
func (e *Engine) StateInto(st *EngineState) {
	if !e.chkValid {
		panic("sim: StateInto without Checkpoint")
	}
	tick := e.clock.Ticks()
	pending := 0
	for _, os := range e.chkOneShots {
		if os.tick >= tick {
			pending++
		}
	}
	if pending != len(e.oneShots) {
		panic("sim: StateInto with dynamically scheduled one-shots pending; snapshots must be taken before any run-time After/At")
	}
	st.tick = tick
	st.stopped = e.stopped
	st.enabled = st.enabled[:0]
	for _, ent := range e.procs {
		st.enabled = append(st.enabled, ent.enabled)
	}
}

// Seek moves an engine built identically to the capture source to the
// captured state: clock at st's tick, the checkpointed one-shots not
// yet due re-armed, every process re-phased to its zero-phase next fire
// at that tick and restored to its captured enabled flag. The effects
// of everything that fired before the captured tick are NOT replayed —
// the caller restores the rest of the system state separately
// (core.System.RestoreFrom does both halves).
//
// Seek reuses the engine's own checkpointed one-shot closures, so they
// keep binding the engine's own system — snapshots never transfer
// callbacks between engines.
func (e *Engine) Seek(st *EngineState) {
	if !e.chkValid {
		panic("sim: Seek without Checkpoint")
	}
	if len(st.enabled) != len(e.procs) {
		panic("sim: Seek with mismatched process set; source and target must be built from the same scenario")
	}
	e.clock = Clock{ticks: st.tick}
	e.stopped = st.stopped
	// Re-arm the not-yet-due one-shots. The filtered subset of a heap is
	// not itself heap-ordered, so re-init.
	e.oneShots = e.oneShots[:0]
	for _, os := range e.chkOneShots {
		if os.tick >= st.tick {
			e.oneShots = append(e.oneShots, os)
		}
	}
	heap.Init(&e.oneShots)
	e.seq = e.chkSeq
	// Re-phase every process: after stepping ticks [0, T), the next fire
	// of a period-p process is the smallest multiple of p that is >= T
	// (phase advances even while disabled, so this holds for disabled
	// processes too).
	e.slow = e.slow[:0]
	for i, ent := range e.procs {
		ent.enabled = st.enabled[i]
		ent.next = ((st.tick + ent.period - 1) / ent.period) * ent.period
		if ent.period > 1 {
			e.slow = append(e.slow, ent)
		}
	}
	heap.Init(&e.slow)
	e.due = e.due[:0]
}

// RunToTickContext advances the simulation until the clock reaches the
// absolute tick end, Stop is called, or the context is done (same
// cancellation contract as RunContext). It is the fork-campaign
// primitive: fly the shared prefix to the snapshot tick, and resume a
// restored run from there to the flight's end.
func (e *Engine) RunToTickContext(ctx context.Context, end int64) error {
	countdown := 0
	for e.clock.Ticks() < end && !e.stopped {
		if countdown == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			countdown = ctxCheckTicks
		}
		countdown--
		e.Step()
	}
	return nil
}

// Reset rewinds the engine to its Checkpoint: time zero, the recorded
// one-shot schedule, every process re-phased to its zero-phase next
// fire and restored to its checkpointed enabled state. Registered
// processes are kept — their closures are expected to read per-run
// state that the caller resets separately. Reset never allocates at
// steady state (the restored heaps reuse the engine's buffers).
func (e *Engine) Reset() {
	if !e.chkValid {
		panic("sim: Reset without Checkpoint")
	}
	e.clock = Clock{}
	e.stopped = false
	// Restore the one-shot schedule. The checkpoint copy is itself a
	// valid heap (heap order is preserved by append-copy), so no re-init
	// is needed.
	e.oneShots = append(e.oneShots[:0], e.chkOneShots...)
	e.seq = e.chkSeq
	// Re-phase every process: at tick zero the zero-phase next fire is
	// tick zero for every period.
	e.slow = e.slow[:0]
	for i, ent := range e.procs {
		ent.enabled = e.chkEnabled[i]
		ent.next = 0
		if ent.period > 1 {
			e.slow = append(e.slow, ent)
		}
	}
	heap.Init(&e.slow)
	e.due = e.due[:0]
}

// Run advances the simulation for the given duration or until Stop.
func (e *Engine) Run(d time.Duration) {
	end := e.clock.Ticks() + TicksFor(d)
	for e.clock.Ticks() < end && !e.stopped {
		e.Step()
	}
}

// ctxCheckTicks is how often RunContext polls the context: every
// 1024 ticks (~0.1 s simulated) keeps the poll off the per-tick hot
// path while bounding cancellation latency to a fraction of a
// simulated second.
const ctxCheckTicks = 1024

// RunContext advances the simulation for the given duration or until
// Stop or the context is done. On cancellation the engine halts at a
// tick boundary and returns the context's error, leaving the system
// in a consistent mid-run state that can still be snapshotted.
func (e *Engine) RunContext(ctx context.Context, d time.Duration) error {
	end := e.clock.Ticks() + TicksFor(d)
	countdown := 0
	for e.clock.Ticks() < end && !e.stopped {
		if countdown == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			countdown = ctxCheckTicks
		}
		countdown--
		e.Step()
	}
	return nil
}

// RunUntil advances until the absolute simulated time t or Stop.
func (e *Engine) RunUntil(t time.Duration) {
	for e.clock.Now() < t && !e.stopped {
		e.Step()
	}
}

// String summarizes the engine state for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{t=%v procs=%d}", e.clock.Now(), len(e.procs))
}
