package sim

import (
	"fmt"
	"sort"
	"time"
)

// Proc is a periodic simulation process. Tick is called at the
// process's registered period with the current simulated time.
type Proc interface {
	Tick(now time.Duration)
}

// ProcFunc adapts a plain function to the Proc interface.
type ProcFunc func(now time.Duration)

// Tick calls f(now).
func (f ProcFunc) Tick(now time.Duration) { f(now) }

type procEntry struct {
	name     string
	proc     Proc
	period   int64 // ticks
	phase    int64 // tick offset of the first invocation
	priority int   // lower runs first within a tick
	order    int   // registration order, ties broken stably
	enabled  bool
}

// Engine drives the simulation: it owns the clock and invokes every
// registered periodic process at its period, in deterministic order
// (priority, then registration order) within a tick.
type Engine struct {
	clock Clock
	procs []*procEntry
	// oneShots maps a tick to callbacks scheduled for it.
	oneShots map[int64][]func(now time.Duration)
	stopped  bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{oneShots: make(map[int64][]func(time.Duration))}
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.clock.Now() }

// Clock exposes the engine clock (read-only use expected).
func (e *Engine) Clock() *Clock { return &e.clock }

// Handle identifies a registered process so it can be enabled,
// disabled, or re-phased later (e.g. the monitor killing the HCE
// receiver thread disables its process).
type Handle struct {
	e   *Engine
	idx int
}

// Register adds a periodic process. Priority orders invocations within
// one tick: lower priority values run first. Names are for traces.
func (e *Engine) Register(name string, period time.Duration, priority int, p Proc) Handle {
	ent := &procEntry{
		name:     name,
		proc:     p,
		period:   TicksFor(period),
		priority: priority,
		order:    len(e.procs),
		enabled:  true,
	}
	e.procs = append(e.procs, ent)
	// Keep the invocation order deterministic: sort by (priority,
	// order). Registration is setup-time only, so re-sorting is cheap.
	sort.SliceStable(e.procs, func(i, j int) bool {
		if e.procs[i].priority != e.procs[j].priority {
			return e.procs[i].priority < e.procs[j].priority
		}
		return e.procs[i].order < e.procs[j].order
	})
	for i, p := range e.procs {
		if p == ent {
			return Handle{e: e, idx: i}
		}
	}
	panic("sim: registered process not found") // unreachable
}

// RegisterRate is Register with a frequency in hertz.
func (e *Engine) RegisterRate(name string, hz float64, priority int, p Proc) Handle {
	period := time.Duration(float64(time.Second) / hz)
	return e.Register(name, period, priority, p)
}

// SetEnabled switches a process on or off. Disabled processes are
// skipped but keep their phase.
func (h Handle) SetEnabled(on bool) { h.e.procs[h.idx].enabled = on }

// Enabled reports whether the process currently runs.
func (h Handle) Enabled() bool { return h.e.procs[h.idx].enabled }

// Name returns the registered process name.
func (h Handle) Name() string { return h.e.procs[h.idx].name }

// After schedules f to run once when the clock reaches now+d,
// at the end of that tick (after all periodic processes).
func (e *Engine) After(d time.Duration, f func(now time.Duration)) {
	at := e.clock.Ticks() + TicksFor(d)
	e.oneShots[at] = append(e.oneShots[at], f)
}

// At schedules f at an absolute simulated time. Times in the past (or
// now) run at the end of the current tick's step.
func (e *Engine) At(t time.Duration, f func(now time.Duration)) {
	at := int64((t + Tick/2) / Tick)
	if at < e.clock.Ticks() {
		at = e.clock.Ticks()
	}
	e.oneShots[at] = append(e.oneShots[at], f)
}

// Stop ends the run at the end of the current tick.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step advances the simulation by one tick: runs every periodic
// process whose phase matches, then any one-shots due, then advances
// the clock.
func (e *Engine) Step() {
	now := e.clock.Now()
	tick := e.clock.Ticks()
	for _, p := range e.procs {
		if !p.enabled {
			continue
		}
		if (tick-p.phase)%p.period == 0 {
			p.proc.Tick(now)
		}
	}
	if fs, ok := e.oneShots[tick]; ok {
		delete(e.oneShots, tick)
		for _, f := range fs {
			f(now)
		}
	}
	e.clock.Advance()
}

// Run advances the simulation for the given duration or until Stop.
func (e *Engine) Run(d time.Duration) {
	end := e.clock.Ticks() + TicksFor(d)
	for e.clock.Ticks() < end && !e.stopped {
		e.Step()
	}
}

// RunUntil advances until the absolute simulated time t or Stop.
func (e *Engine) RunUntil(t time.Duration) {
	for e.clock.Now() < t && !e.stopped {
		e.Step()
	}
}

// String summarizes the engine state for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{t=%v procs=%d}", e.clock.Now(), len(e.procs))
}
