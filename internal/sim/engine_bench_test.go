package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineStep measures the hot loop on the proc mix a core
// scenario registers: three every-tick processes (net, sched,
// physics), a 100-tick wind process, a 200-tick telemetry process,
// and a sprinkle of pending one-shots — the shape every campaign run
// steps 10,000 times per simulated second.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	sink := 0
	tick := func(time.Duration) { sink++ }
	e.Register("net", Tick, 0, ProcFunc(tick))
	e.Register("sched", Tick, 10, ProcFunc(tick))
	e.Register("physics", Tick, 20, ProcFunc(tick))
	e.Register("wind", 10*time.Millisecond, 19, ProcFunc(tick))
	e.Register("telemetry", 20*time.Millisecond, 30, ProcFunc(tick))
	for s := 1; s <= 8; s++ {
		e.At(time.Duration(s)*time.Hour, func(time.Duration) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	_ = sink
}
