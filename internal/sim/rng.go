package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// SplitMix64. Every stochastic element of the simulation (sensor
// noise, network jitter, attack timing dither) draws from an RNG
// seeded by the scenario so runs are bit-reproducible.
//
// The zero value is usable but fixed-seeded; prefer NewRNG.
type RNG struct {
	state uint64
	// spare Gaussian value from the Box-Muller pair, if valid.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with the given value. Two RNGs
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator; the parent advances by
// one step. Useful to give each subsystem its own stream so adding a
// consumer does not perturb the others.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64()*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
}

// Reseed rewinds the generator to the state of a fresh NewRNG(seed):
// the stream restarts from scratch and any buffered Gaussian spare is
// dropped. Subsystems hold RNGs by pointer (often through closures),
// so reseeding in place is how a reused simulation re-derives its
// per-run randomness without rewiring consumers.
func (r *RNG) Reseed(seed uint64) {
	r.state = seed
	r.spare = 0
	r.hasSpare = false
}

// SplitInto is Split writing the child state into an existing
// generator — the allocation-free form used when reseeding a tree of
// subsystem streams in place.
func (r *RNG) SplitInto(child *RNG) {
	child.Reseed(r.Uint64()*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormScaled returns a normal sample with the given standard
// deviation. A zero sigma returns exactly zero, making noise models
// cheap to disable.
func (r *RNG) NormScaled(sigma float64) float64 {
	if sigma == 0 {
		return 0
	}
	return sigma * r.Norm()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
