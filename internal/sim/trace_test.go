package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTraceAddAndLen(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(time.Second, "monitor", "rule %s fired", "interval")
	tr.Add(2*time.Second, "sched", "deadline miss")
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if got := tr.Events()[0].Message; got != "rule interval fired" {
		t.Fatalf("message = %q", got)
	}
}

func TestTraceBounded(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 10; i++ {
		tr.Add(time.Duration(i)*time.Second, "s", "event %d", i)
	}
	if tr.Len() != 3 {
		t.Fatalf("bounded trace Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Message != "event 7" || evs[2].Message != "event 9" {
		t.Fatalf("kept wrong events: %v", evs)
	}
}

func TestTraceFilter(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(0, "a", "one")
	tr.Add(0, "b", "two")
	tr.Add(0, "a", "three")
	got := tr.Filter("a")
	if len(got) != 2 || got[0].Message != "one" || got[1].Message != "three" {
		t.Fatalf("Filter(a) = %v", got)
	}
	if len(tr.Filter("missing")) != 0 {
		t.Fatal("Filter(missing) should be empty")
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(12300*time.Millisecond, "monitor", "switched to safety")
	s := tr.String()
	if !strings.Contains(s, "12.300s") || !strings.Contains(s, "monitor: switched to safety") {
		t.Fatalf("String() = %q", s)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Time: 1500 * time.Millisecond, Source: "x", Message: "m"}
	if got := ev.String(); !strings.Contains(got, "1.500s") || !strings.Contains(got, "x: m") {
		t.Fatalf("Event.String() = %q", got)
	}
}
