package sim

import (
	"fmt"
	"strings"
	"time"
)

// Event is one timestamped record in the simulation trace.
type Event struct {
	Time    time.Duration
	Source  string
	Message string
}

// String renders the event as "[12.300s] monitor: switched to safety".
func (ev Event) String() string {
	return fmt.Sprintf("[%8.3fs] %s: %s", ev.Time.Seconds(), ev.Source, ev.Message)
}

// Trace is a bounded in-memory event log shared by subsystems. It
// keeps at most its capacity of most-recent events (0 = unbounded).
// The zero value is an unbounded trace ready to use.
type Trace struct {
	events []Event
	cap    int
	drops  int
}

// NewTrace returns a trace bounded to capacity events; capacity <= 0
// means unbounded.
func NewTrace(capacity int) *Trace {
	return &Trace{cap: capacity}
}

// Add appends an event, evicting the oldest if at capacity.
func (t *Trace) Add(now time.Duration, source, format string, args ...any) {
	ev := Event{Time: now, Source: source, Message: fmt.Sprintf(format, args...)}
	if t.cap > 0 && len(t.events) >= t.cap {
		copy(t.events, t.events[1:])
		t.events[len(t.events)-1] = ev
		t.drops++
		return
	}
	t.events = append(t.events, ev)
}

// Reset empties the trace in place, keeping its capacity and backing
// storage for the next run.
func (t *Trace) Reset() {
	clear(t.events)
	t.events = t.events[:0]
	t.drops = 0
}

// CopyInto deep-copies the trace's retained events and drop count into
// dst, reusing dst's backing storage. Used for snapshots: src and dst
// share no memory afterwards.
func (t *Trace) CopyInto(dst *Trace) {
	dst.events = append(dst.events[:0], t.events...)
	dst.drops = t.drops
}

// RestoreFrom rewinds the trace to a snapshot taken with CopyInto,
// keeping the trace's own capacity and backing storage.
func (t *Trace) RestoreFrom(snap *Trace) {
	t.events = append(t.events[:0], snap.events...)
	t.drops = snap.drops
}

// Events returns the retained events, oldest first. The returned slice
// is owned by the trace; callers must not mutate it.
func (t *Trace) Events() []Event { return t.events }

// Dropped reports how many events were evicted due to the bound.
func (t *Trace) Dropped() int { return t.drops }

// Len returns the number of retained events.
func (t *Trace) Len() int { return len(t.events) }

// Filter returns the events whose Source equals source.
func (t *Trace) Filter(source string) []Event {
	var out []Event
	for _, ev := range t.events {
		if ev.Source == source {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the full trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, ev := range t.events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
