package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGNormScaledZeroSigma(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.NormScaled(0) != 0 {
			t.Fatal("NormScaled(0) should be exactly 0")
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(17)
	child := parent.Split()
	// Child stream must not simply replay the parent stream.
	a := make([]uint64, 50)
	for i := range a {
		a[i] = child.Uint64()
	}
	reference := NewRNG(17)
	matches := 0
	for i := range a {
		if a[i] == reference.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("child stream matched parent seed stream %d/50 times", matches)
	}
}

// Property: Float64 is always in [0,1) regardless of seed.
func TestRNGFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed ⇒ same first Norm draws (determinism across
// the Box-Muller spare path).
func TestRNGNormDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 9; i++ { // odd count crosses the spare boundary
			if a.Norm() != b.Norm() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
