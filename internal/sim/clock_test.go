package sim

import (
	"testing"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
	if c.Ticks() != 0 {
		t.Fatalf("zero clock Ticks() = %d, want 0", c.Ticks())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	for i := 0; i < 10; i++ {
		c.Advance()
	}
	if got := c.Now(); got != 10*Tick {
		t.Fatalf("after 10 advances Now() = %v, want %v", got, 10*Tick)
	}
	if got := c.Seconds(); got != 10*Tick.Seconds() {
		t.Fatalf("Seconds() = %v, want %v", got, 10*Tick.Seconds())
	}
}

func TestTicksPerSecond(t *testing.T) {
	if TicksPerSecond != 10000 {
		t.Fatalf("TicksPerSecond = %d, want 10000 for a 100µs tick", TicksPerSecond)
	}
}

func TestTicksFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{Tick, 1},
		{time.Millisecond, 10},
		{time.Second, 10000},
		{2500 * time.Microsecond, 25},  // 400 Hz
		{4 * time.Millisecond, 40},     // 250 Hz
		{20 * time.Millisecond, 200},   // 50 Hz
		{100 * time.Millisecond, 1000}, // 10 Hz
		{50 * time.Microsecond, 1},     // rounds up to a whole tick
		{149 * time.Microsecond, 1},    // rounds to nearest
		{151 * time.Microsecond, 2},    // rounds to nearest
	}
	for _, c := range cases {
		if got := TicksFor(c.d); got != c.want {
			t.Errorf("TicksFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestTicksForPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TicksFor(0) did not panic")
		}
	}()
	TicksFor(0)
}

func TestRateTicks(t *testing.T) {
	cases := []struct {
		hz   float64
		want int64
	}{
		{400, 25},
		{250, 40},
		{50, 200},
		{10, 1000},
		{10000, 1},
	}
	for _, c := range cases {
		if got := RateTicks(c.hz); got != c.want {
			t.Errorf("RateTicks(%v) = %d, want %d", c.hz, got, c.want)
		}
	}
}

func TestRateTicksPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RateTicks(-1) did not panic")
		}
	}()
	RateTicks(-1)
}
