package mavlink

import (
	"testing"

	"containerdrone/internal/sensors"
)

// TestAppendEncodeSteadyStateAllocs pins the zero-allocation contract
// of the scratch-buffer encode path and the zero-copy decode: one
// payload encode + frame encode + decode cycle must not allocate once
// the scratch buffers have their capacity.
func TestAppendEncodeSteadyStateAllocs(t *testing.T) {
	var payloadBuf, frameBuf []byte
	imu := sensors.IMUReading{TimeUS: 42}
	cycle := func() {
		var p []byte
		payloadBuf, p = AppendIMU(payloadBuf[:0], imu)
		frameBuf = AppendEncode(frameBuf[:0], Frame{
			Seq: 1, SysID: 1, CompID: 1, MsgID: MsgIDIMU, Payload: p,
		})
		if _, _, err := Decode(frameBuf); err != nil {
			t.Fatalf("Decode: %v", err)
		}
	}
	cycle() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("encode+decode cycle allocates %.1f times, want 0", allocs)
	}
}

// TestAppendMotorSteadyStateAllocs covers the 400 Hz motor-output
// stream, the hottest encode path in the flood scenario.
func TestAppendMotorSteadyStateAllocs(t *testing.T) {
	var payloadBuf, frameBuf []byte
	cmd := MotorCommand{TimeUS: 7, Motors: [4]float64{0.5, 0.5, 0.5, 0.5}, Seq: 9, Armed: true}
	cycle := func() {
		var p []byte
		payloadBuf, p = AppendMotor(payloadBuf[:0], cmd)
		frameBuf = AppendEncode(frameBuf[:0], Frame{
			Seq: uint8(cmd.Seq), SysID: 2, CompID: 1, MsgID: MsgIDMotor, Payload: p,
		})
		frame, _, err := Decode(frameBuf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if _, err := DecodeMotor(frame.Payload); err != nil {
			t.Fatalf("DecodeMotor: %v", err)
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("motor encode+decode cycle allocates %.1f times, want 0", allocs)
	}
}

// TestAppendVariantsMatchEncode pins the append-style encoders to the
// allocating originals byte for byte.
func TestAppendVariantsMatchEncode(t *testing.T) {
	imu := sensors.IMUReading{TimeUS: 1}
	if _, p := AppendIMU(nil, imu); string(p) != string(EncodeIMU(imu)) {
		t.Fatal("AppendIMU disagrees with EncodeIMU")
	}
	baro := sensors.BaroReading{TimeUS: 2, Pressure: 1013.25}
	if _, p := AppendBaro(nil, baro); string(p) != string(EncodeBaro(baro)) {
		t.Fatal("AppendBaro disagrees with EncodeBaro")
	}
	gps := sensors.GPSReading{TimeUS: 3, NumSats: 9, FixOK: true}
	if _, p := AppendGPS(nil, gps); string(p) != string(EncodeGPS(gps)) {
		t.Fatal("AppendGPS disagrees with EncodeGPS")
	}
	rc := sensors.RCReading{TimeUS: 4, Throttle: 0.5}
	if _, p := AppendRC(nil, rc); string(p) != string(EncodeRC(rc)) {
		t.Fatal("AppendRC disagrees with EncodeRC")
	}
	m := MotorCommand{TimeUS: 5, Seq: 6, Armed: true}
	if _, p := AppendMotor(nil, m); string(p) != string(EncodeMotor(m)) {
		t.Fatal("AppendMotor disagrees with EncodeMotor")
	}
	f := Frame{Seq: 7, SysID: 1, CompID: 2, MsgID: MsgIDMotor, Payload: make([]byte, MotorPayloadSize)}
	if got := AppendEncode(nil, f); string(got) != string(Encode(f)) {
		t.Fatal("AppendEncode disagrees with Encode")
	}
	// Appending onto existing content extends rather than overwrites.
	prefix := []byte{0xAA, 0xBB}
	out := AppendEncode(prefix, f)
	if string(out[:2]) != string(prefix) || string(out[2:]) != string(Encode(f)) {
		t.Fatal("AppendEncode does not append after existing bytes")
	}
}
