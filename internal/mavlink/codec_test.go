package mavlink

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := Frame{Seq: 7, SysID: 1, CompID: 2, MsgID: MsgIDMotor, Payload: make([]byte, MotorPayloadSize)}
	for i := range f.Payload {
		f.Payload[i] = byte(i * 3)
	}
	wire := Encode(f)
	got, n, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d, want %d", n, len(wire))
	}
	if got.Seq != f.Seq || got.SysID != f.SysID || got.CompID != f.CompID || got.MsgID != f.MsgID {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range f.Payload {
		if got.Payload[i] != f.Payload[i] {
			t.Fatalf("payload byte %d mismatch", i)
		}
	}
}

func TestWireSizesMatchTableI(t *testing.T) {
	// The paper's Table I: IMU 52, Baro 32, GPS 44, RC 50, Motor 29.
	cases := []struct {
		id   uint8
		want int
	}{
		{MsgIDIMU, 52},
		{MsgIDBaro, 32},
		{MsgIDGPS, 44},
		{MsgIDRC, 50},
		{MsgIDMotor, 29},
	}
	for _, c := range cases {
		f := Frame{MsgID: c.id, Payload: make([]byte, PayloadSize(c.id))}
		if got := len(Encode(f)); got != c.want {
			t.Errorf("%s frame size = %d, want %d", MessageName(c.id), got, c.want)
		}
		if f.WireSize() != c.want {
			t.Errorf("%s WireSize = %d, want %d", MessageName(c.id), f.WireSize(), c.want)
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	wire := Encode(Frame{MsgID: MsgIDBaro, Payload: make([]byte, BaroPayloadSize)})
	wire[0] = 0x55
	if _, _, err := Decode(wire); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	wire := Encode(Frame{MsgID: MsgIDGPS, Payload: make([]byte, GPSPayloadSize)})
	if _, _, err := Decode(wire[:5]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
	if _, _, err := Decode(wire[:len(wire)-1]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	wire := Encode(Frame{MsgID: MsgIDIMU, Payload: make([]byte, IMUPayloadSize)})
	wire[10] ^= 0xFF
	if _, _, err := Decode(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsCorruptCRC(t *testing.T) {
	wire := Encode(Frame{MsgID: MsgIDIMU, Payload: make([]byte, IMUPayloadSize)})
	wire[len(wire)-1] ^= 0x01
	if _, _, err := Decode(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsUnknownMessage(t *testing.T) {
	f := Frame{MsgID: 200, Payload: []byte{1, 2, 3}}
	wire := Encode(f)
	_, n, err := Decode(wire)
	if !errors.Is(err, ErrUnknownMsg) {
		t.Fatalf("err = %v, want ErrUnknownMsg", err)
	}
	if n != len(wire) {
		t.Fatalf("unknown message consumed %d bytes, want %d to allow resync", n, len(wire))
	}
}

func TestDecodeDifferentMessagesProtectedByCRCExtra(t *testing.T) {
	// A frame re-labeled with another message id of the same payload
	// size must fail the checksum because CRC_EXTRA differs.
	f := Frame{MsgID: MsgIDIMU, Payload: make([]byte, IMUPayloadSize)}
	wire := Encode(f)
	if PayloadSize(MsgIDIMU) == PayloadSize(MsgIDBaro) {
		t.Skip("sizes equal; relabel test needs distinct crcExtra check elsewhere")
	}
	wire[5] = MsgIDBaro // relabel; length byte now also wrong, but CRC fires first or ShortFrame
	if _, _, err := Decode(wire); err == nil {
		t.Fatal("relabeled frame decoded successfully")
	}
}

func TestEncodePanicsOnOversizePayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize payload did not panic")
		}
	}()
	Encode(Frame{MsgID: MsgIDIMU, Payload: make([]byte, 300)})
}

func TestMessageNames(t *testing.T) {
	if MessageName(MsgIDIMU) != "IMU" || MessageName(MsgIDMotor) != "MOTOR" {
		t.Fatal("registered names wrong")
	}
	if MessageName(250) != "unknown(250)" {
		t.Fatalf("unknown name = %q", MessageName(250))
	}
	if PayloadSize(250) != -1 {
		t.Fatal("unknown PayloadSize should be -1")
	}
}

func TestCRCKnownVector(t *testing.T) {
	// MAVLink's checksum is CRC-16/MCRF4XX (the X.25 polynomial with
	// init 0xFFFF and no final xor); its check value for "123456789"
	// is 0x6F91.
	crc := uint16(0xFFFF)
	for _, b := range []byte("123456789") {
		crc = crcAccumulate(b, crc)
	}
	if crc != 0x6F91 {
		t.Fatalf("CRC(123456789) = %#x, want 0x6f91", crc)
	}
}

// TestCRCSlicingMatchesByteAtATime pins the slicing-by-4 loop to the
// reference byte-at-a-time recurrence for every length 0..257 and a
// range of contents, including the lengths that exercise each tail
// residue.
func TestCRCSlicingMatchesByteAtATime(t *testing.T) {
	ref := func(data []byte, extra byte) uint16 {
		crc := uint16(0xFFFF)
		for _, b := range data {
			crc = crcAccumulate(b, crc)
		}
		return crcAccumulate(extra, crc)
	}
	state := uint32(1)
	next := func() byte {
		state = state*1664525 + 1013904223
		return byte(state >> 24)
	}
	buf := make([]byte, 257)
	for trial := 0; trial < 50; trial++ {
		for i := range buf {
			buf[i] = next()
		}
		extra := next()
		for n := 0; n <= len(buf); n++ {
			if got, want := crcX25(buf[:n], extra), ref(buf[:n], extra); got != want {
				t.Fatalf("crcX25 len=%d = %#x, reference %#x", n, got, want)
			}
		}
	}
}

// Property: any payload of the registered size round-trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq, sysid uint8, raw []byte) bool {
		payload := make([]byte, RCPayloadSize)
		copy(payload, raw)
		fr := Frame{Seq: seq, SysID: sysid, MsgID: MsgIDRC, Payload: payload}
		got, _, err := Decode(Encode(fr))
		if err != nil {
			return false
		}
		if got.Seq != seq || got.SysID != sysid {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: single-byte corruption anywhere after the magic byte is
// always detected (CRC or structural error).
func TestCorruptionDetectedProperty(t *testing.T) {
	f := func(pos uint8, bit uint8, raw []byte) bool {
		payload := make([]byte, BaroPayloadSize)
		copy(payload, raw)
		wire := Encode(Frame{MsgID: MsgIDBaro, Payload: payload})
		p := 1 + int(pos)%(len(wire)-1) // skip magic: corrupting it is ErrBadMagic trivially
		mut := append([]byte(nil), wire...)
		mut[p] ^= 1 << (bit % 8)
		_, _, err := Decode(mut)
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
