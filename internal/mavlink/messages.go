package mavlink

import (
	"encoding/binary"
	"fmt"
	"math"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// Message ids for the five Table-I streams.
const (
	MsgIDIMU   uint8 = 30 // ATTITUDE-class inertial sample
	MsgIDBaro  uint8 = 29 // SCALED_PRESSURE-class
	MsgIDGPS   uint8 = 32 // LOCAL_POSITION-class (Vicon feed)
	MsgIDRC    uint8 = 65 // RC_CHANNELS-class
	MsgIDMotor uint8 = 36 // SERVO_OUTPUT-class actuator command
)

// Payload sizes chosen so frame sizes match Table I exactly
// (payload + 8 bytes overhead).
const (
	IMUPayloadSize   = 44 // → 52-byte frame
	BaroPayloadSize  = 24 // → 32-byte frame
	GPSPayloadSize   = 36 // → 44-byte frame
	RCPayloadSize    = 42 // → 50-byte frame
	MotorPayloadSize = 21 // → 29-byte frame
)

func init() {
	registerMessage(MsgIDIMU, "IMU", IMUPayloadSize, 39)
	registerMessage(MsgIDBaro, "BARO", BaroPayloadSize, 115)
	registerMessage(MsgIDGPS, "GPS", GPSPayloadSize, 185)
	registerMessage(MsgIDRC, "RC", RCPayloadSize, 118)
	registerMessage(MsgIDMotor, "MOTOR", MotorPayloadSize, 222)
}

func putF32(b []byte, v float64) { binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v))) }
func getF32(b []byte) float64    { return float64(math.Float32frombits(binary.LittleEndian.Uint32(b))) }

// grow extends dst by n zeroed bytes and returns the extension —
// allocation-free when dst has capacity. Zeroing matters: encoders
// leave pad/aux bytes unwritten and scratch buffers are reused.
func grow(dst []byte, n int) (out, ext []byte) {
	l := len(dst)
	if l+n <= cap(dst) {
		out = dst[:l+n]
		ext = out[l:]
		clear(ext)
		return out, ext
	}
	out = make([]byte, l+n)
	copy(out, dst)
	return out, out[l:]
}

// EncodeIMU packs an IMU reading: time(8) gyro(12) accel(12) rpy(12).
// The Append variants of each encoder write onto a caller scratch
// buffer instead, so steady-state encoding is allocation-free.
func EncodeIMU(r sensors.IMUReading) []byte {
	out, _ := AppendIMU(make([]byte, 0, IMUPayloadSize), r)
	return out
}

// AppendIMU appends an IMU payload to dst, returning the extended
// slice and the payload region just written.
func AppendIMU(dst []byte, r sensors.IMUReading) (out, payload []byte) {
	out, p := grow(dst, IMUPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], r.TimeUS)
	putF32(p[8:], r.Gyro.X)
	putF32(p[12:], r.Gyro.Y)
	putF32(p[16:], r.Gyro.Z)
	putF32(p[20:], r.Accel.X)
	putF32(p[24:], r.Accel.Y)
	putF32(p[28:], r.Accel.Z)
	roll, pitch, yaw := r.Quat.Euler()
	putF32(p[32:], roll)
	putF32(p[36:], pitch)
	putF32(p[40:], yaw)
	return out, p
}

// DecodeIMU unpacks an IMU payload. The attitude quaternion is
// reconstructed from the transported Euler angles.
func DecodeIMU(p []byte) (sensors.IMUReading, error) {
	if len(p) != IMUPayloadSize {
		return sensors.IMUReading{}, fmt.Errorf("mavlink: IMU payload %d bytes, want %d", len(p), IMUPayloadSize)
	}
	var r sensors.IMUReading
	r.TimeUS = binary.LittleEndian.Uint64(p[0:])
	r.Gyro = physics.Vec3{X: getF32(p[8:]), Y: getF32(p[12:]), Z: getF32(p[16:])}
	r.Accel = physics.Vec3{X: getF32(p[20:]), Y: getF32(p[24:]), Z: getF32(p[28:])}
	r.Quat = physics.FromEuler(getF32(p[32:]), getF32(p[36:]), getF32(p[40:]))
	return r, nil
}

// EncodeBaro packs a barometer reading:
// time(8) pressure-f64(8) alt(4) temp(4).
func EncodeBaro(r sensors.BaroReading) []byte {
	out, _ := AppendBaro(make([]byte, 0, BaroPayloadSize), r)
	return out
}

// AppendBaro appends a barometer payload to dst.
func AppendBaro(dst []byte, r sensors.BaroReading) (out, payload []byte) {
	out, p := grow(dst, BaroPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], r.TimeUS)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(r.Pressure))
	putF32(p[16:], r.AltM)
	putF32(p[20:], r.TempC)
	return out, p
}

// DecodeBaro unpacks a barometer payload.
func DecodeBaro(p []byte) (sensors.BaroReading, error) {
	if len(p) != BaroPayloadSize {
		return sensors.BaroReading{}, fmt.Errorf("mavlink: BARO payload %d bytes, want %d", len(p), BaroPayloadSize)
	}
	var r sensors.BaroReading
	r.TimeUS = binary.LittleEndian.Uint64(p[0:])
	r.Pressure = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	r.AltM = getF32(p[16:])
	r.TempC = getF32(p[20:])
	return r, nil
}

// EncodeGPS packs a position fix: time(8) pos(12) vel(12) sats(1)
// fix(1) pad(2).
func EncodeGPS(r sensors.GPSReading) []byte {
	out, _ := AppendGPS(make([]byte, 0, GPSPayloadSize), r)
	return out
}

// AppendGPS appends a position payload to dst.
func AppendGPS(dst []byte, r sensors.GPSReading) (out, payload []byte) {
	out, p := grow(dst, GPSPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], r.TimeUS)
	putF32(p[8:], r.Pos.X)
	putF32(p[12:], r.Pos.Y)
	putF32(p[16:], r.Pos.Z)
	putF32(p[20:], r.Vel.X)
	putF32(p[24:], r.Vel.Y)
	putF32(p[28:], r.Vel.Z)
	p[32] = r.NumSats
	if r.FixOK {
		p[33] = 1
	}
	return out, p
}

// DecodeGPS unpacks a position payload.
func DecodeGPS(p []byte) (sensors.GPSReading, error) {
	if len(p) != GPSPayloadSize {
		return sensors.GPSReading{}, fmt.Errorf("mavlink: GPS payload %d bytes, want %d", len(p), GPSPayloadSize)
	}
	var r sensors.GPSReading
	r.TimeUS = binary.LittleEndian.Uint64(p[0:])
	r.Pos = physics.Vec3{X: getF32(p[8:]), Y: getF32(p[12:]), Z: getF32(p[16:])}
	r.Vel = physics.Vec3{X: getF32(p[20:]), Y: getF32(p[24:]), Z: getF32(p[28:])}
	r.NumSats = p[32]
	r.FixOK = p[33] == 1
	return r, nil
}

// EncodeRC packs a pilot-input frame: time(8) chan[8]-f32(32) mode(1)
// flags(1). Channels 0-3 carry roll/pitch/yaw/throttle; 4-7 are the
// aux channels a real RC link transports.
func EncodeRC(r sensors.RCReading) []byte {
	out, _ := AppendRC(make([]byte, 0, RCPayloadSize), r)
	return out
}

// AppendRC appends a pilot-input payload to dst.
func AppendRC(dst []byte, r sensors.RCReading) (out, payload []byte) {
	out, p := grow(dst, RCPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], r.TimeUS)
	putF32(p[8:], r.Roll)
	putF32(p[12:], r.Pitch)
	putF32(p[16:], r.Yaw)
	putF32(p[20:], r.Throttle)
	// Aux channels 4..7 are zero.
	p[40] = byte(r.Mode)
	return out, p
}

// DecodeRC unpacks a pilot-input payload.
func DecodeRC(p []byte) (sensors.RCReading, error) {
	if len(p) != RCPayloadSize {
		return sensors.RCReading{}, fmt.Errorf("mavlink: RC payload %d bytes, want %d", len(p), RCPayloadSize)
	}
	var r sensors.RCReading
	r.TimeUS = binary.LittleEndian.Uint64(p[0:])
	r.Roll = getF32(p[8:])
	r.Pitch = getF32(p[12:])
	r.Yaw = getF32(p[16:])
	r.Throttle = getF32(p[20:])
	r.Mode = sensors.FlightMode(p[40])
	return r, nil
}

// MotorCommand is the actuator output message: four normalized motor
// throttles plus a sequence number the security monitor uses to detect
// stale or missing outputs.
type MotorCommand struct {
	TimeUS uint64
	Motors [4]float64 // normalized [0,1]
	Seq    uint32
	Armed  bool
}

// EncodeMotor packs the actuator command: time(8) motors-u16[4](8)
// seq(4) flags(1). Throttles quantize to 16 bits like PWM outputs.
func EncodeMotor(m MotorCommand) []byte {
	out, _ := AppendMotor(make([]byte, 0, MotorPayloadSize), m)
	return out
}

// AppendMotor appends an actuator-command payload to dst.
func AppendMotor(dst []byte, m MotorCommand) (out, payload []byte) {
	out, p := grow(dst, MotorPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], m.TimeUS)
	for i, v := range m.Motors {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		binary.LittleEndian.PutUint16(p[8+2*i:], uint16(v*65535+0.5))
	}
	binary.LittleEndian.PutUint32(p[16:], m.Seq)
	if m.Armed {
		p[20] = 1
	}
	return out, p
}

// DecodeMotor unpacks an actuator command payload.
func DecodeMotor(p []byte) (MotorCommand, error) {
	if len(p) != MotorPayloadSize {
		return MotorCommand{}, fmt.Errorf("mavlink: MOTOR payload %d bytes, want %d", len(p), MotorPayloadSize)
	}
	var m MotorCommand
	m.TimeUS = binary.LittleEndian.Uint64(p[0:])
	for i := range m.Motors {
		m.Motors[i] = float64(binary.LittleEndian.Uint16(p[8+2*i:])) / 65535
	}
	m.Seq = binary.LittleEndian.Uint32(p[16:])
	m.Armed = p[20] == 1
	return m, nil
}
