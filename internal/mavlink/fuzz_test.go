package mavlink

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the frame parser against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to the
// same wire bytes (the receiver faces exactly this input during the
// UDP flood, whose payloads are attacker-controlled).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Frame{MsgID: MsgIDMotor, Payload: make([]byte, MotorPayloadSize)}))
	f.Add(Encode(Frame{MsgID: MsgIDIMU, Seq: 7, Payload: make([]byte, IMUPayloadSize)}))
	f.Add([]byte{})
	f.Add([]byte{0xFE})
	f.Add(bytes.Repeat([]byte{0xA5}, 64)) // the flood payload
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := Encode(frame)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data[:n], re)
		}
	})
}

// FuzzDecodeMessages feeds arbitrary payloads to every message
// decoder; none may panic.
func FuzzDecodeMessages(f *testing.F) {
	f.Add(make([]byte, IMUPayloadSize))
	f.Add(make([]byte, MotorPayloadSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		_, _ = DecodeIMU(p)
		_, _ = DecodeBaro(p)
		_, _ = DecodeGPS(p)
		_, _ = DecodeRC(p)
		_, _ = DecodeMotor(p)
	})
}
