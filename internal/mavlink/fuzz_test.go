package mavlink

import (
	"bytes"
	"testing"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

// FuzzDecode exercises the frame parser against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to the
// same wire bytes (the receiver faces exactly this input during the
// UDP flood, whose payloads are attacker-controlled).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Frame{MsgID: MsgIDMotor, Payload: make([]byte, MotorPayloadSize)}))
	f.Add(Encode(Frame{MsgID: MsgIDIMU, Seq: 7, Payload: make([]byte, IMUPayloadSize)}))
	f.Add([]byte{})
	f.Add([]byte{0xFE})
	f.Add(bytes.Repeat([]byte{0xA5}, 64)) // the flood payload
	// Captured-traffic seeds: frames as the wire actually carries them
	// mid-flight, plus the mutations the replay/jitter faults produce
	// (truncation, a flipped CRC byte, two frames back to back).
	for _, frame := range capturedFrames() {
		f.Add(frame)
		if len(frame) > 4 {
			f.Add(frame[:len(frame)/2]) // truncated mid-payload
			bad := append([]byte(nil), frame...)
			bad[len(bad)-1] ^= 0xFF // corrupted checksum
			f.Add(bad)
		}
	}
	all := capturedFrames()
	f.Add(append(append([]byte(nil), all[0]...), all[1]...)) // coalesced datagrams
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := Encode(frame)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data[:n], re)
		}
	})
}

// capturedFrames returns realistic Table-I frames — the seed corpus
// a bridge tap would record in steady flight: every stream with
// in-envelope values and live sequence/timestamp fields.
func capturedFrames() [][]byte {
	imu := sensors.IMUReading{
		TimeUS: 12_504_000,
		Gyro:   physics.Vec3{X: 0.01, Y: -0.02, Z: 0.001},
		Accel:  physics.Vec3{Z: 9.81},
		Quat:   physics.FromEuler(0.02, -0.01, 0.5),
	}
	baro := sensors.BaroReading{TimeUS: 12_500_000, Pressure: 101322.7, AltM: 1.002, TempC: 22}
	gps := sensors.GPSReading{
		TimeUS: 12_500_000,
		Pos:    physics.Vec3{X: 0.01, Y: -0.02, Z: 1.0},
		Vel:    physics.Vec3{X: 0.1}, NumSats: 12, FixOK: true,
	}
	rc := sensors.RCReading{TimeUS: 12_500_000, Throttle: 0.5, Mode: sensors.ModePosition}
	motor := MotorCommand{TimeUS: 12_502_500, Motors: [4]float64{0.52, 0.51, 0.52, 0.51}, Seq: 5001, Armed: true}
	return [][]byte{
		Encode(Frame{Seq: 17, SysID: 1, CompID: 1, MsgID: MsgIDIMU, Payload: EncodeIMU(imu)}),
		Encode(Frame{Seq: 18, SysID: 1, CompID: 1, MsgID: MsgIDBaro, Payload: EncodeBaro(baro)}),
		Encode(Frame{Seq: 19, SysID: 1, CompID: 1, MsgID: MsgIDGPS, Payload: EncodeGPS(gps)}),
		Encode(Frame{Seq: 20, SysID: 1, CompID: 1, MsgID: MsgIDRC, Payload: EncodeRC(rc)}),
		Encode(Frame{Seq: 201, SysID: 2, CompID: 1, MsgID: MsgIDMotor, Payload: EncodeMotor(motor)}),
	}
}

// FuzzDecodeMessages feeds arbitrary payloads to every message
// decoder; none may panic.
func FuzzDecodeMessages(f *testing.F) {
	f.Add(make([]byte, IMUPayloadSize))
	f.Add(make([]byte, MotorPayloadSize))
	f.Add([]byte{})
	for _, frame := range capturedFrames() {
		f.Add(frame[6 : len(frame)-2]) // the payload region of each capture
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		_, _ = DecodeIMU(p)
		_, _ = DecodeBaro(p)
		_, _ = DecodeGPS(p)
		_, _ = DecodeRC(p)
		_, _ = DecodeMotor(p)
	})
}
