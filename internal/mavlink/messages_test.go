package mavlink

import (
	"math"
	"testing"
	"testing/quick"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

func TestIMURoundTrip(t *testing.T) {
	in := sensors.IMUReading{
		TimeUS: 1234567,
		Gyro:   physics.Vec3{X: 0.1, Y: -0.2, Z: 0.3},
		Accel:  physics.Vec3{X: 0.01, Y: 0.02, Z: 9.81},
		Quat:   physics.FromEuler(0.1, -0.05, 0.7),
	}
	p := EncodeIMU(in)
	if len(p) != IMUPayloadSize {
		t.Fatalf("payload size %d, want %d", len(p), IMUPayloadSize)
	}
	out, err := DecodeIMU(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeUS != in.TimeUS {
		t.Fatalf("TimeUS %d != %d", out.TimeUS, in.TimeUS)
	}
	if math.Abs(out.Gyro.X-0.1) > 1e-6 || math.Abs(out.Gyro.Z-0.3) > 1e-6 {
		t.Fatalf("gyro = %v", out.Gyro)
	}
	ri, pi, yi := in.Quat.Euler()
	ro, po, yo := out.Quat.Euler()
	if math.Abs(ri-ro) > 1e-6 || math.Abs(pi-po) > 1e-6 || math.Abs(yi-yo) > 1e-6 {
		t.Fatalf("attitude (%v,%v,%v) != (%v,%v,%v)", ro, po, yo, ri, pi, yi)
	}
}

func TestBaroRoundTrip(t *testing.T) {
	in := sensors.BaroReading{TimeUS: 42, Pressure: 101300.5, AltM: 1.25, TempC: 22}
	out, err := DecodeBaro(EncodeBaro(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeUS != 42 || out.Pressure != 101300.5 {
		t.Fatalf("out = %+v", out)
	}
	if math.Abs(out.AltM-1.25) > 1e-6 {
		t.Fatalf("alt = %v", out.AltM)
	}
}

func TestGPSRoundTrip(t *testing.T) {
	in := sensors.GPSReading{
		TimeUS:  99,
		Pos:     physics.Vec3{X: 1.5, Y: -2.25, Z: 0.75},
		Vel:     physics.Vec3{X: 0.125},
		NumSats: 12,
		FixOK:   true,
	}
	out, err := DecodeGPS(EncodeGPS(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Pos != in.Pos || out.Vel != in.Vel {
		t.Fatalf("pos/vel mismatch: %+v", out)
	}
	if out.NumSats != 12 || !out.FixOK {
		t.Fatalf("fix fields: %+v", out)
	}
}

func TestRCRoundTrip(t *testing.T) {
	in := sensors.RCReading{TimeUS: 5, Roll: 0.25, Pitch: -0.5, Yaw: 0.125, Throttle: 0.75, Mode: sensors.ModePosition}
	out, err := DecodeRC(EncodeRC(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("out = %+v, want %+v", out, in)
	}
}

func TestMotorRoundTrip(t *testing.T) {
	in := MotorCommand{TimeUS: 777, Motors: [4]float64{0, 0.25, 0.5, 1}, Seq: 123456, Armed: true}
	out, err := DecodeMotor(EncodeMotor(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeUS != 777 || out.Seq != 123456 || !out.Armed {
		t.Fatalf("out = %+v", out)
	}
	for i := range in.Motors {
		if math.Abs(out.Motors[i]-in.Motors[i]) > 1.0/65535 {
			t.Fatalf("motor %d: %v vs %v", i, out.Motors[i], in.Motors[i])
		}
	}
}

func TestMotorClampsOutOfRange(t *testing.T) {
	in := MotorCommand{Motors: [4]float64{-0.5, 1.5, 0.5, 0.5}}
	out, err := DecodeMotor(EncodeMotor(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Motors[0] != 0 || out.Motors[1] != 1 {
		t.Fatalf("clamping failed: %v", out.Motors)
	}
}

func TestDecodersRejectWrongSizes(t *testing.T) {
	if _, err := DecodeIMU(make([]byte, 10)); err == nil {
		t.Fatal("IMU accepted short payload")
	}
	if _, err := DecodeBaro(make([]byte, 100)); err == nil {
		t.Fatal("Baro accepted long payload")
	}
	if _, err := DecodeGPS(nil); err == nil {
		t.Fatal("GPS accepted nil payload")
	}
	if _, err := DecodeRC(make([]byte, RCPayloadSize-1)); err == nil {
		t.Fatal("RC accepted short payload")
	}
	if _, err := DecodeMotor(make([]byte, MotorPayloadSize+1)); err == nil {
		t.Fatal("Motor accepted long payload")
	}
}

// Property: motor quantization error is bounded by one LSB of the
// 16-bit PWM encoding for any in-range command.
func TestMotorQuantizationProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		m := MotorCommand{Motors: [4]float64{frac(a), frac(b), frac(c), frac(d)}}
		out, err := DecodeMotor(EncodeMotor(m))
		if err != nil {
			return false
		}
		for i := range m.Motors {
			if math.Abs(out.Motors[i]-m.Motors[i]) > 1.0/65535 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(x, 1))
}

// Property: full frame encode→decode round trip for IMU readings.
func TestIMUFrameRoundTripProperty(t *testing.T) {
	f := func(gx, gy, gz float64, tus uint64) bool {
		in := sensors.IMUReading{
			TimeUS: tus,
			Gyro:   physics.Vec3{X: trim(gx), Y: trim(gy), Z: trim(gz)},
			Quat:   physics.IdentityQuat(),
		}
		wire := Encode(Frame{MsgID: MsgIDIMU, Payload: EncodeIMU(in)})
		fr, _, err := Decode(wire)
		if err != nil {
			return false
		}
		out, err := DecodeIMU(fr.Payload)
		if err != nil {
			return false
		}
		return out.TimeUS == tus && math.Abs(out.Gyro.X-trim(gx)) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func trim(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 10)
}
