// Package mavlink implements the lightweight robotic messaging
// protocol the HCE and CCE exchange sensor data and actuator commands
// over (Table I of the paper). The frame layout follows MAVLink v1:
//
//	magic(1) len(1) seq(1) sysid(1) compid(1) msgid(1) payload(len) crc(2)
//
// giving 8 bytes of overhead, so the five Table-I message payloads are
// sized to reproduce the paper's exact on-wire sizes: IMU 52 B,
// barometer 32 B, GPS 44 B, RC 50 B, motor output 29 B.
//
// The checksum is the MAVLink CRC-16 (MCRF4XX variant of the X.25
// polynomial, init 0xFFFF, no final xor), covering everything after
// the magic byte plus a per-message CRC_EXTRA seed byte, exactly as
// the real protocol does.
package mavlink

import (
	"errors"
	"fmt"
)

// Magic is the MAVLink v1 start-of-frame marker.
const Magic = 0xFE

// Overhead is the number of non-payload bytes in a frame.
const Overhead = 8

// Frame is a decoded MAVLink frame.
type Frame struct {
	Seq     uint8
	SysID   uint8
	CompID  uint8
	MsgID   uint8
	Payload []byte
}

// WireSize returns the total encoded size of the frame.
func (f Frame) WireSize() int { return Overhead + len(f.Payload) }

// Errors returned by Decode.
var (
	ErrShortFrame  = errors.New("mavlink: frame truncated")
	ErrBadMagic    = errors.New("mavlink: bad start marker")
	ErrBadChecksum = errors.New("mavlink: checksum mismatch")
	ErrUnknownMsg  = errors.New("mavlink: unknown message id")
)

// crcTable precomputes the per-byte X25 CRC step: crcAccumulate's
// output depends on the input byte only through tmp = x ^ x<<4 of
// x = b ^ crc&0xFF, so one 256-entry table replaces the shift chain.
var crcTable = func() (t [256]uint16) {
	for i := range t {
		tmp := byte(i) ^ byte(i)<<4
		t[i] = uint16(tmp)<<8 ^ uint16(tmp)<<3 ^ uint16(tmp)>>4
	}
	return
}()

// crcAccumulate folds one byte into the X25 CRC state.
func crcAccumulate(b byte, crc uint16) uint16 {
	return (crc >> 8) ^ crcTable[b^byte(crc&0xFF)]
}

// crcTables extends crcTable with slicing tables: crcTables[k][b] is
// T[b] advanced through k zero bytes, where T is the per-byte step
// table and "advance" is A(v) = v>>8 ^ T[v&0xFF]. The CRC update is
// GF(2)-linear — step(crc, b) = A(crc) ^ T[b] — so four input bytes
// fold with four independent table lookups instead of a four-deep
// serial dependency chain (standard slicing-by-4, 16-bit variant).
var crcTables = func() (t [4][256]uint16) {
	t[0] = crcTable
	for k := 1; k < 4; k++ {
		for b := range t[k] {
			v := t[k-1][b]
			t[k][b] = v>>8 ^ crcTable[v&0xFF]
		}
	}
	return
}()

// crcX25 computes the checksum over data, then folds in extra. The
// MAVLink frame body is covered per frame on both the encode and the
// decode side at stream rates, so the loop is slicing-by-4; the
// byte-at-a-time tail matches crcAccumulate exactly.
func crcX25(data []byte, extra byte) uint16 {
	crc := uint16(0xFFFF)
	for len(data) >= 4 {
		x1 := crc ^ (uint16(data[0]) | uint16(data[1])<<8)
		x2 := uint16(data[2]) | uint16(data[3])<<8
		crc = crcTables[3][x1&0xFF] ^ crcTables[2][x1>>8] ^
			crcTables[1][x2&0xFF] ^ crcTables[0][x2>>8]
		data = data[4:]
	}
	for _, b := range data {
		crc = crcAccumulate(b, crc)
	}
	return crcAccumulate(extra, crc)
}

// crcExtra returns the per-message CRC seed byte. Unknown message ids
// get seed 0; Decode rejects them before checksum verification anyway.
func crcExtra(msgID uint8) byte {
	return registry[msgID].crcExtra
}

// Encode serializes the frame. The caller owns the returned slice.
func Encode(f Frame) []byte {
	return AppendEncode(make([]byte, 0, f.WireSize()), f)
}

// AppendEncode serializes the frame onto dst and returns the extended
// slice — the steady-state encode path: a per-stream scratch buffer
// passed as dst[:0] makes repeated encoding allocation-free.
func AppendEncode(dst []byte, f Frame) []byte {
	if len(f.Payload) > 255 {
		panic(fmt.Sprintf("mavlink: payload %d bytes exceeds 255", len(f.Payload)))
	}
	start := len(dst)
	dst = append(dst, Magic, byte(len(f.Payload)), f.Seq, f.SysID, f.CompID, f.MsgID)
	dst = append(dst, f.Payload...)
	crc := crcX25(dst[start+1:], crcExtra(f.MsgID))
	return append(dst, byte(crc&0xFF), byte(crc>>8))
}

// Decode parses one frame from the start of data. It returns the
// frame and the number of bytes consumed.
//
// Ownership: the returned frame's Payload aliases data — no copy is
// made, so decoding is allocation-free. Callers that retain the
// payload beyond the lifetime of data (e.g. past a netsim receive
// call that recycles the buffer) must copy it.
func Decode(data []byte) (Frame, int, error) {
	if len(data) < Overhead {
		return Frame{}, 0, ErrShortFrame
	}
	if data[0] != Magic {
		return Frame{}, 0, ErrBadMagic
	}
	plen := int(data[1])
	total := Overhead + plen
	if len(data) < total {
		return Frame{}, 0, ErrShortFrame
	}
	f := Frame{
		Seq:     data[2],
		SysID:   data[3],
		CompID:  data[4],
		MsgID:   data[5],
		Payload: data[6 : 6+plen : 6+plen],
	}
	if !registry[f.MsgID].known {
		return Frame{}, total, fmt.Errorf("%w: %d", ErrUnknownMsg, f.MsgID)
	}
	want := uint16(data[total-2]) | uint16(data[total-1])<<8
	got := crcX25(data[1:total-2], crcExtra(f.MsgID))
	if got != want {
		return Frame{}, total, ErrBadChecksum
	}
	return f, total, nil
}

// registryEntry describes one known message type.
type registryEntry struct {
	name        string
	payloadSize int
	crcExtra    byte
	known       bool
}

// registry is indexed directly by message id: the id is a uint8, so a
// dense array turns the per-frame lookups in Decode and AppendEncode
// (twice per frame, at the Table-I stream rates) into a bounds-free
// load instead of a map hash.
var registry [256]registryEntry

// registerMessage declares a message type; called from init in
// messages.go. Duplicate ids are a programming error.
func registerMessage(id uint8, name string, payloadSize int, crcExtra byte) {
	if registry[id].known {
		panic(fmt.Sprintf("mavlink: duplicate message id %d", id))
	}
	registry[id] = registryEntry{name: name, payloadSize: payloadSize, crcExtra: crcExtra, known: true}
}

// RegisterExternal declares a message type defined outside this
// package (e.g. the GCS link's telemetry/setpoint messages). It panics
// on a duplicate id, which is a wiring bug: message ids are a global
// protocol namespace.
func RegisterExternal(id uint8, name string, payloadSize int, crcExtra byte) {
	registerMessage(id, name, payloadSize, crcExtra)
}

// MessageName returns the registered name for a message id.
func MessageName(id uint8) string {
	if e := registry[id]; e.known {
		return e.name
	}
	return fmt.Sprintf("unknown(%d)", id)
}

// PayloadSize returns the registered payload size for a message id,
// or -1 if unknown.
func PayloadSize(id uint8) int {
	if e := registry[id]; e.known {
		return e.payloadSize
	}
	return -1
}
