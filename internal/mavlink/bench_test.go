package mavlink

import (
	"testing"

	"containerdrone/internal/physics"
	"containerdrone/internal/sensors"
)

func BenchmarkEncodeIMUFrame(b *testing.B) {
	r := sensors.IMUReading{
		TimeUS: 123456,
		Gyro:   physics.Vec3{X: 0.1, Y: -0.2, Z: 0.05},
		Accel:  physics.Vec3{Z: 9.81},
		Quat:   physics.FromEuler(0.1, 0.05, 0.7),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(Frame{MsgID: MsgIDIMU, Payload: EncodeIMU(r)})
	}
}

func BenchmarkDecodeIMUFrame(b *testing.B) {
	r := sensors.IMUReading{TimeUS: 123456, Quat: physics.IdentityQuat()}
	wire := Encode(Frame{MsgID: MsgIDIMU, Payload: EncodeIMU(r)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, _, err := Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeIMU(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeMotorFrame(b *testing.B) {
	m := MotorCommand{TimeUS: 99, Motors: [4]float64{0.5, 0.5, 0.5, 0.5}, Seq: 7, Armed: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(Frame{MsgID: MsgIDMotor, Payload: EncodeMotor(m)})
	}
}

func BenchmarkCRC(b *testing.B) {
	data := make([]byte, 52)
	for i := range data {
		data[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		_ = crcX25(data, 39)
	}
}
