GO ?= go

.PHONY: build test race bench bench-short bench-check bench-baseline microbench fmt vet golden golden-update fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -skip TestGoldenTraces . ./internal/campaign/ ./service/
	$(GO) test -race -run 'TestSnapshot' ./internal/core/

# Full performance suite: emits BENCH_<timestamp>.json in the repo
# root — the trajectory point for this commit.
bench: build
	$(GO) run ./cmd/bench -out .

# Quick CI variant: shorter flights, single attempt per metric.
bench-short: build
	$(GO) run ./cmd/bench -quick -out .

# Perf-regression gate against the committed baseline: per-benchmark
# deltas, non-zero exit on >10% regression. Run on the bench machine;
# CI uses the quick baseline with a wide tolerance (hardware varies).
bench-check: build
	$(GO) run ./cmd/bench -out . -baseline testdata/bench/baseline.json

# Re-pin the committed baselines after an intentional perf change (or
# on a new bench machine); review the diff like code.
bench-baseline: build
	rm -rf .bench-baseline-tmp
	$(GO) run ./cmd/bench -repeats 5 -out .bench-baseline-tmp
	cp .bench-baseline-tmp/BENCH_*.json testdata/bench/baseline.json
	rm -rf .bench-baseline-tmp
	$(GO) run ./cmd/bench -quick -out .bench-baseline-tmp
	cp .bench-baseline-tmp/BENCH_*.json testdata/bench/baseline-quick.json
	rm -rf .bench-baseline-tmp

# Go micro-benchmarks (paper figures, ticks/sec, campaign throughput)
# at one iteration each — a smoke pass, not a measurement.
microbench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Golden-trace regression gate: every scenario's outcome pinned
# bit-for-bit in testdata/golden/.
golden:
	$(GO) test -run 'TestGolden' .

# Regenerate golden traces after an intentional behavior change;
# review the diff like code.
golden-update:
	$(GO) test -run TestGoldenTraces -update .

# Short local fuzz pass over the decoder and the receive rings.
fuzz:
	$(GO) test ./internal/mavlink -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime 30s
	$(GO) test ./internal/mavlink -run '^$$' -fuzz FuzzDecodeMessages -fuzztime 15s
	$(GO) test ./internal/netsim -run '^$$' -fuzz 'FuzzRecv$$' -fuzztime 30s
	$(GO) test ./internal/netsim -run '^$$' -fuzz 'FuzzRecvMultiEndpoint$$' -fuzztime 30s

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
