GO ?= go

.PHONY: build test race bench bench-short microbench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/campaign/

# Full performance suite: emits BENCH_<timestamp>.json in the repo
# root — the trajectory point for this commit.
bench: build
	$(GO) run ./cmd/bench -out .

# Quick CI variant: shorter flights, single attempt per metric.
bench-short: build
	$(GO) run ./cmd/bench -quick -out .

# Go micro-benchmarks (paper figures, ticks/sec, campaign throughput)
# at one iteration each — a smoke pass, not a measurement.
microbench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
