GO ?= go

.PHONY: build test race bench bench-short microbench fmt vet golden golden-update fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -skip TestGoldenTraces . ./internal/campaign/

# Full performance suite: emits BENCH_<timestamp>.json in the repo
# root — the trajectory point for this commit.
bench: build
	$(GO) run ./cmd/bench -out .

# Quick CI variant: shorter flights, single attempt per metric.
bench-short: build
	$(GO) run ./cmd/bench -quick -out .

# Go micro-benchmarks (paper figures, ticks/sec, campaign throughput)
# at one iteration each — a smoke pass, not a measurement.
microbench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Golden-trace regression gate: every scenario's outcome pinned
# bit-for-bit in testdata/golden/.
golden:
	$(GO) test -run 'TestGolden' .

# Regenerate golden traces after an intentional behavior change;
# review the diff like code.
golden-update:
	$(GO) test -run TestGoldenTraces -update .

# Short local fuzz pass over the decoder and the receive rings.
fuzz:
	$(GO) test ./internal/mavlink -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime 30s
	$(GO) test ./internal/mavlink -run '^$$' -fuzz FuzzDecodeMessages -fuzztime 15s
	$(GO) test ./internal/netsim -run '^$$' -fuzz FuzzRecv -fuzztime 30s

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
