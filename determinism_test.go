package containerdrone_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"containerdrone"
)

// runSeeded executes one registered scenario at a fixed seed and
// returns its result. Shared by the golden and determinism suites.
func runSeeded(t *testing.T, scenario string, seed uint64) *containerdrone.Result {
	t.Helper()
	sim, err := containerdrone.New(scenario, containerdrone.WithSeed(seed))
	if err != nil {
		t.Fatalf("build %s: %v", scenario, err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("run %s: %v", scenario, err)
	}
	return res
}

// TestScenarioDeterminism runs every registered scenario twice with
// the same seed and requires byte-identical serialized Results. This
// is the guard against nondeterminism creeping into the kernel — map
// iteration reaching an output, pooled-buffer reuse leaking order
// dependence (the PR-3 free lists), or a time source other than the
// engine clock. The CI race job runs this same test under -race, so
// cross-run agreement is checked with the detector watching.
//
// Flights are shortened to cover every preset's attack/fault window
// without paying two full 30–40 s flights per scenario.
func TestScenarioDeterminism(t *testing.T) {
	const (
		seed     = 99
		duration = 16 * time.Second
	)
	for _, sc := range containerdrone.Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			run := func() []byte {
				sim, err := containerdrone.New(sc.Name,
					containerdrone.WithSeed(seed),
					containerdrone.WithDuration(duration))
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := sim.Run(context.Background())
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				raw, err := json.Marshal(res)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				return raw
			}
			a, b := run(), run()
			if !bytes.Equal(a, b) {
				t.Fatalf("two identical-seed runs of %s serialized differently (%d vs %d bytes)",
					sc.Name, len(a), len(b))
			}
		})
	}
}
