package containerdrone

import (
	"time"

	"containerdrone/internal/core"
)

// TaskAnalysis is the response-time analysis verdict for one task.
type TaskAnalysis struct {
	Name     string
	Priority int
	// Busy marks busy-loop tasks (no period, no deadline): they soak
	// idle time and are schedulable by definition, but starve any
	// lower-priority periodic task on their core.
	Busy     bool
	Period   time.Duration
	WCET     time.Duration
	Response time.Duration
	// Schedulable reports Response <= Period (implicit deadline).
	Schedulable bool
	// Unbounded marks tasks whose response diverges (priority below a
	// busy-loop task on the same core, or over-utilized core).
	Unbounded bool
}

// CoreAnalysis is the per-core schedulability verdict.
type CoreAnalysis struct {
	Core        int
	Utilization float64
	Schedulable bool
	Tasks       []TaskAnalysis
}

// Schedulability runs fixed-priority response-time analysis over the
// scenario's task set — the paper's §VII future work ("provide hard
// real-time proof and schedulability analysis"). Call it on a freshly
// built Sim to audit the flight-critical task set before any attack
// task is admitted.
func (s *Sim) Schedulability() []CoreAnalysis {
	var out []CoreAnalysis
	for _, res := range s.sys.Schedulability() {
		ca := CoreAnalysis{Core: res.Core, Utilization: res.Utilization, Schedulable: res.Schedulable}
		for _, rt := range res.Tasks {
			ca.Tasks = append(ca.Tasks, TaskAnalysis{
				Name:        rt.Task.Name,
				Priority:    rt.Task.Priority,
				Busy:        rt.Task.Busy(),
				Period:      rt.Task.Period,
				WCET:        rt.Task.WCET,
				Response:    rt.Response,
				Schedulable: rt.Schedulable,
				Unbounded:   rt.Unbounded,
			})
		}
		out = append(out, ca)
	}
	return out
}

// OverheadRow is one measured row of the paper's Table II: per-core
// CPU idle rates under a virtualization layer running idle.
type OverheadRow struct {
	Case      string    `json:"case"`
	IdleRates []float64 `json:"idle_rates"`
}

// Overhead measures the paper's Table II: per-core idle rates over
// the given duration for the native, VM, and container deployments.
func Overhead(duration time.Duration) ([]OverheadRow, error) {
	rows, err := core.TableII(duration)
	if err != nil {
		return nil, err
	}
	var out []OverheadRow
	for _, r := range rows {
		row := OverheadRow{Case: r.Case.String(), IdleRates: make([]float64, len(r.IdleRates))}
		copy(row.IdleRates, r.IdleRates[:])
		out = append(out, row)
	}
	return out, nil
}
