package containerdrone

import (
	"fmt"
	"math"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/control"
	"containerdrone/internal/core"
	"containerdrone/internal/fault"
	"containerdrone/internal/monitor"
	"containerdrone/internal/physics"
	"containerdrone/internal/telemetry"
)

// SchemaVersion is the version stamped into every serializable SDK
// type (Config, Result, CampaignResult). Decoders reject payloads
// from a different major schema so remote workers and collectors fail
// loudly instead of misreading fields.
//
// v2 added swarm support: Config.Drones/FleetSpacingM, the attack
// Member/Target and fault Member/FromMember selectors, and per-member
// outcomes in Result.Members. v1 payloads decode as v2 (every added
// field defaults to the single-drone reading), but the stamp is bumped
// because v2 payloads can carry fleet semantics a v1 consumer would
// silently drop.
const SchemaVersion = 2

// Vec3 is a 3D vector in the simulation's NED-less world frame
// (X east, Y north, Z up), meters.
type Vec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

func (v Vec3) internal() physics.Vec3 { return physics.Vec3{X: v.X, Y: v.Y, Z: v.Z} }
func fromVec3(v physics.Vec3) Vec3    { return Vec3{X: v.X, Y: v.Y, Z: v.Z} }

// Waypoint is one leg of a mission flown by the complex controller.
type Waypoint struct {
	Pos Vec3 `json:"pos"`
	// Yaw is the heading to hold at the waypoint, radians.
	Yaw float64 `json:"yaw,omitempty"`
	// HoldS is how long to dwell at the waypoint, seconds.
	HoldS float64 `json:"hold_s,omitempty"`
	// RadiusM is the acceptance radius in meters (0 = default).
	RadiusM float64 `json:"radius_m,omitempty"`
}

// Attack names an adversary plan: one of the kind strings reported by
// AttackKinds ("bandwidth", "udp-flood", "kill-controller",
// "cpu-hog", or "none").
type Attack struct {
	Kind string `json:"kind"`
	// StartS is the attack launch time in simulated seconds.
	StartS float64 `json:"start_s,omitempty"`
	// Rate parameterizes the attack: accesses/s for bandwidth,
	// packets/s for udp-flood; ignored otherwise.
	Rate float64 `json:"rate,omitempty"`
	// Member selects which fleet member's container the attack code
	// runs in (0 = the leader; ignored for single-drone runs).
	Member int `json:"member,omitempty"`
	// Target selects the member a udp-flood is aimed at. Equal to
	// Member it reproduces the classic in-drone flood; different, the
	// flood crosses the shared fabric to the victim's motor port.
	Target int `json:"target,omitempty"`
}

// Active reports whether the attack is anything other than "none".
func (a Attack) Active() bool { return a.Kind != "" && a.Kind != attack.KindNone.String() }

// AttackKinds lists the attack kind strings accepted by Attack.Kind.
func AttackKinds() []string {
	kinds := []attack.Kind{attack.KindNone, attack.KindBandwidth, attack.KindFlood, attack.KindKill, attack.KindCPUHog}
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// Fault names one timed environmental failure: one of the kind
// strings reported by FaultKinds ("gps-spoof", "imu-bias",
// "baro-drop", "netsplit", "mav-replay", "jitter", "prio-inv",
// "rotor-decay"). Faults compose — a Config may carry several, with
// overlapping windows. Magnitude and Rate are kind-specific
// severities; zero selects the kind's default (see internal/fault).
type Fault struct {
	Kind string `json:"kind"`
	// StartS is the fault window start in simulated seconds.
	StartS float64 `json:"start_s,omitempty"`
	// DurationS bounds the window; 0 keeps the fault active to the
	// end of the run.
	DurationS float64 `json:"duration_s,omitempty"`
	// Magnitude is the kind-specific severity (offset meters, gyro
	// bias rad/s, jitter sigma seconds, capture frames, spinner
	// priority, efficiency loss fraction).
	Magnitude float64 `json:"magnitude,omitempty"`
	// Rate is the kind-specific intensity (drift m/s, loss
	// probability, replay frames/s, decay 1/s).
	Rate float64 `json:"rate,omitempty"`
	// Member selects the fleet member the fault strikes (0 = the
	// leader; ignored for single-drone runs).
	Member int `json:"member,omitempty"`
	// FromMember, for mav-replay only, selects the member whose
	// command frames are captured; the replay is injected at Member.
	// Different members give a cross-drone replay.
	FromMember int `json:"from_member,omitempty"`
}

// FaultKinds lists the fault kind strings accepted by Fault.Kind.
func FaultKinds() []string {
	kinds := fault.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

func fromFaultSpec(s fault.Spec) Fault {
	return Fault{
		Kind:       s.Kind.String(),
		StartS:     s.Start.Seconds(),
		DurationS:  s.Duration.Seconds(),
		Magnitude:  s.Magnitude,
		Rate:       s.Rate,
		Member:     s.Member,
		FromMember: s.FromMember,
	}
}

func (f Fault) internal() (fault.Spec, error) {
	kind, err := fault.ParseKind(f.Kind)
	if err != nil {
		return fault.Spec{}, err
	}
	return fault.Spec{
		Kind:       kind,
		Start:      durFromS(f.StartS),
		Duration:   durFromS(f.DurationS),
		Magnitude:  f.Magnitude,
		Rate:       f.Rate,
		Member:     f.Member,
		FromMember: f.FromMember,
	}, nil
}

// Config is the serializable description of one run: a registered
// scenario name plus the overrides to apply on top of its preset. It
// is the unit of remote dispatch — build it with New/NewConfig (or
// decode it from JSON), ship it anywhere, and NewFromConfig
// reconstructs an identical deterministic run.
type Config struct {
	SchemaVersion int    `json:"schema_version"`
	Scenario      string `json:"scenario"`
	// Seed overrides the scenario seed when non-zero; equal seeds
	// give byte-identical runs.
	Seed uint64 `json:"seed,omitempty"`
	// DurationS overrides the flight length (seconds) when non-zero.
	DurationS float64 `json:"duration_s,omitempty"`
	// Params are named numeric overrides applied in sorted key order;
	// ParamInfos lists the key set.
	Params map[string]float64 `json:"params,omitempty"`
	// Attack, when non-nil, replaces the scenario's attack plan.
	Attack *Attack `json:"attack,omitempty"`
	// Faults, when non-empty, replaces the scenario's fault plan with
	// this composable set of timed failures.
	Faults []Fault `json:"faults,omitempty"`
	// Mission, when non-empty, replaces the scenario's static
	// setpoint (or preset mission) with this waypoint sequence.
	Mission []Waypoint `json:"mission,omitempty"`
	// Drones, when > 1, hosts a fleet of that many drones on one
	// shared network fabric: member 0 leads, members 1..n-1 hold
	// formation slots behind it. 0 keeps the scenario's own fleet
	// size (1 for every classic scenario).
	Drones int `json:"drones,omitempty"`
	// FleetSpacingM is the formation slot spacing in meters (0 =
	// default). Only meaningful when the run hosts a fleet.
	FleetSpacingM float64 `json:"fleet_spacing_m,omitempty"`
}

// build resolves the portable Config into the internal scenario
// config via the registry.
func (c Config) build() (core.Config, error) {
	if c.SchemaVersion != 0 && (c.SchemaVersion < 1 || c.SchemaVersion > SchemaVersion) {
		return core.Config{}, fmt.Errorf("containerdrone: config schema v%d, this SDK speaks v1..v%d", c.SchemaVersion, SchemaVersion)
	}
	if c.Scenario == "" {
		return core.Config{}, fmt.Errorf("containerdrone: config names no scenario")
	}
	cfg, err := core.Build(c.Scenario, core.Options{
		Seed:     c.Seed,
		Duration: durFromS(c.DurationS),
		Params:   c.Params,
	})
	if err != nil {
		return core.Config{}, err
	}
	if c.Attack != nil {
		kind, err := attack.ParseKind(c.Attack.Kind)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Attack = attack.Plan{
			Kind: kind, Start: durFromS(c.Attack.StartS), Rate: c.Attack.Rate,
			Member: c.Attack.Member, Target: c.Attack.Target,
		}
	}
	if len(c.Faults) > 0 {
		specs := make([]fault.Spec, len(c.Faults))
		for i, f := range c.Faults {
			sp, err := f.internal()
			if err != nil {
				return core.Config{}, err
			}
			specs[i] = sp
		}
		cfg.Faults = fault.Plan{Specs: specs}
	}
	if len(c.Mission) > 0 {
		cfg.Mission = make([]control.Waypoint, len(c.Mission))
		for i, w := range c.Mission {
			cfg.Mission[i] = control.Waypoint{
				Pos:    w.Pos.internal(),
				Yaw:    w.Yaw,
				Hold:   durFromS(w.HoldS),
				Radius: w.RadiusM,
			}
		}
	}
	if c.Drones > 0 {
		cfg.Drones = c.Drones
	}
	if c.FleetSpacingM > 0 {
		cfg.FleetSpacing = c.FleetSpacingM
	}
	return cfg, nil
}

// Sample is one telemetry sample of a flight: where the vehicle was,
// where it was told to be, and which controller was in charge.
type Sample struct {
	TimeS    float64 `json:"t_s"`
	Pos      Vec3    `json:"pos"`
	Setpoint Vec3    `json:"setpoint"`
	Roll     float64 `json:"roll"`
	Pitch    float64 `json:"pitch"`
	Yaw      float64 `json:"yaw"`
	// Source is the controller driving the actuators at this sample
	// ("complex", "safety", or "host").
	Source string `json:"source"`
}

// Time returns the sample time as a duration.
func (s Sample) Time() time.Duration { return durFromS(s.TimeS) }

func fromSample(s telemetry.Sample) Sample {
	return Sample{
		TimeS:    s.Time.Seconds(),
		Pos:      fromVec3(s.Position),
		Setpoint: fromVec3(s.Setpoint),
		Roll:     s.Roll, Pitch: s.Pitch, Yaw: s.Yaw,
		Source: s.Source,
	}
}

func (s Sample) internal() telemetry.Sample {
	return telemetry.Sample{
		Time:     durFromS(s.TimeS),
		Position: s.Pos.internal(),
		Setpoint: s.Setpoint.internal(),
		Roll:     s.Roll, Pitch: s.Pitch, Yaw: s.Yaw,
		Source: s.Source,
	}
}

// Metrics summarizes tracking quality over a window of samples.
type Metrics struct {
	// RMSErrorM is the 3D RMS setpoint error, meters.
	RMSErrorM float64 `json:"rms_error_m"`
	// MaxDeviationM is the worst 3D setpoint error, meters.
	MaxDeviationM float64 `json:"max_deviation_m"`
	// MaxTiltRad is the worst roll/pitch magnitude, radians.
	MaxTiltRad float64 `json:"max_tilt_rad"`
	Samples    int     `json:"samples"`
}

// MaxTiltDeg returns the worst tilt in degrees.
func (m Metrics) MaxTiltDeg() float64 { return telemetry.Degrees(m.MaxTiltRad) }

func fromMetrics(m telemetry.Metrics) Metrics {
	return Metrics{
		RMSErrorM:     m.RMSError,
		MaxDeviationM: m.MaxDeviation,
		MaxTiltRad:    m.MaxTilt,
		Samples:       m.Samples,
	}
}

// Violation records one security-rule firing.
type Violation struct {
	Rule  string  `json:"rule"`
	TimeS float64 `json:"t_s"`
	Info  string  `json:"info,omitempty"`
}

func fromViolation(v monitor.Violation) Violation {
	return Violation{Rule: string(v.Rule), TimeS: v.Time.Seconds(), Info: v.Info}
}

// StreamStat counts one HCE↔CCE data stream (Table I).
type StreamStat struct {
	Name       string `json:"name"`
	Port       int    `json:"port"`
	FrameSizeB int    `json:"frame_size_b"`
	Packets    int64  `json:"packets"`
}

// TaskReport is one task's scheduling outcome over the run.
type TaskReport struct {
	Name        string  `json:"name"`
	Core        int     `json:"core"`
	Priority    int     `json:"priority"`
	Released    int64   `json:"released"`
	Completed   int64   `json:"completed"`
	Missed      int64   `json:"missed"`
	MissRate    float64 `json:"miss_rate"`
	AvgLatencyS float64 `json:"avg_latency_s"`
	MaxLatencyS float64 `json:"max_latency_s"`
}

// AvgLatency returns the mean job latency as a duration.
func (t TaskReport) AvgLatency() time.Duration { return durFromS(t.AvgLatencyS) }

// MaxLatency returns the worst job latency as a duration.
func (t TaskReport) MaxLatency() time.Duration { return durFromS(t.MaxLatencyS) }

// Result is the serializable outcome of one run. It is self-contained:
// everything the reporting helpers need (summary, sparklines, plots,
// window metrics, trajectory CSV, blackbox) is derived from the
// serialized fields, so a Result collected from a remote worker via
// JSON behaves exactly like one produced locally.
type Result struct {
	SchemaVersion int `json:"schema_version"`
	// Config is the request that produced this result.
	Config Config `json:"config"`
	// DurationS is the resolved flight length, seconds.
	DurationS float64 `json:"duration_s"`
	// Attack is the resolved adversary plan ("none" when attack-free).
	Attack Attack `json:"attack"`
	// Faults is the resolved fault plan with kind-specific defaults
	// filled in (empty when the flight is fault-free).
	Faults []Fault `json:"faults,omitempty"`

	Crashed bool    `json:"crashed"`
	CrashS  float64 `json:"crash_s,omitempty"`

	Switched   bool        `json:"switched"`
	SwitchS    float64     `json:"switch_s,omitempty"`
	SwitchRule string      `json:"switch_rule,omitempty"`
	Violations []Violation `json:"violations,omitempty"`

	// Canceled marks a partial result from a context-canceled run.
	Canceled bool `json:"canceled,omitempty"`

	GarbagePkts     int64 `json:"garbage_pkts,omitempty"`
	MissionComplete bool  `json:"mission_complete,omitempty"`

	Metrics       Metrics `json:"metrics"`
	AttackMetrics Metrics `json:"attack_metrics"`

	Streams   []StreamStat `json:"streams,omitempty"`
	IdleRates []float64    `json:"idle_rates,omitempty"`
	Tasks     []TaskReport `json:"tasks,omitempty"`

	// Members carries per-member outcomes for fleet runs (leader
	// included), empty for a single drone. The top-level fields then
	// aggregate: Crashed/Switched report the earliest event across the
	// fleet, GarbagePkts sums, Violations concatenate in member order,
	// and the flight-shape fields describe the leader.
	Members []MemberResult `json:"members,omitempty"`

	// Samples is the full telemetry trajectory at the configured
	// telemetry rate.
	Samples []Sample `json:"samples,omitempty"`
	// Trace is the run's event log, one rendered line per event.
	Trace []string `json:"trace,omitempty"`

	// log caches the reconstructed flight log for the reporting
	// helpers; it is rebuilt from Samples after a JSON round trip.
	log *telemetry.FlightLog
}

// MemberResult is one fleet member's own outcome within a swarm
// Result.
type MemberResult struct {
	Member int    `json:"member"`
	Host   string `json:"host"`

	Crashed bool    `json:"crashed"`
	CrashS  float64 `json:"crash_s,omitempty"`

	Switched   bool        `json:"switched"`
	SwitchS    float64     `json:"switch_s,omitempty"`
	SwitchRule string      `json:"switch_rule,omitempty"`
	Violations []Violation `json:"violations,omitempty"`

	GarbagePkts     int64 `json:"garbage_pkts,omitempty"`
	MissionComplete bool  `json:"mission_complete,omitempty"`

	Metrics   Metrics      `json:"metrics"`
	Streams   []StreamStat `json:"streams,omitempty"`
	IdleRates []float64    `json:"idle_rates,omitempty"`
	Tasks     []TaskReport `json:"tasks,omitempty"`
}

func fromMemberReport(m *core.MemberReport) MemberResult {
	out := MemberResult{
		Member:          m.Member,
		Host:            m.Host,
		Crashed:         m.Crashed,
		Switched:        m.Switched,
		GarbagePkts:     m.GarbagePkts,
		MissionComplete: m.MissionComplete,
		Metrics:         fromMetrics(m.Metrics),
	}
	if m.Crashed {
		out.CrashS = m.CrashTime.Seconds()
	}
	if m.Switched {
		out.SwitchS = m.SwitchTime.Seconds()
		out.SwitchRule = string(m.SwitchRule)
	}
	for _, v := range m.Violations {
		out.Violations = append(out.Violations, fromViolation(v))
	}
	for _, st := range m.Streams {
		out.Streams = append(out.Streams, StreamStat{
			Name: st.Name, Port: st.Port, FrameSizeB: st.FrameSize, Packets: st.Packets,
		})
	}
	out.IdleRates = make([]float64, len(m.IdleRates))
	copy(out.IdleRates, m.IdleRates[:])
	for _, t := range m.Tasks {
		out.Tasks = append(out.Tasks, TaskReport{
			Name: t.Name, Core: t.Core, Priority: t.Priority,
			Released: t.Released, Completed: t.Completed, Missed: t.Missed,
			MissRate:    t.MissRate,
			AvgLatencyS: t.AvgLatency.Seconds(),
			MaxLatencyS: t.MaxLatency.Seconds(),
		})
	}
	return out
}

// fromResult converts an internal run outcome into the public schema.
func fromResult(cfg Config, res *core.Result) *Result {
	r := &Result{
		SchemaVersion: SchemaVersion,
		Config:        cfg,
		DurationS:     res.Cfg.Duration.Seconds(),
		Attack: Attack{
			Kind:   res.Cfg.Attack.Kind.String(),
			StartS: res.Cfg.Attack.Start.Seconds(),
			Rate:   res.Cfg.Attack.Rate,
			Member: res.Cfg.Attack.Member,
			Target: res.Cfg.Attack.Target,
		},
		Crashed:         res.Crashed,
		Switched:        res.Switched,
		SwitchRule:      string(res.SwitchRule),
		GarbagePkts:     res.GarbagePkts,
		MissionComplete: res.MissionComplete,
		Metrics:         fromMetrics(res.Metrics),
		AttackMetrics:   fromMetrics(res.AttackMetrics),
	}
	for _, sp := range res.Cfg.Faults.Specs {
		r.Faults = append(r.Faults, fromFaultSpec(sp.WithDefaults()))
	}
	if !res.Switched {
		r.SwitchRule = ""
	}
	if res.Crashed {
		r.CrashS = res.CrashTime.Seconds()
	}
	if res.Switched {
		r.SwitchS = res.SwitchTime.Seconds()
	}
	for _, v := range res.Violations {
		r.Violations = append(r.Violations, fromViolation(v))
	}
	for _, st := range res.Streams {
		r.Streams = append(r.Streams, StreamStat{
			Name: st.Name, Port: st.Port, FrameSizeB: st.FrameSize, Packets: st.Packets,
		})
	}
	r.IdleRates = make([]float64, len(res.IdleRates))
	copy(r.IdleRates, res.IdleRates[:])
	for _, t := range res.Tasks {
		r.Tasks = append(r.Tasks, TaskReport{
			Name: t.Name, Core: t.Core, Priority: t.Priority,
			Released: t.Released, Completed: t.Completed, Missed: t.Missed,
			MissRate:    t.MissRate,
			AvgLatencyS: t.AvgLatency.Seconds(),
			MaxLatencyS: t.MaxLatency.Seconds(),
		})
	}
	for i := range res.Members {
		r.Members = append(r.Members, fromMemberReport(&res.Members[i]))
	}
	if res.Log != nil {
		for _, s := range res.Log.Samples() {
			r.Samples = append(r.Samples, fromSample(s))
		}
		r.log = res.Log
	}
	if res.Trace != nil {
		for _, ev := range res.Trace.Events() {
			r.Trace = append(r.Trace, ev.String())
		}
	}
	return r
}

// durFromS converts float seconds back to a duration, rounding to the
// nearest nanosecond so values that crossed a JSON boundary print
// cleanly (152µs, not 151.999µs).
func durFromS(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}
