package containerdrone

import (
	"context"
	"errors"
	"time"

	"containerdrone/internal/core"
	"containerdrone/internal/monitor"
	"containerdrone/internal/telemetry"
)

// TicksPerSecond is the deterministic kernel's base tick rate: the
// engine advances simulated time in fixed 100 µs steps (10 kHz).
// Tools that convert simulated durations to engine ticks (cmd/bench's
// ticks/sec metric) multiply seconds by this constant.
const TicksPerSecond = 10_000

// Sim is one buildable, runnable scenario instance. Build it with New
// or NewFromConfig, optionally attach observers, then call Run
// exactly once. A Sim is single-goroutine — the deterministic kernel
// forbids intra-run concurrency — but distinct Sims share no mutable
// state, so concurrent New(...).Run(...) calls are safe.
type Sim struct {
	cfg       Config
	sys       *core.System
	observers []Observer
	ran       bool
}

// New builds a scenario from the registry with functional options:
//
//	sim, err := containerdrone.New("udpflood",
//	    containerdrone.WithSeed(7),
//	    containerdrone.WithDuration(20*time.Second),
//	    containerdrone.WithParam("iptables.rate", 4000))
//
// Configuration errors (unknown scenario, bad parameter key, invalid
// attack kind) surface here, not at Run.
func New(scenario string, opts ...Option) (*Sim, error) {
	return NewFromConfig(Config{Scenario: scenario}, opts...)
}

// NewFromConfig builds a scenario from a serialized Config — the
// remote-worker entry point: decode a Config from JSON and run it.
// Options apply on top of the decoded request.
func NewFromConfig(cfg Config, opts ...Option) (*Sim, error) {
	setup := simSetup{cfg: cfg}
	for _, opt := range opts {
		opt(&setup)
	}
	coreCfg, err := setup.cfg.build()
	if err != nil {
		return nil, err
	}
	setup.cfg.SchemaVersion = SchemaVersion
	sys, err := core.New(coreCfg)
	if err != nil {
		return nil, err
	}
	return &Sim{cfg: setup.cfg, sys: sys, observers: setup.observers}, nil
}

// Config returns the serializable run request. Ship it to a remote
// worker and NewFromConfig reconstructs an identical run.
func (s *Sim) Config() Config { return s.cfg }

// Observe attaches observers to the run (same effect as the
// WithObserver option). Must be called before Run.
func (s *Sim) Observe(obs ...Observer) { s.observers = append(s.observers, obs...) }

// Run executes the scenario to completion or until the context is
// done, streaming progress to any attached observers. On cancellation
// it returns the partial Result accumulated so far (marked Canceled)
// together with the context's error; otherwise the error is nil. Run
// may be called at most once per Sim.
func (s *Sim) Run(ctx context.Context) (*Result, error) {
	if s.ran {
		return nil, errors.New("containerdrone: Sim.Run called twice; build a new Sim per run")
	}
	s.ran = true
	if len(s.observers) > 0 {
		obs := s.observers
		s.sys.Hooks = core.Hooks{
			OnSample: func(now time.Duration, sample telemetry.Sample) {
				ps := fromSample(sample)
				for _, o := range obs {
					o.OnTick(now, ps)
				}
			},
			OnViolation: func(v monitor.Violation) {
				pv := fromViolation(v)
				for _, o := range obs {
					o.OnViolation(pv)
				}
			},
			OnSwitch: func(now time.Duration, rule monitor.Rule) {
				for _, o := range obs {
					o.OnSwitch(now, string(rule))
				}
			},
			OnCrash: func(at time.Duration) {
				for _, o := range obs {
					o.OnCrash(at)
				}
			},
		}
	}
	res, err := s.sys.RunContext(ctx)
	pub := fromResult(s.cfg, res)
	if err != nil {
		pub.Canceled = true
		return pub, err
	}
	return pub, nil
}

// ScenarioInfo describes one registered scenario.
type ScenarioInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// Scenarios lists every registered scenario sorted by name.
func Scenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, s := range core.Scenarios() {
		out = append(out, ScenarioInfo{Name: s.Name, Desc: s.Desc})
	}
	return out
}

// ParamInfo describes one sweepable parameter key.
type ParamInfo struct {
	Key  string `json:"key"`
	Desc string `json:"desc"`
}

// ParamInfos lists every parameter key accepted by WithParam, Config
// Params, and campaign sweeps, sorted by key.
func ParamInfos() []ParamInfo {
	var out []ParamInfo
	for _, k := range core.ParamKeys() {
		out = append(out, ParamInfo{Key: k, Desc: core.ParamDesc(k)})
	}
	return out
}
