package containerdrone_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"containerdrone"
)

// swarmScenarios is the multi-drone regression spine: every registry
// scenario that hosts a 3-drone fleet. TestGoldenFilesMatchRegistry
// keeps the registry and golden set in sync; this list keeps the
// swarm-specific assertions in sync with the registry by failing in
// TestSwarmDeterminism when a name disappears.
var swarmScenarios = []string{
	"swarm-baseline",
	"swarm-mission",
	"fleet-split",
	"swarm-peer-flood",
	"swarm-cross-replay",
	"swarm-cross-replay-unmonitored",
	"swarm-compromised",
}

// TestSwarmDeterminism is the fleet reading of TestScenarioDeterminism:
// every swarm scenario run twice at the same seed must serialize
// byte-identically, and its Result must carry one MemberResult per
// fleet member with the fabric hostnames the netsim routes by. The CI
// race job runs this under -race, so the shared-fabric fan-in (N
// members' endpoints on one Network) is exercised with the detector
// watching.
func TestSwarmDeterminism(t *testing.T) {
	const (
		seed     = 99
		duration = 14 * time.Second
	)
	for _, name := range swarmScenarios {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			run := func() ([]byte, *containerdrone.Result) {
				sim, err := containerdrone.New(name,
					containerdrone.WithSeed(seed),
					containerdrone.WithDuration(duration))
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := sim.Run(context.Background())
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				raw, err := json.Marshal(res)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				return raw, res
			}
			a, res := run()
			b, _ := run()
			if !bytes.Equal(a, b) {
				t.Fatal("two same-seed runs serialized differently")
			}
			if len(res.Members) != 3 {
				t.Fatalf("got %d member results, want 3", len(res.Members))
			}
			for i, m := range res.Members {
				if m.Member != i {
					t.Errorf("member %d reports index %d", i, m.Member)
				}
				want := "hce"
				if i > 0 {
					want = "hce" + string(rune('0'+i))
				}
				if m.Host != want {
					t.Errorf("member %d host = %q, want %q", i, m.Host, want)
				}
			}
		})
	}
}

// TestWithDrones checks the SDK fleet entry point: WithDrones lifts
// any classic scenario into a fleet, and the member-targeted attack
// options survive the Config JSON round trip.
func TestWithDrones(t *testing.T) {
	sim, err := containerdrone.New("udpflood",
		containerdrone.WithSeed(5),
		containerdrone.WithDuration(12*time.Second),
		containerdrone.WithDrones(3),
		containerdrone.WithFleetSpacing(3),
		containerdrone.WithAttack(containerdrone.Attack{
			Kind: "udp-flood", StartS: 8, Member: 1, Target: 2,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the request and rebuild: fleet fields must survive.
	raw, err := json.Marshal(sim.Config())
	if err != nil {
		t.Fatal(err)
	}
	var cfg containerdrone.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Drones != 3 || cfg.FleetSpacingM != 3 || cfg.Attack.Member != 1 || cfg.Attack.Target != 2 {
		t.Fatalf("fleet fields lost in round trip: %+v", cfg)
	}
	sim2, err := containerdrone.NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 3 {
		t.Fatalf("got %d member results, want 3", len(res.Members))
	}
	if res.Members[2].GarbagePkts == 0 {
		t.Error("flood victim member 2 saw no garbage")
	}
	if res.Members[1].GarbagePkts != 0 {
		t.Error("flood attacker member 1 counted garbage meant for the victim")
	}
}
