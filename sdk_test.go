package containerdrone_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"containerdrone"
)

// TestConfigJSONRoundTrip checks that a Config survives
// encode→decode→re-encode byte-identically — the contract that lets
// campaigns dispatch run requests to remote workers.
func TestConfigJSONRoundTrip(t *testing.T) {
	sim, err := containerdrone.New("udpflood",
		containerdrone.WithSeed(7),
		containerdrone.WithDuration(5*time.Second),
		containerdrone.WithParam("iptables.rate", 4000),
		containerdrone.WithParam("attack.start", 2),
		containerdrone.WithAttack(containerdrone.Attack{Kind: "udp-flood", StartS: 2, Rate: 12000}),
		containerdrone.WithMission(
			containerdrone.Waypoint{Pos: containerdrone.Vec3{X: 1, Z: 1}, HoldS: 0.5},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config()
	if cfg.SchemaVersion != containerdrone.SchemaVersion {
		t.Fatalf("SchemaVersion = %d, want %d", cfg.SchemaVersion, containerdrone.SchemaVersion)
	}
	first, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded containerdrone.Config
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode differs:\n first: %s\nsecond: %s", first, second)
	}
	// The decoded config must rebuild into a runnable Sim.
	if _, err := containerdrone.NewFromConfig(decoded); err != nil {
		t.Fatalf("NewFromConfig(decoded) = %v", err)
	}
}

// TestFaultConfigRoundTrip checks that a fault plan survives the
// Config JSON round trip and that the resolved plan (defaults filled)
// lands in the Result — the contract that makes fault runs
// dispatchable to remote workers like any other scenario.
func TestFaultConfigRoundTrip(t *testing.T) {
	sim, err := containerdrone.New("baseline",
		containerdrone.WithSeed(7),
		containerdrone.WithDuration(3*time.Second),
		containerdrone.WithFault(containerdrone.Fault{Kind: "netsplit", StartS: 1, DurationS: 1}),
		containerdrone.WithFault(containerdrone.Fault{Kind: "gps-spoof", StartS: 2, Rate: 0.25}),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded containerdrone.Config
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Faults) != 2 || decoded.Faults[0].Kind != "netsplit" || decoded.Faults[1].Rate != 0.25 {
		t.Fatalf("faults did not survive the round trip: %+v", decoded.Faults)
	}
	sim2, err := containerdrone.NewFromConfig(decoded)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 2 {
		t.Fatalf("resolved result carries %d faults, want 2", len(res.Faults))
	}
	// An unknown kind must fail at build time, not at Run.
	if _, err := containerdrone.New("baseline",
		containerdrone.WithFault(containerdrone.Fault{Kind: "gremlins"})); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

// TestConfigSchemaVersionRejected checks that a foreign schema fails
// loudly instead of being misread.
func TestConfigSchemaVersionRejected(t *testing.T) {
	_, err := containerdrone.NewFromConfig(containerdrone.Config{
		SchemaVersion: containerdrone.SchemaVersion + 1,
		Scenario:      "baseline",
	})
	if err == nil {
		t.Fatal("future schema version accepted")
	}
}

// TestResultJSONRoundTrip checks that a run Result — including the
// trajectory samples remote collectors consume — re-encodes
// byte-identically after a decode, and that the reporting helpers
// still work on the decoded copy.
func TestResultJSONRoundTrip(t *testing.T) {
	sim, err := containerdrone.New("udpflood",
		containerdrone.WithSeed(3),
		containerdrone.WithDuration(4*time.Second),
		containerdrone.WithParam("attack.start", 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded containerdrone.Result
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode differs (len %d vs %d)", len(first), len(second))
	}
	// The decoded result must rebuild its flight log for reporting.
	if got, want := decoded.Sparkline(containerdrone.AxisZ, 20), res.Sparkline(containerdrone.AxisZ, 20); got != want {
		t.Fatalf("decoded sparkline %q != live %q", got, want)
	}
	if got, want := decoded.WindowMetrics(0, decoded.Duration()), res.Metrics; got.Samples != want.Samples {
		t.Fatalf("decoded window metrics over %d samples, want %d", got.Samples, want.Samples)
	}
}

// observerEvent is one callback firing recorded by the ordering test.
type observerEvent struct {
	kind string
	at   time.Duration
	rule string
}

// TestObserverOrdering flies the udpflood scenario with an observer
// and checks the callback contract: ticks arrive in non-decreasing
// simulated-time order, the violation precedes the switch it causes,
// and ticks keep flowing after failover.
func TestObserverOrdering(t *testing.T) {
	var events []observerEvent
	obs := containerdrone.ObserverFuncs{
		Tick: func(now time.Duration, s containerdrone.Sample) {
			if got := s.Time(); got != now {
				t.Errorf("sample time %v != callback time %v", got, now)
			}
			events = append(events, observerEvent{kind: "tick", at: now})
		},
		Violation: func(v containerdrone.Violation) {
			events = append(events, observerEvent{kind: "violation", at: time.Duration(v.TimeS * float64(time.Second)), rule: v.Rule})
		},
		Switch: func(now time.Duration, rule string) {
			events = append(events, observerEvent{kind: "switch", at: now, rule: rule})
		},
	}
	sim, err := containerdrone.New("udpflood",
		containerdrone.WithSeed(1),
		containerdrone.WithDuration(5*time.Second),
		containerdrone.WithParam("attack.start", 2),
		containerdrone.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Switched {
		t.Fatal("udpflood did not switch; observer test needs a failover")
	}

	var last time.Duration
	violationIdx, switchIdx, ticksAfterSwitch := -1, -1, 0
	for i, ev := range events {
		if ev.at < last {
			t.Fatalf("event %d (%s) at %v after event at %v", i, ev.kind, ev.at, last)
		}
		last = ev.at
		switch ev.kind {
		case "violation":
			if violationIdx == -1 {
				violationIdx = i
			}
		case "switch":
			switchIdx = i
			if ev.rule != res.SwitchRule {
				t.Errorf("switch rule %q, result says %q", ev.rule, res.SwitchRule)
			}
		case "tick":
			if switchIdx != -1 {
				ticksAfterSwitch++
			}
		}
	}
	if violationIdx == -1 || switchIdx == -1 {
		t.Fatalf("violation/switch callbacks missing (violation=%d switch=%d)", violationIdx, switchIdx)
	}
	if violationIdx > switchIdx {
		t.Fatalf("violation (event %d) after switch (event %d)", violationIdx, switchIdx)
	}
	if ticksAfterSwitch == 0 {
		t.Fatal("no ticks observed after the Simplex switch")
	}
	if len(events) < 100 {
		t.Fatalf("only %d events for a 5 s flight at 50 Hz", len(events))
	}
}

// TestRunCancelPartial cancels a run mid-flight from inside an
// observer and checks that Run returns promptly with a partial,
// usable Result instead of deadlocking or discarding the flight.
func TestRunCancelPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := containerdrone.ObserverFuncs{
		Tick: func(now time.Duration, s containerdrone.Sample) {
			if now >= time.Second {
				cancel()
			}
		},
	}
	sim, err := containerdrone.New("baseline",
		containerdrone.WithDuration(30*time.Second),
		containerdrone.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var res *containerdrone.Result
	var runErr error
	go func() {
		res, runErr = sim.Run(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", runErr)
	}
	if res == nil {
		t.Fatal("canceled Run returned nil Result")
	}
	if !res.Canceled {
		t.Fatal("partial result not marked Canceled")
	}
	// ~1 s of a 30 s flight at 50 Hz: a partial trajectory, well short
	// of the full 1500 samples.
	if n := len(res.Samples); n < 40 || n > 200 {
		t.Fatalf("partial result has %d samples, want ~50", n)
	}
	if res.Crashed {
		t.Fatal("partial baseline run reports a crash")
	}
}

// TestRunTwice checks the one-shot contract.
func TestRunTwice(t *testing.T) {
	sim, err := containerdrone.New("baseline", containerdrone.WithDuration(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded")
	}
}

// TestCampaignResultJSONRoundTrip checks the campaign collection
// path: records and aggregates re-encode byte-identically, and a
// decoded result still renders its table.
func TestCampaignResultJSONRoundTrip(t *testing.T) {
	c := containerdrone.NewCampaign("baseline",
		containerdrone.WithRuns(2),
		containerdrone.WithRunDuration(2*time.Second),
		containerdrone.WithSweep("wind", 0, 1))
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("%d records, want 4", len(res.Records))
	}
	first, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded containerdrone.CampaignResult
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode differs")
	}
	if got, want := decoded.Table(), res.Table(); got != want {
		t.Fatalf("decoded table differs:\n%s\nvs\n%s", got, want)
	}
}

// TestCampaignCancel checks that a canceled campaign returns the
// full-shaped record set with undone cells marked.
func TestCampaignCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before dispatch: every cell must be marked
	c := containerdrone.NewCampaign("baseline",
		containerdrone.WithRuns(3),
		containerdrone.WithParallel(1),
		containerdrone.WithRunDuration(2*time.Second))
	res, err := c.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Records) != 3 {
		t.Fatalf("canceled campaign records = %+v, want 3 marked cells", res)
	}
	for _, r := range res.Records {
		if r.Err == "" {
			t.Fatalf("record %d/%d ran despite pre-canceled context", r.Run, len(res.Records))
		}
	}
}
