package containerdrone_test

import (
	"fmt"
	"testing"
	"time"

	"containerdrone/internal/campaign"
	"containerdrone/internal/core"
	"containerdrone/internal/monitor"
	"containerdrone/internal/sim"
)

// Each benchmark regenerates one table or figure of the paper and
// reports the quantities the paper reads off it as custom metrics.
// Shapes (who wins, where the cliff is) are asserted by the tests in
// internal/core; the benchmarks measure them.

func runScenario(b *testing.B, cfg core.Config) *core.Result {
	b.Helper()
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys.Run()
}

// BenchmarkEngineTicksPerSec measures raw simulation throughput — how
// many 100 µs engine ticks execute per wall-clock second — on the
// attack-free baseline and on the Fig 7 flood, the two poles of the
// perf trajectory tracked by cmd/bench. ReportAllocs makes allocation
// regressions on the hot path visible in every benchmark run.
func BenchmarkEngineTicksPerSec(b *testing.B) {
	for _, sc := range []struct {
		name string
		cfg  func() core.Config
	}{
		{"baseline", core.ScenarioBaseline},
		{"udpflood", core.ScenarioFlood},
	} {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := sc.cfg()
			ticksPerRun := float64(int64(cfg.Duration) / int64(sim.Tick))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runScenario(b, cfg)
			}
			b.ReportMetric(ticksPerRun*float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}

// BenchmarkCampaignThroughput measures end-to-end Monte-Carlo
// throughput (runs per wall-clock second) on the parallel campaign
// runner, short baseline flights over the default worker pool.
func BenchmarkCampaignThroughput(b *testing.B) {
	b.ReportAllocs()
	const runsPer = 8
	spec := campaign.Spec{
		Points:   []campaign.Point{{Label: "baseline", Scenario: "baseline"}},
		Runs:     runsPer,
		BaseSeed: 1,
		Duration: 2 * time.Second,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runsPer*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkTableI regenerates Table I: the five HCE↔CCE streams at
// their configured rates and wire sizes.
func BenchmarkTableI(b *testing.B) {
	var perSec float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Duration = 10 * time.Second
		res := runScenario(b, cfg)
		total := int64(0)
		for _, st := range res.Streams {
			total += st.Packets
		}
		perSec = float64(total) / cfg.Duration.Seconds()
	}
	// Table I total: 250+50+10+50+400 = 760 frames/s.
	b.ReportMetric(perSec, "frames/sim-s")
}

// BenchmarkTableII regenerates Table II's three rows and reports the
// mean idle rate of each case.
func BenchmarkTableII(b *testing.B) {
	for _, c := range []core.OverheadCase{core.OverheadNative, core.OverheadVM, core.OverheadContainer} {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunOverheadCase(c, 30*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, r := range res.IdleRates {
					sum += r
				}
				mean = sum / core.NumCores
			}
			b.ReportMetric(mean, "idle-rate")
		})
	}
}

// BenchmarkFig4 regenerates Fig 4 (memory DoS, MemGuard off) and
// reports the crash time relative to the 10 s attack.
func BenchmarkFig4(b *testing.B) {
	var crashAfter float64
	for i := 0; i < b.N; i++ {
		res := runScenario(b, core.ScenarioMemDoS(false))
		if !res.Crashed {
			b.Fatal("Fig 4 scenario did not crash")
		}
		crashAfter = (res.CrashTime - res.Cfg.Attack.Start).Seconds()
	}
	b.ReportMetric(crashAfter, "crash-after-s")
}

// BenchmarkFig5 regenerates Fig 5 (memory DoS, MemGuard on) and
// reports the attack-window RMS tracking error.
func BenchmarkFig5(b *testing.B) {
	var rms float64
	for i := 0; i < b.N; i++ {
		res := runScenario(b, core.ScenarioMemDoS(true))
		if res.Crashed {
			b.Fatal("Fig 5 scenario crashed")
		}
		rms = res.AttackMetrics.RMSError
	}
	b.ReportMetric(rms, "attack-rms-m")
}

// BenchmarkFig6 regenerates Fig 6 (controller kill) and reports the
// detection latency of the receiving-interval rule.
func BenchmarkFig6(b *testing.B) {
	var latency float64
	for i := 0; i < b.N; i++ {
		res := runScenario(b, core.ScenarioKill())
		if !res.Switched || res.SwitchRule != monitor.RuleInterval {
			b.Fatal("Fig 6 scenario did not fail over on the interval rule")
		}
		latency = (res.SwitchTime - res.Cfg.Attack.Start).Seconds()
	}
	b.ReportMetric(latency*1000, "detect-ms")
}

// BenchmarkFig7 regenerates Fig 7 (UDP flood) and reports detection
// latency and the worst deviation before recovery.
func BenchmarkFig7(b *testing.B) {
	var detect, maxDev float64
	for i := 0; i < b.N; i++ {
		res := runScenario(b, core.ScenarioFlood())
		if !res.Switched || res.SwitchRule != monitor.RuleAttitude {
			b.Fatal("Fig 7 scenario did not fail over on the attitude rule")
		}
		detect = (res.SwitchTime - res.Cfg.Attack.Start).Seconds()
		maxDev = res.AttackMetrics.MaxDeviation
	}
	b.ReportMetric(detect*1000, "detect-ms")
	b.ReportMetric(maxDev, "max-dev-m")
}

// BenchmarkAblationMemGuardBudget sweeps the CCE bandwidth budget and
// reports the attack-window deviation at each point — the design
// choice DESIGN.md calls out (where is the protection cliff?).
func BenchmarkAblationMemGuardBudget(b *testing.B) {
	for _, budget := range []float64{10e6, 30e6, 60e6, 90e6} {
		budget := budget
		b.Run(byteRateName(budget), func(b *testing.B) {
			var dev float64
			crashes := 0
			for i := 0; i < b.N; i++ {
				cfg := core.ScenarioMemDoS(true)
				cfg.MemGuardBudget = budget
				res := runScenario(b, cfg)
				if res.Crashed {
					crashes++
				}
				dev = res.AttackMetrics.MaxDeviation
			}
			b.ReportMetric(dev, "max-dev-m")
			b.ReportMetric(float64(crashes)/float64(b.N), "crash-rate")
		})
	}
}

// BenchmarkAblationIPTablesRate sweeps the iptables limit on the
// motor port during the UDP flood.
func BenchmarkAblationIPTablesRate(b *testing.B) {
	for _, rate := range []float64{0, 2000, 8000, 16000} {
		rate := rate
		b.Run(rateName(rate), func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScenarioFlood()
				cfg.IPTablesRate = rate
				res := runScenario(b, cfg)
				dev = res.AttackMetrics.MaxDeviation
			}
			b.ReportMetric(dev, "max-dev-m")
		})
	}
}

// BenchmarkAblationIntervalThreshold sweeps the receiving-interval
// rule threshold in the controller-kill scenario and reports the
// excursion before recovery — the latency/false-positive trade-off of
// §III-E.
func BenchmarkAblationIntervalThreshold(b *testing.B) {
	for _, thr := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond} {
		thr := thr
		b.Run(thr.String(), func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScenarioKill()
				cfg.Rules.MaxInterval = thr
				res := runScenario(b, cfg)
				dev = res.AttackMetrics.MaxDeviation
			}
			b.ReportMetric(dev, "max-dev-m")
		})
	}
}

// BenchmarkAblationFloodRate sweeps the flood intensity: damage and
// detection latency as a function of attacker packet rate.
func BenchmarkAblationFloodRate(b *testing.B) {
	for _, rate := range []float64{2000, 5000, 10000, 20000, 40000} {
		rate := rate
		b.Run(rateName(rate), func(b *testing.B) {
			var dev, detect float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScenarioFlood()
				cfg.Attack.Rate = rate
				res := runScenario(b, cfg)
				dev = res.AttackMetrics.MaxDeviation
				if res.Switched {
					detect = (res.SwitchTime - cfg.Attack.Start).Seconds()
				} else {
					detect = -1
				}
			}
			b.ReportMetric(dev, "max-dev-m")
			b.ReportMetric(detect*1000, "detect-ms")
		})
	}
}

// BenchmarkAblationMemDoSIntensity sweeps the Bandwidth attack's
// access rate without MemGuard: where is the crash threshold?
func BenchmarkAblationMemDoSIntensity(b *testing.B) {
	for _, rate := range []float64{0.2e9, 0.5e9, 1e9, 2e9, 4e9} {
		rate := rate
		b.Run(byteRateName(rate), func(b *testing.B) {
			crashes := 0
			var dev float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScenarioMemDoS(false)
				cfg.Attack.Rate = rate
				res := runScenario(b, cfg)
				if res.Crashed {
					crashes++
				}
				dev = res.AttackMetrics.MaxDeviation
			}
			b.ReportMetric(float64(crashes)/float64(b.N), "crash-rate")
			b.ReportMetric(dev, "max-dev-m")
		})
	}
}

func byteRateName(r float64) string {
	return fmt.Sprintf("%.0fM-acc-per-s", r/1e6)
}

func rateName(r float64) string {
	if r == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0f-pps", r)
}
