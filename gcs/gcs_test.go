package gcs

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"containerdrone"
)

func TestTelemetryRoundTrip(t *testing.T) {
	in := Telemetry{
		TimeUS: 123456,
		Pos:    containerdrone.Vec3{X: 1.5, Y: -0.25, Z: 1.0},
		Vel:    containerdrone.Vec3{X: 0.125},
		Roll:   0.1, Pitch: -0.05, Yaw: 1.2,
		Crashed: true,
	}
	out, err := DecodeTelemetry(EncodeTelemetry(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeUS != in.TimeUS || !out.Crashed {
		t.Fatalf("out = %+v", out)
	}
	if math.Abs(out.Pos.X-1.5) > 1e-6 || math.Abs(out.Yaw-1.2) > 1e-6 {
		t.Fatalf("values drifted: %+v", out)
	}
}

func TestSetpointRoundTrip(t *testing.T) {
	in := Setpoint{Pos: containerdrone.Vec3{X: 2, Y: -1, Z: 1.5}, Yaw: 0.5}
	out, err := DecodeSetpoint(EncodeSetpoint(in))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Pos.Y+1) > 1e-6 || math.Abs(out.Yaw-0.5) > 1e-6 {
		t.Fatalf("out = %+v", out)
	}
}

func TestDecodersRejectWrongSize(t *testing.T) {
	if _, err := DecodeTelemetry(make([]byte, 5)); err == nil {
		t.Fatal("short telemetry accepted")
	}
	if _, err := DecodeSetpoint(make([]byte, 100)); err == nil {
		t.Fatal("long setpoint accepted")
	}
}

func TestNoPeerError(t *testing.T) {
	link, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer link.Close()
	if err := link.SendTelemetry(Telemetry{}); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("err = %v, want ErrNoPeer", err)
	}
}

func TestLinkOverLoopback(t *testing.T) {
	link, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer link.Close()

	var mu sync.Mutex
	var got []Setpoint
	link.OnSetpoint = func(sp Setpoint) {
		mu.Lock()
		got = append(got, sp)
		mu.Unlock()
	}

	station, err := Dial(link.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer station.Close()

	// Uplink a setpoint; the link locks onto the station as its peer.
	want := Setpoint{Pos: containerdrone.Vec3{X: 3, Z: 2}, Yaw: 0.25}
	if err := station.SendSetpoint(want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("setpoint never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if math.Abs(got[0].Pos.X-3) > 1e-6 {
		mu.Unlock()
		t.Fatalf("setpoint = %+v", got[0])
	}
	mu.Unlock()

	// Downlink telemetry back to the station.
	sent := Telemetry{TimeUS: 42, Pos: containerdrone.Vec3{Z: 1}}
	if err := link.SendTelemetry(sent); err != nil {
		t.Fatal(err)
	}
	recv, err := station.RecvTelemetry(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if recv.TimeUS != 42 || math.Abs(recv.Pos.Z-1) > 1e-6 {
		t.Fatalf("telemetry = %+v", recv)
	}
}

func TestLinkFixedPeer(t *testing.T) {
	link, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer link.Close()
	station, err := Dial(link.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer station.Close()
	link.SetPeer(station.conn.LocalAddr().(*net.UDPAddr))
	if err := link.SendTelemetry(Telemetry{TimeUS: 7}); err != nil {
		t.Fatal(err)
	}
	recv, err := station.RecvTelemetry(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if recv.TimeUS != 7 {
		t.Fatalf("telemetry = %+v", recv)
	}
}

func TestCloseIdempotent(t *testing.T) {
	link, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	if err := link.Close(); err != nil {
		t.Fatal(err)
	}
	if err := link.Close(); err != nil {
		t.Fatal(err)
	}
}
