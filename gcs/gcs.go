// Package gcs implements the ground-control-station link of the
// paper's system context: modern UAVs "are networked robots equipped
// with capable communication channels" speaking MAVLink to a GCS
// (§IV-C). The link serves flight telemetry over a real UDP socket
// (stdlib net, loopback-friendly) and accepts setpoint commands, so a
// simulated flight can be watched and steered by external tooling.
//
// The wire format reuses the framework's MAVLink codec with two
// GCS-specific messages: TELEMETRY (downlink) and SETPOINT (uplink).
// The link is deliberately one-directional per socket pair and
// stateless per datagram, like the real protocol.
//
// The package is part of the public SDK surface: pair it with a
// containerdrone.Observer to downlink a live run (see
// examples/gcslive).
package gcs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"containerdrone"
	"containerdrone/internal/mavlink"
)

// Message ids for the GCS link (distinct from the Table-I streams).
const (
	MsgIDTelemetry uint8 = 77
	MsgIDSetpoint  uint8 = 78
)

// Payload sizes.
const (
	TelemetryPayloadSize = 8 + 12 + 12 + 12 + 1 // time, pos, vel, rpy, flags
	SetpointPayloadSize  = 12 + 4               // pos, yaw
)

// RegisterMessages declares the GCS messages with the codec. Safe to
// call once per process; the mavlink package panics on duplicates, so
// the package init does it exactly once.
func init() {
	mavlink.RegisterExternal(MsgIDTelemetry, "GCS_TELEMETRY", TelemetryPayloadSize, 201)
	mavlink.RegisterExternal(MsgIDSetpoint, "GCS_SETPOINT", SetpointPayloadSize, 137)
}

// Telemetry is one downlink sample.
type Telemetry struct {
	TimeUS  uint64
	Pos     containerdrone.Vec3
	Vel     containerdrone.Vec3
	Roll    float64
	Pitch   float64
	Yaw     float64
	Crashed bool
}

// Setpoint is one uplink command.
type Setpoint struct {
	Pos containerdrone.Vec3
	Yaw float64
}

// EncodeTelemetry packs a downlink sample.
func EncodeTelemetry(t Telemetry) []byte {
	p := make([]byte, TelemetryPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], t.TimeUS)
	putF32(p[8:], t.Pos.X)
	putF32(p[12:], t.Pos.Y)
	putF32(p[16:], t.Pos.Z)
	putF32(p[20:], t.Vel.X)
	putF32(p[24:], t.Vel.Y)
	putF32(p[28:], t.Vel.Z)
	putF32(p[32:], t.Roll)
	putF32(p[36:], t.Pitch)
	putF32(p[40:], t.Yaw)
	if t.Crashed {
		p[44] = 1
	}
	return p
}

// DecodeTelemetry unpacks a downlink sample.
func DecodeTelemetry(p []byte) (Telemetry, error) {
	if len(p) != TelemetryPayloadSize {
		return Telemetry{}, fmt.Errorf("gcs: telemetry payload %d bytes, want %d", len(p), TelemetryPayloadSize)
	}
	var t Telemetry
	t.TimeUS = binary.LittleEndian.Uint64(p[0:])
	t.Pos = containerdrone.Vec3{X: getF32(p[8:]), Y: getF32(p[12:]), Z: getF32(p[16:])}
	t.Vel = containerdrone.Vec3{X: getF32(p[20:]), Y: getF32(p[24:]), Z: getF32(p[28:])}
	t.Roll = getF32(p[32:])
	t.Pitch = getF32(p[36:])
	t.Yaw = getF32(p[40:])
	t.Crashed = p[44] == 1
	return t, nil
}

// EncodeSetpoint packs an uplink command.
func EncodeSetpoint(sp Setpoint) []byte {
	p := make([]byte, SetpointPayloadSize)
	putF32(p[0:], sp.Pos.X)
	putF32(p[4:], sp.Pos.Y)
	putF32(p[8:], sp.Pos.Z)
	putF32(p[12:], sp.Yaw)
	return p
}

// DecodeSetpoint unpacks an uplink command.
func DecodeSetpoint(p []byte) (Setpoint, error) {
	if len(p) != SetpointPayloadSize {
		return Setpoint{}, fmt.Errorf("gcs: setpoint payload %d bytes, want %d", len(p), SetpointPayloadSize)
	}
	var sp Setpoint
	sp.Pos = containerdrone.Vec3{X: getF32(p[0:]), Y: getF32(p[4:]), Z: getF32(p[8:])}
	sp.Yaw = getF32(p[12:])
	return sp, nil
}

func putF32(b []byte, v float64) { binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v))) }
func getF32(b []byte) float64    { return float64(math.Float32frombits(binary.LittleEndian.Uint32(b))) }

// Link is the vehicle side of the GCS connection: it owns a UDP
// socket, pushes telemetry to the last peer that spoke (or a fixed
// peer), and surfaces received setpoint commands.
type Link struct {
	conn *net.UDPConn

	mu     sync.Mutex
	peer   *net.UDPAddr
	seq    uint8
	closed bool

	// OnSetpoint, when set, runs for each received setpoint command.
	OnSetpoint func(Setpoint)

	wg sync.WaitGroup
}

// ErrNoPeer is returned by SendTelemetry before any peer is known.
var ErrNoPeer = errors.New("gcs: no peer (no GCS datagram received and no fixed peer set)")

// Listen opens the vehicle-side socket on addr (e.g. "127.0.0.1:0")
// and starts the receive loop.
func Listen(addr string) (*Link, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	l := &Link{conn: conn}
	l.wg.Add(1)
	go l.recvLoop()
	return l, nil
}

// Addr returns the bound socket address.
func (l *Link) Addr() *net.UDPAddr { return l.conn.LocalAddr().(*net.UDPAddr) }

// SetPeer fixes the downlink destination (otherwise the link locks on
// to the first GCS that sends a datagram).
func (l *Link) SetPeer(addr *net.UDPAddr) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.peer = addr
}

// SendTelemetry pushes one sample to the GCS.
func (l *Link) SendTelemetry(t Telemetry) error {
	l.mu.Lock()
	peer := l.peer
	l.seq++
	seq := l.seq
	l.mu.Unlock()
	if peer == nil {
		return ErrNoPeer
	}
	frame := mavlink.Encode(mavlink.Frame{
		Seq: seq, SysID: 1, CompID: 1,
		MsgID: MsgIDTelemetry, Payload: EncodeTelemetry(t),
	})
	_, err := l.conn.WriteToUDP(frame, peer)
	return err
}

func (l *Link) recvLoop() {
	defer l.wg.Done()
	buf := make([]byte, 512)
	for {
		n, from, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		l.mu.Lock()
		if l.peer == nil {
			l.peer = from
		}
		cb := l.OnSetpoint
		l.mu.Unlock()
		frame, _, err := mavlink.Decode(buf[:n])
		if err != nil || frame.MsgID != MsgIDSetpoint {
			continue
		}
		sp, err := DecodeSetpoint(frame.Payload)
		if err != nil {
			continue
		}
		if cb != nil {
			cb(sp)
		}
	}
}

// Close shuts the link down and waits for the receive loop.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.conn.Close()
	l.wg.Wait()
	return err
}

// Station is the GCS side: it sends setpoints and receives telemetry.
type Station struct {
	conn    *net.UDPConn
	vehicle *net.UDPAddr
	seq     uint8
}

// Dial connects a station to a vehicle link address.
func Dial(vehicle *net.UDPAddr) (*Station, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &Station{conn: conn, vehicle: vehicle}, nil
}

// SendSetpoint uplinks a position command.
func (s *Station) SendSetpoint(sp Setpoint) error {
	s.seq++
	frame := mavlink.Encode(mavlink.Frame{
		Seq: s.seq, SysID: 255, CompID: 1,
		MsgID: MsgIDSetpoint, Payload: EncodeSetpoint(sp),
	})
	_, err := s.conn.WriteToUDP(frame, s.vehicle)
	return err
}

// RecvTelemetry blocks for one telemetry frame or the deadline.
func (s *Station) RecvTelemetry(timeout time.Duration) (Telemetry, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Telemetry{}, err
	}
	buf := make([]byte, 512)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return Telemetry{}, err
		}
		frame, _, err := mavlink.Decode(buf[:n])
		if err != nil || frame.MsgID != MsgIDTelemetry {
			continue
		}
		return DecodeTelemetry(frame.Payload)
	}
}

// Close releases the station socket.
func (s *Station) Close() error { return s.conn.Close() }
