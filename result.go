package containerdrone

import (
	"fmt"
	"io"
	"strings"
	"time"

	"containerdrone/internal/telemetry"
)

// Axis selects a trajectory axis for Sparkline and Plot.
type Axis int

// Trajectory axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "X"
	case AxisY:
		return "Y"
	default:
		return "Z"
	}
}

// selectors maps an axis to the internal position/setpoint accessors.
func (a Axis) selectors() (val, sp func(telemetry.Sample) float64) {
	switch a {
	case AxisX:
		return telemetry.AxisX, telemetry.SetpointX
	case AxisY:
		return telemetry.AxisY, telemetry.SetpointY
	default:
		return telemetry.AxisZ, telemetry.SetpointZ
	}
}

// flightLog returns the result's trajectory as an internal flight
// log, rebuilding it from the serialized samples when the result came
// through JSON.
func (r *Result) flightLog() *telemetry.FlightLog {
	if r.log != nil {
		return r.log
	}
	log := telemetry.NewFlightLog()
	for _, s := range r.Samples {
		log.Add(s.internal())
	}
	if r.Crashed {
		log.MarkCrash(durFromS(r.CrashS))
	}
	r.log = log
	return log
}

// Duration returns the resolved flight length.
func (r *Result) Duration() time.Duration { return durFromS(r.DurationS) }

// AttackStart returns when the resolved attack plan launches (zero
// for attack-free runs).
func (r *Result) AttackStart() time.Duration { return durFromS(r.Attack.StartS) }

// CrashTime returns when the vehicle crashed (zero if it did not).
func (r *Result) CrashTime() time.Duration { return durFromS(r.CrashS) }

// SwitchTime returns when the Simplex switch fired (zero if it did
// not).
func (r *Result) SwitchTime() time.Duration { return durFromS(r.SwitchS) }

// Summary renders a human-readable digest of the run.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight %v  attack=%s@%v", r.Duration(), r.Attack.Kind, durFromS(r.Attack.StartS))
	for _, f := range r.Faults {
		fmt.Fprintf(&b, "  fault=%s@%v", f.Kind, durFromS(f.StartS))
	}
	fmt.Fprintln(&b)
	switch {
	case r.Crashed:
		fmt.Fprintf(&b, "  CRASHED at %.1fs\n", r.CrashS)
	case r.Canceled:
		fmt.Fprintf(&b, "  canceled mid-run\n")
	default:
		fmt.Fprintf(&b, "  survived\n")
	}
	if r.Switched {
		fmt.Fprintf(&b, "  Simplex switch at %.2fs (%s)\n", r.SwitchS, r.SwitchRule)
	}
	fmt.Fprintf(&b, "  RMS err %.3fm  max dev %.3fm  max tilt %.1f°\n",
		r.Metrics.RMSErrorM, r.Metrics.MaxDeviationM, r.Metrics.MaxTiltDeg())
	return b.String()
}

// Sparkline renders one axis of the trajectory as a unicode sparkline
// of the given width.
func (r *Result) Sparkline(axis Axis, width int) string {
	val, _ := axis.selectors()
	return r.flightLog().Sparkline(val, width)
}

// Plot renders one axis as an ASCII plot in the layout of the paper's
// figures: estimated position ('*') against the setpoint ('-', '#'
// where they meet).
func (r *Result) Plot(axis Axis, width, height int) string {
	val, sp := axis.selectors()
	return telemetry.Plot(r.flightLog().Samples(), val, sp, width, height)
}

// WindowMetrics computes tracking metrics over [from, to) of the
// flight — e.g. the attack window of a figure.
func (r *Result) WindowMetrics(from, to time.Duration) Metrics {
	return fromMetrics(r.flightLog().WindowMetrics(from, to))
}

// WriteTrajectoryCSV emits the trajectory in the column layout of the
// paper's figures: time, setpoint and estimate per axis, attitude,
// source.
func (r *Result) WriteTrajectoryCSV(w io.Writer) error {
	return r.flightLog().WriteCSV(w)
}

// WriteBlackbox emits the flight as a binary blackbox recording
// readable by ReadBlackbox.
func (r *Result) WriteBlackbox(w io.Writer) error {
	return telemetry.WriteBlackbox(w, r.flightLog())
}

// ReadBlackbox loads a blackbox recording written by WriteBlackbox
// (or the CLI's -blackbox flag) as a replayed Result: trajectory,
// crash status, and whole-flight metrics are populated; fields only a
// live run knows (violations, streams, tasks) stay empty.
func ReadBlackbox(rd io.Reader) (*Result, error) {
	log, err := telemetry.ReadBlackbox(rd)
	if err != nil {
		return nil, err
	}
	r := &Result{
		SchemaVersion: SchemaVersion,
		Attack:        Attack{Kind: "none"},
		Metrics:       fromMetrics(log.Metrics()),
		log:           log,
	}
	for _, s := range log.Samples() {
		r.Samples = append(r.Samples, fromSample(s))
	}
	if len(r.Samples) > 0 {
		r.DurationS = r.Samples[len(r.Samples)-1].TimeS
	}
	if crashed, at := log.Crashed(); crashed {
		r.Crashed, r.CrashS = true, at.Seconds()
	}
	return r, nil
}
