package containerdrone_test

import (
	"testing"
	"time"

	"containerdrone"
	"containerdrone/internal/sim"
)

// TestTicksPerSecondMatchesKernel pins the public constant to the
// kernel's actual tick, so SDK consumers converting durations to
// ticks can never drift from the engine.
func TestTicksPerSecondMatchesKernel(t *testing.T) {
	if got := int64(time.Second / sim.Tick); got != containerdrone.TicksPerSecond {
		t.Fatalf("kernel runs at %d ticks/s, public TicksPerSecond is %d", got, containerdrone.TicksPerSecond)
	}
}
