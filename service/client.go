package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"containerdrone"
)

// Client talks to a campaignd server. The zero HTTPClient uses
// http.DefaultClient; Tenant, when set, rides on every request as the
// X-Tenant header; Retry, when configured, transparently retries
// backpressure rejections.
type Client struct {
	BaseURL    string
	Tenant     string
	HTTPClient *http.Client
	Retry      Retry
}

// Retry configures client-side retry of backpressure rejections — the
// 429 (quota, queue full) and 503 (draining) answers the server emits
// by design under load. Only those are retried: a rejected submission
// was never accepted, so repeating it is safe; transport failures and
// 4xx/5xx verdicts are returned immediately. The zero value disables
// retry.
type Retry struct {
	// MaxAttempts is the total request budget, first try included;
	// <= 1 disables retry.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms). Each
	// scheduled delay gets full jitter — half deterministic, half
	// random — so a thundering herd of rejected clients decorrelates;
	// a server Retry-After hint, when longer, takes precedence over
	// the computed delay. MaxDelay caps the computed backoff (default
	// 5s); the server hint is honored even beyond it.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OnRetry, when set, observes every scheduled retry: the attempt
	// number just failed (1-based), the rejection, and the wait.
	OnRetry func(attempt int, err *APIError, delay time.Duration)
}

// backoff computes the wait before attempt+2 (attempt is 0-based).
func (r Retry) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := max
	if attempt < 20 && base<<attempt < max {
		d = base << attempt
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		return retryAfter
	}
	return d
}

// NewClient builds a client for a server base URL ("http://host:port").
func NewClient(baseURL, tenant string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Tenant: tenant}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx service answer, decoded from the uniform
// ErrorResponse body. RetryAfter is non-zero on 429/503 backpressure
// answers — callers should wait that long before retrying.
type APIError struct {
	StatusCode int
	Reason     string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %d %s: %s", e.StatusCode, e.Reason, e.Message)
}

// Retryable reports whether the rejection is backpressure (quota,
// in-flight cap, queue full, draining) rather than a permanent error.
func (e *APIError) Retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// apiError decodes an error response, folding the Retry-After header
// in.
func apiError(resp *http.Response) error {
	var body ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = json.Unmarshal(raw, &body)
	e := &APIError{
		StatusCode: resp.StatusCode,
		Reason:     body.Reason,
		Message:    body.Error,
		RetryAfter: time.Duration(body.RetryAfterS * float64(time.Second)),
	}
	if e.Message == "" {
		e.Message = strings.TrimSpace(string(raw))
	}
	if e.RetryAfter == 0 {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				e.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return e
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, buf, out)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) || !apiErr.Retryable() || attempt+1 >= c.Retry.MaxAttempts {
			return err
		}
		delay := c.Retry.backoff(attempt, apiErr.RetryAfter)
		if c.Retry.OnRetry != nil {
			c.Retry.OnRetry(attempt+1, apiErr, delay)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a campaign and returns the accepted job handle.
// Backpressure rejections come back as *APIError with RetryAfter set.
func (c *Client) Submit(ctx context.Context, req CampaignRequest) (SubmitResponse, error) {
	req.SchemaVersion = SchemaVersion
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", req, &out)
	return out, err
}

// SubmitWait submits and blocks until the job reaches a terminal
// state, returning its final status (including the full result).
func (c *Client) SubmitWait(ctx context.Context, req CampaignRequest) (JobStatus, error) {
	req.SchemaVersion = SchemaVersion
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns?wait=1", req, &out)
	return out, err
}

// Status fetches a job's current JobStatus.
func (c *Client) Status(ctx context.Context, jobID string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &out)
	return out, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, jobID string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, &out)
	return out, err
}

// Wait blocks until the job is terminal by following its record
// stream (no polling), returning the final status.
func (c *Client) Wait(ctx context.Context, jobID string) (JobStatus, error) {
	return c.StreamRecords(ctx, jobID, nil)
}

// StreamRecords follows a job's SSE record stream, invoking fn (when
// non-nil) for every record in campaign index order — late callers
// replay the full history first — and returns the terminal JobStatus
// delivered by the stream's closing event ("done", or "error" for a
// job the server failed; either way the status tells the story and
// the returned error is nil — a failed job is an answer, not a
// transport problem).
func (c *Client) StreamRecords(ctx context.Context, jobID string, fn func(containerdrone.Record)) (JobStatus, error) {
	return c.StreamRecordsFrom(ctx, jobID, 0, fn)
}

// StreamRecordsFrom is StreamRecords resuming at record index from —
// the reconnect path: a consumer that counted n records before losing
// its connection resumes with from=n and sees no duplicates and no
// gaps, because the server replays its append-only record log from
// exactly that index.
func (c *Client) StreamRecordsFrom(ctx context.Context, jobID string, from int, fn func(containerdrone.Record)) (JobStatus, error) {
	url := c.BaseURL + "/v1/jobs/" + jobID + "/records"
	if from > 0 {
		url += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, apiError(resp)
	}
	var status JobStatus
	gotDone := false
	err = readEvents(resp.Body, func(event string, data []byte) error {
		switch event {
		case "record":
			if fn != nil {
				var rec containerdrone.Record
				if err := json.Unmarshal(data, &rec); err != nil {
					return err
				}
				fn(rec)
			}
		case "done", "error":
			if err := json.Unmarshal(data, &status); err != nil {
				return err
			}
			gotDone = true
		}
		return nil
	})
	if err != nil {
		return status, err
	}
	if !gotDone {
		return status, fmt.Errorf("service: record stream for %s ended without a terminal event", jobID)
	}
	return status, nil
}

// Healthz probes the health endpoint; nil means the server is up and
// not draining.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// readEvents parses an SSE stream, invoking emit per event. Only the
// single-data-line frames the server writes are supported.
func readEvents(r io.Reader, emit func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	// A done event carries a full CampaignResult; give the scanner
	// room for large single-line payloads.
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := emit(event, []byte(strings.TrimPrefix(line, "data: "))); err != nil {
				return err
			}
		case line == "":
			event = ""
		}
	}
	return sc.Err()
}
