package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// journalFile is the journal's file name inside its directory.
const journalFile = "jobs.wal"

// Journal is campaignd's durable job log: a JSON-lines write-ahead
// record of every accepted job, fsynced before the submitter hears
// 202, plus a matching "done" entry when the job reaches any terminal
// state. A campaignd killed mid-flight (power loss, OOM, kill -9)
// reopens the journal on boot, finds the accepts with no matching
// done, and re-enqueues them — at-least-once execution for every
// acknowledged job. See the package documentation for the format and
// the delivery contract.
type Journal struct {
	path string

	mu sync.Mutex
	f  *os.File

	pending []PendingJob
	maxID   int64
}

// PendingJob is one journal entry awaiting replay: a job the previous
// process accepted but never settled.
type PendingJob struct {
	ID      string
	Tenant  string
	Request CampaignRequest
}

// journalEntry is one journal line. Request rides only on accepts.
type journalEntry struct {
	Op      string           `json:"op"` // "accept" | "done"
	JobID   string           `json:"job_id"`
	Tenant  string           `json:"tenant,omitempty"`
	Request *CampaignRequest `json:"request,omitempty"`
}

// OpenJournal opens (creating if needed) the journal in dir, replays
// its history to find incomplete jobs, compacts the file down to just
// those, and returns the journal ready for appends. Pending jobs are
// exposed via Pending for the server to re-enqueue; MaxID restores the
// ID counter so replayed and new jobs never collide.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{path: filepath.Join(dir, journalFile)}
	if err := j.replay(); err != nil {
		return nil, fmt.Errorf("journal: replay %s: %w", j.path, err)
	}
	if err := j.compact(); err != nil {
		return nil, fmt.Errorf("journal: compact %s: %w", j.path, err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	return j, nil
}

// replay reads the journal left by the previous process, pairing
// accepts with dones. A missing file is an empty journal.
func (j *Journal) replay() error {
	f, err := os.Open(j.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	open := make(map[string]*PendingJob)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Every append is a single write(2), so an undecodable line
			// can only be the crash-truncated tail; everything before it
			// is intact and everything after it does not exist.
			break
		}
		switch e.Op {
		case "accept":
			if e.Request == nil {
				continue
			}
			if _, dup := open[e.JobID]; !dup {
				order = append(order, e.JobID)
			}
			open[e.JobID] = &PendingJob{ID: e.JobID, Tenant: e.Tenant, Request: *e.Request}
			if n := jobNum(e.JobID); n > j.maxID {
				j.maxID = n
			}
		case "done":
			delete(open, e.JobID)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, id := range order {
		if p, ok := open[id]; ok {
			j.pending = append(j.pending, *p)
			delete(open, id)
		}
	}
	return nil
}

// compact rewrites the journal to just the pending accepts — the only
// entries a future boot needs — via write-temp/fsync/rename, so a
// crash mid-compaction leaves either the old journal or the new one,
// never a mix.
func (j *Journal) compact() error {
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	for i := range j.pending {
		p := &j.pending[i]
		b, err := json.Marshal(journalEntry{Op: "accept", JobID: p.ID, Tenant: p.Tenant, Request: &p.Request})
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(append(b, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(j.path))
}

// Accept durably records an admitted job. The server calls it after
// allocating the job ID and before acknowledging the submitter, so an
// acknowledged job is always either settled or replayable.
func (j *Journal) Accept(id, tenant string, req CampaignRequest) error {
	return j.append(journalEntry{Op: "accept", JobID: id, Tenant: tenant, Request: &req})
}

// Done durably records a job reaching any terminal state (done,
// failed, or canceled) — the entry that stops a job from replaying.
func (j *Journal) Done(id string) error {
	return j.append(journalEntry{Op: "done", JobID: id})
}

// append writes one entry as a single write(2) followed by fsync:
// the line is either fully on disk or (torn tail) ignored on replay.
func (j *Journal) append(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Pending returns the jobs the previous process accepted but never
// settled, in their original accept order.
func (j *Journal) Pending() []PendingJob {
	out := make([]PendingJob, len(j.pending))
	copy(out, j.pending)
	return out
}

// MaxID returns the highest numeric job ID the journal has seen, so a
// restarted server resumes its ID sequence past every journaled job.
func (j *Journal) MaxID() int64 { return j.maxID }

// Close closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// jobNum extracts the numeric suffix of a "j-%08d" job ID; foreign
// IDs count as zero.
func jobNum(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
