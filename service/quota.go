package service

import (
	"math"
	"sync"
	"time"
)

// tenantState is one tenant's token bucket and in-flight ledger.
type tenantState struct {
	tokens float64
	last   time.Time

	inFlight int

	accepted         int64
	rejectedQuota    int64
	rejectedInFlight int64
}

// quotaTable enforces per-tenant admission: a token bucket (rate
// tokens/s, burst capacity) plus a max-in-flight cap. Zero rate or
// zero cap disables the corresponding check, so the default server is
// quota-free.
type quotaTable struct {
	rate        float64 // submissions/s refill; 0 = unlimited
	burst       float64
	maxInFlight int // per tenant; 0 = unlimited

	now func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newQuotaTable(rate float64, burst, maxInFlight int, now func() time.Time) *quotaTable {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b <= 0 {
		b = 1
	}
	return &quotaTable{
		rate:        rate,
		burst:       b,
		maxInFlight: maxInFlight,
		now:         now,
		tenants:     make(map[string]*tenantState),
	}
}

func (q *quotaTable) state(tenant string) *tenantState {
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantState{tokens: q.burst, last: q.now()}
		q.tenants[tenant] = t
	}
	return t
}

// admit charges one submission against tenant's quota. On rejection
// it returns false plus the Retry-After hint: time until the bucket
// refills one token, or a one-second poll hint for the in-flight cap
// (whose drain time depends on job length, not on a clock).
func (q *quotaTable) admit(tenant string) (ok bool, retryAfter time.Duration, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.state(tenant)
	if q.maxInFlight > 0 && t.inFlight >= q.maxInFlight {
		t.rejectedInFlight++
		return false, time.Second, "in_flight"
	}
	if q.rate > 0 {
		now := q.now()
		t.tokens = math.Min(q.burst, t.tokens+now.Sub(t.last).Seconds()*q.rate)
		t.last = now
		if t.tokens < 1 {
			t.rejectedQuota++
			wait := time.Duration((1 - t.tokens) / q.rate * float64(time.Second))
			if wait < time.Second {
				wait = time.Second // Retry-After has whole-second granularity
			}
			return false, wait, "quota"
		}
		t.tokens--
	}
	t.inFlight++
	t.accepted++
	return true, 0, ""
}

// release returns one in-flight slot to the tenant (job reached a
// terminal state).
func (q *quotaTable) release(tenant string) {
	q.mu.Lock()
	if t := q.tenants[tenant]; t != nil && t.inFlight > 0 {
		t.inFlight--
	}
	q.mu.Unlock()
}

// snapshot renders the per-tenant ledger sorted by tenant name.
func (q *quotaTable) snapshot() []TenantMetrics {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tenants) == 0 {
		return nil
	}
	out := make([]TenantMetrics, 0, len(q.tenants))
	for name, t := range q.tenants {
		out = append(out, TenantMetrics{
			Tenant:           name,
			Accepted:         t.accepted,
			RejectedQuota:    t.rejectedQuota,
			RejectedInFlight: t.rejectedInFlight,
			InFlight:         t.inFlight,
		})
	}
	// Insertion sort keeps the dependency surface flat; tenant counts
	// are human-scale.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Tenant < out[k-1].Tenant; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}
