package service

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"containerdrone"
)

// SchemaVersion is stamped into every service request and response.
// See the package documentation for the bump policy: breaking changes
// only; optional additions ride on the same version.
const SchemaVersion = 1

// CampaignRequest is the unit of submission: one Monte-Carlo campaign
// over a registered scenario, expressed with the same knobs the SDK's
// NewCampaign options take. The zero value of every optional field
// selects the SDK default, so the minimal request is just
// {"schema_version":1,"scenario":"udpflood"}.
type CampaignRequest struct {
	SchemaVersion int `json:"schema_version"`
	// Scenario is the registered scenario name (see Scenarios).
	Scenario string `json:"scenario"`
	// Runs is the seed count per sweep point (default 1).
	Runs int `json:"runs,omitempty"`
	// BaseSeed roots the deterministic per-run seed derivation
	// (default 1); a campaign is a pure function of (request, seed).
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// DurationS overrides each flight's simulated length, seconds.
	DurationS float64 `json:"duration_s,omitempty"`
	// Params are named numeric overrides applied to every grid cell.
	Params map[string]float64 `json:"params,omitempty"`
	// Sweeps expand to the cartesian grid of campaign points.
	Sweeps []containerdrone.Sweep `json:"sweeps,omitempty"`
	// ColdStart disables warm-pool reuse (debugging/A-B measurement).
	ColdStart bool `json:"cold_start,omitempty"`
	// NoPrefixShare disables checkpoint-fork prefix sharing; the
	// negative spelling keeps the zero value on the SDK default (on).
	NoPrefixShare bool `json:"no_prefix_share,omitempty"`
	// Parallel caps the campaign's worker count inside its service
	// worker slot; 0 means the server's per-job default. The server
	// clamps it to its configured maximum.
	Parallel int `json:"parallel,omitempty"`
	// TimeoutS bounds the job's wall-clock run time, seconds; 0 means
	// the server default. The server clamps it to its maximum. A job
	// that hits its deadline returns the partial result accumulated so
	// far, marked partial.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// Validate checks everything that can be checked without running:
// schema version, scenario and parameter existence (including sweep
// keys), and value sanity. It is the submit-time gate — a typo fails
// the request with 400 instead of burning a worker slot.
func (r *CampaignRequest) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: request schema v%d, this server speaks v%d", ErrSchemaVersion, r.SchemaVersion, SchemaVersion)
	}
	if r.Scenario == "" {
		return fmt.Errorf("request names no scenario")
	}
	if r.Runs < 0 {
		return fmt.Errorf("negative runs %d", r.Runs)
	}
	if r.DurationS < 0 || r.TimeoutS < 0 {
		return fmt.Errorf("negative duration or timeout")
	}
	if r.Parallel < 0 {
		return fmt.Errorf("negative parallel %d", r.Parallel)
	}
	for _, sw := range r.Sweeps {
		if sw.Key == "" || len(sw.Values) == 0 {
			return fmt.Errorf("sweep with empty key or value grid")
		}
	}
	// Probe-build the first grid cell: resolves the scenario through
	// the registry and applies every param key (base params and sweep
	// keys alike), surfacing unknown names here. ~60µs — cheap
	// insurance for a multi-run campaign.
	probe := make(map[string]float64, len(r.Params)+len(r.Sweeps))
	for k, v := range r.Params {
		probe[k] = v
	}
	for _, sw := range r.Sweeps {
		probe[sw.Key] = sw.Values[0]
	}
	_, err := containerdrone.NewFromConfig(containerdrone.Config{
		Scenario:  r.Scenario,
		DurationS: r.DurationS,
		Params:    probe,
	})
	return err
}

// Points returns the grid size of the request (sweep cartesian).
func (r *CampaignRequest) Points() int {
	n := 1
	for _, sw := range r.Sweeps {
		n *= len(sw.Values)
	}
	return n
}

// TotalRuns returns points × runs-per-point.
func (r *CampaignRequest) TotalRuns() int {
	runs := r.Runs
	if runs <= 0 {
		runs = 1
	}
	return r.Points() * runs
}

// options lowers the request onto the SDK campaign options, with the
// worker count resolved by the server.
func (r *CampaignRequest) options(parallel int) []containerdrone.CampaignOption {
	opts := []containerdrone.CampaignOption{
		containerdrone.WithSweeps(r.Sweeps...),
		containerdrone.WithParallel(parallel),
		containerdrone.WithPrefixSharing(!r.NoPrefixShare),
	}
	if r.Runs > 0 {
		opts = append(opts, containerdrone.WithRuns(r.Runs))
	}
	if r.BaseSeed != 0 {
		opts = append(opts, containerdrone.WithBaseSeed(r.BaseSeed))
	}
	if r.DurationS > 0 {
		opts = append(opts, containerdrone.WithRunDuration(time.Duration(r.DurationS*float64(time.Second))))
	}
	if len(r.Params) > 0 {
		opts = append(opts, containerdrone.WithBaseParams(r.Params))
	}
	if r.ColdStart {
		opts = append(opts, containerdrone.WithColdStart())
	}
	return opts
}

// Job status strings reported by SubmitResponse and JobStatus.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// SubmitResponse acknowledges an accepted (queued) campaign.
type SubmitResponse struct {
	SchemaVersion int    `json:"schema_version"`
	JobID         string `json:"job_id"`
	Tenant        string `json:"tenant"`
	Status        string `json:"status"`
	// QueueDepth is the queue occupancy observed at accept time —
	// a client-side congestion signal.
	QueueDepth int `json:"queue_depth"`
}

// JobStatus is the state of one job; once Status is terminal
// (done/failed/canceled) Result carries the full campaign outcome.
type JobStatus struct {
	SchemaVersion int    `json:"schema_version"`
	JobID         string `json:"job_id"`
	Tenant        string `json:"tenant"`
	Status        string `json:"status"`
	// Error is the terminal error, if any ("context deadline exceeded"
	// for a job cut off by its deadline).
	Error string `json:"error,omitempty"`
	// Partial marks a result truncated by deadline, cancellation, or
	// drain timeout: records the campaign never ran carry their own
	// per-record errors inside Result.
	Partial bool `json:"partial,omitempty"`
	// RunsDone / RunsTotal report streaming progress.
	RunsDone  int `json:"runs_done"`
	RunsTotal int `json:"runs_total"`
	// WaitedS and RanS are the job's queue wait and execution wall
	// times, seconds.
	WaitedS float64 `json:"waited_s,omitempty"`
	RanS    float64 `json:"ran_s,omitempty"`
	// Result is present once the job is terminal (nil for canceled
	// jobs that never started).
	Result *containerdrone.CampaignResult `json:"result,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx service answer.
type ErrorResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
	// Reason is a stable machine-readable cause: "quota", "in_flight",
	// "queue_full", "draining", "bad_request", "not_found".
	Reason string `json:"reason,omitempty"`
	// RetryAfterS mirrors the Retry-After header on 429/503 answers.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// TenantMetrics is one tenant's accept/reject ledger.
type TenantMetrics struct {
	Tenant   string `json:"tenant"`
	Accepted int64  `json:"accepted"`
	// RejectedQuota counts token-bucket rejections; RejectedInFlight
	// counts max-in-flight cap rejections.
	RejectedQuota    int64 `json:"rejected_quota"`
	RejectedInFlight int64 `json:"rejected_in_flight"`
	InFlight         int   `json:"in_flight"`
}

// MetricsSnapshot is the /metrics document.
type MetricsSnapshot struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeS       float64 `json:"uptime_s"`
	Draining      bool    `json:"draining"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	InFlight   int `json:"in_flight"`
	Workers    int `json:"workers"`

	Accepted      int64 `json:"accepted"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Canceled      int64 `json:"canceled"`
	RejectedQuota int64 `json:"rejected_quota"`
	RejectedQueue int64 `json:"rejected_queue"`
	RejectedDrain int64 `json:"rejected_drain"`

	// RunsCompleted counts simulation runs across all jobs; RunsPerSec
	// is the lifetime average rate. RunsFailed counts per-run failure
	// records (including panics the campaign engine quarantined).
	RunsCompleted int64   `json:"runs_completed"`
	RunsPerSec    float64 `json:"runs_per_sec"`
	RunsFailed    int64   `json:"runs_failed"`

	// Crash-only supervision counters: workers retired by a job panic
	// and respawned, jobs re-queued after such a panic, and jobs
	// re-enqueued from the durable journal at boot.
	WorkerRestarts int64 `json:"worker_restarts"`
	JobsRetried    int64 `json:"jobs_retried"`
	JournalReplays int64 `json:"journal_replays"`

	// Job latency (submit → terminal) percentiles over a sliding
	// window of recent jobs, seconds.
	LatencyP50S float64 `json:"latency_p50_s"`
	LatencyP99S float64 `json:"latency_p99_s"`

	Tenants []TenantMetrics `json:"tenants,omitempty"`
}

// ErrSchemaVersion marks a payload from an incompatible schema.
var ErrSchemaVersion = fmt.Errorf("service: schema version mismatch")

// DecodeCampaignRequest strictly decodes a request: unknown fields,
// trailing data, and foreign schema versions are all rejected.
func DecodeCampaignRequest(r io.Reader) (CampaignRequest, error) {
	var req CampaignRequest
	if err := decodeStrict(r, &req); err != nil {
		return CampaignRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return CampaignRequest{}, err
	}
	return req, nil
}

// decodeStrict decodes exactly one JSON document into v, rejecting
// unknown fields and trailing data.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}
