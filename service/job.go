package service

import (
	"context"
	"sync"
	"time"

	"containerdrone"
)

// job is one accepted campaign: its request, lifecycle state, the
// records streamed out of the running campaign, and the broadcast
// plumbing SSE subscribers follow.
//
// Record fan-out is pull-based: the campaign's emitter goroutine
// appends to records under the mutex and closes the current wakeup
// channel; each subscriber tracks its own read index into the shared
// slice and waits on the wakeup channel when it catches up. No
// per-subscriber buffering, no drops, and every subscriber sees the
// full record sequence in campaign index order — a late subscriber
// simply starts with a longer replay.
type job struct {
	id     string
	tenant string
	req    CampaignRequest

	submitted time.Time
	ctx       context.Context
	cancel    context.CancelFunc

	// admitted marks a job holding a slot in this process's quota
	// table; journal-replayed jobs do not (their admission belonged to
	// a previous process). attempts counts completed executions that
	// ended in a worker panic; it is read and advanced only by the
	// worker/supervisor goroutine that currently owns the job, with
	// the queue channel providing the hand-off ordering.
	admitted bool
	attempts int

	mu       sync.Mutex
	status   string
	err      string
	partial  bool
	started  time.Time
	finished time.Time
	records  []containerdrone.Record
	result   *containerdrone.CampaignResult
	wakeup   chan struct{} // closed + replaced on every state change
	done     chan struct{} // closed once terminal
}

func newJob(id, tenant string, req CampaignRequest, cancel context.CancelFunc) *job {
	return &job{
		id:        id,
		tenant:    tenant,
		req:       req,
		submitted: time.Now(),
		cancel:    cancel,
		status:    StatusQueued,
		wakeup:    make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// signal wakes every waiting subscriber; callers hold j.mu.
func (j *job) signal() {
	close(j.wakeup)
	j.wakeup = make(chan struct{})
}

// emit appends one streamed record (called from the campaign's single
// emitter goroutine).
func (j *job) emit(r containerdrone.Record) {
	j.mu.Lock()
	j.records = append(j.records, r)
	j.signal()
	j.mu.Unlock()
}

// start marks the job running.
func (j *job) start() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.signal()
	j.mu.Unlock()
}

// reset returns a panicked job to the queued state for another
// attempt. The record log restarts from nil — not a truncation of the
// shared backing array, which followers still hold windows into — and
// because a campaign is a pure function of (request, seed), the re-run
// emits a byte-identical record sequence: a follower blocked at index
// i simply resumes, without duplicates or gaps, once the replay passes
// i again.
func (j *job) reset() {
	j.mu.Lock()
	j.attempts++
	j.status = StatusQueued
	j.err = ""
	j.partial = false
	j.started = time.Time{}
	j.records = nil
	j.result = nil
	j.signal()
	j.mu.Unlock()
}

// finish moves the job to its terminal state and releases waiters.
// A job that is already terminal stays as it is: settlement races
// (a cancel landing while the supervisor fails a panicked job) must
// not double-close done or rewrite the verdict.
func (j *job) finish(res *containerdrone.CampaignResult, runErr error, canceled bool) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	j.result = res
	switch {
	case runErr == nil:
		j.status = StatusDone
	case canceled:
		j.status = StatusCanceled
		j.err = runErr.Error()
		j.partial = true
	case res != nil:
		// A campaign that returned records but also an error was cut
		// short (deadline); the result is usable but partial.
		j.status = StatusDone
		j.err = runErr.Error()
		j.partial = true
	default:
		j.status = StatusFailed
		j.err = runErr.Error()
	}
	j.signal()
	close(j.done)
	j.mu.Unlock()
}

// terminal reports whether the job has finished, failed, or been
// canceled; callers hold j.mu.
func (j *job) terminal() bool {
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled
}

// snapshot renders the job's JobStatus. Terminal statuses include the
// full result.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		SchemaVersion: SchemaVersion,
		JobID:         j.id,
		Tenant:        j.tenant,
		Status:        j.status,
		Error:         j.err,
		Partial:       j.partial,
		RunsDone:      len(j.records),
		RunsTotal:     j.req.TotalRuns(),
	}
	if !j.started.IsZero() {
		st.WaitedS = j.started.Sub(j.submitted).Seconds()
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RanS = end.Sub(j.started).Seconds()
	}
	if j.terminal() {
		st.Result = j.result
	}
	return st
}

// follow calls fn for every record from index `from` onward, in
// order, until the job is terminal or ctx is done. It returns the
// next unread index and whether the job reached a terminal state.
func (j *job) follow(ctx context.Context, from int, fn func(containerdrone.Record) error) (int, bool, error) {
	i := from
	for {
		j.mu.Lock()
		n := len(j.records)
		term := j.terminal()
		wake := j.wakeup
		// Copy the pending window under the lock: the records slice is
		// append-only, but the emitter may grow it concurrently and a
		// slow fn must not hold the lock.
		var pending []containerdrone.Record
		if i < n {
			pending = j.records[i:n:n]
		}
		j.mu.Unlock()
		for _, r := range pending {
			if err := fn(r); err != nil {
				return i, false, err
			}
			i++
		}
		if term && i >= n {
			return i, true, nil
		}
		if i < n {
			continue // more arrived while fn ran
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return i, false, ctx.Err()
		}
	}
}
