package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"containerdrone"
)

// Config sizes and guards one Server. The zero value is a sane
// single-box default: GOMAXPROCS workers, a 64-deep queue, no tenant
// quotas, 60 s default / 10 min max job deadline.
type Config struct {
	// Workers is the persistent worker count — the number of campaigns
	// that execute concurrently. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the accepted-but-not-yet-running backlog; a
	// full queue rejects with 429. Default 64.
	QueueDepth int
	// JobParallel is the campaign worker count given to each job
	// (inside its service worker slot). Default 1: the service fleet,
	// not the per-job pool, is the parallelism unit. Requests may ask
	// for more via Parallel, clamped to MaxJobParallel.
	JobParallel int
	// MaxJobParallel clamps CampaignRequest.Parallel. Default
	// max(JobParallel, 1).
	MaxJobParallel int

	// QuotaRate is the per-tenant token-bucket refill in submissions
	// per second; 0 disables rate quotas. QuotaBurst is the bucket
	// capacity (default 1 when rate quotas are on).
	QuotaRate  float64
	QuotaBurst int
	// MaxInFlightPerTenant caps one tenant's queued+running jobs;
	// 0 disables the cap.
	MaxInFlightPerTenant int

	// MaxRunsPerJob rejects degenerate grids up front. Default 65536.
	MaxRunsPerJob int

	// DefaultTimeout bounds a job's execution when the request names
	// none (default 60 s); MaxTimeout clamps request-supplied
	// deadlines (default 10 min). The clock starts when a worker picks
	// the job up — queue wait is bounded by backpressure instead.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// Retention is how many terminal jobs stay queryable before the
	// oldest are evicted. Default 16384.
	Retention int

	// Journal, when set, makes accepted jobs durable: every admission
	// is journaled (and fsynced) before the submitter hears 202, and a
	// server built over a journal with unsettled entries re-enqueues
	// them at boot — at-least-once execution across process crashes.
	// Open one with OpenJournal; the server appends to it but the
	// caller owns Close.
	Journal *Journal

	// MaxJobRetries is how many times a job whose worker panicked is
	// re-queued before it settles as failed. Default 1 (the campaign
	// engine already quarantines per-run panics, so a job-level panic
	// recurring twice is structural, not transient); negative disables
	// retries.
	MaxJobRetries int

	// RestartRate and RestartBurst shape the worker supervisor's
	// restart token bucket: replacements for panicked workers are
	// immediate up to the burst, then spaced at the rate. Defaults:
	// 1/s, burst 5.
	RestartRate  float64
	RestartBurst int

	// ChaosHook, when set, runs at the top of every job attempt with
	// the job's ID and attempt number — the service-level fault
	// injection point (campaignd -chaos-panic-job). A panic thrown
	// from the hook exercises the full supervision path: worker death,
	// rate-limited respawn, job retry. Test and CI use only.
	ChaosHook func(jobID string, attempt int)

	// Logf receives supervision diagnostics (worker panics with their
	// stacks). Default: discard.
	Logf func(format string, args ...any)

	// now overrides the quota clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobParallel <= 0 {
		c.JobParallel = 1
	}
	if c.MaxJobParallel <= 0 {
		c.MaxJobParallel = c.JobParallel
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 1
	}
	if c.MaxRunsPerJob <= 0 {
		c.MaxRunsPerJob = 65536
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.Retention <= 0 {
		c.Retention = 16384
	}
	if c.MaxJobRetries == 0 {
		c.MaxJobRetries = 1
	} else if c.MaxJobRetries < 0 {
		c.MaxJobRetries = 0
	}
	if c.RestartRate <= 0 {
		c.RestartRate = 1
	}
	if c.RestartBurst <= 0 {
		c.RestartBurst = 5
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the campaignd core: an http.Handler plus the worker fleet
// behind it. Build with NewServer, mount anywhere (it serves relative
// paths), and call Shutdown to drain.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	queue    chan *job
	metrics  *metrics
	quotas   *quotaTable
	restarts *restartLimiter
	journal  *Journal

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   int64
	jobs     map[string]*job
	terminal []string // eviction order
}

// NewServer builds the server and starts its worker fleet; callers
// own the listener (mount s on an http.Server) and the drain call.
// When cfg.Journal holds unsettled jobs from a crashed predecessor,
// they are re-enqueued before any worker starts, in their original
// accept order, ahead of new submissions.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var pending []PendingJob
	if cfg.Journal != nil {
		pending = cfg.Journal.Pending()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		// Replayed jobs bypass admission (they were admitted in a past
		// life); widen the queue so re-enqueueing them cannot block or
		// steal capacity from new submissions.
		queue:      make(chan *job, cfg.QueueDepth+len(pending)),
		metrics:    newMetrics(),
		quotas:     newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst, cfg.MaxInFlightPerTenant, cfg.now),
		restarts:   newRestartLimiter(cfg.RestartRate, cfg.RestartBurst, cfg.now),
		journal:    cfg.Journal,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	if s.journal != nil {
		s.nextID = s.journal.MaxID()
		for _, p := range pending {
			jobCtx, jobCancel := context.WithCancel(ctx)
			j := newJob(p.ID, p.Tenant, p.Request, jobCancel)
			j.ctx = jobCtx
			s.jobs[j.id] = j
			s.queue <- j
			s.metrics.accepted.Add(1)
			s.metrics.journalReplays.Add(1)
		}
	}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.startWorker(0)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains gracefully: new submissions are rejected (503, and
// /healthz flips to 503 for load balancers), every already-accepted
// job — queued or running — runs to completion, then the workers
// exit. If ctx expires first, in-flight jobs are force-canceled and
// finish with partial results before Shutdown returns ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // submissions stopped above; workers drain the backlog
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Metrics returns the current metrics snapshot (the /metrics body).
func (s *Server) Metrics() MetricsSnapshot {
	return s.metrics.snapshot(len(s.queue), cap(s.queue), s.cfg.Workers, s.Draining(), s.quotas.snapshot())
}

// tenantOf resolves the request's tenant: the X-Tenant header, then
// the tenant query parameter, then "anonymous". Quotas and metrics
// key on this name.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anonymous"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	req, err := DecodeCampaignRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if total := req.TotalRuns(); total > s.cfg.MaxRunsPerJob {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("request asks for %d runs; this server caps jobs at %d", total, s.cfg.MaxRunsPerJob), 0)
		return
	}
	ok, retry, reason := s.quotas.admit(tenant)
	if !ok {
		s.metrics.rejectedQuota.Add(1)
		writeError(w, http.StatusTooManyRequests, reason,
			fmt.Sprintf("tenant %q over %s limit", tenant, reason), retry)
		return
	}

	jobCtx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.quotas.release(tenant)
		s.metrics.rejectedDrain.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", 5*time.Second)
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j-%08d", s.nextID), tenant, req, cancel)
	j.ctx = jobCtx
	j.admitted = true
	if s.journal != nil {
		// Journal before acknowledging: an accepted job must be either
		// settled or replayable, whatever happens to this process. The
		// fsync rides inside the submit critical section — durability
		// is the admission cost when a journal is configured.
		if err := s.journal.Accept(j.id, tenant, req); err != nil {
			s.mu.Unlock()
			cancel()
			s.quotas.release(tenant)
			writeError(w, http.StatusInternalServerError, "journal",
				"journal append failed: "+err.Error(), 0)
			return
		}
	}
	var depth int
	select {
	case s.queue <- j:
		depth = len(s.queue)
		s.jobs[j.id] = j
		s.mu.Unlock()
	default:
		if s.journal != nil {
			// Compensate the accept entry so the rejected job is not
			// replayed after a crash; the burned ID is never reused.
			_ = s.journal.Done(j.id)
		} else {
			s.nextID--
		}
		s.mu.Unlock()
		cancel()
		s.quotas.release(tenant)
		s.metrics.rejectedQueue.Add(1)
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("job queue full (%d deep)", cap(s.queue)), time.Second)
		return
	}
	s.metrics.accepted.Add(1)

	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, j.snapshot())
		case <-r.Context().Done():
			// The client went away; the job keeps running and stays
			// queryable by ID.
			writeError(w, http.StatusRequestTimeout, "client_gone", "client canceled while waiting", 0)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		SchemaVersion: SchemaVersion,
		JobID:         j.id,
		Tenant:        tenant,
		Status:        StatusQueued,
		QueueDepth:    depth,
	})
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "not_found", "no such job", 0)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "not_found", "no such job", 0)
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleRecords streams a job's records as Server-Sent Events: one
// "record" event per completed run in campaign index order (late
// subscribers replay from the start), then a single terminal event —
// "done" carrying the JobStatus with the full result, or "error"
// carrying the failed JobStatus when the job did not survive (so a
// follower of a crashed job sees a structured verdict, never a hung
// stream). Each record event carries its campaign index as the SSE id
// line, and ?from=N resumes the replay at index N — a client that
// lost its connection after N records reconnects with from=N and sees
// no duplicates.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "not_found", "no such job", 0)
		return
	}
	from := 0
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "from must be a non-negative integer", 0)
			return
		}
		from = v
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	idx := from
	_, terminal, err := j.follow(r.Context(), from, func(rec containerdrone.Record) error {
		if err := writeEventID(w, "record", idx, rec); err != nil {
			return err
		}
		idx++
		return rc.Flush()
	})
	if err != nil || !terminal {
		return // client went away mid-stream
	}
	st := j.snapshot()
	name := "done"
	if st.Status == StatusFailed {
		name = "error"
	}
	if writeEvent(w, name, st) == nil {
		rc.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// runJob executes one job attempt to a terminal state. Settlement
// (finish + retire) happens explicitly on each exit path rather than
// in a defer: when the campaign panics, the job must stay unsettled so
// the supervisor's crash boundary (runJobSafe) can decide between a
// retry and a terminal failure.
func (s *Server) runJob(j *job) {
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	if err := j.ctx.Err(); err != nil {
		// Canceled while queued (DELETE, or a drain deadline forcing
		// the base context): never started, no result.
		j.finish(nil, err, true)
		s.retire(j)
		return
	}
	j.start()
	if s.cfg.ChaosHook != nil {
		s.cfg.ChaosHook(j.id, j.attempts)
	}
	timeout := s.cfg.DefaultTimeout
	if j.req.TimeoutS > 0 {
		timeout = time.Duration(j.req.TimeoutS * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	parallel := s.cfg.JobParallel
	if j.req.Parallel > 0 {
		parallel = j.req.Parallel
		if parallel > s.cfg.MaxJobParallel {
			parallel = s.cfg.MaxJobParallel
		}
	}
	opts := append(j.req.options(parallel), containerdrone.WithRecordObserver(j.emit))
	res, err := containerdrone.NewCampaign(j.req.Scenario, opts...).Run(ctx)
	j.finish(res, err, errors.Is(err, context.Canceled))
	s.retire(j)
}

// retire settles a terminal job: quota slot back, journal settlement,
// counters, latency observation, retention eviction.
func (s *Server) retire(j *job) {
	if j.admitted {
		// Journal-replayed jobs were admitted by a previous process and
		// hold no slot in this one's quota table.
		s.quotas.release(j.tenant)
	}
	if s.journal != nil {
		// A failed append leaves the accept entry standing, so the job
		// replays after the next crash — at-least-once over losing it.
		_ = s.journal.Done(j.id)
	}
	st := j.snapshot()
	switch st.Status {
	case StatusDone:
		s.metrics.completed.Add(1)
	case StatusCanceled:
		s.metrics.canceled.Add(1)
	default:
		s.metrics.failed.Add(1)
	}
	for _, rec := range j.records {
		if rec.Err == "" {
			s.metrics.runsCompleted.Add(1)
		} else {
			s.metrics.runsFailed.Add(1)
		}
	}
	s.metrics.observeLatency(time.Since(j.submitted))

	s.mu.Lock()
	s.terminal = append(s.terminal, j.id)
	for len(s.terminal) > s.cfg.Retention {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	s.mu.Unlock()
}

// writeJSON writes a JSON response body with the standard headers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform ErrorResponse, mirroring retry into
// the Retry-After header (whole seconds, rounded up) when non-zero.
func writeError(w http.ResponseWriter, code int, reason, msg string, retry time.Duration) {
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
	}
	writeJSON(w, code, ErrorResponse{
		SchemaVersion: SchemaVersion,
		Error:         msg,
		Reason:        reason,
		RetryAfterS:   retry.Seconds(),
	})
}

// writeEvent emits one SSE frame: "event: <name>" plus the JSON data
// line.
func writeEvent(w http.ResponseWriter, name string, v any) error {
	return writeEventID(w, name, -1, v)
}

// writeEventID emits an SSE frame with an id line (the record's
// campaign index — the client's resume cursor). A negative id omits
// the line.
func writeEventID(w http.ResponseWriter, name string, id int, v any) error {
	var err error
	if id >= 0 {
		_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: ", name, id)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: ", name)
	}
	if err != nil {
		return err
	}
	if err := json.NewEncoder(w).Encode(v); err != nil { // Encode appends the first \n
		return err
	}
	_, err = fmt.Fprint(w, "\n")
	return err
}
