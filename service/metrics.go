package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is the number of recent job latencies the p50/p99
// estimate is computed over.
const latencyWindow = 1024

// metrics is the server's counter set. Counters on the submit path
// are atomics; the latency ring takes a small mutex only when a job
// reaches a terminal state.
type metrics struct {
	start time.Time

	accepted      atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	canceled      atomic.Int64
	rejectedQuota atomic.Int64
	rejectedQueue atomic.Int64
	rejectedDrain atomic.Int64
	runsCompleted atomic.Int64
	inFlight      atomic.Int64

	// Crash-only accounting: per-run failure records, workers retired
	// by a job panic, jobs re-queued after one, and jobs re-enqueued
	// from the durable journal at boot.
	runsFailed     atomic.Int64
	workerRestarts atomic.Int64
	jobsRetried    atomic.Int64
	journalReplays atomic.Int64

	mu        sync.Mutex
	latencies [latencyWindow]float64
	latN      int // total observed; ring index is latN % latencyWindow
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// observeLatency records one job's submit→terminal latency.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.latencies[m.latN%latencyWindow] = d.Seconds()
	m.latN++
	m.mu.Unlock()
}

// latencyPercentiles returns (p50, p99) over the sliding window.
func (m *metrics) latencyPercentiles() (float64, float64) {
	m.mu.Lock()
	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]float64, n)
	copy(buf, m.latencies[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	rank := func(p float64) float64 {
		i := int(p*float64(n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return buf[i]
	}
	return rank(0.50), rank(0.99)
}

// snapshot renders the /metrics document; queue depth and capacity
// are supplied by the server, which owns the channel.
func (m *metrics) snapshot(queueDepth, queueCap, workers int, draining bool, tenants []TenantMetrics) MetricsSnapshot {
	uptime := time.Since(m.start).Seconds()
	p50, p99 := m.latencyPercentiles()
	runs := m.runsCompleted.Load()
	rps := 0.0
	if uptime > 0 {
		rps = float64(runs) / uptime
	}
	return MetricsSnapshot{
		SchemaVersion:  SchemaVersion,
		UptimeS:        uptime,
		Draining:       draining,
		QueueDepth:     queueDepth,
		QueueCap:       queueCap,
		InFlight:       int(m.inFlight.Load()),
		Workers:        workers,
		Accepted:       m.accepted.Load(),
		Completed:      m.completed.Load(),
		Failed:         m.failed.Load(),
		Canceled:       m.canceled.Load(),
		RejectedQuota:  m.rejectedQuota.Load(),
		RejectedQueue:  m.rejectedQueue.Load(),
		RejectedDrain:  m.rejectedDrain.Load(),
		RunsCompleted:  runs,
		RunsPerSec:     rps,
		RunsFailed:     m.runsFailed.Load(),
		WorkerRestarts: m.workerRestarts.Load(),
		JobsRetried:    m.jobsRetried.Load(),
		JournalReplays: m.journalReplays.Load(),
		LatencyP50S:    p50,
		LatencyP99S:    p99,
		Tenants:        tenants,
	}
}
