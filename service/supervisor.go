package service

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// This file is the worker fleet's supervision layer — the crash-only
// half of the server. A worker is never repaired in place: a job that
// panics through the SDK boundary retires its worker, a replacement is
// spawned under a restart-rate limiter (the crash-loop brake), and the
// panicked job is either re-queued for one more attempt or settled as
// failed so its SSE followers get a terminal "error" event instead of
// a hung stream.

// restartLimiter is the supervisor's token bucket: replacements for
// panicked workers are granted immediately up to the burst, then
// spaced out at the configured rate. A panic storm therefore degrades
// the fleet gradually instead of spinning a hot crash loop.
type restartLimiter struct {
	mu     sync.Mutex
	rate   float64 // restarts per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newRestartLimiter(rate float64, burst int, now func() time.Time) *restartLimiter {
	if now == nil {
		now = time.Now
	}
	return &restartLimiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now(),
		now:    now,
	}
}

// reserve takes one restart token and returns how long the caller must
// wait before acting on it: zero while under the rate, a growing delay
// once the burst is spent.
func (l *restartLimiter) reserve() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens--
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// startWorker adds one fleet member after an optional supervisor-
// imposed delay. The WaitGroup add happens on the caller's goroutine —
// when the caller is a dying worker, before its own deferred Done — so
// Shutdown can never observe a transient zero while a replacement is
// still spawning.
func (s *Server) startWorker(delay time.Duration) {
	s.workerWG.Add(1)
	go func() {
		defer s.workerWG.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		s.workerLoop()
	}()
}

// workerLoop is one fleet member: it owns whatever campaign it is
// running until that campaign reaches a terminal state. The SDK
// campaign engine below it keeps per-worker warm Systems, so a worker
// that sees a steady diet of same-scenario jobs stays allocation-free
// at the simulation layer. The loop exits when the queue closes
// (drain) or when a job panic retires the worker — its replacement is
// already spawning under the restart limiter by the time it returns.
func (s *Server) workerLoop() {
	for j := range s.queue {
		if s.runJobSafe(j) {
			continue
		}
		s.metrics.workerRestarts.Add(1)
		s.startWorker(s.restarts.reserve())
		return
	}
}

// runJobSafe is the worker's crash boundary: a panic anywhere in the
// job path — the chaos hook, the SDK, a scenario bug that escapes the
// campaign engine's own per-run recovery — is caught here and turned
// into a retry or a terminal failed status. The process never dies for
// one job. Returns false when the job panicked, retiring the worker.
func (s *Server) runJobSafe(j *job) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
			s.cfg.Logf("worker panic on %s (attempt %d): %v\n%s", j.id, j.attempts, r, debug.Stack())
			s.settlePanicked(j, r)
		}
	}()
	s.runJob(j)
	return true
}

// settlePanicked decides a panicked job's fate: one more attempt when
// the retry budget, the job's own context, and the queue all allow it;
// otherwise a terminal failed status, so followers of its record
// stream receive the "error" event rather than waiting forever.
func (s *Server) settlePanicked(j *job, cause any) {
	if j.attempts < s.cfg.MaxJobRetries && j.ctx.Err() == nil && s.requeue(j) {
		s.metrics.jobsRetried.Add(1)
		return
	}
	j.finish(nil, fmt.Errorf("job panicked: %v", cause), false)
	s.retire(j)
}

// requeue re-enqueues a panicked job for another attempt. It refuses —
// the caller then settles the job as failed — when the server is
// draining (the queue channel is closed; sending would panic the
// supervisor itself) or the queue is full.
func (s *Server) requeue(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	j.reset()
	select {
	case s.queue <- j:
		return true
	default:
		return false
	}
}
