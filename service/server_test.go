package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"containerdrone"
)

// newTestServer boots a Server on an httptest listener and tears both
// down at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	svc := NewServer(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		ts.Close()
	})
	return svc, NewClient(ts.URL, "")
}

func TestSubmitRunsToCompletion(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 2})
	sub, err := cl.Submit(t.Context(), CampaignRequest{
		Scenario: "baseline", Runs: 3, DurationS: 1,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.Status != StatusQueued || sub.JobID == "" {
		t.Fatalf("submit response %+v", sub)
	}
	st, err := cl.Wait(t.Context(), sub.JobID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.Status != StatusDone || st.Partial || st.Error != "" {
		t.Fatalf("terminal status %+v", st)
	}
	if st.Result == nil || len(st.Result.Records) != 3 {
		t.Fatalf("want 3 records, got %+v", st.Result)
	}
	for _, r := range st.Result.Records {
		if r.Err != "" {
			t.Fatalf("record error: %q", r.Err)
		}
	}
	if st.RunsDone != 3 || st.RunsTotal != 3 {
		t.Fatalf("progress %d/%d, want 3/3", st.RunsDone, st.RunsTotal)
	}
}

func TestSubmitWaitSynchronous(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	st, err := cl.SubmitWait(t.Context(), CampaignRequest{Scenario: "udpflood", Runs: 2, DurationS: 1})
	if err != nil {
		t.Fatalf("submit-wait: %v", err)
	}
	if st.Status != StatusDone || len(st.Result.Records) != 2 {
		t.Fatalf("status %+v", st)
	}
}

func TestStreamRecordsSSE(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	sub, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 5, DurationS: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var streamed []containerdrone.Record
	st, err := cl.StreamRecords(t.Context(), sub.JobID, func(r containerdrone.Record) {
		streamed = append(streamed, r)
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(streamed) != 5 {
		t.Fatalf("streamed %d records, want 5", len(streamed))
	}
	for i, r := range streamed {
		if r.Run != i {
			t.Fatalf("stream out of order: record %d has run %d", i, r.Run)
		}
	}
	if st.Status != StatusDone || st.Result == nil {
		t.Fatalf("done status %+v", st)
	}
	// A late subscriber replays the full history identically.
	var replay []containerdrone.Record
	if _, err := cl.StreamRecords(t.Context(), sub.JobID, func(r containerdrone.Record) {
		replay = append(replay, r)
	}); err != nil {
		t.Fatalf("replay stream: %v", err)
	}
	if len(replay) != len(streamed) {
		t.Fatalf("replay %d records, want %d", len(replay), len(streamed))
	}
}

func TestBadRequestsAre400(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1, MaxRunsPerJob: 10})
	for _, req := range []CampaignRequest{
		{Scenario: "no-such-scenario"},
		{Scenario: "baseline", Params: map[string]float64{"bogus": 1}},
		{Scenario: "baseline", Runs: 100}, // over MaxRunsPerJob
	} {
		_, err := cl.Submit(t.Context(), req)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %+v: want 400, got %v", req, err)
		}
	}
}

// TestQuotaRejection pins the token-bucket edge: a tenant over its
// burst gets 429 with a Retry-After hint, other tenants are
// unaffected, and the rejection shows up in /metrics.
func TestQuotaRejection(t *testing.T) {
	frozen := time.Now()
	_, cl := newTestServer(t, Config{
		Workers: 1, QuotaRate: 1, QuotaBurst: 2,
		now: func() time.Time { return frozen }, // bucket never refills
	})
	cl.Tenant = "greedy"
	req := CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 1}
	for i := 0; i < 2; i++ {
		if _, err := cl.Submit(t.Context(), req); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err := cl.Submit(t.Context(), req)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429 over quota, got %v", err)
	}
	if apiErr.Reason != "quota" {
		t.Fatalf("want reason quota, got %q", apiErr.Reason)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("want Retry-After >= 1s, got %v", apiErr.RetryAfter)
	}
	if !apiErr.Retryable() {
		t.Fatal("quota rejection must be retryable")
	}

	// Another tenant is not affected by greedy's empty bucket.
	other := *cl
	other.Tenant = "modest"
	if _, err := other.Submit(t.Context(), req); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}

	m, err := cl.Metrics(t.Context())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.RejectedQuota != 1 {
		t.Fatalf("metrics rejected_quota = %d, want 1", m.RejectedQuota)
	}
	var greedy *TenantMetrics
	for i := range m.Tenants {
		if m.Tenants[i].Tenant == "greedy" {
			greedy = &m.Tenants[i]
		}
	}
	if greedy == nil || greedy.RejectedQuota != 1 || greedy.Accepted != 2 {
		t.Fatalf("per-tenant ledger %+v", m.Tenants)
	}
}

// TestInFlightCapRejection pins the second quota edge: a tenant at
// its max-in-flight cap is rejected until a job settles.
func TestInFlightCapRejection(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1, MaxInFlightPerTenant: 1})
	cl.Tenant = "capped"
	// A job slow enough to still be in flight for the second submit.
	sub, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 50, DurationS: 2})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 1})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Reason != "in_flight" {
		t.Fatalf("want 429 in_flight, got %v", err)
	}
	if _, err := cl.Wait(t.Context(), sub.JobID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// Slot released: the tenant may submit again.
	if _, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 1}); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
}

// TestQueueFullRejection pins backpressure: with the lone worker busy
// and the one-deep queue occupied, the next submission bounces with
// 429 queue_full instead of buffering unboundedly.
func TestQueueFullRejection(t *testing.T) {
	svc, cl := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	long := CampaignRequest{Scenario: "baseline", Runs: 100, DurationS: 2}
	sub, err := cl.Submit(t.Context(), long)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitStatus(t, cl, sub.JobID, StatusRunning)
	if _, err := cl.Submit(t.Context(), long); err != nil { // parks in the queue
		t.Fatalf("submit 2: %v", err)
	}
	_, err = cl.Submit(t.Context(), long)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Reason != "queue_full" {
		t.Fatalf("want 429 queue_full, got %v", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("want Retry-After on queue_full, got %v", apiErr.RetryAfter)
	}
	if m := svc.Metrics(); m.RejectedQueue != 1 {
		t.Fatalf("metrics rejected_queue = %d, want 1", m.RejectedQueue)
	}
}

// TestDeadlinePartialResult pins the deadline edge: a job that blows
// its budget mid-run comes back done-but-partial, with the records it
// finished intact and the rest error-marked — never a hung worker,
// never a lost job.
func TestDeadlinePartialResult(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	// Sized so the budget always cuts the campaign short but always
	// admits at least one run, with or without the race detector's
	// ~20× slowdown: 2000 runs of a 0.2 s-sim flight is ≈1.2 s of
	// work on a fast box, and one flight is ≈15 ms on a slow one.
	st, err := cl.SubmitWait(t.Context(), CampaignRequest{
		Scenario: "baseline", Runs: 2000, DurationS: 0.2, TimeoutS: 0.25,
	})
	if err != nil {
		t.Fatalf("submit-wait: %v", err)
	}
	if st.Status != StatusDone || !st.Partial {
		t.Fatalf("want done+partial, got %+v", st)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("want deadline error, got %q", st.Error)
	}
	if st.Result == nil || len(st.Result.Records) != 2000 {
		t.Fatalf("partial result must keep the full record shape, got %d records", len(st.Result.Records))
	}
	completed, cut := 0, 0
	for _, r := range st.Result.Records {
		if r.Err == "" {
			completed++
		} else {
			cut++
		}
	}
	if completed == 0 || cut == 0 {
		t.Fatalf("want a genuinely partial result, got %d completed / %d cut", completed, cut)
	}
}

// TestGracefulDrain pins the shutdown contract: accepted jobs —
// running AND queued — complete with zero drops, new submissions are
// rejected, and /healthz flips to 503 for load balancers.
func TestGracefulDrain(t *testing.T) {
	svc, cl := newTestServer(t, Config{Workers: 1})
	job := CampaignRequest{Scenario: "baseline", Runs: 60, DurationS: 2}
	subA, err := cl.Submit(t.Context(), job)
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	waitStatus(t, cl, subA.JobID, StatusRunning)
	subB, err := cl.Submit(t.Context(), job) // queued behind A
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}

	if err := cl.Healthz(t.Context()); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- svc.Shutdown(ctx)
	}()
	for !svc.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while draining...
	_, err = cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 1})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusServiceUnavailable || apiErr.Reason != "draining" {
		t.Fatalf("want 503 draining, got %v", err)
	}
	// ...and health flips to 503 so balancers stop routing.
	if err := cl.Healthz(t.Context()); err == nil {
		t.Fatal("healthz must fail during drain")
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Both accepted jobs completed fully: zero dropped in-flight work.
	for _, id := range []string{subA.JobID, subB.JobID} {
		st, err := cl.Status(t.Context(), id)
		if err != nil {
			t.Fatalf("status %s after drain: %v", id, err)
		}
		if st.Status != StatusDone || st.Partial || st.Error != "" {
			t.Fatalf("job %s after drain: %+v", id, st)
		}
		for _, r := range st.Result.Records {
			if r.Err != "" {
				t.Fatalf("job %s dropped run %d during drain: %q", id, r.Run, r.Err)
			}
		}
	}
	if m := svc.Metrics(); m.RejectedDrain != 1 || m.Completed != 2 {
		t.Fatalf("post-drain metrics %+v", m)
	}
}

func TestCancelJob(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	sub, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 200, DurationS: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, cl, sub.JobID, StatusRunning)
	if _, err := cl.Cancel(t.Context(), sub.JobID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st, err := cl.Wait(t.Context(), sub.JobID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.Status != StatusCanceled || !st.Partial {
		t.Fatalf("want canceled+partial, got %+v", st)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 2})
	if err := cl.Healthz(t.Context()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if _, err := cl.SubmitWait(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 4, DurationS: 1}); err != nil {
		t.Fatalf("submit-wait: %v", err)
	}
	m, err := cl.Metrics(t.Context())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Accepted != 1 || m.Completed != 1 || m.RunsCompleted != 4 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Workers != 2 || m.QueueCap != 64 {
		t.Fatalf("config surface %+v", m)
	}
	if m.LatencyP50S <= 0 || m.LatencyP99S < m.LatencyP50S {
		t.Fatalf("latency percentiles %v/%v", m.LatencyP50S, m.LatencyP99S)
	}
	if m.RunsPerSec <= 0 {
		t.Fatalf("runs_per_sec %v", m.RunsPerSec)
	}
}

func TestJobNotFound(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	_, err := cl.Status(t.Context(), "j-99999999")
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404, got %v", err)
	}
}

// waitStatus polls until the job reports the wanted status (tests
// only — clients follow streams instead).
func waitStatus(t *testing.T, cl *Client, jobID, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Status(context.Background(), jobID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.Status == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", jobID, want)
}
