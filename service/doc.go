// Package service turns the containerdrone SDK into a long-running,
// multi-tenant campaign server: campaignd. Clients POST versioned
// JSON CampaignRequests; the server validates them, enqueues them onto
// a bounded job queue feeding a fleet of persistent workers (each job
// runs on the SDK's warm-pool campaign engine, so steady-state service
// traffic allocates next to nothing per run and prefix-sharing forks
// apply transparently), and streams per-run records back over
// Server-Sent Events plus final aggregates over plain JSON.
//
// The server survives heavy concurrent traffic by design rather than
// by luck:
//
//   - Per-tenant token-bucket quotas (rate + burst) and max-in-flight
//     caps. A tenant over quota gets 429 with a Retry-After hint; one
//     tenant's burst cannot starve another's steady trickle.
//   - Queue backpressure: the job queue is bounded, and a full queue
//     rejects with 429 + Retry-After instead of buffering unboundedly.
//   - Per-request deadlines: every job runs under a context deadline
//     (request-supplied, clamped to a server maximum) propagated
//     through Sim.Run, so a runaway request returns a partial result
//     instead of pinning a worker forever.
//   - Graceful drain: Shutdown stops accepting work (503), lets every
//     accepted job run to completion, then stops the listener — zero
//     accepted jobs are dropped on SIGTERM.
//   - Observability: /metrics reports queue depth, in-flight count,
//     per-tenant accept/reject counters, runs/s, p50/p99 job latency,
//     and the crash-only counters (runs_failed, worker_restarts,
//     jobs_retried, journal_replays); /healthz flips to 503 the moment
//     drain begins so load balancers stop routing before the listener
//     closes.
//
// # Endpoints
//
//	POST /v1/campaigns            submit a CampaignRequest; 202 + SubmitResponse
//	POST /v1/campaigns?wait=1     submit and block until the job finishes; 200 + JobStatus
//	GET  /v1/jobs/{id}            JobStatus (full CampaignResult once done)
//	GET  /v1/jobs/{id}/records    SSE: one "record" event per completed run
//	                              (?from=N resumes the replay at index N; each
//	                              record frame carries its index as the SSE id),
//	                              then one terminal event — "done" with the
//	                              JobStatus, or "error" with the failed
//	                              JobStatus when the job did not survive
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET  /healthz                 200 "ok" serving, 503 "draining" during drain
//	GET  /metrics                 MetricsSnapshot JSON
//
// # Crash-only supervision
//
// The worker fleet is crash-only: a job that panics through the SDK
// boundary retires its worker, a replacement spawns under a restart-
// rate token bucket (Config.RestartRate/RestartBurst — the crash-loop
// brake), and the job is re-queued up to Config.MaxJobRetries times
// before settling as failed. Because a campaign is a pure function of
// (request, seed), a retried job re-emits a byte-identical record
// stream, so SSE followers ride through the retry without duplicates
// or gaps; followers of a job that exhausts its retries receive the
// structured "error" terminal event instead of a hung stream. (Per-run
// panics inside the campaign engine never reach this layer: the engine
// quarantines them as per-run failure records.)
//
// # Durable job journal
//
// With Config.Journal set (campaignd -journal <dir>), accepted jobs
// survive process death. The journal is a JSON-lines write-ahead log,
// one object per line:
//
//	{"op":"accept","job_id":"j-00000007","tenant":"team-a","request":{...}}
//	{"op":"done","job_id":"j-00000007"}
//
// Every append is a single write(2) followed by fsync, and the accept
// entry is durable before the submitter hears 202 — so an
// acknowledged job is always either settled (a matching done entry,
// written whatever terminal state it reached) or replayable. On boot,
// OpenJournal pairs accepts with dones, compacts the file down to the
// unmatched accepts (write-temp/fsync/rename, so a crash during
// compaction leaves the old or the new journal, never a mix), and
// tolerates a torn trailing line — the only damage a mid-append crash
// can leave. The server re-enqueues the pending jobs ahead of new
// submissions and resumes the job-ID sequence past them.
//
// The delivery contract is at-least-once, idempotent by job ID: a job
// that completed just before the crash but whose done entry never hit
// the disk is executed again under the same ID, and the deterministic
// campaign engine makes the re-execution produce identical results.
// The journal is a durability log, not a result store — results of
// jobs settled before a crash are forgotten with the process; only
// unsettled work replays.
//
// # Schema versioning policy
//
// Every request and response type carries a schema_version field,
// stamped with SchemaVersion on the way out and checked on the way
// in: a payload with a different version is rejected loudly (400 at
// the server, ErrSchemaVersion at the client) instead of being
// half-read. Decoders reject unknown fields for the same reason — a
// misspelled knob must fail the request, not silently fly a default.
//
// The version bumps only on a breaking change: a field removed or
// renamed, a type changed, or semantics altered for an existing
// field. Adding an optional field is NOT a bump — older senders keep
// working because absent fields take zero values, and older readers
// that reject unknown fields are expected to be upgraded before the
// servers that send to them (upgrade order: readers first). When a
// bump does happen, the server answers old-version payloads with a
// 400 naming both versions, so mixed fleets fail observably at the
// boundary rather than corrupting results.
//
// The swarm work is a worked example of the policy, on both sides of
// it. This service schema stayed at v1: the swarm knobs arrive as
// ordinary named params ("drones", "fleet.spacing", "attack.member",
// "attack.target", "fault.member", "fault.from-member"), which is
// the additive case — an old client simply never sends them. The
// SDK's config/result schema (containerdrone.SchemaVersion), a
// separate version with its own range check, DID bump to v2, even
// though its new fields are also additive and v1 payloads are still
// read as v2 defaults (one drone, member 0 everywhere). The
// asymmetry is semantic: a v2 Result for a multi-drone run reports
// aggregates — crashed, switched, garbage_pkts — that now summarize N
// members, with the per-member story only in the new members array. A
// v1 reader consuming that unawares would mis-attribute one
// follower's crash to the whole fleet, which is exactly the
// "semantics altered for an existing field" clause above.
package service
