package service

import (
	"encoding/json"
	"testing"
	"time"

	"containerdrone"
)

// TestServiceEquivalence is the service's correctness gate: aggregates
// (and records) returned over HTTP must be byte-identical to a direct
// SDK campaign run with the same knobs. The table covers the warm-pool
// path (no sweep, reset-reuse between seeds) and the checkpoint-fork
// path (a post-onset severity sweep that prefix-shares), plus a
// multi-point attack sweep.
func TestServiceEquivalence(t *testing.T) {
	cases := []struct {
		name string
		req  CampaignRequest
		opts func() []containerdrone.CampaignOption
	}{
		{
			name: "warm-pool",
			req:  CampaignRequest{Scenario: "udpflood", Runs: 4, BaseSeed: 3, DurationS: 2},
			opts: func() []containerdrone.CampaignOption {
				return []containerdrone.CampaignOption{
					containerdrone.WithRuns(4),
					containerdrone.WithBaseSeed(3),
					containerdrone.WithRunDuration(2 * time.Second),
				}
			},
		},
		{
			name: "fork-prefix-sharing",
			req: CampaignRequest{
				Scenario: "gps-spoof", Runs: 2, DurationS: 12,
				Sweeps: []containerdrone.Sweep{{Key: "fault.rate", Values: []float64{0.5, 1, 2}}},
			},
			opts: func() []containerdrone.CampaignOption {
				return []containerdrone.CampaignOption{
					containerdrone.WithRuns(2),
					containerdrone.WithRunDuration(12 * time.Second),
					containerdrone.WithSweep("fault.rate", 0.5, 1, 2),
				}
			},
		},
		{
			name: "attack-sweep",
			req: CampaignRequest{
				Scenario: "udpflood", Runs: 2, DurationS: 2,
				Params: map[string]float64{"iptables.rate": 4000},
				Sweeps: []containerdrone.Sweep{{Key: "attack.rate", Values: []float64{2000, 8000}}},
			},
			opts: func() []containerdrone.CampaignOption {
				return []containerdrone.CampaignOption{
					containerdrone.WithRuns(2),
					containerdrone.WithRunDuration(2 * time.Second),
					containerdrone.WithBaseParams(map[string]float64{"iptables.rate": 4000}),
					containerdrone.WithSweep("attack.rate", 2000, 8000),
				}
			},
		},
	}
	_, cl := newTestServer(t, Config{Workers: 2})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct, err := containerdrone.NewCampaign(tc.req.Scenario, tc.opts()...).Run(t.Context())
			if err != nil {
				t.Fatalf("direct run: %v", err)
			}
			st, err := cl.SubmitWait(t.Context(), tc.req)
			if err != nil {
				t.Fatalf("service run: %v", err)
			}
			if st.Status != StatusDone || st.Error != "" {
				t.Fatalf("service status %+v", st)
			}
			served := st.Result

			mustEqualJSON(t, "aggregates", direct.Aggregates, served.Aggregates)
			mustEqualJSON(t, "records", direct.Records, served.Records)
			// Execution economics are deterministic too: the service
			// runs the same fork plan the SDK does.
			mustEqualJSON(t, "stats", direct.Stats, served.Stats)
			if tc.name == "fork-prefix-sharing" && served.Stats.ForkedRuns == 0 {
				t.Fatal("fork case did not exercise prefix sharing")
			}
		})
	}
}

// mustEqualJSON compares two values by their canonical JSON bytes —
// the same representation the HTTP boundary itself uses.
func mustEqualJSON(t *testing.T, what string, a, b any) {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal %s: %v", what, err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal %s: %v", what, err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("%s differ over HTTP vs direct:\ndirect  %s\nservice %s", what, ja, jb)
	}
}
