package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"containerdrone"
)

// roundTrip marshals v, decodes into a fresh instance, re-marshals,
// and requires byte identity — the wire format must be a fixed point.
func roundTrip[T any](t *testing.T, v T) {
	t.Helper()
	first, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded T
	if err := decodeStrict(bytes.NewReader(first), &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\n first %s\nsecond %s", first, second)
	}
}

func sampleRequest() CampaignRequest {
	return CampaignRequest{
		SchemaVersion: SchemaVersion,
		Scenario:      "udpflood",
		Runs:          16,
		BaseSeed:      7,
		DurationS:     2.5,
		Params:        map[string]float64{"iptables.rate": 4000, "monitor.enabled": 1},
		Sweeps: []containerdrone.Sweep{
			{Key: "attack.rate", Values: []float64{2000, 8000, 32000}},
		},
		Parallel: 2,
		TimeoutS: 30,
	}
}

func TestSchemaRoundTrips(t *testing.T) {
	roundTrip(t, sampleRequest())
	roundTrip(t, SubmitResponse{SchemaVersion: SchemaVersion, JobID: "j-00000001", Tenant: "a", Status: StatusQueued, QueueDepth: 3})
	roundTrip(t, JobStatus{
		SchemaVersion: SchemaVersion, JobID: "j-00000002", Tenant: "b",
		Status: StatusDone, Partial: true, Error: "context deadline exceeded",
		RunsDone: 5, RunsTotal: 8, WaitedS: 0.25, RanS: 1.5,
		Result: &containerdrone.CampaignResult{
			SchemaVersion: 1, Scenario: "baseline", Points: 1, Runs: 5, BaseSeed: 1,
			Records: []containerdrone.Record{{Point: "baseline", Scenario: "baseline", Run: 0, Seed: 42, RMSError: 0.25}},
		},
	})
	roundTrip(t, ErrorResponse{SchemaVersion: SchemaVersion, Error: "tenant over quota", Reason: "quota", RetryAfterS: 2})
	roundTrip(t, MetricsSnapshot{
		SchemaVersion: SchemaVersion, UptimeS: 12.5, QueueDepth: 2, QueueCap: 64,
		InFlight: 1, Workers: 4, Accepted: 10, Completed: 8, RejectedQuota: 1,
		RunsCompleted: 80, RunsPerSec: 6.4, LatencyP50S: 0.01, LatencyP99S: 0.2,
		Tenants: []TenantMetrics{{Tenant: "a", Accepted: 10, InFlight: 1}},
	})
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := DecodeCampaignRequest(strings.NewReader(
		`{"schema_version":1,"scenario":"baseline","runz":4}`))
	if err == nil || !strings.Contains(err.Error(), "runz") {
		t.Fatalf("want unknown-field rejection naming runz, got %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, err := DecodeCampaignRequest(strings.NewReader(
		`{"schema_version":1,"scenario":"baseline"}{"extra":true}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-data rejection, got %v", err)
	}
}

func TestDecodeRejectsSchemaVersionMismatch(t *testing.T) {
	for _, body := range []string{
		`{"scenario":"baseline"}`,                    // missing version
		`{"schema_version":2,"scenario":"baseline"}`, // future version
	} {
		_, err := DecodeCampaignRequest(strings.NewReader(body))
		if !errors.Is(err, ErrSchemaVersion) {
			t.Fatalf("body %s: want ErrSchemaVersion, got %v", body, err)
		}
	}
}

func TestValidateCatchesBadRequests(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CampaignRequest)
		want string
	}{
		{"unknown scenario", func(r *CampaignRequest) { r.Scenario = "no-such-scenario" }, "scenario"},
		{"unknown param", func(r *CampaignRequest) { r.Params = map[string]float64{"bogus.key": 1} }, "bogus.key"},
		{"unknown sweep key", func(r *CampaignRequest) {
			r.Sweeps = []containerdrone.Sweep{{Key: "bogus.sweep", Values: []float64{1}}}
		}, "bogus.sweep"},
		{"empty sweep", func(r *CampaignRequest) {
			r.Sweeps = []containerdrone.Sweep{{Key: "attack.rate"}}
		}, "sweep"},
		{"negative runs", func(r *CampaignRequest) { r.Runs = -1 }, "runs"},
	}
	for _, tc := range cases {
		req := sampleRequest()
		tc.mut(&req)
		err := req.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error mentioning %q, got %v", tc.name, tc.want, err)
		}
	}
	req := sampleRequest()
	if err := req.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestTotalRuns(t *testing.T) {
	req := sampleRequest() // 3 sweep values × 16 runs
	if got := req.TotalRuns(); got != 48 {
		t.Fatalf("TotalRuns = %d, want 48", got)
	}
	minimal := CampaignRequest{SchemaVersion: SchemaVersion, Scenario: "baseline"}
	if got := minimal.TotalRuns(); got != 1 {
		t.Fatalf("minimal TotalRuns = %d, want 1", got)
	}
}
