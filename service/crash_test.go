package service

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"containerdrone"
)

// TestWorkerPanicRetryCompletesJob: a job whose first attempt panics
// the worker is re-queued and completes on the second attempt; the
// supervisor respawns the dead worker and both events are visible in
// /metrics.
func TestWorkerPanicRetryCompletesJob(t *testing.T) {
	var panics atomic.Int64
	svc, cl := newTestServer(t, Config{
		Workers: 1,
		ChaosHook: func(jobID string, attempt int) {
			if attempt == 0 {
				panics.Add(1)
				panic("chaos: worker bomb")
			}
		},
	})
	st, err := cl.SubmitWait(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 3, DurationS: 1})
	if err != nil {
		t.Fatalf("submit-wait: %v", err)
	}
	if st.Status != StatusDone || st.Error != "" || st.Result == nil || len(st.Result.Records) != 3 {
		t.Fatalf("retried job should complete cleanly, got %+v", st)
	}
	if panics.Load() != 1 {
		t.Fatalf("chaos hook fired %d times, want 1", panics.Load())
	}
	m := svc.Metrics()
	if m.WorkerRestarts != 1 || m.JobsRetried != 1 || m.Completed != 1 || m.Failed != 0 {
		t.Fatalf("metrics after retry: restarts=%d retried=%d completed=%d failed=%d",
			m.WorkerRestarts, m.JobsRetried, m.Completed, m.Failed)
	}
}

// TestWorkerPanicExhaustedFailsWithErrorEvent: a job that panics on
// every attempt settles as failed once the retry budget is spent, and
// its SSE followers receive a structured "error" terminal event — not
// a hung stream.
func TestWorkerPanicExhaustedFailsWithErrorEvent(t *testing.T) {
	svc, cl := newTestServer(t, Config{
		Workers:   1,
		ChaosHook: func(jobID string, attempt int) { panic("chaos: always") },
	})
	sub, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 2, DurationS: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := cl.Wait(t.Context(), sub.JobID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.Status != StatusFailed || !strings.Contains(st.Error, "job panicked") {
		t.Fatalf("want failed status naming the panic, got %+v", st)
	}
	// The wire-level terminal frame is the "error" event.
	resp, err := http.Get(cl.BaseURL + "/v1/jobs/" + sub.JobID + "/records")
	if err != nil {
		t.Fatalf("raw stream: %v", err)
	}
	defer resp.Body.Close()
	raw, err := readAllStream(resp)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if !strings.Contains(raw, "event: error") {
		t.Fatalf("stream did not end with an error event:\n%s", raw)
	}
	m := svc.Metrics()
	if m.WorkerRestarts != 2 || m.JobsRetried != 1 || m.Failed != 1 || m.Completed != 0 {
		t.Fatalf("metrics after exhausted retries: restarts=%d retried=%d failed=%d completed=%d",
			m.WorkerRestarts, m.JobsRetried, m.Failed, m.Completed)
	}
}

// TestFleetSurvivesPanicStorm: every job panics once; the fleet keeps
// serving and every job still completes — workers are replaced, not
// lost, and the queue never wedges.
func TestFleetSurvivesPanicStorm(t *testing.T) {
	svc, cl := newTestServer(t, Config{
		Workers: 2,
		ChaosHook: func(jobID string, attempt int) {
			if attempt == 0 {
				panic("chaos: storm")
			}
		},
		RestartRate:  1000, // keep the test fast; the brake is tested separately
		RestartBurst: 1000,
	})
	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		sub, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = sub.JobID
	}
	for _, id := range ids {
		st, err := cl.Wait(t.Context(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.Status != StatusDone {
			t.Fatalf("%s: %+v", id, st)
		}
	}
	m := svc.Metrics()
	if m.Completed != jobs || m.WorkerRestarts != jobs || m.JobsRetried != jobs {
		t.Fatalf("storm metrics: completed=%d restarts=%d retried=%d, want %d each",
			m.Completed, m.WorkerRestarts, m.JobsRetried, jobs)
	}
}

// TestRestartLimiter pins the crash-loop brake's arithmetic: restarts
// are free up to the burst, then spaced at the configured rate, and
// idle time refills the bucket.
func TestRestartLimiter(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRestartLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 2; i++ {
		if d := l.reserve(); d != 0 {
			t.Fatalf("restart %d within burst: delay %v, want 0", i, d)
		}
	}
	if d := l.reserve(); d != time.Second {
		t.Fatalf("first over-burst delay %v, want 1s", d)
	}
	if d := l.reserve(); d != 2*time.Second {
		t.Fatalf("second over-burst delay %v, want 2s", d)
	}
	now = now.Add(3 * time.Second)
	if d := l.reserve(); d != 0 {
		t.Fatalf("after refill: delay %v, want 0", d)
	}
}

// TestStreamRecordsResumeAfterDisconnect is the reconnect regression
// test: a consumer that read N records before its connection dropped
// resumes with from=N and receives exactly the remainder — no
// duplicates, no gaps.
func TestStreamRecordsResumeAfterDisconnect(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	sub, err := cl.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 6, DurationS: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := cl.Wait(t.Context(), sub.JobID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// Ground truth: the full record sequence.
	var full []containerdrone.Record
	if _, err := cl.StreamRecords(t.Context(), sub.JobID, func(r containerdrone.Record) {
		full = append(full, r)
	}); err != nil {
		t.Fatalf("full stream: %v", err)
	}
	if len(full) != 6 {
		t.Fatalf("full stream has %d records, want 6", len(full))
	}
	// A raw follower drops its connection after 3 record events.
	resp, err := http.Get(cl.BaseURL + "/v1/jobs/" + sub.JobID + "/records")
	if err != nil {
		t.Fatalf("raw stream: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for sc.Scan() && seen < 3 {
		if strings.HasPrefix(sc.Text(), "event: record") {
			seen++
		}
	}
	resp.Body.Close() // the dropped connection
	if seen != 3 {
		t.Fatalf("saw %d record events before dropping, want 3", seen)
	}
	// Resume from index 3: the server replays its append-only log
	// from exactly there.
	var resumed []containerdrone.Record
	st, err := cl.StreamRecordsFrom(t.Context(), sub.JobID, 3, func(r containerdrone.Record) {
		resumed = append(resumed, r)
	})
	if err != nil {
		t.Fatalf("resume stream: %v", err)
	}
	if st.Status != StatusDone {
		t.Fatalf("resume terminal status %+v", st)
	}
	if len(resumed) != 3 {
		t.Fatalf("resumed %d records, want 3", len(resumed))
	}
	for i, r := range resumed {
		if r.Run != full[3+i].Run || r.Seed != full[3+i].Seed {
			t.Fatalf("resumed record %d = run %d seed %d, want run %d seed %d",
				i, r.Run, r.Seed, full[3+i].Run, full[3+i].Seed)
		}
	}
	// The record frames carry their campaign index as the SSE id line
	// — the client's resume cursor.
	resp2, err := http.Get(cl.BaseURL + "/v1/jobs/" + sub.JobID + "/records?from=4")
	if err != nil {
		t.Fatalf("from=4 stream: %v", err)
	}
	raw, err := readAllStream(resp2)
	resp2.Body.Close()
	if err != nil {
		t.Fatalf("read from=4 stream: %v", err)
	}
	if !strings.Contains(raw, "id: 4") || strings.Contains(raw, "id: 3") {
		t.Fatalf("from=4 stream ids wrong:\n%s", raw)
	}
}

// TestJournalReplayAfterCrash is the kill -9 contract: a job accepted
// (and acknowledged) by a server whose process dies before settling it
// is replayed and completed by the next server booted over the same
// journal directory. No acknowledged job is lost.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	// The chaos gate wedges the worker inside the job, keeping it
	// un-settled while the "crash" happens.
	gate := make(chan struct{})
	_, cl1 := newTestServer(t, Config{
		Workers:   1,
		Journal:   jl,
		ChaosHook: func(string, int) { <-gate },
	})
	sub, err := cl1.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 2, DurationS: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Simulate kill -9: the journal file handle dies with the process,
	// so the in-flight job's "done" entry can never be written. The
	// accept entry was fsynced before the 202 went out.
	if err := jl.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	close(gate) // let the doomed process's worker wind down

	// "Reboot" over the same journal directory.
	jl2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	if p := jl2.Pending(); len(p) != 1 || p[0].ID != sub.JobID {
		t.Fatalf("pending after crash = %+v, want exactly %s", p, sub.JobID)
	}
	svc2, cl2 := newTestServer(t, Config{Workers: 1, Journal: jl2})
	st, err := cl2.Wait(t.Context(), sub.JobID)
	if err != nil {
		t.Fatalf("wait for replayed job: %v", err)
	}
	if st.Status != StatusDone || len(st.Result.Records) != 2 {
		t.Fatalf("replayed job status %+v", st)
	}
	m := svc2.Metrics()
	if m.JournalReplays != 1 || m.Completed != 1 {
		t.Fatalf("replay metrics: replays=%d completed=%d", m.JournalReplays, m.Completed)
	}
	// New submissions resume the ID sequence past the replayed job —
	// idempotency by job ID holds across lives.
	sub2, err := cl2.Submit(t.Context(), CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 1})
	if err != nil {
		t.Fatalf("post-replay submit: %v", err)
	}
	if sub2.JobID == sub.JobID {
		t.Fatalf("job ID %s reused after replay", sub2.JobID)
	}
	if _, err := cl2.Wait(t.Context(), sub2.JobID); err != nil {
		t.Fatalf("wait post-replay job: %v", err)
	}
	// Settled jobs stop replaying: drain, then a third boot sees an
	// empty journal.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := jl2.Close(); err != nil {
		t.Fatalf("close journal 2: %v", err)
	}
	jl3, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer jl3.Close()
	if p := jl3.Pending(); len(p) != 0 {
		t.Fatalf("journal still pending after settlement: %+v", p)
	}
}

// TestJournalTornTailAndCompaction: a crash mid-append leaves a torn
// trailing line; replay ignores exactly that line, and compaction
// rewrites the journal down to the surviving pending entries.
func TestJournalTornTailAndCompaction(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := CampaignRequest{SchemaVersion: SchemaVersion, Scenario: "baseline", Runs: 1}
	if err := jl.Accept("j-00000001", "a", req); err != nil {
		t.Fatal(err)
	}
	if err := jl.Accept("j-00000002", "b", req); err != nil {
		t.Fatal(err)
	}
	if err := jl.Done("j-00000001"); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: an append cut off mid-line.
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","job_id":"j-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jl2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("open over torn journal: %v", err)
	}
	p := jl2.Pending()
	if len(p) != 1 || p[0].ID != "j-00000002" || p[0].Tenant != "b" {
		t.Fatalf("pending = %+v, want only j-00000002", p)
	}
	if jl2.MaxID() != 2 {
		t.Fatalf("max id %d, want 2", jl2.MaxID())
	}
	if err := jl2.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction already rewrote the file: a third open sees the same
	// single pending entry, torn tail gone.
	jl3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.Close()
	if p := jl3.Pending(); len(p) != 1 || p[0].ID != "j-00000002" {
		t.Fatalf("pending after compaction = %+v", p)
	}
}

// TestClientRetryBackpressure: the client retries 429/503 rejections
// with backoff, honors the server's Retry-After as a delay floor, and
// surfaces the rejection once the attempt budget is spent.
func TestClientRetryBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusTooManyRequests, "quota", "slow down", 10*time.Millisecond)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	cl := NewClient(ts.URL, "t")
	retries := 0
	cl.Retry = Retry{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		OnRetry: func(attempt int, err *APIError, delay time.Duration) {
			retries++
			if delay < err.RetryAfter {
				t.Errorf("retry %d: delay %v below the server's Retry-After %v", attempt, delay, err.RetryAfter)
			}
		},
	}
	if err := cl.Healthz(t.Context()); err != nil {
		t.Fatalf("healthz should succeed after retries: %v", err)
	}
	if retries != 2 || calls.Load() != 3 {
		t.Fatalf("retries=%d calls=%d, want 2 and 3", retries, calls.Load())
	}

	calls.Store(0)
	cl.Retry.MaxAttempts = 2
	err := cl.Healthz(t.Context())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget should surface the rejection, got %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("made %d calls with a budget of 2", calls.Load())
	}
}

// readAllStream reads an SSE response to EOF as text.
func readAllStream(resp *http.Response) (string, error) {
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}
