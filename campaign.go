package containerdrone

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"containerdrone/internal/campaign"
)

// Sweep is one swept campaign parameter: a key from ParamInfos and
// its value grid.
type Sweep struct {
	Key    string    `json:"key"`
	Values []float64 `json:"values"`
}

// ParseSweep parses "key=v1,v2,v3" into a Sweep; values accept any Go
// float syntax (so "attack.rate=1e9,4e9" works).
func ParseSweep(s string) (Sweep, error) {
	sw, err := campaign.ParseSweep(s)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Key: sw.Key, Values: sw.Values}, nil
}

// CampaignOption customizes a Campaign built by NewCampaign.
type CampaignOption func(*Campaign)

// WithRuns sets the number of seeds per sweep point (default 1).
func WithRuns(n int) CampaignOption {
	return func(c *Campaign) { c.runs = n }
}

// WithParallel sets the worker count (default 0 = GOMAXPROCS: the
// schedulable CPU count, which respects quota and taskset limits).
func WithParallel(workers int) CampaignOption {
	return func(c *Campaign) { c.parallel = workers }
}

// WithBaseSeed roots the deterministic per-run seed derivation
// (default 1). A campaign is a pure function of (spec, base seed).
func WithBaseSeed(seed uint64) CampaignOption {
	return func(c *Campaign) { c.baseSeed = seed }
}

// WithRunDuration overrides each flight's length (campaigns usually
// run shorter flights than the paper figures).
func WithRunDuration(d time.Duration) CampaignOption {
	return func(c *Campaign) { c.duration = d }
}

// WithSweep adds one swept parameter; repeated sweeps expand to their
// cartesian grid.
func WithSweep(key string, values ...float64) CampaignOption {
	return func(c *Campaign) { c.sweeps = append(c.sweeps, Sweep{Key: key, Values: values}) }
}

// WithSweeps adds pre-built sweeps (e.g. from ParseSweep).
func WithSweeps(sweeps ...Sweep) CampaignOption {
	return func(c *Campaign) { c.sweeps = append(c.sweeps, sweeps...) }
}

// WithBaseParams fixes named overrides on every cell of the grid.
func WithBaseParams(params map[string]float64) CampaignOption {
	return func(c *Campaign) {
		for k, v := range params {
			if c.params == nil {
				c.params = make(map[string]float64, len(params))
			}
			c.params[k] = v
		}
	}
}

// WithRecordObserver registers fn to receive every Record as its run
// completes — live campaign output (progress meters, streaming CSV)
// off the workers' hot path. All observers run on one emitter
// goroutine, so they need no locking among themselves; records arrive
// exactly once each and in index order (point-major, then run)
// regardless of worker or fork completion order, so a streamed CSV is
// byte-identical to the CampaignResult's WriteRecordsCSV output.
func WithRecordObserver(fn func(Record)) CampaignOption {
	return func(c *Campaign) { c.observers = append(c.observers, fn) }
}

// StreamRecordsCSV writes the standard records-CSV header to w and
// returns a record observer that appends one flushed row per
// completed run, plus a done function to call after the campaign
// finishes — it reports the first write error, so a disk filling up
// mid-campaign cannot masquerade as a complete records file:
//
//	f, _ := os.Create("records.csv")
//	stream, done, _ := containerdrone.StreamRecordsCSV(f)
//	c := containerdrone.NewCampaign("udpflood",
//	    containerdrone.WithRuns(1000),
//	    containerdrone.WithRecordObserver(stream))
//	res, err := c.Run(ctx)
//	// ...
//	if err := done(); err != nil { /* records.csv is incomplete */ }
func StreamRecordsCSV(w io.Writer) (stream func(Record), done func() error, err error) {
	s, d, err := campaign.NewRecordStreamer(w)
	if err != nil {
		return nil, nil, err
	}
	return func(r Record) { s(campaign.Record(r)) }, d, nil
}

// WithColdStart disables warm-pool reuse: every run rebuilds its
// simulation from scratch instead of resetting a per-worker cached
// instance. Campaigns default to reuse — the two paths produce
// byte-identical records (reset-to-cold equivalence is pinned by the
// test suite for every registry scenario) and reuse is what makes a
// campaign run allocation-free at steady state. The escape hatch
// exists for debugging and A/B measurement.
func WithColdStart() CampaignOption {
	return func(c *Campaign) { c.coldStart = true }
}

// WithPrefixSharing turns checkpoint-fork prefix sharing on or off
// (default on). When on, grid points whose swept knobs only act after
// attack/fault onset — attack parameters, fault severities, monitor
// thresholds — are grouped: the common pre-onset prefix is flown once
// per (group, run), snapshotted, and the variants fork from the
// snapshot instead of re-flying it. Forked results are byte-identical
// to full flights (pinned per registry scenario by the test suite);
// sweeps that touch pre-onset behavior, and scenarios without an
// onset, transparently fall back to full flights.
//
// Grouping changes the per-run seed derivation — every member of a
// group flies the group leader's seed for a given run index, so
// variants are compared like for like. Campaigns therefore reproduce
// bit-for-bit only across runs with the same sharing setting.
func WithPrefixSharing(enabled bool) CampaignOption {
	return func(c *Campaign) { c.prefixShare = enabled }
}

// Campaign is a Monte-Carlo experiment campaign over one scenario:
// N seeds × the cartesian grid of the configured sweeps, executed on
// a worker pool and reduced to per-point aggregates. Results are
// deterministic: a campaign is a pure function of its options,
// independent of worker count and scheduling.
type Campaign struct {
	scenario    string
	params      map[string]float64
	sweeps      []Sweep
	runs        int
	parallel    int
	baseSeed    uint64
	duration    time.Duration
	coldStart   bool
	prefixShare bool
	observers   []func(Record)
}

// NewCampaign builds a campaign over a registered scenario:
//
//	c := containerdrone.NewCampaign("udpflood",
//	    containerdrone.WithRuns(16),
//	    containerdrone.WithSweep("attack.rate", 2000, 8000, 32000))
//	res, err := c.Run(ctx)
func NewCampaign(scenario string, opts ...CampaignOption) *Campaign {
	c := &Campaign{scenario: scenario, runs: 1, baseSeed: 1, prefixShare: true}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Run executes the campaign. On context cancellation it returns the
// partial result (cells that never ran carry a non-empty Record.Err)
// together with the context's error.
func (c *Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	sweeps := make([]campaign.Sweep, len(c.sweeps))
	for i, sw := range c.sweeps {
		sweeps[i] = campaign.Sweep{Key: sw.Key, Values: sw.Values}
	}
	spec := campaign.Spec{
		Points:      campaign.Expand(c.scenario, c.params, sweeps),
		Runs:        c.runs,
		Parallel:    c.parallel,
		BaseSeed:    c.baseSeed,
		Duration:    c.duration,
		ColdStart:   c.coldStart,
		PrefixShare: c.prefixShare,
	}
	if len(c.observers) > 0 {
		obs := c.observers
		spec.Stream = func(r campaign.Record) {
			pub := Record(r)
			for _, fn := range obs {
				fn(pub)
			}
		}
	}
	records, aggs, stats, err := campaign.RunAggregatedStats(ctx, spec)
	if records == nil {
		return nil, err
	}
	res := &CampaignResult{
		SchemaVersion: SchemaVersion,
		Scenario:      c.scenario,
		Points:        len(spec.Points),
		Runs:          spec.Runs,
		BaseSeed:      spec.BaseSeed,
		Stats: CampaignStats{
			TicksFlown:       stats.TicksFlown,
			TicksSaved:       stats.TicksSaved,
			ForkGroups:       stats.ForkGroups,
			ForkedRuns:       stats.ForkedRuns,
			PrefixShareRatio: stats.PrefixShareRatio(),
			RunsFailed:       stats.RunsFailed,
			RunsPanicked:     stats.RunsPanicked,
			RunsRetried:      stats.RunsRetried,
		},
	}
	for _, r := range records {
		res.Records = append(res.Records, Record(r))
	}
	for _, a := range aggs {
		res.Aggregates = append(res.Aggregates, fromAggregate(a))
	}
	return res, err
}

// Record is the serializable outcome of one campaign run — the unit
// collected from remote campaign workers. Times are in simulated
// seconds so records serialize compactly and uniformly.
type Record struct {
	Point    string `json:"point"`
	Scenario string `json:"scenario"`
	// Faults names the run's injected fault plan (empty when
	// fault-free), e.g. "gps-spoof" or "netsplit+jitter".
	Faults   string  `json:"faults,omitempty"`
	Run      int     `json:"run"`
	Seed     uint64  `json:"seed"`
	Crashed  bool    `json:"crashed"`
	CrashS   float64 `json:"crash_s,omitempty"`
	Switched bool    `json:"switched"`
	SwitchS  float64 `json:"switch_s,omitempty"`
	Rule     string  `json:"rule,omitempty"`
	// RMSError and MaxDeviation are whole-flight tracking metrics (m).
	RMSError     float64 `json:"rms_error_m"`
	MaxDeviation float64 `json:"max_deviation_m"`
	// MissRate is the worst deadline-miss rate across the host's
	// flight-critical tasks.
	MissRate float64 `json:"miss_rate"`
	// Err records a build, run, or cancellation failure; such runs
	// carry no metrics.
	Err string `json:"err,omitempty"`
	// Panicked marks a run that died to a panic recovered at the
	// campaign worker's crash boundary; the (scenario, seed) point is
	// quarantined — the failure record is final, never retried. Err
	// carries the panic value and Stack the goroutine stack.
	Panicked bool `json:"panicked,omitempty"`
	// Retries counts re-executions after transient failures; 0 for
	// first-attempt outcomes.
	Retries int `json:"retries,omitempty"`
	// Stack is the recovered panic's goroutine stack (JSON only; the
	// records CSV omits it).
	Stack string `json:"stack,omitempty"`
}

// Percentiles summarizes one metric over a run population.
type Percentiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Aggregate is the reduction of one sweep point's run population.
type Aggregate struct {
	Point    string `json:"point"`
	Scenario string `json:"scenario"`
	// Faults names the point's fault plan; FailoverRate doubles as
	// the fault's detection rate.
	Faults string `json:"faults,omitempty"`
	Runs   int    `json:"runs"`
	Errors int    `json:"errors,omitempty"`
	// Panics counts the quarantined subset of Errors (recovered worker
	// panics); Retried counts transient re-executions behind the
	// point's final run outcomes.
	Panics  int `json:"panics,omitempty"`
	Retried int `json:"retried_runs,omitempty"`

	Crashes   int     `json:"crashes"`
	CrashRate float64 `json:"crash_rate"`

	Failovers    int     `json:"failovers"`
	FailoverRate float64 `json:"failover_rate"`
	// RuleCounts tallies which security rule fired the failover.
	RuleCounts map[string]int `json:"rule_counts,omitempty"`

	// SwitchS summarizes the Simplex switch time (s) over failover
	// runs only.
	SwitchS Percentiles `json:"switch_s"`
	// MissRate summarizes the worst flight-critical deadline-miss
	// rate per run.
	MissRate Percentiles `json:"miss_rate"`
	// RMSError and MaxDeviation summarize whole-flight tracking (m).
	RMSError     Percentiles `json:"rms_error_m"`
	MaxDeviation Percentiles `json:"max_deviation_m"`
}

func fromAggregate(a campaign.Aggregate) Aggregate {
	return Aggregate{
		Point: a.Point, Scenario: a.Scenario, Faults: a.Faults, Runs: a.Runs, Errors: a.Errors,
		Panics: a.Panics, Retried: a.Retried,
		Crashes: a.Crashes, CrashRate: a.CrashRate,
		Failovers: a.Failovers, FailoverRate: a.FailoverRate,
		RuleCounts:   a.RuleCounts,
		SwitchS:      Percentiles(a.SwitchS),
		MissRate:     Percentiles(a.MissRate),
		RMSError:     Percentiles(a.RMSError),
		MaxDeviation: Percentiles(a.MaxDeviation),
	}
}

func (a Aggregate) internal() campaign.Aggregate {
	return campaign.Aggregate{
		Point: a.Point, Scenario: a.Scenario, Faults: a.Faults, Runs: a.Runs, Errors: a.Errors,
		Panics: a.Panics, Retried: a.Retried,
		Crashes: a.Crashes, CrashRate: a.CrashRate,
		Failovers: a.Failovers, FailoverRate: a.FailoverRate,
		RuleCounts:   a.RuleCounts,
		SwitchS:      campaign.Percentiles(a.SwitchS),
		MissRate:     campaign.Percentiles(a.MissRate),
		RMSError:     campaign.Percentiles(a.RMSError),
		MaxDeviation: campaign.Percentiles(a.MaxDeviation),
	}
}

// CampaignResult is the serializable outcome of a campaign: the raw
// per-run records and the per-point aggregates. Like Result it is
// self-contained — a CampaignResult decoded from JSON renders the
// same table and CSVs as one produced locally.
type CampaignResult struct {
	SchemaVersion int           `json:"schema_version"`
	Scenario      string        `json:"scenario"`
	Points        int           `json:"points"`
	Runs          int           `json:"runs"`
	BaseSeed      uint64        `json:"base_seed"`
	Stats         CampaignStats `json:"stats"`
	Records       []Record      `json:"records"`
	Aggregates    []Aggregate   `json:"aggregates"`
}

// CampaignStats reports the campaign's execution economics: how many
// engine ticks actually ran, and how many a prefix-sharing campaign
// avoided by forking variants from shared snapshots.
type CampaignStats struct {
	// TicksFlown counts engine ticks actually executed across all runs.
	TicksFlown int64 `json:"ticks_flown"`
	// TicksSaved counts prefix ticks forked runs did not re-fly.
	TicksSaved int64 `json:"ticks_saved"`
	// ForkGroups is how many sweep groups qualified for prefix sharing.
	ForkGroups int `json:"fork_groups"`
	// ForkedRuns is how many runs were restored from a snapshot.
	ForkedRuns int `json:"forked_runs"`
	// PrefixShareRatio is TicksSaved / (TicksFlown + TicksSaved): the
	// fraction of demanded simulation work that sharing eliminated.
	PrefixShareRatio float64 `json:"prefix_share_ratio"`

	// RunsFailed counts runs that settled with a failure record after
	// actually executing; RunsPanicked is the quarantined subset
	// recovered at the worker crash boundary; RunsRetried counts
	// transient re-executions. All zero on a healthy campaign, so its
	// serialized output is byte-identical to pre-recovery builds.
	RunsFailed   int64 `json:"runs_failed,omitempty"`
	RunsPanicked int64 `json:"runs_panicked,omitempty"`
	RunsRetried  int64 `json:"runs_retried,omitempty"`
}

func (r *CampaignResult) internalRecords() []campaign.Record {
	out := make([]campaign.Record, len(r.Records))
	for i, rec := range r.Records {
		out[i] = campaign.Record(rec)
	}
	return out
}

func (r *CampaignResult) internalAggregates() []campaign.Aggregate {
	out := make([]campaign.Aggregate, len(r.Aggregates))
	for i, a := range r.Aggregates {
		out[i] = a.internal()
	}
	return out
}

// Table renders the aggregates as an aligned text table.
func (r *CampaignResult) Table() string {
	return campaign.Table(r.internalAggregates())
}

// Summary renders the standard campaign report: a header line, the
// prefix-sharing economics when any run forked, and the aggregate
// table.
func (r *CampaignResult) Summary() string {
	head := fmt.Sprintf("campaign: %d points × %d runs (seed %d)\n", r.Points, r.Runs, r.BaseSeed)
	if r.Stats.ForkedRuns > 0 {
		head += fmt.Sprintf("prefix sharing: %d runs forked across %d groups, %d of %d ticks saved (%.0f%%)\n",
			r.Stats.ForkedRuns, r.Stats.ForkGroups, r.Stats.TicksSaved,
			r.Stats.TicksFlown+r.Stats.TicksSaved, 100*r.Stats.PrefixShareRatio)
	}
	return head + r.Table()
}

// WriteRecordsCSV emits one CSV row per run; downstream plotting
// scripts key on the stable header.
func (r *CampaignResult) WriteRecordsCSV(w io.Writer) error {
	return campaign.WriteRecordsCSV(w, r.internalRecords())
}

// WriteAggregatesCSV emits one CSV row per sweep point.
func (r *CampaignResult) WriteAggregatesCSV(w io.Writer) error {
	return campaign.WriteAggregatesCSV(w, r.internalAggregates())
}

// WriteJSON emits the full result as indented JSON.
func (r *CampaignResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
