// Package containerdrone is the public SDK of a deterministic,
// pure-Go reproduction of "A Container-based DoS Attack-Resilient
// Control Framework for Real-Time UAV Systems" (Chen, Feng, Wen, Liu,
// Sha — DATE 2019).
//
// The framework's Simplex architecture protects a quadcopter's host
// control environment (safety controller + security monitor) from DoS
// attacks launched inside a Docker-style container control
// environment along three resource axes: CPU (cgroup cpuset and FIFO
// priority caps), memory bandwidth (a MemGuard reimplementation on a
// shared-DRAM model), and the communication channel (sandboxed
// namespace, iptables rate limiting, and two security rules that
// trigger failover to the safety controller). Everything — quadrotor
// physics, sensors, MAVLink framing, a four-core FIFO scheduler, the
// DRAM bus, the UDP bridge — runs as one deterministic co-simulation:
// a run is a pure function of (Config, seed).
//
// # Running a scenario
//
// Build a Sim from a registered scenario with functional options,
// then run it under a context:
//
//	sim, err := containerdrone.New("udpflood",
//	    containerdrone.WithSeed(7),
//	    containerdrone.WithDuration(20*time.Second),
//	    containerdrone.WithParam("iptables.rate", 4000))
//	if err != nil { ... }
//	res, err := sim.Run(ctx)
//	fmt.Print(res.Summary())
//
// Scenarios lists the registry ("baseline", "memdos", "kill",
// "udpflood", mission and ablation variants, ...); ParamInfos lists
// the named overrides accepted by WithParam and campaign sweeps.
// WithAttack and WithMission replace a scenario's attack plan or
// waypoint sequence wholesale.
//
// # Observing a run live
//
// Attach an Observer to stream the flight as it simulates — the
// integration point for dashboards and ground-control links:
//
//	sim, _ := containerdrone.New("udpflood",
//	    containerdrone.WithObserver(containerdrone.ObserverFuncs{
//	        Tick:   func(now time.Duration, s containerdrone.Sample) { ... },
//	        Switch: func(now time.Duration, rule string) { ... },
//	    }))
//
// Callbacks fire synchronously in simulated-time order: OnTick at the
// telemetry rate, OnViolation before the switch it causes, OnSwitch
// and OnCrash at most once. Cancel the context passed to Run to stop
// a flight early; Run then returns the partial Result.
//
// # Serializable schemas
//
// Config, Result, and the campaign Record/CampaignResult types are
// versioned (SchemaVersion) and JSON-round-trippable with stable
// field names: a Config can be dispatched to a remote worker and
// rebuilt with NewFromConfig; a Result decoded from JSON renders the
// same summaries, sparklines, plots, and CSVs as one produced
// locally.
//
// # Campaigns
//
// NewCampaign runs Monte-Carlo populations over the registry — N
// seeds × the cartesian grid of parameter sweeps on a worker pool,
// reduced to crash/failover rates and switch-time/deadline-miss
// percentiles per point:
//
//	c := containerdrone.NewCampaign("udpflood",
//	    containerdrone.WithRuns(16),
//	    containerdrone.WithSweep("attack.rate", 2000, 8000, 32000))
//	cres, err := c.Run(ctx)
//	fmt.Print(cres.Summary())
//
// Campaigns are deterministic: a campaign is a pure function of its
// options, independent of worker count and scheduling.
//
// # Consumers
//
//   - cmd/containerdrone: CLI scenario/campaign runner
//   - cmd/experiments: regenerates every table and figure of the paper
//   - cmd/rtanalysis: schedulability analysis (Sim.Schedulability)
//   - gcs: ground-control-station UDP link for live telemetry
//   - examples/: quickstart, memdos, udpflood, failover, mission,
//     campaign, gcslive — each a complete SDK program
//
// All of them use only this package (and gcs); the internal/
// packages underneath are free to change between releases.
//
// Root-level benchmarks (bench_test.go) regenerate each table and
// figure; see EXPERIMENTS.md for the paper-vs-measured record.
package containerdrone
