// Package containerdrone reproduces "A Container-based DoS
// Attack-Resilient Control Framework for Real-Time UAV Systems"
// (Chen, Feng, Wen, Liu, Sha — DATE 2019) as a deterministic
// co-simulation in pure Go.
//
// The framework's Simplex architecture protects a quadcopter's host
// control environment (safety controller + security monitor) from DoS
// attacks launched inside a Docker-style container control
// environment along three resource axes: CPU (cgroup cpuset and FIFO
// priority caps), memory bandwidth (a MemGuard reimplementation on a
// shared-DRAM model), and the communication channel (sandboxed
// namespace, iptables rate limiting, and two security rules that
// trigger failover to the safety controller).
//
// Entry points:
//
//   - internal/core: scenario registry (Register/Scenarios/Build) and
//     Config/System/Result — build and run scenarios
//   - internal/campaign: parallel Monte-Carlo campaigns over the registry
//   - cmd/containerdrone: CLI scenario/campaign runner
//   - cmd/experiments: regenerates every table and figure of the paper
//   - examples/: quickstart, memdos, udpflood, failover, campaign
//
// Root-level benchmarks (bench_test.go) regenerate each table and
// figure; see EXPERIMENTS.md for the paper-vs-measured record.
package containerdrone
