package containerdrone

import "time"

// Option customizes a Sim built by New (or NewFromConfig). Options
// that edit the run request (seed, duration, params, attack, mission)
// are recorded in the Sim's Config and therefore survive JSON
// round-trips; WithObserver attaches to the Sim only.
type Option func(*simSetup)

// simSetup collects the options of one New call.
type simSetup struct {
	cfg       Config
	observers []Observer
}

// WithSeed sets the simulation seed. Equal seeds give identical runs.
func WithSeed(seed uint64) Option {
	return func(s *simSetup) { s.cfg.Seed = seed }
}

// WithDuration overrides the scenario's flight length.
func WithDuration(d time.Duration) Option {
	return func(s *simSetup) { s.cfg.DurationS = d.Seconds() }
}

// WithParam sets one named numeric override (see ParamInfos for the
// key set, e.g. "attack.rate", "memguard.budget").
func WithParam(key string, value float64) Option {
	return func(s *simSetup) {
		if s.cfg.Params == nil {
			s.cfg.Params = make(map[string]float64)
		}
		s.cfg.Params[key] = value
	}
}

// WithParams merges a set of named numeric overrides.
func WithParams(params map[string]float64) Option {
	return func(s *simSetup) {
		for k, v := range params {
			if s.cfg.Params == nil {
				s.cfg.Params = make(map[string]float64, len(params))
			}
			s.cfg.Params[k] = v
		}
	}
}

// WithAttack replaces the scenario's attack plan.
func WithAttack(a Attack) Option {
	return func(s *simSetup) { s.cfg.Attack = &a }
}

// WithFault adds one timed fault to the run's fault plan; repeat to
// compose several. The first WithFault (or WithFaults) call on a
// scenario that carries a preset fault plan replaces the preset.
func WithFault(f Fault) Option {
	return func(s *simSetup) { s.cfg.Faults = append(s.cfg.Faults, f) }
}

// WithFaults replaces the run's fault plan wholesale.
func WithFaults(faults ...Fault) Option {
	return func(s *simSetup) { s.cfg.Faults = faults }
}

// WithDrones hosts a fleet of n drones on one shared network fabric:
// member 0 leads (flying the scenario's mission or setpoint), members
// 1..n-1 hold formation slots behind it, and a fleet coordinator at
// the GCS rebroadcasts the leader's setpoint to the followers.
// Attacks and faults target members via their Member selectors.
func WithDrones(n int) Option {
	return func(s *simSetup) { s.cfg.Drones = n }
}

// WithFleetSpacing sets the formation slot spacing in meters for
// fleet runs (see WithDrones).
func WithFleetSpacing(meters float64) Option {
	return func(s *simSetup) { s.cfg.FleetSpacingM = meters }
}

// WithMission replaces the scenario's setpoint or preset mission with
// a waypoint sequence flown by the complex controller.
func WithMission(waypoints ...Waypoint) Option {
	return func(s *simSetup) { s.cfg.Mission = waypoints }
}

// WithObserver attaches an observer to the run; repeat to attach
// several. Observers are not part of the serializable Config.
func WithObserver(obs Observer) Option {
	return func(s *simSetup) { s.observers = append(s.observers, obs) }
}
