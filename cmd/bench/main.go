// Command bench is the reproducible performance harness: it runs a
// fixed suite of end-to-end measurements — engine ticks/sec on the
// attack-free baseline and the Fig 7 UDP flood, the flood's
// wall-clock, whole-run allocations per tick, and parallel campaign
// throughput — and emits a timestamped BENCH_<ts>.json so every PR
// leaves a comparable point on the repo's performance trajectory.
//
// Usage:
//
//	go run ./cmd/bench                 # full suite, BENCH_*.json in .
//	go run ./cmd/bench -quick          # short suite (CI)
//	go run ./cmd/bench -cpuprofile cpu.prof -memprofile mem.prof
//
// Profiles feed the standard pprof workflow:
//
//	go tool pprof -top cpu.prof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"containerdrone"
)

// Measurement is one benchmark outcome.
type Measurement struct {
	// Name identifies the metric, e.g. "engine_ticks_per_sec/udpflood".
	Name string `json:"name"`
	// Value is the metric in Unit; higher is better unless the unit
	// says otherwise (wall_s, allocs_per_tick).
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// WallS is the wall-clock cost of the measured run (best attempt).
	WallS float64 `json:"wall_s"`
}

// Report is the emitted BENCH_*.json document.
type Report struct {
	SchemaVersion int           `json:"schema_version"`
	Timestamp     string        `json:"timestamp"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	NumCPU        int           `json:"num_cpu"`
	Quick         bool          `json:"quick"`
	Benchmarks    []Measurement `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// run executes the suite; returning (rather than exiting) on error
// lets the deferred profile writers flush even on failure.
func run() error {
	out := flag.String("out", ".", "directory to write BENCH_<timestamp>.json into")
	quick := flag.Bool("quick", false, "short suite: fewer repetitions, shorter flights (CI)")
	repeats := flag.Int("repeats", 3, "attempts per benchmark; the best is reported")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the suite to this file")
	flag.Parse()

	if *quick && *repeats > 1 {
		*repeats = 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		SchemaVersion: 1,
		Timestamp:     time.Now().UTC().Format("20060102T150405Z"),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         *quick,
	}

	flightDur := 30 * time.Second // simulated; the paper's figure length
	campaignRuns, campaignDur := 16, 2*time.Second
	if *quick {
		flightDur = 10 * time.Second // still past the 8 s attack start
		campaignRuns, campaignDur = 8, time.Second
	}

	for _, name := range []string{"baseline", "udpflood"} {
		ms, err := benchScenario(name, flightDur, *repeats)
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, ms...)
	}
	m, err := benchCampaign(campaignRuns, campaignDur, *repeats)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, m)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	path := filepath.Join(*out, "BENCH_"+rep.Timestamp+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	for _, m := range rep.Benchmarks {
		fmt.Printf("%-38s %14.5g %-15s (%.3fs wall)\n", m.Name, m.Value, m.Unit, m.WallS)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchScenario measures one scenario end to end: ticks/sec, wall
// seconds, and whole-run allocations per tick (setup included — the
// steady-state path itself is pinned to zero by the alloc-regression
// tests). The best of repeats attempts is reported, minimizing
// scheduler noise on shared machines.
func benchScenario(name string, dur time.Duration, repeats int) ([]Measurement, error) {
	ticks := dur.Seconds() * containerdrone.TicksPerSecond
	bestWall := 0.0
	bestAllocs := 0.0
	for i := 0; i < repeats; i++ {
		sim, err := containerdrone.New(name, containerdrone.WithDuration(dur))
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := sim.Run(context.Background()); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		if i == 0 || wall < bestWall {
			bestWall = wall
			bestAllocs = float64(after.Mallocs - before.Mallocs)
		}
	}
	return []Measurement{
		{Name: "engine_ticks_per_sec/" + name, Value: ticks / bestWall, Unit: "ticks/s", WallS: bestWall},
		{Name: "flight_wall_s/" + name, Value: bestWall, Unit: "s", WallS: bestWall},
		{Name: "allocs_per_tick/" + name, Value: bestAllocs / ticks, Unit: "allocs/tick", WallS: bestWall},
	}, nil
}

// benchCampaign measures parallel Monte-Carlo throughput in completed
// runs per wall-clock second.
func benchCampaign(runs int, dur time.Duration, repeats int) (Measurement, error) {
	best := 0.0
	bestWall := 0.0
	for i := 0; i < repeats; i++ {
		c := containerdrone.NewCampaign("baseline",
			containerdrone.WithRuns(runs),
			containerdrone.WithRunDuration(dur))
		start := time.Now()
		if _, err := c.Run(context.Background()); err != nil {
			return Measurement{}, err
		}
		wall := time.Since(start).Seconds()
		if rps := float64(runs) / wall; rps > best {
			best = rps
			bestWall = wall
		}
	}
	return Measurement{Name: "campaign_runs_per_sec", Value: best, Unit: "runs/s", WallS: bestWall}, nil
}
