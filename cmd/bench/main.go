// Command bench is the reproducible performance harness: it runs a
// fixed suite of end-to-end measurements — engine ticks/sec on the
// attack-free baseline and the Fig 7 UDP flood, the flood's
// wall-clock, whole-run allocations per tick, and parallel campaign
// throughput — and emits a timestamped BENCH_<ts>.json so every PR
// leaves a comparable point on the repo's performance trajectory.
//
// Usage:
//
//	go run ./cmd/bench                 # full suite, BENCH_*.json in .
//	go run ./cmd/bench -quick          # short suite (CI)
//	go run ./cmd/bench -cpuprofile cpu.prof -memprofile mem.prof
//
// Compare mode pins the performance trajectory: given a committed
// baseline report it prints per-benchmark deltas and exits non-zero
// when any benchmark regresses past the tolerance —
//
//	go run ./cmd/bench -baseline testdata/bench/baseline.json
//	go run ./cmd/bench -quick -baseline testdata/bench/baseline-quick.json
//
// Throughput metrics (ticks/s, runs/s) regress downward; cost metrics
// (s, allocs/tick) regress upward. The default tolerance is 10% — the
// bench-machine gate; CI machines vary too much for percent-level wall
// clock and run the comparison with a wide tolerance as an
// order-of-magnitude guard.
//
// Profiles feed the standard pprof workflow:
//
//	go tool pprof -top cpu.prof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"containerdrone"
	"containerdrone/service"
)

// Measurement is one benchmark outcome.
type Measurement struct {
	// Name identifies the metric, e.g. "engine_ticks_per_sec/udpflood".
	Name string `json:"name"`
	// Value is the metric in Unit; higher is better unless the unit
	// says otherwise (wall_s, allocs_per_tick).
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// WallS is the wall-clock cost of the measured run (best attempt).
	WallS float64 `json:"wall_s"`
}

// Report is the emitted BENCH_*.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	// GOMAXPROCS is the schedulable CPU count the campaign pool
	// actually uses (NumCPU can overstate it under quota/taskset).
	GOMAXPROCS int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Benchmarks []Measurement `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// run executes the suite; returning (rather than exiting) on error
// lets the deferred profile writers flush even on failure.
func run() error {
	out := flag.String("out", ".", "directory to write BENCH_<timestamp>.json into")
	quick := flag.Bool("quick", false, "short suite: fewer repetitions, shorter flights (CI)")
	repeats := flag.Int("repeats", 3, "attempts per benchmark; the best is reported")
	baseline := flag.String("baseline", "", "BENCH_*.json to compare against; exit non-zero on regression")
	tolerance := flag.Float64("baseline-tolerance", 0.10, "fractional regression tolerated in compare mode")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the suite to this file")
	flag.Parse()

	if *quick && *repeats > 1 {
		*repeats = 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		SchemaVersion: 1,
		Timestamp:     time.Now().UTC().Format("20060102T150405Z"),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         *quick,
	}

	flightDur := 30 * time.Second // simulated; the paper's figure length
	campaignRuns, campaignDur := 16, 2*time.Second
	if *quick {
		flightDur = 10 * time.Second // still past the 8 s attack start
		campaignRuns, campaignDur = 8, time.Second
	}

	for _, name := range []string{"baseline", "udpflood"} {
		ms, err := benchScenario(name, flightDur, *repeats)
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, ms...)
	}
	// Campaign throughput: the bare name is the historical baseline-
	// scenario warm-pool measurement (comparable across the whole
	// trajectory); the suffixed scenarios cover an attack and a fault
	// campaign, and /coldstart is the per-run-rebuild A/B partner.
	for _, cs := range []struct {
		name     string
		scenario string
		cold     bool
	}{
		{"campaign_runs_per_sec", "baseline", false},
		{"campaign_runs_per_sec/udpflood", "udpflood", false},
		{"campaign_runs_per_sec/gps-spoof", "gps-spoof", false},
		{"campaign_runs_per_sec/swarm", "swarm-peer-flood", false},
		{"campaign_runs_per_sec/coldstart", "baseline", true},
	} {
		m, err := benchCampaign(cs.name, cs.scenario, cs.cold, campaignRuns, campaignDur, *repeats)
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, m)
	}
	// Checkpoint-fork prefix sharing on an onset-heavy sweep: the same
	// grid with forking on and off, plus the deterministic share ratio.
	forkRuns := 8
	if *quick {
		forkRuns = 4
	}
	ms, err := benchForkSweep(forkRuns, 12*time.Second, *repeats)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, ms...)

	// Service round-trip throughput: campaignd's whole submit→simulate→
	// aggregate path over real HTTP, in-process so CI needs no daemon.
	svcClients, svcTotal := 16, 256
	if *quick {
		svcClients, svcTotal = 8, 64
	}
	sm, err := benchService(svcClients, svcTotal, *repeats)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, sm)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*out, "BENCH_"+rep.Timestamp+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	for _, m := range rep.Benchmarks {
		fmt.Printf("%-38s %14.5g %-15s (%.3fs wall)\n", m.Name, m.Value, m.Unit, m.WallS)
	}
	fmt.Printf("wrote %s\n", path)

	if *baseline != "" {
		return compareBaseline(rep, *baseline, *tolerance)
	}
	return nil
}

// lowerIsBetter classifies a unit: wall seconds and allocation counts
// regress upward, throughputs regress downward.
func lowerIsBetter(unit string) bool {
	return unit == "s" || unit == "allocs/tick"
}

// compareBaseline prints per-benchmark deltas against a committed
// baseline report and returns an error when any benchmark regresses
// past the tolerance — the perf gate run on every PR.
func compareBaseline(cur Report, path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Quick != cur.Quick {
		return fmt.Errorf("baseline %s was recorded with quick=%v but this run used quick=%v; quick and full values are not comparable",
			path, base.Quick, cur.Quick)
	}
	baseByName := make(map[string]Measurement, len(base.Benchmarks))
	for _, m := range base.Benchmarks {
		baseByName[m.Name] = m
	}
	fmt.Printf("\nbaseline comparison against %s (tolerance %.0f%%):\n", path, tol*100)
	var regressions []string
	for _, m := range cur.Benchmarks {
		b, ok := baseByName[m.Name]
		if !ok {
			fmt.Printf("  %-38s %14.5g %-15s (new benchmark, no baseline)\n", m.Name, m.Value, m.Unit)
			continue
		}
		delete(baseByName, m.Name)
		delta := 0.0
		if b.Value != 0 {
			delta = m.Value/b.Value - 1
		}
		worse := delta < -tol
		if lowerIsBetter(m.Unit) {
			worse = delta > tol
			if b.Value == 0 && m.Value > 0 {
				// A cost metric pinned at zero (the allocation-free
				// steady state) regresses on ANY nonzero value; the
				// ratio-based delta cannot see it.
				worse = true
			}
		}
		marker := ""
		if worse {
			marker = "  << REGRESSION"
			regressions = append(regressions, m.Name)
		}
		fmt.Printf("  %-38s %14.5g -> %14.5g %-12s %+6.1f%%%s\n",
			m.Name, b.Value, m.Value, m.Unit, delta*100, marker)
	}
	// A benchmark the baseline has but this run lacks means the gate
	// stopped measuring something it used to gate — that is itself a
	// failure, not an FYI; re-pin the baseline if the removal was
	// intentional. Sorted so failure logs are comparable run to run.
	missing := make([]string, 0, len(baseByName))
	for name := range baseByName {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("  %-38s missing from this run (baseline has it)  << REGRESSION\n", name)
		regressions = append(regressions, name+" (missing)")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %v", len(regressions), tol*100, regressions)
	}
	fmt.Println("  no regressions")
	return nil
}

// benchScenario measures one scenario end to end: ticks/sec, wall
// seconds, and whole-run allocations per tick (setup included — the
// steady-state path itself is pinned to zero by the alloc-regression
// tests). The best of repeats attempts is reported, minimizing
// scheduler noise on shared machines.
func benchScenario(name string, dur time.Duration, repeats int) ([]Measurement, error) {
	ticks := dur.Seconds() * containerdrone.TicksPerSecond
	bestWall := 0.0
	bestAllocs := 0.0
	for i := 0; i < repeats; i++ {
		sim, err := containerdrone.New(name, containerdrone.WithDuration(dur))
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := sim.Run(context.Background()); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		if i == 0 || wall < bestWall {
			bestWall = wall
			bestAllocs = float64(after.Mallocs - before.Mallocs)
		}
	}
	return []Measurement{
		{Name: "engine_ticks_per_sec/" + name, Value: ticks / bestWall, Unit: "ticks/s", WallS: bestWall},
		{Name: "flight_wall_s/" + name, Value: bestWall, Unit: "s", WallS: bestWall},
		{Name: "allocs_per_tick/" + name, Value: bestAllocs / ticks, Unit: "allocs/tick", WallS: bestWall},
	}, nil
}

// benchCampaign measures parallel Monte-Carlo throughput in completed
// runs per wall-clock second, on the warm-pool path by default or with
// the per-run-rebuild escape hatch when cold is set.
func benchCampaign(name, scenario string, cold bool, runs int, dur time.Duration, repeats int) (Measurement, error) {
	best := 0.0
	bestWall := 0.0
	for i := 0; i < repeats; i++ {
		opts := []containerdrone.CampaignOption{
			containerdrone.WithRuns(runs),
			containerdrone.WithRunDuration(dur),
		}
		if cold {
			opts = append(opts, containerdrone.WithColdStart())
		}
		c := containerdrone.NewCampaign(scenario, opts...)
		start := time.Now()
		if _, err := c.Run(context.Background()); err != nil {
			return Measurement{}, err
		}
		wall := time.Since(start).Seconds()
		if rps := float64(runs) / wall; rps > best {
			best = rps
			bestWall = wall
		}
	}
	return Measurement{Name: name, Value: best, Unit: "runs/s", WallS: bestWall}, nil
}

// benchForkSweep measures checkpoint-fork prefix sharing on its home
// turf: a gps-spoof severity sweep, where every swept knob acts after
// the 10 s fault onset, so a 12 s flight shares ten-twelfths of its
// ticks across the four variants. Three measurements come back: runs/s
// with forking, runs/s for the identical grid as full flights, and the
// deterministic prefix-share ratio (a gate value — it moves only if
// the planner's classification or the grid changes).
func benchForkSweep(runs int, dur time.Duration, repeats int) ([]Measurement, error) {
	sweep := []float64{0.5, 1, 2, 4}
	total := len(sweep) * runs
	measure := func(fork bool) (float64, float64, float64, error) {
		best, bestWall, ratio := 0.0, 0.0, 0.0
		for i := 0; i < repeats; i++ {
			c := containerdrone.NewCampaign("gps-spoof",
				containerdrone.WithRuns(runs),
				containerdrone.WithRunDuration(dur),
				containerdrone.WithSweep("fault.rate", sweep...),
				containerdrone.WithPrefixSharing(fork))
			start := time.Now()
			res, err := c.Run(context.Background())
			if err != nil {
				return 0, 0, 0, err
			}
			wall := time.Since(start).Seconds()
			if rps := float64(total) / wall; rps > best {
				best, bestWall = rps, wall
			}
			ratio = res.Stats.PrefixShareRatio
		}
		return best, bestWall, ratio, nil
	}
	forked, forkedWall, ratio, err := measure(true)
	if err != nil {
		return nil, err
	}
	full, fullWall, _, err := measure(false)
	if err != nil {
		return nil, err
	}
	return []Measurement{
		{Name: "campaign_runs_per_sec/fork-sweep", Value: forked, Unit: "runs/s", WallS: forkedWall},
		{Name: "campaign_runs_per_sec/fork-sweep-full", Value: full, Unit: "runs/s", WallS: fullWall},
		{Name: "prefix_share_ratio/fork-sweep", Value: ratio, Unit: "ratio", WallS: forkedWall},
	}, nil
}

// benchService measures campaignd's request throughput end to end: an
// in-process service.Server behind a real loopback listener, hammered
// by concurrent service.Clients in wait mode, so one request is one
// full submit→queue→simulate→aggregate→respond round trip. The queue
// is sized past the request count — this pins the service overhead
// ceiling, not backpressure behavior (the service tests own that).
func benchService(clients, total, repeats int) (Measurement, error) {
	req := service.CampaignRequest{Scenario: "baseline", Runs: 1, DurationS: 0.5, TimeoutS: 60}
	best, bestWall := 0.0, 0.0
	for i := 0; i < repeats; i++ {
		svc := service.NewServer(service.Config{QueueDepth: total + clients})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Measurement{}, err
		}
		httpSrv := &http.Server{Handler: svc}
		go httpSrv.Serve(ln)

		base := "http://" + ln.Addr().String()
		var issued atomic.Int64
		errCh := make(chan error, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl := service.NewClient(base, fmt.Sprintf("bench-%d", c))
				for issued.Add(1) <= int64(total) {
					st, err := cl.SubmitWait(context.Background(), req)
					if err != nil {
						errCh <- err
						return
					}
					if st.Status != service.StatusDone || st.Error != "" {
						errCh <- fmt.Errorf("service job %s: status %s error %q", st.JobID, st.Status, st.Error)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start).Seconds()

		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		svc.Shutdown(shutCtx)
		httpSrv.Shutdown(shutCtx)
		cancel()
		select {
		case err := <-errCh:
			return Measurement{}, err
		default:
		}
		if rps := float64(total) / wall; rps > best {
			best, bestWall = rps, wall
		}
	}
	return Measurement{Name: "service_requests_per_sec", Value: best, Unit: "req/s", WallS: bestWall}, nil
}
